#!/usr/bin/env python3
"""Markdown link checker for the repo's docs tree.

Scans every tracked *.md file (repo root, docs/, and any nested directory)
for inline links/images `[text](target)` and verifies that

  * relative file targets exist on disk,
  * `#anchor` fragments (same-file or cross-file) match a heading's
    GitHub-style slug in the target file.

External links (http/https/mailto) are NOT fetched — CI must not flake on
the network — they are only checked for empty targets. Exits non-zero with
a file:line listing of every broken link.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# Inline links and images: [text](target) / ![alt](target). Targets with
# spaces or titles ("...") keep only the URL part.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, drop punctuation, spaces → dashes."""
    heading = re.sub(r"`([^`]*)`", r"\1", heading).strip().lower()
    out = []
    for ch in heading:
        if ch.isalnum() or ch in ("_", "-", " "):
            out.append(ch)
    return "".join(out).replace(" ", "-")


def heading_slugs(path: Path) -> set[str]:
    slugs: set[str] = set()
    seen: dict[str, int] = {}
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING_RE.match(line)
        if not match:
            continue
        slug = github_slug(match.group(1))
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        slugs.add(slug if count == 0 else f"{slug}-{count}")
    return slugs


def iter_links(path: Path):
    in_fence = False
    for number, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(line):
            yield number, match.group(1)


def check_file(path: Path) -> list[str]:
    errors = []
    for line, target in iter_links(path):
        where = f"{path.relative_to(REPO_ROOT)}:{line}"
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if not target or target == "#":
            errors.append(f"{where}: empty link target")
            continue
        base, _, fragment = target.partition("#")
        dest = path if not base else (path.parent / base).resolve()
        if base and not dest.exists():
            errors.append(f"{where}: missing file '{base}'")
            continue
        if fragment:
            if dest.is_dir() or dest.suffix.lower() != ".md":
                continue  # anchors into non-markdown are not checked
            if fragment not in heading_slugs(dest):
                errors.append(
                    f"{where}: no heading '#{fragment}' in "
                    f"'{dest.relative_to(REPO_ROOT)}'"
                )
    return errors


def main() -> int:
    markdown_files = sorted(
        p
        for p in REPO_ROOT.rglob("*.md")
        if not any(part.startswith("build") for part in p.parts)
        and ".git" not in p.parts
    )
    errors = []
    for path in markdown_files:
        errors.extend(check_file(path))
    if errors:
        print(f"{len(errors)} broken markdown link(s):")
        for error in errors:
            print(f"  {error}")
        return 1
    print(f"checked {len(markdown_files)} markdown files: all links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
