#!/usr/bin/env python3
"""Sanity-checks the BENCH_*.json trajectory files the benches write.

The saved-benchmark harness (bench/bench_common.h: write_bench_json) gives
every file the same envelope; this checker keeps that format from silently
rotting — CI runs it over the artifacts of the bench-smoke job, so a bench
that stops writing runs, writes zero throughput, or drifts from the schema
fails the build instead of archiving garbage.

Usage: check_bench_json.py FILE [FILE...]
Exit code 0 when every file passes, 1 otherwise.
"""

import json
import sys


def fail(path, message):
    print(f"FAIL {path}: {message}")
    return False


def check_micro_exchange_run(path, index, run):
    """Routing-kernel ablation runs carry the ablation axes explicitly:
    which kernel ran, the run-length regime of the stream, the stratum
    count, and the headline records/s."""
    ok = True
    for key in ("kernel", "regime", "strata", "records_per_sec"):
        if key not in run:
            ok = fail(path, f"runs[{index}] missing key '{key}'")
    if not ok:
        return False
    if run["kernel"] not in ("bulk", "per_record"):
        ok = fail(path, f"runs[{index}].kernel = {run['kernel']!r} is not "
                        "'bulk' or 'per_record'")
    if not isinstance(run["regime"], str) or not run["regime"]:
        ok = fail(path, f"runs[{index}].regime is not a non-empty string")
    if not isinstance(run["strata"], int) or run["strata"] < 1:
        ok = fail(path, f"runs[{index}].strata is not a positive integer")
    rps = run["records_per_sec"]
    if not isinstance(rps, (int, float)) or rps <= 0:
        ok = fail(path, f"runs[{index}].records_per_sec = {rps!r} is not > 0")
    return ok


def check_micro_sketches_run(path, index, run):
    """Sketch-vs-sample ablation runs carry the ablation axes explicitly:
    which method answered (full-stream sketch or OASRS sample), which
    sketch kind the row ablates, the key universe ('strata'), the headline
    records/s, and the measured error against the exact stream answer."""
    ok = True
    for key in ("method", "sketch", "strata", "records_per_sec",
                "measured_error"):
        if key not in run:
            ok = fail(path, f"runs[{index}] missing key '{key}'")
    if not ok:
        return False
    if run["method"] not in ("sketch", "sample"):
        ok = fail(path, f"runs[{index}].method = {run['method']!r} is not "
                        "'sketch' or 'sample'")
    if run["sketch"] not in ("count_min", "hll", "kll"):
        ok = fail(path, f"runs[{index}].sketch = {run['sketch']!r} is not "
                        "'count_min', 'hll' or 'kll'")
    if not isinstance(run["strata"], int) or run["strata"] < 1:
        ok = fail(path, f"runs[{index}].strata is not a positive integer")
    rps = run["records_per_sec"]
    if not isinstance(rps, (int, float)) or rps <= 0:
        ok = fail(path, f"runs[{index}].records_per_sec = {rps!r} is not > 0")
    error = run["measured_error"]
    if not isinstance(error, (int, float)) or error < 0:
        ok = fail(path, f"runs[{index}].measured_error = {error!r} is not a "
                        "number >= 0")
    return ok


# Benchmark-specific run validators, keyed by the 'benchmark' field. Every
# run still passes the universal envelope checks in check_run first.
RUN_CHECKS = {
    "micro_exchange": check_micro_exchange_run,
    "micro_sketches": check_micro_sketches_run,
}


def check_run(path, index, run, benchmark=None):
    ok = True
    if not isinstance(run, dict):
        return fail(path, f"runs[{index}] is not an object")
    for key in ("mode", "workers", "throughput", "wall_seconds"):
        if key not in run:
            ok = fail(path, f"runs[{index}] missing key '{key}'")
    if not ok:
        return False
    if not isinstance(run["mode"], str) or not run["mode"]:
        ok = fail(path, f"runs[{index}].mode is not a non-empty string")
    if not isinstance(run["workers"], int) or run["workers"] < 1:
        ok = fail(path, f"runs[{index}].workers is not a positive integer")
    for key in ("throughput", "wall_seconds"):
        value = run[key]
        if not isinstance(value, (int, float)) or value <= 0:
            ok = fail(path, f"runs[{index}].{key} = {value!r} is not > 0")
    per_worker = run.get("records_per_sec_per_worker")
    if per_worker is not None:
        if not isinstance(per_worker, list):
            ok = fail(path, f"runs[{index}].records_per_sec_per_worker "
                            "is not an array")
        elif any(not isinstance(v, (int, float)) or v < 0 for v in per_worker):
            ok = fail(path, f"runs[{index}].records_per_sec_per_worker "
                            "has a negative or non-numeric entry")
    lag = run.get("watermark_lag")
    if lag is not None and not isinstance(lag, dict):
        ok = fail(path, f"runs[{index}].watermark_lag is not an object")
    extra = RUN_CHECKS.get(benchmark)
    if extra is not None:
        ok = extra(path, index, run) and ok
    return ok


def check_file(path):
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        return fail(path, f"unreadable or invalid JSON ({error})")

    ok = True
    if not isinstance(data, dict):
        return fail(path, "top level is not an object")
    if not isinstance(data.get("benchmark"), str) or not data.get("benchmark"):
        ok = fail(path, "missing or empty 'benchmark'")
    if data.get("schema_version") != 1:
        ok = fail(path, f"schema_version {data.get('schema_version')!r} != 1")
    if not isinstance(data.get("meta"), dict):
        ok = fail(path, "'meta' missing or not an object")
    runs = data.get("runs")
    if not isinstance(runs, list) or not runs:
        return fail(path, "'runs' missing, not an array, or empty")
    for index, run in enumerate(runs):
        ok = check_run(path, index, run, data.get("benchmark")) and ok
    if ok:
        print(f"OK   {path}: {len(runs)} runs")
    return ok


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip())
        return 1
    results = [check_file(path) for path in argv[1:]]
    return 0 if all(results) else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
