// Shared harness for the figure-reproduction benchmarks.
//
// Every bench binary follows the same recipe (paper §6.1 methodology):
// generate a deterministic workload, run a system over it in saturation
// mode, report throughput (items/s), accuracy loss vs. the exact ground
// truth, and latency (wall seconds for the dataset). Results are printed as
// paper-style tables; the paper's reported shape is echoed next to each
// table so EXPERIMENTS.md comparisons are one diff away.
//
// Scale: the environment variable SA_BENCH_SCALE (default 1.0) multiplies
// every workload size, so `SA_BENCH_SCALE=0.1 fig4_microbench` smoke-runs in
// seconds and larger machines can crank it up.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/table.h"
#include "core/query.h"
#include "core/systems.h"
#include "engine/record.h"

namespace streamapprox::bench {

/// Workload scale factor from SA_BENCH_SCALE (clamped to [0.01, 100]).
double bench_scale();

/// n scaled by bench_scale(), at least 1.
std::size_t scaled(std::size_t n);

/// rate scaled by bench_scale(). Event-time DURATIONS stay fixed across
/// scales (sliding windows must complete); the arrival RATE is what shrinks
/// on smoke runs and grows on big machines.
double scaled_rate(double rate);

/// One measured run of one system.
struct Measured {
  double throughput = 0.0;     ///< records / wall second
  double accuracy_loss = 0.0;  ///< paper metric, in PERCENT
  double wall_seconds = 0.0;   ///< latency to process the dataset
  std::size_t windows = 0;     ///< completed windows
};

/// Runs `kind` over `records` and evaluates `query` against exact ground
/// truth (computed once per unique window config and cached internally).
Measured measure_system(core::SystemKind kind,
                        const std::vector<engine::Record>& records,
                        const core::SystemConfig& config,
                        const core::QuerySpec& query);

/// "3.21M" / "450.2K" style throughput formatting.
std::string format_throughput(double items_per_sec);

/// Prints a one-line reminder of what the paper reported for this figure.
void paper_shape(const std::string& text);

/// Default microbenchmark SystemConfig (paper defaults: 10 s window, 5 s
/// slide, 500 ms batches, 4 workers).
core::SystemConfig default_config();

}  // namespace streamapprox::bench
