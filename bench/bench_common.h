// Shared harness for the figure-reproduction benchmarks.
//
// Every bench binary follows the same recipe (paper §6.1 methodology):
// generate a deterministic workload, run a system over it in saturation
// mode, report throughput (items/s), accuracy loss vs. the exact ground
// truth, and latency (wall seconds for the dataset). Results are printed as
// paper-style tables; the paper's reported shape is echoed next to each
// table so EXPERIMENTS.md comparisons are one diff away.
//
// Scale: the environment variable SA_BENCH_SCALE (default 1.0) multiplies
// every workload size, so `SA_BENCH_SCALE=0.1 fig4_microbench` smoke-runs in
// seconds and larger machines can crank it up.
// Saved trajectories: benches additionally serialise their runs to
// BENCH_<name>.json (write_bench_json below) so CI can archive throughput /
// steal / watermark-lag trajectories as artifacts and
// scripts/check_bench_json.py can keep the format honest.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/table.h"
#include "core/query.h"
#include "core/systems.h"
#include "engine/record.h"

namespace streamapprox::bench {

/// Workload scale factor from SA_BENCH_SCALE (clamped to [0.01, 100]).
double bench_scale();

/// n scaled by bench_scale(), at least 1.
std::size_t scaled(std::size_t n);

/// rate scaled by bench_scale(). Event-time DURATIONS stay fixed across
/// scales (sliding windows must complete); the arrival RATE is what shrinks
/// on smoke runs and grows on big machines.
double scaled_rate(double rate);

/// One measured run of one system.
struct Measured {
  double throughput = 0.0;     ///< records / wall second
  double accuracy_loss = 0.0;  ///< paper metric, in PERCENT
  double wall_seconds = 0.0;   ///< latency to process the dataset
  std::size_t windows = 0;     ///< completed windows
};

/// Runs `kind` over `records` and evaluates `query` against exact ground
/// truth (computed once per unique window config and cached internally).
Measured measure_system(core::SystemKind kind,
                        const std::vector<engine::Record>& records,
                        const core::SystemConfig& config,
                        const core::QuerySpec& query);

/// "3.21M" / "450.2K" style throughput formatting.
std::string format_throughput(double items_per_sec);

/// Prints a one-line reminder of what the paper reported for this figure.
void paper_shape(const std::string& text);

/// Default microbenchmark SystemConfig (paper defaults: 10 s window, 5 s
/// slide, 500 ms batches, 4 workers).
core::SystemConfig default_config();

/// A minimal ordered JSON value for the saved-benchmark trajectories: just
/// what the BENCH_*.json schema needs (objects keep insertion order so the
/// files diff cleanly), no parsing, no external dependency.
class Json {
 public:
  // Implicit by design: leaf values read naturally at call sites
  // (`runs.set("throughput", measured.throughput)`).
  Json() : kind_(Kind::kNull) {}
  Json(bool value) : kind_(Kind::kBool), bool_(value) {}
  Json(double value) : kind_(Kind::kNumber), number_(value) {}
  Json(std::int64_t value)
      : kind_(Kind::kNumber), number_(static_cast<double>(value)),
        integer_(value), is_integer_(true) {}
  Json(int value) : Json(static_cast<std::int64_t>(value)) {}
  Json(std::uint64_t value) : Json(static_cast<std::int64_t>(value)) {}
  Json(unsigned value) : Json(static_cast<std::int64_t>(value)) {}
  Json(const char* value) : kind_(Kind::kString), string_(value) {}
  Json(std::string value) : kind_(Kind::kString), string_(std::move(value)) {}

  /// An empty object / array to grow with set() / push().
  static Json object() { Json j; j.kind_ = Kind::kObject; return j; }
  static Json array() { Json j; j.kind_ = Kind::kArray; return j; }

  /// Object member (insertion-ordered; a repeated key overwrites in place).
  Json& set(const std::string& key, Json value);
  /// Array element.
  Json& push(Json value);

  /// Serialises with 2-space indentation and a trailing newline.
  std::string dump() const;

 private:
  friend std::string write_bench_json(const std::string& name,
                                      const Json& body);

  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };
  void write(std::string& out, int indent) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::int64_t integer_ = 0;
  bool is_integer_ = false;
  std::string string_;
  std::vector<std::pair<std::string, Json>> members_;
  std::vector<Json> elements_;
};

/// Percentile over an unsorted sample (nearest-rank; returns 0 when empty).
double percentile(std::vector<double> values, double p);

/// Writes `BENCH_<name>.json` into $SA_BENCH_JSON_DIR (default: the current
/// directory), wrapping `body` with the common envelope the schema checker
/// expects: {"benchmark": name, "schema_version": 1, ...body}. Returns the
/// path written, or an empty string when the write failed (reported on
/// stderr; benches keep running — the tables are the primary output).
std::string write_bench_json(const std::string& name, const Json& body);

}  // namespace streamapprox::bench
