// Sampler-kernel microbenchmarks (google-benchmark): per-item cost of each
// sampling algorithm in isolation, plus the ablations DESIGN.md calls out
// (Algorithm R vs Algorithm L, OASRS allocation policies, ScaSRS vs
// Bernoulli, grouping cost of STS).
//
// Before the google-benchmark suite runs, main() measures the skip-ahead
// kernel ablation (per-record Algorithm R / batched Algorithm R / per-record
// skip-ahead / bulk skip-ahead kernel, each at 1% / 10% / 50% effective
// sampling fractions) and saves it to BENCH_micro_samplers.json, so CI can
// schema-check and archive the trajectory like the fig_* benches.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/clock.h"
#include "common/rng.h"
#include "engine/record.h"
#include "sampling/oasrs.h"
#include "sampling/reservoir.h"
#include "sampling/scasrs.h"
#include "sampling/streaming_bernoulli.h"
#include "sampling/sts.h"
#include "workload/synthetic.h"

namespace {

using streamapprox::engine::Record;
using namespace streamapprox;

std::vector<Record> bench_stream(std::size_t n) {
  workload::SyntheticStream stream(workload::gaussian_substreams(30000.0),
                                   424242);
  return stream.generate_count(n);
}

// ---- Reservoir: Algorithm R vs Algorithm L (skip-ahead) ablation.

void BM_ReservoirAlgorithmR(benchmark::State& state) {
  const auto records = bench_stream(1 << 16);
  const auto capacity = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sampling::ReservoirSampler<Record> reservoir(capacity, 7);
    for (const auto& record : records) reservoir.offer(record);
    benchmark::DoNotOptimize(reservoir.items().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_ReservoirAlgorithmR)->Arg(64)->Arg(1024)->Arg(16384);

void BM_ReservoirAlgorithmL(benchmark::State& state) {
  const auto records = bench_stream(1 << 16);
  const auto capacity = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sampling::FastReservoirSampler<Record> reservoir(capacity, 7);
    for (const auto& record : records) reservoir.offer(record);
    benchmark::DoNotOptimize(reservoir.items().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_ReservoirAlgorithmL)->Arg(64)->Arg(1024)->Arg(16384);

// The bulk-offer kernel on exchange-shaped runs: with a saturated reservoir
// it touches only the geometric acceptance positions of each run.

void BM_ReservoirBulkKernel(benchmark::State& state) {
  const auto records = bench_stream(1 << 16);
  const auto capacity = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kRun = 1024;
  for (auto _ : state) {
    sampling::FastReservoirSampler<Record> reservoir(capacity, 7);
    for (std::size_t i = 0; i < records.size(); i += kRun) {
      reservoir.offer_run(records.data() + i,
                          std::min(kRun, records.size() - i));
    }
    benchmark::DoNotOptimize(reservoir.items().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_ReservoirBulkKernel)->Arg(64)->Arg(1024)->Arg(16384);

// ---- OASRS end-to-end offer cost (3 strata, budget = 10% of stream).

void BM_OasrsOffer(benchmark::State& state) {
  const auto records = bench_stream(1 << 16);
  for (auto _ : state) {
    sampling::OasrsConfig config;
    config.total_budget = records.size() / 10;
    config.seed = 9;
    auto sampler = sampling::make_oasrs<Record>(config);
    for (const auto& record : records) sampler.offer(record);
    auto sample = sampler.take();
    benchmark::DoNotOptimize(sample.strata.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_OasrsOffer);

// ---- Batch samplers at fraction 60% (the paper's default).

void BM_ScaSrsBatch(benchmark::State& state) {
  const auto records = bench_stream(1 << 16);
  Rng rng(11);
  for (auto _ : state) {
    auto result = sampling::scasrs_sample(records, 0.6, rng);
    benchmark::DoNotOptimize(result.items.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_ScaSrsBatch);

void BM_BernoulliBatch(benchmark::State& state) {
  const auto records = bench_stream(1 << 16);
  Rng rng(12);
  for (auto _ : state) {
    auto result = sampling::bernoulli_sample(records, 0.6, rng);
    benchmark::DoNotOptimize(result.items.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_BernoulliBatch);

void BM_StsLocalBatch(benchmark::State& state) {
  const auto records = bench_stream(1 << 16);
  Rng rng(13);
  for (auto _ : state) {
    auto sample = sampling::sts_sample_local(
        records, streamapprox::engine::RecordStratum{}, 0.6, rng, true);
    benchmark::DoNotOptimize(sample.strata.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_StsLocalBatch);

// The grouping step alone — the data arrangement STS pays for even before
// sampling (the shuffle adds synchronisation on top in the full engine).

void BM_GroupByStratum(benchmark::State& state) {
  const auto records = bench_stream(1 << 16);
  for (auto _ : state) {
    auto groups = sampling::group_by_stratum(
        records, streamapprox::engine::RecordStratum{});
    benchmark::DoNotOptimize(&groups);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_GroupByStratum);

// ---- Streaming Bernoulli (lower-bound baseline).

void BM_StreamingBernoulli(benchmark::State& state) {
  const auto records = bench_stream(1 << 16);
  for (auto _ : state) {
    sampling::StreamingBernoulliSampler<Record> sampler(0.6, 15);
    for (const auto& record : records) sampler.offer(record);
    benchmark::DoNotOptimize(sampler.items().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_StreamingBernoulli);

// ---- OASRS allocation policy ablation (equal vs proportional).

void BM_OasrsAllocationPolicy(benchmark::State& state) {
  const auto records = bench_stream(1 << 16);
  const auto policy = static_cast<sampling::AllocationPolicy>(state.range(0));
  for (auto _ : state) {
    sampling::OasrsConfig config;
    config.total_budget = records.size() / 10;
    config.policy = policy;
    config.seed = 17;
    auto sampler = sampling::make_oasrs<Record>(config);
    for (const auto& record : records) sampler.offer(record);
    auto sample = sampler.take();
    benchmark::DoNotOptimize(sample.strata.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_OasrsAllocationPolicy)
    ->Arg(static_cast<int>(sampling::AllocationPolicy::kEqual))
    ->Arg(static_cast<int>(sampling::AllocationPolicy::kProportional));

// ---- Saved skip-ahead ablation: BENCH_micro_samplers.json -----------------

/// Exchange-shaped workload: same-stratum chunks of `kRunLength` records
/// rotating over `kStrata` strata — the run shape the repartitioning
/// exchange stamps into its run descriptors.
constexpr std::size_t kStrata = 4;
constexpr std::size_t kRunLength = 1024;

std::vector<Record> chunked_stream(std::size_t n) {
  std::vector<Record> records;
  records.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    records.push_back(Record{
        static_cast<sampling::StratumId>((i / kRunLength) % kStrata),
        static_cast<double>(i % 1000),
        static_cast<std::int64_t>(i) * 100});
  }
  return records;
}

sampling::OasrsConfig ablation_config(std::size_t budget, bool skip_ahead) {
  sampling::OasrsConfig config;
  config.total_budget = budget;
  config.seed = 0xbeef;
  config.skip_ahead = skip_ahead;
  return config;
}

/// One timed mode: `passes` fresh samplers over the whole stream, wall time
/// summed across passes (one untimed warm-up first).
template <typename OfferAll>
bench::Json measure_mode(const char* mode, const std::vector<Record>& records,
                         std::size_t budget, double fraction, int passes,
                         bool skip_ahead, OfferAll&& offer_all) {
  const auto one_pass = [&] {
    auto sampler =
        sampling::make_oasrs<Record>(ablation_config(budget, skip_ahead));
    offer_all(sampler);
    auto sample = sampler.take();
    benchmark::DoNotOptimize(sample.strata.data());
  };
  one_pass();  // warm-up
  Stopwatch watch;
  for (int p = 0; p < passes; ++p) one_pass();
  const double wall = watch.seconds();
  const double total =
      static_cast<double>(records.size()) * static_cast<double>(passes);
  auto run = bench::Json::object();
  run.set("mode", mode);
  run.set("workers", 1);
  run.set("fraction", fraction);
  run.set("budget", static_cast<std::uint64_t>(budget));
  run.set("throughput", wall > 0.0 ? total / wall : 0.0);
  run.set("wall_seconds", wall);
  run.set("records_per_pass", static_cast<std::uint64_t>(records.size()));
  run.set("passes", passes);
  return run;
}

/// The skip-ahead ablation: four offer paths at three effective sampling
/// fractions. At 1% the reservoirs saturate almost immediately, which is the
/// regime the bulk kernel's O(accepted) claim is about.
void write_skip_ahead_json() {
  const std::size_t n = bench::scaled(std::size_t{1} << 20);
  const auto records = chunked_stream(n);
  const int passes = 5;
  const double fractions[] = {0.01, 0.10, 0.50};

  auto runs = bench::Json::array();
  for (const double fraction : fractions) {
    const auto budget = static_cast<std::size_t>(
        std::max(4.0, static_cast<double>(n) * fraction));
    const auto per_record = [&](auto& sampler) {
      for (const auto& record : records) sampler.offer(record);
    };
    const auto batched = [&](auto& sampler) {
      sampler.offer_batch(records.data(), records.size());
    };
    const auto bulk_runs = [&](auto& sampler) {
      for (std::size_t i = 0; i < records.size(); i += kRunLength) {
        const std::size_t len = std::min(kRunLength, records.size() - i);
        sampler.offer_run(records[i].stratum, records.data() + i, len);
      }
    };
    runs.push(measure_mode("algorithm_r_offer", records, budget, fraction,
                           passes, /*skip_ahead=*/false, per_record));
    runs.push(measure_mode("algorithm_r_offer_batch", records, budget,
                           fraction, passes, /*skip_ahead=*/false, batched));
    runs.push(measure_mode("skip_ahead_offer", records, budget, fraction,
                           passes, /*skip_ahead=*/true, per_record));
    runs.push(measure_mode("skip_ahead_bulk_kernel", records, budget,
                           fraction, passes, /*skip_ahead=*/true, bulk_runs));
  }

  auto body = bench::Json::object();
  auto meta = bench::Json::object();
  meta.set("scale", bench::bench_scale());
  meta.set("records_per_pass", static_cast<std::uint64_t>(n));
  meta.set("passes", passes);
  meta.set("strata", static_cast<std::uint64_t>(kStrata));
  meta.set("run_length", static_cast<std::uint64_t>(kRunLength));
  body.set("meta", std::move(meta));
  body.set("runs", std::move(runs));
  const std::string path = bench::write_bench_json("micro_samplers", body);
  if (!path.empty()) {
    std::printf("skip-ahead ablation saved to %s\n", path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  write_skip_ahead_json();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
