// Sampler-kernel microbenchmarks (google-benchmark): per-item cost of each
// sampling algorithm in isolation, plus the ablations DESIGN.md calls out
// (Algorithm R vs Algorithm L, OASRS allocation policies, ScaSRS vs
// Bernoulli, grouping cost of STS).
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "engine/record.h"
#include "sampling/oasrs.h"
#include "sampling/reservoir.h"
#include "sampling/scasrs.h"
#include "sampling/streaming_bernoulli.h"
#include "sampling/sts.h"
#include "workload/synthetic.h"

namespace {

using streamapprox::engine::Record;
using namespace streamapprox;

std::vector<Record> bench_stream(std::size_t n) {
  workload::SyntheticStream stream(workload::gaussian_substreams(30000.0),
                                   424242);
  return stream.generate_count(n);
}

// ---- Reservoir: Algorithm R vs Algorithm L (skip-ahead) ablation.

void BM_ReservoirAlgorithmR(benchmark::State& state) {
  const auto records = bench_stream(1 << 16);
  const auto capacity = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sampling::ReservoirSampler<Record> reservoir(capacity, 7);
    for (const auto& record : records) reservoir.offer(record);
    benchmark::DoNotOptimize(reservoir.items().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_ReservoirAlgorithmR)->Arg(64)->Arg(1024)->Arg(16384);

void BM_ReservoirAlgorithmL(benchmark::State& state) {
  const auto records = bench_stream(1 << 16);
  const auto capacity = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sampling::FastReservoirSampler<Record> reservoir(capacity, 7);
    for (const auto& record : records) reservoir.offer(record);
    benchmark::DoNotOptimize(reservoir.items().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_ReservoirAlgorithmL)->Arg(64)->Arg(1024)->Arg(16384);

// ---- OASRS end-to-end offer cost (3 strata, budget = 10% of stream).

void BM_OasrsOffer(benchmark::State& state) {
  const auto records = bench_stream(1 << 16);
  for (auto _ : state) {
    sampling::OasrsConfig config;
    config.total_budget = records.size() / 10;
    config.seed = 9;
    auto sampler = sampling::make_oasrs<Record>(config);
    for (const auto& record : records) sampler.offer(record);
    auto sample = sampler.take();
    benchmark::DoNotOptimize(sample.strata.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_OasrsOffer);

// ---- Batch samplers at fraction 60% (the paper's default).

void BM_ScaSrsBatch(benchmark::State& state) {
  const auto records = bench_stream(1 << 16);
  Rng rng(11);
  for (auto _ : state) {
    auto result = sampling::scasrs_sample(records, 0.6, rng);
    benchmark::DoNotOptimize(result.items.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_ScaSrsBatch);

void BM_BernoulliBatch(benchmark::State& state) {
  const auto records = bench_stream(1 << 16);
  Rng rng(12);
  for (auto _ : state) {
    auto result = sampling::bernoulli_sample(records, 0.6, rng);
    benchmark::DoNotOptimize(result.items.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_BernoulliBatch);

void BM_StsLocalBatch(benchmark::State& state) {
  const auto records = bench_stream(1 << 16);
  Rng rng(13);
  for (auto _ : state) {
    auto sample = sampling::sts_sample_local(
        records, streamapprox::engine::RecordStratum{}, 0.6, rng, true);
    benchmark::DoNotOptimize(sample.strata.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_StsLocalBatch);

// The grouping step alone — the data arrangement STS pays for even before
// sampling (the shuffle adds synchronisation on top in the full engine).

void BM_GroupByStratum(benchmark::State& state) {
  const auto records = bench_stream(1 << 16);
  for (auto _ : state) {
    auto groups = sampling::group_by_stratum(
        records, streamapprox::engine::RecordStratum{});
    benchmark::DoNotOptimize(&groups);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_GroupByStratum);

// ---- Streaming Bernoulli (lower-bound baseline).

void BM_StreamingBernoulli(benchmark::State& state) {
  const auto records = bench_stream(1 << 16);
  for (auto _ : state) {
    sampling::StreamingBernoulliSampler<Record> sampler(0.6, 15);
    for (const auto& record : records) sampler.offer(record);
    benchmark::DoNotOptimize(sampler.items().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_StreamingBernoulli);

// ---- OASRS allocation policy ablation (equal vs proportional).

void BM_OasrsAllocationPolicy(benchmark::State& state) {
  const auto records = bench_stream(1 << 16);
  const auto policy = static_cast<sampling::AllocationPolicy>(state.range(0));
  for (auto _ : state) {
    sampling::OasrsConfig config;
    config.total_budget = records.size() / 10;
    config.policy = policy;
    config.seed = 17;
    auto sampler = sampling::make_oasrs<Record>(config);
    for (const auto& record : records) sampler.offer(record);
    auto sample = sampler.take();
    benchmark::DoNotOptimize(sample.strata.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_OasrsAllocationPolicy)
    ->Arg(static_cast<int>(sampling::AllocationPolicy::kEqual))
    ->Arg(static_cast<int>(sampling::AllocationPolicy::kProportional));

}  // namespace

BENCHMARK_MAIN();
