// Figure 10 reproduction (paper §6.2/§6.3): end-to-end latency — the total
// time to process each case-study dataset — for Spark-based STS, SRS and
// StreamApprox at sampling fraction 60%.
#include <cstdio>

#include "bench_common.h"
#include "workload/netflow.h"
#include "workload/taxi.h"

namespace {

using namespace streamapprox;
using namespace streamapprox::bench;
using core::SystemKind;

}  // namespace

int main() {
  std::printf("Figure 10: latency to process the case-study datasets, "
              "fraction 60%% (scale %.2f)\n", bench_scale());

  workload::NetFlowConfig netflow;
  netflow.flows_per_sec = scaled_rate(100000.0);
  const auto network = workload::generate_netflow(
      netflow, scaled(2'000'000), /*seed=*/110);
  workload::TaxiConfig taxi;
  taxi.rides_per_sec = scaled_rate(100000.0);
  const auto rides =
      workload::generate_taxi_rides(taxi, scaled(2'000'000), /*seed=*/111);

  const core::QuerySpec network_query{core::Aggregation::kSum, true};
  const core::QuerySpec taxi_query{core::Aggregation::kMean, true};

  Table table("Figure 10: latency (seconds) per dataset",
              {"System", "Network traffic", "NYC taxi"});
  double sts_net = 0.0;
  double srs_net = 0.0;
  double approx_net = 0.0;
  for (SystemKind kind : {SystemKind::kSparkSTS, SystemKind::kSparkSRS,
                          SystemKind::kSparkApprox}) {
    const auto net =
        measure_system(kind, network, default_config(), network_query);
    const auto ride =
        measure_system(kind, rides, default_config(), taxi_query);
    if (kind == SystemKind::kSparkSTS) sts_net = net.wall_seconds;
    if (kind == SystemKind::kSparkSRS) srs_net = net.wall_seconds;
    if (kind == SystemKind::kSparkApprox) approx_net = net.wall_seconds;
    table.add_row({core::system_name(kind), Table::num(net.wall_seconds, 2),
                   Table::num(ride.wall_seconds, 2)});
  }
  table.print();
  paper_shape(
      "StreamApprox 1.39x/1.69x lower latency than SRS/STS on the network "
      "dataset and 1.52x/2.18x on the taxi dataset.");
  std::printf("  [measured] network: StreamApprox %.2fx lower than SRS, "
              "%.2fx lower than STS\n",
              srs_net / approx_net, sts_net / approx_net);
  return 0;
}
