// Ablations beyond the paper's figures (DESIGN.md §5 "ablations"):
//   (1) stratification source: oracle strata vs learned strata (§7-II
//       k-means / bootstrap-quantile) vs none (SRS) — accuracy at equal
//       sampling budgets;
//   (2) scheduling-cost model: how the batched engine's per-stage dispatch
//       overhead shapes the Figure 4(c) batch-interval trend;
//   (3) OASRS budget allocation: equal vs proportional split under skew.
#include <cstdio>

#include "bench_common.h"
#include "common/stats.h"
#include "sampling/oasrs.h"
#include "sampling/scasrs.h"
#include "stratify/stratifier.h"
#include "workload/synthetic.h"

namespace {

using namespace streamapprox;
using namespace streamapprox::bench;
using engine::Record;

double mean_of_records(const std::vector<Record>& records) {
  double sum = 0.0;
  for (const auto& record : records) sum += record.value;
  return sum / static_cast<double>(records.size());
}

double oasrs_mean(const std::vector<Record>& records, std::size_t budget,
                  std::uint64_t seed) {
  sampling::OasrsConfig config;
  config.total_budget = budget;
  config.seed = seed;
  auto sampler = sampling::make_oasrs<Record>(config);
  for (const auto& record : records) sampler.offer(record);
  const auto sample = sampler.take();
  double sum = 0.0;
  double count = 0.0;
  for (const auto& stratum : sample.strata) {
    double stratum_sum = 0.0;
    for (const auto& record : stratum.items) stratum_sum += record.value;
    sum += stratum_sum * stratum.weight;
    count += static_cast<double>(stratum.seen);
  }
  return count > 0.0 ? sum / count : 0.0;
}

}  // namespace

int main() {
  std::printf("Ablations beyond the paper (scale %.2f)\n", bench_scale());

  // ---------------------------------------------------------------- (1)
  {
    // Skewed Gaussian mixture with source labels; we strip the labels for
    // the "learned" and "none" variants.
    workload::SyntheticStream stream(
        workload::skewed_gaussian_substreams(scaled_rate(50000.0)), 7);
    const auto labelled = stream.generate(10.0);
    std::vector<Record> unlabeled = labelled;
    for (auto& record : unlabeled) record.stratum = 0;
    const double exact = mean_of_records(labelled);

    Table table("Ablation 1: MEAN accuracy loss (%) by stratification "
                "source at equal budgets",
                {"Budget (% of stream)", "oracle strata",
                 "k-means learned (k=3)", "quantile learned (16 bins)",
                 "none (SRS)"});
    for (double fraction : {0.02, 0.05, 0.10}) {
      const auto budget = static_cast<std::size_t>(
          fraction * static_cast<double>(labelled.size()));
      // Oracle: true sub-stream labels.
      const double oracle =
          relative_error(oasrs_mean(labelled, budget, 11), exact);
      // Learned: k-means over values.
      std::vector<Record> kmeans_records;
      kmeans_records.reserve(unlabeled.size());
      stratify::KMeansStratifier kmeans(3);
      for (const auto& record : unlabeled) {
        kmeans_records.push_back(stratify::restratify(record, kmeans));
      }
      const double learned_kmeans =
          relative_error(oasrs_mean(kmeans_records, budget, 12), exact);
      // Learned: bootstrap quantiles.
      std::vector<Record> quantile_records;
      quantile_records.reserve(unlabeled.size());
      stratify::QuantileStratifier quantile(16, 8192);
      for (const auto& record : unlabeled) {
        quantile_records.push_back(stratify::restratify(record, quantile));
      }
      const double learned_quantile =
          relative_error(oasrs_mean(quantile_records, budget, 13), exact);
      // None: plain SRS.
      streamapprox::Rng rng(14);
      const auto srs = sampling::scasrs_sample(unlabeled, fraction, rng);
      const double srs_loss =
          relative_error(mean_of_records(srs.items), exact);

      table.add_row({Table::num(100.0 * fraction, 0),
                     Table::num(100.0 * oracle, 3),
                     Table::num(100.0 * learned_kmeans, 3),
                     Table::num(100.0 * learned_quantile, 3),
                     Table::num(100.0 * srs_loss, 3)});
    }
    table.print();
    paper_shape(
        "(extension) k-means-learned strata recover near-oracle accuracy. "
        "Equal-occupancy quantile bins cannot isolate sub-streams rarer "
        "than 1/bins (here the 1% heavy tail), so they need many bins to "
        "compete — the choice of stratifier matters, which is why §7 "
        "defers it to a dedicated pre-processing step.");
  }

  // ---------------------------------------------------------------- (2)
  {
    workload::SyntheticStream stream(
        workload::gaussian_substreams(scaled_rate(50000.0)), 8);
    const auto records = stream.generate(20.0);
    const core::QuerySpec query{core::Aggregation::kMean, false};

    Table table("Ablation 2: Spark-StreamApprox throughput (items/s) vs "
                "per-stage dispatch overhead x batch interval",
                {"stage overhead", "250 ms", "500 ms", "1000 ms"});
    for (int overhead_us : {0, 500, 2000}) {
      std::vector<std::string> row = {std::to_string(overhead_us) + " us"};
      for (int interval_ms : {250, 500, 1000}) {
        auto config = default_config();
        config.stage_overhead = std::chrono::microseconds(overhead_us);
        config.batch_interval_us = interval_ms * 1000;
        const auto m = measure_system(core::SystemKind::kSparkApprox,
                                      records, config, query);
        row.push_back(format_throughput(m.throughput));
      }
      table.add_row(std::move(row));
    }
    table.print();
    paper_shape(
        "(ablation) With zero dispatch overhead the batch-interval trend of "
        "Fig. 4(c) flattens — the driver-side scheduling cost is what makes "
        "small batches expensive, as the paper asserts in §5.3.");
  }

  // ---------------------------------------------------------------- (3)
  {
    workload::SyntheticStream stream(
        workload::skewed_gaussian_substreams(scaled_rate(50000.0)), 9);
    const auto records = stream.generate(10.0);
    const double exact = mean_of_records(records);

    Table table("Ablation 3: OASRS budget allocation under 80/19/1% skew "
                "(MEAN accuracy loss %, budget 5%)",
                {"Policy", "loss (%)", "min stratum sample"});
    for (auto policy : {sampling::AllocationPolicy::kEqual,
                        sampling::AllocationPolicy::kProportional}) {
      sampling::OasrsConfig config;
      config.total_budget = records.size() / 20;
      config.policy = policy;
      config.seed = 15;
      auto sampler = sampling::make_oasrs<Record>(config);
      // Two intervals so the proportional policy has history to act on.
      for (const auto& record : records) sampler.offer(record);
      sampler.take();
      for (const auto& record : records) sampler.offer(record);
      const auto sample = sampler.take();
      double sum = 0.0;
      double count = 0.0;
      std::size_t min_sample = records.size();
      for (const auto& stratum : sample.strata) {
        double stratum_sum = 0.0;
        for (const auto& record : stratum.items) {
          stratum_sum += record.value;
        }
        sum += stratum_sum * stratum.weight;
        count += static_cast<double>(stratum.seen);
        min_sample = std::min(min_sample, stratum.items.size());
      }
      const double loss = relative_error(sum / count, exact);
      table.add_row({policy == sampling::AllocationPolicy::kEqual
                         ? "equal (OASRS default)"
                         : "proportional (STS-style)",
                     Table::num(100.0 * loss, 3),
                     std::to_string(min_sample)});
    }
    table.print();
    paper_shape(
        "(ablation) Equal allocation guards the 1% sub-stream with a full "
        "reservoir; proportional allocation starves it — why OASRS defaults "
        "to equal splits (§3.2).");
  }
  return 0;
}
