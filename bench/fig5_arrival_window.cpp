// Figure 5 reproduction (paper §5.4, §5.5) — Gaussian sub-streams:
//   (a) accuracy loss vs sub-stream arrival rates (8K:2K:100 / 3K:3K:3K /
//       100:2K:8K), fraction 60%
//   (b) throughput vs window size (10/20/30/40 s), rates 8K:2K:100
//   (c) accuracy loss vs window size
#include <cstdio>

#include "bench_common.h"
#include "workload/synthetic.h"

namespace {

using namespace streamapprox;
using namespace streamapprox::bench;
using core::SystemKind;

constexpr SystemKind kSystems[] = {
    SystemKind::kFlinkApprox,
    SystemKind::kSparkApprox,
    SystemKind::kSparkSRS,
    SystemKind::kSparkSTS,
};

}  // namespace

int main() {
  std::printf("Figure 5: arrival-rate and window-size sensitivity "
              "(scale %.2f)\n", bench_scale());
  const core::QuerySpec query{core::Aggregation::kMean, false};
  // The paper's arrival rates (items/s) ARE the experimental variable here,
  // so they stay unscaled; only the observation duration is fixed.
  const double duration = 40.0;

  // ---- Figure 5 (a): accuracy vs arrival rates of A:B:C.
  {
    struct Mix {
      const char* label;
      double a, b, c;
    };
    const Mix mixes[] = {
        {"8K:2K:100", 8000, 2000, 100},
        {"3K:3K:3K", 3000, 3000, 3000},
        {"100:2K:8K", 100, 2000, 8000},
    };
    Table table("Figure 5(a): accuracy loss (%) vs arrival rates A:B:C, "
                "fraction 60%",
                {"System", "8K:2K:100", "3K:3K:3K", "100:2K:8K"});
    std::vector<std::vector<std::string>> rows;
    for (SystemKind kind : kSystems) {
      rows.push_back({core::system_name(kind)});
    }
    for (const auto& mix : mixes) {
      workload::SyntheticStream stream(
          workload::gaussian_substreams_rates(mix.a, mix.b, mix.c), 55);
      const auto records = stream.generate(duration);
      for (std::size_t s = 0; s < std::size(kSystems); ++s) {
        const auto m =
            measure_system(kSystems[s], records, default_config(), query);
        rows[s].push_back(Table::num(m.accuracy_loss, 3));
      }
    }
    for (auto& row : rows) table.add_row(std::move(row));
    table.print();
    paper_shape(
        "Loss shrinks as sub-stream C (the significant values) speeds up; "
        "SRS worst at C=100/s because it overlooks C; all systems converge "
        "once C reaches 8000/s.");
  }

  // ---- Figure 5 (b)+(c): window-size sweep at rates 8K:2K:100.
  {
    workload::SyntheticStream stream(
        workload::gaussian_substreams_rates(8000, 2000, 100), 56);
    // Long enough for several 40 s windows to complete.
    const auto records = stream.generate(100.0);

    Table throughput_table(
        "Figure 5(b): throughput (items/s) vs window size (s), fraction 60%",
        {"System", "10", "20", "30", "40"});
    Table accuracy_table(
        "Figure 5(c): accuracy loss (%) vs window size (s), fraction 60%",
        {"System", "10", "20", "30", "40"});
    for (SystemKind kind : kSystems) {
      std::vector<std::string> trow = {core::system_name(kind)};
      std::vector<std::string> arow = {core::system_name(kind)};
      for (int window_s : {10, 20, 30, 40}) {
        auto config = default_config();
        config.window.size_us = window_s * 1'000'000LL;
        config.window.slide_us = 5'000'000LL;
        const auto m = measure_system(kind, records, config, query);
        trow.push_back(format_throughput(m.throughput));
        arow.push_back(Table::num(m.accuracy_loss, 3));
      }
      throughput_table.add_row(std::move(trow));
      accuracy_table.add_row(std::move(arow));
    }
    throughput_table.print();
    accuracy_table.print();
    paper_shape(
        "Window size affects neither throughput nor accuracy significantly "
        "(sampling happens per batch/slide, not per window).");
  }
  return 0;
}
