// Figure 8 reproduction (paper §6.2) — network traffic analytics case study
// on the CAIDA-like NetFlow stream (query: total traffic size per protocol
// per sliding window):
//   (a) throughput vs sampling fraction (+ natives)
//   (b) accuracy loss vs sampling fraction
//   (c) throughput at fixed accuracy loss (1% / 2%)
#include <cmath>
#include <cstdio>
#include <map>

#include "bench_common.h"
#include "workload/netflow.h"

namespace {

using namespace streamapprox;
using namespace streamapprox::bench;
using core::SystemKind;

constexpr SystemKind kSampledSystems[] = {
    SystemKind::kFlinkApprox,
    SystemKind::kSparkApprox,
    SystemKind::kSparkSRS,
    SystemKind::kSparkSTS,
};

}  // namespace

int main() {
  std::printf("Figure 8: network traffic analytics case study "
              "(synthetic CAIDA-like NetFlow; TCP/UDP/ICMP = "
              "62.3/36.2/1.5%%; scale %.2f)\n", bench_scale());

  // 20 s of event time; rate (and thus record count) scales.
  workload::NetFlowConfig netflow;
  netflow.flows_per_sec = scaled_rate(100000.0);
  const auto records = workload::generate_netflow(
      netflow, scaled(2'000'000), /*seed=*/88);
  const core::QuerySpec query{core::Aggregation::kSum, true};

  const std::vector<int> fractions = {10, 20, 40, 60, 80, 90};
  std::map<std::pair<SystemKind, int>, Measured> runs;
  for (SystemKind kind : kSampledSystems) {
    for (int f : fractions) {
      auto config = default_config();
      config.sampling_fraction = f / 100.0;
      runs[{kind, f}] = measure_system(kind, records, config, query);
    }
  }
  const auto native_spark = measure_system(SystemKind::kNativeSpark, records,
                                           default_config(), query);
  const auto native_flink = measure_system(SystemKind::kNativeFlink, records,
                                           default_config(), query);

  {
    Table table("Figure 8(a): throughput (items/s) vs sampling fraction (%)",
                {"System", "10", "20", "40", "60", "80", "Native"});
    for (SystemKind kind : kSampledSystems) {
      std::vector<std::string> row = {core::system_name(kind)};
      for (int f : {10, 20, 40, 60, 80}) {
        row.push_back(format_throughput(runs[{kind, f}].throughput));
      }
      row.push_back("-");
      table.add_row(std::move(row));
    }
    table.add_row({"Native Spark", "-", "-", "-", "-", "-",
                   format_throughput(native_spark.throughput)});
    table.add_row({"Native Flink", "-", "-", "-", "-", "-",
                   format_throughput(native_flink.throughput)});
    table.print();
    paper_shape(
        "Spark-StreamApprox >2x over STS, ~= SRS; Flink-StreamApprox 1.6x "
        "over both; StreamApprox 1.3x/1.35x over native Spark/Flink at 60%; "
        "native Spark even beats STS.");
    std::printf(
        "  [measured] SparkApprox/STS @60%%: %.2fx; FlinkApprox/"
        "SparkApprox @60%%: %.2fx; SparkApprox/native-Spark @60%%: %.2fx; "
        "native-Spark/STS @60%%: %.2fx\n",
        runs[{SystemKind::kSparkApprox, 60}].throughput /
            runs[{SystemKind::kSparkSTS, 60}].throughput,
        runs[{SystemKind::kFlinkApprox, 60}].throughput /
            runs[{SystemKind::kSparkApprox, 60}].throughput,
        runs[{SystemKind::kSparkApprox, 60}].throughput /
            native_spark.throughput,
        native_spark.throughput /
            runs[{SystemKind::kSparkSTS, 60}].throughput);
  }

  {
    Table table("Figure 8(b): accuracy loss (%) vs sampling fraction (%), "
                "query: per-protocol traffic totals",
                {"System", "10", "20", "40", "60", "80", "90"});
    for (SystemKind kind : kSampledSystems) {
      std::vector<std::string> row = {core::system_name(kind)};
      for (int f : fractions) {
        row.push_back(Table::num(runs[{kind, f}].accuracy_loss, 3));
      }
      table.add_row(std::move(row));
    }
    table.print();
    paper_shape(
        "Loss improves (non-linearly) with fraction; STS < StreamApprox < "
        "SRS, but StreamApprox needs no shuffle to get there.");
  }

  {
    Table table("Figure 8(c): throughput (items/s) at fixed accuracy loss",
                {"System", "loss 1%", "loss 2%"});
    for (SystemKind kind : kSampledSystems) {
      std::vector<std::string> row = {core::system_name(kind)};
      for (double target : {1.0, 2.0}) {
        // Best throughput whose accuracy loss meets the target (fall back
        // to the closest run if none does).
        Measured best;
        Measured closest;
        double best_gap = 1e18;
        bool met = false;
        for (int f : fractions) {
          const auto& m = runs[{kind, f}];
          if (m.accuracy_loss <= target && m.throughput > best.throughput) {
            best = m;
            met = true;
          }
          const double gap = std::abs(m.accuracy_loss - target);
          if (gap < best_gap) {
            best_gap = gap;
            closest = m;
          }
        }
        row.push_back(format_throughput((met ? best : closest).throughput));
      }
      table.add_row(std::move(row));
    }
    table.print();
    paper_shape(
        "At 1% loss: Spark-StreamApprox 2.36x over STS and 1.05x over SRS; "
        "Flink-StreamApprox another 1.46x over Spark-StreamApprox.");
  }
  return 0;
}
