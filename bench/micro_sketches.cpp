// Sketch-vs-sample ablation: the three mergeable sketch kinds (Count-Min
// heavy hitters, HyperLogLog distinct count, log-bucket quantiles) against
// the same query classes answered from a 10% OASRS stratified sample
// (estimation/sample_queries.h). The axes are the key regime (Zipf-skewed /
// uniform) and the key universe ("strata"), because that is what separates
// the two approaches structurally: weight-scaled sample counts track heavy
// hitters well under skew, but a sample cannot see the distinct keys it
// dropped and its tail quantiles degrade with the sampling fraction — the
// gap the full-stream sketch sinks close at a fixed small memory cost.
//
// Writes BENCH_micro_sketches.json (schema-gated by
// scripts/check_bench_json.py): one run per (method, sketch kind, regime,
// universe) cell with digest throughput and the measured error against the
// exact stream answer. Scale the workload with SA_BENCH_SCALE.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/clock.h"
#include "common/rng.h"
#include "common/table.h"
#include "engine/record.h"
#include "estimation/sample_queries.h"
#include "sampling/oasrs.h"
#include "sketch/sketches.h"

namespace {

using namespace streamapprox;
using engine::Record;

constexpr int kPasses = 3;
constexpr std::size_t kTopK = 10;
constexpr double kSampleFraction = 0.10;
constexpr double kCmEpsilon = 0.005;
constexpr double kCmDelta = 0.01;
constexpr double kHllEpsilon = 0.02;
constexpr double kQuantileAlpha = 0.02;
const std::vector<double> kProbes = {0.5, 0.95, 0.99};

/// Keys drawn from the regime over [0, universe); values lognormal so the
/// quantile ablation has a heavy tail to chase.
std::vector<Record> make_stream(const std::string& regime, std::size_t count,
                                std::uint64_t universe) {
  Rng rng(0x5ee7ULL + universe + (regime == "zipf" ? 1 : 0));
  std::vector<Record> records;
  records.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Record record;
    record.stratum = static_cast<sampling::StratumId>(
        regime == "zipf" ? rng.zipf(universe, 1.2) : rng.uniform_int(universe));
    record.value = rng.lognormal(3.0, 1.0);
    record.event_time_us = static_cast<std::int64_t>(i);
    records.push_back(record);
  }
  return records;
}

/// Exact stream answers, computed once per cell.
struct GroundTruth {
  std::map<std::uint64_t, std::uint64_t> counts;
  std::vector<std::uint64_t> top_keys;  // true top-K, count desc / key asc
  std::size_t distinct = 0;
  std::vector<double> quantiles;  // exact value at each probe
};

GroundTruth exact_answers(const std::vector<Record>& records) {
  GroundTruth truth;
  for (const auto& record : records) ++truth.counts[record.stratum];
  truth.distinct = truth.counts.size();
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ranked(
      truth.counts.begin(), truth.counts.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  for (std::size_t i = 0; i < std::min(kTopK, ranked.size()); ++i) {
    truth.top_keys.push_back(ranked[i].first);
  }
  std::vector<double> values;
  values.reserve(records.size());
  for (const auto& record : records) values.push_back(record.value);
  std::sort(values.begin(), values.end());
  for (const double q : kProbes) {
    truth.quantiles.push_back(values[static_cast<std::size_t>(
        q * static_cast<double>(values.size() - 1))]);
  }
  return truth;
}

/// Mean relative error of the estimated counts of the TRUE top-K keys (a
/// missing key estimates 0) — the heavy-hitter accuracy both methods chase.
double heavy_hitter_error(
    const GroundTruth& truth,
    const std::map<std::uint64_t, double>& estimated) {
  double total = 0.0;
  for (const std::uint64_t key : truth.top_keys) {
    const double exact = static_cast<double>(truth.counts.at(key));
    const auto it = estimated.find(key);
    const double est = it == estimated.end() ? 0.0 : it->second;
    total += std::abs(est - exact) / exact;
  }
  return truth.top_keys.empty()
             ? 0.0
             : total / static_cast<double>(truth.top_keys.size());
}

/// Mean relative error over the probe grid.
double quantile_error(const GroundTruth& truth,
                      const std::vector<double>& answers) {
  double total = 0.0;
  for (std::size_t i = 0; i < kProbes.size(); ++i) {
    total += std::abs(answers[i] - truth.quantiles[i]) /
             std::abs(truth.quantiles[i]);
  }
  return total / static_cast<double>(kProbes.size());
}

struct Measured {
  double wall_seconds = 0.0;
  double records_per_sec = 0.0;
  double measured_error = 0.0;
};

/// Best-of-kPasses timing of `digest` (which rebuilds its state each pass);
/// the error comes from `error_of` over the last pass's state (all paths are
/// deterministic, so every pass answers identically).
template <typename DigestFn, typename ErrorFn>
Measured measure(std::size_t n, const DigestFn& digest,
                 const ErrorFn& error_of) {
  Measured best;
  for (int pass = 0; pass < kPasses; ++pass) {
    Stopwatch watch;
    digest();
    const double wall = watch.seconds();
    if (pass == 0 || wall < best.wall_seconds) best.wall_seconds = wall;
  }
  best.records_per_sec = best.wall_seconds > 0.0
                             ? static_cast<double>(n) / best.wall_seconds
                             : 0.0;
  best.measured_error = error_of();
  return best;
}

bench::Json run_json(const std::string& method, const std::string& sketch,
                     const std::string& regime, std::uint64_t universe,
                     std::size_t records, const Measured& measured) {
  auto entry = bench::Json::object();
  entry.set("mode", method + "-" + regime);
  entry.set("workers", 1);
  entry.set("throughput", measured.records_per_sec);
  entry.set("wall_seconds", measured.wall_seconds);
  entry.set("method", method);
  entry.set("sketch", sketch);
  entry.set("regime", regime);
  entry.set("strata", universe);
  entry.set("records", records);
  entry.set("records_per_sec", measured.records_per_sec);
  entry.set("measured_error", measured.measured_error);
  return entry;
}

sampling::StratifiedSample<Record> draw_sample(
    const std::vector<Record>& records) {
  sampling::OasrsConfig config;
  config.total_budget = static_cast<std::size_t>(
      std::max(16.0, static_cast<double>(records.size()) * kSampleFraction));
  config.seed = 0xab1e;
  auto sampler = sampling::make_oasrs<Record>(config);
  sampler.offer_batch(records.data(), records.size());
  return sampler.take();
}

}  // namespace

int main() {
  const std::size_t count = bench::scaled(std::size_t{1} << 18);
  std::printf(
      "Sketch-vs-sample ablation: Count-Min / HLL / quantile sketches vs a "
      "%.0f%% OASRS sample (%zu records/cell, best of %d passes, scale "
      "%.2f)\n\n",
      kSampleFraction * 100.0, count, kPasses, bench::bench_scale());

  struct Cell {
    const char* regime;
    std::uint64_t universe;
  };
  const std::vector<Cell> cells = {
      {"zipf", 256}, {"zipf", 4096}, {"uniform", 256}, {"uniform", 4096}};

  const auto key_fn = [](const Record& r) {
    return static_cast<std::uint64_t>(r.stratum);
  };

  auto runs_json = bench::Json::array();
  Table table("Sketch vs sample accuracy (mean relative error)",
              {"Regime", "Universe", "Query", "Sketch err", "Sample err",
               "Sketch rec/s", "Sample rec/s"});
  for (const auto& cell : cells) {
    const auto records = make_stream(cell.regime, count, cell.universe);
    const auto truth = exact_answers(records);
    const auto sample = draw_sample(records);

    // Timed once per cell: the sample path's digest is the OASRS offer loop
    // itself (shared by all three query classes), so each sample row
    // reports the same digest throughput with its own answer error.
    const auto sample_digest = [&] {
      auto drawn = draw_sample(records);
      (void)drawn;
    };

    // ---- Count-Min vs weight-scaled sample counts.
    sketch::CountMinSketch cm(1, 1, 0);
    const auto cm_measured = measure(
        records.size(),
        [&] {
          cm = sketch::CountMinSketch::for_error(kCmEpsilon, kCmDelta, 7);
          for (const auto& record : records) cm.update(record.stratum);
        },
        [&] {
          std::map<std::uint64_t, double> estimated;
          for (const std::uint64_t key : truth.top_keys) {
            estimated[key] = static_cast<double>(cm.estimate(key));
          }
          return heavy_hitter_error(truth, estimated);
        });
    const auto sample_hh = measure(records.size(), sample_digest, [&] {
      std::map<std::uint64_t, double> estimated;
      for (const auto& [key, est] :
           estimation::sample_heavy_hitters(sample, key_fn, kTopK)) {
        estimated[key] = est;
      }
      return heavy_hitter_error(truth, estimated);
    });
    runs_json.push(run_json("sketch", "count_min", cell.regime, cell.universe,
                            records.size(), cm_measured));
    runs_json.push(run_json("sample", "count_min", cell.regime, cell.universe,
                            records.size(), sample_hh));
    table.add_row({cell.regime, std::to_string(cell.universe), "heavy hitters",
                   Table::num(cm_measured.measured_error),
                   Table::num(sample_hh.measured_error),
                   bench::format_throughput(cm_measured.records_per_sec),
                   bench::format_throughput(sample_hh.records_per_sec)});

    // ---- HyperLogLog vs distinct-keys-observed-in-sample.
    sketch::HyperLogLog hll(4, 0);
    const auto hll_measured = measure(
        records.size(),
        [&] {
          hll = sketch::HyperLogLog::for_error(kHllEpsilon, 7);
          for (const auto& record : records) hll.add(record.stratum);
        },
        [&] {
          const double truth_d = static_cast<double>(truth.distinct);
          return std::abs(hll.estimate() - truth_d) / truth_d;
        });
    const auto sample_distinct = measure(records.size(), sample_digest, [&] {
      const double truth_d = static_cast<double>(truth.distinct);
      const double est =
          static_cast<double>(estimation::sample_distinct(sample, key_fn));
      return std::abs(est - truth_d) / truth_d;
    });
    runs_json.push(run_json("sketch", "hll", cell.regime, cell.universe,
                            records.size(), hll_measured));
    runs_json.push(run_json("sample", "hll", cell.regime, cell.universe,
                            records.size(), sample_distinct));
    table.add_row({cell.regime, std::to_string(cell.universe), "distinct",
                   Table::num(hll_measured.measured_error),
                   Table::num(sample_distinct.measured_error),
                   bench::format_throughput(hll_measured.records_per_sec),
                   bench::format_throughput(sample_distinct.records_per_sec)});

    // ---- Log-bucket quantiles vs weight-expanded sample quantiles.
    sketch::QuantileSketch quant(kQuantileAlpha);
    const auto quant_measured = measure(
        records.size(),
        [&] {
          quant = sketch::QuantileSketch(kQuantileAlpha);
          for (const auto& record : records) quant.update(record.value);
        },
        [&] {
          std::vector<double> answers;
          for (const double q : kProbes) answers.push_back(quant.quantile(q));
          return quantile_error(truth, answers);
        });
    const auto sample_quant = measure(records.size(), sample_digest, [&] {
      std::vector<double> answers;
      for (const double q : kProbes) {
        answers.push_back(estimation::sample_quantile(sample, q));
      }
      return quantile_error(truth, answers);
    });
    runs_json.push(run_json("sketch", "kll", cell.regime, cell.universe,
                            records.size(), quant_measured));
    runs_json.push(run_json("sample", "kll", cell.regime, cell.universe,
                            records.size(), sample_quant));
    table.add_row({cell.regime, std::to_string(cell.universe), "quantiles",
                   Table::num(quant_measured.measured_error),
                   Table::num(sample_quant.measured_error),
                   bench::format_throughput(quant_measured.records_per_sec),
                   bench::format_throughput(sample_quant.records_per_sec)});
  }
  table.print();

  auto meta = bench::Json::object();
  meta.set("scale", bench::bench_scale());
  meta.set("records_per_cell", count);
  meta.set("passes", kPasses);
  meta.set("sample_fraction", kSampleFraction);
  meta.set("top_k", kTopK);
  meta.set("cm_epsilon", kCmEpsilon);
  meta.set("cm_delta", kCmDelta);
  meta.set("hll_epsilon", kHllEpsilon);
  meta.set("quantile_alpha", kQuantileAlpha);
  auto body = bench::Json::object();
  body.set("meta", meta);
  body.set("runs", runs_json);
  bench::write_bench_json("micro_sketches", body);

  bench::paper_shape(
      "Expected shape: the weight-scaled sample tracks Zipf heavy hitters "
      "but misses uniform ones; sample_distinct undercounts whenever the "
      "universe outruns the budget while HLL stays within its 2% band; and "
      "tail quantiles from the sample wobble where the deterministic "
      "log-bucket sketch holds its alpha bound — all at a fixed small "
      "memory cost and full-stream digest rates.");
  return 0;
}
