// Figure 7 reproduction (paper §5.7-I): the mean of the received items,
// estimated every 5 s over a 10 s sliding window during a 10-minute run on
// the skewed Gaussian stream (A(100,10) 80%, B(1000,100) 19%,
// C(10000,1000) 1%), for SRS / STS / StreamApprox against the ground truth.
#include <cstdio>
#include <map>

#include "bench_common.h"
#include "common/stats.h"
#include "workload/synthetic.h"

namespace {

using namespace streamapprox;
using namespace streamapprox::bench;
using core::SystemKind;

std::map<std::int64_t, double> window_means(
    const std::vector<engine::WindowResult>& windows) {
  std::map<std::int64_t, double> means;
  const core::QuerySpec query{core::Aggregation::kMean, false};
  for (const auto& estimate : core::evaluate_windows(windows, query)) {
    means[estimate.window_end_us] = estimate.overall.estimate;
  }
  return means;
}

}  // namespace

int main() {
  std::printf("Figure 7: windowed mean over a 10-minute observation, skewed "
              "Gaussian 80/19/1%%, window 10 s, slide 5 s (scale %.2f)\n",
              bench_scale());

  // 600 s of event time; the rate scales, the duration (and thus the 120
  // slides of the paper's x-axis) stays fixed.
  const double rate = scaled_rate(10000.0);
  workload::SyntheticStream stream(
      workload::skewed_gaussian_substreams(rate), 77);
  const auto records = stream.generate(600.0);

  auto config = default_config();
  config.sampling_fraction = 0.6;

  const auto srs =
      core::run_system(SystemKind::kSparkSRS, records, config);
  const auto sts =
      core::run_system(SystemKind::kSparkSTS, records, config);
  const auto approx =
      core::run_system(SystemKind::kSparkApprox, records, config);
  const auto exact = core::exact_window_results(records, config.window);

  const auto truth = window_means(exact);
  const auto srs_means = window_means(srs.windows);
  const auto sts_means = window_means(sts.windows);
  const auto approx_means = window_means(approx.windows);

  Table table(
      "Figure 7(a,b,c): mean value per 5 s slide (10-minute observation)",
      {"t (s)", "Ground truth", "SRS", "STS", "StreamApprox"});
  struct ErrorAccumulator {
    double total = 0.0;
    double worst = 0.0;
    int count = 0;
    void add(double approx_value, double exact_value) {
      const double err = streamapprox::relative_error(approx_value,
                                                      exact_value);
      total += err;
      worst = std::max(worst, err);
      ++count;
    }
    double mean() const { return count == 0 ? 0.0 : total / count; }
  };
  ErrorAccumulator srs_err;
  ErrorAccumulator sts_err;
  ErrorAccumulator approx_err;

  for (const auto& [end_us, exact_mean] : truth) {
    const auto pick = [end_us = end_us](
        const std::map<std::int64_t, double>& means) {
      auto it = means.find(end_us);
      return it == means.end() ? 0.0 : it->second;
    };
    const double srs_mean = pick(srs_means);
    const double sts_mean = pick(sts_means);
    const double approx_mean = pick(approx_means);
    srs_err.add(srs_mean, exact_mean);
    sts_err.add(sts_mean, exact_mean);
    approx_err.add(approx_mean, exact_mean);
    table.add_row({Table::num(static_cast<double>(end_us) / 1e6, 0),
                   Table::num(exact_mean, 2), Table::num(srs_mean, 2),
                   Table::num(sts_mean, 2), Table::num(approx_mean, 2)});
  }
  table.print();

  Table summary("Figure 7 summary: deviation from ground truth across the "
                "10-minute observation",
                {"System", "mean |rel err| (%)", "max |rel err| (%)"});
  summary.add_row({"Spark-based SRS", Table::num(100 * srs_err.mean(), 3),
                   Table::num(100 * srs_err.worst, 3)});
  summary.add_row({"Spark-based STS", Table::num(100 * sts_err.mean(), 3),
                   Table::num(100 * sts_err.worst, 3)});
  summary.add_row({"StreamApprox", Table::num(100 * approx_err.mean(), 3),
                   Table::num(100 * approx_err.worst, 3)});
  summary.print();
  paper_shape(
      "STS and StreamApprox hug the ground-truth line; SRS scatters "
      "visibly because the minority sub-stream C is under-sampled "
      "(Fig. 7a vs 7b/7c).");
  return 0;
}
