// Figure 4 reproduction (paper §5.2, §5.3) — synthetic Gaussian stream:
//   (a) throughput vs sampling fraction, all six systems
//   (b) accuracy loss vs sampling fraction
//   (c) throughput vs batch interval (250/500/1000 ms), Spark-based systems
#include <cstdio>
#include <map>

#include "bench_common.h"
#include "workload/synthetic.h"

namespace {

using namespace streamapprox;
using namespace streamapprox::bench;
using core::SystemKind;

constexpr SystemKind kSampledSystems[] = {
    SystemKind::kFlinkApprox,
    SystemKind::kSparkApprox,
    SystemKind::kSparkSRS,
    SystemKind::kSparkSTS,
};

}  // namespace

int main() {
  std::printf("Figure 4: micro-benchmark on the synthetic Gaussian stream\n");
  std::printf("(sub-streams A(10,5), B(1000,50), C(10000,500), equal rates; "
              "scale %.2f)\n", bench_scale());

  // 20 s of event time at 100k items/s => windows at the paper's 10s/5s.
  // The duration is fixed (windows must complete); the rate scales.
  workload::SyntheticStream stream(
      workload::gaussian_substreams(scaled_rate(100000.0)), /*seed=*/2017);
  const auto records = stream.generate(20.0);

  const core::QuerySpec query{core::Aggregation::kMean, false};
  const std::vector<int> fractions = {10, 20, 40, 60, 80, 90};

  // ---- One run per (system, fraction); both 4a and 4b read from it.
  std::map<std::pair<SystemKind, int>, Measured> runs;
  for (SystemKind kind : kSampledSystems) {
    for (int f : fractions) {
      auto config = default_config();
      config.sampling_fraction = f / 100.0;
      runs[{kind, f}] = measure_system(kind, records, config, query);
    }
  }
  const auto native_spark = measure_system(SystemKind::kNativeSpark, records,
                                           default_config(), query);
  const auto native_flink = measure_system(SystemKind::kNativeFlink, records,
                                           default_config(), query);

  // ---- Figure 4 (a): throughput vs sampling fraction.
  {
    Table table("Figure 4(a): throughput (items/s) vs sampling fraction (%)",
                {"System", "10", "20", "40", "60", "80", "Native"});
    for (SystemKind kind : kSampledSystems) {
      std::vector<std::string> row = {core::system_name(kind)};
      for (int f : {10, 20, 40, 60, 80}) {
        row.push_back(format_throughput(runs[{kind, f}].throughput));
      }
      row.push_back("-");
      table.add_row(row);
    }
    table.add_row({"Native Spark", "-", "-", "-", "-", "-",
                   format_throughput(native_spark.throughput)});
    table.add_row({"Native Flink", "-", "-", "-", "-", "-",
                   format_throughput(native_flink.throughput)});
    table.print();
    paper_shape(
        "StreamApprox ~= SRS > Native > STS; Spark-StreamApprox 1.68x-2.60x "
        "over STS (60%/10%); Flink-StreamApprox 2.13x-3x over STS; "
        "Spark-StreamApprox 1.8x over native Spark at 60%.");
    const double spark_vs_sts_60 =
        runs[{SystemKind::kSparkApprox, 60}].throughput /
        runs[{SystemKind::kSparkSTS, 60}].throughput;
    const double spark_vs_sts_10 =
        runs[{SystemKind::kSparkApprox, 10}].throughput /
        runs[{SystemKind::kSparkSTS, 10}].throughput;
    const double flink_vs_sts_60 =
        runs[{SystemKind::kFlinkApprox, 60}].throughput /
        runs[{SystemKind::kSparkSTS, 60}].throughput;
    const double spark_vs_native_60 =
        runs[{SystemKind::kSparkApprox, 60}].throughput /
        native_spark.throughput;
    const double flink_vs_native_60 =
        runs[{SystemKind::kFlinkApprox, 60}].throughput /
        native_flink.throughput;
    std::printf(
        "  [measured] SparkApprox/STS: %.2fx @60%%, %.2fx @10%%; "
        "FlinkApprox/STS: %.2fx @60%%; SparkApprox/native: %.2fx @60%%; "
        "FlinkApprox/native: %.2fx @60%%\n",
        spark_vs_sts_60, spark_vs_sts_10, flink_vs_sts_60,
        spark_vs_native_60, flink_vs_native_60);
  }

  // ---- Figure 4 (b): accuracy loss vs sampling fraction.
  {
    Table table("Figure 4(b): accuracy loss (%) vs sampling fraction (%)",
                {"System", "10", "20", "40", "60", "80", "90"});
    for (SystemKind kind : kSampledSystems) {
      std::vector<std::string> row = {core::system_name(kind)};
      for (int f : fractions) {
        row.push_back(Table::num(runs[{kind, f}].accuracy_loss, 3));
      }
      table.add_row(row);
    }
    table.print();
    paper_shape(
        "Loss decreases with fraction; STS <= StreamApprox < SRS "
        "(at 60%: STS 0.29%, StreamApprox 0.38-0.44%, SRS 0.61%).");
  }

  // ---- Figure 4 (c): throughput vs batch interval (Spark-based systems).
  {
    Table table("Figure 4(c): throughput (items/s) vs batch interval (ms), "
                "fraction 60%",
                {"System", "250", "500", "1000"});
    for (SystemKind kind : {SystemKind::kSparkApprox, SystemKind::kSparkSRS,
                            SystemKind::kSparkSTS}) {
      std::vector<std::string> row = {core::system_name(kind)};
      for (int interval_ms : {250, 500, 1000}) {
        auto config = default_config();
        config.batch_interval_us = interval_ms * 1000;
        const auto m = measure_system(kind, records, config, query);
        row.push_back(format_throughput(m.throughput));
      }
      table.add_row(row);
    }
    table.print();
    paper_shape(
        "Smaller batches widen StreamApprox's lead: 1.36x/2.33x over "
        "SRS/STS at 250 ms vs 1.07x/1.63x at 1000 ms.");
  }
  return 0;
}
