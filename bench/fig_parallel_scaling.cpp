// Parallel scaling of the live sharded execution path: a Zipf-skewed
// synthetic workload (the §5.7 long-tail property, spread over enough
// sub-streams to be parallelisable) through the StreamApprox facade at
// 1/2/4/8 workers, replayed through the Kafka-like broker in saturation
// mode. Workers split the topic's partitions, sample their sub-streams with
// local per-slide OASRS samplers, and a merger closes slides by
// OasrsSampler::merge() behind the global low-watermark — so throughput
// should track the worker count while every window's estimator inputs stay
// equivalent to the sequential path's.
//
// Per-record ingest work (field parsing / conversion, the deployment work
// the paper's Kafka connector performs before sampling) is modelled with a
// configurable compute cost so the bench measures the parallelisable
// pipeline rather than the broker's memcpy. Override with
// SA_INGEST_ROUNDS (default 64); scale the workload with SA_BENCH_SCALE.
//
// NOTE: results reflect the machine's core count — on a single-core
// container all worker counts collapse to the same throughput.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/clock.h"
#include "common/table.h"
#include "core/stream_approx.h"
#include "ingest/replay.h"
#include "workload/synthetic.h"

namespace {

using namespace streamapprox;

std::uint32_t ingest_rounds() {
  const char* env = std::getenv("SA_INGEST_ROUNDS");
  if (env == nullptr) return 64;
  const long value = std::atol(env);
  return value >= 0 ? static_cast<std::uint32_t>(value) : 64;
}

struct Run {
  double throughput = 0.0;
  double wall_seconds = 0.0;
  std::size_t windows = 0;
  std::uint64_t seen = 0;
  core::ShardedRunStats stats;
};

/// One run as a BENCH_*.json trajectory entry (shared with fig_steal_skew's
/// schema so scripts/check_bench_json.py validates both the same way).
bench::Json run_json(const std::string& mode, std::size_t workers,
                     const Run& run) {
  auto entry = bench::Json::object();
  entry.set("mode", mode);
  entry.set("workers", workers);
  entry.set("throughput", run.throughput);
  entry.set("wall_seconds", run.wall_seconds);
  entry.set("windows", run.windows);
  entry.set("exchanges", run.stats.exchanges);
  entry.set("owner_pops", run.stats.owner_pops);
  entry.set("steals", run.stats.steals);
  entry.set("injector_pushes", run.stats.injector_pushes);
  entry.set("injector_pops", run.stats.injector_pops);
  entry.set("batches_absorbed", run.stats.batches_absorbed);
  entry.set("records_absorbed", run.stats.records_absorbed);
  // Exchange routing-kernel accounting (0 in group mode; the bulk-only
  // fields also 0 when routed record-at-a-time).
  auto exchange_kernel = bench::Json::object();
  exchange_kernel.set("rounds", run.stats.exchange_rounds);
  exchange_kernel.set("records_routed", run.stats.exchange_records_routed);
  exchange_kernel.set("runs_walked", run.stats.exchange_runs_walked);
  exchange_kernel.set("table_probes", run.stats.exchange_table_probes);
  exchange_kernel.set("scatter_reserves", run.stats.exchange_scatter_reserves);
  entry.set("exchange_kernel", exchange_kernel);
  auto per_worker = bench::Json::array();
  for (const std::uint64_t records : run.stats.per_worker_records) {
    per_worker.push(run.wall_seconds > 0.0
                        ? static_cast<double>(records) / run.wall_seconds
                        : 0.0);
  }
  entry.set("records_per_sec_per_worker", per_worker);
  std::vector<double> lag;
  lag.reserve(run.stats.watermark_lag_us.size());
  for (const std::int64_t us : run.stats.watermark_lag_us) {
    lag.push_back(static_cast<double>(us));
  }
  auto lag_json = bench::Json::object();
  lag_json.set("p50_us", bench::percentile(lag, 50.0));
  lag_json.set("p90_us", bench::percentile(lag, 90.0));
  lag_json.set("p99_us", bench::percentile(lag, 99.0));
  lag_json.set("samples", lag.size());
  entry.set("watermark_lag", lag_json);
  return entry;
}

Run run_with_workers(const std::vector<engine::Record>& records,
                     std::size_t workers, std::size_t partitions,
                     bool use_exchange, std::size_t query_count = 1,
                     bool bulk_routing = true) {
  ingest::Broker broker;
  broker.create_topic("scaling", partitions);
  // Pre-load the topic so the measurement covers the processing pipeline,
  // not the replay producer.
  {
    ingest::Producer producer(broker, "scaling");
    producer.send_batch(records);
    producer.finish();
  }

  core::StreamApproxConfig config;
  config.topic = "scaling";
  config.budget = estimation::QueryBudget::fraction(0.4);
  config.window = {2'000'000, 1'000'000};
  config.workers = workers;
  config.use_exchange = use_exchange;
  config.bulk_exchange_routing = bulk_routing;
  config.ingest_cost = {ingest_rounds()};
  config.seed = 1234;
  // One or more registered queries over the SAME sampled stream: the
  // query-registry fan-out (sample once, answer N).
  config.queries.aggregate("mean", {core::Aggregation::kMean, false});
  for (std::size_t q = 1; q < query_count; ++q) {
    switch (q % 3) {
      case 0:
        config.queries.aggregate("mean/" + std::to_string(q),
                                 {core::Aggregation::kMean, false});
        break;
      case 1:
        config.queries.aggregate("sum/stratum/" + std::to_string(q),
                                 {core::Aggregation::kSum, true});
        break;
      case 2:
        config.queries.histogram("hist/" + std::to_string(q),
                                 {0.0, 8000.0, 32});
        break;
    }
  }

  Run run;
  core::StreamApprox system(broker, config);
  Stopwatch watch;
  system.run([&](const core::WindowOutput& output) {
    ++run.windows;
    run.seen = std::max(run.seen, output.records_seen);
  });
  run.wall_seconds = watch.seconds();
  run.throughput = run.wall_seconds > 0.0
                       ? static_cast<double>(records.size()) / run.wall_seconds
                       : 0.0;
  run.stats = system.last_run_stats();
  return run;
}

}  // namespace

/// Zipf(0.5)-skewed sub-streams: rate_i ∝ 1/sqrt(i+1). Keeps the §5.7
/// long-tail property (the hottest sub-stream is 8x the coldest at 64
/// strata) while no single stratum exceeds ~7% of the load — the paper's
/// 3-substream 80/19/1 skew would put 80% of the records on one worker and
/// cap any speedup at 1.25x regardless of core count (Amdahl), which tests
/// sampling fairness, not scaling.
std::vector<workload::SubStreamSpec> zipf_skewed_substreams(
    std::size_t strata, double total_rate) {
  double norm = 0.0;
  for (std::size_t i = 0; i < strata; ++i) {
    norm += 1.0 / std::sqrt(static_cast<double>(i + 1));
  }
  std::vector<workload::SubStreamSpec> specs;
  specs.reserve(strata);
  for (std::size_t i = 0; i < strata; ++i) {
    workload::SubStreamSpec spec;
    spec.id = static_cast<sampling::StratumId>(i);
    spec.dist = workload::Gaussian{100.0 * static_cast<double>(i + 1),
                                   10.0 * static_cast<double>(i + 1)};
    spec.rate_per_sec =
        total_rate / (std::sqrt(static_cast<double>(i + 1)) * norm);
    specs.push_back(spec);
  }
  return specs;
}

int main() {
  const std::size_t hardware = std::thread::hardware_concurrency();
  std::printf(
      "Parallel scaling: sharded OASRS workers vs sequential (scale %.2f, "
      "ingest rounds %u, %zu hardware threads)\n",
      bench::bench_scale(), ingest_rounds(), hardware);

  workload::SyntheticStream stream(
      zipf_skewed_substreams(64, bench::scaled_rate(300000.0)), 31);
  const auto records = stream.generate(8.0);
  std::printf(
      "workload: %zu records over 8 s event time, 64 Zipf-skewed strata\n\n",
      records.size());

  auto runs_json = bench::Json::array();

  Table table("Sharded execution throughput (8 partitions, exchange)",
              {"Workers", "Throughput", "Wall s", "Windows", "Speedup"});
  double base = 0.0;
  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    const auto run = run_with_workers(records, workers, 8,
                                      /*use_exchange=*/true);
    if (workers == 1) base = run.throughput;
    std::vector<std::string> row = {
        std::to_string(workers), bench::format_throughput(run.throughput),
        Table::num(run.wall_seconds), std::to_string(run.windows),
        Table::num(base > 0.0 ? run.throughput / base : 0.0) + "x"};
    table.add_row(std::move(row));
    runs_json.push(run_json("exchange", workers, run));
  }
  table.print();

  // The decoupling the exchange buys: a 2-partition topic (which caps the
  // consumer-group mode at 2 workers) still scales to 8 workers when the
  // exchange re-keys batches by stratum hash.
  Table decoupled("Worker/partition decoupling (2 partitions)",
                  {"Workers", "Mode", "Throughput", "Speedup"});
  double group_base = 0.0;
  for (const std::size_t workers : {2u, 8u}) {
    const auto grouped = run_with_workers(records, workers, 2,
                                          /*use_exchange=*/false);
    if (workers == 2) group_base = grouped.throughput;
    decoupled.add_row({std::to_string(workers), "group",
                       bench::format_throughput(grouped.throughput),
                       Table::num(group_base > 0.0
                                      ? grouped.throughput / group_base
                                      : 0.0) +
                           "x"});
    runs_json.push(run_json("group", workers, grouped));
    const auto exchanged = run_with_workers(records, workers, 2,
                                            /*use_exchange=*/true);
    decoupled.add_row({std::to_string(workers), "exchange",
                       bench::format_throughput(exchanged.throughput),
                       Table::num(group_base > 0.0
                                      ? exchanged.throughput / group_base
                                      : 0.0) +
                           "x"});
    runs_json.push(run_json("exchange-2p", workers, exchanged));
  }
  decoupled.print();

  // End-to-end effect of the exchange's two-pass bulk routing kernel: the
  // same pipeline with routing forced back to the record-at-a-time loop.
  // The isolated kernel gap is micro_exchange's job; here it is diluted by
  // sampling, windowing and the ingest cost model, so the interesting
  // number is how much of it survives at the pipeline level.
  Table routing("Exchange routing kernel, end to end (8 partitions)",
                {"Workers", "Routing", "Throughput", "Bulk speedup"});
  for (const std::size_t workers : {1u, 4u}) {
    const auto bulk = run_with_workers(records, workers, 8,
                                       /*use_exchange=*/true);
    const auto scalar = run_with_workers(records, workers, 8,
                                         /*use_exchange=*/true,
                                         /*query_count=*/1,
                                         /*bulk_routing=*/false);
    routing.add_row({std::to_string(workers), "per-record",
                     bench::format_throughput(scalar.throughput), "1.00x"});
    routing.add_row(
        {std::to_string(workers), "bulk",
         bench::format_throughput(bulk.throughput),
         Table::num(scalar.throughput > 0.0
                        ? bulk.throughput / scalar.throughput
                        : 0.0) +
             "x"});
    runs_json.push(run_json("exchange-bulk-route", workers, bulk));
    runs_json.push(run_json("exchange-scalar-route", workers, scalar));
  }
  routing.print();

  // The economics of the query registry: registering more queries reuses
  // the ONE ingested/exchanged/sampled/windowed stream, so N queries cost
  // far less than N pipelines (which would re-ingest and re-sample the
  // stream N times over).
  Table fanout("Query-registry fan-out (4 workers, 8 partitions)",
               {"Registered queries", "Throughput", "Wall s",
                "vs 1 query", "vs N pipelines"});
  double single_wall = 0.0;
  for (const std::size_t queries : {1u, 2u, 4u, 8u}) {
    const auto run = run_with_workers(records, 4, 8,
                                      /*use_exchange=*/true, queries);
    runs_json.push(run_json("fanout-" + std::to_string(queries), 4, run));
    if (queries == 1) single_wall = run.wall_seconds;
    const double n_pipelines =
        single_wall * static_cast<double>(queries);
    fanout.add_row(
        {std::to_string(queries), bench::format_throughput(run.throughput),
         Table::num(run.wall_seconds),
         Table::num(single_wall > 0.0 ? run.wall_seconds / single_wall : 0.0)
             + "x",
         Table::num(run.wall_seconds > 0.0 ? n_pipelines / run.wall_seconds
                                           : 0.0) +
             "x cheaper"});
  }
  fanout.print();

  auto meta = bench::Json::object();
  meta.set("scale", bench::bench_scale());
  meta.set("ingest_rounds", ingest_rounds());
  meta.set("hardware_threads", hardware);
  meta.set("records", records.size());
  meta.set("strata", 64);
  auto body = bench::Json::object();
  body.set("meta", meta);
  body.set("runs", runs_json);
  bench::write_bench_json("parallel_scaling", body);

  bench::paper_shape(
      "Fig 6(a) shape: near-linear throughput growth with cores while the "
      "merged estimates stay within the sequential path's error bounds; the "
      "exchange rows keep growing past the partition count where the group "
      "rows plateau. The fan-out table shows N registered queries riding one "
      "sampled stream at a fraction of N separate pipelines' cost.");
  return 0;
}
