// Figure 9 reproduction (paper §6.3) — New York taxi ride analytics case
// study on the synthetic NYC-like ride stream (query: average trip distance
// per start borough per sliding window):
//   (a) throughput vs sampling fraction (+ natives)
//   (b) accuracy loss vs sampling fraction
//   (c) throughput at fixed accuracy loss (0.1% / 0.4%)
#include <cmath>
#include <cstdio>
#include <map>

#include "bench_common.h"
#include "workload/taxi.h"

namespace {

using namespace streamapprox;
using namespace streamapprox::bench;
using core::SystemKind;

constexpr SystemKind kSampledSystems[] = {
    SystemKind::kFlinkApprox,
    SystemKind::kSparkApprox,
    SystemKind::kSparkSRS,
    SystemKind::kSparkSTS,
};

}  // namespace

int main() {
  std::printf("Figure 9: NYC taxi ride analytics case study (synthetic "
              "DEBS'15-like rides across 6 boroughs; scale %.2f)\n",
              bench_scale());

  // 20 s of event time; rate (and thus record count) scales.
  workload::TaxiConfig taxi;
  taxi.rides_per_sec = scaled_rate(100000.0);
  const auto records =
      workload::generate_taxi_rides(taxi, scaled(2'000'000), /*seed=*/99);
  const core::QuerySpec query{core::Aggregation::kMean, true};

  const std::vector<int> fractions = {10, 20, 40, 60, 80, 90};
  std::map<std::pair<SystemKind, int>, Measured> runs;
  for (SystemKind kind : kSampledSystems) {
    for (int f : fractions) {
      auto config = default_config();
      config.sampling_fraction = f / 100.0;
      runs[{kind, f}] = measure_system(kind, records, config, query);
    }
  }
  const auto native_spark = measure_system(SystemKind::kNativeSpark, records,
                                           default_config(), query);
  const auto native_flink = measure_system(SystemKind::kNativeFlink, records,
                                           default_config(), query);

  {
    Table table("Figure 9(a): throughput (items/s) vs sampling fraction (%)",
                {"System", "10", "20", "40", "60", "80", "Native"});
    for (SystemKind kind : kSampledSystems) {
      std::vector<std::string> row = {core::system_name(kind)};
      for (int f : {10, 20, 40, 60, 80}) {
        row.push_back(format_throughput(runs[{kind, f}].throughput));
      }
      row.push_back("-");
      table.add_row(std::move(row));
    }
    table.add_row({"Native Spark", "-", "-", "-", "-", "-",
                   format_throughput(native_spark.throughput)});
    table.add_row({"Native Flink", "-", "-", "-", "-", "-",
                   format_throughput(native_flink.throughput)});
    table.print();
    paper_shape(
        "Spark-StreamApprox ~= SRS, ~2x over STS; Flink-StreamApprox 1.5x "
        "over Spark-StreamApprox; StreamApprox 1.2x/1.28x over native "
        "Spark/Flink at 60%; native Spark > STS.");
  }

  {
    Table table("Figure 9(b): accuracy loss (%) vs sampling fraction (%), "
                "query: average distance per borough",
                {"System", "10", "20", "40", "60", "80", "90"});
    for (SystemKind kind : kSampledSystems) {
      std::vector<std::string> row = {core::system_name(kind)};
      for (int f : fractions) {
        row.push_back(Table::num(runs[{kind, f}].accuracy_loss, 3));
      }
      table.add_row(std::move(row));
    }
    table.print();
    paper_shape("All four systems achieve very similar (sub-1%) accuracy on "
                "this workload.");
  }

  {
    Table table("Figure 9(c): throughput (items/s) at fixed accuracy loss",
                {"System", "loss 0.1%", "loss 0.4%"});
    for (SystemKind kind : kSampledSystems) {
      std::vector<std::string> row = {core::system_name(kind)};
      for (double target : {0.1, 0.4}) {
        // Best throughput whose accuracy loss meets the target (fall back
        // to the closest run if none does).
        Measured best;
        Measured closest;
        double best_gap = 1e18;
        bool met = false;
        for (int f : fractions) {
          const auto& m = runs[{kind, f}];
          if (m.accuracy_loss <= target && m.throughput > best.throughput) {
            best = m;
            met = true;
          }
          const double gap = std::abs(m.accuracy_loss - target);
          if (gap < best_gap) {
            best_gap = gap;
            closest = m;
          }
        }
        row.push_back(format_throughput((met ? best : closest).throughput));
      }
      table.add_row(std::move(row));
    }
    table.print();
    paper_shape(
        "At 1% loss: Flink-StreamApprox 1.6x over Spark-StreamApprox/SRS "
        "and 3x over STS.");
  }
  return 0;
}
