// The work-stealing morsel scheduler under stratum skew: ONE hot stratum
// carries most of the load, so static worker↔channel binding drowns one
// worker while the rest idle (stratum-affine routing sends the whole hot
// sub-stream to a single channel — exactly the skew of the paper's §5.7
// long-tail workloads, taken to its worst case). With stealing enabled,
// idle workers pull the hot channel's backlog off the loaded worker's deque
// and absorb it into their own OASRS samplers, which merge at slide close —
// so throughput should approach the balanced case while per-window
// records_seen stays identical (tests/parallel_equivalence_test.cpp proves
// the identity; this bench measures the speed).
//
// Three schedules over the same workload and worker count:
//   static       work_stealing=false — the PR 2 baseline;
//   steal        work_stealing=true, one exchange;
//   steal-2x     work_stealing=true, two exchange shards splitting the
//                partition poll/route work.
//
// Writes BENCH_steal_skew.json (schema shared with fig_parallel_scaling;
// scripts/check_bench_json.py validates both). The ≥1.5x steal-vs-static
// acceptance ratio only shows on a multi-core machine — a single-core
// container collapses every schedule to the same throughput.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/clock.h"
#include "common/table.h"
#include "core/stream_approx.h"
#include "ingest/broker.h"
#include "workload/synthetic.h"

namespace {

using namespace streamapprox;

std::uint32_t ingest_rounds() {
  const char* env = std::getenv("SA_INGEST_ROUNDS");
  if (env == nullptr) return 64;
  const long value = std::atol(env);
  return value >= 0 ? static_cast<std::uint32_t>(value) : 64;
}

constexpr std::size_t kWorkers = 8;
constexpr std::size_t kPartitions = 8;
constexpr std::size_t kStrata = 16;
constexpr double kHotShare = 0.85;  ///< fraction of load on stratum 0

/// One hot stratum at kHotShare of the total rate; the rest split evenly.
std::vector<workload::SubStreamSpec> hot_stratum_substreams(
    double total_rate) {
  std::vector<workload::SubStreamSpec> specs;
  specs.reserve(kStrata);
  for (std::size_t i = 0; i < kStrata; ++i) {
    workload::SubStreamSpec spec;
    spec.id = static_cast<sampling::StratumId>(i);
    spec.dist = workload::Gaussian{100.0 * static_cast<double>(i + 1),
                                   10.0 * static_cast<double>(i + 1)};
    spec.rate_per_sec =
        i == 0 ? total_rate * kHotShare
               : total_rate * (1.0 - kHotShare) /
                     static_cast<double>(kStrata - 1);
    specs.push_back(spec);
  }
  return specs;
}

struct Run {
  double throughput = 0.0;
  double wall_seconds = 0.0;
  std::size_t windows = 0;
  core::ShardedRunStats stats;
};

Run run_schedule(const std::vector<engine::Record>& records,
                 bool work_stealing, std::size_t exchanges) {
  ingest::Broker broker;
  broker.create_topic("skew", kPartitions);
  {
    ingest::Producer producer(broker, "skew");
    producer.send_batch(records);
    producer.finish();
  }

  core::StreamApproxConfig config;
  config.topic = "skew";
  config.budget = estimation::QueryBudget::fraction(0.4);
  config.window = {2'000'000, 1'000'000};
  config.workers = kWorkers;
  config.use_exchange = true;
  config.work_stealing = work_stealing;
  config.exchanges = exchanges;
  config.ingest_cost = {ingest_rounds()};
  config.seed = 1234;
  config.queries.aggregate("mean", {core::Aggregation::kMean, false});

  Run run;
  core::StreamApprox system(broker, config);
  Stopwatch watch;
  system.run([&](const core::WindowOutput&) { ++run.windows; });
  run.wall_seconds = watch.seconds();
  run.throughput = run.wall_seconds > 0.0
                       ? static_cast<double>(records.size()) / run.wall_seconds
                       : 0.0;
  run.stats = system.last_run_stats();
  return run;
}

bench::Json run_json(const std::string& mode, const Run& run) {
  auto entry = bench::Json::object();
  entry.set("mode", mode);
  entry.set("workers", kWorkers);
  entry.set("throughput", run.throughput);
  entry.set("wall_seconds", run.wall_seconds);
  entry.set("windows", run.windows);
  entry.set("exchanges", run.stats.exchanges);
  entry.set("owner_pops", run.stats.owner_pops);
  entry.set("steals", run.stats.steals);
  entry.set("injector_pushes", run.stats.injector_pushes);
  entry.set("injector_pops", run.stats.injector_pops);
  entry.set("batches_absorbed", run.stats.batches_absorbed);
  entry.set("records_absorbed", run.stats.records_absorbed);
  auto per_worker = bench::Json::array();
  for (const std::uint64_t records : run.stats.per_worker_records) {
    per_worker.push(run.wall_seconds > 0.0
                        ? static_cast<double>(records) / run.wall_seconds
                        : 0.0);
  }
  entry.set("records_per_sec_per_worker", per_worker);
  std::vector<double> lag;
  lag.reserve(run.stats.watermark_lag_us.size());
  for (const std::int64_t us : run.stats.watermark_lag_us) {
    lag.push_back(static_cast<double>(us));
  }
  auto lag_json = bench::Json::object();
  lag_json.set("p50_us", bench::percentile(lag, 50.0));
  lag_json.set("p90_us", bench::percentile(lag, 90.0));
  lag_json.set("p99_us", bench::percentile(lag, 99.0));
  lag_json.set("samples", lag.size());
  entry.set("watermark_lag", lag_json);
  return entry;
}

/// Max / mean of the per-worker record counts: 1.0 is a perfectly balanced
/// schedule; kWorkers means one worker absorbed everything.
double imbalance(const core::ShardedRunStats& stats) {
  if (stats.per_worker_records.empty()) return 0.0;
  std::uint64_t max = 0, sum = 0;
  for (const std::uint64_t r : stats.per_worker_records) {
    max = std::max(max, r);
    sum += r;
  }
  if (sum == 0) return 0.0;
  return static_cast<double>(max) * static_cast<double>(kWorkers) /
         static_cast<double>(sum);
}

}  // namespace

int main() {
  const std::size_t hardware = std::thread::hardware_concurrency();
  std::printf(
      "Steal vs static under skew: 1 hot stratum (%.0f%%), %zu workers "
      "(scale %.2f, ingest rounds %u, %zu hardware threads)\n",
      kHotShare * 100.0, kWorkers, bench::bench_scale(), ingest_rounds(),
      hardware);

  workload::SyntheticStream stream(
      hot_stratum_substreams(bench::scaled_rate(300000.0)), 47);
  const auto records = stream.generate(8.0);
  std::printf("workload: %zu records over 8 s event time, %zu strata\n\n",
              records.size(), kStrata);

  auto runs_json = bench::Json::array();
  Table table("Morsel schedules under a hot stratum",
              {"Schedule", "Throughput", "Wall s", "Steals", "Injector",
               "Imbalance", "Speedup"});

  const auto statically = run_schedule(records, /*work_stealing=*/false,
                                       /*exchanges=*/1);
  runs_json.push(run_json("static", statically));
  const double base = statically.throughput;
  const auto add_row = [&](const char* label, const Run& run) {
    table.add_row({label, bench::format_throughput(run.throughput),
                   Table::num(run.wall_seconds),
                   std::to_string(run.stats.steals),
                   std::to_string(run.stats.injector_pops),
                   Table::num(imbalance(run.stats)) + "x",
                   Table::num(base > 0.0 ? run.throughput / base : 0.0) +
                       "x"});
  };
  add_row("static", statically);

  const auto stealing = run_schedule(records, /*work_stealing=*/true,
                                     /*exchanges=*/1);
  runs_json.push(run_json("steal", stealing));
  add_row("steal", stealing);

  const auto sharded = run_schedule(records, /*work_stealing=*/true,
                                    /*exchanges=*/2);
  runs_json.push(run_json("steal-2x", sharded));
  add_row("steal-2x", sharded);

  table.print();

  auto meta = bench::Json::object();
  meta.set("scale", bench::bench_scale());
  meta.set("ingest_rounds", ingest_rounds());
  meta.set("hardware_threads", hardware);
  meta.set("records", records.size());
  meta.set("strata", kStrata);
  meta.set("hot_share", kHotShare);
  auto body = bench::Json::object();
  body.set("meta", meta);
  body.set("runs", runs_json);
  bench::write_bench_json("steal_skew", body);

  bench::paper_shape(
      "Morsel-driven expectation (Leis et al. SIGMOD'14): work stealing "
      "recovers near-balanced throughput under skew that strands a static "
      "schedule on one worker — here >=1.5x over static binding on a "
      "multi-core machine, with per-window records_seen identical by the "
      "equivalence suite.");
  return 0;
}
