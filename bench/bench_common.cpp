#include "bench_common.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>

namespace streamapprox::bench {

double bench_scale() {
  static const double scale = [] {
    const char* env = std::getenv("SA_BENCH_SCALE");
    if (env == nullptr) return 1.0;
    const double value = std::atof(env);
    return std::clamp(value > 0.0 ? value : 1.0, 0.01, 100.0);
  }();
  return scale;
}

std::size_t scaled(std::size_t n) {
  const auto value =
      static_cast<std::size_t>(static_cast<double>(n) * bench_scale());
  return std::max<std::size_t>(1, value);
}

double scaled_rate(double rate) { return rate * bench_scale(); }

Measured measure_system(core::SystemKind kind,
                        const std::vector<engine::Record>& records,
                        const core::SystemConfig& config,
                        const core::QuerySpec& query) {
  const auto result = core::run_system(kind, records, config);

  // Exact windows are deterministic in (records, window config); cache them
  // across the many systems/fractions a bench sweeps over the same stream.
  struct CacheKey {
    const void* data;
    std::size_t size;
    std::int64_t window;
    std::int64_t slide;
    bool operator<(const CacheKey& o) const {
      return std::tie(data, size, window, slide) <
             std::tie(o.data, o.size, o.window, o.slide);
    }
  };
  static std::map<CacheKey, std::vector<engine::WindowResult>> cache;
  const CacheKey key{records.data(), records.size(), config.window.size_us,
                     config.window.slide_us};
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, core::exact_window_results(records, config.window))
             .first;
  }

  Measured measured;
  measured.throughput = result.throughput();
  measured.wall_seconds = result.wall_seconds;
  measured.windows = result.windows.size();
  measured.accuracy_loss =
      100.0 * core::mean_accuracy_loss(
                  core::evaluate_windows(result.windows, query),
                  core::evaluate_windows(it->second, query), query);
  return measured;
}

std::string format_throughput(double items_per_sec) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  if (items_per_sec >= 1e6) {
    out.precision(2);
    out << items_per_sec / 1e6 << "M";
  } else if (items_per_sec >= 1e3) {
    out.precision(1);
    out << items_per_sec / 1e3 << "K";
  } else {
    out.precision(0);
    out << items_per_sec;
  }
  return out.str();
}

void paper_shape(const std::string& text) {
  std::printf("  [paper] %s\n", text.c_str());
  std::fflush(stdout);
}

core::SystemConfig default_config() {
  core::SystemConfig config;
  config.sampling_fraction = 0.6;
  config.workers = 4;
  config.batch_interval_us = 500'000;
  config.window = {10'000'000, 5'000'000};
  config.query_cost = engine::QueryCost{32};
  config.stage_overhead = std::chrono::microseconds(500);
  config.seed = 2017;
  return config;
}

}  // namespace streamapprox::bench
