#include "bench_common.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

namespace streamapprox::bench {

double bench_scale() {
  static const double scale = [] {
    const char* env = std::getenv("SA_BENCH_SCALE");
    if (env == nullptr) return 1.0;
    const double value = std::atof(env);
    return std::clamp(value > 0.0 ? value : 1.0, 0.01, 100.0);
  }();
  return scale;
}

std::size_t scaled(std::size_t n) {
  const auto value =
      static_cast<std::size_t>(static_cast<double>(n) * bench_scale());
  return std::max<std::size_t>(1, value);
}

double scaled_rate(double rate) { return rate * bench_scale(); }

Measured measure_system(core::SystemKind kind,
                        const std::vector<engine::Record>& records,
                        const core::SystemConfig& config,
                        const core::QuerySpec& query) {
  const auto result = core::run_system(kind, records, config);

  // Exact windows are deterministic in (records, window config); cache them
  // across the many systems/fractions a bench sweeps over the same stream.
  struct CacheKey {
    const void* data;
    std::size_t size;
    std::int64_t window;
    std::int64_t slide;
    bool operator<(const CacheKey& o) const {
      return std::tie(data, size, window, slide) <
             std::tie(o.data, o.size, o.window, o.slide);
    }
  };
  static std::map<CacheKey, std::vector<engine::WindowResult>> cache;
  const CacheKey key{records.data(), records.size(), config.window.size_us,
                     config.window.slide_us};
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, core::exact_window_results(records, config.window))
             .first;
  }

  Measured measured;
  measured.throughput = result.throughput();
  measured.wall_seconds = result.wall_seconds;
  measured.windows = result.windows.size();
  measured.accuracy_loss =
      100.0 * core::mean_accuracy_loss(
                  core::evaluate_windows(result.windows, query),
                  core::evaluate_windows(it->second, query), query);
  return measured;
}

std::string format_throughput(double items_per_sec) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  if (items_per_sec >= 1e6) {
    out.precision(2);
    out << items_per_sec / 1e6 << "M";
  } else if (items_per_sec >= 1e3) {
    out.precision(1);
    out << items_per_sec / 1e3 << "K";
  } else {
    out.precision(0);
    out << items_per_sec;
  }
  return out.str();
}

void paper_shape(const std::string& text) {
  std::printf("  [paper] %s\n", text.c_str());
  std::fflush(stdout);
}

Json& Json::set(const std::string& key, Json value) {
  for (auto& [existing, member] : members_) {
    if (existing == key) {
      member = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(key, std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  elements_.push_back(std::move(value));
  return *this;
}

namespace {

void write_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

void Json::write(std::string& out, int indent) const {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  const std::string inner_pad(static_cast<std::size_t>(indent + 1) * 2, ' ');
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kNumber:
      if (is_integer_) {
        out += std::to_string(integer_);
      } else if (std::isfinite(number_)) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.9g", number_);
        out += buf;
      } else {
        out += "null";  // JSON has no Inf/NaN
      }
      break;
    case Kind::kString:
      write_escaped(out, string_);
      break;
    case Kind::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += "{\n";
      for (std::size_t i = 0; i < members_.size(); ++i) {
        out += inner_pad;
        write_escaped(out, members_[i].first);
        out += ": ";
        members_[i].second.write(out, indent + 1);
        if (i + 1 < members_.size()) out += ',';
        out += '\n';
      }
      out += pad;
      out += '}';
      break;
    }
    case Kind::kArray: {
      if (elements_.empty()) {
        out += "[]";
        break;
      }
      out += "[\n";
      for (std::size_t i = 0; i < elements_.size(); ++i) {
        out += inner_pad;
        elements_[i].write(out, indent + 1);
        if (i + 1 < elements_.size()) out += ',';
        out += '\n';
      }
      out += pad;
      out += ']';
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  write(out, 0);
  out += '\n';
  return out;
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double clamped = std::clamp(p, 0.0, 100.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(values.size())));
  return values[rank == 0 ? 0 : rank - 1];
}

std::string write_bench_json(const std::string& name, const Json& body) {
  // Flat envelope: the body's members follow the schema keys in order. A
  // non-object body nests under "result".
  Json merged = Json::object();
  merged.set("benchmark", name);
  merged.set("schema_version", 1);
  if (body.kind_ == Json::Kind::kObject) {
    for (const auto& [key, value] : body.members_) merged.set(key, value);
  } else {
    merged.set("result", body);
  }

  const char* dir = std::getenv("SA_BENCH_JSON_DIR");
  std::string path = dir != nullptr && *dir != '\0' ? std::string(dir) : ".";
  if (path.back() != '/') path += '/';
  path += "BENCH_" + name + ".json";

  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "  [bench] cannot write %s\n", path.c_str());
    return {};
  }
  out << merged.dump();
  std::printf("  [bench] wrote %s\n", path.c_str());
  std::fflush(stdout);
  return path;
}

core::SystemConfig default_config() {
  core::SystemConfig config;
  config.sampling_fraction = 0.6;
  config.workers = 4;
  config.batch_interval_us = 500'000;
  config.window = {10'000'000, 5'000'000};
  config.query_cost = engine::QueryCost{32};
  config.stage_overhead = std::chrono::microseconds(500);
  config.seed = 2017;
  return config;
}

}  // namespace streamapprox::bench
