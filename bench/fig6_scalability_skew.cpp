// Figure 6 reproduction (paper §5.6, §5.7):
//   (a) scalability: throughput vs #cores (2..8) and #nodes (1..4, 8 cores
//       each => worker groups of 8/16/24/32 threads), fraction 40%
//   (b) throughput at fixed accuracy loss (0.5% / 1%), skewed Gaussian
//   (c) accuracy loss vs sampling fraction, skewed Poisson (80/19.99/0.01%)
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "workload/synthetic.h"

namespace {

using namespace streamapprox;
using namespace streamapprox::bench;
using core::SystemKind;

constexpr SystemKind kSystems[] = {
    SystemKind::kFlinkApprox,
    SystemKind::kSparkApprox,
    SystemKind::kSparkSRS,
    SystemKind::kSparkSTS,
};

/// The paper's "fix the accuracy loss, compare throughputs" methodology
/// (Fig. 6b / 8c / 9c): per system, the best throughput achievable while the
/// accuracy loss stays within `target_loss_pct`. Falls back to the run
/// closest to the target when no sampled fraction meets it.
Measured throughput_at_accuracy(SystemKind kind,
                                const std::vector<engine::Record>& records,
                                core::SystemConfig config,
                                const core::QuerySpec& query,
                                double target_loss_pct) {
  Measured best;
  Measured closest;
  double best_gap = 1e18;
  bool met = false;
  for (double fraction : {0.1, 0.2, 0.4, 0.6, 0.8}) {
    config.sampling_fraction = fraction;
    const auto m = measure_system(kind, records, config, query);
    if (m.accuracy_loss <= target_loss_pct &&
        m.throughput > best.throughput) {
      best = m;
      met = true;
    }
    const double gap = std::abs(m.accuracy_loss - target_loss_pct);
    if (gap < best_gap) {
      best_gap = gap;
      closest = m;
    }
  }
  return met ? best : closest;
}

}  // namespace

int main() {
  std::printf("Figure 6: scalability and skew (scale %.2f)\n", bench_scale());
  const core::QuerySpec query{core::Aggregation::kMean, false};

  // ---- Figure 6 (a): scale-up (cores) and scale-out (nodes of 8 cores).
  {
    workload::SyntheticStream stream(
        workload::gaussian_substreams(scaled_rate(100000.0)), 66);
    const auto records = stream.generate(20.0);
    Table table("Figure 6(a): throughput (items/s), fraction 40% "
                "(cores = threads; node = 8-thread worker group)",
                {"System", "2 cores", "4 cores", "6 cores", "8 cores",
                 "1 node", "2 nodes", "3 nodes", "4 nodes"});
    for (SystemKind kind : kSystems) {
      std::vector<std::string> row = {core::system_name(kind)};
      for (std::size_t workers : {2u, 4u, 6u, 8u, 8u, 16u, 24u, 32u}) {
        auto config = default_config();
        config.sampling_fraction = 0.4;
        config.workers = workers;
        const auto m = measure_system(kind, records, config, query);
        row.push_back(format_throughput(m.throughput));
      }
      table.add_row(std::move(row));
    }
    table.print();
    paper_shape(
        "StreamApprox and SRS scale better than STS (1.8x over STS at one "
        "8-core node, 2.3x at three nodes); Flink-StreamApprox 1.9x/1.4x "
        "over Spark-StreamApprox at 1/3 nodes. NOTE: this host has 24 "
        "hardware threads; the 4-node (32-thread) column oversubscribes.");
  }

  // ---- Figure 6 (b): throughput at the same accuracy loss (skewed
  // Gaussian, 80/19/1%).
  {
    workload::SyntheticStream stream(
        workload::skewed_gaussian_substreams(scaled_rate(100000.0)), 67);
    const auto records = stream.generate(20.0);
    Table table(
        "Figure 6(b): throughput (items/s) at fixed accuracy loss, skewed "
        "Gaussian 80/19/1%",
        {"System", "loss 0.5%", "loss 1%"});
    for (SystemKind kind : {SystemKind::kSparkSRS, SystemKind::kSparkSTS,
                            SystemKind::kSparkApprox,
                            SystemKind::kFlinkApprox}) {
      std::vector<std::string> row = {core::system_name(kind)};
      for (double target : {0.5, 1.0}) {
        const auto m = throughput_at_accuracy(kind, records,
                                              default_config(), query, target);
        row.push_back(format_throughput(m.throughput));
      }
      table.add_row(std::move(row));
    }
    table.print();
    paper_shape(
        "At 1% loss: STS 1.05x over SRS; Spark-StreamApprox 1.25x over STS; "
        "Flink-StreamApprox highest (1.68x/1.6x/1.26x over SRS/STS/"
        "Spark-StreamApprox).");
  }

  // ---- Figure 6 (c): accuracy vs fraction on the long-tail Poisson skew.
  {
    // The 80/19.99/0.01% rate split is the experiment: unscaled, as in
    // Fig. 5(a).
    workload::SyntheticStream stream(
        workload::skewed_poisson_substreams(10000.0), 68);
    const auto records = stream.generate(40.0);
    Table table(
        "Figure 6(c): accuracy loss (%) vs sampling fraction, skewed Poisson "
        "80/19.99/0.01%",
        {"System", "10", "20", "40", "60", "80", "90"});
    for (SystemKind kind : kSystems) {
      std::vector<std::string> row = {core::system_name(kind)};
      for (int f : {10, 20, 40, 60, 80, 90}) {
        auto config = default_config();
        config.sampling_fraction = f / 100.0;
        const auto m = measure_system(kind, records, config, query);
        row.push_back(Table::num(m.accuracy_loss, 3));
      }
      table.add_row(std::move(row));
    }
    table.print();
    paper_shape(
        "StreamApprox and STS stay accurate; SRS collapses (up to ~10% loss) "
        "because it overlooks the 0.01% sub-stream carrying 1e8-scale "
        "values — the long-tail superiority claim of §5.7.");
  }
  return 0;
}
