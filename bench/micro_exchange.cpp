// Exchange routing-kernel ablation: the two-pass bulk kernel (pass 1
// route/histogram per same-stratum run, pass 2 reserve-once + scatter)
// against the record-at-a-time baseline, isolated from sampling and
// windowing — a preloaded sealed topic on one side, a drain-and-recycle
// thread on the other, so the measured wall time is the exchange thread's
// routing loop. The ablation axes are the ones that change the run-length
// structure the bulk kernel exploits: stratum-arrival regime (uniform
// random / Zipf-skewed / stratum-sorted), stratum count (8–1024), and
// channel fan-out (1–8).
//
// Writes BENCH_micro_exchange.json (schema-gated by
// scripts/check_bench_json.py): one run per (kernel, regime, strata,
// channels) cell with records/s and the kernel's own cost accounting
// (rounds, runs walked, table probes, scatter reserves). Scale the workload
// with SA_BENCH_SCALE.
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/clock.h"
#include "common/rng.h"
#include "common/table.h"
#include "ingest/broker.h"
#include "ingest/exchange.h"

namespace {

using namespace streamapprox;

constexpr std::size_t kPartitions = 4;
constexpr int kPasses = 3;

std::vector<engine::Record> make_stream(const std::string& regime,
                                        std::size_t count,
                                        std::uint64_t strata) {
  Rng rng(0x5eedULL + strata);
  std::vector<engine::Record> records;
  records.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    engine::Record record;
    if (regime == "uniform") {
      record.stratum = static_cast<sampling::StratumId>(
          rng.uniform_int(strata));
    } else if (regime == "zipf") {
      record.stratum = static_cast<sampling::StratumId>(rng.zipf(strata, 1.2));
    } else {  // "sorted": contiguous block per stratum
      record.stratum = static_cast<sampling::StratumId>(
          i / std::max<std::size_t>(1, count / strata) % strata);
    }
    record.value = static_cast<double>(i);
    record.event_time_us = static_cast<std::int64_t>(i);
    records.push_back(record);
  }
  return records;
}

struct Measured {
  double wall_seconds = 0.0;
  double records_per_sec = 0.0;
  ingest::ExchangeStats stats;
};

/// One timed exchange run over a preloaded sealed topic. The rings are
/// sized to hold the entire routed stream, so run() never blocks on a
/// consumer and the measured wall time is the routing loop plus uncontended
/// ring pushes — no drain-thread scheduling in the number (crucial on
/// small/single-core containers, where a concurrent drainer would time-slice
/// against the exchange). Draining happens after the stopwatch.
Measured measure_once(const std::vector<engine::Record>& records,
                      std::size_t channels, bool bulk) {
  ingest::Broker broker;
  broker.create_topic("micro", kPartitions);
  {
    ingest::Producer producer(broker, "micro");
    producer.send_batch(records);
    producer.finish();
  }

  ingest::ExchangeConfig config;
  config.workers = channels;
  config.batch_size = 1024;
  // Upper bound on batches per channel: one data batch plus one heartbeat
  // per round, and a skewed stream can route nearly everything through one
  // partition (rounds <= ceil(records / batch_size)).
  config.ring_capacity =
      2 * (records.size() / config.batch_size + 2) + 8;
  config.bulk_routing = bulk;
  ingest::Exchange exchange(broker, "micro", config);

  Stopwatch watch;
  exchange.run();
  Measured measured;
  measured.wall_seconds = watch.seconds();

  std::size_t drained = 0;
  for (std::size_t w = 0; w < channels; ++w) {
    while (auto batch = exchange.pop(w)) {
      drained += batch->size();
      exchange.recycle(std::move(batch));
    }
  }
  if (drained != records.size()) {
    std::fprintf(stderr, "micro_exchange: drained %zu of %zu records\n",
                 drained, records.size());
    std::exit(1);
  }
  measured.records_per_sec =
      measured.wall_seconds > 0.0
          ? static_cast<double>(records.size()) / measured.wall_seconds
          : 0.0;
  measured.stats = exchange.stats();
  return measured;
}

/// Best of kPasses (microbenchmark convention: the minimum wall time is the
/// least-noisy estimate of the kernel's cost).
Measured measure(const std::vector<engine::Record>& records,
                 std::size_t channels, bool bulk) {
  Measured best;
  for (int pass = 0; pass < kPasses; ++pass) {
    auto measured = measure_once(records, channels, bulk);
    if (pass == 0 || measured.wall_seconds < best.wall_seconds) {
      best = measured;
    }
  }
  return best;
}

bench::Json run_json(const std::string& kernel, const std::string& regime,
                     std::uint64_t strata, std::size_t channels,
                     std::size_t records, const Measured& measured) {
  auto entry = bench::Json::object();
  entry.set("mode", kernel + "-" + regime);
  entry.set("workers", channels);
  entry.set("throughput", measured.records_per_sec);
  entry.set("wall_seconds", measured.wall_seconds);
  entry.set("kernel", kernel);
  entry.set("regime", regime);
  entry.set("strata", strata);
  entry.set("records_per_sec", measured.records_per_sec);
  entry.set("records", records);
  entry.set("rounds", measured.stats.rounds);
  entry.set("runs_walked", measured.stats.runs);
  entry.set("mean_run_length",
            measured.stats.runs > 0
                ? static_cast<double>(measured.stats.records) /
                      static_cast<double>(measured.stats.runs)
                : 0.0);
  entry.set("table_probes", measured.stats.table_probes);
  entry.set("scatter_reserves", measured.stats.scatter_reserves);
  return entry;
}

}  // namespace

int main() {
  const std::size_t count = bench::scaled(1u << 19);
  std::printf(
      "Exchange routing-kernel ablation: bulk two-pass vs per-record "
      "(%zu records/run, %zu partitions, best of %d passes, scale %.2f)\n\n",
      count, kPartitions, kPasses, bench::bench_scale());

  struct Cell {
    const char* regime;
    std::uint64_t strata;
    std::size_t channels;
  };
  std::vector<Cell> cells;
  for (const char* regime : {"uniform", "zipf", "sorted"}) {
    for (const std::uint64_t strata : {8u, 64u, 1024u}) {
      cells.push_back({regime, strata, 4});
    }
  }
  // Channel fan-out sweep on the mid-size skewed mix (4 is covered above).
  cells.push_back({"zipf", 64, 1});
  cells.push_back({"zipf", 64, 8});

  auto runs_json = bench::Json::array();
  Table table("Routing kernel throughput (records/s)",
              {"Regime", "Strata", "Channels", "Mean run", "Per-record",
               "Bulk", "Speedup"});
  for (const auto& cell : cells) {
    const auto records = make_stream(cell.regime, count, cell.strata);
    const auto scalar = measure(records, cell.channels, /*bulk=*/false);
    const auto bulk = measure(records, cell.channels, /*bulk=*/true);
    runs_json.push(run_json("per_record", cell.regime, cell.strata,
                            cell.channels, records.size(), scalar));
    runs_json.push(run_json("bulk", cell.regime, cell.strata, cell.channels,
                            records.size(), bulk));
    const double mean_run =
        bulk.stats.runs > 0
            ? static_cast<double>(bulk.stats.records) /
                  static_cast<double>(bulk.stats.runs)
            : 0.0;
    table.add_row(
        {cell.regime, std::to_string(cell.strata),
         std::to_string(cell.channels), Table::num(mean_run),
         bench::format_throughput(scalar.records_per_sec),
         bench::format_throughput(bulk.records_per_sec),
         Table::num(scalar.records_per_sec > 0.0
                        ? bulk.records_per_sec / scalar.records_per_sec
                        : 0.0) +
             "x"});
  }
  table.print();

  auto meta = bench::Json::object();
  meta.set("scale", bench::bench_scale());
  meta.set("records_per_run", count);
  meta.set("partitions", kPartitions);
  meta.set("passes", kPasses);
  meta.set("batch_size", 1024);
  auto body = bench::Json::object();
  body.set("meta", meta);
  body.set("runs", runs_json);
  bench::write_bench_json("micro_exchange", body);

  bench::paper_shape(
      "Expected shape: the bulk kernel tracks the baseline on uniform "
      "short-run mixes (run length ~1 degrades it to record-at-a-time with "
      "one extra pass) and pulls well clear on Zipf and sorted streams, "
      "where pass 1 touches one route hash and one table probe per RUN and "
      "pass 2 scatters with one reserve per destination batch.");
  return 0;
}
