// NYC taxi ride analytics (the paper's second case study, §6.3): the
// average trip distance per start borough per sliding window, approximated
// by OASRS with per-borough error bounds. Demonstrates the per-stratum
// (group-by) query path and the fairness of stratified sampling: Staten
// Island and Newark, ~1% of rides each, still get solid estimates.
#include <cstdio>

#include "core/query.h"
#include "core/systems.h"
#include "workload/taxi.h"

int main() {
  using namespace streamapprox;

  workload::TaxiConfig taxi;
  taxi.rides_per_sec = 100000.0;
  const auto records =
      workload::generate_taxi_rides(taxi, 500000, /*seed=*/2013);

  core::SystemConfig config;
  config.sampling_fraction = 0.3;
  config.workers = 4;
  config.window = {2'000'000, 2'000'000};  // tumbling 2s windows
  config.batch_interval_us = 500'000;

  const auto result =
      core::run_system(core::SystemKind::kSparkApprox, records, config);
  const auto exact = core::exact_window_results(records, config.window);

  const core::QuerySpec query{core::Aggregation::kMean, /*per_stratum=*/true};
  const auto approx_estimates = core::evaluate_windows(result.windows, query);
  const auto exact_estimates = core::evaluate_windows(exact, query);

  std::printf("Average trip distance (miles) per start borough, 30%% "
              "sample:\n");
  for (std::size_t i = 0; i < approx_estimates.size(); ++i) {
    const auto& window = approx_estimates[i];
    std::printf("\nwindow ending %.0fs:\n",
                static_cast<double>(window.window_end_us) / 1e6);
    std::printf("  %-15s %-22s %-10s %s\n", "borough", "approx (95% CI)",
                "exact", "rides");
    for (const auto& [stratum, estimate] : window.groups) {
      double exact_value = 0.0;
      for (const auto& w : exact_estimates) {
        if (w.window_end_us != window.window_end_us) continue;
        for (const auto& [s, e] : w.groups) {
          if (s == stratum) exact_value = e.estimate;
        }
      }
      std::printf("  %-15s %6.2f +/- %-12.3f %6.2f %10llu\n",
                  workload::borough_name(
                      static_cast<workload::Borough>(stratum))
                      .c_str(),
                  estimate.estimate, estimate.error_bound(2.0), exact_value,
                  static_cast<unsigned long long>(estimate.population));
    }
  }
  std::printf("\nThroughput: %.2fM rides/s across %zu windows.\n",
              result.throughput() / 1e6, approx_estimates.size());
  return 0;
}
