// Stratifying UNLABELED streams (the paper's §7-II extension): when data
// items carry no source label, a pre-processing stratifier learns strata
// from the values themselves — here an online 1-D k-means — and OASRS then
// samples the learned strata. The example contrasts three estimators of the
// stream mean at the same 5% budget:
//   1. SRS (no strata)            — misses the rare, high-valued component;
//   2. OASRS over learned strata  — recovers it;
//   3. exact                      — ground truth.
#include <cstdio>

#include "common/rng.h"
#include "common/stats.h"
#include "sampling/oasrs.h"
#include "sampling/scasrs.h"
#include "stratify/stratifier.h"

int main() {
  using namespace streamapprox;
  using engine::Record;

  // An unlabeled mixture: 94% small values, 5% medium, 1% large — the large
  // component dominates the true mean.
  Rng rng(99);
  std::vector<Record> records;
  records.reserve(300000);
  for (int i = 0; i < 300000; ++i) {
    const double u = rng.uniform();
    const double value = u < 0.94   ? rng.gaussian(10.0, 2.0)
                         : u < 0.99 ? rng.gaussian(500.0, 40.0)
                                    : rng.gaussian(20000.0, 900.0);
    records.push_back(Record{0, value, 0});  // stratum UNKNOWN (all zero)
  }
  double exact = 0.0;
  for (const auto& record : records) exact += record.value;
  exact /= static_cast<double>(records.size());

  // 1. SRS at 5%.
  const auto srs = sampling::scasrs_sample(records, 0.05, rng);
  double srs_mean = 0.0;
  for (const auto& record : srs.items) srs_mean += record.value;
  srs_mean /= static_cast<double>(srs.items.size());

  // 2. k-means stratifier (k=3) + OASRS with the same total budget.
  stratify::KMeansStratifier stratifier(3);
  sampling::OasrsConfig config;
  config.total_budget = records.size() / 20;
  config.seed = 7;
  auto sampler = sampling::make_oasrs<Record>(config);
  for (const auto& record : records) {
    sampler.offer(stratify::restratify(record, stratifier));
  }
  const auto sample = sampler.take();
  double sum = 0.0;
  double count = 0.0;
  std::printf("learned strata (online k-means over values):\n");
  for (const auto& stratum : sample.strata) {
    RunningStats stats;
    for (const auto& record : stratum.items) stats.add(record.value);
    std::printf("  stratum %u: C=%llu items, sample mean %.1f, weight %.1f\n",
                stratum.stratum,
                static_cast<unsigned long long>(stratum.seen), stats.mean(),
                stratum.weight);
    sum += stats.sum() * stratum.weight;
    count += static_cast<double>(stratum.seen);
  }
  const double oasrs_mean = sum / count;

  std::printf("\nstream mean estimates at a 5%% budget:\n");
  std::printf("  exact                     : %10.2f\n", exact);
  std::printf("  SRS (unstratified)        : %10.2f  (%.2f%% off)\n",
              srs_mean, 100.0 * relative_error(srs_mean, exact));
  std::printf("  OASRS over learned strata : %10.2f  (%.2f%% off)\n",
              oasrs_mean, 100.0 * relative_error(oasrs_mean, exact));
  std::printf("\nThe learned stratification isolates the 1%% heavy "
              "component, so its reservoir keeps it represented — SRS "
              "leaves it to luck.\n");
  return 0;
}
