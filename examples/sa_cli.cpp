// Command-line driver over the evaluation harness: run any of the six
// systems over any built-in workload and print windows, throughput and
// accuracy loss. Handy for poking at parameter combinations without
// recompiling.
//
//   sa_cli --system flink-approx --workload netflow --fraction 0.4
//          --duration 10 --window 4 --slide 2 --workers 4 [--per-stratum]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/table.h"
#include "core/query.h"
#include "core/systems.h"
#include "workload/netflow.h"
#include "workload/synthetic.h"
#include "workload/taxi.h"

namespace {

using namespace streamapprox;

struct Options {
  std::string system = "flink-approx";
  std::string workload = "gaussian";
  double fraction = 0.6;
  double duration_s = 10.0;
  double rate = 50000.0;
  int window_s = 4;
  int slide_s = 2;
  std::size_t workers = 4;
  bool per_stratum = false;
  std::uint64_t seed = 1;
};

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: sa_cli [--system flink-approx|spark-approx|spark-srs|"
      "spark-sts|native-spark|native-flink]\n"
      "              [--workload gaussian|skewed-gaussian|skewed-poisson|"
      "netflow|taxi]\n"
      "              [--fraction F] [--duration SECONDS] [--rate ITEMS/S]\n"
      "              [--window S] [--slide S] [--workers N] [--seed N]\n"
      "              [--per-stratum]\n");
  std::exit(2);
}

core::SystemKind parse_system(const std::string& name) {
  if (name == "flink-approx") return core::SystemKind::kFlinkApprox;
  if (name == "spark-approx") return core::SystemKind::kSparkApprox;
  if (name == "spark-srs") return core::SystemKind::kSparkSRS;
  if (name == "spark-sts") return core::SystemKind::kSparkSTS;
  if (name == "native-spark") return core::SystemKind::kNativeSpark;
  if (name == "native-flink") return core::SystemKind::kNativeFlink;
  std::fprintf(stderr, "unknown system: %s\n", name.c_str());
  usage();
}

std::vector<engine::Record> make_workload(const Options& options) {
  if (options.workload == "gaussian") {
    return workload::SyntheticStream(
               workload::gaussian_substreams(options.rate), options.seed)
        .generate(options.duration_s);
  }
  if (options.workload == "skewed-gaussian") {
    return workload::SyntheticStream(
               workload::skewed_gaussian_substreams(options.rate),
               options.seed)
        .generate(options.duration_s);
  }
  if (options.workload == "skewed-poisson") {
    return workload::SyntheticStream(
               workload::skewed_poisson_substreams(options.rate),
               options.seed)
        .generate(options.duration_s);
  }
  if (options.workload == "netflow") {
    workload::NetFlowConfig config;
    config.flows_per_sec = options.rate;
    return workload::generate_netflow(
        config,
        static_cast<std::size_t>(options.rate * options.duration_s),
        options.seed);
  }
  if (options.workload == "taxi") {
    workload::TaxiConfig config;
    config.rides_per_sec = options.rate;
    return workload::generate_taxi_rides(
        config,
        static_cast<std::size_t>(options.rate * options.duration_s),
        options.seed);
  }
  std::fprintf(stderr, "unknown workload: %s\n", options.workload.c_str());
  usage();
}

Options parse_args(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--system") {
      options.system = next();
    } else if (arg == "--workload") {
      options.workload = next();
    } else if (arg == "--fraction") {
      options.fraction = std::atof(next().c_str());
    } else if (arg == "--duration") {
      options.duration_s = std::atof(next().c_str());
    } else if (arg == "--rate") {
      options.rate = std::atof(next().c_str());
    } else if (arg == "--window") {
      options.window_s = std::atoi(next().c_str());
    } else if (arg == "--slide") {
      options.slide_s = std::atoi(next().c_str());
    } else if (arg == "--workers") {
      options.workers = static_cast<std::size_t>(std::atoi(next().c_str()));
    } else if (arg == "--seed") {
      options.seed = static_cast<std::uint64_t>(
          std::strtoull(next().c_str(), nullptr, 10));
    } else if (arg == "--per-stratum") {
      options.per_stratum = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      usage();
    }
  }
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = parse_args(argc, argv);
  const auto kind = parse_system(options.system);
  const auto records = make_workload(options);

  core::SystemConfig config;
  config.sampling_fraction = options.fraction;
  config.workers = options.workers;
  config.window = {options.window_s * 1'000'000LL,
                   options.slide_s * 1'000'000LL};
  config.seed = options.seed;

  std::printf("system=%s workload=%s records=%zu fraction=%.2f window=%ds "
              "slide=%ds workers=%zu\n\n",
              core::system_name(kind).c_str(), options.workload.c_str(),
              records.size(), options.fraction, options.window_s,
              options.slide_s, options.workers);

  const auto result = core::run_system(kind, records, config);
  const auto exact = core::exact_window_results(records, config.window);

  const core::QuerySpec query{core::Aggregation::kMean, options.per_stratum};
  const auto approx_estimates = core::evaluate_windows(result.windows, query);
  const auto exact_estimates = core::evaluate_windows(exact, query);

  Table table("windows (MEAN query)",
              {"end (s)", "approx", "+/- (95%)", "exact"});
  for (const auto& window : approx_estimates) {
    double exact_value = 0.0;
    for (const auto& w : exact_estimates) {
      if (w.window_end_us == window.window_end_us) {
        exact_value = w.overall.estimate;
      }
    }
    table.add_row({Table::num(static_cast<double>(window.window_end_us) / 1e6,
                              0),
                   Table::num(window.overall.estimate, 3),
                   Table::num(window.overall.error_bound(2.0), 3),
                   Table::num(exact_value, 3)});
  }
  table.print();

  const double loss =
      core::mean_accuracy_loss(approx_estimates, exact_estimates, query);
  std::printf("\nthroughput: %.2fM items/s   latency: %.2fs   accuracy loss: "
              "%.4f%%\n",
              result.throughput() / 1e6, result.wall_seconds, 100.0 * loss);
  return 0;
}
