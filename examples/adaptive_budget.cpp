// Adaptive query budgets (paper Fig. 3's feedback loop and the §7 cost
// function): the user states a TARGET ACCURACY instead of a sampling
// fraction; StreamApprox starts from a small sample budget and the
// error-estimation module re-tunes it every window until the observed error
// bound meets the target. Watch the per-slide budget climb and the bound
// tighten.
#include <cstdio>

#include "core/stream_approx.h"
#include "ingest/replay.h"
#include "workload/synthetic.h"

int main() {
  using namespace streamapprox;

  // A noisy skewed stream makes the accuracy target non-trivial.
  workload::SyntheticStream stream(
      workload::skewed_gaussian_substreams(40000.0), /*seed=*/11);
  const auto records = stream.generate(20.0);

  ingest::Broker broker;
  broker.create_topic("adaptive", 3);
  ingest::ReplayTool replay(broker, "adaptive", records, {});

  core::StreamApproxConfig config;
  config.topic = "adaptive";
  config.query = {core::Aggregation::kSum, /*per_stratum=*/false};
  // Query budget: a 95%-confidence relative error bound of 0.5%.
  config.budget = estimation::QueryBudget::relative_error(0.005);
  config.window = {2'000'000, 1'000'000};

  core::StreamApprox system(broker, config);

  std::printf("target: 95%% relative error bound <= 0.500%%\n\n");
  std::printf("%-8s %-16s %-12s %-12s %s\n", "window", "SUM estimate",
              "bound (%)", "budget", "sampled/seen");
  system.run([&](const core::WindowOutput& output) {
    const auto& overall = output.estimate.overall;
    std::printf("%6.0fs %16.3e %10.3f%% %10zu %10llu/%llu\n",
                static_cast<double>(output.estimate.window_end_us) / 1e6,
                overall.estimate, 100.0 * overall.relative_bound(2.0),
                output.budget_in_force,
                static_cast<unsigned long long>(output.records_sampled),
                static_cast<unsigned long long>(output.records_seen));
  });
  replay.wait();

  std::printf("\nThe sample budget rises only as far as the accuracy target "
              "requires — resources follow the query budget, not the "
              "stream size.\n");
  return 0;
}
