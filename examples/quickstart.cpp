// Quickstart: the smallest end-to-end StreamApprox program.
//
// Produces a synthetic 3-sub-stream Gaussian stream into the Kafka-like
// broker and runs THREE concurrent approximate queries over it at a 20%
// sampling fraction — a per-stratum SUM, an overall MEAN, and a value
// HISTOGRAM — registered on the query registry. The stream is ingested,
// repartitioned, sampled and windowed ONCE; every window output carries
// all three queries' estimates with their rigorous error bounds. Mid-run, a
// fourth query (COUNT) is attached to the RUNNING pipeline with its own
// subscription channel and later detached — the dynamic query lifecycle.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/example_quickstart
#include <cstdio>
#include <memory>

#include "core/query.h"
#include "core/stream_approx.h"
#include "ingest/replay.h"
#include "workload/synthetic.h"

int main() {
  using namespace streamapprox;

  // 1. A deterministic input stream: the paper's §5.1 Gaussian mix at
  //    30k items/s for 8 seconds of event time.
  workload::SyntheticStream stream(workload::gaussian_substreams(30000.0),
                                   /*seed=*/7);
  const auto records = stream.generate(8.0);
  const auto exact_windows = core::exact_window_results(
      records, engine::WindowConfig{2'000'000, 1'000'000});

  // 2. A broker topic fed by the replay tool (saturation mode).
  ingest::Broker broker;
  broker.create_topic("quickstart", /*partitions=*/3);
  ingest::ReplayTool replay(broker, "quickstart", records, {});

  // 3. StreamApprox: 20% sampling budget, 2s/1s windows, and a query
  //    registry with three concurrent queries over the ONE sampled stream.
  //    The MEAN rides at 3-sigma confidence while the SUM keeps the default
  //    2-sigma — per-query z.
  core::StreamApproxConfig config;
  config.topic = "quickstart";
  config.budget = estimation::QueryBudget::fraction(0.20);
  config.window = {2'000'000, 1'000'000};
  config.queries.aggregate("sum/substream",
                           {core::Aggregation::kSum, /*per_stratum=*/true});
  config.queries.aggregate("mean", {core::Aggregation::kMean, false},
                           /*z=*/3.0);
  config.queries.histogram("values", {0.0, 12000.0, 24});
  // Parallel sampling: 4 workers even though the topic has 3 partitions —
  // the repartitioning exchange (on by default) re-keys partition batches by
  // stratum hash, so worker count is independent of partition count. Tune
  // the morsel size with config.exchange_batch_size, or set
  // config.use_exchange = false to pin workers to partitions.
  config.workers = 4;

  core::StreamApprox system(broker, config);

  const auto exact_means = core::evaluate_windows(
      exact_windows, {core::Aggregation::kMean, false});
  std::printf("%-10s %-30s %-34s %-8s\n", "window",
              "SUM/substream (95% CI, top group)", "MEAN (99.7% CI vs exact)",
              "sampled");
  std::size_t index = 0;
  // 4. Dynamic lifecycle: attach a COUNT query to the RUNNING pipeline at
  //    window 2 and detach it at window 6. It takes effect at the next
  //    slide-close boundary and reports only windows assembled entirely
  //    after the attach, through its own subscription channel.
  std::shared_ptr<core::QuerySubscription> counts;
  system.run([&](const core::WindowOutput& output) {
    if (index == 2) {
      counts = system.attach_query(
          std::make_unique<core::AggregateSink>(
              "count", core::QuerySpec{core::Aggregation::kCount, false}),
          /*subscription_capacity=*/32);
    }
    if (index == 6) system.detach_query("count");
    double exact_mean = 0.0;
    for (const auto& w : exact_means) {
      if (w.window_end_us == output.estimate.window_end_us) {
        exact_mean = w.overall.estimate;
      }
    }
    // Query 0: per-stratum SUM — print the largest group.
    const auto& sum = output.queries[0];
    double top_sum = 0.0;
    double top_bound = 0.0;
    sampling::StratumId top_stratum = 0;
    for (const auto& [stratum, result] : sum.estimate.groups) {
      if (result.estimate > top_sum) {
        top_sum = result.estimate;
        top_bound = result.error_bound(sum.z);
        top_stratum = stratum;
      }
    }
    // Query 1: overall MEAN at its own 3-sigma confidence.
    const auto& mean = output.queries[1];
    std::printf(
        "[%2zu] %4.0fs  s%u: %12.0f +/- %-9.0f %9.2f +/- %-7.2f (%8.2f) "
        "%5.1f%%\n",
        index++, static_cast<double>(output.estimate.window_end_us) / 1e6,
        top_stratum, top_sum, top_bound,
        mean.estimate.overall.estimate,
        mean.estimate.overall.error_bound(mean.z), exact_mean,
        100.0 * static_cast<double>(output.records_sampled) /
            static_cast<double>(output.records_seen));
  });
  replay.wait();

  std::printf(
      "\nAll three registered queries consumed the SAME sample — the stream "
      "was ingested, sampled and windowed once.\nThe exact answers lie "
      "within the reported +/- bounds; the MEAN's bound is wider because it "
      "rides at 99.7%% confidence.\n");

  if (counts) {
    std::printf(
        "\nDynamically attached COUNT query (windows assembled entirely "
        "after attach, drained from its own channel):\n");
    while (auto output = counts->poll()) {
      const auto& count = output->queries.front();
      std::printf("  [%4.0fs, %4.0fs)  COUNT %12.0f +/- %-8.0f\n",
                  static_cast<double>(output->estimate.window_start_us) / 1e6,
                  static_cast<double>(output->estimate.window_end_us) / 1e6,
                  count.estimate.overall.estimate,
                  count.estimate.overall.error_bound(count.z));
    }
  }
  return 0;
}
