// Quickstart: the smallest end-to-end StreamApprox program.
//
// Produces a synthetic 3-sub-stream Gaussian stream into the Kafka-like
// broker, runs an approximate windowed MEAN query over it at a 20% sampling
// fraction, and prints each window's estimate with its rigorous error bound
// next to the exact answer.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart
#include <cstdio>

#include "core/query.h"
#include "core/stream_approx.h"
#include "ingest/replay.h"
#include "workload/synthetic.h"

int main() {
  using namespace streamapprox;

  // 1. A deterministic input stream: the paper's §5.1 Gaussian mix at
  //    30k items/s for 8 seconds of event time.
  workload::SyntheticStream stream(workload::gaussian_substreams(30000.0),
                                   /*seed=*/7);
  const auto records = stream.generate(8.0);
  const auto exact_windows = core::exact_window_results(
      records, engine::WindowConfig{2'000'000, 1'000'000});

  // 2. A broker topic fed by the replay tool (saturation mode).
  ingest::Broker broker;
  broker.create_topic("quickstart", /*partitions=*/3);
  ingest::ReplayTool replay(broker, "quickstart", records, {});

  // 3. StreamApprox: windowed MEAN, 20% sampling budget, 2s/1s windows.
  core::StreamApproxConfig config;
  config.topic = "quickstart";
  config.query = {core::Aggregation::kMean, /*per_stratum=*/false};
  config.budget = estimation::QueryBudget::fraction(0.20);
  config.window = {2'000'000, 1'000'000};
  // Parallel sampling: 4 workers even though the topic has 3 partitions —
  // the repartitioning exchange (on by default) re-keys partition batches by
  // stratum hash, so worker count is independent of partition count. Tune
  // the morsel size with config.exchange_batch_size, or set
  // config.use_exchange = false to pin workers to partitions.
  config.workers = 4;

  core::StreamApprox system(broker, config);

  std::printf("%-10s %-28s %-14s %-10s\n", "window", "approx (95% CI)",
              "exact", "sampled");
  const auto exact_estimates = core::evaluate_windows(
      exact_windows, config.query);
  std::size_t index = 0;
  system.run([&](const core::WindowOutput& output) {
    double exact = 0.0;
    for (const auto& w : exact_estimates) {
      if (w.window_end_us == output.estimate.window_end_us) {
        exact = w.overall.estimate;
      }
    }
    const auto& overall = output.estimate.overall;
    std::printf("[%2zu] %4.0fs %10.2f +/- %-10.2f %12.2f %5.1f%%\n", index++,
                static_cast<double>(output.estimate.window_end_us) / 1e6,
                overall.estimate, overall.error_bound(2.0), exact,
                100.0 * static_cast<double>(output.records_sampled) /
                    static_cast<double>(output.records_seen));
  });
  replay.wait();

  std::printf("\nEach window aggregated ~20%% of the records, and the exact "
              "answer lies within the reported +/- bound.\n");
  return 0;
}
