// Network traffic monitoring (the paper's first case study, §6.2):
// measure the total TCP / UDP / ICMP traffic per sliding window over a
// NetFlow stream — approximately, at a fraction of the processing cost.
//
// This example uses the evaluation harness path (run_system) to compare the
// Flink-based StreamApprox pipeline against the exact answer on the same
// stream.
#include <cstdio>

#include "core/query.h"
#include "core/systems.h"
#include "workload/netflow.h"

int main() {
  using namespace streamapprox;

  // Synthetic CAIDA-like NetFlow stream: 500k flows at 100k flows/s.
  workload::NetFlowConfig netflow;
  netflow.flows_per_sec = 100000.0;
  const auto records = workload::generate_netflow(netflow, 500000,
                                                  /*seed=*/2015);

  core::SystemConfig config;
  config.sampling_fraction = 0.4;
  config.workers = 4;
  config.window = {2'000'000, 1'000'000};  // 2s windows sliding by 1s
  config.batch_interval_us = 500'000;

  const auto result =
      core::run_system(core::SystemKind::kFlinkApprox, records, config);
  const auto exact = core::exact_window_results(records, config.window);

  const core::QuerySpec query{core::Aggregation::kSum, /*per_stratum=*/true};
  const auto approx_estimates = core::evaluate_windows(result.windows, query);
  const auto exact_estimates = core::evaluate_windows(exact, query);

  std::printf("Per-protocol traffic totals (bytes) per 2s window, sampled at "
              "40%%:\n\n");
  for (std::size_t i = 0; i < approx_estimates.size(); ++i) {
    const auto& window = approx_estimates[i];
    std::printf("window ending %.0fs:\n",
                static_cast<double>(window.window_end_us) / 1e6);
    for (const auto& [stratum, estimate] : window.groups) {
      double exact_value = 0.0;
      for (const auto& w : exact_estimates) {
        if (w.window_end_us != window.window_end_us) continue;
        for (const auto& [s, e] : w.groups) {
          if (s == stratum) exact_value = e.estimate;
        }
      }
      std::printf("  %-5s approx %14.0f +/- %12.0f   exact %14.0f\n",
                  workload::protocol_name(
                      static_cast<workload::Protocol>(stratum))
                      .c_str(),
                  estimate.estimate, estimate.error_bound(2.0), exact_value);
    }
  }
  std::printf("\nThroughput: %.2fM flows/s over %zu windows "
              "(ICMP, 1.5%% of flows, is never overlooked).\n",
              result.throughput() / 1e6, approx_estimates.size());
  return 0;
}
