// Tests for the leveled logger.
#include "common/logging.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace streamapprox {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { set_log_level(LogLevel::kWarn); }
};

TEST_F(LoggingTest, LevelGatesEnablement) {
  set_log_level(LogLevel::kWarn);
  EXPECT_FALSE(log_enabled(LogLevel::kDebug));
  EXPECT_FALSE(log_enabled(LogLevel::kInfo));
  EXPECT_TRUE(log_enabled(LogLevel::kWarn));
  EXPECT_TRUE(log_enabled(LogLevel::kError));
}

TEST_F(LoggingTest, OffSilencesEverything) {
  set_log_level(LogLevel::kOff);
  EXPECT_FALSE(log_enabled(LogLevel::kError));
}

TEST_F(LoggingTest, LevelRoundTrips) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST_F(LoggingTest, LogLineBuildsLazily) {
  set_log_level(LogLevel::kError);
  int evaluations = 0;
  const auto expensive = [&]() {
    ++evaluations;
    return 42;
  };
  // Below the level: the streamed expression is still evaluated by C++
  // (operator<< receives its argument) but nothing is emitted; the
  // enabled() check is the cheap guard callers use on hot paths.
  if (log_enabled(LogLevel::kDebug)) {
    LogLine(LogLevel::kDebug, "test") << expensive();
  }
  EXPECT_EQ(evaluations, 0);
  LogLine(LogLevel::kError, "test") << "error path " << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LoggingTest, ConcurrentLoggingDoesNotCrash) {
  set_log_level(LogLevel::kOff);  // exercise the synchronisation, not stderr
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 1000; ++i) {
        log_message(LogLevel::kError, "thread", std::to_string(t));
      }
    });
  }
  for (auto& thread : threads) thread.join();
}

}  // namespace
}  // namespace streamapprox
