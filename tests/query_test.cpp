// Tests for query evaluation, exact ground truth, and the accuracy-loss
// metric.
#include "core/query.h"

#include <gtest/gtest.h>

namespace streamapprox::core {
namespace {

using engine::Record;
using engine::WindowResult;
using estimation::StratumSummary;

StratumSummary cell(sampling::StratumId stratum, std::uint64_t seen,
                    std::uint64_t sampled, double sum, double weight) {
  StratumSummary s;
  s.stratum = stratum;
  s.seen = seen;
  s.sampled = sampled;
  s.sum = sum;
  s.weight = weight;
  return s;
}

WindowResult window_of(std::int64_t end, std::vector<StratumSummary> cells) {
  WindowResult w;
  w.window_start_us = end - 10;
  w.window_end_us = end;
  w.cells = std::move(cells);
  return w;
}

TEST(EvaluateWindows, OverallSum) {
  const auto windows = std::vector<WindowResult>{
      window_of(10, {cell(0, 10, 5, 50.0, 2.0), cell(1, 4, 4, 8.0, 1.0)}),
  };
  QuerySpec query{Aggregation::kSum, false};
  const auto estimates = evaluate_windows(windows, query);
  ASSERT_EQ(estimates.size(), 1u);
  EXPECT_DOUBLE_EQ(estimates[0].overall.estimate, 108.0);
  EXPECT_TRUE(estimates[0].groups.empty());
}

TEST(EvaluateWindows, PerStratumGroupsSortedById) {
  const auto windows = std::vector<WindowResult>{
      window_of(10, {cell(2, 4, 4, 8.0, 1.0), cell(0, 10, 5, 50.0, 2.0),
                     cell(0, 6, 3, 30.0, 2.0)}),
  };
  QuerySpec query{Aggregation::kSum, true};
  const auto estimates = evaluate_windows(windows, query);
  ASSERT_EQ(estimates[0].groups.size(), 2u);
  EXPECT_EQ(estimates[0].groups[0].first, 0u);
  // Two cells of stratum 0 combine: 50*2 + 30*2 = 160.
  EXPECT_DOUBLE_EQ(estimates[0].groups[0].second.estimate, 160.0);
  EXPECT_EQ(estimates[0].groups[1].first, 2u);
  EXPECT_DOUBLE_EQ(estimates[0].groups[1].second.estimate, 8.0);
}

TEST(EvaluateWindows, MeanUsesPopulationWeights) {
  const auto windows = std::vector<WindowResult>{
      window_of(10, {cell(0, 80, 2, 20.0, 40.0),    // mean 10, omega 0.8
                     cell(1, 20, 2, 200.0, 10.0)}), // mean 100, omega 0.2
  };
  QuerySpec query{Aggregation::kMean, false};
  const auto estimates = evaluate_windows(windows, query);
  EXPECT_NEAR(estimates[0].overall.estimate, 28.0, 1e-9);
}

TEST(ExactWindows, MatchDirectAggregation) {
  std::vector<Record> records;
  // 2 strata, 1s of data at 1ms spacing, values = stratum+1.
  for (int i = 0; i < 1000; ++i) {
    records.push_back({static_cast<sampling::StratumId>(i % 2),
                       static_cast<double>(i % 2 + 1),
                       static_cast<std::int64_t>(i) * 1000});
  }
  engine::WindowConfig window{200'000, 100'000};
  const auto windows = exact_window_results(records, window);
  ASSERT_GE(windows.size(), 9u);
  for (const auto& w : windows) {
    std::uint64_t seen = 0;
    double sum = 0.0;
    for (const auto& c : w.cells) {
      EXPECT_EQ(c.seen, c.sampled);  // exact
      EXPECT_DOUBLE_EQ(c.weight, 1.0);
      seen += c.seen;
      sum += c.sum;
    }
    EXPECT_EQ(seen, 200u);
    EXPECT_DOUBLE_EQ(sum, 300.0);  // 100*1 + 100*2
  }
}

TEST(AccuracyLoss, ZeroForIdenticalEstimates) {
  const auto windows = std::vector<WindowResult>{
      window_of(10, {cell(0, 4, 4, 8.0, 1.0)}),
  };
  QuerySpec query{Aggregation::kSum, false};
  const auto estimates = evaluate_windows(windows, query);
  EXPECT_DOUBLE_EQ(mean_accuracy_loss(estimates, estimates, query), 0.0);
}

TEST(AccuracyLoss, MatchesHandComputedRelativeError) {
  QuerySpec query{Aggregation::kSum, false};
  const auto approx = evaluate_windows(
      {window_of(10, {cell(0, 4, 4, 110.0, 1.0)})}, query);
  const auto exact = evaluate_windows(
      {window_of(10, {cell(0, 4, 4, 100.0, 1.0)})}, query);
  EXPECT_NEAR(mean_accuracy_loss(approx, exact, query), 0.1, 1e-12);
}

TEST(AccuracyLoss, AveragesAcrossWindows) {
  QuerySpec query{Aggregation::kSum, false};
  const auto approx = evaluate_windows(
      {window_of(10, {cell(0, 4, 4, 110.0, 1.0)}),
       window_of(20, {cell(0, 4, 4, 100.0, 1.0)})},
      query);
  const auto exact = evaluate_windows(
      {window_of(10, {cell(0, 4, 4, 100.0, 1.0)}),
       window_of(20, {cell(0, 4, 4, 100.0, 1.0)})},
      query);
  EXPECT_NEAR(mean_accuracy_loss(approx, exact, query), 0.05, 1e-12);
}

TEST(AccuracyLoss, MissedGroupCountsAsTotalLoss) {
  QuerySpec query{Aggregation::kSum, true};
  // Approx missed stratum 1 entirely (the SRS failure mode).
  const auto approx = evaluate_windows(
      {window_of(10, {cell(0, 4, 4, 100.0, 1.0)})}, query);
  const auto exact = evaluate_windows(
      {window_of(10, {cell(0, 4, 4, 100.0, 1.0), cell(1, 2, 2, 50.0, 1.0)})},
      query);
  EXPECT_NEAR(mean_accuracy_loss(approx, exact, query), 0.5, 1e-12);
}

TEST(AccuracyLoss, UnmatchedWindowsSkipped) {
  QuerySpec query{Aggregation::kSum, false};
  const auto approx = evaluate_windows(
      {window_of(10, {cell(0, 4, 4, 120.0, 1.0)}),
       window_of(99, {cell(0, 4, 4, 5.0, 1.0)})},  // no exact counterpart
      query);
  const auto exact = evaluate_windows(
      {window_of(10, {cell(0, 4, 4, 100.0, 1.0)})}, query);
  EXPECT_NEAR(mean_accuracy_loss(approx, exact, query), 0.2, 1e-12);
}

TEST(AccuracyLoss, EmptyInputsGiveZero) {
  QuerySpec query{Aggregation::kSum, false};
  EXPECT_EQ(mean_accuracy_loss({}, {}, query), 0.0);
}

TEST(AggregationName, Names) {
  EXPECT_EQ(aggregation_name(Aggregation::kSum), "SUM");
  EXPECT_EQ(aggregation_name(Aggregation::kMean), "MEAN");
  EXPECT_EQ(aggregation_name(Aggregation::kCount), "COUNT");
}

TEST(EvaluateWindows, CountQuery) {
  const auto windows = std::vector<WindowResult>{
      window_of(10, {cell(0, 100, 10, 50.0, 10.0),   // count estimate 100
                     cell(1, 7, 7, 8.0, 1.0)}),      // exactly 7
  };
  QuerySpec query{Aggregation::kCount, true};
  const auto estimates = evaluate_windows(windows, query);
  EXPECT_DOUBLE_EQ(estimates[0].overall.estimate, 107.0);
  ASSERT_EQ(estimates[0].groups.size(), 2u);
  EXPECT_DOUBLE_EQ(estimates[0].groups[0].second.estimate, 100.0);
  EXPECT_DOUBLE_EQ(estimates[0].groups[1].second.estimate, 7.0);
}

// --------------------------------------------------------------------------
// The query registry: sinks, the set, and their lifecycle contracts.

TEST(QueryRegistry, AggregateSinkMatchesEvaluateWindows) {
  const auto window = window_of(
      10, {cell(0, 100, 10, 50.0, 10.0), cell(1, 40, 8, 16.0, 5.0)});
  QuerySpec spec{Aggregation::kSum, true};
  AggregateSink sink("sum", spec);
  sink.bind(engine::WindowConfig{1'000'000, 500'000}, 2.0);
  auto output = sink.evaluate(window);

  const auto reference = evaluate_windows({window}, spec);
  EXPECT_EQ(output.name, "sum");
  EXPECT_EQ(output.z, 2.0);
  EXPECT_EQ(output.estimate.overall.estimate,
            reference.front().overall.estimate);
  EXPECT_EQ(output.estimate.overall.variance,
            reference.front().overall.variance);
  ASSERT_EQ(output.estimate.groups.size(), reference.front().groups.size());
  EXPECT_DOUBLE_EQ(output.observed_relative_bound,
                   output.estimate.overall.relative_bound(2.0));
}

TEST(QueryRegistry, PerQueryConfidenceOverridesDefault) {
  AggregateSink defaulted("default-z", {Aggregation::kMean, false});
  AggregateSink overridden("own-z", {Aggregation::kMean, false});
  overridden.set_z(3.0);
  defaulted.bind(engine::WindowConfig{}, 2.0);
  overridden.bind(engine::WindowConfig{}, 2.0);
  EXPECT_EQ(defaulted.z(), 2.0);
  EXPECT_EQ(overridden.z(), 3.0);
}

TEST(QueryRegistry, AccuracyTargetInheritanceRules) {
  // Aggregates inherit the config-level accuracy budget when they carry no
  // explicit target; histograms never inherit (the legacy mapping must keep
  // exactly one feedback controller).
  AggregateSink plain("plain", {Aggregation::kSum, false});
  AggregateSink targeted("targeted", {Aggregation::kSum, false});
  targeted.set_accuracy_target(0.005);
  HistogramSink histogram("hist", {0.0, 1.0, 10});

  const std::optional<double> fallback = 0.02;
  EXPECT_EQ(plain.accuracy_target(fallback), 0.02);
  EXPECT_EQ(plain.accuracy_target(std::nullopt), std::nullopt);
  EXPECT_EQ(targeted.accuracy_target(fallback), 0.005);
  EXPECT_EQ(histogram.accuracy_target(fallback), std::nullopt);
}

TEST(QueryRegistry, HistogramSinkKeepsWindowAlignedRing) {
  // 2 slides per window: the merged histogram must cover exactly the last
  // two slides' samples, dropping older mass as the window slides.
  HistogramSink sink("hist", {0.0, 10.0, 10});
  sink.bind(engine::WindowConfig{1'000'000, 500'000}, 2.0);

  const auto slide_sample = [](double value) {
    sampling::StratifiedSample<Record> sample;
    sampling::StratumSample<Record> stratum;
    stratum.stratum = 0;
    stratum.seen = 1;
    stratum.weight = 1.0;
    stratum.items.push_back(Record{0, value, 0});
    sample.strata.push_back(std::move(stratum));
    return sample;
  };

  WindowResult window;
  window.cells = {cell(0, 1, 1, 1.0, 1.0)};
  const auto s1 = slide_sample(1.5);
  const auto s2 = slide_sample(2.5);
  const auto s3 = slide_sample(3.5);
  sink.on_slide({}, &s1, nullptr);
  sink.on_slide({}, &s2, nullptr);
  auto first = sink.evaluate(window);
  ASSERT_TRUE(first.histogram.has_value());
  EXPECT_DOUBLE_EQ(first.histogram->total(), 2.0);  // slides 1+2
  EXPECT_DOUBLE_EQ(first.histogram->bucket(1), 1.0);

  sink.on_slide({}, &s3, nullptr);
  auto second = sink.evaluate(window);
  ASSERT_TRUE(second.histogram.has_value());
  EXPECT_DOUBLE_EQ(second.histogram->total(), 2.0);  // slides 2+3
  EXPECT_DOUBLE_EQ(second.histogram->bucket(1), 0.0);  // slide 1 aged out
  EXPECT_DOUBLE_EQ(second.histogram->bucket(3), 1.0);
}

TEST(QueryRegistry, QuerySetCopiesDeepCloneSinks) {
  QuerySet original;
  original.aggregate("sum", {Aggregation::kSum, false});
  original.histogram("hist", {0.0, 10.0, 4});

  QuerySet copy = original;
  ASSERT_EQ(copy.size(), 2u);
  EXPECT_NE(copy.sinks()[0].get(), original.sinks()[0].get());
  EXPECT_EQ(copy.sinks()[0]->name(), "sum");
  EXPECT_EQ(copy.sinks()[1]->name(), "hist");

  // Clones are unbound and stateless: binding/feeding the copy's histogram
  // sink must not leak state into the original (and vice versa).
  auto clones = copy.clone_sinks();
  ASSERT_EQ(clones.size(), 2u);
  clones[1]->bind(engine::WindowConfig{1'000'000, 500'000}, 2.0);
  sampling::StratifiedSample<Record> sample;
  sampling::StratumSample<Record> stratum;
  stratum.stratum = 0;
  stratum.seen = 1;
  stratum.weight = 1.0;
  stratum.items.push_back(Record{0, 5.0, 0});
  sample.strata.push_back(std::move(stratum));
  clones[1]->on_slide({}, &sample, nullptr);

  WindowResult window;
  window.cells = {cell(0, 1, 1, 5.0, 1.0)};
  auto from_clone = clones[1]->evaluate(window);
  ASSERT_TRUE(from_clone.histogram.has_value());
  EXPECT_DOUBLE_EQ(from_clone.histogram->total(), 1.0);

  auto fresh = copy.sinks()[1]->clone();
  fresh->bind(engine::WindowConfig{1'000'000, 500'000}, 2.0);
  auto from_fresh = fresh->evaluate(window);
  ASSERT_TRUE(from_fresh.histogram.has_value());
  EXPECT_DOUBLE_EQ(from_fresh.histogram->total(), 0.0);  // no slides seen
}

TEST(EvaluateWindows, CountQueryEndToEnd) {
  // COUNT estimated from OASRS weights equals the exact window population.
  std::vector<Record> records;
  for (int i = 0; i < 2000; ++i) {
    records.push_back({static_cast<sampling::StratumId>(i % 3), 1.0,
                       static_cast<std::int64_t>(i) * 500});
  }
  const engine::WindowConfig window{200'000, 100'000};
  const auto exact = exact_window_results(records, window);
  QuerySpec query{Aggregation::kCount, false};
  for (const auto& estimate : evaluate_windows(exact, query)) {
    EXPECT_DOUBLE_EQ(estimate.overall.estimate,
                     static_cast<double>(estimate.overall.population));
  }
}

}  // namespace
}  // namespace streamapprox::core
