// Tests for the skip-ahead sampling kernel (PR 7): statistical equivalence
// of the bulk offer path with per-record Algorithm R (every stream position
// sampled with probability N/i), exact re-priming after shrink, bit-exact
// bookkeeping (seen / weight / per-window records_seen) against the
// Algorithm R escape hatch, and the ShardedRunStats kernel counters on the
// forced-steal sharded path.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/stats.h"
#include "core/stream_approx.h"
#include "ingest/replay.h"
#include "sampling/oasrs.h"
#include "sampling/reservoir.h"
#include "workload/synthetic.h"

namespace streamapprox {
namespace {

using sampling::FastReservoirSampler;
using sampling::ReservoirSampler;

// The per-record offer() and the bulk offer_run() walk the identical
// (prime, accept-slot, advance) RNG sequence — skipped records draw nothing
// either way — so chunked bulk offers are BIT-identical to per-record
// offers, not merely distribution-identical.
TEST(SkipAheadKernel, OfferRunMatchesPerRecordOffer) {
  constexpr std::size_t kCapacity = 32;
  constexpr int kStream = 5000;
  std::vector<int> stream(kStream);
  for (int i = 0; i < kStream; ++i) stream[i] = i;

  FastReservoirSampler<int> per_record(kCapacity, 77);
  FastReservoirSampler<int> bulk(kCapacity, 77);
  for (int x : stream) per_record.offer(x);
  // Ragged chunk sizes cross the fill boundary and land acceptances both at
  // chunk edges and interiors.
  const std::size_t chunks[] = {7, 64, 1, 130, 3, 500};
  std::size_t i = 0, c = 0;
  while (i < stream.size()) {
    const std::size_t n =
        std::min(chunks[c++ % 6], stream.size() - i);
    bulk.offer_run(stream.data() + i, n);
    i += n;
  }
  EXPECT_EQ(per_record.seen(), bulk.seen());
  EXPECT_EQ(per_record.items(), bulk.items());
  EXPECT_DOUBLE_EQ(per_record.weight(), bulk.weight());
}

// Selection uniformity under the bulk kernel: every one of 2000 stream
// positions must land in the sample with probability N/n. Positions are
// bucketed 20-wide; chi-square with 99 dof, alpha=0.001 critical ~148.2.
TEST(SkipAheadKernel, BulkSelectionIsUniform) {
  constexpr int kStream = 2000;
  constexpr std::size_t kCapacity = 50;
  constexpr int kTrials = 1000;
  constexpr int kBuckets = 100;
  constexpr int kWidth = kStream / kBuckets;
  std::vector<int> stream(kStream);
  for (int i = 0; i < kStream; ++i) stream[i] = i;
  std::vector<double> hits(kBuckets, 0.0);
  for (int t = 0; t < kTrials; ++t) {
    FastReservoirSampler<int> reservoir(kCapacity, 31000 + t);
    for (int i = 0; i < kStream; i += 64) {
      reservoir.offer_run(stream.data() + i,
                          std::min<std::size_t>(64, kStream - i));
    }
    for (int item : reservoir.items()) hits[item / kWidth] += 1.0;
  }
  const std::vector<double> expected(
      kBuckets,
      kTrials * static_cast<double>(kCapacity) / kBuckets);
  EXPECT_LT(chi_square(hits, expected), 148.2);
}

// shrink_capacity invalidates the skip state; the next saturated offer
// re-primes it from the exact conditional law W ~ Beta(k, s-k+1). If the
// re-prime were biased (e.g. the naive w=1 restart), positions right after
// the shrink would be systematically over-selected. Chi-square as above.
TEST(SkipAheadKernel, ShrinkRePrimeKeepsSelectionUniform) {
  constexpr int kStream = 2000;  // 1000 before the shrink, 1000 after
  constexpr int kTrials = 2000;
  constexpr int kBuckets = 100;
  constexpr int kWidth = kStream / kBuckets;
  std::vector<int> stream(kStream);
  for (int i = 0; i < kStream; ++i) stream[i] = i;
  std::vector<double> hits(kBuckets, 0.0);
  for (int t = 0; t < kTrials; ++t) {
    FastReservoirSampler<int> reservoir(64, 64000 + t);
    reservoir.offer_run(stream.data(), 1000);
    reservoir.shrink_capacity(16);
    reservoir.offer_run(stream.data() + 1000, 1000);
    EXPECT_EQ(reservoir.seen(), 2000u);
    EXPECT_EQ(reservoir.items().size(), 16u);
    for (int item : reservoir.items()) hits[item / kWidth] += 1.0;
  }
  const std::vector<double> expected(
      kBuckets, kTrials * 16.0 / kBuckets);
  EXPECT_LT(chi_square(hits, expected), 148.2);
}

// Full counter parity with ReservoirSampler across the operations OASRS
// exercises: take_items, reset(new_capacity), shrink, zero capacity, merge.
TEST(SkipAheadKernel, CountersMatchAlgorithmRSemantics) {
  ReservoirSampler<int> r(8, 1);
  FastReservoirSampler<int> l(8, 1);
  for (int i = 0; i < 100; ++i) {
    r.offer(i);
    l.offer(i);
  }
  EXPECT_EQ(l.seen(), r.seen());
  EXPECT_EQ(l.items().size(), r.items().size());
  EXPECT_DOUBLE_EQ(l.weight(), r.weight());

  auto taken_r = r.take_items();
  auto taken_l = l.take_items();
  EXPECT_EQ(taken_l.size(), taken_r.size());
  EXPECT_EQ(l.seen(), r.seen());  // counters survive the take
  EXPECT_TRUE(l.items().empty());

  r.reset(4);
  l.reset(4);
  EXPECT_EQ(l.seen(), 0u);
  EXPECT_EQ(l.capacity(), 4u);
  for (int i = 0; i < 50; ++i) {
    r.offer(i);
    l.offer(i);
  }
  r.shrink_capacity(2);
  l.shrink_capacity(2);
  EXPECT_EQ(l.items().size(), 2u);
  EXPECT_EQ(l.seen(), 50u);
  EXPECT_DOUBLE_EQ(l.weight(), 25.0);
  // Sampling continues cleanly after the shrink (re-prime path).
  for (int i = 50; i < 200; ++i) l.offer(i);
  EXPECT_EQ(l.seen(), 200u);
  EXPECT_EQ(l.items().size(), 2u);

  FastReservoirSampler<int> zero(0, 2);
  int payload = 1;
  zero.offer(payload);
  zero.offer_run(&payload, 1);
  EXPECT_EQ(zero.seen(), 2u);
  EXPECT_TRUE(zero.items().empty());

  FastReservoirSampler<int> a(10, 3);
  FastReservoirSampler<int> b(10, 4);
  for (int i = 0; i < 100; ++i) a.offer(i);
  for (int i = 100; i < 150; ++i) b.offer(i);
  a.merge(b);
  EXPECT_EQ(a.seen(), 150u);
  EXPECT_EQ(a.items().size(), 10u);
  for (int i = 150; i < 400; ++i) a.offer(i);  // re-prime after merge
  EXPECT_EQ(a.seen(), 400u);
  EXPECT_EQ(a.items().size(), 10u);
}

// The consuming merge overload draws the same randomness as the copying one
// (so either call site gets the identical merged sample) and moves the
// donor's items instead of copying them.
TEST(SkipAheadKernel, ConsumingMergeMatchesCopyingMerge) {
  const auto fill = [](auto& reservoir, int from, int to) {
    for (int i = from; i < to; ++i) reservoir.offer(i);
  };
  ReservoirSampler<int> a1(12, 5), a2(12, 5), b1(12, 6), b2(12, 6);
  fill(a1, 0, 300);
  fill(a2, 0, 300);
  fill(b1, 300, 500);
  fill(b2, 300, 500);
  a1.merge(b1);             // copying
  a2.merge(std::move(b2));  // consuming
  EXPECT_EQ(a1.items(), a2.items());
  EXPECT_EQ(a1.seen(), a2.seen());
  EXPECT_FALSE(b1.items().empty());  // copy preserved the donor
  EXPECT_TRUE(b2.items().empty());   // move consumed it
}

std::vector<engine::Record> stratified_stream(int n) {
  // 4 strata in blocks of 64 — the run shape the exchange produces.
  std::vector<engine::Record> records;
  records.reserve(n);
  for (int i = 0; i < n; ++i) {
    records.push_back(engine::Record{
        static_cast<sampling::StratumId>((i / 64) % 4),
        static_cast<double>(i), static_cast<std::int64_t>(i) * 100});
  }
  return records;
}

// OASRS bookkeeping exactness: with skip-ahead on, every per-stratum C_i,
// weight, sample SIZE (min(capacity, C_i) — deterministic either way),
// stratum discovery order, and the interval counter equal the Algorithm R
// path's. Only sample MEMBERSHIP is allowed to differ.
TEST(SkipAheadOasrs, CountersMatchAlgorithmRPath) {
  const auto records = stratified_stream(20000);
  sampling::OasrsConfig on;
  on.total_budget = 128;
  on.seed = 42;
  on.skip_ahead = true;
  sampling::OasrsConfig off = on;
  off.skip_ahead = false;
  auto fast = sampling::make_oasrs<engine::Record>(on);
  auto exact = sampling::make_oasrs<engine::Record>(off);
  fast.offer_batch(records);
  exact.offer_batch(records);
  EXPECT_EQ(fast.interval_seen(), exact.interval_seen());
  EXPECT_EQ(fast.interval_seen(), 20000u);
  EXPECT_EQ(fast.stratum_count(), exact.stratum_count());
  const auto a = fast.take();
  const auto b = exact.take();
  ASSERT_EQ(a.strata.size(), b.strata.size());
  for (std::size_t i = 0; i < a.strata.size(); ++i) {
    EXPECT_EQ(a.strata[i].stratum, b.strata[i].stratum);
    EXPECT_EQ(a.strata[i].seen, b.strata[i].seen);
    EXPECT_EQ(a.strata[i].items.size(), b.strata[i].items.size());
    EXPECT_DOUBLE_EQ(a.strata[i].weight, b.strata[i].weight);
  }
  EXPECT_EQ(fast.interval_seen(), 0u);  // take() resets the running counter
}

// interval_seen() stays exact through merge (running counter, not map walk).
TEST(SkipAheadOasrs, IntervalSeenTracksOfferAndMerge) {
  sampling::OasrsConfig config;
  config.per_stratum_capacity = 16;
  auto a = sampling::make_oasrs<engine::Record>(config);
  auto b = sampling::make_oasrs<engine::Record>(config);
  const auto records = stratified_stream(1000);
  a.offer_batch(records.data(), 600);
  b.offer_batch(records.data() + 600, 400);
  EXPECT_EQ(a.interval_seen(), 600u);
  EXPECT_EQ(b.interval_seen(), 400u);
  a.merge(b);
  EXPECT_EQ(a.interval_seen(), 1000u);
}

// With skip-ahead on, the known-stratum offer_run path (what the sharded
// worker feeds from exchange run descriptors) is bit-identical to per-record
// offer(): same reservoirs, same RNG order.
TEST(SkipAheadOasrs, OfferRunWithDescriptorsMatchesPerRecordOffer) {
  const auto records = stratified_stream(8000);
  sampling::OasrsConfig config;
  config.total_budget = 96;
  config.seed = 9;
  auto per_record = sampling::make_oasrs<engine::Record>(config);
  auto via_runs = sampling::make_oasrs<engine::Record>(config);
  for (const auto& r : records) per_record.offer(r);
  for (std::size_t i = 0; i < records.size(); i += 64) {
    via_runs.offer_run(records[i].stratum, records.data() + i, 64);
  }
  EXPECT_GT(via_runs.kernel_stats().bulk_runs, 0u);
  EXPECT_EQ(via_runs.kernel_stats().accepted +
                via_runs.kernel_stats().skipped,
            8000u);
  const auto a = per_record.take();
  const auto b = via_runs.take();
  ASSERT_EQ(a.strata.size(), b.strata.size());
  for (std::size_t i = 0; i < a.strata.size(); ++i) {
    EXPECT_EQ(a.strata[i].stratum, b.strata[i].stratum);
    EXPECT_EQ(a.strata[i].seen, b.strata[i].seen);
    EXPECT_EQ(a.strata[i].items, b.strata[i].items);
  }
}

// ---------------------------------------------------------------------------
// Pipeline-level exactness: flipping skip_ahead_sampling must not move a
// single record between windows — records_seen, records_sampled (sample
// sizes are deterministic under a fraction budget) and window boundaries
// are identical; only which records the samples contain differs.

std::vector<engine::Record> make_stream(double seconds, double rate,
                                        std::uint64_t seed) {
  workload::SyntheticStream stream(workload::gaussian_substreams(rate), seed);
  return stream.generate(seconds);
}

std::vector<core::WindowOutput> run_pipeline(
    const std::vector<engine::Record>& records, std::size_t workers,
    std::size_t partitions,
    const std::function<void(core::StreamApproxConfig&)>& mutate,
    core::ShardedRunStats* stats = nullptr) {
  ingest::Broker broker;
  broker.create_topic("input", partitions);
  ingest::ReplayTool replay(broker, "input", records, {});
  core::StreamApproxConfig config;
  config.topic = "input";
  config.window = {1'000'000, 500'000};
  config.query = {core::Aggregation::kMean, false};
  config.workers = workers;
  config.seed = 99;
  config.idle_partition_timeout_ms = 30'000;
  if (mutate) mutate(config);
  core::StreamApprox system(broker, config);
  std::vector<core::WindowOutput> outputs;
  system.run([&](const core::WindowOutput& o) { outputs.push_back(o); });
  replay.wait();
  if (stats) *stats = system.last_run_stats();
  return outputs;
}

void expect_same_bookkeeping(const std::vector<core::WindowOutput>& a,
                             const std::vector<core::WindowOutput>& b) {
  ASSERT_GT(a.size(), 2u);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].records_seen, b[i].records_seen) << "window " << i;
    EXPECT_EQ(a[i].records_sampled, b[i].records_sampled) << "window " << i;
    EXPECT_EQ(a[i].estimate.window_end_us, b[i].estimate.window_end_us)
        << "window " << i;
    EXPECT_EQ(a[i].budget_in_force, b[i].budget_in_force) << "window " << i;
  }
}

TEST(SkipAheadPipeline, SequentialBookkeepingMatchesAlgorithmR) {
  const auto records = make_stream(4.0, 24000.0, 31);
  const auto fast = run_pipeline(records, 1, 2, {});
  const auto exact = run_pipeline(records, 1, 2, [](auto& c) {
    c.skip_ahead_sampling = false;
  });
  expect_same_bookkeeping(fast, exact);
}

TEST(SkipAheadPipeline, ForcedStealShardedMatchesSequential) {
  // Tiny deques + per-record ingest cost force morsels through the injector
  // and steal paths (the WorkStealing test's recipe), with the bulk kernel
  // live end to end: watermarks, late-drops and per-window records_seen must
  // equal the sequential run's, and the kernel counters must show the bulk
  // path actually ran.
  const auto records = make_stream(3.0, 20000.0, 32);
  const auto sequential = run_pipeline(records, 1, 2, {});
  core::ShardedRunStats stats;
  const auto sharded = run_pipeline(
      records, 8, 2,
      [](auto& c) {
        c.steal_deque_capacity = 2;
        c.ingest_cost = {500};
      },
      &stats);
  ASSERT_GT(sequential.size(), 2u);
  ASSERT_EQ(sequential.size(), sharded.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(sequential[i].records_seen, sharded[i].records_seen)
        << "window " << i;
    EXPECT_EQ(sequential[i].estimate.window_end_us,
              sharded[i].estimate.window_end_us)
        << "window " << i;
  }
  EXPECT_GT(stats.sampler_bulk_runs, 0u);
  EXPECT_GT(stats.sampler_accepts, 0u);
  // Every kernel-counted record was absorbed; late-dropped runs may make the
  // sum trail records_absorbed but never exceed it.
  EXPECT_LE(stats.sampler_accepts + stats.sampler_skipped,
            stats.records_absorbed);
  EXPECT_GT(stats.sampler_accepts + stats.sampler_skipped, 0u);
}

TEST(SkipAheadPipeline, ShardedAlgorithmREscapeHatchStillExact) {
  // The escape hatch composes with sharding: skip_ahead_sampling=false on
  // the exchange path reproduces the sequential Algorithm R bookkeeping.
  const auto records = make_stream(3.0, 20000.0, 33);
  const auto sequential = run_pipeline(records, 1, 2, [](auto& c) {
    c.skip_ahead_sampling = false;
  });
  core::ShardedRunStats stats;
  const auto sharded = run_pipeline(
      records, 4, 2, [](auto& c) { c.skip_ahead_sampling = false; }, &stats);
  ASSERT_GT(sequential.size(), 2u);
  ASSERT_EQ(sequential.size(), sharded.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(sequential[i].records_seen, sharded[i].records_seen)
        << "window " << i;
  }
  // The run-descriptor path feeds Algorithm R reservoirs too (same counters,
  // per-record draws inside offer_run) — bulk runs are still counted.
  EXPECT_GT(stats.sampler_bulk_runs, 0u);
}

}  // namespace
}  // namespace streamapprox
