// Tests for the adaptive feedback controller (§4.2).
#include "estimation/feedback.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace streamapprox::estimation {
namespace {

FeedbackConfig config_with_target(double target) {
  FeedbackConfig config;
  config.target_relative_error = target;
  return config;
}

TEST(Feedback, GrowsWhenBoundTooLarge) {
  FeedbackController controller(config_with_target(0.01), 1000);
  const auto next = controller.update(0.02);  // 2x over target
  EXPECT_GT(next, 1000u);
}

TEST(Feedback, ShrinksWhenBoundComfortable) {
  FeedbackController controller(config_with_target(0.01), 1000);
  const auto next = controller.update(0.002);  // 5x better than needed
  EXPECT_LT(next, 1000u);
}

TEST(Feedback, ExactResultShrinksGently) {
  FeedbackController controller(config_with_target(0.01), 1000);
  const auto next = controller.update(0.0);
  EXPECT_LT(next, 1000u);
  EXPECT_GE(next, 500u);  // bounded by max_step/smoothing
}

TEST(Feedback, RespectsBudgetBounds) {
  FeedbackConfig config = config_with_target(0.01);
  config.min_budget = 100;
  config.max_budget = 2000;
  FeedbackController controller(config, 1000);
  for (int i = 0; i < 20; ++i) controller.update(1.0);  // huge error
  EXPECT_EQ(controller.budget(), 2000u);
  for (int i = 0; i < 40; ++i) controller.update(1e-9);
  EXPECT_EQ(controller.budget(), 100u);
}

TEST(Feedback, InitialBudgetClamped) {
  FeedbackConfig config = config_with_target(0.01);
  config.min_budget = 64;
  config.max_budget = 128;
  EXPECT_EQ(FeedbackController(config, 1).budget(), 64u);
  EXPECT_EQ(FeedbackController(config, 1 << 20).budget(), 128u);
}

TEST(Feedback, StepIsBounded) {
  FeedbackConfig config = config_with_target(0.01);
  config.smoothing = 1.0;  // undamped
  config.max_step = 4.0;
  FeedbackController controller(config, 1000);
  const auto next = controller.update(10.0);  // astronomically over target
  EXPECT_LE(next, 4000u);
}

// Convergence: simulate a system whose observed bound follows the
// 1/sqrt(budget) law and verify the controller settles near the budget that
// meets the target.
TEST(Feedback, ConvergesToTargetBudget) {
  const double target = 0.01;
  // bound(budget) = c / sqrt(budget); with c chosen so budget*=10000 meets
  // the target exactly.
  const double c = target * std::sqrt(10000.0);
  FeedbackController controller(config_with_target(target), 500);
  std::size_t budget = controller.budget();
  for (int i = 0; i < 40; ++i) {
    const double bound = c / std::sqrt(static_cast<double>(budget));
    budget = controller.update(bound);
  }
  EXPECT_NEAR(static_cast<double>(budget), 10000.0, 1500.0);
  // And the achieved bound meets the target.
  EXPECT_LE(c / std::sqrt(static_cast<double>(budget)), target * 1.1);
}

// --------------------------------------------------------------------------
// FeedbackBank: one controller per accuracy-targeted query; the budget in
// force is the max across controllers (multi-query execution samples the
// stream once, so the strictest query pays for everyone).

TEST(FeedbackBank, EmptyBankKeepsInitialBudget) {
  FeedbackBank bank(FeedbackConfig{}, 777);
  EXPECT_TRUE(bank.empty());
  EXPECT_EQ(bank.budget(), 777u);
  EXPECT_EQ(bank.update_targets({}), 777u);
}

TEST(FeedbackBank, SingleTargetMatchesPlainController) {
  // The legacy single-query path must be reproduced exactly: one target in
  // the bank follows the standalone controller's trajectory bit for bit.
  FeedbackController controller(config_with_target(0.01), 1024);
  FeedbackBank bank(FeedbackConfig{}, 1024);
  const std::size_t id = bank.add_target(0.01);
  ASSERT_EQ(bank.size(), 1u);
  double bound = 0.05;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(bank.update_targets({{id, bound}}), controller.update(bound));
    bound *= 0.7;
  }
}

TEST(FeedbackBank, StrictestTargetWins) {
  // A loose query (happy at tiny budgets) and a strict query: the resolved
  // budget must track the strict controller's demand.
  FeedbackBank bank(FeedbackConfig{}, 1024);
  const std::size_t loose = bank.add_target(0.5);
  const std::size_t strict = bank.add_target(0.001);
  FeedbackController strict_alone(config_with_target(0.001), 1024);
  double bound = 0.02;
  for (int i = 0; i < 8; ++i) {
    // Both queries observe the same bound (same sampled stream).
    EXPECT_EQ(bank.update_targets({{loose, bound}, {strict, bound}}),
              strict_alone.update(bound));
    bound *= 0.9;
  }
  EXPECT_GT(bank.budget(), 1024u);
}

TEST(FeedbackBank, IndependentBoundsPerTarget) {
  // Queries may observe different bounds (e.g. different z): each controller
  // consumes its own term and the max is returned.
  FeedbackBank bank(FeedbackConfig{}, 1000);
  const std::size_t first = bank.add_target(0.01);
  const std::size_t second = bank.add_target(0.01);
  // Query 0 is exactly on target (budget holds); query 1 is 2x over (budget
  // quadruples, damped): the max follows query 1.
  const std::size_t next =
      bank.update_targets({{first, 0.01}, {second, 0.02}});
  FeedbackController over(config_with_target(0.01), 1000);
  EXPECT_EQ(next, over.update(0.02));
}

TEST(FeedbackBank, RemoveTargetRetiresItsControllerOnly) {
  // Dynamic detach: removing one controller by stable id leaves the others'
  // ids (and trajectories) untouched, and the rebuilt budget is the max over
  // the survivors.
  FeedbackBank bank(FeedbackConfig{}, 1024);
  const std::size_t loose = bank.add_target(0.5);
  const std::size_t strict = bank.add_target(0.001);
  bank.update_targets({{loose, 0.02}, {strict, 0.02}});
  const std::size_t inflated = bank.budget();
  EXPECT_GT(inflated, 1024u);
  EXPECT_TRUE(bank.remove_target(strict));
  EXPECT_FALSE(bank.remove_target(strict));  // already gone
  ASSERT_EQ(bank.size(), 1u);
  EXPECT_LT(bank.budget(), inflated);  // the strict demand retired with it
  // The survivor's stable id still addresses it...
  bank.update_targets({{loose, 0.4}});
  // ...and the retired id is rejected loudly rather than misrouted.
  EXPECT_THROW(bank.update_targets({{strict, 0.02}}),
               std::invalid_argument);
}

TEST(FeedbackBank, MidStreamTargetSeedsAtGivenBudget) {
  // A query attached mid-stream joins at the budget currently in force, not
  // at the bank's cold-start value (budget continuity).
  FeedbackBank bank(FeedbackConfig{}, 1024);
  const std::size_t id = bank.add_target(0.01, /*seed_budget=*/9000);
  (void)id;
  EXPECT_EQ(bank.budget(), 9000u);
}

}  // namespace
}  // namespace streamapprox::estimation
