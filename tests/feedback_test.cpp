// Tests for the adaptive feedback controller (§4.2).
#include "estimation/feedback.h"

#include <gtest/gtest.h>

#include <cmath>

namespace streamapprox::estimation {
namespace {

FeedbackConfig config_with_target(double target) {
  FeedbackConfig config;
  config.target_relative_error = target;
  return config;
}

TEST(Feedback, GrowsWhenBoundTooLarge) {
  FeedbackController controller(config_with_target(0.01), 1000);
  const auto next = controller.update(0.02);  // 2x over target
  EXPECT_GT(next, 1000u);
}

TEST(Feedback, ShrinksWhenBoundComfortable) {
  FeedbackController controller(config_with_target(0.01), 1000);
  const auto next = controller.update(0.002);  // 5x better than needed
  EXPECT_LT(next, 1000u);
}

TEST(Feedback, ExactResultShrinksGently) {
  FeedbackController controller(config_with_target(0.01), 1000);
  const auto next = controller.update(0.0);
  EXPECT_LT(next, 1000u);
  EXPECT_GE(next, 500u);  // bounded by max_step/smoothing
}

TEST(Feedback, RespectsBudgetBounds) {
  FeedbackConfig config = config_with_target(0.01);
  config.min_budget = 100;
  config.max_budget = 2000;
  FeedbackController controller(config, 1000);
  for (int i = 0; i < 20; ++i) controller.update(1.0);  // huge error
  EXPECT_EQ(controller.budget(), 2000u);
  for (int i = 0; i < 40; ++i) controller.update(1e-9);
  EXPECT_EQ(controller.budget(), 100u);
}

TEST(Feedback, InitialBudgetClamped) {
  FeedbackConfig config = config_with_target(0.01);
  config.min_budget = 64;
  config.max_budget = 128;
  EXPECT_EQ(FeedbackController(config, 1).budget(), 64u);
  EXPECT_EQ(FeedbackController(config, 1 << 20).budget(), 128u);
}

TEST(Feedback, StepIsBounded) {
  FeedbackConfig config = config_with_target(0.01);
  config.smoothing = 1.0;  // undamped
  config.max_step = 4.0;
  FeedbackController controller(config, 1000);
  const auto next = controller.update(10.0);  // astronomically over target
  EXPECT_LE(next, 4000u);
}

// Convergence: simulate a system whose observed bound follows the
// 1/sqrt(budget) law and verify the controller settles near the budget that
// meets the target.
TEST(Feedback, ConvergesToTargetBudget) {
  const double target = 0.01;
  // bound(budget) = c / sqrt(budget); with c chosen so budget*=10000 meets
  // the target exactly.
  const double c = target * std::sqrt(10000.0);
  FeedbackController controller(config_with_target(target), 500);
  std::size_t budget = controller.budget();
  for (int i = 0; i < 40; ++i) {
    const double bound = c / std::sqrt(static_cast<double>(budget));
    budget = controller.update(bound);
  }
  EXPECT_NEAR(static_cast<double>(budget), 10000.0, 1500.0);
  // And the achieved bound meets the target.
  EXPECT_LE(c / std::sqrt(static_cast<double>(budget)), target * 1.1);
}

}  // namespace
}  // namespace streamapprox::estimation
