// Tests for ScaSRS (Spark's `sample`): threshold maths, exact sample size,
// uniformity, weights; plus the Bernoulli fallback.
#include "sampling/scasrs.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/stats.h"

namespace streamapprox::sampling {
namespace {

std::vector<int> iota_batch(int n) {
  std::vector<int> batch(n);
  for (int i = 0; i < n; ++i) batch[i] = i;
  return batch;
}

TEST(ScaSrsThresholds, OrderedAndBracketFraction) {
  const auto t = scasrs_thresholds(0.3, 100000);
  EXPECT_GT(t.p, 0.0);
  EXPECT_LT(t.p, 0.3);
  EXPECT_GT(t.q, 0.3);
  EXPECT_LT(t.q, 1.0);
}

TEST(ScaSrsThresholds, DegenerateInputs) {
  const auto zero = scasrs_thresholds(0.0, 1000);
  EXPECT_EQ(zero.p, 0.0);
  EXPECT_EQ(zero.q, 0.0);
  const auto full = scasrs_thresholds(1.0, 1000);
  EXPECT_EQ(full.p, 1.0);
  EXPECT_EQ(full.q, 1.0);
  const auto empty = scasrs_thresholds(0.5, 0);
  EXPECT_EQ(empty.p, 0.0);
  EXPECT_EQ(empty.q, 0.0);
}

TEST(ScaSrsThresholds, TightenWithLargerN) {
  const auto small = scasrs_thresholds(0.3, 1000);
  const auto large = scasrs_thresholds(0.3, 1000000);
  EXPECT_LT(large.q - large.p, small.q - small.p);
}

TEST(ScaSrs, ExactSampleSize) {
  streamapprox::Rng rng(1);
  const auto batch = iota_batch(50000);
  for (double fraction : {0.1, 0.3, 0.6, 0.9}) {
    const auto result = scasrs_sample(batch, fraction, rng);
    const auto expected =
        static_cast<std::size_t>(fraction * batch.size());
    EXPECT_EQ(result.items.size(), expected) << "fraction " << fraction;
    EXPECT_EQ(result.population, batch.size());
    EXPECT_NEAR(result.weight, 1.0 / fraction, 0.01);
  }
}

TEST(ScaSrs, EmptyBatch) {
  streamapprox::Rng rng(2);
  const std::vector<int> batch;
  const auto result = scasrs_sample(batch, 0.5, rng);
  EXPECT_TRUE(result.items.empty());
  EXPECT_EQ(result.population, 0u);
}

TEST(ScaSrs, FractionOneKeepsEverything) {
  streamapprox::Rng rng(3);
  const auto batch = iota_batch(100);
  const auto result = scasrs_sample(batch, 1.0, rng);
  EXPECT_EQ(result.items.size(), 100u);
  EXPECT_DOUBLE_EQ(result.weight, 1.0);
}

TEST(ScaSrs, FractionZeroKeepsNothing) {
  streamapprox::Rng rng(4);
  const auto batch = iota_batch(100);
  const auto result = scasrs_sample(batch, 0.0, rng);
  EXPECT_TRUE(result.items.empty());
}

TEST(ScaSrs, TinyBatchStillSamples) {
  streamapprox::Rng rng(5);
  const auto batch = iota_batch(3);
  const auto result = scasrs_sample(batch, 0.5, rng);
  EXPECT_GE(result.items.size(), 1u);
  EXPECT_LE(result.items.size(), 3u);
}

TEST(ScaSrs, SelectionIsUniform) {
  // Across trials every element should be selected ~fraction of the time.
  constexpr int kN = 200;
  constexpr int kTrials = 5000;
  constexpr double kFraction = 0.25;
  std::vector<double> hits(kN, 0.0);
  streamapprox::Rng rng(6);
  const auto batch = iota_batch(kN);
  for (int t = 0; t < kTrials; ++t) {
    const auto result = scasrs_sample(batch, kFraction, rng);
    for (int item : result.items) hits[item] += 1.0;
  }
  const std::vector<double> expected(kN, kTrials * kFraction);
  // 199 dof, alpha=0.001 critical ~ 272.
  EXPECT_LT(streamapprox::chi_square(hits, expected), 272.0);
}

TEST(ScaSrs, WeightedSumIsUnbiased) {
  streamapprox::Rng rng(7);
  std::vector<double> batch;
  double exact_sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double v = rng.uniform(0.0, 100.0);
    batch.push_back(v);
    exact_sum += v;
  }
  streamapprox::RunningStats errors;
  for (int t = 0; t < 20; ++t) {
    const auto result = scasrs_sample(batch, 0.2, rng);
    double approx = 0.0;
    for (double v : result.items) approx += v;
    approx *= result.weight;
    errors.add((approx - exact_sum) / exact_sum);
  }
  EXPECT_LT(std::abs(errors.mean()), 0.01);  // centred on zero
}

TEST(Bernoulli, ExpectedSizeAndWeight) {
  streamapprox::Rng rng(8);
  const auto batch = iota_batch(100000);
  const auto result = bernoulli_sample(batch, 0.3, rng);
  EXPECT_NEAR(static_cast<double>(result.items.size()), 30000.0, 600.0);
  EXPECT_NEAR(result.weight,
              static_cast<double>(batch.size()) /
                  static_cast<double>(result.items.size()),
              1e-9);
}

TEST(Bernoulli, EdgeFractions) {
  streamapprox::Rng rng(9);
  const auto batch = iota_batch(100);
  EXPECT_TRUE(bernoulli_sample(batch, 0.0, rng).items.empty());
  EXPECT_EQ(bernoulli_sample(batch, 1.0, rng).items.size(), 100u);
}

}  // namespace
}  // namespace streamapprox::sampling
