// Tests for the stage-oriented thread pool.
#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#ifdef __linux__
#include <pthread.h>
#endif

namespace streamapprox {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::promise<void> done;
  auto future = done.get_future();
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] {
      if (counter.fetch_add(1) + 1 == 100) done.set_value();
    });
  }
  future.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForIsABarrier) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  pool.parallel_for(64, [&](std::size_t) {
    done.fetch_add(1);
  });
  // If parallel_for returned before completion this could be < 64.
  EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPool, ParallelForZeroCount) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelSlicesPartitionExactly) {
  ThreadPool pool(4);
  std::mutex mutex;
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  pool.parallel_slices(103, 4,
                       [&](std::size_t, std::size_t begin, std::size_t end) {
                         std::lock_guard lock(mutex);
                         ranges.emplace_back(begin, end);
                       });
  std::sort(ranges.begin(), ranges.end());
  std::size_t covered = 0;
  std::size_t expected_begin = 0;
  for (const auto& [begin, end] : ranges) {
    EXPECT_EQ(begin, expected_begin);
    EXPECT_GE(end, begin);
    covered += end - begin;
    expected_begin = end;
  }
  EXPECT_EQ(covered, 103u);
}

TEST(ThreadPool, ParallelSlicesMoreSlicesThanItems) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  pool.parallel_slices(3, 10,
                       [&](std::size_t, std::size_t begin, std::size_t end) {
                         count += static_cast<int>(end - begin);
                       });
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::atomic<long long> sum{0};
  pool.parallel_for(1000, [&](std::size_t i) {
    sum += static_cast<long long>(i);
  });
  EXPECT_EQ(sum.load(), 999LL * 1000 / 2);
}

TEST(ThreadPool, ZeroRequestsHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&] { counter.fetch_add(1); });
    }
  }  // destructor joins after draining
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, SetCurrentThreadNameTruncatesToKernelLimit) {
  // Linux caps thread names at 15 chars + NUL; the helper must truncate
  // instead of failing (pthread_setname_np rejects long names outright).
  std::thread thread([] {
    set_current_thread_name("sa-name-way-too-long-for-the-kernel");
#ifdef __linux__
    char buffer[32] = {};
    ASSERT_EQ(pthread_getname_np(pthread_self(), buffer, sizeof(buffer)), 0);
    EXPECT_EQ(std::string(buffer), "sa-name-way-too");
#endif
  });
  thread.join();
  // Null is a no-op, not a crash.
  set_current_thread_name(nullptr);
}

TEST(ThreadPool, NamedPoolWorkersCarryThePrefix) {
  ThreadPool pool(2, "sa-test");
  std::atomic<int> checked{0};
  std::promise<void> done;
  auto future = done.get_future();
  for (int i = 0; i < 16; ++i) {
    pool.submit([&] {
#ifdef __linux__
      char buffer[32] = {};
      if (pthread_getname_np(pthread_self(), buffer, sizeof(buffer)) == 0) {
        EXPECT_EQ(std::string(buffer).rfind("sa-test-", 0), 0u)
            << "worker thread named '" << buffer << "'";
      }
#endif
      if (checked.fetch_add(1) + 1 == 16) done.set_value();
    });
  }
  future.wait();
  EXPECT_EQ(checked.load(), 16);
}

TEST(ThreadPool, NestedStagesSequential) {
  // Two consecutive barriers: second stage must observe all of first.
  ThreadPool pool(4);
  std::vector<int> data(256, 0);
  pool.parallel_for(256, [&](std::size_t i) { data[i] = 1; });
  std::atomic<int> sum{0};
  pool.parallel_for(256, [&](std::size_t i) { sum += data[i]; });
  EXPECT_EQ(sum.load(), 256);
}

}  // namespace
}  // namespace streamapprox
