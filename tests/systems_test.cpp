// Tests for the six evaluated system variants: each must process the whole
// stream, produce windows, and deliver estimates consistent with the exact
// ground truth (natives exactly; sampled systems within tolerance).
#include "core/systems.h"

#include <gtest/gtest.h>

#include "core/query.h"
#include "workload/synthetic.h"

namespace streamapprox::core {
namespace {

SystemConfig fast_config() {
  SystemConfig config;
  config.sampling_fraction = 0.4;
  config.workers = 2;
  config.batch_interval_us = 250'000;
  config.window = {1'000'000, 500'000};
  config.query_cost = engine::QueryCost{0};
  config.stage_overhead = std::chrono::microseconds(0);
  return config;
}

std::vector<engine::Record> small_stream() {
  workload::SyntheticStream stream(workload::gaussian_substreams(30000.0),
                                   123);
  return stream.generate(4.0);  // ~120k records, 8 slides
}

class SystemsRun : public ::testing::TestWithParam<SystemKind> {};

TEST_P(SystemsRun, ProcessesEverythingAndProducesWindows) {
  const auto records = small_stream();
  const auto result = run_system(GetParam(), records, fast_config());
  EXPECT_EQ(result.records_processed, records.size());
  EXPECT_GE(result.windows.size(), 6u);
  EXPECT_GT(result.throughput(), 0.0);
}

TEST_P(SystemsRun, SumEstimateWithinTolerance) {
  const auto records = small_stream();
  const auto config = fast_config();
  const auto result = run_system(GetParam(), records, config);
  const auto exact = exact_window_results(records, config.window);

  QuerySpec query{Aggregation::kSum, false};
  const auto approx_estimates = evaluate_windows(result.windows, query);
  const auto exact_estimates = evaluate_windows(exact, query);
  const double loss =
      mean_accuracy_loss(approx_estimates, exact_estimates, query);
  const double tolerance = is_native(GetParam()) ? 1e-9 : 0.05;
  EXPECT_LE(loss, tolerance) << system_name(GetParam());
}

TEST_P(SystemsRun, WindowPopulationsAreExact) {
  // Whatever the sampler does, the C_i counters must add up to the true
  // number of records in each full window (counters are never sampled) —
  // except SRS, which only estimates per-stratum populations.
  if (GetParam() == SystemKind::kSparkSRS) GTEST_SKIP();
  const auto records = small_stream();
  const auto config = fast_config();
  const auto result = run_system(GetParam(), records, config);
  const auto exact = exact_window_results(records, config.window);
  ASSERT_FALSE(result.windows.empty());

  std::unordered_map<std::int64_t, std::uint64_t> exact_counts;
  for (const auto& w : exact) {
    std::uint64_t count = 0;
    for (const auto& cell : w.cells) count += cell.seen;
    exact_counts[w.window_end_us] = count;
  }
  for (const auto& w : result.windows) {
    auto it = exact_counts.find(w.window_end_us);
    if (it == exact_counts.end()) continue;
    std::uint64_t count = 0;
    for (const auto& cell : w.cells) count += cell.seen;
    EXPECT_EQ(count, it->second)
        << system_name(GetParam()) << " window " << w.window_end_us;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSystems, SystemsRun,
    ::testing::ValuesIn(kAllSystems),
    [](const ::testing::TestParamInfo<SystemKind>& info) {
      std::string name = system_name(info.param);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(Systems, Names) {
  EXPECT_EQ(system_name(SystemKind::kFlinkApprox),
            "Flink-based StreamApprox");
  EXPECT_EQ(system_name(SystemKind::kNativeSpark), "Native Spark");
}

TEST(Systems, Classification) {
  EXPECT_TRUE(is_native(SystemKind::kNativeFlink));
  EXPECT_FALSE(is_native(SystemKind::kSparkSRS));
  EXPECT_TRUE(is_batched(SystemKind::kSparkSTS));
  EXPECT_FALSE(is_batched(SystemKind::kFlinkApprox));
}

TEST(Systems, NativeSparkSumIsExact) {
  const auto records = small_stream();
  const auto config = fast_config();
  const auto result = run_system(SystemKind::kNativeSpark, records, config);
  const auto exact = exact_window_results(records, config.window);

  QuerySpec query{Aggregation::kSum, false};
  const auto a = evaluate_windows(result.windows, query);
  const auto b = evaluate_windows(exact, query);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i].overall.estimate, b[i].overall.estimate,
                std::abs(b[i].overall.estimate) * 1e-12);
    EXPECT_DOUBLE_EQ(a[i].overall.variance, 0.0);
  }
}

TEST(Systems, ApproxVariantsActuallySample) {
  const auto records = small_stream();
  auto config = fast_config();
  config.sampling_fraction = 0.2;
  for (SystemKind kind :
       {SystemKind::kSparkApprox, SystemKind::kFlinkApprox}) {
    const auto result = run_system(kind, records, config);
    std::uint64_t sampled = 0;
    std::uint64_t seen = 0;
    for (const auto& w : result.windows) {
      for (const auto& cell : w.cells) {
        sampled += cell.sampled;
        seen += cell.seen;
      }
    }
    const double fraction =
        static_cast<double>(sampled) / static_cast<double>(seen);
    EXPECT_LT(fraction, 0.35) << system_name(kind);
    EXPECT_GT(fraction, 0.02) << system_name(kind);
  }
}

TEST(Systems, StsRespectsFractionPerStratum) {
  const auto records = small_stream();
  auto config = fast_config();
  config.sampling_fraction = 0.3;
  const auto result = run_system(SystemKind::kSparkSTS, records, config);
  std::unordered_map<sampling::StratumId, std::pair<double, double>> totals;
  for (const auto& w : result.windows) {
    for (const auto& cell : w.cells) {
      totals[cell.stratum].first += static_cast<double>(cell.sampled);
      totals[cell.stratum].second += static_cast<double>(cell.seen);
    }
  }
  for (const auto& [stratum, pair] : totals) {
    EXPECT_NEAR(pair.first / pair.second, 0.3, 0.05)
        << "stratum " << stratum;
  }
}

TEST(Systems, FiveSecondWindowRequiresAlignedBatches) {
  auto config = fast_config();
  config.batch_interval_us = 300'000;  // does not divide 500ms slide
  EXPECT_THROW(
      run_system(SystemKind::kNativeSpark, small_stream(), config),
      std::invalid_argument);
}

}  // namespace
}  // namespace streamapprox::core
