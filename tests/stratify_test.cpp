// Tests for the §7-II stratification of unlabeled streams: quantile
// (bootstrap) and online-k-means stratifiers, and the end-to-end claim that
// learned strata restore OASRS's accuracy advantage when source labels are
// unavailable.
#include "stratify/stratifier.h"

#include <gtest/gtest.h>

#include <unordered_map>

#include "common/rng.h"
#include "common/stats.h"
#include "sampling/oasrs.h"
#include "sampling/scasrs.h"

namespace streamapprox::stratify {
namespace {

using engine::Record;

// A 3-component mixture whose components are well separated in value but
// carry NO source labels (stratum deliberately 0 everywhere).
std::vector<Record> unlabeled_mixture(std::size_t n, std::uint64_t seed) {
  streamapprox::Rng rng(seed);
  std::vector<Record> records;
  records.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double u = rng.uniform();
    double value = 0.0;
    if (u < 0.70) {
      value = rng.gaussian(10.0, 2.0);
    } else if (u < 0.95) {
      value = rng.gaussian(100.0, 10.0);
    } else {
      value = rng.gaussian(1000.0, 50.0);
    }
    records.push_back(Record{0, value, 0});
  }
  return records;
}

TEST(QuantileStratifier, BootstrapsThenBins) {
  // 4000 bootstrap samples: the quantile estimates' standard error is ~0.7,
  // so a +/-4 tolerance is ~5 sigma.
  QuantileStratifier stratifier(4, 4000);
  EXPECT_FALSE(stratifier.bootstrapped());
  streamapprox::Rng rng(1);
  for (int i = 0; i < 4000; ++i) stratifier.assign(rng.uniform(0.0, 100.0));
  EXPECT_TRUE(stratifier.bootstrapped());
  ASSERT_EQ(stratifier.boundaries().size(), 3u);
  // Quantile cuts of U(0,100) at 25/50/75.
  EXPECT_NEAR(stratifier.boundaries()[0], 25.0, 4.0);
  EXPECT_NEAR(stratifier.boundaries()[1], 50.0, 4.0);
  EXPECT_NEAR(stratifier.boundaries()[2], 75.0, 4.0);
  EXPECT_EQ(stratifier.assign(1.0), 0u);
  EXPECT_EQ(stratifier.assign(99.0), 3u);
}

TEST(QuantileStratifier, BinsAreMonotoneInValue) {
  QuantileStratifier stratifier(5, 200);
  streamapprox::Rng rng(2);
  for (int i = 0; i < 200; ++i) stratifier.assign(rng.gaussian(0.0, 1.0));
  sampling::StratumId last = 0;
  for (double v = -3.0; v <= 3.0; v += 0.1) {
    const auto id = stratifier.assign(v);
    EXPECT_GE(id, last);
    last = id;
  }
  EXPECT_EQ(last, 4u);
}

TEST(QuantileStratifier, BalancedOccupancyOnStationaryInput) {
  QuantileStratifier stratifier(4, 8000);
  streamapprox::Rng rng(3);
  for (int i = 0; i < 8000; ++i) stratifier.assign(rng.exponential(1.0));
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 40000; ++i) {
    ++counts[stratifier.assign(rng.exponential(1.0))];
  }
  // Occupancy error is dominated by the bootstrap quantile noise (~1%
  // with 8000 samples); 10000 +/- 800 is a multi-sigma band.
  for (int c : counts) EXPECT_NEAR(c, 10000, 800);
}

TEST(QuantileStratifier, DegenerateSingleStratum) {
  QuantileStratifier stratifier(1, 10);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(stratifier.assign(static_cast<double>(i)), 0u);
  }
}

TEST(KMeansStratifier, SeedsWithDistinctValues) {
  KMeansStratifier stratifier(3);
  EXPECT_EQ(stratifier.assign(1.0), 0u);
  EXPECT_EQ(stratifier.assign(1.0), 0u);  // duplicate: assigned, not seeded
  EXPECT_EQ(stratifier.assign(100.0), 1u);
  EXPECT_EQ(stratifier.assign(1000.0), 2u);
  EXPECT_EQ(stratifier.centroids().size(), 3u);
}

TEST(KMeansStratifier, RecoversWellSeparatedClusters) {
  KMeansStratifier stratifier(3);
  const auto records = unlabeled_mixture(50000, 4);
  std::unordered_map<sampling::StratumId, streamapprox::RunningStats> groups;
  for (const auto& record : records) {
    groups[stratifier.assign(record.value)].add(record.value);
  }
  ASSERT_EQ(groups.size(), 3u);
  // Each learned group should be tight around one of the true means.
  std::vector<double> means;
  for (auto& [id, stats] : groups) means.push_back(stats.mean());
  std::sort(means.begin(), means.end());
  EXPECT_NEAR(means[0], 10.0, 5.0);
  EXPECT_NEAR(means[1], 100.0, 20.0);
  EXPECT_NEAR(means[2], 1000.0, 100.0);
}

TEST(KMeansStratifier, CentroidsTrackDrift) {
  KMeansStratifier stratifier(2);
  streamapprox::Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    stratifier.assign(rng.gaussian(0.0, 1.0));
    stratifier.assign(rng.gaussian(50.0, 1.0));
  }
  // Drift the upper cluster to 80.
  for (int i = 0; i < 20000; ++i) {
    stratifier.assign(rng.gaussian(0.0, 1.0));
    stratifier.assign(rng.gaussian(80.0, 1.0));
  }
  auto centroids = stratifier.centroids();
  std::sort(centroids.begin(), centroids.end());
  EXPECT_NEAR(centroids[0], 0.0, 3.0);
  EXPECT_GT(centroids[1], 65.0);  // moved toward 80 (MacQueen rate slows)
}

TEST(Restratify, PreservesValueReplacesStratum) {
  KMeansStratifier stratifier(2);
  const Record record{42, 7.5, 123};
  const auto out = restratify(record, stratifier);
  EXPECT_EQ(out.value, 7.5);
  EXPECT_EQ(out.event_time_us, 123);
  EXPECT_LT(out.stratum, 2u);
}

// The end-to-end claim: on unlabeled long-tail data, OASRS over LEARNED
// strata approximates the mean far better than SRS at the same budget —
// i.e. the §7 pre-processing step restores the paper's §5.7 result.
TEST(StratifiedByLearning, BeatsSrsOnUnlabeledLongTail) {
  double learned_err = 0.0;
  double srs_err = 0.0;
  constexpr int kTrials = 8;
  for (int t = 0; t < kTrials; ++t) {
    const auto records = unlabeled_mixture(60000, 100 + t);
    double exact = 0.0;
    for (const auto& record : records) exact += record.value;
    exact /= static_cast<double>(records.size());

    // OASRS at 5% budget over k-means strata.
    KMeansStratifier stratifier(3);
    sampling::OasrsConfig config;
    config.total_budget = records.size() / 20;
    config.seed = 200 + t;
    auto sampler = sampling::make_oasrs<Record>(config);
    for (const auto& record : records) {
      sampler.offer(restratify(record, stratifier));
    }
    const auto sample = sampler.take();
    double sum = 0.0;
    double count = 0.0;
    for (const auto& stratum : sample.strata) {
      double stratum_sum = 0.0;
      for (const auto& record : stratum.items) stratum_sum += record.value;
      sum += stratum_sum * stratum.weight;
      count += static_cast<double>(stratum.seen);
    }
    learned_err += streamapprox::relative_error(sum / count, exact);

    // SRS at the same 5%.
    streamapprox::Rng rng(300 + t);
    const auto srs = sampling::scasrs_sample(records, 0.05, rng);
    double srs_mean = 0.0;
    for (const auto& record : srs.items) srs_mean += record.value;
    srs_mean /= static_cast<double>(srs.items.size());
    srs_err += streamapprox::relative_error(srs_mean, exact);
  }
  EXPECT_LT(learned_err / kTrials, srs_err / kTrials);
  EXPECT_LT(learned_err / kTrials, 0.01);
}

}  // namespace
}  // namespace streamapprox::stratify
