// The pooled morsel type of the batched data plane: metadata defaults,
// reset-keeps-capacity recycling, and pool reuse accounting.
#include "engine/record_batch.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace streamapprox::engine {
namespace {

TEST(RecordBatch, DefaultsAndReset) {
  RecordBatch batch;
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(batch.source_partition, RecordBatch::kMixedSources);
  EXPECT_EQ(batch.watermark_us, kNoWatermark);

  batch.records.push_back({1, 2.0, 3});
  batch.source_partition = 4;
  batch.watermark_us = 5;
  EXPECT_EQ(batch.size(), 1u);

  const std::size_t capacity = batch.records.capacity();
  batch.reset();
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(batch.source_partition, RecordBatch::kMixedSources);
  EXPECT_EQ(batch.watermark_us, kNoWatermark);
  EXPECT_EQ(batch.records.capacity(), capacity);
}

TEST(RecordBatch, ResetClearsMorselIdentity) {
  // The work-stealing scheduler keys its per-channel completion tracking on
  // channel/seq/heartbeat; a recycled batch must never leak a previous
  // morsel's identity into the next emission.
  RecordBatch batch;
  EXPECT_EQ(batch.channel, RecordBatch::kNoChannel);
  EXPECT_EQ(batch.seq, 0u);
  EXPECT_FALSE(batch.heartbeat);

  batch.channel = 7;
  batch.seq = 42;
  batch.heartbeat = true;
  batch.reset();
  EXPECT_EQ(batch.channel, RecordBatch::kNoChannel);
  EXPECT_EQ(batch.seq, 0u);
  EXPECT_FALSE(batch.heartbeat);
}

TEST(BatchPool, RecyclesInsteadOfAllocating) {
  BatchPool pool(/*reserve_records=*/16);
  auto first = pool.acquire();
  ASSERT_NE(first, nullptr);
  EXPECT_GE(first->records.capacity(), 16u);
  EXPECT_EQ(pool.allocated(), 1u);

  first->records.push_back({7, 1.0, 42});
  first->watermark_us = 99;
  RecordBatch* raw = first.get();
  pool.release(std::move(first));
  EXPECT_EQ(pool.pooled(), 1u);

  // The same batch comes back, reset but with its capacity intact.
  auto second = pool.acquire();
  EXPECT_EQ(second.get(), raw);
  EXPECT_TRUE(second->empty());
  EXPECT_EQ(second->watermark_us, kNoWatermark);
  EXPECT_EQ(pool.allocated(), 1u);
  EXPECT_EQ(pool.pooled(), 0u);
}

TEST(BatchPool, SteadyStateAllocationIsBounded) {
  BatchPool pool(8);
  // Two batches in flight at any moment, many acquire/release cycles: the
  // allocation high-water mark must stay at 2.
  for (int round = 0; round < 100; ++round) {
    auto a = pool.acquire();
    auto b = pool.acquire();
    a->records.push_back({0, 0.0, round});
    pool.release(std::move(a));
    pool.release(std::move(b));
  }
  EXPECT_EQ(pool.allocated(), 2u);
}

TEST(BatchPool, ReleaseNullIsIgnored) {
  BatchPool pool;
  pool.release(nullptr);
  EXPECT_EQ(pool.pooled(), 0u);
}

}  // namespace
}  // namespace streamapprox::engine
