// Tests for sliding-window assembly and event-time interval splitting.
#include "engine/window.h"

#include <gtest/gtest.h>

#include "engine/record.h"

namespace streamapprox::engine {
namespace {

estimation::StratumSummary cell(sampling::StratumId stratum, double sum) {
  estimation::StratumSummary s;
  s.stratum = stratum;
  s.seen = 1;
  s.sampled = 1;
  s.sum = sum;
  return s;
}

TEST(WindowConfig, SlidesPerWindow) {
  WindowConfig config;
  config.size_us = 10'000'000;
  config.slide_us = 5'000'000;
  EXPECT_EQ(config.slides_per_window(), 2u);
}

TEST(Assembler, RejectsBadGeometry) {
  EXPECT_THROW(SlidingWindowAssembler({10, 0}), std::invalid_argument);
  EXPECT_THROW(SlidingWindowAssembler({10, 3}), std::invalid_argument);
  EXPECT_THROW(SlidingWindowAssembler({10, 20}), std::invalid_argument);
  EXPECT_NO_THROW(SlidingWindowAssembler({10, 10}));
}

TEST(Assembler, FirstWindowAfterFill) {
  SlidingWindowAssembler assembler({10, 5});  // 2 slides per window
  EXPECT_FALSE(assembler.push_slide({cell(0, 1.0)}).has_value());
  const auto window = assembler.push_slide({cell(0, 2.0)});
  ASSERT_TRUE(window.has_value());
  EXPECT_EQ(window->window_start_us, 0);
  EXPECT_EQ(window->window_end_us, 10);
  ASSERT_EQ(window->cells.size(), 2u);
  EXPECT_DOUBLE_EQ(window->cells[0].sum + window->cells[1].sum, 3.0);
}

TEST(Assembler, SlidesDropOldestCells) {
  SlidingWindowAssembler assembler({10, 5});
  assembler.push_slide({cell(0, 1.0)});
  assembler.push_slide({cell(0, 2.0)});
  const auto window = assembler.push_slide({cell(0, 4.0)});
  ASSERT_TRUE(window.has_value());
  EXPECT_EQ(window->window_start_us, 5);
  EXPECT_EQ(window->window_end_us, 15);
  double sum = 0.0;
  for (const auto& c : window->cells) sum += c.sum;
  EXPECT_DOUBLE_EQ(sum, 6.0);  // slide 0's cell (1.0) aged out
}

TEST(Assembler, TumblingWindow) {
  SlidingWindowAssembler assembler({5, 5});  // size == slide
  const auto w1 = assembler.push_slide({cell(0, 1.0)});
  ASSERT_TRUE(w1.has_value());
  EXPECT_EQ(w1->window_start_us, 0);
  EXPECT_EQ(w1->window_end_us, 5);
  const auto w2 = assembler.push_slide({cell(0, 2.0)});
  ASSERT_TRUE(w2.has_value());
  EXPECT_EQ(w2->window_start_us, 5);
  ASSERT_EQ(w2->cells.size(), 1u);
  EXPECT_DOUBLE_EQ(w2->cells[0].sum, 2.0);
}

TEST(Assembler, EmptySlidesStillAdvanceTime) {
  SlidingWindowAssembler assembler({10, 5});
  assembler.push_slide({});
  const auto window = assembler.push_slide({});
  ASSERT_TRUE(window.has_value());
  EXPECT_TRUE(window->cells.empty());
  EXPECT_EQ(assembler.slides_pushed(), 2u);
}

TEST(SplitByInterval, BasicSplit) {
  std::vector<Record> records = {
      {0, 1.0, 100}, {0, 1.0, 900},    // interval 0: [0, 1000)
      {0, 1.0, 1000}, {0, 1.0, 1500},  // interval 1
      {0, 1.0, 2100},                  // interval 2
  };
  const auto ranges = split_by_interval(records, 1000);
  ASSERT_EQ(ranges.size(), 3u);
  EXPECT_EQ(ranges[0], (std::pair<std::size_t, std::size_t>{0, 2}));
  EXPECT_EQ(ranges[1], (std::pair<std::size_t, std::size_t>{2, 4}));
  EXPECT_EQ(ranges[2], (std::pair<std::size_t, std::size_t>{4, 5}));
}

TEST(SplitByInterval, EmptyIntervalsPreserved) {
  std::vector<Record> records = {
      {0, 1.0, 100},
      {0, 1.0, 3500},  // intervals 1 and 2 are empty
  };
  const auto ranges = split_by_interval(records, 1000);
  ASSERT_EQ(ranges.size(), 4u);
  EXPECT_EQ(ranges[1].first, ranges[1].second);
  EXPECT_EQ(ranges[2].first, ranges[2].second);
  EXPECT_EQ(ranges[3], (std::pair<std::size_t, std::size_t>{1, 2}));
}

TEST(SplitByInterval, EmptyInput) {
  const auto ranges = split_by_interval({}, 1000);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0], (std::pair<std::size_t, std::size_t>{0, 0}));
}

TEST(SplitByInterval, NonPositiveIntervalYieldsOneRange) {
  std::vector<Record> records = {{0, 1.0, 5}, {0, 1.0, 10}};
  const auto ranges = split_by_interval(records, 0);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0], (std::pair<std::size_t, std::size_t>{0, 2}));
}

TEST(SplitByInterval, RangesCoverEveryRecordExactlyOnce) {
  std::vector<Record> records;
  for (int i = 0; i < 1000; ++i) {
    records.push_back({0, 1.0, static_cast<std::int64_t>(i * 37)});
  }
  const auto ranges = split_by_interval(records, 500);
  std::size_t covered = 0;
  std::size_t expected_begin = 0;
  for (const auto& [begin, end] : ranges) {
    EXPECT_EQ(begin, expected_begin);
    covered += end - begin;
    expected_begin = end;
  }
  EXPECT_EQ(covered, records.size());
}

}  // namespace
}  // namespace streamapprox::engine
