// Tests for the NYC-taxi-like generator (case study §6.3 substitute).
#include "workload/taxi.h"

#include <gtest/gtest.h>

#include <unordered_map>

#include "common/stats.h"

namespace streamapprox::workload {
namespace {

TEST(Taxi, BoroughNames) {
  EXPECT_EQ(borough_name(Borough::kManhattan), "Manhattan");
  EXPECT_EQ(borough_name(Borough::kNewark), "Newark (EWR)");
}

TEST(Taxi, ConfigValidation) {
  TaxiConfig bad;
  bad.shares.pop_back();
  EXPECT_THROW(taxi_substreams(bad), std::invalid_argument);
}

TEST(Taxi, SharesAreManhattanDominated) {
  const auto records = generate_taxi_rides(TaxiConfig{}, 200000, 3);
  std::unordered_map<sampling::StratumId, double> counts;
  for (const auto& record : records) counts[record.stratum] += 1.0;
  const double total = static_cast<double>(records.size());
  EXPECT_NEAR(counts[0] / total, 0.70, 0.02);   // Manhattan
  EXPECT_GT(counts[0], counts[1]);
  // Every borough present, even the ~1% ones.
  for (sampling::StratumId b = 0; b < kBoroughCount; ++b) {
    EXPECT_GT(counts[b], 0.0) << borough_name(static_cast<Borough>(b));
  }
}

TEST(Taxi, DistancesPositiveWithSensibleMeans) {
  const auto records = generate_taxi_rides(TaxiConfig{}, 200000, 5);
  std::unordered_map<sampling::StratumId, streamapprox::RunningStats> stats;
  for (const auto& record : records) {
    ASSERT_GT(record.value, 0.0);
    stats[record.stratum].add(record.value);
  }
  // Manhattan trips ~2 miles.
  EXPECT_NEAR(stats[0].mean(), 2.2 * 0.9, 0.2);
  // Newark airport trips the longest.
  const auto newark =
      static_cast<sampling::StratumId>(Borough::kNewark);
  for (sampling::StratumId b = 0; b < kBoroughCount - 1; ++b) {
    EXPECT_GT(stats[newark].mean(), stats[b].mean());
  }
}

TEST(Taxi, SortedAndDeterministic) {
  const auto a = generate_taxi_rides(TaxiConfig{}, 5000, 7);
  const auto b = generate_taxi_rides(TaxiConfig{}, 5000, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 1; i < a.size(); ++i) {
    ASSERT_LE(a[i - 1].event_time_us, a[i].event_time_us);
    ASSERT_EQ(a[i], b[i]);
  }
}

}  // namespace
}  // namespace streamapprox::workload
