// Tests for approximate HISTOGRAM queries: the weighted sample histogram
// must statistically recreate the population histogram, including through
// the StreamApprox facade.
#include "estimation/histogram_query.h"

#include <gtest/gtest.h>

#include "core/stream_approx.h"
#include "engine/record.h"
#include "ingest/replay.h"
#include "sampling/oasrs.h"
#include "workload/synthetic.h"

namespace streamapprox::estimation {
namespace {

using engine::Record;

TEST(WeightedHistogram, EmptySample) {
  sampling::StratifiedSample<Record> sample;
  const auto histogram = weighted_histogram(
      sample, engine::RecordValue{}, HistogramSpec{0.0, 10.0, 5});
  EXPECT_EQ(histogram.total(), 0.0);
}

TEST(WeightedHistogram, AppliesStratumWeights) {
  sampling::StratifiedSample<Record> sample;
  sampling::StratumSample<Record> a;
  a.stratum = 0;
  a.seen = 100;
  a.weight = 50.0;
  a.items = {Record{0, 1.0, 0}, Record{0, 2.0, 0}};
  sampling::StratumSample<Record> b;
  b.stratum = 1;
  b.seen = 3;
  b.weight = 1.0;
  b.items = {Record{1, 8.0, 0}};
  sample.strata = {a, b};

  const auto histogram = weighted_histogram(
      sample, engine::RecordValue{}, HistogramSpec{0.0, 10.0, 10});
  EXPECT_DOUBLE_EQ(histogram.bucket(1), 50.0);  // value 1.0
  EXPECT_DOUBLE_EQ(histogram.bucket(2), 50.0);  // value 2.0
  EXPECT_DOUBLE_EQ(histogram.bucket(8), 1.0);   // value 8.0
  EXPECT_DOUBLE_EQ(histogram.total(), 101.0);
}

TEST(WeightedHistogram, RecreatesPopulationShapeThroughOasrs) {
  // 100k Gaussian values sampled at ~5% should reproduce the population
  // histogram within a few percent L1 distance.
  streamapprox::Rng rng(21);
  Histogram exact(0.0, 100.0, 25);
  sampling::OasrsConfig config;
  config.total_budget = 5000;
  config.seed = 22;
  auto sampler = sampling::make_oasrs<Record>(config);
  for (int i = 0; i < 100000; ++i) {
    const double v = rng.gaussian(50.0, 12.0);
    exact.add(v);
    sampler.offer(Record{static_cast<sampling::StratumId>(i % 3), v, 0});
  }
  const auto approx = weighted_histogram(
      sampler.take(), engine::RecordValue{}, HistogramSpec{0.0, 100.0, 25});
  EXPECT_LT(exact.l1_distance(approx), 0.06);
  EXPECT_NEAR(approx.total(), exact.total(), exact.total() * 0.02);
}

TEST(WeightedHistogram, FacadeDeliversWindowHistograms) {
  workload::SyntheticStream stream(
      {{0, workload::Gaussian{50.0, 10.0}, 20000.0},
       {1, workload::Gaussian{20.0, 5.0}, 20000.0}},
      23);
  const auto records = stream.generate(4.0);

  ingest::Broker broker;
  broker.create_topic("hist", 2);
  ingest::ReplayTool replay(broker, "hist", records, {});

  core::StreamApproxConfig config;
  config.topic = "hist";
  config.query = {core::Aggregation::kMean, false};
  config.budget = QueryBudget::fraction(0.2);
  config.window = {1'000'000, 500'000};
  config.histogram = HistogramSpec{0.0, 100.0, 20};

  core::StreamApprox system(broker, config);
  std::size_t with_histogram = 0;
  std::size_t windows = 0;
  system.run([&](const core::WindowOutput& output) {
    ++windows;
    if (!output.histogram) return;
    ++with_histogram;
    // Bimodal input: mass near 20 and near 50, nothing near 80.
    const auto& h = *output.histogram;
    EXPECT_GT(h.total(), 0.0);
    const double near20 = h.bucket(4);   // [20,25)
    const double near80 = h.bucket(16);  // [80,85)
    EXPECT_GT(near20, 10.0 * (near80 + 1.0));
    // Total mass estimates the window population (seen records).
    EXPECT_NEAR(h.total(), static_cast<double>(output.records_seen),
                0.05 * static_cast<double>(output.records_seen));
  });
  replay.wait();
  ASSERT_GT(windows, 0u);
  EXPECT_EQ(with_histogram, windows);
}

TEST(WeightedHistogram, RegistryHistogramMatchesLegacyConfigField) {
  // A HISTOGRAM query registered on the QuerySet and the legacy
  // `config.histogram` field are the same sink: a seeded sequential run
  // produces bucket-identical window histograms either way.
  workload::SyntheticStream stream(
      {{0, workload::Gaussian{50.0, 10.0}, 20000.0},
       {1, workload::Gaussian{20.0, 5.0}, 20000.0}},
      24);
  const auto records = stream.generate(3.0);

  const auto run = [&](bool via_registry) {
    ingest::Broker broker;
    broker.create_topic("hist", 1);
    ingest::ReplayTool replay(broker, "hist", records, {});
    core::StreamApproxConfig config;
    config.topic = "hist";
    config.budget = QueryBudget::fraction(0.2);
    config.window = {1'000'000, 500'000};
    if (via_registry) {
      config.queries.aggregate("mean", {core::Aggregation::kMean, false});
      config.queries.histogram("hist", {0.0, 100.0, 20});
    } else {
      config.query = {core::Aggregation::kMean, false};
      config.histogram = HistogramSpec{0.0, 100.0, 20};
    }
    core::StreamApprox system(broker, config);
    std::vector<Histogram> histograms;
    system.run([&](const core::WindowOutput& output) {
      ASSERT_TRUE(output.histogram.has_value());
      histograms.push_back(*output.histogram);
    });
    replay.wait();
    return histograms;
  };

  const auto legacy = run(false);
  const auto registry = run(true);
  ASSERT_GT(legacy.size(), 2u);
  ASSERT_EQ(legacy.size(), registry.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    ASSERT_EQ(legacy[i].bucket_count(), registry[i].bucket_count());
    EXPECT_EQ(legacy[i].total(), registry[i].total());
    for (std::size_t k = 0; k < legacy[i].bucket_count(); ++k) {
      EXPECT_EQ(legacy[i].bucket(k), registry[i].bucket(k)) << i << "/" << k;
    }
  }
}

TEST(WeightedHistogram, QuantilesFromWeightedSampleMatchPopulation) {
  streamapprox::Rng rng(29);
  Histogram exact(0.0, 200.0, 50);
  sampling::OasrsConfig config;
  config.total_budget = 4000;
  config.seed = 30;
  auto sampler = sampling::make_oasrs<Record>(config);
  for (int i = 0; i < 80000; ++i) {
    const double v = rng.exponential(0.02);  // mean 50, skewed
    exact.add(v);
    sampler.offer(Record{0, v, 0});
  }
  const auto approx = weighted_histogram(
      sampler.take(), engine::RecordValue{}, HistogramSpec{0.0, 200.0, 50});
  EXPECT_NEAR(approx.quantile(0.5), exact.quantile(0.5), 4.0);
  EXPECT_NEAR(approx.quantile(0.9), exact.quantile(0.9), 10.0);
}

}  // namespace
}  // namespace streamapprox::estimation
