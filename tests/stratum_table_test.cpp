// StratumTable: the flat open-addressing stratum set behind the exchange's
// bulk routing kernel — membership, growth/rehash, collision-chain probing,
// and the probe accounting ExchangeStats::table_probes reports.
#include "ingest/stratum_table.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/rng.h"

namespace streamapprox::ingest {
namespace {

TEST(StratumTable, InsertReportsNoveltyAndContainsAgrees) {
  StratumTable table;
  EXPECT_EQ(table.size(), 0u);
  EXPECT_FALSE(table.contains(7));

  EXPECT_TRUE(table.insert(7));
  EXPECT_TRUE(table.insert(11));
  EXPECT_TRUE(table.insert(0));
  // Duplicates are reported as such and do not change the size.
  EXPECT_FALSE(table.insert(7));
  EXPECT_FALSE(table.insert(0));

  EXPECT_EQ(table.size(), 3u);
  EXPECT_TRUE(table.contains(7));
  EXPECT_TRUE(table.contains(11));
  EXPECT_TRUE(table.contains(0));
  EXPECT_FALSE(table.contains(8));
}

TEST(StratumTable, SlotCountRoundsUpToPowerOfTwo) {
  EXPECT_EQ(StratumTable(1).slot_count(), 8u);
  EXPECT_EQ(StratumTable(8).slot_count(), 8u);
  EXPECT_EQ(StratumTable(9).slot_count(), 16u);
  EXPECT_EQ(StratumTable(64).slot_count(), 64u);
  EXPECT_EQ(StratumTable(65).slot_count(), 128u);
}

TEST(StratumTable, GrowthPreservesMembershipAndLoadBound) {
  // Start tiny to force many rehashes; mirror against std::unordered_set.
  StratumTable table(1);
  std::unordered_set<sampling::StratumId> mirror;
  Rng rng(42);
  for (int i = 0; i < 10'000; ++i) {
    const auto stratum =
        static_cast<sampling::StratumId>(rng.uniform_int(100'000));
    EXPECT_EQ(table.insert(stratum), mirror.insert(stratum).second);
  }
  EXPECT_EQ(table.size(), mirror.size());
  for (const auto stratum : mirror) {
    EXPECT_TRUE(table.contains(stratum));
  }
  // Power-of-two capacity, never above the 70 % load ceiling.
  EXPECT_EQ(table.slot_count() & (table.slot_count() - 1), 0u);
  EXPECT_LE(table.size() * 10, table.slot_count() * 7);
}

TEST(StratumTable, CollisionChainProbesGrowLinearly) {
  // Build ids that all hash to one home slot at the current capacity; the
  // i-th collider must walk the i previous entries plus the empty slot.
  StratumTable table(64);
  ASSERT_EQ(table.slot_count(), 64u);
  const std::size_t home = StratumTable::preferred_slot(0, 64);
  std::vector<sampling::StratumId> colliders{0};
  for (std::uint32_t s = 1; colliders.size() < 5; ++s) {
    if (StratumTable::preferred_slot(s, 64) == home) colliders.push_back(s);
  }

  std::uint64_t previous = table.probes();
  for (std::size_t i = 0; i < colliders.size(); ++i) {
    ASSERT_TRUE(table.insert(colliders[i]));
    EXPECT_EQ(table.probes() - previous, i + 1)
        << "collider " << i << " should probe exactly " << i + 1 << " slots";
    previous = table.probes();
  }
  // A duplicate of the chain's tail re-walks the whole chain.
  ASSERT_FALSE(table.insert(colliders.back()));
  EXPECT_EQ(table.probes() - previous, colliders.size());
  for (const auto stratum : colliders) {
    EXPECT_TRUE(table.contains(stratum));
  }
}

TEST(StratumTable, SparseInsertsProbeNearOnce) {
  // At low load the expected probe chain is barely above one slot — the
  // property that makes the kernel's per-run-boundary probe cheap.
  StratumTable table(4096);
  Rng rng(7);
  const int inserts = 1000;
  for (int i = 0; i < inserts; ++i) {
    table.insert(static_cast<sampling::StratumId>(rng.uniform_int(1u << 30)));
  }
  EXPECT_LT(static_cast<double>(table.probes()) / inserts, 2.0);
}

}  // namespace
}  // namespace streamapprox::ingest
