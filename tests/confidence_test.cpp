// Tests for the confidence machinery: normal quantiles, the 68-95-99.7 rule
// (paper §3.3), Student-t widening, and ApproxResult interval arithmetic.
#include "estimation/confidence.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "estimation/approx_result.h"
#include "estimation/estimators.h"

namespace streamapprox::estimation {
namespace {

TEST(ZValue, CanonicalQuantiles) {
  EXPECT_NEAR(z_value(0.6827), 1.0, 0.001);
  EXPECT_NEAR(z_value(0.9545), 2.0, 0.001);
  EXPECT_NEAR(z_value(0.9973), 3.0, 0.001);
  EXPECT_NEAR(z_value(0.95), 1.95996, 0.0005);
  EXPECT_NEAR(z_value(0.99), 2.57583, 0.0005);
}

TEST(ZValue, ClampsDegenerateConfidences) {
  EXPECT_GT(z_value(1.0), 6.0);   // clamped near 1: very large, finite
  EXPECT_TRUE(std::isfinite(z_value(1.0)));
  EXPECT_NEAR(z_value(0.0), 0.0, 1e-6);
  EXPECT_TRUE(std::isfinite(z_value(-1.0)));
}

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-9);
  EXPECT_NEAR(normal_cdf(1.0), 0.841345, 1e-5);
  EXPECT_NEAR(normal_cdf(-1.0), 0.158655, 1e-5);
  EXPECT_NEAR(normal_cdf(1.96), 0.975, 0.001);
}

TEST(ZValueAndCdf, AreInverses) {
  for (double confidence : {0.5, 0.8, 0.9, 0.95, 0.99}) {
    const double z = z_value(confidence);
    EXPECT_NEAR(2.0 * normal_cdf(z) - 1.0, confidence, 1e-6);
  }
}

TEST(TValue, WidensSmallSamples) {
  const double z = z_value(0.95);
  EXPECT_GT(t_value(0.95, 5), z);
  EXPECT_GT(t_value(0.95, 5), t_value(0.95, 30));
  EXPECT_NEAR(t_value(0.95, 100000), z, 1e-3);
}

TEST(TValue, ApproximatesTableValues) {
  // t_{0.975, 10} = 2.228, t_{0.975, 30} = 2.042 (two-sided 95%).
  EXPECT_NEAR(t_value(0.95, 10), 2.228, 0.03);
  EXPECT_NEAR(t_value(0.95, 30), 2.042, 0.01);
}

TEST(ApproxResult, IntervalArithmetic) {
  ApproxResult result;
  result.estimate = 100.0;
  result.variance = 25.0;  // stddev 5
  EXPECT_DOUBLE_EQ(result.stddev(), 5.0);
  EXPECT_DOUBLE_EQ(result.error_bound(2.0), 10.0);
  EXPECT_DOUBLE_EQ(result.relative_bound(2.0), 0.1);
  const auto ci = result.interval(2.0);
  EXPECT_DOUBLE_EQ(ci.lo, 90.0);
  EXPECT_DOUBLE_EQ(ci.hi, 110.0);
  EXPECT_TRUE(ci.contains(100.0));
  EXPECT_TRUE(ci.contains(90.0));
  EXPECT_FALSE(ci.contains(89.999));
  EXPECT_DOUBLE_EQ(ci.width(), 20.0);
}

TEST(ApproxResult, ZeroEstimateRelativeBound) {
  ApproxResult result;
  result.estimate = 0.0;
  result.variance = 4.0;
  EXPECT_EQ(result.relative_bound(), 0.0);
}

TEST(ApproxResult, ToStringMentionsBound) {
  ApproxResult result;
  result.estimate = 10.0;
  result.variance = 1.0;
  const auto text = result.to_string(2.0);
  EXPECT_NE(text.find("10"), std::string::npos);
  EXPECT_NE(text.find("+/-"), std::string::npos);
}

// The "68-95-99.7" property end-to-end (paper §3.3): the true SUM must fall
// inside the z-sigma interval with roughly the advertised frequency.
TEST(CoverageProperty, SixtyEightNinetyFive) {
  streamapprox::Rng rng(1);
  std::vector<double> population;
  double exact = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.exponential(0.1);  // skewed on purpose
    population.push_back(v);
    exact += v;
  }
  constexpr std::size_t kSample = 500;
  int cover1 = 0;
  int cover2 = 0;
  int cover3 = 0;
  constexpr int kTrials = 600;
  for (int t = 0; t < kTrials; ++t) {
    StratumSummary summary;
    summary.stratum = 0;
    summary.seen = population.size();
    // Sample without replacement.
    std::vector<std::size_t> index(population.size());
    for (std::size_t i = 0; i < index.size(); ++i) index[i] = i;
    for (std::size_t i = 0; i < kSample; ++i) {
      const auto j = i + rng.uniform_int(index.size() - i);
      std::swap(index[i], index[j]);
      const double v = population[index[i]];
      summary.sum += v;
      summary.sum_sq += v * v;
    }
    summary.sampled = kSample;
    summary.weight = static_cast<double>(summary.seen) / kSample;
    const auto result = estimate_sum({summary});
    if (result.interval(1.0).contains(exact)) ++cover1;
    if (result.interval(2.0).contains(exact)) ++cover2;
    if (result.interval(3.0).contains(exact)) ++cover3;
  }
  EXPECT_NEAR(cover1 / static_cast<double>(kTrials), 0.68, 0.07);
  EXPECT_NEAR(cover2 / static_cast<double>(kTrials), 0.95, 0.04);
  EXPECT_GE(cover3 / static_cast<double>(kTrials), 0.985);
}

}  // namespace
}  // namespace streamapprox::estimation
