// Tests for the CAIDA-like NetFlow generator (case study §6.2 substitute).
#include "workload/netflow.h"

#include <gtest/gtest.h>

#include <unordered_map>

#include "common/stats.h"

namespace streamapprox::workload {
namespace {

TEST(NetFlow, ProtocolNames) {
  EXPECT_EQ(protocol_name(Protocol::kTcp), "TCP");
  EXPECT_EQ(protocol_name(Protocol::kUdp), "UDP");
  EXPECT_EQ(protocol_name(Protocol::kIcmp), "ICMP");
}

TEST(NetFlow, SharesMatchPaperDataset) {
  // 115,472,322 TCP / 67,098,852 UDP / 2,801,002 ICMP.
  NetFlowConfig config;
  const auto records = generate_netflow(config, 200000, 17);
  std::unordered_map<sampling::StratumId, double> counts;
  for (const auto& record : records) counts[record.stratum] += 1.0;
  const double total = static_cast<double>(records.size());
  EXPECT_NEAR(counts[0] / total, 0.623, 0.01);
  EXPECT_NEAR(counts[1] / total, 0.362, 0.01);
  EXPECT_NEAR(counts[2] / total, 0.015, 0.005);
}

TEST(NetFlow, FlowSizesArePositiveAndHeavyTailed) {
  const auto records = generate_netflow(NetFlowConfig{}, 100000, 23);
  streamapprox::RunningStats tcp;
  for (const auto& record : records) {
    ASSERT_GT(record.value, 0.0);
    if (record.stratum == 0) tcp.add(record.value);
  }
  // Heavy tail: mean far above the median.
  std::vector<double> tcp_values;
  for (const auto& record : records) {
    if (record.stratum == 0) tcp_values.push_back(record.value);
  }
  const double median = streamapprox::quantile_of(tcp_values, 0.5);
  EXPECT_GT(tcp.mean(), 2.0 * median);
}

TEST(NetFlow, ProtocolsHaveDistinctSizeScales) {
  const auto records = generate_netflow(NetFlowConfig{}, 100000, 29);
  std::unordered_map<sampling::StratumId, streamapprox::RunningStats> stats;
  for (const auto& record : records) stats[record.stratum].add(record.value);
  EXPECT_GT(stats[0].mean(), stats[1].mean());  // TCP flows > UDP flows
  EXPECT_GT(stats[1].mean(), stats[2].mean());  // UDP flows > ICMP flows
}

TEST(NetFlow, SortedEventTimes) {
  const auto records = generate_netflow(NetFlowConfig{}, 20000, 31);
  for (std::size_t i = 1; i < records.size(); ++i) {
    ASSERT_LE(records[i - 1].event_time_us, records[i].event_time_us);
  }
}

TEST(NetFlow, Deterministic) {
  const auto a = generate_netflow(NetFlowConfig{}, 1000, 5);
  const auto b = generate_netflow(NetFlowConfig{}, 1000, 5);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
}

}  // namespace
}  // namespace streamapprox::workload
