// Tests for the Kafka-like broker: partition logs, offsets, keyed routing,
// sealing, multi-consumer independence.
#include "ingest/broker.h"

#include <gtest/gtest.h>

#include <thread>

namespace streamapprox::ingest {
namespace {

using engine::Record;

Record make_record(sampling::StratumId stratum, double value,
                   std::int64_t time_us = 0) {
  return Record{stratum, value, time_us};
}

TEST(PartitionLog, AppendAssignsSequentialOffsets) {
  PartitionLog log;
  EXPECT_EQ(log.append(make_record(0, 1.0)), 0u);
  EXPECT_EQ(log.append(make_record(0, 2.0)), 1u);
  EXPECT_EQ(log.end_offset(), 2u);
}

TEST(PartitionLog, ReadFromOffset) {
  PartitionLog log;
  for (int i = 0; i < 10; ++i) log.append(make_record(0, i));
  std::vector<Record> out;
  const auto next = log.read(4, 3, out);
  EXPECT_EQ(next, 7u);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].value, 4.0);
  EXPECT_EQ(out[2].value, 6.0);
}

TEST(PartitionLog, ReadPastEndReturnsNothing) {
  PartitionLog log;
  log.append(make_record(0, 1.0));
  std::vector<Record> out;
  EXPECT_EQ(log.read(5, 10, out), 5u);
  EXPECT_TRUE(out.empty());
}

TEST(PartitionLog, AppendAfterSealThrows) {
  PartitionLog log;
  log.seal();
  EXPECT_THROW(log.append(make_record(0, 1.0)), std::logic_error);
}

TEST(PartitionLog, BlockingReadWakesOnAppend) {
  PartitionLog log;
  std::vector<Record> out;
  std::thread writer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    log.append(make_record(0, 7.0));
  });
  const auto next = log.read_blocking(0, 10, out, 2000);
  writer.join();
  EXPECT_EQ(next, 1u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].value, 7.0);
}

TEST(PartitionLog, BlockingReadWakesOnSeal) {
  PartitionLog log;
  std::vector<Record> out;
  std::thread sealer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    log.seal();
  });
  const auto next = log.read_blocking(0, 10, out, 2000);
  sealer.join();
  EXPECT_EQ(next, 0u);
  EXPECT_TRUE(out.empty());
}

TEST(Broker, CreateTopicIdempotent) {
  Broker broker;
  auto& a = broker.create_topic("t", 4);
  auto& b = broker.create_topic("t", 4);
  EXPECT_EQ(&a, &b);
  EXPECT_THROW(broker.create_topic("t", 8), std::invalid_argument);
}

TEST(Broker, UnknownTopicThrows) {
  Broker broker;
  EXPECT_THROW(broker.topic("missing"), std::out_of_range);
  EXPECT_FALSE(broker.has_topic("missing"));
}

TEST(Producer, RoutesByStratum) {
  Broker broker;
  broker.create_topic("t", 4);
  Producer producer(broker, "t");
  for (int i = 0; i < 100; ++i) {
    producer.send(make_record(static_cast<sampling::StratumId>(i % 8), i));
  }
  auto& topic = broker.topic("t");
  // Stratum s always lands in partition s % 4; each partition holds records
  // from exactly two strata here.
  for (std::size_t p = 0; p < 4; ++p) {
    std::vector<Record> out;
    topic.partition(p).read(0, 1000, out);
    EXPECT_EQ(out.size(), 25u);
    for (const auto& record : out) {
      EXPECT_EQ(record.stratum % 4, p);
    }
  }
  EXPECT_EQ(topic.total_records(), 100u);
}

TEST(Consumer, ConsumesEverythingOnce) {
  Broker broker;
  broker.create_topic("t", 3);
  Producer producer(broker, "t");
  for (int i = 0; i < 1000; ++i) {
    producer.send(make_record(static_cast<sampling::StratumId>(i % 5), i));
  }
  producer.finish();

  Consumer consumer(broker, "t");
  double sum = 0.0;
  std::size_t count = 0;
  while (!consumer.exhausted()) {
    for (const auto& record : consumer.poll(64, 10)) {
      sum += record.value;
      ++count;
    }
  }
  EXPECT_EQ(count, 1000u);
  EXPECT_DOUBLE_EQ(sum, 999.0 * 1000.0 / 2.0);
  EXPECT_EQ(consumer.consumed(), 1000u);
}

TEST(Consumer, TwoConsumersAreIndependent) {
  Broker broker;
  broker.create_topic("t", 2);
  Producer producer(broker, "t");
  for (int i = 0; i < 100; ++i) producer.send(make_record(0, i));
  producer.finish();

  Consumer a(broker, "t");
  Consumer b(broker, "t");
  std::size_t count_a = 0;
  std::size_t count_b = 0;
  while (!a.exhausted()) count_a += a.poll(32, 10).size();
  while (!b.exhausted()) count_b += b.poll(32, 10).size();
  EXPECT_EQ(count_a, 100u);
  EXPECT_EQ(count_b, 100u);  // replayable log, not a destructive queue
}

TEST(Consumer, ConcurrentProduceConsume) {
  Broker broker;
  broker.create_topic("t", 4);
  constexpr int kCount = 20000;
  std::thread producer_thread([&] {
    Producer producer(broker, "t");
    for (int i = 0; i < kCount; ++i) producer.send(make_record(0, 1.0));
    producer.finish();
  });
  Consumer consumer(broker, "t");
  std::size_t received = 0;
  while (!consumer.exhausted()) {
    received += consumer.poll(256, 50).size();
  }
  producer_thread.join();
  EXPECT_EQ(received, static_cast<std::size_t>(kCount));
}

// ---- Partition-aware consumers / consumer groups (ingest-layer sharding).

TEST(Consumer, AssignedSubsetReadsOnlyItsPartitions) {
  Broker broker;
  broker.create_topic("t", 4);
  Producer producer(broker, "t");
  // Strata 0..3 route to partitions 0..3 (stratum % 4).
  for (int i = 0; i < 400; ++i) {
    producer.send(make_record(static_cast<sampling::StratumId>(i % 4), i));
  }
  producer.finish();

  Consumer consumer(broker, "t", {1, 3});
  std::size_t count = 0;
  while (!consumer.exhausted()) {
    for (const auto& record : consumer.poll(64, 10)) {
      EXPECT_TRUE(record.stratum == 1 || record.stratum == 3);
      ++count;
    }
  }
  EXPECT_EQ(count, 200u);
  EXPECT_EQ(consumer.assignment(), (std::vector<std::size_t>{1, 3}));
}

TEST(Consumer, AssignmentValidation) {
  Broker broker;
  broker.create_topic("t", 2);
  EXPECT_THROW(Consumer(broker, "t", {2}), std::out_of_range);
  EXPECT_THROW(Consumer(broker, "t", {0, 0}), std::invalid_argument);
}

TEST(Consumer, EmptyAssignmentIsImmediatelyExhausted) {
  Broker broker;
  broker.create_topic("t", 2);
  Consumer consumer(broker, "t", std::vector<std::size_t>{});
  EXPECT_TRUE(consumer.exhausted());
  EXPECT_TRUE(consumer.poll(16, 0).empty());
}

TEST(Consumer, PartitionExhaustedTracksPerPartitionProgress) {
  Broker broker;
  auto& topic = broker.create_topic("t", 2);
  topic.partition(0).append(make_record(0, 1.0));
  topic.partition(0).seal();
  // Partition 1 stays open.
  Consumer consumer(broker, "t", {0, 1});
  while (!consumer.partition_exhausted(0)) consumer.poll(16, 0);
  EXPECT_TRUE(consumer.partition_exhausted(0));
  EXPECT_FALSE(consumer.partition_exhausted(1));
  EXPECT_FALSE(consumer.exhausted());
  topic.partition(1).seal();
  EXPECT_TRUE(consumer.partition_exhausted(1));
  EXPECT_TRUE(consumer.exhausted());
}

TEST(ConsumerGroup, RoundRobinAssignmentCoversAllPartitionsDisjointly) {
  const auto assignments = ConsumerGroup::assign(10, 3);
  ASSERT_EQ(assignments.size(), 3u);
  std::vector<bool> covered(10, false);
  for (const auto& assignment : assignments) {
    for (const std::size_t p : assignment) {
      EXPECT_FALSE(covered[p]) << "partition assigned twice";
      covered[p] = true;
    }
  }
  for (const bool c : covered) EXPECT_TRUE(c);
  EXPECT_EQ(assignments[0], (std::vector<std::size_t>{0, 3, 6, 9}));
  EXPECT_EQ(assignments[1], (std::vector<std::size_t>{1, 4, 7}));
}

TEST(ConsumerGroup, MembersPartitionTheStream) {
  Broker broker;
  broker.create_topic("t", 5);
  Producer producer(broker, "t");
  for (int i = 0; i < 1000; ++i) {
    producer.send(make_record(static_cast<sampling::StratumId>(i % 5), i));
  }
  producer.finish();

  ConsumerGroup group(broker, "t", 2);
  ASSERT_EQ(group.size(), 2u);
  std::size_t total = 0;
  for (std::size_t m = 0; m < group.size(); ++m) {
    auto& member = group.member(m);
    while (!member.exhausted()) total += member.poll(64, 10).size();
  }
  EXPECT_EQ(total, 1000u);  // disjoint cover: every record exactly once
}

TEST(ConsumerGroup, MoreMembersThanPartitions) {
  Broker broker;
  broker.create_topic("t", 2);
  Producer producer(broker, "t");
  for (int i = 0; i < 100; ++i) producer.send(make_record(0, i));
  producer.finish();
  ConsumerGroup group(broker, "t", 4);
  std::size_t total = 0;
  for (std::size_t m = 0; m < group.size(); ++m) {
    auto& member = group.member(m);
    while (!member.exhausted()) total += member.poll(64, 10).size();
  }
  EXPECT_EQ(total, 100u);
}

TEST(PartitionLog, BatchOutReadFillsCallerBatch) {
  PartitionLog log;
  for (int i = 0; i < 10; ++i) log.append(make_record(0, i, i * 100));
  engine::RecordBatch batch;
  const Offset next = log.read(2, 4, batch);
  EXPECT_EQ(next, 6u);
  ASSERT_EQ(batch.size(), 4u);
  EXPECT_DOUBLE_EQ(batch.records.front().value, 2.0);
}

TEST(Consumer, ReuseBufferPollIsClearedAndFilled) {
  Broker broker;
  broker.create_topic("t", 2);
  Producer producer(broker, "t");
  for (int i = 0; i < 500; ++i) {
    producer.send(make_record(static_cast<sampling::StratumId>(i % 3), i));
  }
  producer.finish();

  Consumer consumer(broker, "t");
  std::vector<Record> buffer;
  buffer.push_back(make_record(9, -1.0));  // stale content must be cleared
  std::size_t total = 0;
  while (!consumer.exhausted()) {
    const std::size_t fetched = consumer.poll(buffer, 64, 10);
    EXPECT_EQ(fetched, buffer.size());
    for (const auto& record : buffer) EXPECT_LT(record.stratum, 3u);
    total += fetched;
  }
  EXPECT_EQ(total, 500u);
}

TEST(Consumer, BatchOutPollStampsSingleSourcePartition) {
  Broker broker;
  broker.create_topic("t", 3);
  Producer producer(broker, "t");
  for (int i = 0; i < 90; ++i) {
    producer.send(make_record(static_cast<sampling::StratumId>(i % 3), i));
  }
  producer.finish();

  // Single-partition assignment: the batch is tagged with its source.
  Consumer single(broker, "t", {1});
  engine::RecordBatch batch;
  single.poll(batch, 64, 10);
  EXPECT_EQ(batch.source_partition, 1u);
  EXPECT_FALSE(batch.empty());
  for (const auto& record : batch.records) EXPECT_EQ(record.stratum % 3, 1u);

  // Multi-partition assignment: mixed sources.
  Consumer all(broker, "t");
  all.poll(batch, 64, 10);
  EXPECT_EQ(batch.source_partition, engine::RecordBatch::kMixedSources);
}

}  // namespace
}  // namespace streamapprox::ingest
