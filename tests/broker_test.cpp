// Tests for the Kafka-like broker: partition logs, offsets, keyed routing,
// sealing, multi-consumer independence.
#include "ingest/broker.h"

#include <gtest/gtest.h>

#include <thread>

namespace streamapprox::ingest {
namespace {

using engine::Record;

Record make_record(sampling::StratumId stratum, double value,
                   std::int64_t time_us = 0) {
  return Record{stratum, value, time_us};
}

TEST(PartitionLog, AppendAssignsSequentialOffsets) {
  PartitionLog log;
  EXPECT_EQ(log.append(make_record(0, 1.0)), 0u);
  EXPECT_EQ(log.append(make_record(0, 2.0)), 1u);
  EXPECT_EQ(log.end_offset(), 2u);
}

TEST(PartitionLog, ReadFromOffset) {
  PartitionLog log;
  for (int i = 0; i < 10; ++i) log.append(make_record(0, i));
  std::vector<Record> out;
  const auto next = log.read(4, 3, out);
  EXPECT_EQ(next, 7u);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].value, 4.0);
  EXPECT_EQ(out[2].value, 6.0);
}

TEST(PartitionLog, ReadPastEndReturnsNothing) {
  PartitionLog log;
  log.append(make_record(0, 1.0));
  std::vector<Record> out;
  EXPECT_EQ(log.read(5, 10, out), 5u);
  EXPECT_TRUE(out.empty());
}

TEST(PartitionLog, AppendAfterSealThrows) {
  PartitionLog log;
  log.seal();
  EXPECT_THROW(log.append(make_record(0, 1.0)), std::logic_error);
}

TEST(PartitionLog, BlockingReadWakesOnAppend) {
  PartitionLog log;
  std::vector<Record> out;
  std::thread writer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    log.append(make_record(0, 7.0));
  });
  const auto next = log.read_blocking(0, 10, out, 2000);
  writer.join();
  EXPECT_EQ(next, 1u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].value, 7.0);
}

TEST(PartitionLog, BlockingReadWakesOnSeal) {
  PartitionLog log;
  std::vector<Record> out;
  std::thread sealer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    log.seal();
  });
  const auto next = log.read_blocking(0, 10, out, 2000);
  sealer.join();
  EXPECT_EQ(next, 0u);
  EXPECT_TRUE(out.empty());
}

TEST(Broker, CreateTopicIdempotent) {
  Broker broker;
  auto& a = broker.create_topic("t", 4);
  auto& b = broker.create_topic("t", 4);
  EXPECT_EQ(&a, &b);
  EXPECT_THROW(broker.create_topic("t", 8), std::invalid_argument);
}

TEST(Broker, UnknownTopicThrows) {
  Broker broker;
  EXPECT_THROW(broker.topic("missing"), std::out_of_range);
  EXPECT_FALSE(broker.has_topic("missing"));
}

TEST(Producer, RoutesByStratum) {
  Broker broker;
  broker.create_topic("t", 4);
  Producer producer(broker, "t");
  for (int i = 0; i < 100; ++i) {
    producer.send(make_record(static_cast<sampling::StratumId>(i % 8), i));
  }
  auto& topic = broker.topic("t");
  // Stratum s always lands in partition s % 4; each partition holds records
  // from exactly two strata here.
  for (std::size_t p = 0; p < 4; ++p) {
    std::vector<Record> out;
    topic.partition(p).read(0, 1000, out);
    EXPECT_EQ(out.size(), 25u);
    for (const auto& record : out) {
      EXPECT_EQ(record.stratum % 4, p);
    }
  }
  EXPECT_EQ(topic.total_records(), 100u);
}

TEST(Consumer, ConsumesEverythingOnce) {
  Broker broker;
  broker.create_topic("t", 3);
  Producer producer(broker, "t");
  for (int i = 0; i < 1000; ++i) {
    producer.send(make_record(static_cast<sampling::StratumId>(i % 5), i));
  }
  producer.finish();

  Consumer consumer(broker, "t");
  double sum = 0.0;
  std::size_t count = 0;
  while (!consumer.exhausted()) {
    for (const auto& record : consumer.poll(64, 10)) {
      sum += record.value;
      ++count;
    }
  }
  EXPECT_EQ(count, 1000u);
  EXPECT_DOUBLE_EQ(sum, 999.0 * 1000.0 / 2.0);
  EXPECT_EQ(consumer.consumed(), 1000u);
}

TEST(Consumer, TwoConsumersAreIndependent) {
  Broker broker;
  broker.create_topic("t", 2);
  Producer producer(broker, "t");
  for (int i = 0; i < 100; ++i) producer.send(make_record(0, i));
  producer.finish();

  Consumer a(broker, "t");
  Consumer b(broker, "t");
  std::size_t count_a = 0;
  std::size_t count_b = 0;
  while (!a.exhausted()) count_a += a.poll(32, 10).size();
  while (!b.exhausted()) count_b += b.poll(32, 10).size();
  EXPECT_EQ(count_a, 100u);
  EXPECT_EQ(count_b, 100u);  // replayable log, not a destructive queue
}

TEST(Consumer, ConcurrentProduceConsume) {
  Broker broker;
  broker.create_topic("t", 4);
  constexpr int kCount = 20000;
  std::thread producer_thread([&] {
    Producer producer(broker, "t");
    for (int i = 0; i < kCount; ++i) producer.send(make_record(0, 1.0));
    producer.finish();
  });
  Consumer consumer(broker, "t");
  std::size_t received = 0;
  while (!consumer.exhausted()) {
    received += consumer.poll(256, 50).size();
  }
  producer_thread.join();
  EXPECT_EQ(received, static_cast<std::size_t>(kCount));
}

}  // namespace
}  // namespace streamapprox::ingest
