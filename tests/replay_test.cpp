// Tests for the replay tool: completeness, sealing, rate control.
#include "ingest/replay.h"

#include <gtest/gtest.h>

#include "common/clock.h"

namespace streamapprox::ingest {
namespace {

using engine::Record;

std::vector<Record> make_records(std::size_t n) {
  std::vector<Record> records;
  records.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    records.push_back(Record{static_cast<sampling::StratumId>(i % 3),
                             static_cast<double>(i),
                             static_cast<std::int64_t>(i)});
  }
  return records;
}

TEST(ReplayTool, DeliversEverythingAndSeals) {
  Broker broker;
  broker.create_topic("replay", 3);
  ReplayConfig config;
  config.messages_per_sec = 0.0;  // saturation
  config.items_per_message = 10;
  ReplayTool replay(broker, "replay", make_records(1000), config);
  replay.wait();
  EXPECT_EQ(broker.topic("replay").total_records(), 1000u);
  EXPECT_EQ(replay.messages_sent(), 100u);

  Consumer consumer(broker, "replay");
  std::size_t count = 0;
  while (!consumer.exhausted()) count += consumer.poll(128, 10).size();
  EXPECT_EQ(count, 1000u);
}

TEST(ReplayTool, PartialLastMessage) {
  Broker broker;
  broker.create_topic("replay", 1);
  ReplayConfig config;
  config.items_per_message = 64;
  ReplayTool replay(broker, "replay", make_records(100), config);
  replay.wait();
  EXPECT_EQ(replay.messages_sent(), 2u);  // 64 + 36
  EXPECT_EQ(broker.topic("replay").total_records(), 100u);
}

TEST(ReplayTool, RateControlPacesDelivery) {
  Broker broker;
  broker.create_topic("replay", 1);
  ReplayConfig config;
  config.messages_per_sec = 100.0;  // 10 messages => ~0.1 s
  config.items_per_message = 10;
  streamapprox::Stopwatch watch;
  ReplayTool replay(broker, "replay", make_records(100), config);
  replay.wait();
  // The bucket starts full (burst = 1 second worth), so the first 100
  // messages may pass immediately; what we require is that it does not take
  // absurdly long and that everything arrives.
  EXPECT_LT(watch.seconds(), 5.0);
  EXPECT_EQ(broker.topic("replay").total_records(), 100u);
}

TEST(ReplayTool, SlowRateIsActuallyPaced) {
  Broker broker;
  broker.create_topic("replay", 1);
  ReplayConfig config;
  config.messages_per_sec = 50.0;
  config.items_per_message = 1;
  // burst = 50 tokens, 60 messages total => at least ~10/50 s of pacing.
  streamapprox::Stopwatch watch;
  ReplayTool replay(broker, "replay", make_records(60), config);
  replay.wait();
  EXPECT_GT(watch.seconds(), 0.1);
  EXPECT_EQ(broker.topic("replay").total_records(), 60u);
}

TEST(ReplayTool, ZeroItemsPerMessageNormalised) {
  Broker broker;
  broker.create_topic("replay", 1);
  ReplayConfig config;
  config.items_per_message = 0;  // coerced to 1
  ReplayTool replay(broker, "replay", make_records(5), config);
  replay.wait();
  EXPECT_EQ(replay.messages_sent(), 5u);
}

TEST(TokenBucket, SaturationModeNeverBlocks) {
  streamapprox::TokenBucket bucket(0.0);
  streamapprox::Stopwatch watch;
  for (int i = 0; i < 100000; ++i) bucket.acquire();
  EXPECT_LT(watch.seconds(), 0.5);
}

TEST(TokenBucket, TryAcquireHonoursBalance) {
  streamapprox::TokenBucket bucket(10.0, 2.0);  // 2-token burst
  EXPECT_TRUE(bucket.try_acquire(1.0));
  EXPECT_TRUE(bucket.try_acquire(1.0));
  EXPECT_FALSE(bucket.try_acquire(1.0));  // drained; refill is ~instant-free
}

}  // namespace
}  // namespace streamapprox::ingest
