// IdleBackoff: the exchange's idle pause — spin, then yield, then a capped
// doubling sleep. Stage transitions and the sleep schedule are asserted via
// next_sleep_us() so the tests are timing-free.
#include "common/backoff.h"

#include <gtest/gtest.h>

namespace streamapprox {
namespace {

TEST(IdleBackoff, EscalatesSpinYieldThenCappedDoublingSleep) {
  IdleBackoff::Config config;
  config.spins = 4;
  config.yields = 2;
  config.min_sleep_us = 8;
  config.max_sleep_us = 32;
  IdleBackoff backoff(config);

  // Spin + yield stages: no sleeping yet.
  for (std::uint32_t i = 0; i < config.spins + config.yields; ++i) {
    EXPECT_EQ(backoff.next_sleep_us(), 0u) << "pause " << i;
    backoff.pause();
  }
  // Sleep stage: starts at the floor, doubles, saturates at the cap.
  EXPECT_EQ(backoff.next_sleep_us(), 8u);
  backoff.pause();
  EXPECT_EQ(backoff.next_sleep_us(), 16u);
  backoff.pause();
  EXPECT_EQ(backoff.next_sleep_us(), 32u);
  backoff.pause();
  EXPECT_EQ(backoff.next_sleep_us(), 32u) << "sleep must stay capped";
}

TEST(IdleBackoff, ResetReturnsToSpinStageAndSleepFloor) {
  IdleBackoff::Config config;
  config.spins = 1;
  config.yields = 1;
  config.min_sleep_us = 4;
  config.max_sleep_us = 64;
  IdleBackoff backoff(config);

  // Escalate all the way to the cap.
  for (int i = 0; i < 8; ++i) backoff.pause();
  EXPECT_EQ(backoff.next_sleep_us(), 64u);

  // A round with data resets everything: spin again, and the next sleep
  // starts back at the floor instead of the cap.
  backoff.reset();
  EXPECT_EQ(backoff.next_sleep_us(), 0u);
  backoff.pause();  // spin
  backoff.pause();  // yield
  EXPECT_EQ(backoff.next_sleep_us(), 4u);
}

TEST(IdleBackoff, DefaultConfigStartsNonSleeping) {
  IdleBackoff backoff;
  EXPECT_EQ(backoff.next_sleep_us(), 0u);
}

TEST(IdleBackoff, ZeroSpinZeroYieldSleepsImmediately) {
  IdleBackoff::Config config;
  config.spins = 0;
  config.yields = 0;
  config.min_sleep_us = 2;
  config.max_sleep_us = 8;
  IdleBackoff backoff(config);
  EXPECT_EQ(backoff.next_sleep_us(), 2u);
  backoff.pause();
  EXPECT_EQ(backoff.next_sleep_us(), 4u);
}

}  // namespace
}  // namespace streamapprox
