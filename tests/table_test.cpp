// Tests for the ASCII table renderer used by the benchmark harness.
#include "common/table.h"

#include <gtest/gtest.h>

namespace streamapprox {
namespace {

TEST(Table, RendersTitleHeadersAndRows) {
  Table table("Throughput", {"System", "items/s"});
  table.add_row({"Native Spark", "123"});
  table.add_row({"StreamApprox", "456"});
  const auto text = table.render();
  EXPECT_NE(text.find("Throughput"), std::string::npos);
  EXPECT_NE(text.find("System"), std::string::npos);
  EXPECT_NE(text.find("Native Spark"), std::string::npos);
  EXPECT_NE(text.find("456"), std::string::npos);
}

TEST(Table, AlignsColumns) {
  Table table("T", {"a", "b"});
  table.add_row({"xxxxxxx", "1"});
  table.add_row({"y", "2"});
  const auto text = table.render();
  // Every data row has the same length when columns are padded.
  std::vector<std::string> lines;
  std::string line;
  for (char c : text) {
    if (c == '\n') {
      if (!line.empty() && line.front() == '|') lines.push_back(line);
      line.clear();
    } else {
      line += c;
    }
  }
  ASSERT_GE(lines.size(), 3u);
  for (const auto& l : lines) EXPECT_EQ(l.size(), lines.front().size());
}

TEST(Table, HandlesShortRows) {
  Table table("T", {"a", "b", "c"});
  table.add_row({"only-one"});
  const auto text = table.render();
  EXPECT_NE(text.find("only-one"), std::string::npos);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(1.0, 0), "1");
  EXPECT_EQ(Table::num(1234.5, 1), "1234.5");
}

}  // namespace
}  // namespace streamapprox
