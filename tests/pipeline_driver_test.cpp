// Tests for the reusable slide-lifecycle driver: cold start away from slide
// zero, sequential offer/advance/finish, the external sample/cells paths and
// their ordering contract, and budget re-tuning.
#include "core/pipeline_driver.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "estimation/estimators.h"

namespace streamapprox::core {
namespace {

using engine::Record;

PipelineDriverConfig small_window_config() {
  PipelineDriverConfig config;
  config.window = {1'000'000, 500'000};
  config.query = {Aggregation::kMean, false};
  return config;
}

TEST(PipelineDriver, ColdStartPinsFirstObservedSlide) {
  // A stream whose first event time is huge (taxi epoch microseconds) must
  // NOT sweep through millions of empty slides from zero.
  const std::int64_t epoch_us = 1'400'000'000'000'000;
  std::vector<WindowOutput> outputs;
  PipelineDriver driver(small_window_config(),
                        [&](const WindowOutput& o) { outputs.push_back(o); });
  EXPECT_FALSE(driver.next_to_close().has_value());

  for (int i = 0; i < 3000; ++i) {
    driver.offer(Record{static_cast<sampling::StratumId>(i % 3),
                        1.0 + i % 7, epoch_us + i * 1000});
  }
  ASSERT_TRUE(driver.next_to_close().has_value());
  EXPECT_EQ(*driver.next_to_close(), epoch_us / 500'000);

  driver.advance(epoch_us + 2'999'000);
  driver.finish();
  ASSERT_GE(outputs.size(), 1u);
  // Window timestamps are absolute despite the cold start.
  EXPECT_GE(outputs.front().estimate.window_end_us, epoch_us);
}

TEST(PipelineDriver, SequentialAdvanceClosesBehindWatermark) {
  std::vector<WindowOutput> outputs;
  PipelineDriver driver(small_window_config(),
                        [&](const WindowOutput& o) { outputs.push_back(o); });
  // The caller owns the watermark: a lagging partition keeps it low.
  driver.offer(Record{1, 1.0, 10'000});  // lagging stratum, clock 10 ms
  for (int i = 0; i < 2000; ++i) {
    driver.offer(Record{0, 1.0, i * 1000});
  }
  // Watermark = min(10'000, 1'999'000): no slide end passed yet.
  EXPECT_EQ(driver.advance(10'000), 0u);
  for (int i = 0; i < 2000; ++i) {
    driver.offer(Record{1, 1.0, i * 1000});
  }
  // Both clocks at 1'999'000: slides 0..2 close.
  EXPECT_EQ(driver.advance(1'999'000), 3u);
  driver.finish();
  ASSERT_GE(outputs.size(), 3u);
  std::uint64_t seen = 0;
  for (const auto& output : outputs) seen = std::max(seen, output.records_seen);
  EXPECT_GT(seen, 0u);
}

TEST(PipelineDriver, LateRecordsAreDroppedAfterClose) {
  PipelineDriver driver(small_window_config(), [](const WindowOutput&) {});
  for (int i = 0; i < 5000; ++i) {
    driver.offer(Record{0, 1.0, i * 1000});
    driver.offer(Record{1, 1.0, i * 1000});
  }
  ASSERT_GT(driver.advance(4'999'000), 0u);
  // A record for slide 0 is now behind the watermark.
  EXPECT_FALSE(driver.offer(Record{0, 1.0, 1000}));
  EXPECT_TRUE(driver.offer(Record{0, 1.0, 4'999'000}));
}

TEST(PipelineDriver, OfferBatchMatchesPerRecordOffer) {
  // The batched hot path (one slide lookup per run of same-slide records)
  // is the same lifecycle: identical seeds must yield identical windows.
  std::vector<WindowOutput> by_record;
  std::vector<WindowOutput> by_batch;
  PipelineDriver a(small_window_config(),
                   [&](const WindowOutput& o) { by_record.push_back(o); });
  PipelineDriver b(small_window_config(),
                   [&](const WindowOutput& o) { by_batch.push_back(o); });

  std::vector<Record> records;
  for (int i = 0; i < 6000; ++i) {
    records.push_back(Record{static_cast<sampling::StratumId>(i % 3),
                             1.0 + i % 7, i * 1000});
  }
  for (const auto& record : records) a.offer(record);
  // Feed b the same stream in chunks, as the poll loop would.
  for (std::size_t i = 0; i < records.size(); i += 512) {
    const std::size_t n = std::min<std::size_t>(512, records.size() - i);
    EXPECT_EQ(b.offer_batch(records.data() + i, n), n);
  }
  a.advance(5'999'000);
  b.advance(5'999'000);
  a.finish();
  b.finish();

  ASSERT_GT(by_record.size(), 3u);
  ASSERT_EQ(by_record.size(), by_batch.size());
  for (std::size_t i = 0; i < by_record.size(); ++i) {
    EXPECT_EQ(by_record[i].records_seen, by_batch[i].records_seen);
    EXPECT_EQ(by_record[i].records_sampled, by_batch[i].records_sampled);
    EXPECT_DOUBLE_EQ(by_record[i].estimate.overall.estimate,
                     by_batch[i].estimate.overall.estimate);
  }
}

TEST(PipelineDriver, OfferBatchDropsLateRuns) {
  PipelineDriver driver(small_window_config(), [](const WindowOutput&) {});
  std::vector<Record> warm;
  for (int i = 0; i < 5000; ++i) warm.push_back(Record{0, 1.0, i * 1000});
  EXPECT_EQ(driver.offer_batch(warm), warm.size());
  ASSERT_GT(driver.advance(4'999'000), 0u);

  // A batch mixing a late run (slide 0, now closed) with a live run: only
  // the live records are accepted.
  std::vector<Record> mixed = {Record{0, 1.0, 1000},
                               Record{0, 1.0, 2000},
                               Record{0, 1.0, 4'999'000},
                               Record{0, 1.0, 4'999'500}};
  EXPECT_EQ(driver.offer_batch(mixed), 2u);
}

TEST(PipelineDriver, CellsPathAssemblesWindows) {
  auto config = small_window_config();
  config.evaluate = false;
  std::vector<engine::WindowResult> windows;
  PipelineDriver driver(
      std::move(config), nullptr,
      [&](const engine::WindowResult& w) { windows.push_back(w); });

  for (std::int64_t slide = 0; slide < 4; ++slide) {
    estimation::StratumSummary cell;
    cell.stratum = 0;
    cell.seen = 100;
    cell.sampled = 10;
    cell.sum = 10.0;
    cell.sum_sq = 10.0;
    cell.weight = 10.0;
    driver.close_slide_cells(slide, {cell});
  }
  // 2 slides per window -> windows end at slides 1, 2, 3.
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_EQ(windows[0].window_end_us, 1'000'000);
  EXPECT_EQ(windows[0].cells.size(), 2u);
  EXPECT_EQ(windows[2].window_end_us, 2'000'000);
}

TEST(PipelineDriver, ExternalPathPadsGapsWithEmptySlides) {
  auto config = small_window_config();
  config.evaluate = false;
  std::vector<engine::WindowResult> windows;
  PipelineDriver driver(
      std::move(config), nullptr,
      [&](const engine::WindowResult& w) { windows.push_back(w); });

  estimation::StratumSummary cell;
  cell.stratum = 3;
  cell.seen = 5;
  cell.sampled = 5;
  driver.close_slide_cells(10, {cell});
  driver.close_slide_cells(14, {cell});  // slides 11..13 padded empty
  ASSERT_EQ(windows.size(), 4u);         // ends at slides 11, 12, 13, 14
  EXPECT_EQ(windows.front().window_end_us, 12 * 500'000);
  EXPECT_TRUE(windows[1].cells.empty());  // slides 12+13 both empty
  EXPECT_EQ(windows.back().cells.size(), 1u);
}

TEST(PipelineDriver, ExternalPathRejectsOutOfOrderSlides) {
  auto config = small_window_config();
  config.evaluate = false;
  PipelineDriver driver(std::move(config), nullptr, nullptr);
  driver.close_slide_cells(5, {});
  EXPECT_THROW(driver.close_slide_cells(4, {}), std::logic_error);
}

TEST(PipelineDriver, SamplePathMatchesSequentialSeenCounts) {
  // The same records through the driver-owned samplers and through an
  // externally driven sampler must report identical per-window seen counts.
  std::vector<Record> records;
  for (int i = 0; i < 20000; ++i) {
    records.push_back(Record{static_cast<sampling::StratumId>(i % 3),
                             double(i % 11), i * 250});
  }

  std::vector<WindowOutput> sequential;
  {
    PipelineDriver driver(small_window_config(), [&](const WindowOutput& o) {
      sequential.push_back(o);
    });
    for (const auto& r : records) driver.offer(r);
    driver.advance(records.back().event_time_us);
    driver.finish();
  }

  std::vector<WindowOutput> external;
  {
    PipelineDriver driver(small_window_config(), [&](const WindowOutput& o) {
      external.push_back(o);
    });
    std::map<std::int64_t, PipelineDriver::Sampler> samplers;
    for (const auto& r : records) {
      const std::int64_t slide = r.event_time_us / 500'000;
      auto it = samplers.find(slide);
      if (it == samplers.end()) {
        it = samplers
                 .try_emplace(slide, driver.slide_sampler_config(slide),
                              engine::RecordStratum{})
                 .first;
      }
      it->second.offer(r);
    }
    for (auto& [slide, sampler] : samplers) {
      driver.close_slide_sample(slide, sampler.take());
    }
  }

  ASSERT_EQ(sequential.size(), external.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(sequential[i].records_seen, external[i].records_seen);
    EXPECT_EQ(sequential[i].estimate.window_end_us,
              external[i].estimate.window_end_us);
  }
}

TEST(PipelineDriver, FractionBudgetRetunesFromArrivals) {
  auto config = small_window_config();
  config.budget = estimation::QueryBudget::fraction(0.2);
  PipelineDriver driver(std::move(config), [](const WindowOutput&) {});
  const std::size_t before = driver.current_budget();
  for (int i = 0; i < 50000; ++i) {
    driver.offer(Record{static_cast<sampling::StratumId>(i % 3), 1.0,
                        i * 100});
  }
  driver.advance(49'999 * 100);
  driver.finish();
  // 0.2 of ~5000 records/slide: the budget moved away from the initial
  // guess toward the cost function's answer.
  EXPECT_NE(driver.current_budget(), before);
  EXPECT_GT(driver.current_budget(), 0u);
}

std::vector<Record> mixed_stream(int count) {
  std::vector<Record> records;
  records.reserve(count);
  for (int i = 0; i < count; ++i) {
    records.push_back(Record{static_cast<sampling::StratumId>(i % 3),
                             1.0 + i % 7, i * 250});
  }
  return records;
}

std::vector<WindowOutput> run_driver(PipelineDriverConfig config,
                                     const std::vector<Record>& records) {
  std::vector<WindowOutput> outputs;
  PipelineDriver driver(std::move(config),
                        [&](const WindowOutput& o) { outputs.push_back(o); });
  driver.offer_batch(records);
  driver.advance(records.back().event_time_us);
  driver.finish();
  return outputs;
}

void expect_estimates_bit_identical(const WindowEstimate& a,
                                    const WindowEstimate& b) {
  EXPECT_EQ(a.window_start_us, b.window_start_us);
  EXPECT_EQ(a.window_end_us, b.window_end_us);
  EXPECT_EQ(a.overall.estimate, b.overall.estimate);
  EXPECT_EQ(a.overall.variance, b.overall.variance);
  EXPECT_EQ(a.overall.population, b.overall.population);
  EXPECT_EQ(a.overall.sample_size, b.overall.sample_size);
  ASSERT_EQ(a.groups.size(), b.groups.size());
  for (std::size_t g = 0; g < a.groups.size(); ++g) {
    EXPECT_EQ(a.groups[g].first, b.groups[g].first);
    EXPECT_EQ(a.groups[g].second.estimate, b.groups[g].second.estimate);
    EXPECT_EQ(a.groups[g].second.variance, b.groups[g].second.variance);
  }
}

TEST(PipelineDriver, RegistrySingleQueryBitIdenticalToLegacy) {
  // Backward compatibility (satellite acceptance): a seeded run whose single
  // query goes through the registry must produce bit-identical WindowOutputs
  // to the legacy single-QuerySpec config — same sampling, same estimates,
  // same feedback-driven budget trajectory, same histogram.
  const auto records = mixed_stream(30000);

  auto legacy = small_window_config();
  legacy.query = {Aggregation::kSum, /*per_stratum=*/true};
  legacy.histogram = estimation::HistogramSpec{0.0, 8.0, 16};
  legacy.budget = estimation::QueryBudget::relative_error(0.01);

  auto registry = small_window_config();
  registry.budget = estimation::QueryBudget::relative_error(0.01);
  registry.queries.aggregate("sum", {Aggregation::kSum, true});
  registry.queries.histogram("hist", {0.0, 8.0, 16});

  const auto a = run_driver(std::move(legacy), records);
  const auto b = run_driver(std::move(registry), records);

  ASSERT_GT(a.size(), 3u);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].records_seen, b[i].records_seen);
    EXPECT_EQ(a[i].records_sampled, b[i].records_sampled);
    EXPECT_EQ(a[i].budget_in_force, b[i].budget_in_force);
    expect_estimates_bit_identical(a[i].estimate, b[i].estimate);
    ASSERT_TRUE(a[i].histogram.has_value());
    ASSERT_TRUE(b[i].histogram.has_value());
    ASSERT_EQ(a[i].histogram->bucket_count(), b[i].histogram->bucket_count());
    for (std::size_t k = 0; k < a[i].histogram->bucket_count(); ++k) {
      EXPECT_EQ(a[i].histogram->bucket(k), b[i].histogram->bucket(k));
    }
    // The registry view carries the same results: query 0 is the aggregate,
    // query 1 the histogram.
    ASSERT_EQ(b[i].queries.size(), 2u);
    expect_estimates_bit_identical(b[i].queries[0].estimate, b[i].estimate);
    EXPECT_TRUE(b[i].queries[1].histogram.has_value());
  }
}

TEST(PipelineDriver, MultiQuerySamplesTheStreamOnce) {
  // Three concurrent queries (per-stratum SUM, overall MEAN, HISTOGRAM) over
  // one driver: the stream is sampled once, so per-window seen/sampled
  // counts — and each query's estimate — are identical to the three
  // corresponding single-query runs with the same seed.
  const auto records = mixed_stream(30000);

  auto multi = small_window_config();
  multi.queries.aggregate("sum/stratum", {Aggregation::kSum, true});
  multi.queries.aggregate("mean", {Aggregation::kMean, false});
  multi.queries.histogram("hist", {0.0, 8.0, 16});
  const auto combined = run_driver(std::move(multi), records);

  auto single_sum = small_window_config();
  single_sum.queries.aggregate("sum/stratum", {Aggregation::kSum, true});
  auto single_mean = small_window_config();
  single_mean.queries.aggregate("mean", {Aggregation::kMean, false});
  auto single_hist = small_window_config();
  single_hist.queries.histogram("hist", {0.0, 8.0, 16});
  const std::vector<std::vector<WindowOutput>> singles = {
      run_driver(std::move(single_sum), records),
      run_driver(std::move(single_mean), records),
      run_driver(std::move(single_hist), records),
  };

  ASSERT_GT(combined.size(), 3u);
  for (const auto& outputs : singles) {
    ASSERT_EQ(combined.size(), outputs.size());
  }
  for (std::size_t i = 0; i < combined.size(); ++i) {
    ASSERT_EQ(combined[i].queries.size(), 3u);
    for (std::size_t q = 0; q < 3; ++q) {
      const auto& single = singles[q][i];
      // Sampling effort is per window, not per query: every run reports the
      // same counts because the stream was ingested and sampled ONCE.
      EXPECT_EQ(combined[i].records_seen, single.records_seen)
          << "window " << i << " query " << q;
      EXPECT_EQ(combined[i].records_sampled, single.records_sampled)
          << "window " << i << " query " << q;
      expect_estimates_bit_identical(combined[i].queries[q].estimate,
                                     single.queries.front().estimate);
    }
  }
}

TEST(PipelineDriver, PerQueryConfidenceCoexists) {
  // Per-query z (satellite): a 95%-confidence and a 99.7%-confidence copy of
  // the same MEAN query report bounds in exact z ratio within one window.
  auto config = small_window_config();
  config.queries.aggregate("mean95", {Aggregation::kMean, false},
                           /*z=*/2.0);
  config.queries.aggregate("mean3sigma", {Aggregation::kMean, false},
                           /*z=*/3.0);
  const auto outputs = run_driver(std::move(config), mixed_stream(20000));

  ASSERT_GT(outputs.size(), 1u);
  for (const auto& output : outputs) {
    ASSERT_EQ(output.queries.size(), 2u);
    EXPECT_EQ(output.queries[0].z, 2.0);
    EXPECT_EQ(output.queries[1].z, 3.0);
    // Same estimate, same variance — only the confidence differs.
    EXPECT_EQ(output.queries[0].estimate.overall.estimate,
              output.queries[1].estimate.overall.estimate);
    if (output.queries[0].observed_relative_bound > 0.0) {
      EXPECT_DOUBLE_EQ(output.queries[1].observed_relative_bound,
                       1.5 * output.queries[0].observed_relative_bound);
    }
  }
}

TEST(PipelineDriver, StrictestAccuracyTargetDrivesBudget) {
  // Two targeted queries: the stricter (smaller) target must demand at least
  // as large a budget as it would alone — the max-across-controllers rule.
  const auto records = mixed_stream(40000);

  auto strict_alone = small_window_config();
  strict_alone.queries.aggregate("mean", {Aggregation::kMean, false},
                                 std::nullopt, /*accuracy_target=*/0.001);
  const auto strict = run_driver(std::move(strict_alone), records);

  auto both = small_window_config();
  both.queries.aggregate("loose", {Aggregation::kMean, false}, std::nullopt,
                         /*accuracy_target=*/0.5);
  both.queries.aggregate("mean", {Aggregation::kMean, false}, std::nullopt,
                         /*accuracy_target=*/0.001);
  const auto combined = run_driver(std::move(both), records);

  ASSERT_EQ(strict.size(), combined.size());
  ASSERT_GT(strict.size(), 2u);
  for (std::size_t i = 0; i < strict.size(); ++i) {
    EXPECT_GE(combined[i].budget_in_force, strict[i].budget_in_force)
        << "window " << i;
  }
  // And the strict target did move the budget off its initial value.
  EXPECT_GT(combined.back().budget_in_force, combined.front().budget_in_force);
}

TEST(PipelineDriver, HistogramOnlyRegistryStillAdaptsToAccuracyBudget) {
  // A registry holding only a HISTOGRAM query plus an accuracy budget: no
  // sink inherits the fallback target, but adaptation must not silently
  // die — the first query's observed bound drives one controller.
  auto config = small_window_config();
  config.budget = estimation::QueryBudget::relative_error(1e-6);  // very strict
  config.queries.histogram("hist", {0.0, 8.0, 16});
  const auto outputs = run_driver(std::move(config), mixed_stream(30000));
  ASSERT_GT(outputs.size(), 3u);
  // The strict target forces the budget to grow off its initial value.
  EXPECT_GT(outputs.back().budget_in_force, outputs.front().budget_in_force);
}

TEST(PipelineDriver, ShardedSamplerConfigSplitsBudget) {
  PipelineDriver driver(small_window_config(), [](const WindowOutput&) {});
  const auto whole = driver.slide_sampler_config(7);
  const auto quarter = driver.slide_sampler_config(7, 1, 4);
  EXPECT_EQ(whole.total_budget, driver.current_budget());
  EXPECT_EQ(quarter.total_budget, driver.current_budget() / 4);
  EXPECT_NE(whole.seed, quarter.seed);
  // shard 0 of 1 reproduces the sequential seed derivation.
  EXPECT_EQ(whole.seed, driver.slide_sampler_config(7, 0, 1).seed);
}

}  // namespace
}  // namespace streamapprox::core
