// Tests for the virtual cost function (§7): every budget kind maps to a
// sensible sample size.
#include "estimation/cost_function.h"

#include <gtest/gtest.h>

namespace streamapprox::estimation {
namespace {

StratumSummary history(std::uint64_t seen, std::size_t sampled, double mean,
                       double spread) {
  StratumSummary s;
  s.stratum = 0;
  s.seen = seen;
  s.sampled = sampled;
  // Construct sum/sum_sq with the requested mean and variance ~ spread^2.
  s.sum = mean * static_cast<double>(sampled);
  s.sum_sq = (mean * mean + spread * spread) * static_cast<double>(sampled);
  s.weight = static_cast<double>(seen) / static_cast<double>(sampled);
  return s;
}

TEST(CostFunction, FractionBudget) {
  CostFunction cost;
  EXPECT_EQ(cost.sample_size(QueryBudget::fraction(0.5), 1000), 500u);
  EXPECT_EQ(cost.sample_size(QueryBudget::fraction(1.0), 1000), 1000u);
  EXPECT_EQ(cost.sample_size(QueryBudget::fraction(0.0), 1000), 0u);
  // Fractions beyond [0,1] are clamped.
  EXPECT_EQ(cost.sample_size(QueryBudget::fraction(1.5), 1000), 1000u);
}

TEST(CostFunction, LatencyBudgetUsesCalibratedThroughput) {
  CostModel model;
  model.items_per_ms_per_worker = 100.0;
  model.workers = 4;
  CostFunction cost(model);
  // 10 ms * 100 items/ms * 4 workers = 4000 items max.
  EXPECT_EQ(cost.sample_size(QueryBudget::latency_ms(10.0), 100000), 4000u);
  // Capacity above arrivals: everything fits.
  EXPECT_EQ(cost.sample_size(QueryBudget::latency_ms(10.0), 2000), 2000u);
}

TEST(CostFunction, CalibrationUpdatesModel) {
  CostFunction cost;
  cost.calibrate_throughput(250.0);
  EXPECT_DOUBLE_EQ(cost.model().items_per_ms_per_worker, 250.0);
  cost.calibrate_throughput(-5.0);  // rejected
  EXPECT_DOUBLE_EQ(cost.model().items_per_ms_per_worker, 250.0);
}

TEST(CostFunction, TokenBudgetPulsarStyle) {
  CostModel model;
  model.tokens_per_item = 2.0;
  CostFunction cost(model);
  EXPECT_EQ(cost.sample_size(QueryBudget::tokens(1000.0), 100000), 500u);
  EXPECT_EQ(cost.sample_size(QueryBudget::tokens(1e9), 1234), 1234u);
}

TEST(CostFunction, AccuracyBudgetWithoutHistoryDefaultsConservative) {
  CostFunction cost;
  const auto size =
      cost.sample_size(QueryBudget::relative_error(0.01), 10000, {});
  EXPECT_EQ(size, 1000u);  // 10% starting fraction
}

TEST(CostFunction, AccuracyBudgetShrinksWithLooserTarget) {
  CostFunction cost;
  const std::vector<StratumSummary> last = {history(10000, 500, 100.0, 20.0)};
  const auto tight =
      cost.sample_size(QueryBudget::relative_error(0.001), 10000, last);
  const auto loose =
      cost.sample_size(QueryBudget::relative_error(0.01), 10000, last);
  EXPECT_GT(tight, loose);
  EXPECT_LE(tight, 10000u);  // capped at arrivals
  EXPECT_GE(loose, 1u);
}

TEST(CostFunction, AccuracyBudgetGrowsWithVariance) {
  CostFunction cost;
  const std::vector<StratumSummary> calm = {history(10000, 500, 100.0, 5.0)};
  const std::vector<StratumSummary> noisy = {
      history(10000, 500, 100.0, 80.0)};
  const auto calm_size =
      cost.sample_size(QueryBudget::relative_error(0.01), 10000, calm);
  const auto noisy_size =
      cost.sample_size(QueryBudget::relative_error(0.01), 10000, noisy);
  EXPECT_GT(noisy_size, calm_size);
}

TEST(CostFunction, ZeroVarianceHistoryFallsBack) {
  CostFunction cost;
  const std::vector<StratumSummary> flat = {history(10000, 500, 100.0, 0.0)};
  const auto size =
      cost.sample_size(QueryBudget::relative_error(0.01), 10000, flat);
  EXPECT_EQ(size, 1000u);
}

}  // namespace
}  // namespace streamapprox::estimation
