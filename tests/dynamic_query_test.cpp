// Dynamic query lifecycle: attach_query/detach_query on a RUNNING pipeline.
// The contract under test (see core/pipeline_driver.h):
//   * control operations take effect at the next slide-close boundary;
//   * an attached query reports only windows assembled ENTIRELY after its
//     attach — never a window it observed partially;
//   * a detached query retires with its FeedbackController, the budget is
//     rebuilt (falling back to the config budget when no target remains),
//     and its subscription channel drains then finishes;
//   * the remaining queries are untouched: a sequential run with an
//     attach/detach episode is BIT-IDENTICAL to a never-attached run, and
//     an exchange-sharded run sees identical records_seen with estimates
//     that agree within error bounds (sharded sampled counts are
//     timing-dependent — workers race the merger for the atomic budget — a
//     pre-existing property independent of the registry).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "core/pipeline_driver.h"
#include "core/stream_approx.h"
#include "workload/synthetic.h"

namespace streamapprox::core {
namespace {

using engine::Record;

Record make_record(int i) {
  return Record{static_cast<sampling::StratumId>(i % 3), 1.0 + i % 7,
                i * 1000};
}

PipelineDriverConfig driver_config_1s_windows() {
  PipelineDriverConfig config;
  config.window = {1'000'000, 500'000};  // 2 slides per window
  config.query = {Aggregation::kMean, false};
  return config;
}

std::vector<Record> gaussian_stream(double seconds, double rate,
                                    std::uint64_t seed) {
  workload::SyntheticStream stream(workload::gaussian_substreams(rate), seed);
  return stream.generate(seconds);
}

// ---------------------------------------------------------------- driver

TEST(DynamicQuery, AttachAppliesAtBoundaryAndSeesOnlyWholeWindows) {
  std::vector<WindowOutput> outputs;
  PipelineDriver driver(driver_config_1s_windows(),
                        [&](const WindowOutput& o) { outputs.push_back(o); });

  for (int i = 0; i < 2000; ++i) driver.offer(make_record(i));  // [0, 2 s)
  driver.advance(2'000'000);  // closes slides 0..3
  ASSERT_EQ(outputs.size(), 3u);  // windows ending at slides 1, 2, 3
  for (const auto& output : outputs) {
    EXPECT_EQ(output.queries.size(), 1u);
  }

  // Queue the attach; it must NOT take effect until a slide closes.
  auto subscription = driver.attach_query(
      std::make_unique<AggregateSink>(
          "extra", QuerySpec{Aggregation::kCount, false}),
      /*subscription_capacity=*/8);
  ASSERT_NE(subscription, nullptr);
  EXPECT_EQ(driver.query_count(), 1u);
  EXPECT_FALSE(subscription->poll().has_value());

  const std::uint64_t generation_before = driver.registry_generation();
  for (int i = 2000; i < 3000; ++i) driver.offer(make_record(i));  // [2, 3 s)
  driver.advance(3'000'000);  // closes slides 4, 5; attach applies at 4
  EXPECT_EQ(driver.query_count(), 2u);
  EXPECT_GT(driver.registry_generation(), generation_before);

  ASSERT_EQ(outputs.size(), 5u);
  // Window ending at slide 4 ([1.5 s, 2.5 s)) contains slide 3, which the
  // sink never observed: the attached query must not appear yet.
  EXPECT_EQ(outputs[3].queries.size(), 1u);
  // Window ending at slide 5 ([2.0 s, 3.0 s)) is made of slides 4 and 5,
  // both observed: now the attached query reports.
  ASSERT_EQ(outputs[4].queries.size(), 2u);
  EXPECT_EQ(outputs[4].queries[1].name, "extra");

  // The per-query channel carries exactly the whole windows, nothing more.
  auto first = subscription->poll();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->estimate.window_start_us, 2'000'000);
  EXPECT_EQ(first->estimate.window_end_us, 3'000'000);
  EXPECT_EQ(first->records_seen, 1000u);
  ASSERT_EQ(first->queries.size(), 1u);
  EXPECT_EQ(first->queries[0].name, "extra");
  // COUNT of a window the sink fully observed: ~1000 records.
  EXPECT_NEAR(first->queries[0].estimate.overall.estimate, 1000.0, 50.0);
  EXPECT_FALSE(subscription->poll().has_value());
  EXPECT_FALSE(subscription->finished());

  // Detach retires the sink at the next boundary: the window ending at the
  // detach slide no longer includes it, and the channel finishes.
  EXPECT_TRUE(driver.detach_query("extra"));
  EXPECT_FALSE(driver.detach_query("no-such-query"));
  for (int i = 3000; i < 4000; ++i) driver.offer(make_record(i));  // [3, 4 s)
  driver.advance(4'000'000);  // closes slides 6, 7; detach applies at 6
  EXPECT_EQ(driver.query_count(), 1u);
  ASSERT_EQ(outputs.size(), 7u);
  EXPECT_EQ(outputs[5].queries.size(), 1u);
  EXPECT_EQ(outputs[6].queries.size(), 1u);
  EXPECT_FALSE(subscription->poll().has_value());
  EXPECT_TRUE(subscription->finished());
  EXPECT_EQ(subscription->dropped(), 0u);
  driver.finish();
}

TEST(DynamicQuery, SlowConsumerDropsNewestAndAccountsExactly) {
  // A deliberately slow consumer: attach with a tiny channel and never poll
  // while the run progresses. The lifecycle must never block on the full
  // ring — it publishes, drops the NEWEST windows, and counts every drop —
  // so the buffered entries are the OLDEST eligible windows and every
  // eligible window is either delivered or accounted in dropped(). (The
  // ring guarantees AT LEAST the requested capacity — it rounds up — so
  // the exact split is asserted via conservation, not the request.)
  constexpr std::size_t kCapacity = 2;
  std::vector<WindowOutput> outputs;
  std::shared_ptr<QuerySubscription> subscription;
  std::size_t eligible = 0;
  {
    PipelineDriver driver(
        driver_config_1s_windows(),
        [&](const WindowOutput& o) { outputs.push_back(o); });
    subscription = driver.attach_query(
        std::make_unique<AggregateSink>(
            "slow", QuerySpec{Aggregation::kCount, false}),
        kCapacity);
    ASSERT_NE(subscription, nullptr);

    // [0, 5 s): the attach applies at the close of slide 0, so the sink's
    // first whole window ends at slide 1 — every emitted window is eligible.
    for (int i = 0; i < 5000; ++i) driver.offer(make_record(i));
    driver.advance(5'000'000);  // closes slides 0..9 without a single poll
    ASSERT_EQ(outputs.size(), 9u);  // windows ending at slides 1..9
    eligible = outputs.size();

    // The lifecycle thread never blocked: all windows were emitted while
    // the consumer slept, and most of them overflowed the tiny channel.
    EXPECT_GT(subscription->dropped(), 0u);
    EXPECT_LT(subscription->dropped(), eligible);

    driver.finish();
  }  // teardown closes the channel; buffered output survives

  // Drop-newest: what remains buffered is the OLDEST eligible windows, in
  // emission order, starting from the sink's very first whole window.
  std::vector<WindowOutput> drained;
  while (auto output = subscription->poll()) drained.push_back(*output);
  ASSERT_GE(drained.size(), kCapacity);
  for (std::size_t i = 0; i < drained.size(); ++i) {
    EXPECT_EQ(drained[i].estimate.window_end_us,
              1'000'000 + static_cast<std::int64_t>(i) * 500'000)
        << "buffered window " << i << " is not the oldest run";
    ASSERT_EQ(drained[i].queries.size(), 1u);
    EXPECT_EQ(drained[i].queries[0].name, "slow");
  }
  EXPECT_TRUE(subscription->finished());
  // Exact accounting: every eligible window was either delivered or counted
  // as dropped — none vanished, none was double-published.
  EXPECT_EQ(drained.size() + subscription->dropped(), eligible);
}

TEST(DynamicQuery, CancellingAPendingAttachNeverTakesEffect) {
  std::vector<WindowOutput> outputs;
  PipelineDriver driver(driver_config_1s_windows(),
                        [&](const WindowOutput& o) { outputs.push_back(o); });
  auto subscription = driver.attach_query(
      std::make_unique<AggregateSink>("never",
                                      QuerySpec{Aggregation::kSum, false}),
      4);
  // Detach before any slide closed: the pending attach is cancelled and the
  // channel finishes immediately.
  EXPECT_TRUE(driver.detach_query("never"));
  EXPECT_TRUE(subscription->finished());
  for (int i = 0; i < 2000; ++i) driver.offer(make_record(i));
  driver.advance(2'000'000);
  driver.finish();
  EXPECT_EQ(driver.query_count(), 1u);
  for (const auto& output : outputs) EXPECT_EQ(output.queries.size(), 1u);
}

TEST(DynamicQuery, DriverTeardownClosesSubscriptions) {
  std::shared_ptr<QuerySubscription> subscription;
  {
    PipelineDriver driver(driver_config_1s_windows(),
                          [](const WindowOutput&) {});
    subscription = driver.attach_query(
        std::make_unique<AggregateSink>(
            "orphan", QuerySpec{Aggregation::kMean, false}),
        4);
    for (int i = 0; i < 2000; ++i) driver.offer(make_record(i));
    driver.advance(2'000'000);
    EXPECT_FALSE(subscription->finished());  // attached, run still live
  }
  // Buffered outputs stay drainable after teardown, then the channel ends.
  while (subscription->poll().has_value()) {
  }
  EXPECT_TRUE(subscription->finished());
}

TEST(DynamicQuery, OccupancyAwareSamplerShares) {
  PipelineDriver driver(driver_config_1s_windows(), [](const WindowOutput&) {});
  const std::size_t budget = driver.current_budget();
  // Flat fallback when occupancy is unknown.
  EXPECT_EQ(driver.slide_sampler_config(7, 1, 4).total_budget, budget / 4);
  // Occupancy-aware: 2 of 3 strata → 2/3 of the budget; 1 of 3 → 1/3.
  EXPECT_EQ(driver.slide_sampler_config(7, 0, 4, 2, 3).total_budget,
            budget * 2 / 3);
  EXPECT_EQ(driver.slide_sampler_config(7, 3, 4, 1, 3).total_budget,
            budget / 3);
  // Degenerate stamps never produce a zero budget.
  EXPECT_GE(driver.slide_sampler_config(7, 2, 4, 1, 4096).total_budget, 1u);
  // The single-shard (sequential / merger) path is untouched.
  EXPECT_EQ(driver.slide_sampler_config(7).total_budget, budget);
}

// ---------------------------------------------------------------- facade

/// Runs a pre-sealed topic (fully loaded before the run, so sequential
/// execution is deterministic) through the facade.
std::vector<WindowOutput> run_sealed(
    const std::vector<Record>& records, std::size_t workers,
    std::size_t partitions,
    const std::function<void(StreamApprox&, const WindowOutput&,
                             std::size_t)>& on_window = {}) {
  ingest::Broker broker;
  broker.create_topic("input", partitions);
  ingest::Producer producer(broker, "input");
  producer.send_batch(records);
  producer.finish();
  StreamApproxConfig config;
  config.topic = "input";
  config.window = {1'000'000, 500'000};
  config.query = {Aggregation::kMean, false};
  config.workers = workers;
  config.seed = 99;
  config.idle_partition_timeout_ms = 30'000;
  StreamApprox system(broker, config);
  std::vector<WindowOutput> outputs;
  system.run([&](const WindowOutput& output) {
    outputs.push_back(output);
    if (on_window) on_window(system, output, outputs.size());
  });
  return outputs;
}

TEST(DynamicQuery, SequentialAttachDetachLeavesOthersBitIdentical) {
  // Acceptance: detaching an attached query leaves the remaining queries'
  // records_seen and estimates IDENTICAL to a never-attached run. The topic
  // is sealed before the run, so the sequential path is deterministic and
  // the comparison is exact.
  const auto records = gaussian_stream(5.0, 20000.0, 21);
  const auto baseline = run_sealed(records, 1, 3);

  std::shared_ptr<QuerySubscription> subscription;
  std::int64_t last_end_at_attach = 0;
  const auto episode = run_sealed(
      records, 1, 3,
      [&](StreamApprox& system, const WindowOutput& output,
          std::size_t index) {
        if (index == 2) {
          last_end_at_attach = output.estimate.window_end_us;
          subscription = system.attach_query(
              std::make_unique<AggregateSink>(
                  "extra", QuerySpec{Aggregation::kSum, true}),
              32);
        }
        if (index == 4) {
          EXPECT_EQ(system.query_count(), 2u);
        }
        if (index == 6) system.detach_query("extra");
        if (index == 8) {
          EXPECT_EQ(system.query_count(), 1u);
        }
      });

  ASSERT_GT(baseline.size(), 6u);
  ASSERT_EQ(baseline.size(), episode.size());
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_EQ(baseline[i].records_seen, episode[i].records_seen)
        << "window " << i;
    EXPECT_EQ(baseline[i].records_sampled, episode[i].records_sampled)
        << "window " << i;
    EXPECT_EQ(baseline[i].estimate.window_end_us,
              episode[i].estimate.window_end_us);
    EXPECT_DOUBLE_EQ(baseline[i].estimate.overall.estimate,
                     episode[i].estimate.overall.estimate)
        << "window " << i;
    EXPECT_DOUBLE_EQ(baseline[i].estimate.overall.variance,
                     episode[i].estimate.overall.variance)
        << "window " << i;
  }
  // The episode really happened: some windows carried the second query...
  std::size_t with_extra = 0;
  for (const auto& output : episode) {
    if (output.queries.size() == 2) ++with_extra;
  }
  EXPECT_GT(with_extra, 0u);
  EXPECT_LT(with_extra, episode.size());
  // ...and the channel reported only whole post-attach windows.
  ASSERT_NE(subscription, nullptr);
  std::size_t channel_outputs = 0;
  while (auto output = subscription->poll()) {
    EXPECT_GE(output->estimate.window_start_us, last_end_at_attach);
    ASSERT_EQ(output->queries.size(), 1u);
    EXPECT_EQ(output->queries[0].name, "extra");
    ++channel_outputs;
  }
  EXPECT_EQ(channel_outputs, with_extra);
  EXPECT_TRUE(subscription->finished());
}

TEST(DynamicQuery, ExchangeAttachDetachLeavesOthersEquivalent) {
  // The same acceptance on the exchange-sharded path: records_seen stays
  // IDENTICAL per window; estimates agree within summed 3-sigma bounds
  // (sharded sampled counts are timing-dependent — workers race the merger
  // for the atomic budget — so bit-identity is a sequential-only contract;
  // see ParallelEquivalence.RegistrySingleQueryMatchesLegacyWhenSharded).
  const auto records = gaussian_stream(4.0, 20000.0, 22);
  const auto baseline = run_sealed(records, 4, 2);

  std::shared_ptr<QuerySubscription> subscription;
  std::atomic<std::int64_t> last_end_at_attach{0};
  const auto episode = run_sealed(
      records, 4, 2,
      [&](StreamApprox& system, const WindowOutput& output,
          std::size_t index) {
        if (index == 2) {
          last_end_at_attach = output.estimate.window_end_us;
          subscription = system.attach_query(
              std::make_unique<AggregateSink>(
                  "extra", QuerySpec{Aggregation::kCount, false}),
              32);
        }
        if (index == 5) system.detach_query("extra");
      });

  ASSERT_GT(baseline.size(), 5u);
  ASSERT_EQ(baseline.size(), episode.size());
  std::size_t within = 0;
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_EQ(baseline[i].records_seen, episode[i].records_seen)
        << "window " << i;
    EXPECT_EQ(baseline[i].estimate.window_end_us,
              episode[i].estimate.window_end_us);
    const auto& a = baseline[i].estimate.overall;
    const auto& b = episode[i].estimate.overall;
    if (std::abs(a.estimate - b.estimate) <=
        a.error_bound(3.0) + b.error_bound(3.0)) {
      ++within;
    }
  }
  EXPECT_GE(within, baseline.size() - 1);  // slack for a tiny edge window
  // Whole-window guarantee holds under sharding too.
  ASSERT_NE(subscription, nullptr);
  std::size_t channel_outputs = 0;
  while (auto output = subscription->poll()) {
    EXPECT_GE(output->estimate.window_start_us, last_end_at_attach.load());
    ++channel_outputs;
  }
  EXPECT_GT(channel_outputs, 0u);
  EXPECT_TRUE(subscription->finished());
}

TEST(DynamicQuery, DetachOnlyTargetedQueryFallsBackToConfigBudget) {
  // A dynamically attached query with a strict accuracy target inflates the
  // shared budget (strictest query wins); detaching it must retire its
  // controller and let the budget fall back to the config default — here a
  // 20% sampling fraction resolved per slide by the cost function. The
  // sequential path is deterministic, so the post-detach budgets match a
  // never-attached run exactly.
  const auto records = gaussian_stream(6.0, 20000.0, 23);
  const auto run_fraction_budget =
      [&](const std::function<void(StreamApprox&, std::size_t)>& hook) {
        ingest::Broker broker;
        broker.create_topic("input", 3);
        ingest::Producer producer(broker, "input");
        producer.send_batch(records);
        producer.finish();
        StreamApproxConfig config;
        config.topic = "input";
        config.window = {1'000'000, 500'000};
        config.budget = estimation::QueryBudget::fraction(0.20);
        config.query = {Aggregation::kMean, false};
        config.seed = 7;
        StreamApprox system(broker, config);
        std::vector<std::size_t> budgets;
        system.run([&](const WindowOutput& output) {
          budgets.push_back(output.budget_in_force);
          if (hook) hook(system, budgets.size());
        });
        return budgets;
      };

  const auto baseline = run_fraction_budget({});
  const auto budgets =
      run_fraction_budget([&](StreamApprox& system, std::size_t index) {
        if (index == 2) {
          system.attach_query(std::make_unique<AggregateSink>(
              "strict", QuerySpec{Aggregation::kMean, false}));
          // The attach above carries no target; give the second one an
          // explicit target to exercise both shapes.
          auto targeted = std::make_unique<AggregateSink>(
              "tight", QuerySpec{Aggregation::kSum, false});
          targeted->set_accuracy_target(1e-5);
          system.attach_query(std::move(targeted));
        }
        if (index == 6) {
          system.detach_query("strict");
          system.detach_query("tight");
        }
      });
  ASSERT_GT(budgets.size(), 8u);
  ASSERT_EQ(baseline.size(), budgets.size());

  // While "tight" was attached its controller inflated the budget...
  std::size_t peak = 0;
  for (const auto budget : budgets) peak = std::max(peak, budget);
  std::size_t baseline_peak = 0;
  for (const auto budget : baseline) {
    baseline_peak = std::max(baseline_peak, budget);
  }
  EXPECT_GT(peak, baseline_peak * 2);
  // ...and after the detach the budget falls back to the fraction-derived
  // default: identical to the never-attached run's tail (the sequential
  // path is deterministic).
  for (std::size_t i = 8; i < budgets.size(); ++i) {
    EXPECT_EQ(budgets[i], baseline[i]) << "window " << i;
  }
}

TEST(DynamicQuery, AttachDuringIdlePartitionStallAppliesOnResume) {
  // 2 partitions; partition 1 never delivers. Once the first burst is
  // consumed the pipeline stalls (nothing left to close). An attach issued
  // DURING the stall must neither deadlock nor apply early — it takes
  // effect at the first slide close after the stream resumes, and the new
  // query sees only whole windows from the resumed region.
  ingest::Broker broker;
  auto& topic = broker.create_topic("input", 2);
  for (int i = 0; i < 3000; ++i) {
    topic.partition(0).append(Record{0, 1.0, i * 1000});  // [0, 3 s)
  }
  StreamApproxConfig config;
  config.topic = "input";
  config.window = {1'000'000, 500'000};
  config.query = {Aggregation::kMean, false};
  config.idle_partition_timeout_ms = 100;
  StreamApprox system(broker, config);

  std::atomic<std::size_t> windows{0};
  std::thread runner([&] {
    system.run([&](const WindowOutput&) { windows.fetch_add(1); });
  });
  // The burst closes slides 0..4 (the watermark rests at 2.999 s) and then
  // stalls with slide 5 ([2.5 s, 3.0 s)) open: 4 windows.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (windows.load() < 4 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GE(windows.load(), 4u) << "no windows before the stall";

  // The stream is now stalled (burst consumed, partition 1 idle): attach.
  auto subscription = system.attach_query(
      std::make_unique<AggregateSink>("late",
                                      QuerySpec{Aggregation::kCount, false}),
      32);
  ASSERT_NE(subscription, nullptr);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(subscription->poll().has_value());  // nothing closed yet

  // Resume with live records at [3 s, 6 s) and seal.
  for (int i = 0; i < 3000; ++i) {
    topic.partition(0).append(Record{0, 2.0, 3'000'000 + i * 1000});
  }
  topic.seal();
  runner.join();

  // The attach applied at the first post-resume slide close (slide 5), so
  // the earliest whole window the new query may report is [2.5 s, 3.5 s) —
  // the window whose slides all closed after the attach.
  std::size_t channel_outputs = 0;
  while (auto output = subscription->poll()) {
    EXPECT_GE(output->estimate.window_start_us, 2'500'000);
    ++channel_outputs;
  }
  EXPECT_GT(channel_outputs, 0u);
  EXPECT_TRUE(subscription->finished());
}

TEST(DynamicQuery, PreRunControlPlaneMirrorsDriverRules) {
  ingest::Broker broker;
  broker.create_topic("input", 1);
  StreamApproxConfig config;
  config.topic = "input";
  config.window = {1'000'000, 500'000};
  {
    StreamApprox system(broker, config);
    // Legacy configs synthesize one "query" sink at driver construction;
    // the pre-run count mirrors that.
    EXPECT_EQ(system.query_count(), 1u);
    auto subscription = system.attach_query(
        std::make_unique<AggregateSink>(
            "pre", QuerySpec{Aggregation::kSum, false}),
        4);
    EXPECT_EQ(system.query_count(), 2u);
    // Cancelling a pre-run attach closes its channel immediately — no
    // driver exists to do it later.
    EXPECT_TRUE(system.detach_query("pre"));
    EXPECT_TRUE(subscription->finished());
    EXPECT_EQ(system.query_count(), 1u);
    // The legacy sink is addressable pre-run under its synthesized name —
    // once: a repeat detach of an already-slated query is a no-op.
    EXPECT_TRUE(system.detach_query("query"));
    EXPECT_EQ(system.query_count(), 0u);
    EXPECT_FALSE(system.detach_query("query"));
    EXPECT_EQ(system.query_count(), 0u);
    EXPECT_FALSE(system.detach_query("no-such-query"));
  }
  // A pre-run attach discarded with the facade (run never started) must
  // still release its consumer.
  std::shared_ptr<QuerySubscription> orphan;
  {
    StreamApprox system(broker, config);
    orphan = system.attach_query(
        std::make_unique<AggregateSink>(
            "orphan", QuerySpec{Aggregation::kMean, false}),
        4);
    EXPECT_FALSE(orphan->finished());
  }
  EXPECT_TRUE(orphan->finished());
}

TEST(DynamicQuery, AttachDetachStormUnderExchangeSharding) {
  // Control-plane storm while the exchange-sharded pipeline runs: a
  // background thread attaches and detaches queries as fast as it can.
  // Nothing here asserts timing — the test's value is that the run
  // completes with coherent outputs under ASan/TSan.
  const auto records = gaussian_stream(4.0, 30000.0, 24);
  ingest::Broker broker;
  broker.create_topic("input", 2);
  ingest::Producer producer(broker, "input");
  producer.send_batch(records);
  producer.finish();
  StreamApproxConfig config;
  config.topic = "input";
  config.window = {1'000'000, 500'000};
  config.query = {Aggregation::kMean, false};
  config.workers = 4;
  config.idle_partition_timeout_ms = 30'000;
  StreamApprox system(broker, config);

  std::atomic<bool> done{false};
  std::thread stormer([&] {
    std::size_t i = 0;
    while (!done.load(std::memory_order_acquire)) {
      const std::string name = "storm-" + std::to_string(i % 4);
      auto subscription = system.attach_query(
          std::make_unique<AggregateSink>(
              name, QuerySpec{Aggregation::kCount, false}),
          8);
      while (subscription && subscription->poll().has_value()) {
      }
      system.detach_query(name);
      ++i;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  std::vector<WindowOutput> outputs;
  system.run([&](const WindowOutput& output) { outputs.push_back(output); });
  done.store(true, std::memory_order_release);
  stormer.join();

  ASSERT_GT(outputs.size(), 3u);
  for (const auto& output : outputs) {
    EXPECT_GE(output.queries.size(), 1u);
    EXPECT_EQ(output.queries[0].name, "query");  // the static query survives
    EXPECT_GT(output.records_seen, 0u);
  }
}

}  // namespace
}  // namespace streamapprox::core
