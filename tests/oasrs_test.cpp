// Tests for OASRS (paper Algorithm 3): per-stratum fairness, Eq. 1 weights,
// on-the-fly stratum discovery, interval reset semantics, budget allocation,
// distributed merge.
#include "sampling/oasrs.h"

#include <gtest/gtest.h>

#include <unordered_map>

#include "engine/record.h"

namespace streamapprox::sampling {
namespace {

using streamapprox::engine::Record;

Record make_record(StratumId stratum, double value) {
  return Record{stratum, value, 0};
}

OasrsConfig fixed_capacity_config(std::size_t capacity, std::uint64_t seed) {
  OasrsConfig config;
  config.total_budget = 0;
  config.per_stratum_capacity = capacity;
  config.seed = seed;
  return config;
}

TEST(Oasrs, DiscoversStrataOnTheFly) {
  auto sampler = make_oasrs<Record>(fixed_capacity_config(4, 1));
  sampler.offer(make_record(7, 1.0));
  sampler.offer(make_record(3, 2.0));
  sampler.offer(make_record(7, 3.0));
  EXPECT_EQ(sampler.stratum_count(), 2u);
  auto sample = sampler.take();
  ASSERT_EQ(sample.strata.size(), 2u);
  // First-seen order.
  EXPECT_EQ(sample.strata[0].stratum, 7u);
  EXPECT_EQ(sample.strata[1].stratum, 3u);
}

TEST(Oasrs, NoSubStreamOverlooked) {
  // One giant stratum and one tiny one: the tiny one must still be fully
  // represented — the core property SRS lacks (§3.2).
  auto sampler = make_oasrs<Record>(fixed_capacity_config(8, 2));
  for (int i = 0; i < 100000; ++i) sampler.offer(make_record(0, 1.0));
  for (int i = 0; i < 3; ++i) sampler.offer(make_record(1, 100.0));
  auto sample = sampler.take();
  ASSERT_EQ(sample.strata.size(), 2u);
  const auto& tiny = sample.strata[1];
  EXPECT_EQ(tiny.stratum, 1u);
  EXPECT_EQ(tiny.items.size(), 3u);     // all of them
  EXPECT_DOUBLE_EQ(tiny.weight, 1.0);   // each represents itself
}

TEST(Oasrs, WeightsFollowEquationOne) {
  auto sampler = make_oasrs<Record>(fixed_capacity_config(10, 3));
  for (int i = 0; i < 50; ++i) sampler.offer(make_record(0, 1.0));   // C>N
  for (int i = 0; i < 5; ++i) sampler.offer(make_record(1, 1.0));    // C<=N
  auto sample = sampler.take();
  ASSERT_EQ(sample.strata.size(), 2u);
  EXPECT_DOUBLE_EQ(sample.strata[0].weight, 5.0);
  EXPECT_EQ(sample.strata[0].seen, 50u);
  EXPECT_EQ(sample.strata[0].items.size(), 10u);
  EXPECT_DOUBLE_EQ(sample.strata[1].weight, 1.0);
  EXPECT_EQ(sample.strata[1].items.size(), 5u);
}

TEST(Oasrs, TakeResetsForNextInterval) {
  auto sampler = make_oasrs<Record>(fixed_capacity_config(4, 4));
  for (int i = 0; i < 10; ++i) sampler.offer(make_record(0, 1.0));
  auto first = sampler.take();
  EXPECT_EQ(first.strata.size(), 1u);
  EXPECT_EQ(first.strata[0].seen, 10u);
  // New interval: counters restart; stratum yields nothing until data.
  auto empty = sampler.take();
  EXPECT_TRUE(empty.strata.empty());
  sampler.offer(make_record(0, 2.0));
  auto second = sampler.take();
  ASSERT_EQ(second.strata.size(), 1u);
  EXPECT_EQ(second.strata[0].seen, 1u);
  EXPECT_DOUBLE_EQ(second.strata[0].weight, 1.0);
}

TEST(Oasrs, SnapshotDoesNotConsume) {
  auto sampler = make_oasrs<Record>(fixed_capacity_config(4, 5));
  for (int i = 0; i < 10; ++i) sampler.offer(make_record(0, 1.0));
  auto snap = sampler.snapshot();
  EXPECT_EQ(snap.strata.size(), 1u);
  auto taken = sampler.take();
  EXPECT_EQ(taken.strata.size(), 1u);
  EXPECT_EQ(taken.strata[0].seen, 10u);
}

TEST(Oasrs, TotalBudgetSplitsEqually) {
  OasrsConfig config;
  config.total_budget = 30;
  config.seed = 6;
  auto sampler = make_oasrs<Record>(config);
  // First stratum discovered gets the full budget as its capacity (only one
  // stratum known); later strata get smaller equal shares for NEW intervals.
  for (int i = 0; i < 1000; ++i) {
    sampler.offer(make_record(0, 1.0));
    sampler.offer(make_record(1, 1.0));
    sampler.offer(make_record(2, 1.0));
  }
  auto sample = sampler.take();
  ASSERT_EQ(sample.strata.size(), 3u);
  // Next interval: all three reservoirs re-created at budget/3 = 10.
  for (int i = 0; i < 1000; ++i) {
    sampler.offer(make_record(0, 1.0));
    sampler.offer(make_record(1, 1.0));
    sampler.offer(make_record(2, 1.0));
  }
  sample = sampler.take();
  for (const auto& stratum : sample.strata) {
    EXPECT_EQ(stratum.items.size(), 10u) << "stratum " << stratum.stratum;
    EXPECT_DOUBLE_EQ(stratum.weight, 100.0);
  }
}

TEST(Oasrs, SetTotalBudgetTakesEffectNextInterval) {
  OasrsConfig config;
  config.total_budget = 10;
  config.seed = 7;
  auto sampler = make_oasrs<Record>(config);
  for (int i = 0; i < 100; ++i) sampler.offer(make_record(0, 1.0));
  sampler.take();
  sampler.set_total_budget(40);
  for (int i = 0; i < 100; ++i) sampler.offer(make_record(0, 1.0));
  auto sample = sampler.take();
  ASSERT_EQ(sample.strata.size(), 1u);
  EXPECT_EQ(sample.strata[0].items.size(), 40u);
}

TEST(Oasrs, InterleavedStrataSampleIndependently) {
  auto sampler = make_oasrs<Record>(fixed_capacity_config(50, 8));
  streamapprox::Rng rng(8);
  std::unordered_map<StratumId, int> sent;
  for (int i = 0; i < 30000; ++i) {
    const auto stratum = static_cast<StratumId>(rng.uniform_int(5));
    sampler.offer(make_record(stratum, static_cast<double>(stratum)));
    ++sent[stratum];
  }
  auto sample = sampler.take();
  ASSERT_EQ(sample.strata.size(), 5u);
  for (const auto& stratum : sample.strata) {
    EXPECT_EQ(stratum.items.size(), 50u);
    EXPECT_EQ(stratum.seen,
              static_cast<std::uint64_t>(sent[stratum.stratum]));
    // Every sampled item belongs to the right stratum.
    for (const auto& record : stratum.items) {
      EXPECT_EQ(record.stratum, stratum.stratum);
    }
  }
}

TEST(Oasrs, IntervalSeenCountsEverything) {
  auto sampler = make_oasrs<Record>(fixed_capacity_config(2, 9));
  for (int i = 0; i < 123; ++i) {
    sampler.offer(make_record(static_cast<StratumId>(i % 3), 1.0));
  }
  EXPECT_EQ(sampler.interval_seen(), 123u);
}

TEST(Oasrs, MergeCombinesWorkers) {
  auto a = make_oasrs<Record>(fixed_capacity_config(10, 10));
  auto b = make_oasrs<Record>(fixed_capacity_config(10, 11));
  for (int i = 0; i < 100; ++i) a.offer(make_record(0, 1.0));
  for (int i = 0; i < 60; ++i) b.offer(make_record(0, 2.0));
  for (int i = 0; i < 7; ++i) b.offer(make_record(1, 3.0));
  a.merge(b);
  auto sample = a.take();
  ASSERT_EQ(sample.strata.size(), 2u);
  EXPECT_EQ(sample.strata[0].seen, 160u);
  EXPECT_EQ(sample.strata[0].items.size(), 10u);
  EXPECT_EQ(sample.strata[1].seen, 7u);
  EXPECT_EQ(sample.strata[1].items.size(), 7u);
}

TEST(Oasrs, WorksOnUnboundedStreamsWithoutTake) {
  // §3.2: "OASRS not only works for a concerned time interval, but also
  // works with unbounded data streams": without interval resets the
  // reservoirs and counters stay coherent indefinitely and snapshot() gives
  // a valid weighted sample at any moment.
  // 512 samples/stratum over U(0,100): relative SE of the weighted sum is
  // ~0.64%, so the 5% band is ~8 sigma.
  auto sampler = make_oasrs<Record>(fixed_capacity_config(512, 20));
  streamapprox::Rng rng(20);
  double exact_sum = 0.0;
  for (int i = 0; i < 500000; ++i) {
    const double v = rng.uniform(0.0, 100.0);
    exact_sum += v;
    sampler.offer(make_record(static_cast<StratumId>(i % 4), v));
  }
  const auto snapshot = sampler.snapshot();
  ASSERT_EQ(snapshot.strata.size(), 4u);
  double approx_sum = 0.0;
  for (const auto& stratum : snapshot.strata) {
    EXPECT_EQ(stratum.items.size(), 512u);
    EXPECT_EQ(stratum.seen, 125000u);
    double sum = 0.0;
    for (const auto& record : stratum.items) sum += record.value;
    approx_sum += sum * stratum.weight;
  }
  EXPECT_NEAR(approx_sum, exact_sum, exact_sum * 0.05);
}

TEST(Oasrs, SampledFractionApproximatesBudget) {
  // With budget = f * interval items and equal-rate strata, the sampled
  // fraction should come out near f.
  OasrsConfig config;
  config.total_budget = 3000;  // f = 0.3 of 10000 items
  config.seed = 12;
  auto sampler = make_oasrs<Record>(config);
  // Warm-up interval so all strata are known before capacities matter.
  for (int i = 0; i < 10000; ++i) {
    sampler.offer(make_record(static_cast<StratumId>(i % 3), 1.0));
  }
  sampler.take();
  for (int i = 0; i < 10000; ++i) {
    sampler.offer(make_record(static_cast<StratumId>(i % 3), 1.0));
  }
  auto sample = sampler.take();
  EXPECT_NEAR(static_cast<double>(sample.total_sampled()), 3000.0, 3.0);
}

}  // namespace
}  // namespace streamapprox::sampling
