// Tests for OASRS (paper Algorithm 3): per-stratum fairness, Eq. 1 weights,
// on-the-fly stratum discovery, interval reset semantics, budget allocation,
// distributed merge.
#include "sampling/oasrs.h"

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_map>

#include "engine/record.h"
#include "estimation/estimators.h"

namespace streamapprox::sampling {
namespace {

using streamapprox::engine::Record;

Record make_record(StratumId stratum, double value) {
  return Record{stratum, value, 0};
}

OasrsConfig fixed_capacity_config(std::size_t capacity, std::uint64_t seed) {
  OasrsConfig config;
  config.total_budget = 0;
  config.per_stratum_capacity = capacity;
  config.seed = seed;
  return config;
}

TEST(Oasrs, DiscoversStrataOnTheFly) {
  auto sampler = make_oasrs<Record>(fixed_capacity_config(4, 1));
  sampler.offer(make_record(7, 1.0));
  sampler.offer(make_record(3, 2.0));
  sampler.offer(make_record(7, 3.0));
  EXPECT_EQ(sampler.stratum_count(), 2u);
  auto sample = sampler.take();
  ASSERT_EQ(sample.strata.size(), 2u);
  // First-seen order.
  EXPECT_EQ(sample.strata[0].stratum, 7u);
  EXPECT_EQ(sample.strata[1].stratum, 3u);
}

TEST(Oasrs, NoSubStreamOverlooked) {
  // One giant stratum and one tiny one: the tiny one must still be fully
  // represented — the core property SRS lacks (§3.2).
  auto sampler = make_oasrs<Record>(fixed_capacity_config(8, 2));
  for (int i = 0; i < 100000; ++i) sampler.offer(make_record(0, 1.0));
  for (int i = 0; i < 3; ++i) sampler.offer(make_record(1, 100.0));
  auto sample = sampler.take();
  ASSERT_EQ(sample.strata.size(), 2u);
  const auto& tiny = sample.strata[1];
  EXPECT_EQ(tiny.stratum, 1u);
  EXPECT_EQ(tiny.items.size(), 3u);     // all of them
  EXPECT_DOUBLE_EQ(tiny.weight, 1.0);   // each represents itself
}

TEST(Oasrs, WeightsFollowEquationOne) {
  auto sampler = make_oasrs<Record>(fixed_capacity_config(10, 3));
  for (int i = 0; i < 50; ++i) sampler.offer(make_record(0, 1.0));   // C>N
  for (int i = 0; i < 5; ++i) sampler.offer(make_record(1, 1.0));    // C<=N
  auto sample = sampler.take();
  ASSERT_EQ(sample.strata.size(), 2u);
  EXPECT_DOUBLE_EQ(sample.strata[0].weight, 5.0);
  EXPECT_EQ(sample.strata[0].seen, 50u);
  EXPECT_EQ(sample.strata[0].items.size(), 10u);
  EXPECT_DOUBLE_EQ(sample.strata[1].weight, 1.0);
  EXPECT_EQ(sample.strata[1].items.size(), 5u);
}

TEST(Oasrs, TakeResetsForNextInterval) {
  auto sampler = make_oasrs<Record>(fixed_capacity_config(4, 4));
  for (int i = 0; i < 10; ++i) sampler.offer(make_record(0, 1.0));
  auto first = sampler.take();
  EXPECT_EQ(first.strata.size(), 1u);
  EXPECT_EQ(first.strata[0].seen, 10u);
  // New interval: counters restart; stratum yields nothing until data.
  auto empty = sampler.take();
  EXPECT_TRUE(empty.strata.empty());
  sampler.offer(make_record(0, 2.0));
  auto second = sampler.take();
  ASSERT_EQ(second.strata.size(), 1u);
  EXPECT_EQ(second.strata[0].seen, 1u);
  EXPECT_DOUBLE_EQ(second.strata[0].weight, 1.0);
}

TEST(Oasrs, SnapshotDoesNotConsume) {
  auto sampler = make_oasrs<Record>(fixed_capacity_config(4, 5));
  for (int i = 0; i < 10; ++i) sampler.offer(make_record(0, 1.0));
  auto snap = sampler.snapshot();
  EXPECT_EQ(snap.strata.size(), 1u);
  auto taken = sampler.take();
  EXPECT_EQ(taken.strata.size(), 1u);
  EXPECT_EQ(taken.strata[0].seen, 10u);
}

TEST(Oasrs, TotalBudgetSplitsEqually) {
  OasrsConfig config;
  config.total_budget = 30;
  config.seed = 6;
  auto sampler = make_oasrs<Record>(config);
  // First stratum discovered gets the full budget as its capacity (only one
  // stratum known); later strata get smaller equal shares for NEW intervals.
  for (int i = 0; i < 1000; ++i) {
    sampler.offer(make_record(0, 1.0));
    sampler.offer(make_record(1, 1.0));
    sampler.offer(make_record(2, 1.0));
  }
  auto sample = sampler.take();
  ASSERT_EQ(sample.strata.size(), 3u);
  // Next interval: all three reservoirs re-created at budget/3 = 10.
  for (int i = 0; i < 1000; ++i) {
    sampler.offer(make_record(0, 1.0));
    sampler.offer(make_record(1, 1.0));
    sampler.offer(make_record(2, 1.0));
  }
  sample = sampler.take();
  for (const auto& stratum : sample.strata) {
    EXPECT_EQ(stratum.items.size(), 10u) << "stratum " << stratum.stratum;
    EXPECT_DOUBLE_EQ(stratum.weight, 100.0);
  }
}

TEST(Oasrs, SetTotalBudgetTakesEffectNextInterval) {
  OasrsConfig config;
  config.total_budget = 10;
  config.seed = 7;
  auto sampler = make_oasrs<Record>(config);
  for (int i = 0; i < 100; ++i) sampler.offer(make_record(0, 1.0));
  sampler.take();
  sampler.set_total_budget(40);
  for (int i = 0; i < 100; ++i) sampler.offer(make_record(0, 1.0));
  auto sample = sampler.take();
  ASSERT_EQ(sample.strata.size(), 1u);
  EXPECT_EQ(sample.strata[0].items.size(), 40u);
}

TEST(Oasrs, InterleavedStrataSampleIndependently) {
  auto sampler = make_oasrs<Record>(fixed_capacity_config(50, 8));
  streamapprox::Rng rng(8);
  std::unordered_map<StratumId, int> sent;
  for (int i = 0; i < 30000; ++i) {
    const auto stratum = static_cast<StratumId>(rng.uniform_int(5));
    sampler.offer(make_record(stratum, static_cast<double>(stratum)));
    ++sent[stratum];
  }
  auto sample = sampler.take();
  ASSERT_EQ(sample.strata.size(), 5u);
  for (const auto& stratum : sample.strata) {
    EXPECT_EQ(stratum.items.size(), 50u);
    EXPECT_EQ(stratum.seen,
              static_cast<std::uint64_t>(sent[stratum.stratum]));
    // Every sampled item belongs to the right stratum.
    for (const auto& record : stratum.items) {
      EXPECT_EQ(record.stratum, stratum.stratum);
    }
  }
}

TEST(Oasrs, IntervalSeenCountsEverything) {
  auto sampler = make_oasrs<Record>(fixed_capacity_config(2, 9));
  for (int i = 0; i < 123; ++i) {
    sampler.offer(make_record(static_cast<StratumId>(i % 3), 1.0));
  }
  EXPECT_EQ(sampler.interval_seen(), 123u);
}

TEST(Oasrs, MergeCombinesWorkers) {
  auto a = make_oasrs<Record>(fixed_capacity_config(10, 10));
  auto b = make_oasrs<Record>(fixed_capacity_config(10, 11));
  for (int i = 0; i < 100; ++i) a.offer(make_record(0, 1.0));
  for (int i = 0; i < 60; ++i) b.offer(make_record(0, 2.0));
  for (int i = 0; i < 7; ++i) b.offer(make_record(1, 3.0));
  a.merge(b);
  auto sample = a.take();
  ASSERT_EQ(sample.strata.size(), 2u);
  EXPECT_EQ(sample.strata[0].seen, 160u);
  EXPECT_EQ(sample.strata[0].items.size(), 10u);
  EXPECT_EQ(sample.strata[1].seen, 7u);
  EXPECT_EQ(sample.strata[1].items.size(), 7u);
}

TEST(Oasrs, WorksOnUnboundedStreamsWithoutTake) {
  // §3.2: "OASRS not only works for a concerned time interval, but also
  // works with unbounded data streams": without interval resets the
  // reservoirs and counters stay coherent indefinitely and snapshot() gives
  // a valid weighted sample at any moment.
  // 512 samples/stratum over U(0,100): relative SE of the weighted sum is
  // ~0.64%, so the 5% band is ~8 sigma.
  auto sampler = make_oasrs<Record>(fixed_capacity_config(512, 20));
  streamapprox::Rng rng(20);
  double exact_sum = 0.0;
  for (int i = 0; i < 500000; ++i) {
    const double v = rng.uniform(0.0, 100.0);
    exact_sum += v;
    sampler.offer(make_record(static_cast<StratumId>(i % 4), v));
  }
  const auto snapshot = sampler.snapshot();
  ASSERT_EQ(snapshot.strata.size(), 4u);
  double approx_sum = 0.0;
  for (const auto& stratum : snapshot.strata) {
    EXPECT_EQ(stratum.items.size(), 512u);
    EXPECT_EQ(stratum.seen, 125000u);
    double sum = 0.0;
    for (const auto& record : stratum.items) sum += record.value;
    approx_sum += sum * stratum.weight;
  }
  EXPECT_NEAR(approx_sum, exact_sum, exact_sum * 0.05);
}

TEST(Oasrs, SampledFractionApproximatesBudget) {
  // With budget = f * interval items and equal-rate strata, the sampled
  // fraction should come out near f.
  OasrsConfig config;
  config.total_budget = 3000;  // f = 0.3 of 10000 items
  config.seed = 12;
  auto sampler = make_oasrs<Record>(config);
  // Warm-up interval so all strata are known before capacities matter.
  for (int i = 0; i < 10000; ++i) {
    sampler.offer(make_record(static_cast<StratumId>(i % 3), 1.0));
  }
  sampler.take();
  for (int i = 0; i < 10000; ++i) {
    sampler.offer(make_record(static_cast<StratumId>(i % 3), 1.0));
  }
  auto sample = sampler.take();
  EXPECT_NEAR(static_cast<double>(sample.total_sampled()), 3000.0, 3.0);
}

// ---- Distributed merge (paper §3.2 "Distributed execution"): w workers
// sample disjoint sub-streams locally; merging concatenates the per-stratum
// statistics with no synchronisation during sampling.

/// One deterministic pseudo-random stream of `n` records over `strata`
/// strata with per-stratum value offsets (so per-stratum means differ).
std::vector<Record> merge_stream(std::size_t n, std::uint32_t strata,
                                 std::uint64_t seed) {
  streamapprox::Rng rng(seed);
  std::vector<Record> records;
  records.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto stratum = static_cast<StratumId>(rng.uniform_int(strata));
    const double value = 100.0 * (stratum + 1) + rng.uniform(-5.0, 5.0);
    records.push_back(Record{stratum, value, static_cast<std::int64_t>(i)});
  }
  return records;
}

TEST(OasrsMerge, WWaySplitPreservesPerStratumSeenCounts) {
  constexpr std::size_t kWorkers = 4;
  const auto records = merge_stream(40000, 6, 2024);

  // Ground truth: a single sampler over the whole stream.
  OasrsConfig single_config;
  single_config.total_budget = 1200;
  single_config.seed = 5;
  auto single = make_oasrs<Record>(single_config);
  for (const auto& r : records) single.offer(r);
  auto single_sample = single.take();

  // w workers, records routed stratum -> worker (the broker's partition
  // routing): every stratum lives wholly in one worker.
  OasrsConfig worker_config;
  worker_config.total_budget = 1200 / kWorkers;
  std::vector<decltype(make_oasrs<Record>(worker_config))> workers;
  for (std::size_t w = 0; w < kWorkers; ++w) {
    worker_config.seed = 100 + w;
    workers.push_back(make_oasrs<Record>(worker_config));
  }
  for (const auto& r : records) workers[r.stratum % kWorkers].offer(r);

  OasrsConfig merged_config;
  merged_config.total_budget = 1200;
  merged_config.seed = 77;
  auto merged = make_oasrs<Record>(merged_config);
  for (auto& worker : workers) merged.merge(worker);
  auto merged_sample = merged.take();

  ASSERT_EQ(merged_sample.strata.size(), single_sample.strata.size());
  std::unordered_map<StratumId, std::uint64_t> single_seen;
  for (const auto& s : single_sample.strata) single_seen[s.stratum] = s.seen;
  for (const auto& s : merged_sample.strata) {
    ASSERT_TRUE(single_seen.contains(s.stratum));
    EXPECT_EQ(s.seen, single_seen[s.stratum])
        << "stratum " << s.stratum;
    EXPECT_GT(s.items.size(), 0u);
    EXPECT_LE(s.items.size(), s.seen);
    // Eq. 1 weight invariant survives the merge.
    EXPECT_DOUBLE_EQ(
        s.weight,
        s.seen > s.items.size()
            ? static_cast<double>(s.seen) / static_cast<double>(s.items.size())
            : 1.0);
  }
  EXPECT_EQ(merged_sample.total_seen(), records.size());
}

TEST(OasrsMerge, SameStratumReservoirsCombineCounts) {
  // Two workers that saw the SAME stratum (overlapping split): merged seen
  // adds up and the sample stays within capacity.
  OasrsConfig config = fixed_capacity_config(32, 3);
  auto a = make_oasrs<Record>(config);
  config.seed = 4;
  auto b = make_oasrs<Record>(config);
  for (int i = 0; i < 500; ++i) a.offer(make_record(1, 1.0));
  for (int i = 0; i < 300; ++i) b.offer(make_record(1, 2.0));
  a.merge(b);
  auto sample = a.take();
  ASSERT_EQ(sample.strata.size(), 1u);
  EXPECT_EQ(sample.strata[0].seen, 800u);
  EXPECT_LE(sample.strata[0].items.size(), 32u);
  // Items from both sources should be present (binomial slot allocation
  // makes all-one-source astronomically unlikely at these counts).
  bool from_a = false;
  bool from_b = false;
  for (const auto& r : sample.strata[0].items) {
    from_a = from_a || r.value == 1.0;
    from_b = from_b || r.value == 2.0;
  }
  EXPECT_TRUE(from_a);
  EXPECT_TRUE(from_b);
}

TEST(OasrsMerge, MergedEstimateIsUnbiased) {
  // Across many seeds, the merged w-way estimate of the stream MEAN must
  // agree with the single-sampler estimate and with the exact mean.
  constexpr std::size_t kWorkers = 4;
  constexpr int kTrials = 30;
  const auto records = merge_stream(20000, 5, 11);
  double exact = 0.0;
  for (const auto& r : records) exact += r.value;
  exact /= static_cast<double>(records.size());

  double merged_mean_sum = 0.0;
  double single_mean_sum = 0.0;
  for (int trial = 0; trial < kTrials; ++trial) {
    OasrsConfig config;
    config.total_budget = 500;
    config.seed = 1000 + trial;
    auto single = make_oasrs<Record>(config);
    for (const auto& r : records) single.offer(r);
    single_mean_sum +=
        estimation::estimate_mean(
            estimation::summarize(single.take(),
                                  streamapprox::engine::RecordValue{}))
            .estimate;

    std::vector<decltype(make_oasrs<Record>(config))> workers;
    for (std::size_t w = 0; w < kWorkers; ++w) {
      OasrsConfig worker_config;
      worker_config.total_budget = 500 / kWorkers;
      worker_config.seed = 9000 + trial * kWorkers + w;
      workers.push_back(make_oasrs<Record>(worker_config));
    }
    for (const auto& r : records) workers[r.stratum % kWorkers].offer(r);
    OasrsConfig merged_config;
    merged_config.total_budget = 500;
    merged_config.seed = 313 + trial;
    auto merged = make_oasrs<Record>(merged_config);
    for (auto& worker : workers) merged.merge(worker);
    merged_mean_sum +=
        estimation::estimate_mean(
            estimation::summarize(merged.take(),
                                  streamapprox::engine::RecordValue{}))
            .estimate;
  }
  const double merged_mean = merged_mean_sum / kTrials;
  const double single_mean = single_mean_sum / kTrials;
  // Strata means span 100..500; a biased merge would miss by tens.
  EXPECT_NEAR(merged_mean, exact, 2.0);
  EXPECT_NEAR(merged_mean, single_mean, 2.0);
}

TEST(Oasrs, OfferBatchMatchesPerRecordOffer) {
  // offer_batch is the same algorithm with a cached reservoir lookup: with
  // identical seeds the two paths must produce bit-identical samples.
  OasrsConfig config;
  config.total_budget = 64;
  config.seed = 77;
  auto one_by_one = make_oasrs<Record>(config);
  auto batched = make_oasrs<Record>(config);

  std::vector<Record> records;
  for (int i = 0; i < 20000; ++i) {
    // Runs of same-stratum records with occasional switches, including a
    // mid-batch new-stratum discovery.
    records.push_back(make_record(static_cast<StratumId>((i / 37) % 11),
                                  static_cast<double>(i)));
  }
  for (const auto& record : records) one_by_one.offer(record);
  batched.offer_batch(records);

  const auto a = one_by_one.take();
  const auto b = batched.take();
  ASSERT_EQ(a.strata.size(), b.strata.size());
  for (std::size_t s = 0; s < a.strata.size(); ++s) {
    EXPECT_EQ(a.strata[s].stratum, b.strata[s].stratum);
    EXPECT_EQ(a.strata[s].seen, b.strata[s].seen);
    EXPECT_DOUBLE_EQ(a.strata[s].weight, b.strata[s].weight);
    ASSERT_EQ(a.strata[s].items.size(), b.strata[s].items.size());
    for (std::size_t i = 0; i < a.strata[s].items.size(); ++i) {
      EXPECT_EQ(a.strata[s].items[i], b.strata[s].items[i]);
    }
  }
}

TEST(Oasrs, ManyStrataDiscoveryKeepsBudgetInvariant) {
  // The O(S) discovery fast path (skip the re-shrink pass when no reservoir
  // exceeds the new share) must preserve the budget invariant: the total
  // sample never exceeds total_budget no matter how many strata appear.
  OasrsConfig config;
  config.total_budget = 1000;
  config.seed = 5;
  auto sampler = make_oasrs<Record>(config);
  constexpr std::size_t kStrata = 500;
  for (std::size_t round = 0; round < 3; ++round) {
    for (std::size_t s = 0; s < kStrata; ++s) {
      for (int i = 0; i < 4; ++i) {
        sampler.offer(make_record(static_cast<StratumId>(s), 1.0));
      }
    }
    EXPECT_EQ(sampler.stratum_count(), kStrata);
    auto sample = sampler.take();
    EXPECT_EQ(sample.strata.size(), kStrata);
    EXPECT_LE(sample.total_sampled(), config.total_budget);
  }
}

}  // namespace
}  // namespace streamapprox::sampling
