// Parameterised property tests over the samplers: unbiasedness and fairness
// invariants must hold across sampling fractions, skews and seeds
// (TEST_P sweeps, as the paper's claims are about whole parameter ranges).
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/stats.h"
#include "engine/record.h"
#include "sampling/oasrs.h"
#include "sampling/scasrs.h"
#include "sampling/sts.h"

namespace streamapprox::sampling {
namespace {

using streamapprox::engine::Record;
using streamapprox::engine::RecordStratum;

// Three strata with very different means; stratum 2 is rare but dominant in
// value — the paper's recurring stress shape.
std::vector<Record> skewed_stream(std::size_t n, std::uint64_t seed) {
  streamapprox::Rng rng(seed);
  std::vector<Record> records;
  records.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double u = rng.uniform();
    StratumId stratum = u < 0.80 ? 0 : (u < 0.99 ? 1 : 2);
    const double mean = stratum == 0 ? 100.0 : stratum == 1 ? 1000.0
                                                            : 10000.0;
    records.push_back(
        Record{stratum, rng.gaussian(mean, mean / 10.0), 0});
  }
  return records;
}

double exact_sum(const std::vector<Record>& records) {
  double sum = 0.0;
  for (const auto& record : records) sum += record.value;
  return sum;
}

// ---------------------------------------------------------------- OASRS

class OasrsFractionProperty
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(OasrsFractionProperty, WeightedSumWithinThreeSigma) {
  const auto [fraction, seed] = GetParam();
  const auto records = skewed_stream(40000, seed);
  OasrsConfig config;
  config.total_budget =
      static_cast<std::size_t>(fraction * static_cast<double>(records.size()));
  config.seed = seed * 31 + 7;
  auto sampler = make_oasrs<Record>(config);
  for (const auto& record : records) sampler.offer(record);
  const auto sample = sampler.take();

  double approx = 0.0;
  for (const auto& stratum : sample.strata) {
    double sum = 0.0;
    for (const auto& record : stratum.items) sum += record.value;
    approx += sum * stratum.weight;
  }
  const double exact = exact_sum(records);
  // A generous bound: the estimate must land within 10% — far looser than
  // 3 sigma for these sizes, but robust for every (fraction, seed) cell.
  EXPECT_NEAR(approx, exact, exact * 0.10)
      << "fraction=" << fraction << " seed=" << seed;
}

TEST_P(OasrsFractionProperty, EveryStratumRepresented) {
  const auto [fraction, seed] = GetParam();
  const auto records = skewed_stream(40000, seed);
  OasrsConfig config;
  config.total_budget =
      static_cast<std::size_t>(fraction * static_cast<double>(records.size()));
  config.seed = seed * 131 + 3;
  auto sampler = make_oasrs<Record>(config);
  for (const auto& record : records) sampler.offer(record);
  const auto sample = sampler.take();
  ASSERT_EQ(sample.strata.size(), 3u);
  for (const auto& stratum : sample.strata) {
    EXPECT_GT(stratum.items.size(), 0u)
        << "stratum " << stratum.stratum << " overlooked at fraction "
        << fraction;
  }
}

TEST_P(OasrsFractionProperty, SampleSizeRespectsBudget) {
  const auto [fraction, seed] = GetParam();
  const auto records = skewed_stream(40000, seed);
  OasrsConfig config;
  config.total_budget =
      static_cast<std::size_t>(fraction * static_cast<double>(records.size()));
  config.seed = seed;
  auto sampler = make_oasrs<Record>(config);
  for (const auto& record : records) sampler.offer(record);
  const auto sample = sampler.take();
  EXPECT_LE(sample.total_sampled(), config.total_budget + 3);
}

INSTANTIATE_TEST_SUITE_P(
    FractionsAndSeeds, OasrsFractionProperty,
    ::testing::Combine(::testing::Values(0.1, 0.2, 0.4, 0.6, 0.8),
                       ::testing::Values(11u, 29u, 47u)));

// ----------------------------------------------------------------- ScaSRS

class ScaSrsFractionProperty : public ::testing::TestWithParam<double> {};

TEST_P(ScaSrsFractionProperty, ExactSizeAndUnbiasedSum) {
  const double fraction = GetParam();
  const auto records = skewed_stream(30000, 97);
  streamapprox::Rng rng(1234);
  const auto result = scasrs_sample(records, fraction, rng);
  const auto expected = static_cast<std::size_t>(
      fraction * static_cast<double>(records.size()));
  EXPECT_EQ(result.items.size(), std::max<std::size_t>(1, expected));

  double approx = 0.0;
  for (const auto& record : result.items) approx += record.value;
  approx *= result.weight;
  const double exact = exact_sum(records);
  // SRS on this skew has high variance at small fractions; allow 25%.
  EXPECT_NEAR(approx, exact, exact * 0.25) << "fraction " << fraction;
}

INSTANTIATE_TEST_SUITE_P(Fractions, ScaSrsFractionProperty,
                         ::testing::Values(0.1, 0.2, 0.4, 0.6, 0.8, 0.9));

// -------------------------------------------------------------------- STS

class StsFractionProperty : public ::testing::TestWithParam<double> {};

TEST_P(StsFractionProperty, PerStratumSumsUnbiased) {
  const double fraction = GetParam();
  const auto records = skewed_stream(30000, 53);
  std::unordered_map<StratumId, double> exact;
  for (const auto& record : records) exact[record.stratum] += record.value;

  streamapprox::Rng rng(4321);
  const auto sample =
      sts_sample_local(records, RecordStratum{}, fraction, rng, true);
  for (const auto& stratum : sample.strata) {
    double approx = 0.0;
    for (const auto& record : stratum.items) approx += record.value;
    approx *= stratum.weight;
    const double truth = exact[stratum.stratum];
    EXPECT_NEAR(approx, truth, truth * 0.15)
        << "stratum " << stratum.stratum << " fraction " << fraction;
  }
}

INSTANTIATE_TEST_SUITE_P(Fractions, StsFractionProperty,
                         ::testing::Values(0.1, 0.3, 0.6, 0.9));

// ----------------------------------------------- Fairness comparison (§5.7)

TEST(FairnessProperty, OasrsBeatsSrsOnRareDominantStratum) {
  // The paper's central qualitative claim: on long-tail data the rare but
  // significant sub-stream is preserved by OASRS and lost by SRS, so the
  // OASRS mean estimate is systematically closer. Averaged over seeds to be
  // statistically robust.
  double oasrs_err_total = 0.0;
  double srs_err_total = 0.0;
  constexpr int kTrials = 10;
  for (int t = 0; t < kTrials; ++t) {
    streamapprox::Rng rng(7000 + t);
    std::vector<Record> records;
    for (int i = 0; i < 50000; ++i) {
      const double u = rng.uniform();
      // 0.05% stratum with values 1e8 — dominates the true mean.
      StratumId stratum = u < 0.9995 ? 0 : 1;
      const double value = stratum == 0 ? rng.gaussian(10.0, 3.0)
                                        : rng.gaussian(1e8, 1e6);
      records.push_back(Record{stratum, value, 0});
    }
    double exact = 0.0;
    for (const auto& record : records) exact += record.value;
    exact /= static_cast<double>(records.size());

    // OASRS at 10% budget.
    OasrsConfig config;
    config.total_budget = records.size() / 10;
    config.seed = 900 + t;
    auto sampler = make_oasrs<Record>(config);
    for (const auto& record : records) sampler.offer(record);
    const auto sample = sampler.take();
    double oasrs_sum = 0.0;
    double oasrs_count = 0.0;
    for (const auto& stratum : sample.strata) {
      double sum = 0.0;
      for (const auto& record : stratum.items) sum += record.value;
      oasrs_sum += sum * stratum.weight;
      oasrs_count += static_cast<double>(stratum.seen);
    }
    const double oasrs_mean = oasrs_sum / oasrs_count;

    // SRS at the same 10%.
    const auto srs = scasrs_sample(records, 0.1, rng);
    double srs_mean = 0.0;
    for (const auto& record : srs.items) srs_mean += record.value;
    srs_mean /= static_cast<double>(srs.items.size());

    oasrs_err_total += streamapprox::relative_error(oasrs_mean, exact);
    srs_err_total += streamapprox::relative_error(srs_mean, exact);
  }
  EXPECT_LT(oasrs_err_total / kTrials, srs_err_total / kTrials);
  EXPECT_LT(oasrs_err_total / kTrials, 0.02);
}

}  // namespace
}  // namespace streamapprox::sampling
