// Kernel equivalence: the exchange's two-pass bulk routing kernel
// (bulk_routing=true) must be bit-identical to the legacy record-at-a-time
// loop on every externally observable axis — per-channel record order,
// StratumRun descriptors, route_strata/total_strata occupancy stamps, and
// the watermark/heartbeat sequence. On a pre-loaded SEALED topic the
// exchange's round structure is deterministic (every poll drains batch_size
// records per partition until exhaustion, with no idle rounds), so the two
// paths can be compared as full transcripts, batch by batch.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "engine/record_batch.h"
#include "ingest/broker.h"
#include "ingest/exchange.h"

namespace streamapprox::ingest {
namespace {

/// Everything a receiver can observe about one batch.
struct BatchTranscript {
  std::uint64_t seq = 0;
  std::uint32_t channel = 0;
  bool heartbeat = false;
  std::int64_t watermark_us = 0;
  std::uint32_t route_strata = 0;
  std::uint32_t total_strata = 0;
  std::vector<engine::Record> records;
  std::vector<engine::StratumRun> runs;
};

struct ExchangeRun {
  std::vector<std::vector<BatchTranscript>> channels;
  ExchangeStats stats;
  std::uint64_t batches_emitted = 0;
  std::uint64_t heartbeats_emitted = 0;
  std::uint64_t records_routed = 0;
  std::int64_t max_routed_event_us = engine::kNoWatermark;
};

/// Loads `records` into a sealed `partitions`-way topic and runs one
/// exchange over it, capturing the full per-channel transcript.
ExchangeRun run_exchange(const std::vector<engine::Record>& records,
                         std::size_t partitions, ExchangeConfig config) {
  Broker broker;
  broker.create_topic("t", partitions);
  Producer producer(broker, "t");
  producer.send_batch(records);
  producer.finish();

  Exchange exchange(broker, "t", config);
  std::thread runner([&] { exchange.run(); });

  ExchangeRun out;
  out.channels.resize(config.workers);
  for (;;) {
    bool all_drained = true;
    for (std::size_t w = 0; w < config.workers; ++w) {
      while (auto batch = exchange.pop(w)) {
        BatchTranscript entry;
        entry.seq = batch->seq;
        entry.channel = batch->channel;
        entry.heartbeat = batch->heartbeat;
        entry.watermark_us = batch->watermark_us;
        entry.route_strata = batch->route_strata;
        entry.total_strata = batch->total_strata;
        entry.records = batch->records;
        entry.runs = batch->stratum_runs;
        out.channels[w].push_back(std::move(entry));
        exchange.recycle(std::move(batch));
      }
      all_drained = all_drained && exchange.drained(w);
    }
    if (all_drained) break;
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  runner.join();

  out.stats = exchange.stats();
  out.batches_emitted = exchange.batches_emitted();
  out.heartbeats_emitted = exchange.heartbeats_emitted();
  out.records_routed = exchange.records_routed();
  out.max_routed_event_us = exchange.max_routed_event_us();
  return out;
}

/// Runs the same topic through both kernels.
std::pair<ExchangeRun, ExchangeRun> run_both(
    const std::vector<engine::Record>& records, std::size_t partitions,
    ExchangeConfig config) {
  config.bulk_routing = true;
  auto bulk = run_exchange(records, partitions, config);
  config.bulk_routing = false;
  auto legacy = run_exchange(records, partitions, config);
  return {std::move(bulk), std::move(legacy)};
}

void expect_identical(const ExchangeRun& bulk, const ExchangeRun& legacy,
                      const std::string& label) {
  ASSERT_EQ(bulk.channels.size(), legacy.channels.size()) << label;
  for (std::size_t w = 0; w < bulk.channels.size(); ++w) {
    const auto& b = bulk.channels[w];
    const auto& l = legacy.channels[w];
    ASSERT_EQ(b.size(), l.size()) << label << " channel " << w;
    for (std::size_t i = 0; i < b.size(); ++i) {
      const std::string at =
          label + " channel " + std::to_string(w) + " batch " +
          std::to_string(i);
      EXPECT_EQ(b[i].seq, l[i].seq) << at;
      EXPECT_EQ(b[i].channel, l[i].channel) << at;
      EXPECT_EQ(b[i].heartbeat, l[i].heartbeat) << at;
      EXPECT_EQ(b[i].watermark_us, l[i].watermark_us) << at;
      EXPECT_EQ(b[i].route_strata, l[i].route_strata) << at;
      EXPECT_EQ(b[i].total_strata, l[i].total_strata) << at;
      ASSERT_EQ(b[i].records, l[i].records) << at;
      ASSERT_EQ(b[i].runs.size(), l[i].runs.size()) << at;
      for (std::size_t r = 0; r < b[i].runs.size(); ++r) {
        EXPECT_EQ(b[i].runs[r].offset, l[i].runs[r].offset) << at;
        EXPECT_EQ(b[i].runs[r].length, l[i].runs[r].length) << at;
        EXPECT_EQ(b[i].runs[r].stratum, l[i].runs[r].stratum) << at;
      }
    }
  }
  EXPECT_EQ(bulk.batches_emitted, legacy.batches_emitted) << label;
  EXPECT_EQ(bulk.heartbeats_emitted, legacy.heartbeats_emitted) << label;
  EXPECT_EQ(bulk.records_routed, legacy.records_routed) << label;
  EXPECT_EQ(bulk.max_routed_event_us, legacy.max_routed_event_us) << label;
  EXPECT_EQ(bulk.stats.rounds, legacy.stats.rounds) << label;
  EXPECT_EQ(bulk.stats.records, legacy.stats.records) << label;
}

/// Record stream with geometric-ish run lengths over `strata` strata:
/// Zipf-skewed stratum choice repeated for a random run length, so the mix
/// covers length-1 runs and long runs in one stream.
std::vector<engine::Record> run_length_mix(std::size_t count,
                                           std::uint64_t strata, double skew,
                                           std::size_t max_run,
                                           std::uint64_t seed) {
  Rng rng(seed);
  std::vector<engine::Record> records;
  records.reserve(count);
  while (records.size() < count) {
    const auto stratum =
        static_cast<sampling::StratumId>(rng.zipf(strata, skew));
    const std::size_t run = 1 + rng.uniform_int(max_run);
    for (std::size_t i = 0; i < run && records.size() < count; ++i) {
      engine::Record record;
      record.stratum = stratum;
      record.value = static_cast<double>(records.size());
      record.event_time_us =
          static_cast<std::int64_t>(records.size()) * 100 +
          static_cast<std::int64_t>(rng.uniform_int(50));
      records.push_back(record);
    }
  }
  return records;
}

TEST(ExchangeKernel, IdenticalOnRandomizedRunLengthMixes) {
  struct Case {
    std::uint64_t strata;
    double skew;
    std::size_t max_run;
    std::size_t partitions;
    std::size_t workers;
    std::size_t batch_size;
  };
  const Case cases[] = {
      {3, 0.0, 1, 1, 1, 64},      // every run length 1, single channel
      {17, 0.0, 4, 2, 3, 64},     // short runs, uneven partition split
      {64, 1.2, 16, 2, 3, 1024},  // skewed, medium runs
      {64, 1.2, 64, 5, 8, 256},   // long runs over many partitions
      {257, 0.8, 8, 3, 8, 128},   // more strata than table's initial slots
  };
  std::uint64_t seed = 1;
  for (const auto& c : cases) {
    const auto records = run_length_mix(20'000, c.strata, c.skew, c.max_run,
                                        seed++);
    ExchangeConfig config;
    config.workers = c.workers;
    config.batch_size = c.batch_size;
    const auto [bulk, legacy] = run_both(records, c.partitions, config);
    expect_identical(bulk, legacy,
                     "strata=" + std::to_string(c.strata) +
                         " workers=" + std::to_string(c.workers));
  }
}

TEST(ExchangeKernel, IdenticalOnStratumSortedStream) {
  // The best case for the bulk kernel: one run per stratum block.
  std::vector<engine::Record> records;
  for (sampling::StratumId s = 0; s < 64; ++s) {
    for (int i = 0; i < 500; ++i) {
      engine::Record record;
      record.stratum = s;
      record.value = static_cast<double>(records.size());
      record.event_time_us = static_cast<std::int64_t>(records.size());
      records.push_back(record);
    }
  }
  ExchangeConfig config;
  config.workers = 4;
  config.batch_size = 512;
  const auto [bulk, legacy] = run_both(records, 2, config);
  expect_identical(bulk, legacy, "sorted");
}

TEST(ExchangeKernel, IdenticalOnSingleRecordAndEmptyTopics) {
  ExchangeConfig config;
  config.workers = 3;

  engine::Record record;
  record.stratum = 9;
  record.value = 1.0;
  record.event_time_us = 123;
  {
    const auto [bulk, legacy] =
        run_both(std::vector<engine::Record>{record}, 2, config);
    expect_identical(bulk, legacy, "single-record");
  }
  {
    const auto [bulk, legacy] = run_both({}, 2, config);
    expect_identical(bulk, legacy, "empty-topic");
  }
}

TEST(ExchangeKernel, StatsAccountForBulkWorkAndStayZeroOnLegacy) {
  // Skew 0.9, not 1.0: Rng::zipf hits the rejection-inversion singularity
  // at s == 1 and collapses to a single stratum, which would route every
  // scratch through the pass-through swap (no reserves to count).
  const auto records = run_length_mix(30'000, 64, 0.9, 16, 99);
  ExchangeConfig config;
  config.workers = 4;
  config.batch_size = 512;
  const auto [bulk, legacy] = run_both(records, 2, config);

  // Both paths account rounds and records at poll time.
  EXPECT_GT(bulk.stats.rounds, 0u);
  EXPECT_EQ(bulk.stats.records, records.size());
  EXPECT_EQ(legacy.stats.records, records.size());

  // The bulk kernel's aggregate steps are counted...
  EXPECT_GT(bulk.stats.runs, 0u);
  EXPECT_GT(bulk.stats.table_probes, 0u);
  EXPECT_GT(bulk.stats.scatter_reserves, 0u);
  // ...and are genuinely sub-record: runs (hence table probe chains) must
  // be far fewer than records on this run-friendly mix.
  EXPECT_LT(bulk.stats.runs, bulk.stats.records);

  // The legacy loop has no such aggregate steps to count.
  EXPECT_EQ(legacy.stats.runs, 0u);
  EXPECT_EQ(legacy.stats.table_probes, 0u);
  EXPECT_EQ(legacy.stats.scatter_reserves, 0u);
}

}  // namespace
}  // namespace streamapprox::ingest
