// Tests for the StreamApprox facade: live broker consumption, window
// outputs with error bounds, budget kinds, adaptive feedback.
#include "core/stream_approx.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "ingest/replay.h"
#include "workload/synthetic.h"

namespace streamapprox::core {
namespace {

std::vector<engine::Record> make_stream(double seconds, double rate,
                                        std::uint64_t seed) {
  workload::SyntheticStream stream(workload::gaussian_substreams(rate), seed);
  return stream.generate(seconds);
}

StreamApproxConfig base_config() {
  StreamApproxConfig config;
  config.topic = "input";
  config.window = {1'000'000, 500'000};
  config.query = {Aggregation::kMean, false};
  // Idleness is not under test here and every stream is replayed-and-sealed;
  // a generous grace keeps a starved replay thread on a loaded CI box from
  // tripping the idleness rule mid-stream.
  config.idle_partition_timeout_ms = 30'000;
  return config;
}

TEST(StreamApprox, RequiresExistingTopic) {
  ingest::Broker broker;
  EXPECT_THROW(StreamApprox(broker, base_config()), std::out_of_range);
}

TEST(StreamApprox, ProducesWindowsWithBounds) {
  ingest::Broker broker;
  broker.create_topic("input", 3);
  const auto records = make_stream(4.0, 20000.0, 1);
  ingest::ReplayTool replay(broker, "input", records, {});
  StreamApprox system(broker, base_config());
  std::vector<WindowOutput> outputs;
  system.run([&](const WindowOutput& output) { outputs.push_back(output); });
  replay.wait();

  ASSERT_GE(outputs.size(), 5u);
  for (const auto& output : outputs) {
    EXPECT_GT(output.records_seen, 0u);
    EXPECT_GT(output.records_sampled, 0u);
    EXPECT_LE(output.records_sampled, output.records_seen);
    EXPECT_GT(output.estimate.overall.estimate, 0.0);
  }
}

TEST(StreamApprox, MeanWithinErrorBoundMostWindows) {
  ingest::Broker broker;
  broker.create_topic("input", 3);
  const auto records = make_stream(5.0, 20000.0, 2);
  // True mean of the Gaussian mix = (10+1000+10000)/3 ≈ 3670.
  ingest::ReplayTool replay(broker, "input", records, {});
  auto config = base_config();
  config.budget = estimation::QueryBudget::fraction(0.5);
  StreamApprox system(broker, config);
  int within = 0;
  int total = 0;
  system.run([&](const WindowOutput& output) {
    ++total;
    const auto interval = output.estimate.overall.interval(3.0);
    if (interval.contains(3670.0)) ++within;
  });
  replay.wait();
  ASSERT_GT(total, 0);
  // 3-sigma coverage should be nearly always; allow some slack for the
  // noisy small first/last windows.
  EXPECT_GE(static_cast<double>(within) / total, 0.7);
}

TEST(StreamApprox, FractionBudgetControlsSampleSize) {
  ingest::Broker broker;
  broker.create_topic("input", 3);
  const auto records = make_stream(4.0, 20000.0, 3);
  ingest::ReplayTool replay(broker, "input", records, {});
  auto config = base_config();
  config.budget = estimation::QueryBudget::fraction(0.1);
  StreamApprox system(broker, config);
  std::uint64_t seen = 0;
  std::uint64_t sampled = 0;
  system.run([&](const WindowOutput& output) {
    seen += output.records_seen;
    sampled += output.records_sampled;
  });
  replay.wait();
  ASSERT_GT(seen, 0u);
  // After the first adaptation, the sampled share should be near 10%.
  const double fraction = static_cast<double>(sampled) / seen;
  EXPECT_LT(fraction, 0.25);
}

TEST(StreamApprox, AccuracyBudgetAdaptsBudgetUpward) {
  ingest::Broker broker;
  broker.create_topic("input", 3);
  // High-variance stream + tight accuracy target => budget must grow from
  // its initial 1024.
  const auto records = make_stream(6.0, 30000.0, 4);
  ingest::ReplayTool replay(broker, "input", records, {});
  auto config = base_config();
  config.budget = estimation::QueryBudget::relative_error(0.001);
  StreamApprox system(broker, config);
  std::vector<std::size_t> budgets;
  system.run([&](const WindowOutput& output) {
    budgets.push_back(output.budget_in_force);
  });
  replay.wait();
  ASSERT_GE(budgets.size(), 3u);
  EXPECT_GT(budgets.back(), budgets.front());
}

TEST(StreamApprox, MultiQueryRegistrySharesOneSampledStream) {
  // Three registered queries (mixed aggregations, one per-stratum, one
  // histogram) over one topic: every window output carries all three
  // results, and the sampling counters equal a single-query run's — the
  // stream is consumed and sampled exactly once.
  const auto records = make_stream(4.0, 20000.0, 6);

  const auto run = [&](const std::function<void(StreamApproxConfig&)>& mutate) {
    ingest::Broker broker;
    broker.create_topic("input", 3);
    ingest::ReplayTool replay(broker, "input", records, {});
    auto config = base_config();
    mutate(config);
    StreamApprox system(broker, config);
    std::vector<WindowOutput> outputs;
    system.run([&](const WindowOutput& output) { outputs.push_back(output); });
    replay.wait();
    return outputs;
  };

  const auto multi = run([](StreamApproxConfig& config) {
    config.queries.aggregate("sum by substream", {Aggregation::kSum, true});
    config.queries.aggregate("overall mean", {Aggregation::kMean, false});
    config.queries.histogram("values", {0.0, 12000.0, 24});
  });
  const auto single = run([](StreamApproxConfig& config) {
    config.queries.aggregate("overall mean", {Aggregation::kMean, false});
  });

  ASSERT_GE(multi.size(), 5u);
  ASSERT_EQ(multi.size(), single.size());
  for (std::size_t i = 0; i < multi.size(); ++i) {
    ASSERT_EQ(multi[i].queries.size(), 3u);
    EXPECT_EQ(multi[i].queries[0].name, "sum by substream");
    EXPECT_FALSE(multi[i].queries[0].estimate.groups.empty());
    EXPECT_TRUE(multi[i].queries[1].estimate.groups.empty());
    EXPECT_TRUE(multi[i].queries[2].histogram.has_value());
    // Sampled once: every record is SEEN exactly once per window whether 1
    // or 3 queries are registered. (Sampled counts and estimates are
    // compared bit-exactly in pipeline_driver_test, which drives the driver
    // deterministically; through the live broker the moment a slide's
    // sampler picks up the adapting budget is poll-timing-dependent.)
    EXPECT_EQ(multi[i].records_seen, single[i].records_seen) << "window " << i;
    EXPECT_EQ(multi[i].estimate.window_end_us, single[i].estimate.window_end_us)
        << "window " << i;
    // The two runs estimate the same window mean: agreement within summed
    // 3-sigma bounds.
    const auto& a = multi[i].queries[1].estimate.overall;
    const auto& b = single[i].queries[0].estimate.overall;
    EXPECT_LE(std::abs(a.estimate - b.estimate),
              a.error_bound(3.0) + b.error_bound(3.0))
        << "window " << i;
  }
}

TEST(StreamApprox, PerStratumQuery) {
  ingest::Broker broker;
  broker.create_topic("input", 3);
  const auto records = make_stream(3.0, 20000.0, 5);
  ingest::ReplayTool replay(broker, "input", records, {});
  auto config = base_config();
  config.query = {Aggregation::kMean, true};
  StreamApprox system(broker, config);
  std::size_t windows_with_all_groups = 0;
  std::size_t total = 0;
  system.run([&](const WindowOutput& output) {
    ++total;
    if (output.estimate.groups.size() == 3) ++windows_with_all_groups;
  });
  replay.wait();
  ASSERT_GT(total, 0u);
  EXPECT_EQ(windows_with_all_groups, total);  // no sub-stream overlooked
}

}  // namespace
}  // namespace streamapprox::core
