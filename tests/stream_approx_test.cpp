// Tests for the StreamApprox facade: live broker consumption, window
// outputs with error bounds, budget kinds, adaptive feedback.
#include "core/stream_approx.h"

#include <gtest/gtest.h>

#include "ingest/replay.h"
#include "workload/synthetic.h"

namespace streamapprox::core {
namespace {

std::vector<engine::Record> make_stream(double seconds, double rate,
                                        std::uint64_t seed) {
  workload::SyntheticStream stream(workload::gaussian_substreams(rate), seed);
  return stream.generate(seconds);
}

StreamApproxConfig base_config() {
  StreamApproxConfig config;
  config.topic = "input";
  config.window = {1'000'000, 500'000};
  config.query = {Aggregation::kMean, false};
  // Idleness is not under test here and every stream is replayed-and-sealed;
  // a generous grace keeps a starved replay thread on a loaded CI box from
  // tripping the idleness rule mid-stream.
  config.idle_partition_timeout_ms = 30'000;
  return config;
}

TEST(StreamApprox, RequiresExistingTopic) {
  ingest::Broker broker;
  EXPECT_THROW(StreamApprox(broker, base_config()), std::out_of_range);
}

TEST(StreamApprox, ProducesWindowsWithBounds) {
  ingest::Broker broker;
  broker.create_topic("input", 3);
  const auto records = make_stream(4.0, 20000.0, 1);
  ingest::ReplayTool replay(broker, "input", records, {});
  StreamApprox system(broker, base_config());
  std::vector<WindowOutput> outputs;
  system.run([&](const WindowOutput& output) { outputs.push_back(output); });
  replay.wait();

  ASSERT_GE(outputs.size(), 5u);
  for (const auto& output : outputs) {
    EXPECT_GT(output.records_seen, 0u);
    EXPECT_GT(output.records_sampled, 0u);
    EXPECT_LE(output.records_sampled, output.records_seen);
    EXPECT_GT(output.estimate.overall.estimate, 0.0);
  }
}

TEST(StreamApprox, MeanWithinErrorBoundMostWindows) {
  ingest::Broker broker;
  broker.create_topic("input", 3);
  const auto records = make_stream(5.0, 20000.0, 2);
  // True mean of the Gaussian mix = (10+1000+10000)/3 ≈ 3670.
  ingest::ReplayTool replay(broker, "input", records, {});
  auto config = base_config();
  config.budget = estimation::QueryBudget::fraction(0.5);
  StreamApprox system(broker, config);
  int within = 0;
  int total = 0;
  system.run([&](const WindowOutput& output) {
    ++total;
    const auto interval = output.estimate.overall.interval(3.0);
    if (interval.contains(3670.0)) ++within;
  });
  replay.wait();
  ASSERT_GT(total, 0);
  // 3-sigma coverage should be nearly always; allow some slack for the
  // noisy small first/last windows.
  EXPECT_GE(static_cast<double>(within) / total, 0.7);
}

TEST(StreamApprox, FractionBudgetControlsSampleSize) {
  ingest::Broker broker;
  broker.create_topic("input", 3);
  const auto records = make_stream(4.0, 20000.0, 3);
  ingest::ReplayTool replay(broker, "input", records, {});
  auto config = base_config();
  config.budget = estimation::QueryBudget::fraction(0.1);
  StreamApprox system(broker, config);
  std::uint64_t seen = 0;
  std::uint64_t sampled = 0;
  system.run([&](const WindowOutput& output) {
    seen += output.records_seen;
    sampled += output.records_sampled;
  });
  replay.wait();
  ASSERT_GT(seen, 0u);
  // After the first adaptation, the sampled share should be near 10%.
  const double fraction = static_cast<double>(sampled) / seen;
  EXPECT_LT(fraction, 0.25);
}

TEST(StreamApprox, AccuracyBudgetAdaptsBudgetUpward) {
  ingest::Broker broker;
  broker.create_topic("input", 3);
  // High-variance stream + tight accuracy target => budget must grow from
  // its initial 1024.
  const auto records = make_stream(6.0, 30000.0, 4);
  ingest::ReplayTool replay(broker, "input", records, {});
  auto config = base_config();
  config.budget = estimation::QueryBudget::relative_error(0.001);
  StreamApprox system(broker, config);
  std::vector<std::size_t> budgets;
  system.run([&](const WindowOutput& output) {
    budgets.push_back(output.budget_in_force);
  });
  replay.wait();
  ASSERT_GE(budgets.size(), 3u);
  EXPECT_GT(budgets.back(), budgets.front());
}

TEST(StreamApprox, PerStratumQuery) {
  ingest::Broker broker;
  broker.create_topic("input", 3);
  const auto records = make_stream(3.0, 20000.0, 5);
  ingest::ReplayTool replay(broker, "input", records, {});
  auto config = base_config();
  config.query = {Aggregation::kMean, true};
  StreamApprox system(broker, config);
  std::size_t windows_with_all_groups = 0;
  std::size_t total = 0;
  system.run([&](const WindowOutput& output) {
    ++total;
    if (output.estimate.groups.size() == 3) ++windows_with_all_groups;
  });
  replay.wait();
  ASSERT_GT(total, 0u);
  EXPECT_EQ(windows_with_all_groups, total);  // no sub-stream overlooked
}

}  // namespace
}  // namespace streamapprox::core
