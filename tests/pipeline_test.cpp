// Tests for the pipelined (Flink-like) dataflow runtime and its aggregators.
#include "engine/pipelined/dataflow.h"

#include <gtest/gtest.h>

#include "engine/pipelined/aggregators.h"

namespace streamapprox::engine::pipelined {
namespace {

std::vector<Record> steady_stream(std::size_t n, std::int64_t spacing_us,
                                  std::uint32_t strata = 2) {
  std::vector<Record> records;
  records.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    records.push_back(Record{static_cast<sampling::StratumId>(i % strata),
                             static_cast<double>(i % 10),
                             static_cast<std::int64_t>(i) * spacing_us});
  }
  return records;
}

PipelineConfig make_config(std::size_t parallelism = 2) {
  PipelineConfig config;
  config.parallelism = parallelism;
  config.window = {200'000, 100'000};
  return config;
}

AggregatorFactory exact_factory() {
  return [](std::size_t) {
    return std::make_unique<ExactSlideAggregator>(QueryCost{});
  };
}

TEST(Pipeline, ExactAggregationCountsEverything) {
  const auto records = steady_stream(10000, 100);  // 1s of stream
  auto result = run_pipeline(records, make_config(4), exact_factory());
  EXPECT_EQ(result.records_processed, records.size());
  ASSERT_FALSE(result.windows.empty());
  // Full windows are 200ms = 2000 records.
  for (const auto& window : result.windows) {
    std::uint64_t total = 0;
    for (const auto& cell : window.cells) total += cell.seen;
    EXPECT_EQ(total, 2000u);
  }
}

TEST(Pipeline, WindowSumsMatchDirectComputation) {
  const auto records = steady_stream(10000, 100);
  auto result = run_pipeline(records, make_config(3), exact_factory());
  // Values cycle 0..9, so any 2000-record window sums to 2000/10 * 45.
  for (const auto& window : result.windows) {
    double sum = 0.0;
    for (const auto& cell : window.cells) sum += cell.sum;
    EXPECT_NEAR(sum, 9000.0, 50.0);
  }
}

TEST(Pipeline, SingleWorker) {
  const auto records = steady_stream(5000, 100);
  auto result = run_pipeline(records, make_config(1), exact_factory());
  EXPECT_EQ(result.records_processed, 5000u);
  EXPECT_FALSE(result.windows.empty());
}

TEST(Pipeline, EmptyStreamProducesNoFullWindows) {
  auto result = run_pipeline({}, make_config(2), exact_factory());
  EXPECT_EQ(result.records_processed, 0u);
}

TEST(Pipeline, TumblingWindows) {
  PipelineConfig config;
  config.parallelism = 2;
  config.window = {100'000, 100'000};
  const auto records = steady_stream(1000, 1000);  // 1s, 100 per slide
  auto result = run_pipeline(records, config, exact_factory());
  ASSERT_GE(result.windows.size(), 9u);
  for (const auto& window : result.windows) {
    std::uint64_t total = 0;
    for (const auto& cell : window.cells) total += cell.seen;
    EXPECT_EQ(total, 100u);
  }
}

TEST(Pipeline, OasrsAggregatorSamplesWithinBudget) {
  const auto records = steady_stream(20000, 100, 4);
  PipelineConfig config = make_config(2);
  auto factory = [](std::size_t w) {
    sampling::OasrsConfig oasrs;
    oasrs.total_budget = 200;  // per worker per slide
    oasrs.seed = 100 + w;
    return std::make_unique<OasrsSlideAggregator>(oasrs, QueryCost{});
  };
  auto result = run_pipeline(records, config, factory);
  ASSERT_FALSE(result.windows.empty());
  for (const auto& window : result.windows) {
    std::uint64_t seen = 0;
    std::uint64_t sampled = 0;
    for (const auto& cell : window.cells) {
      seen += cell.seen;
      sampled += cell.sampled;
    }
    // Counters see everything: 100 ms slides over 100 us spacing = 1000
    // records/slide, 2 slides/window. Samples respect the per-worker
    // per-slide budget: 2 workers * 2 slides * 200.
    EXPECT_EQ(seen, 2000u);
    EXPECT_LE(sampled, 2u * 2u * 200u + 8u);
    EXPECT_GT(sampled, 0u);
  }
}

TEST(Pipeline, OasrsWeightedSumTracksExact) {
  const auto records = steady_stream(50000, 20, 3);
  PipelineConfig config = make_config(4);
  auto exact = run_pipeline(records, config, exact_factory());
  auto factory = [](std::size_t w) {
    sampling::OasrsConfig oasrs;
    oasrs.total_budget = 400;
    oasrs.seed = 7'000 + w;
    return std::make_unique<OasrsSlideAggregator>(oasrs, QueryCost{});
  };
  auto approx = run_pipeline(records, config, factory);
  ASSERT_EQ(exact.windows.size(), approx.windows.size());
  for (std::size_t i = 0; i < exact.windows.size(); ++i) {
    double exact_sum = 0.0;
    for (const auto& cell : exact.windows[i].cells) exact_sum += cell.sum;
    double approx_sum = 0.0;
    for (const auto& cell : approx.windows[i].cells) {
      approx_sum += cell.sum * cell.weight;
    }
    EXPECT_NEAR(approx_sum, exact_sum, exact_sum * 0.15)
        << "window " << i;
  }
}

TEST(ExactAggregator, PerStratumCells) {
  ExactSlideAggregator aggregator{QueryCost{}};
  aggregator.offer({3, 1.0, 0});
  aggregator.offer({3, 2.0, 0});
  aggregator.offer({5, 10.0, 0});
  auto cells = aggregator.take_slide();
  ASSERT_EQ(cells.size(), 2u);
  for (const auto& cell : cells) {
    if (cell.stratum == 3) {
      EXPECT_EQ(cell.seen, 2u);
      EXPECT_DOUBLE_EQ(cell.sum, 3.0);
      EXPECT_DOUBLE_EQ(cell.weight, 1.0);
    } else {
      EXPECT_EQ(cell.stratum, 5u);
      EXPECT_EQ(cell.seen, 1u);
    }
  }
  // Slide reset.
  EXPECT_TRUE(aggregator.take_slide().empty());
}

TEST(QueryCostModel, ChargeIsNearIdentityButNotFree) {
  QueryCost cost{64};
  const double x = cost.charge(123.456);
  EXPECT_NEAR(x, 123.456, 1e-6);
  QueryCost free{0};
  EXPECT_EQ(free.charge(5.0), 5.0);
}

}  // namespace
}  // namespace streamapprox::engine::pipelined
