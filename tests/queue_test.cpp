// Concurrency tests for BoundedQueue (MPMC) and SpscRing.
#include "common/queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

namespace streamapprox {
namespace {

TEST(BoundedQueue, PushPopSingleThread) {
  BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.push(1));
  EXPECT_TRUE(queue.push(2));
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.pop().value(), 1);
  EXPECT_EQ(queue.pop().value(), 2);
}

TEST(BoundedQueue, TryPushFullFails) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  EXPECT_FALSE(queue.try_push(3));
  queue.pop();
  EXPECT_TRUE(queue.try_push(3));
}

TEST(BoundedQueue, TryPopEmptyFails) {
  BoundedQueue<int> queue(2);
  EXPECT_FALSE(queue.try_pop().has_value());
}

TEST(BoundedQueue, CloseWakesConsumer) {
  BoundedQueue<int> queue(2);
  std::thread consumer([&] {
    const auto v = queue.pop();
    EXPECT_FALSE(v.has_value());
  });
  queue.close();
  consumer.join();
  EXPECT_TRUE(queue.closed());
}

TEST(BoundedQueue, CloseDrainsRemaining) {
  BoundedQueue<int> queue(4);
  queue.push(1);
  queue.push(2);
  queue.close();
  EXPECT_FALSE(queue.push(3));
  EXPECT_EQ(queue.pop().value(), 1);
  EXPECT_EQ(queue.pop().value(), 2);
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(BoundedQueue, MpmcNoLossNoDup) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 5000;
  BoundedQueue<int> queue(64);
  std::atomic<long long> total{0};
  std::atomic<int> popped{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.push(p * kPerProducer + i));
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (auto v = queue.pop()) {
        total += *v;
        ++popped;
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  queue.close();
  for (int c = kProducers; c < kProducers + kConsumers; ++c) {
    threads[c].join();
  }
  const long long n = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), n);
  EXPECT_EQ(total.load(), n * (n - 1) / 2);
}

TEST(SpscRing, FifoOrder) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(ring.try_push(i));
  for (int i = 0; i < 5; ++i) EXPECT_EQ(ring.try_pop().value(), i);
  EXPECT_FALSE(ring.try_pop().has_value());
}

TEST(SpscRing, FullRejectsPush) {
  SpscRing<int> ring(2);  // rounds up to 4 slots => 3 usable
  int pushed = 0;
  while (ring.try_push(pushed)) ++pushed;
  EXPECT_GE(pushed, 2);
  ring.try_pop();
  EXPECT_TRUE(ring.try_push(99));
}

TEST(SpscRing, TryPushKeepRetainsValueWhenFull) {
  SpscRing<std::unique_ptr<int>> ring(2);
  while (true) {
    auto value = std::make_unique<int>(1);
    if (!ring.try_push_keep(value)) {
      // Full: the value must survive for a retry.
      ASSERT_NE(value, nullptr);
      ring.try_pop();
      EXPECT_TRUE(ring.try_push_keep(value));
      EXPECT_EQ(value, nullptr);  // consumed on success
      break;
    }
    EXPECT_EQ(value, nullptr);
  }
}

TEST(SpscRing, BlockedPushWakesOnPop) {
  // The condvar-backed backpressure path: a producer blocked on a full ring
  // must park (no result yet), then complete as soon as the consumer pops.
  SpscRing<int> ring(2);
  int fill = 0;
  while (ring.try_push(fill)) ++fill;  // ring now full

  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(ring.push(99));
    pushed.store(true);
  });
  // The push must stay blocked while the ring remains full.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());

  ASSERT_TRUE(ring.try_pop().has_value());
  producer.join();
  EXPECT_TRUE(pushed.load());
  // Everything pushed (including the blocked element) pops in FIFO order.
  std::vector<int> rest;
  while (auto v = ring.try_pop()) rest.push_back(*v);
  ASSERT_FALSE(rest.empty());
  EXPECT_EQ(rest.back(), 99);
}

TEST(SpscRing, BlockedPushStreamLosesNothing) {
  // A fast producer using blocking push against a slow consumer: every
  // element arrives exactly once, in order, with no spinning.
  constexpr int kCount = 20000;
  SpscRing<int> ring(8);
  std::thread producer([&] {
    for (int i = 0; i < kCount; ++i) ASSERT_TRUE(ring.push(i));
    ring.close();
  });
  int expected = 0;
  while (true) {
    if (auto v = ring.try_pop()) {
      EXPECT_EQ(*v, expected++);
    } else if (ring.drained()) {
      break;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_EQ(expected, kCount);
}

TEST(SpscRing, CloseReleasesBlockedPush) {
  SpscRing<std::unique_ptr<int>> ring(2);
  while (true) {
    auto value = std::make_unique<int>(1);
    if (!ring.try_push_keep(value)) break;
  }
  std::atomic<bool> released{false};
  std::thread producer([&] {
    auto value = std::make_unique<int>(2);
    // Closed while full: push returns false and keeps the value.
    EXPECT_FALSE(ring.push(value));
    EXPECT_NE(value, nullptr);
    released.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(released.load());
  ring.close();
  producer.join();
  EXPECT_TRUE(released.load());
}

TEST(SpscRing, DrainedSemantics) {
  SpscRing<int> ring(4);
  ring.try_push(1);
  EXPECT_FALSE(ring.drained());
  ring.close();
  EXPECT_TRUE(ring.closed());
  EXPECT_FALSE(ring.drained());  // element remains
  ring.try_pop();
  EXPECT_TRUE(ring.drained());
}

TEST(SpscRing, PopNDrainsInFifoOrder) {
  SpscRing<int> ring(16);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(ring.try_push(i));
  std::vector<int> out;
  EXPECT_EQ(ring.pop_n(out, 4), 4u);
  ASSERT_EQ(out.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
  // Appends to the same vector; asks for more than remains.
  EXPECT_EQ(ring.pop_n(out, 100), 6u);
  ASSERT_EQ(out.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(ring.pop_n(out, 4), 0u);
  EXPECT_EQ(out.size(), 10u);
}

TEST(SpscRing, PopNWakesBlockedProducer) {
  // The batch drain must hit the same producer-wakeup path as try_pop: a
  // producer parked on a full ring resumes once pop_n frees slots.
  SpscRing<int> ring(2);
  int fill = 0;
  while (ring.try_push(fill)) ++fill;

  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(ring.push(99));
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());

  std::vector<int> out;
  ASSERT_GT(ring.pop_n(out, 64), 0u);
  producer.join();
  EXPECT_TRUE(pushed.load());
  while (ring.pop_n(out, 64) > 0) {
  }
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.back(), 99);
}

TEST(StealDeque, OwnerPopsLifo) {
  StealDeque<int> deque(8);
  EXPECT_TRUE(deque.empty());
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(deque.push_bottom(i));
  EXPECT_EQ(deque.size(), 5u);
  for (int i = 4; i >= 0; --i) EXPECT_EQ(deque.pop_bottom().value(), i);
  EXPECT_FALSE(deque.pop_bottom().has_value());
  EXPECT_TRUE(deque.empty());
}

TEST(StealDeque, ThiefStealsFifo) {
  StealDeque<int> deque(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(deque.push_bottom(i));
  for (int i = 0; i < 5; ++i) EXPECT_EQ(deque.steal_top().value(), i);
  EXPECT_FALSE(deque.steal_top().has_value());
}

TEST(StealDeque, FullRejectsPushUntilDrained) {
  StealDeque<int> deque(4);
  int pushed = 0;
  while (deque.push_bottom(pushed)) ++pushed;
  EXPECT_EQ(pushed, 4);
  EXPECT_EQ(deque.size(), deque.capacity());
  // Either end freeing a slot re-enables the owner's push.
  EXPECT_EQ(deque.steal_top().value(), 0);
  EXPECT_TRUE(deque.push_bottom(4));
  EXPECT_FALSE(deque.push_bottom(5));
  EXPECT_EQ(deque.pop_bottom().value(), 4);
  EXPECT_TRUE(deque.push_bottom(5));
}

TEST(StealDeque, InterleavedOwnerAndThiefSingleThread) {
  // The ring indexing must survive top/bottom lapping the capacity many
  // times over.
  StealDeque<int> deque(4);
  int next = 0;
  long long sum = 0;
  int taken = 0;
  for (int round = 0; round < 1000; ++round) {
    while (deque.push_bottom(next)) ++next;
    if (auto v = deque.steal_top()) {
      sum += *v;
      ++taken;
    }
    if (auto v = deque.pop_bottom()) {
      sum += *v;
      ++taken;
    }
  }
  while (auto v = deque.pop_bottom()) {
    sum += *v;
    ++taken;
  }
  EXPECT_EQ(taken, next);
  EXPECT_EQ(sum, static_cast<long long>(next) * (next - 1) / 2);
}

TEST(StealDeque, OwnerThiefRaceLosesNothing) {
  // The Chase-Lev owner/thief race, TSan-exercised: one owner pushing and
  // popping its own bottom while three thieves hammer the top. Every element
  // must be taken exactly once — the last-element CAS race decides WHO gets
  // an element, never whether it is lost or duplicated.
  constexpr int kCount = 100000;
  constexpr int kThieves = 3;
  StealDeque<int> deque(64);
  std::atomic<long long> sum{0};
  std::atomic<int> taken{0};
  std::atomic<bool> done{false};

  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        if (auto v = deque.steal_top()) {
          sum += *v;
          ++taken;
        }
      }
      while (auto v = deque.steal_top()) {
        sum += *v;
        ++taken;
      }
    });
  }

  for (int i = 0; i < kCount; ++i) {
    while (!deque.push_bottom(i)) {
      if (auto v = deque.pop_bottom()) {
        sum += *v;
        ++taken;
      }
    }
    if ((i & 7) == 0) {
      if (auto v = deque.pop_bottom()) {
        sum += *v;
        ++taken;
      }
    }
  }
  // pop_bottom only returns empty when the deque IS empty or a thief won
  // the last element — either way nothing is left behind for the owner.
  while (auto v = deque.pop_bottom()) {
    sum += *v;
    ++taken;
  }
  done.store(true, std::memory_order_release);
  for (auto& thief : thieves) thief.join();

  EXPECT_EQ(taken.load(), kCount);
  EXPECT_EQ(sum.load(), static_cast<long long>(kCount) * (kCount - 1) / 2);
}

TEST(SpscRing, CrossThreadTransferPreservesAll) {
  constexpr int kCount = 200000;
  SpscRing<int> ring(1024);
  std::thread producer([&] {
    for (int i = 0; i < kCount; ++i) {
      while (!ring.try_push(i)) std::this_thread::yield();
    }
    ring.close();
  });
  long long sum = 0;
  int received = 0;
  int last = -1;
  while (true) {
    if (auto v = ring.try_pop()) {
      EXPECT_EQ(*v, last + 1);  // order preserved
      last = *v;
      sum += *v;
      ++received;
    } else if (ring.drained()) {
      break;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_EQ(received, kCount);
  EXPECT_EQ(sum, static_cast<long long>(kCount) * (kCount - 1) / 2);
}

}  // namespace
}  // namespace streamapprox
