// Tests for the shuffle (groupBy) — the wide operation behind Spark STS.
#include "engine/batched/shuffle.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine/record.h"

namespace streamapprox::engine::batched {
namespace {

Scheduler make_scheduler() {
  SchedulerConfig config;
  config.workers = 4;
  config.stage_overhead = std::chrono::microseconds(0);
  return Scheduler(config);
}

std::vector<Record> mixed_records(std::size_t n, std::uint32_t strata,
                                  std::uint64_t seed) {
  streamapprox::Rng rng(seed);
  std::vector<Record> records;
  records.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    records.push_back(Record{
        static_cast<sampling::StratumId>(rng.uniform_int(strata)),
        static_cast<double>(i), 0});
  }
  return records;
}

TEST(Shuffle, GroupsEveryRecordExactlyOnce) {
  auto scheduler = make_scheduler();
  const auto records = mixed_records(10000, 7, 1);
  auto dataset = Dataset<Record>::from(records, 8, scheduler);
  const auto grouped =
      shuffle_group_by(dataset, RecordStratum{}, scheduler, 4);
  ASSERT_EQ(grouped.size(), 4u);

  std::size_t total = 0;
  for (const auto& reducer : grouped) {
    for (const auto& [stratum, items] : reducer) {
      total += items.size();
      for (const auto& record : items) {
        EXPECT_EQ(record.stratum, stratum);
      }
    }
  }
  EXPECT_EQ(total, records.size());
}

TEST(Shuffle, SameKeySameReducer) {
  auto scheduler = make_scheduler();
  const auto records = mixed_records(5000, 10, 2);
  auto dataset = Dataset<Record>::from(records, 8, scheduler);
  const auto grouped =
      shuffle_group_by(dataset, RecordStratum{}, scheduler, 3);
  // Each stratum must appear in exactly one reducer.
  std::unordered_map<sampling::StratumId, int> appearances;
  for (const auto& reducer : grouped) {
    for (const auto& [stratum, items] : reducer) {
      ++appearances[stratum];
    }
  }
  for (const auto& [stratum, count] : appearances) {
    EXPECT_EQ(count, 1) << "stratum " << stratum << " split across reducers";
  }
}

TEST(Shuffle, GroupSizesMatchInput) {
  auto scheduler = make_scheduler();
  std::vector<Record> records;
  for (int i = 0; i < 300; ++i) records.push_back({0, 1.0, 0});
  for (int i = 0; i < 200; ++i) records.push_back({1, 1.0, 0});
  for (int i = 0; i < 100; ++i) records.push_back({2, 1.0, 0});
  auto dataset = Dataset<Record>::from(records, 4, scheduler);
  const auto grouped = shuffle_group_by(dataset, RecordStratum{}, scheduler);
  std::unordered_map<sampling::StratumId, std::size_t> sizes;
  for (const auto& reducer : grouped) {
    for (const auto& [stratum, items] : reducer) {
      sizes[stratum] += items.size();
    }
  }
  EXPECT_EQ(sizes[0], 300u);
  EXPECT_EQ(sizes[1], 200u);
  EXPECT_EQ(sizes[2], 100u);
}

TEST(Shuffle, DefaultsReducersToMaps) {
  auto scheduler = make_scheduler();
  auto dataset =
      Dataset<Record>::from(mixed_records(100, 3, 3), 5, scheduler);
  const auto grouped = shuffle_group_by(dataset, RecordStratum{}, scheduler);
  EXPECT_EQ(grouped.size(), 5u);
}

TEST(Shuffle, EmptyInput) {
  auto scheduler = make_scheduler();
  auto dataset = Dataset<Record>::from(std::vector<Record>{}, 4, scheduler);
  const auto grouped = shuffle_group_by(dataset, RecordStratum{}, scheduler);
  for (const auto& reducer : grouped) EXPECT_TRUE(reducer.empty());
}

TEST(Shuffle, RunsTwoStages) {
  auto scheduler = make_scheduler();
  auto dataset =
      Dataset<Record>::from(mixed_records(100, 3, 4), 4, scheduler);
  const auto before = scheduler.stages_run();
  shuffle_group_by(dataset, RecordStratum{}, scheduler);
  EXPECT_EQ(scheduler.stages_run(), before + 2);  // map side + reduce side
}

}  // namespace
}  // namespace streamapprox::engine::batched
