// Unit tests for the deterministic RNG: reproducibility, distribution
// moments, fork independence.
#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/stats.h"

namespace streamapprox {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(1234);
  Rng b(1234);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next(), b.next()) << "diverged at draw " << i;
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng rng(77);
  const auto first = rng.next();
  rng.next();
  rng.reseed(77);
  EXPECT_EQ(rng.next(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(6);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.uniform());
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
  EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.01);
}

TEST(Rng, UniformIntRange) {
  Rng rng(7);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) {
    const auto v = rng.uniform_int(10);
    ASSERT_LT(v, 10u);
    ++counts[v];
  }
  for (int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(8);
  int heads = 0;
  for (int i = 0; i < 100000; ++i) {
    if (rng.bernoulli(0.3)) ++heads;
  }
  EXPECT_NEAR(heads / 100000.0, 0.3, 0.01);
}

TEST(Rng, GaussianMoments) {
  Rng rng(9);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.gaussian(10.0, 5.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 5.0, 0.1);
}

TEST(Rng, PoissonSmallLambdaMoments) {
  Rng rng(10);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    stats.add(static_cast<double>(rng.poisson(10.0)));
  }
  EXPECT_NEAR(stats.mean(), 10.0, 0.15);
  EXPECT_NEAR(stats.variance(), 10.0, 0.5);
}

TEST(Rng, PoissonLargeLambdaMoments) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) {
    stats.add(static_cast<double>(rng.poisson(1e6)));
  }
  EXPECT_NEAR(stats.mean(), 1e6, 1e6 * 0.002);
  EXPECT_NEAR(stats.stddev(), 1000.0, 50.0);
}

TEST(Rng, PoissonZeroLambda) {
  Rng rng(12);
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_EQ(rng.poisson(-5.0), 0u);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.exponential(2.0));
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
}

TEST(Rng, LogNormalMean) {
  Rng rng(14);
  RunningStats stats;
  const double mu = 1.0;
  const double sigma = 0.5;
  for (int i = 0; i < 200000; ++i) stats.add(rng.lognormal(mu, sigma));
  EXPECT_NEAR(stats.mean(), std::exp(mu + sigma * sigma / 2.0), 0.05);
}

TEST(Rng, GammaMoments) {
  Rng rng(15);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.gamma(3.0, 2.0));
  EXPECT_NEAR(stats.mean(), 6.0, 0.1);
  EXPECT_NEAR(stats.variance(), 12.0, 0.5);
}

TEST(Rng, GammaShapeBelowOne) {
  Rng rng(16);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.gamma(0.5, 1.0));
  EXPECT_NEAR(stats.mean(), 0.5, 0.02);
  for (int i = 0; i < 1000; ++i) ASSERT_GE(rng.gamma(0.5, 1.0), 0.0);
}

TEST(Rng, ForkIndependence) {
  Rng parent(99);
  Rng child1 = parent.fork();
  Rng child2 = parent.fork();
  // Children start from different states...
  EXPECT_NE(child1.next(), child2.next());
  // ...and the same fork sequence is reproducible.
  Rng parent2(99);
  Rng child1b = parent2.fork();
  child1b.next();  // consume the draw child1 already made
  EXPECT_EQ(child1.next(), child1b.next());
}

TEST(Rng, ZipfSkewsTowardZero) {
  Rng rng(17);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) {
    const auto v = rng.zipf(100, 1.2);
    ASSERT_LT(v, 100u);
    ++counts[v];
  }
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], 10 * counts[50]);
}

TEST(Rng, ZipfZeroExponentIsUniformish) {
  Rng rng(18);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) ++counts[rng.zipf(10, 0.0)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 600);
}

TEST(Rng, ZipfUnitExponentFollowsHarmonicLaw) {
  // Regression: s = 1 is a singularity of the general rejection-inversion
  // (the 1/(1-s) exponent blows up) and used to collapse every draw to
  // stratum 0. The dedicated limit branch must produce the harmonic law
  // P(k) = ln((k+2)/(k+1)) / ln(n+1) on the 0-based support.
  constexpr std::uint64_t kN = 64;
  constexpr int kDraws = 400'000;
  Rng rng(19);
  std::vector<int> counts(kN, 0);
  for (int i = 0; i < kDraws; ++i) {
    const auto v = rng.zipf(kN, 1.0);
    ASSERT_LT(v, kN);
    ++counts[v];
  }
  // Not degenerate: a healthy spread of strata is actually drawn.
  EXPECT_GT(std::count_if(counts.begin(), counts.end(),
                          [](int c) { return c > 0; }),
            static_cast<std::ptrdiff_t>(kN / 2));
  const double log_np1 = std::log(static_cast<double>(kN) + 1.0);
  for (const std::uint64_t k : {0ull, 1ull, 3ull, 7ull, 31ull}) {
    const double expected =
        std::log(static_cast<double>(k + 2) / static_cast<double>(k + 1)) /
        log_np1;
    const double observed = static_cast<double>(counts[k]) / kDraws;
    // 5σ binomial tolerance around the exact harmonic frequency.
    const double sigma =
        std::sqrt(expected * (1.0 - expected) / kDraws);
    EXPECT_NEAR(observed, expected, 5.0 * sigma + 1e-4) << "k=" << k;
  }
}

TEST(Rng, ZipfContinuousAcrossUnitExponent) {
  // The limit branch must join smoothly with the general inversion: head
  // frequencies at s = 1 sit between those at s = 0.99 and s = 1.01 (up to
  // sampling noise), so no distributional cliff hides at the switchover.
  constexpr std::uint64_t kN = 1000;
  constexpr int kDraws = 300'000;
  const auto head_mass = [&](double s, std::uint64_t seed) {
    Rng rng(seed);
    int head = 0;
    for (int i = 0; i < kDraws; ++i) {
      if (rng.zipf(kN, s) < 10) ++head;
    }
    return static_cast<double>(head) / kDraws;
  };
  const double below = head_mass(0.99, 20);
  const double at = head_mass(1.0, 21);
  const double above = head_mass(1.01, 22);
  // Skew grows with s, so head mass is monotone in s; allow binomial noise.
  EXPECT_GT(above, below);
  EXPECT_GT(at, below - 0.01);
  EXPECT_LT(at, above + 0.01);
}

TEST(Splitmix64, KnownGolden) {
  // Reference values from the splitmix64 reference implementation.
  std::uint64_t state = 0;
  const auto a = splitmix64(state);
  const auto b = splitmix64(state);
  EXPECT_NE(a, b);
  EXPECT_EQ(state, 2 * 0x9e3779b97f4a7c15ULL);
}

}  // namespace
}  // namespace streamapprox
