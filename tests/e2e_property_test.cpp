// End-to-end parameterised properties: for every (system × fraction ×
// workload-shape) cell, the full pipeline must stay unbiased and keep its
// counters coherent. These sweeps are the paper's claims stated as
// invariants.
#include <gtest/gtest.h>

#include <tuple>

#include "core/query.h"
#include "core/systems.h"
#include "workload/synthetic.h"

namespace streamapprox::core {
namespace {

enum class Shape { kUniformRates, kSkewedGaussian, kSkewedPoisson };

std::string shape_name(Shape shape) {
  switch (shape) {
    case Shape::kUniformRates:
      return "UniformRates";
    case Shape::kSkewedGaussian:
      return "SkewedGaussian";
    case Shape::kSkewedPoisson:
      return "SkewedPoisson";
  }
  return "?";
}

std::vector<engine::Record> make_stream(Shape shape) {
  std::vector<workload::SubStreamSpec> specs;
  switch (shape) {
    case Shape::kUniformRates:
      specs = workload::gaussian_substreams(30000.0);
      break;
    case Shape::kSkewedGaussian:
      specs = workload::skewed_gaussian_substreams(30000.0);
      break;
    case Shape::kSkewedPoisson:
      specs = workload::skewed_poisson_substreams(30000.0);
      break;
  }
  workload::SyntheticStream stream(specs, 1000 + static_cast<int>(shape));
  return stream.generate(3.0);
}

using Cell = std::tuple<SystemKind, double, Shape>;

class E2EProperty : public ::testing::TestWithParam<Cell> {};

TEST_P(E2EProperty, CountersCoherentAndEstimateBounded) {
  const auto [kind, fraction, shape] = GetParam();
  const auto records = make_stream(shape);

  SystemConfig config;
  config.sampling_fraction = fraction;
  config.workers = 2;
  config.batch_interval_us = 250'000;
  config.window = {1'000'000, 500'000};
  config.query_cost = engine::QueryCost{0};
  config.stage_overhead = std::chrono::microseconds(0);

  const auto result = run_system(kind, records, config);
  EXPECT_EQ(result.records_processed, records.size());
  ASSERT_FALSE(result.windows.empty());

  for (const auto& window : result.windows) {
    for (const auto& cell : window.cells) {
      // Y_i <= C_i always; weight >= 1 whenever counts are real.
      EXPECT_LE(cell.sampled, cell.seen);
      EXPECT_GE(cell.weight, 1.0 - 1e-9);
      EXPECT_GE(cell.sampled, 0u);
    }
  }

  // SUM estimate within a generous band of truth. SRS on the skewed Poisson
  // stream is the paper's motivating failure mode: the 0.01% sub-stream
  // carries 1e8-scale values, so missing it costs ~100% error and hitting it
  // expands a single record by n/k — either way the estimate is junk. That
  // cell only checks the run completes; everything else stays tight.
  const auto exact = exact_window_results(records, config.window);
  QuerySpec query{Aggregation::kSum, false};
  const double loss =
      mean_accuracy_loss(evaluate_windows(result.windows, query),
                         evaluate_windows(exact, query), query);
  const bool srs_on_long_tail =
      kind == SystemKind::kSparkSRS && shape == Shape::kSkewedPoisson;
  const double tolerance =
      is_native(kind) ? 1e-9 : (srs_on_long_tail ? 10.0 : 0.25);
  EXPECT_LE(loss, tolerance);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, E2EProperty,
    ::testing::Combine(
        ::testing::Values(SystemKind::kFlinkApprox, SystemKind::kSparkApprox,
                          SystemKind::kSparkSRS, SystemKind::kSparkSTS),
        ::testing::Values(0.1, 0.4, 0.8),
        ::testing::Values(Shape::kUniformRates, Shape::kSkewedGaussian,
                          Shape::kSkewedPoisson)),
    [](const ::testing::TestParamInfo<Cell>& info) {
      std::string name =
          system_name(std::get<0>(info.param)) + "_f" +
          std::to_string(static_cast<int>(std::get<1>(info.param) * 100)) +
          "_" + shape_name(std::get<2>(info.param));
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// Window-geometry sweep: any (size, slide) with size % slide == 0 must hold
// the window-count algebra: slides = ceil(duration/slide), full windows =
// slides - (size/slide) + 1 (plus trailing flush behaviour).
class WindowGeometryProperty
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(WindowGeometryProperty, WindowCountMatchesAlgebra) {
  const auto [size_s, slide_s] = GetParam();
  workload::SyntheticStream stream(workload::gaussian_substreams(5000.0),
                                   99);
  const auto records = stream.generate(12.0);

  SystemConfig config;
  config.sampling_fraction = 0.5;
  config.workers = 2;
  config.batch_interval_us = 500'000;
  config.window = {size_s * 1'000'000LL, slide_s * 1'000'000LL};
  config.query_cost = engine::QueryCost{0};
  config.stage_overhead = std::chrono::microseconds(0);

  const auto result =
      run_system(SystemKind::kFlinkApprox, records, config);
  const std::size_t slides = 12 / slide_s;  // duration is exactly 12 s
  const std::size_t per_window = static_cast<std::size_t>(size_s / slide_s);
  ASSERT_GE(slides, per_window);
  EXPECT_EQ(result.windows.size(), slides - per_window + 1);
  // Consecutive windows advance by exactly one slide.
  for (std::size_t i = 1; i < result.windows.size(); ++i) {
    EXPECT_EQ(
        result.windows[i].window_end_us - result.windows[i - 1].window_end_us,
        slide_s * 1'000'000LL);
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, WindowGeometryProperty,
                         ::testing::Values(std::pair{2, 1}, std::pair{4, 2},
                                           std::pair{6, 2}, std::pair{3, 3},
                                           std::pair{12, 4}, std::pair{6, 1}),
                         [](const auto& info) {
                           return "size" + std::to_string(info.param.first) +
                                  "_slide" +
                                  std::to_string(info.param.second);
                         });

}  // namespace
}  // namespace streamapprox::core
