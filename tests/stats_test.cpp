// Unit tests for RunningStats (Welford) and the helper statistics used by
// the estimators and the accuracy metric.
#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"

namespace streamapprox {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.sum(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats stats;
  stats.add(42.0);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_EQ(stats.mean(), 42.0);
  EXPECT_EQ(stats.variance(), 0.0);  // undefined -> 0 by contract
  EXPECT_EQ(stats.min(), 42.0);
  EXPECT_EQ(stats.max(), 42.0);
}

TEST(RunningStats, KnownSmallSample) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.population_variance(), 4.0, 1e-12);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(stats.min(), 2.0);
  EXPECT_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(RunningStats, MatchesTwoPassComputation) {
  Rng rng(3);
  std::vector<double> xs;
  RunningStats stats;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.gaussian(100.0, 15.0);
    xs.push_back(x);
    stats.add(x);
  }
  EXPECT_NEAR(stats.mean(), mean_of(xs), 1e-9);
  EXPECT_NEAR(stats.variance(), variance_of(xs), 1e-6);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(4);
  RunningStats all;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.uniform(0.0, 10.0);
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats b;
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_NEAR(b.mean(), 1.5, 1e-12);
}

TEST(RunningStats, ResetClears) {
  RunningStats stats;
  stats.add(5.0);
  stats.reset();
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
}

TEST(RunningStats, NumericallyStableOnLargeOffsets) {
  RunningStats stats;
  // Classic catastrophic-cancellation scenario for naive sum-of-squares.
  // Exact sample variance of 1000 alternating +/-1 values: 1000/999.
  for (int i = 0; i < 1000; ++i) stats.add(1e9 + (i % 2 == 0 ? 1.0 : -1.0));
  EXPECT_NEAR(stats.variance(), 1000.0 / 999.0, 1e-6);
}

TEST(VectorStats, MeanAndVariance) {
  EXPECT_EQ(mean_of({}), 0.0);
  EXPECT_EQ(variance_of({1.0}), 0.0);
  EXPECT_DOUBLE_EQ(mean_of({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(variance_of({1.0, 2.0, 3.0}), 1.0);
}

TEST(Quantile, Basics) {
  EXPECT_EQ(quantile_of({}, 0.5), 0.0);
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(static_cast<double>(i));
  EXPECT_NEAR(quantile_of(xs, 0.0), 1.0, 1e-12);
  EXPECT_NEAR(quantile_of(xs, 1.0), 100.0, 1e-12);
  EXPECT_NEAR(quantile_of(xs, 0.5), 50.0, 1.0);
  EXPECT_NEAR(quantile_of(xs, 0.9), 90.0, 1.5);
}

TEST(ChiSquare, ZeroForPerfectFit) {
  EXPECT_EQ(chi_square({10, 20, 30}, {10, 20, 30}), 0.0);
}

TEST(ChiSquare, KnownValue) {
  // ((12-10)^2)/10 + ((8-10)^2)/10 = 0.8
  EXPECT_NEAR(chi_square({12, 8}, {10, 10}), 0.8, 1e-12);
}

TEST(ChiSquare, IgnoresZeroExpected) {
  EXPECT_EQ(chi_square({5}, {0}), 0.0);
}

TEST(RelativeError, PaperDefinition) {
  EXPECT_DOUBLE_EQ(relative_error(110.0, 100.0), 0.1);
  EXPECT_DOUBLE_EQ(relative_error(90.0, 100.0), 0.1);
  EXPECT_DOUBLE_EQ(relative_error(-90.0, -100.0), 0.1);
  EXPECT_DOUBLE_EQ(relative_error(5.0, 0.0), 5.0);  // exact == 0 contract
  EXPECT_DOUBLE_EQ(relative_error(100.0, 100.0), 0.0);
}

}  // namespace
}  // namespace streamapprox
