// Tests for the RDD-like Dataset and the stage scheduler.
#include "engine/batched/dataset.h"

#include <gtest/gtest.h>

#include <numeric>

namespace streamapprox::engine::batched {
namespace {

Scheduler make_scheduler(std::size_t workers = 4) {
  SchedulerConfig config;
  config.workers = workers;
  config.stage_overhead = std::chrono::microseconds(0);  // fast tests
  return Scheduler(config);
}

std::vector<int> iota(int n) {
  std::vector<int> v(n);
  std::iota(v.begin(), v.end(), 0);
  return v;
}

TEST(Scheduler, CountsStages) {
  auto scheduler = make_scheduler();
  EXPECT_EQ(scheduler.stages_run(), 0u);
  scheduler.run_stage(4, [](std::size_t) {});
  scheduler.run_stage(2, [](std::size_t) {});
  EXPECT_EQ(scheduler.stages_run(), 2u);
}

TEST(Scheduler, StageRunsEveryTask) {
  auto scheduler = make_scheduler();
  std::vector<std::atomic<int>> hits(16);
  scheduler.run_stage(16, [&](std::size_t t) { hits[t].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Scheduler, ZeroWorkersCoercedToOne) {
  SchedulerConfig config;
  config.workers = 0;
  Scheduler scheduler(config);
  EXPECT_EQ(scheduler.workers(), 1u);
}

TEST(Dataset, FromSplitsEvenly) {
  auto scheduler = make_scheduler();
  const auto items = iota(100);
  auto dataset = Dataset<int>::from(items, 4, scheduler);
  EXPECT_EQ(dataset.partition_count(), 4u);
  EXPECT_EQ(dataset.size(), 100u);
  for (const auto& partition : dataset.partitions()) {
    EXPECT_EQ(partition.size(), 25u);
  }
  // Order preserved across the concatenation.
  EXPECT_EQ(dataset.collect(), items);
}

TEST(Dataset, FromUnevenSplit) {
  auto scheduler = make_scheduler();
  auto dataset = Dataset<int>::from(iota(10), 4, scheduler);
  EXPECT_EQ(dataset.size(), 10u);
  EXPECT_EQ(dataset.collect(), iota(10));
}

TEST(Dataset, FromEmpty) {
  auto scheduler = make_scheduler();
  auto dataset = Dataset<int>::from(std::vector<int>{}, 4, scheduler);
  EXPECT_EQ(dataset.size(), 0u);
  EXPECT_TRUE(dataset.collect().empty());
}

TEST(Dataset, ZeroPartitionsCoerced) {
  auto scheduler = make_scheduler();
  auto dataset = Dataset<int>::from(iota(5), 0, scheduler);
  EXPECT_EQ(dataset.partition_count(), 1u);
}

TEST(Dataset, MapTransforms) {
  auto scheduler = make_scheduler();
  auto dataset = Dataset<int>::from(iota(50), 4, scheduler);
  auto doubled = dataset.map<int>([](int x) { return 2 * x; }, scheduler);
  const auto out = doubled.collect();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(out[i], 2 * i);
}

TEST(Dataset, MapChangesType) {
  auto scheduler = make_scheduler();
  auto dataset = Dataset<int>::from(iota(10), 2, scheduler);
  auto strings = dataset.map<std::string>(
      [](int x) { return std::to_string(x); }, scheduler);
  EXPECT_EQ(strings.collect()[7], "7");
}

TEST(Dataset, FilterKeeps) {
  auto scheduler = make_scheduler();
  auto dataset = Dataset<int>::from(iota(100), 4, scheduler);
  auto evens = dataset.filter([](int x) { return x % 2 == 0; }, scheduler);
  EXPECT_EQ(evens.size(), 50u);
  for (int x : evens.collect()) EXPECT_EQ(x % 2, 0);
}

TEST(Dataset, MapPartitionsOnePerPartition) {
  auto scheduler = make_scheduler();
  auto dataset = Dataset<int>::from(iota(100), 4, scheduler);
  auto sums = dataset.map_partitions<long long>(
      [](std::size_t, const std::vector<int>& part) {
        long long sum = 0;
        for (int x : part) sum += x;
        return sum;
      },
      scheduler);
  ASSERT_EQ(sums.size(), 4u);
  EXPECT_EQ(std::accumulate(sums.begin(), sums.end(), 0LL), 99LL * 100 / 2);
}

TEST(Dataset, FromPartitionsWrapsWithoutCopy) {
  std::vector<std::vector<int>> parts = {{1, 2}, {3}, {}};
  auto dataset = Dataset<int>::from_partitions(std::move(parts));
  EXPECT_EQ(dataset.partition_count(), 3u);
  EXPECT_EQ(dataset.size(), 3u);
  EXPECT_EQ(dataset.collect(), (std::vector<int>{1, 2, 3}));
}

TEST(Dataset, FromPartitionsEmptyGetsOnePartition) {
  auto dataset = Dataset<int>::from_partitions({});
  EXPECT_EQ(dataset.partition_count(), 1u);
}

TEST(Dataset, EachTransformationIsOneStage) {
  auto scheduler = make_scheduler();
  auto dataset = Dataset<int>::from(iota(10), 2, scheduler);  // stage 1
  dataset.map<int>([](int x) { return x; }, scheduler);       // stage 2
  dataset.filter([](int) { return true; }, scheduler);        // stage 3
  EXPECT_EQ(scheduler.stages_run(), 3u);
}

TEST(Scheduler, StageOverheadIsCharged) {
  SchedulerConfig config;
  config.workers = 2;
  config.stage_overhead = std::chrono::microseconds(20000);  // 20 ms
  Scheduler scheduler(config);
  const auto start = std::chrono::steady_clock::now();
  scheduler.run_stage(2, [](std::size_t) {});
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  EXPECT_GE(elapsed, 0.018);
}

}  // namespace
}  // namespace streamapprox::engine::batched
