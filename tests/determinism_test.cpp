// Determinism and invariance properties across the whole stack:
//  * identical seeds => identical samples, estimates and bench workloads;
//  * worker count must not change WHAT is computed (only how fast);
//  * sampler output must be invariant to broker partitioning.
#include <gtest/gtest.h>

#include "core/query.h"
#include "core/systems.h"
#include "engine/batched/shuffle.h"
#include "sampling/oasrs.h"
#include "sampling/scasrs.h"
#include "workload/synthetic.h"

namespace streamapprox::core {
namespace {

using engine::Record;

std::vector<Record> stream(std::uint64_t seed) {
  workload::SyntheticStream generator(workload::gaussian_substreams(30000.0),
                                      seed);
  return generator.generate(3.0);
}

SystemConfig config_with_workers(std::size_t workers) {
  SystemConfig config;
  config.sampling_fraction = 0.4;
  config.workers = workers;
  config.batch_interval_us = 250'000;
  config.window = {1'000'000, 500'000};
  config.query_cost = engine::QueryCost{0};
  config.stage_overhead = std::chrono::microseconds(0);
  return config;
}

TEST(Determinism, OasrsSameSeedSameSample) {
  const auto records = stream(1);
  for (int run = 0; run < 2; ++run) {
    sampling::OasrsConfig config;
    config.total_budget = 1000;
    config.seed = 77;
    auto a = sampling::make_oasrs<Record>(config);
    auto b = sampling::make_oasrs<Record>(config);
    for (const auto& record : records) {
      a.offer(record);
      b.offer(record);
    }
    const auto sa = a.take();
    const auto sb = b.take();
    ASSERT_EQ(sa.strata.size(), sb.strata.size());
    for (std::size_t i = 0; i < sa.strata.size(); ++i) {
      EXPECT_EQ(sa.strata[i].items, sb.strata[i].items);
      EXPECT_EQ(sa.strata[i].seen, sb.strata[i].seen);
    }
  }
}

TEST(Determinism, ScaSrsSameRngStateSameSample) {
  const auto records = stream(2);
  streamapprox::Rng rng_a(123);
  streamapprox::Rng rng_b(123);
  const auto a = sampling::scasrs_sample(records, 0.3, rng_a);
  const auto b = sampling::scasrs_sample(records, 0.3, rng_b);
  EXPECT_EQ(a.items, b.items);
  EXPECT_EQ(a.weight, b.weight);
}

TEST(Determinism, RunSystemSameConfigSameWindows) {
  const auto records = stream(3);
  const auto config = config_with_workers(2);
  const auto first = run_system(SystemKind::kSparkApprox, records, config);
  const auto second = run_system(SystemKind::kSparkApprox, records, config);
  ASSERT_EQ(first.windows.size(), second.windows.size());
  QuerySpec query{Aggregation::kSum, false};
  const auto ea = evaluate_windows(first.windows, query);
  const auto eb = evaluate_windows(second.windows, query);
  for (std::size_t i = 0; i < ea.size(); ++i) {
    EXPECT_DOUBLE_EQ(ea[i].overall.estimate, eb[i].overall.estimate);
  }
}

class WorkerInvariance : public ::testing::TestWithParam<SystemKind> {};

TEST_P(WorkerInvariance, EstimatesAgreeAcrossWorkerCounts) {
  // Different worker counts change sampling randomness but must leave the
  // estimates statistically equivalent: both runs within 1% of exact.
  const auto records = stream(4);
  const auto exact = exact_window_results(records, {1'000'000, 500'000});
  QuerySpec query{Aggregation::kSum, false};
  const auto exact_estimates = evaluate_windows(exact, query);
  for (std::size_t workers : {1u, 3u, 8u}) {
    const auto result =
        run_system(GetParam(), records, config_with_workers(workers));
    const double loss = mean_accuracy_loss(
        evaluate_windows(result.windows, query), exact_estimates, query);
    EXPECT_LT(loss, 0.01) << system_name(GetParam()) << " workers="
                          << workers;
    EXPECT_EQ(result.records_processed, records.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Systems, WorkerInvariance,
    ::testing::Values(SystemKind::kSparkApprox, SystemKind::kFlinkApprox,
                      SystemKind::kSparkSTS),
    [](const ::testing::TestParamInfo<SystemKind>& info) {
      std::string name = system_name(info.param);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(Invariance, PartitionCountDoesNotChangeBatchedResults) {
  const auto records = stream(5);
  QuerySpec query{Aggregation::kSum, false};
  const auto exact = exact_window_results(records, {1'000'000, 500'000});
  const auto exact_estimates = evaluate_windows(exact, query);
  for (std::size_t partitions : {1u, 4u, 16u}) {
    auto config = config_with_workers(4);
    config.partitions = partitions;
    const auto result =
        run_system(SystemKind::kNativeSpark, records, config);
    const double loss = mean_accuracy_loss(
        evaluate_windows(result.windows, query), exact_estimates, query);
    EXPECT_NEAR(loss, 0.0, 1e-12) << "partitions=" << partitions;
  }
}

TEST(Invariance, StsNonExactVariantStillAccurate) {
  const auto records = stream(6);
  auto config = config_with_workers(4);
  config.sts_exact = false;  // sampleByKey (Bernoulli per stratum)
  const auto result = run_system(SystemKind::kSparkSTS, records, config);
  const auto exact = exact_window_results(records, config.window);
  QuerySpec query{Aggregation::kSum, false};
  const double loss =
      mean_accuracy_loss(evaluate_windows(result.windows, query),
                         evaluate_windows(exact, query), query);
  EXPECT_LT(loss, 0.02);
}

TEST(ReduceByKey, MatchesDirectAggregation) {
  const auto records = stream(7);
  engine::batched::SchedulerConfig scheduler_config;
  scheduler_config.workers = 4;
  scheduler_config.stage_overhead = std::chrono::microseconds(0);
  engine::batched::Scheduler scheduler(scheduler_config);
  auto dataset =
      engine::batched::Dataset<Record>::from(records, 8, scheduler);

  const auto reduced = engine::batched::shuffle_reduce_by_key<Record, double>(
      dataset, engine::RecordStratum{},
      [](const Record& r) { return r.value; },
      [](double& acc, const Record& r) { acc += r.value; },
      [](double& acc, const double& other) { acc += other; }, scheduler);

  std::unordered_map<sampling::StratumId, double> expected;
  for (const auto& record : records) expected[record.stratum] += record.value;

  std::unordered_map<sampling::StratumId, double> actual;
  for (const auto& reducer : reduced) {
    for (const auto& [key, value] : reducer) {
      EXPECT_EQ(actual.count(key), 0u) << "key on two reducers";
      actual[key] = value;
    }
  }
  ASSERT_EQ(actual.size(), expected.size());
  for (const auto& [key, value] : expected) {
    EXPECT_NEAR(actual.at(key), value, std::abs(value) * 1e-9);
  }
}

TEST(ReduceByKey, EmptyInput) {
  engine::batched::SchedulerConfig scheduler_config;
  scheduler_config.workers = 2;
  scheduler_config.stage_overhead = std::chrono::microseconds(0);
  engine::batched::Scheduler scheduler(scheduler_config);
  auto dataset = engine::batched::Dataset<Record>::from(
      std::vector<Record>{}, 4, scheduler);
  const auto reduced = engine::batched::shuffle_reduce_by_key<Record, double>(
      dataset, engine::RecordStratum{},
      [](const Record& r) { return r.value; },
      [](double& acc, const Record& r) { acc += r.value; },
      [](double& acc, const double& other) { acc += other; }, scheduler);
  for (const auto& reducer : reduced) EXPECT_TRUE(reducer.empty());
}

}  // namespace
}  // namespace streamapprox::core
