// Tests for the micro-batch stream runtime: batching by event time, window
// assembly, throughput accounting.
#include "engine/batched/micro_batch.h"

#include <gtest/gtest.h>

namespace streamapprox::engine::batched {
namespace {

std::vector<Record> steady_stream(std::size_t n, std::int64_t spacing_us) {
  std::vector<Record> records;
  records.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    records.push_back(Record{static_cast<sampling::StratumId>(i % 2),
                             1.0,
                             static_cast<std::int64_t>(i) * spacing_us});
  }
  return records;
}

// A job that exactly counts its batch into one cell.
estimation::StratumSummary count_cell(std::span<const Record> batch) {
  estimation::StratumSummary cell;
  cell.stratum = 0;
  cell.seen = batch.size();
  cell.sampled = batch.size();
  for (const auto& record : batch) cell.sum += record.value;
  return cell;
}

TEST(MicroBatch, RejectsMisalignedSlide) {
  MicroBatchConfig config;
  config.batch_interval_us = 300;
  config.window = {1000, 1000};
  EXPECT_THROW(
      run_micro_batches({}, config,
                        [](std::size_t, std::span<const Record>) {
                          return std::vector<estimation::StratumSummary>{};
                        }),
      std::invalid_argument);
}

TEST(MicroBatch, ProcessesEveryRecordOnce) {
  // 10k records, 1 per 100us => 1s of stream; batches of 100ms.
  const auto records = steady_stream(10000, 100);
  MicroBatchConfig config;
  config.batch_interval_us = 100'000;
  config.window = {200'000, 100'000};
  std::size_t seen = 0;
  std::size_t batches = 0;
  auto result = run_micro_batches(
      records, config,
      [&](std::size_t, std::span<const Record> batch) {
        seen += batch.size();
        ++batches;
        return std::vector<estimation::StratumSummary>{count_cell(batch)};
      });
  EXPECT_EQ(seen, records.size());
  EXPECT_EQ(result.records_processed, records.size());
  EXPECT_EQ(batches, 10u);
  EXPECT_GT(result.throughput(), 0.0);
}

TEST(MicroBatch, BatchesRespectEventTime) {
  const auto records = steady_stream(1000, 1000);  // 1ms apart, 1s total
  MicroBatchConfig config;
  config.batch_interval_us = 250'000;  // 250 ms => 250 records per batch
  config.window = {500'000, 250'000};
  std::vector<std::size_t> batch_sizes;
  run_micro_batches(records, config,
                    [&](std::size_t, std::span<const Record> batch) {
                      batch_sizes.push_back(batch.size());
                      return std::vector<estimation::StratumSummary>{};
                    });
  ASSERT_EQ(batch_sizes.size(), 4u);
  for (auto size : batch_sizes) EXPECT_EQ(size, 250u);
}

TEST(MicroBatch, WindowsAggregateAcrossBatches) {
  // Window 400ms, slide 200ms, batch 100ms => 2 batches/slide, 2 slides/win.
  const auto records = steady_stream(1000, 1000);  // 1s of stream
  MicroBatchConfig config;
  config.batch_interval_us = 100'000;
  config.window = {400'000, 200'000};
  auto result = run_micro_batches(
      records, config, [&](std::size_t, std::span<const Record> batch) {
        return std::vector<estimation::StratumSummary>{count_cell(batch)};
      });
  ASSERT_GE(result.windows.size(), 3u);
  // Each full window covers 400ms = 400 records; cells carry exact counts.
  for (const auto& window : result.windows) {
    std::uint64_t total = 0;
    for (const auto& cell : window.cells) total += cell.seen;
    EXPECT_EQ(total, 400u) << "window ending " << window.window_end_us;
  }
  // Window boundaries advance by the slide.
  EXPECT_EQ(result.windows[0].window_end_us, 400'000);
  EXPECT_EQ(result.windows[1].window_end_us, 600'000);
}

TEST(MicroBatch, TrailingPartialSlideFlushed) {
  // 1.05s of stream with 200ms slides: the final 50ms lands in a partial
  // slide that must still surface in a window.
  const auto records = steady_stream(1050, 1000);
  MicroBatchConfig config;
  config.batch_interval_us = 100'000;
  config.window = {200'000, 200'000};  // tumbling
  auto result = run_micro_batches(
      records, config, [&](std::size_t, std::span<const Record> batch) {
        return std::vector<estimation::StratumSummary>{count_cell(batch)};
      });
  std::uint64_t total = 0;
  for (const auto& window : result.windows) {
    for (const auto& cell : window.cells) total += cell.seen;
  }
  EXPECT_EQ(total, 1050u);
}

TEST(MicroBatch, EmptyStream) {
  MicroBatchConfig config;
  config.batch_interval_us = 100'000;
  config.window = {200'000, 100'000};
  auto result = run_micro_batches(
      {}, config, [&](std::size_t, std::span<const Record> batch) {
        return std::vector<estimation::StratumSummary>{count_cell(batch)};
      });
  EXPECT_EQ(result.records_processed, 0u);
}

TEST(MicroBatch, GapsProduceEmptyBatches) {
  // Records only in the first and last 100ms of a 1s stream.
  std::vector<Record> records;
  for (int i = 0; i < 100; ++i) {
    records.push_back({0, 1.0, static_cast<std::int64_t>(i * 1000)});
  }
  for (int i = 0; i < 100; ++i) {
    records.push_back({0, 1.0, 900'000 + static_cast<std::int64_t>(i * 1000)});
  }
  MicroBatchConfig config;
  config.batch_interval_us = 100'000;
  config.window = {100'000, 100'000};
  std::size_t batches = 0;
  std::size_t empty_batches = 0;
  run_micro_batches(records, config,
                    [&](std::size_t, std::span<const Record> batch) {
                      ++batches;
                      if (batch.empty()) ++empty_batches;
                      return std::vector<estimation::StratumSummary>{};
                    });
  EXPECT_EQ(batches, 10u);
  EXPECT_EQ(empty_batches, 8u);
}

}  // namespace
}  // namespace streamapprox::engine::batched
