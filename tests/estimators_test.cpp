// Tests for the stratified estimators: Eq. 2-9 point estimates and variance
// formulas against hand-computed values and Monte-Carlo coverage.
#include "estimation/estimators.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/stats.h"
#include "engine/record.h"
#include "sampling/oasrs.h"

namespace streamapprox::estimation {
namespace {

using streamapprox::engine::Record;

StratumSummary make_summary(sampling::StratumId stratum, std::uint64_t seen,
                            std::vector<double> values) {
  StratumSummary s;
  s.stratum = stratum;
  s.seen = seen;
  s.sampled = values.size();
  for (double v : values) {
    s.sum += v;
    s.sum_sq += v * v;
  }
  s.weight = (s.sampled > 0 && seen > s.sampled)
                 ? static_cast<double>(seen) / static_cast<double>(s.sampled)
                 : 1.0;
  return s;
}

TEST(StratumSummary, MeanAndVariance) {
  const auto s = make_summary(0, 100, {2.0, 4.0, 6.0});
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_NEAR(s.sample_variance(), 4.0, 1e-9);  // s^2 of {2,4,6}
}

TEST(StratumSummary, DegenerateVariance) {
  EXPECT_EQ(make_summary(0, 10, {}).sample_variance(), 0.0);
  EXPECT_EQ(make_summary(0, 10, {5.0}).sample_variance(), 0.0);
  // Constant sample: zero variance despite count.
  EXPECT_NEAR(make_summary(0, 10, {3.0, 3.0, 3.0}).sample_variance(), 0.0,
              1e-12);
}

TEST(StratumSummary, MergeCombinesAndReweights) {
  auto a = make_summary(0, 100, {1.0, 2.0});
  const auto b = make_summary(0, 50, {3.0});
  a.merge(b);
  EXPECT_EQ(a.seen, 150u);
  EXPECT_EQ(a.sampled, 3u);
  EXPECT_DOUBLE_EQ(a.sum, 6.0);
  EXPECT_DOUBLE_EQ(a.weight, 50.0);
}

TEST(EstimateSum, PaperEquationTwoThree) {
  // Stratum 0: C=6, Y=3 items {1,2,3} => W=2, SUM_0 = 6*2 = 12.
  // Stratum 1: C=4, Y=3 items {10,10,10} => W=4/3, SUM_1 = 30*4/3 = 40.
  // Stratum 2: C=2 fully observed {5,5} => W=1, SUM_2 = 10.
  const std::vector<StratumSummary> strata = {
      make_summary(0, 6, {1.0, 2.0, 3.0}),
      make_summary(1, 4, {10.0, 10.0, 10.0}),
      make_summary(2, 2, {5.0, 5.0}),
  };
  const auto result = estimate_sum(strata);
  EXPECT_NEAR(result.estimate, 12.0 + 40.0 + 10.0, 1e-9);
  EXPECT_EQ(result.population, 12u);
  EXPECT_EQ(result.sample_size, 8u);
}

TEST(EstimateSum, VarianceEquationSix) {
  // Single stratum: C=100, Y=4, values {1,3,5,7}: s^2 = 20/3.
  // Var = C(C-Y) s^2/Y = 100*96*(20/3)/4 = 16000.
  const auto result = estimate_sum({make_summary(0, 100, {1, 3, 5, 7})});
  EXPECT_NEAR(result.variance, 16000.0, 1e-6);
  EXPECT_NEAR(result.stddev(), std::sqrt(16000.0), 1e-6);
}

TEST(EstimateSum, FullyObservedStrataHaveZeroVariance) {
  const auto result = estimate_sum({make_summary(0, 3, {1.0, 2.0, 3.0})});
  EXPECT_DOUBLE_EQ(result.variance, 0.0);
  EXPECT_DOUBLE_EQ(result.estimate, 6.0);
}

TEST(EstimateSum, EmptyInput) {
  const auto result = estimate_sum({});
  EXPECT_EQ(result.estimate, 0.0);
  EXPECT_EQ(result.variance, 0.0);
  EXPECT_EQ(result.population, 0u);
}

TEST(EstimateMean, PaperEquationFourEight) {
  // Stratum 0: C=80, mean 10; stratum 1: C=20, mean 100.
  // MEAN = 0.8*10 + 0.2*100 = 28.
  const std::vector<StratumSummary> strata = {
      make_summary(0, 80, {10.0, 10.0}),
      make_summary(1, 20, {100.0, 100.0}),
  };
  const auto result = estimate_mean(strata);
  EXPECT_NEAR(result.estimate, 28.0, 1e-9);
}

TEST(EstimateMean, VarianceEquationNine) {
  // One stratum C=100, Y=4, values {1,3,5,7}: omega=1,
  // Var = s^2/Y * (C-Y)/C = (20/3)/4 * 0.96 = 1.6.
  const auto result = estimate_mean({make_summary(0, 100, {1, 3, 5, 7})});
  EXPECT_NEAR(result.variance, 1.6, 1e-9);
}

TEST(EstimateMean, EmptyAndZeroPopulation) {
  EXPECT_EQ(estimate_mean({}).estimate, 0.0);
}

TEST(EstimateCount, MatchesPopulationWithEqOneWeights) {
  const std::vector<StratumSummary> strata = {
      make_summary(0, 1000, {1, 2, 3, 4}),   // W = 250
      make_summary(1, 3, {9.0, 9.0, 9.0}),   // W = 1
  };
  const auto result = estimate_count(strata);
  EXPECT_NEAR(result.estimate, 1003.0, 1e-9);
  EXPECT_EQ(result.population, 1003u);
}

TEST(EstimateStratumSum, SingleGroup) {
  const auto s = make_summary(3, 50, {2.0, 4.0});
  const auto result = estimate_stratum_sum(s);
  EXPECT_NEAR(result.estimate, 6.0 * 25.0, 1e-9);
  EXPECT_GT(result.variance, 0.0);
}

TEST(EstimateStratumMean, SingleGroup) {
  const auto s = make_summary(3, 50, {2.0, 4.0});
  const auto result = estimate_stratum_mean(s);
  EXPECT_DOUBLE_EQ(result.estimate, 3.0);
  // Var = s^2/Y*(C-Y)/C = 2/2 * 48/50 = 0.96.
  EXPECT_NEAR(result.variance, 0.96, 1e-9);
}

TEST(MergeSummaries, GroupsAcrossWorkers) {
  std::vector<std::vector<StratumSummary>> parts = {
      {make_summary(0, 10, {1.0}), make_summary(1, 20, {2.0})},
      {make_summary(1, 30, {3.0}), make_summary(2, 5, {4.0})},
  };
  const auto merged = merge_summaries(parts);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].stratum, 0u);
  EXPECT_EQ(merged[1].stratum, 1u);
  EXPECT_EQ(merged[1].seen, 50u);
  EXPECT_EQ(merged[1].sampled, 2u);
  EXPECT_EQ(merged[2].stratum, 2u);
}

TEST(Summarize, FromStratifiedSample) {
  sampling::StratifiedSample<Record> sample;
  sampling::StratumSample<Record> stratum;
  stratum.stratum = 4;
  stratum.seen = 10;
  stratum.weight = 5.0;
  stratum.items = {Record{4, 1.0, 0}, Record{4, 3.0, 0}};
  sample.strata.push_back(stratum);
  const auto summaries = summarize(
      sample, [](const Record& r) { return r.value; });
  ASSERT_EQ(summaries.size(), 1u);
  EXPECT_EQ(summaries[0].stratum, 4u);
  EXPECT_DOUBLE_EQ(summaries[0].sum, 4.0);
  EXPECT_DOUBLE_EQ(summaries[0].sum_sq, 10.0);
  EXPECT_DOUBLE_EQ(summaries[0].weight, 5.0);
}

// Monte-Carlo: the Eq. 6 variance estimate should match the empirical
// variance of the SUM estimator across many resamples.
TEST(EstimateSum, VarianceMatchesEmpirical) {
  streamapprox::Rng rng(99);
  std::vector<double> population;
  double exact = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.gaussian(50.0, 12.0);
    population.push_back(v);
    exact += v;
  }
  constexpr std::size_t kSample = 400;
  streamapprox::RunningStats estimates;
  double predicted_var = 0.0;
  for (int t = 0; t < 300; ++t) {
    // Draw a uniform sample of kSample items (without replacement via
    // partial Fisher-Yates over indices).
    std::vector<double> values;
    std::vector<std::size_t> index(population.size());
    for (std::size_t i = 0; i < index.size(); ++i) index[i] = i;
    for (std::size_t i = 0; i < kSample; ++i) {
      const auto j = i + rng.uniform_int(index.size() - i);
      std::swap(index[i], index[j]);
      values.push_back(population[index[i]]);
    }
    const auto summary = make_summary(0, population.size(), values);
    const auto result = estimate_sum({summary});
    estimates.add(result.estimate);
    predicted_var += result.variance;
  }
  predicted_var /= 300.0;
  // Empirical variance of the estimator vs the Eq. 6 prediction: within 20%.
  EXPECT_NEAR(estimates.variance() / predicted_var, 1.0, 0.2);
  // And the estimator is unbiased.
  EXPECT_NEAR(estimates.mean(), exact, 4.0 * std::sqrt(predicted_var / 300));
}

}  // namespace
}  // namespace streamapprox::estimation
