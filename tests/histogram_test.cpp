// Unit tests for the weighted histogram (approximate linear query support).
#include "common/histogram.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/rng.h"

namespace streamapprox {
namespace {

TEST(Histogram, RejectsDegenerateRange) {
  EXPECT_THROW(Histogram(1.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, BucketEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(4), 10.0);
}

TEST(Histogram, RoutesValues) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.0);
  h.add(1.99);
  h.add(2.0);
  h.add(9.99);
  h.add(-1.0);
  h.add(10.0);
  EXPECT_DOUBLE_EQ(h.bucket(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket(1), 1.0);
  EXPECT_DOUBLE_EQ(h.bucket(4), 1.0);
  EXPECT_DOUBLE_EQ(h.underflow(), 1.0);
  EXPECT_DOUBLE_EQ(h.overflow(), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 6.0);
}

TEST(Histogram, WeightedMass) {
  Histogram h(0.0, 10.0, 2);
  h.add(1.0, 2.5);
  h.add(6.0, 0.5);
  EXPECT_DOUBLE_EQ(h.bucket(0), 2.5);
  EXPECT_DOUBLE_EQ(h.bucket(1), 0.5);
  EXPECT_DOUBLE_EQ(h.total(), 3.0);
}

TEST(Histogram, MergeAccumulates) {
  Histogram a(0.0, 10.0, 5);
  Histogram b(0.0, 10.0, 5);
  a.add(1.0);
  b.add(1.0);
  b.add(9.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.bucket(0), 2.0);
  EXPECT_DOUBLE_EQ(a.bucket(4), 1.0);
  EXPECT_DOUBLE_EQ(a.total(), 3.0);
}

TEST(Histogram, MergeShapeMismatchThrows) {
  Histogram a(0.0, 10.0, 5);
  Histogram b(0.0, 10.0, 4);
  Histogram c(0.0, 9.0, 5);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
  EXPECT_THROW(a.merge(c), std::invalid_argument);
}

TEST(Histogram, QuantileUniform) {
  Histogram h(0.0, 100.0, 100);
  Rng rng(1);
  for (int i = 0; i < 100000; ++i) h.add(rng.uniform(0.0, 100.0));
  EXPECT_NEAR(h.quantile(0.5), 50.0, 2.0);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 2.0);
  EXPECT_NEAR(h.quantile(0.1), 10.0, 2.0);
}

TEST(Histogram, QuantileEmptyReturnsLo) {
  Histogram h(5.0, 10.0, 4);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
}

TEST(Histogram, L1DistanceIdenticalIsZero) {
  Histogram a(0.0, 10.0, 10);
  Histogram b(0.0, 10.0, 10);
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform(0.0, 10.0);
    a.add(x);
    b.add(x);
  }
  EXPECT_NEAR(a.l1_distance(b), 0.0, 1e-12);
}

TEST(Histogram, L1DistanceDisjointIsTwo) {
  Histogram a(0.0, 10.0, 10);
  Histogram b(0.0, 10.0, 10);
  a.add(1.0);
  b.add(9.0);
  EXPECT_NEAR(a.l1_distance(b), 2.0, 1e-12);
}

TEST(Histogram, WeightedSampleRecreatesPopulationShape) {
  // A 10%-sampled histogram with weight 10 should approximate the full
  // histogram — the "statistically recreate the original items" property the
  // weights exist for.
  Histogram full(0.0, 100.0, 20);
  Histogram sampled(0.0, 100.0, 20);
  Rng rng(3);
  for (int i = 0; i < 200000; ++i) {
    const double x = rng.gaussian(50.0, 15.0);
    full.add(x);
    if (rng.bernoulli(0.1)) sampled.add(x, 10.0);
  }
  EXPECT_LT(full.l1_distance(sampled), 0.05);
  EXPECT_NEAR(sampled.total(), full.total(), full.total() * 0.05);
}

TEST(Histogram, ResetClears) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.5);
  h.reset();
  EXPECT_EQ(h.total(), 0.0);
  EXPECT_EQ(h.bucket(1), 0.0);
}

TEST(Histogram, RenderContainsBars) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(0.6);
  h.add(1.5);
  const auto text = h.render(10);
  EXPECT_NE(text.find('#'), std::string::npos);
  EXPECT_NE(text.find("[0, 1)"), std::string::npos);
}

}  // namespace
}  // namespace streamapprox
