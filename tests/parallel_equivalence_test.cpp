// Satellite acceptance test: the sharded execution mode (N partition-split
// OASRS workers + watermark-gated merge) must be statistically equivalent to
// the sequential path — identical records_seen per window (no record gained
// or lost by sharding) and estimates that agree within their error bounds.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <functional>
#include <thread>
#include <vector>

#include "core/stream_approx.h"
#include "ingest/replay.h"
#include "workload/synthetic.h"

namespace streamapprox::core {
namespace {

std::vector<engine::Record> make_stream(double seconds, double rate,
                                        std::uint64_t seed) {
  workload::SyntheticStream stream(workload::gaussian_substreams(rate), seed);
  return stream.generate(seconds);
}

StreamApproxConfig base_config(std::size_t workers) {
  StreamApproxConfig config;
  config.topic = "input";
  config.window = {1'000'000, 500'000};
  config.query = {Aggregation::kMean, false};
  config.workers = workers;
  config.seed = 99;
  // These tests replay-and-seal; idleness is not under test (the dedicated
  // idle tests override this). A generous grace keeps a starved replay
  // thread on a loaded CI box from tripping the idleness rule mid-stream.
  config.idle_partition_timeout_ms = 30'000;
  return config;
}

std::vector<WindowOutput> run_mode(
    const std::vector<engine::Record>& records, std::size_t workers,
    std::size_t partitions,
    const std::function<void(StreamApproxConfig&)>& mutate = {}) {
  ingest::Broker broker;
  broker.create_topic("input", partitions);
  ingest::ReplayTool replay(broker, "input", records, {});
  auto config = base_config(workers);
  if (mutate) mutate(config);
  StreamApprox system(broker, config);
  std::vector<WindowOutput> outputs;
  system.run([&](const WindowOutput& output) { outputs.push_back(output); });
  replay.wait();
  return outputs;
}

TEST(ParallelEquivalence, IdenticalSeenCountsPerWindow) {
  const auto records = make_stream(5.0, 24000.0, 7);
  const auto sequential = run_mode(records, 1, 3);
  const auto sharded = run_mode(records, 4, 3);

  ASSERT_GT(sequential.size(), 4u);
  ASSERT_EQ(sequential.size(), sharded.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(sequential[i].records_seen, sharded[i].records_seen)
        << "window " << i;
    EXPECT_EQ(sequential[i].estimate.window_end_us,
              sharded[i].estimate.window_end_us)
        << "window " << i;
  }
}

TEST(ParallelEquivalence, EstimatesAgreeWithinErrorBounds) {
  const auto records = make_stream(5.0, 24000.0, 8);
  const auto sequential = run_mode(records, 1, 3);
  const auto sharded = run_mode(records, 4, 3);

  ASSERT_EQ(sequential.size(), sharded.size());
  std::size_t within = 0;
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    const auto& a = sequential[i].estimate.overall;
    const auto& b = sharded[i].estimate.overall;
    EXPECT_GT(b.sample_size, 0u);
    // Both are unbiased estimators of the same window mean; at 3 sigma the
    // difference should be inside the summed bounds essentially always.
    const double tolerance = a.error_bound(3.0) + b.error_bound(3.0);
    if (std::abs(a.estimate - b.estimate) <= tolerance) ++within;
  }
  EXPECT_GE(within, sequential.size() - 1);  // slack for a tiny edge window
}

TEST(ParallelEquivalence, MorePartitionsThanStrata) {
  // An idle partition (5 partitions, 3 strata) must not wedge the merger.
  const auto records = make_stream(3.0, 20000.0, 9);
  const auto sequential = run_mode(records, 1, 5);
  const auto sharded = run_mode(records, 4, 5);
  ASSERT_EQ(sequential.size(), sharded.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(sequential[i].records_seen, sharded[i].records_seen);
  }
}

TEST(ParallelEquivalence, WorkersExceedPartitionsViaExchange) {
  // The tentpole acceptance case: an 8-worker / 2-partition topic. The
  // exchange re-keys partition batches by stratum hash onto 8 channels, so
  // parallelism is no longer capped by the partition count — and the
  // repartitioned path must still see exactly the sequential path's records
  // in every window.
  const auto records = make_stream(3.0, 20000.0, 10);
  const auto sequential = run_mode(records, 1, 2);
  const auto sharded = run_mode(records, 8, 2);
  ASSERT_GT(sequential.size(), 2u);
  ASSERT_EQ(sequential.size(), sharded.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(sequential[i].records_seen, sharded[i].records_seen)
        << "window " << i;
    EXPECT_EQ(sequential[i].estimate.window_end_us,
              sharded[i].estimate.window_end_us)
        << "window " << i;
  }
}

TEST(ParallelEquivalence, GroupModeStillCapsWorkersAtPartitions) {
  // With the exchange disabled, extra workers would have no partitions; the
  // facade caps parallelism and still produces every window.
  const auto records = make_stream(3.0, 20000.0, 10);
  const auto sequential = run_mode(records, 1, 2);
  const auto sharded = run_mode(
      records, 8, 2, [](StreamApproxConfig& c) { c.use_exchange = false; });
  ASSERT_EQ(sequential.size(), sharded.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(sequential[i].records_seen, sharded[i].records_seen);
  }
}

TEST(ParallelEquivalence, GroupModeMatchesSequential) {
  // The partition-split path (exchange off) remains equivalent too.
  const auto records = make_stream(4.0, 24000.0, 13);
  const auto sequential = run_mode(records, 1, 3);
  const auto sharded = run_mode(
      records, 4, 3, [](StreamApproxConfig& c) { c.use_exchange = false; });
  ASSERT_GT(sequential.size(), 3u);
  ASSERT_EQ(sequential.size(), sharded.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(sequential[i].records_seen, sharded[i].records_seen)
        << "window " << i;
  }
}

TEST(ParallelEquivalence, SinglePartitionStillShardsViaExchange) {
  // One partition used to force the sequential path; the exchange spreads
  // its strata across workers regardless.
  const auto records = make_stream(3.0, 20000.0, 14);
  const auto sequential = run_mode(records, 1, 1);
  const auto sharded = run_mode(records, 4, 1);
  ASSERT_GT(sequential.size(), 2u);
  ASSERT_EQ(sequential.size(), sharded.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(sequential[i].records_seen, sharded[i].records_seen);
  }
}

TEST(ParallelEquivalence, IdlePartitionDoesNotStallLiveWindows) {
  // 5 partitions, 3 strata: partitions 3 and 4 never deliver. On a LIVE
  // (unsealed) stream, windows must still flow once the idleness grace
  // period passes — in both execution modes.
  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    ingest::Broker broker;
    broker.create_topic("input", 5);
    ingest::Producer producer(broker, "input");
    producer.send_batch(make_stream(4.0, 20000.0, 12));
    // NOT sealed: the stream stays live while we look for windows.
    auto config = base_config(workers);
    config.idle_partition_timeout_ms = 100;
    StreamApprox system(broker, config);
    std::atomic<std::size_t> windows{0};
    std::thread runner([&] {
      system.run([&](const WindowOutput&) { windows.fetch_add(1); });
    });
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (windows.load() == 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_GT(windows.load(), 0u)
        << "no live windows with workers=" << workers;
    producer.finish();
    runner.join();
  }
}

TEST(ParallelEquivalence, DrainedActivePlusIdlePartitionStillFlushes) {
  // The last active partition drains (individually sealed) while an idle
  // partition stays unsealed: buffered windows must still flush instead of
  // waiting forever on the idle partition — in both execution modes.
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2}}) {
    ingest::Broker broker;
    auto& topic = broker.create_topic("input", 2);
    // Stratum 0 routes to partition 0; spans 3 s so several windows close.
    for (int i = 0; i < 3000; ++i) {
      topic.partition(0).append(engine::Record{0, 1.0, i * 1000});
    }
    topic.partition(0).seal();
    // Partition 1: never delivers, never sealed (while we watch).
    auto config = base_config(workers);
    config.idle_partition_timeout_ms = 100;
    StreamApprox system(broker, config);
    std::atomic<std::size_t> windows{0};
    std::thread runner([&] {
      system.run([&](const WindowOutput&) { windows.fetch_add(1); });
    });
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (windows.load() == 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_GT(windows.load(), 0u)
        << "stranded windows with workers=" << workers;
    topic.partition(1).seal();
    runner.join();
  }
}

TEST(ParallelEquivalence, IdlePartitionResumesWithoutDroppingLiveRecords) {
  // A partition that goes idle past idle_partition_timeout_ms stops gating
  // the watermark; when it later RESUMES with records at live event times
  // (at or beyond the watermark), it must re-enter the watermark and none of
  // its live records may be dropped — in every execution mode.
  struct Mode {
    const char* name;
    std::size_t workers;
    bool use_exchange;
  };
  for (const Mode mode : {Mode{"sequential", 1, true},
                          Mode{"exchange", 4, true},
                          Mode{"group", 4, false}}) {
    ingest::Broker broker;
    auto& topic = broker.create_topic("input", 2);
    // Phase 1: stratum 0 -> partition 0, 3000 records over [0 s, 3 s).
    // Partition 1 stays silent past the grace period.
    for (int i = 0; i < 3000; ++i) {
      topic.partition(0).append(engine::Record{0, 1.0, i * 1000});
    }
    auto config = base_config(mode.workers);
    config.window = {1'000'000, 1'000'000};  // tumbling: each record counted once
    config.idle_partition_timeout_ms = 100;
    config.use_exchange = mode.use_exchange;
    StreamApprox system(broker, config);
    std::atomic<std::size_t> windows{0};
    std::atomic<std::uint64_t> seen{0};
    std::thread runner([&] {
      system.run([&](const WindowOutput& output) {
        windows.fetch_add(1);
        seen.fetch_add(output.records_seen);
      });
    });
    // Wait until the idle partition was excluded and windows flowed.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (windows.load() == 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_GT(windows.load(), 0u) << mode.name << ": no windows while idle";
    // Phase 2: partition 1 resumes with LIVE records, [3 s, 6 s) — all at
    // or beyond any closed slide's end, so none may be late-dropped.
    for (int i = 0; i < 3000; ++i) {
      topic.partition(1).append(
          engine::Record{1, 2.0, 3'000'000 + i * 1000});
    }
    topic.seal();
    runner.join();
    EXPECT_EQ(windows.load(), 6u) << mode.name;
    EXPECT_EQ(seen.load(), 6000u)
        << mode.name << ": resumed partition's live records were dropped";
  }
}

TEST(ParallelEquivalence, RegistrySingleQueryMatchesLegacyWhenSharded) {
  // Backward compatibility on the exchange-sharded path. Sampled counts are
  // timing-dependent in sharded mode (workers pick up the atomic budget when
  // they first open a slide, racing the merger's re-tuning — a pre-existing
  // property, registry or not), so the equivalence contract here is the
  // sharded one: identical records_seen per window and estimates that agree
  // within their error bounds. Bit-identity is asserted on the sequential
  // path (pipeline_driver_test.RegistrySingleQueryBitIdenticalToLegacy).
  const auto records = make_stream(3.0, 20000.0, 15);
  const auto legacy = run_mode(records, 4, 2);
  const auto registry =
      run_mode(records, 4, 2, [](StreamApproxConfig& c) {
        c.queries.aggregate("mean", {Aggregation::kMean, false});
      });
  ASSERT_GT(legacy.size(), 2u);
  ASSERT_EQ(legacy.size(), registry.size());
  std::size_t within = 0;
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(legacy[i].records_seen, registry[i].records_seen);
    EXPECT_EQ(legacy[i].estimate.window_end_us,
              registry[i].estimate.window_end_us);
    const auto& a = legacy[i].estimate.overall;
    const auto& b = registry[i].estimate.overall;
    if (std::abs(a.estimate - b.estimate) <=
        a.error_bound(3.0) + b.error_bound(3.0)) {
      ++within;
    }
  }
  EXPECT_GE(within, legacy.size() - 1);  // slack for a tiny edge window
}

TEST(ParallelEquivalence, ThreeQueriesShardedSampleTheStreamOnce) {
  // Tentpole acceptance: >= 3 registered queries (mixed aggregations, one
  // per-stratum, one histogram) over one topic, on the exchange-sharded
  // path. The per-window sampling counters must equal the sequential
  // single-query run's — the stream is ingested, exchanged, sampled and
  // windowed exactly once no matter how many queries are registered.
  const auto records = make_stream(3.0, 20000.0, 16);
  const auto register_three = [](StreamApproxConfig& c) {
    c.queries.aggregate("sum by substream", {Aggregation::kSum, true});
    c.queries.aggregate("overall mean", {Aggregation::kMean, false});
    c.queries.histogram("values", {0.0, 12000.0, 24});
  };
  const auto sequential_single = run_mode(records, 1, 2);
  const auto sharded_multi = run_mode(records, 8, 2, register_three);

  ASSERT_GT(sequential_single.size(), 2u);
  ASSERT_EQ(sequential_single.size(), sharded_multi.size());
  for (std::size_t i = 0; i < sequential_single.size(); ++i) {
    ASSERT_EQ(sharded_multi[i].queries.size(), 3u);
    EXPECT_EQ(sequential_single[i].records_seen,
              sharded_multi[i].records_seen)
        << "window " << i;
    EXPECT_EQ(sequential_single[i].estimate.window_end_us,
              sharded_multi[i].estimate.window_end_us)
        << "window " << i;
    EXPECT_TRUE(sharded_multi[i].queries[2].histogram.has_value());
  }
}

TEST(ParallelEquivalence, OccupancyAwareBudgetSplitRestoresSamplingFraction) {
  // ROADMAP regression (the quickstart's 3-strata-over-4-workers case at a
  // 20% budget): the flat budget/workers split strands the shares of
  // stratum-less workers — the exchange hash routes strata 0 and 1 to one
  // worker and stratum 2 to another, leaving two workers with nothing — so
  // the sharded path sampled only ~10%. The occupancy-aware split
  // (budget · my_strata/total_strata, stamped deterministically on every
  // exchange batch) restores the effective sampling fraction.
  const auto records = make_stream(6.0, 20000.0, 17);
  const auto set_fraction = [](StreamApproxConfig& c) {
    c.budget = estimation::QueryBudget::fraction(0.20);
  };
  const auto sequential = run_mode(records, 1, 3, set_fraction);
  const auto sharded = run_mode(records, 4, 3, set_fraction);
  const auto fraction = [](const std::vector<WindowOutput>& outputs) {
    std::uint64_t seen = 0;
    std::uint64_t sampled = 0;
    for (const auto& output : outputs) {
      seen += output.records_seen;
      sampled += output.records_sampled;
    }
    return static_cast<double>(sampled) / static_cast<double>(seen);
  };
  const double sequential_fraction = fraction(sequential);
  const double sharded_fraction = fraction(sharded);
  EXPECT_GT(sequential_fraction, 0.15);
  EXPECT_LT(sequential_fraction, 0.30);
  // Before the occupancy-aware split this lands at ~half the sequential
  // fraction; with it the sharded path must sample comparably.
  EXPECT_GT(sharded_fraction, 0.8 * sequential_fraction);
}

// ---------------------------------------------------------------------------
// Work-stealing morsel scheduler: stolen morsels are absorbed into the
// thief's local samplers and merged at slide close, so redistribution must
// never change WHAT a window sees — only WHO processed it.

/// One hot stratum carrying most of the load: stratum-affine routing piles
/// the whole hot sub-stream onto a single channel, which is exactly the skew
/// that forces the scheduler to redistribute.
std::vector<engine::Record> make_hot_stream(double seconds, double rate,
                                            std::uint64_t seed) {
  constexpr std::size_t kStrata = 8;
  std::vector<workload::SubStreamSpec> specs;
  specs.reserve(kStrata);
  for (std::size_t i = 0; i < kStrata; ++i) {
    workload::SubStreamSpec spec;
    spec.id = static_cast<sampling::StratumId>(i);
    spec.dist = workload::Gaussian{100.0 * static_cast<double>(i + 1), 10.0};
    spec.rate_per_sec = i == 0
                            ? rate * 0.8
                            : rate * 0.2 / static_cast<double>(kStrata - 1);
    specs.push_back(spec);
  }
  workload::SyntheticStream stream(specs, seed);
  return stream.generate(seconds);
}

struct StatsRun {
  std::vector<WindowOutput> outputs;
  ShardedRunStats stats;
};

/// run_mode plus the scheduler counters of the sharded run.
StatsRun run_mode_with_stats(
    const std::vector<engine::Record>& records, std::size_t workers,
    std::size_t partitions,
    const std::function<void(StreamApproxConfig&)>& mutate = {}) {
  ingest::Broker broker;
  broker.create_topic("input", partitions);
  ingest::ReplayTool replay(broker, "input", records, {});
  auto config = base_config(workers);
  if (mutate) mutate(config);
  StreamApprox system(broker, config);
  StatsRun run;
  system.run(
      [&](const WindowOutput& output) { run.outputs.push_back(output); });
  replay.wait();
  run.stats = system.last_run_stats();
  return run;
}

void expect_identical_windows(const std::vector<WindowOutput>& sequential,
                              const std::vector<WindowOutput>& sharded) {
  ASSERT_EQ(sequential.size(), sharded.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(sequential[i].records_seen, sharded[i].records_seen)
        << "window " << i;
    EXPECT_EQ(sequential[i].estimate.window_end_us,
              sharded[i].estimate.window_end_us)
        << "window " << i;
  }
}

TEST(WorkStealing, ForcedStealsMatchSequential) {
  // Satellite acceptance: deliberately tiny deques (capacity 2) + one hot
  // stratum + per-record ingest cost force the hot channel's backlog through
  // the injector and the thieves' steal path — and every window must still
  // see exactly the sequential path's records, because stolen morsels land
  // in mergeable per-slide samplers and the per-channel completion tracker
  // keeps the watermark honest under out-of-order absorption.
  const auto records = make_hot_stream(3.0, 12000.0, 21);
  const auto sequential = run_mode(records, 1, 2);
  const auto sharded = run_mode_with_stats(
      records, 8, 2, [](StreamApproxConfig& c) {
        c.steal_deque_capacity = 2;
        c.ingest_cost = {500};
      });

  EXPECT_GT(sharded.stats.steals + sharded.stats.injector_pushes, 0u)
      << "the scheduler never redistributed work — the test lost its point";
  EXPECT_EQ(sharded.stats.injector_pushes, sharded.stats.injector_pops)
      << "morsels orphaned in the injector";
  ASSERT_GT(sequential.size(), 2u);
  expect_identical_windows(sequential, sharded.outputs);
}

TEST(WorkStealing, MultiExchangeMatchesSequential) {
  // Two exchange shards split the partition poll/route work; the merger
  // min-combines watermarks across both shards' channels. Records and
  // window boundaries must be unchanged.
  const auto records = make_stream(3.0, 20000.0, 22);
  const auto sequential = run_mode(records, 1, 4);
  const auto sharded = run_mode_with_stats(
      records, 4, 4, [](StreamApproxConfig& c) { c.exchanges = 2; });
  EXPECT_EQ(sharded.stats.exchanges, 2u);
  ASSERT_GT(sequential.size(), 2u);
  expect_identical_windows(sequential, sharded.outputs);
}

TEST(WorkStealing, MoreExchangesThanPartitions) {
  // 5 shards over 2 partitions: three shards own nothing and must resolve
  // straight to flush instead of gating the min-combined watermark.
  const auto records = make_stream(3.0, 20000.0, 23);
  const auto sequential = run_mode(records, 1, 2);
  const auto sharded = run_mode_with_stats(
      records, 4, 2, [](StreamApproxConfig& c) { c.exchanges = 5; });
  ASSERT_GT(sequential.size(), 2u);
  expect_identical_windows(sequential, sharded.outputs);
}

TEST(WorkStealing, StaticBindingStillMatchesSequential) {
  // work_stealing=false keeps the PR 2 static worker↔channel binding as a
  // supported schedule (the bench's baseline); it must stay equivalent.
  const auto records = make_hot_stream(3.0, 12000.0, 24);
  const auto sequential = run_mode(records, 1, 2);
  const auto sharded = run_mode_with_stats(
      records, 4, 2, [](StreamApproxConfig& c) { c.work_stealing = false; });
  EXPECT_EQ(sharded.stats.steals, 0u);
  EXPECT_EQ(sharded.stats.injector_pushes, 0u);
  ASSERT_GT(sequential.size(), 2u);
  expect_identical_windows(sequential, sharded.outputs);
}

// ---------------------------------------------------------------------------
// Sketch sinks: unlike sample-backed estimates (whose sampled counts are
// timing-dependent when sharded), sketch state is merge-EXACT — counter adds,
// register maxes and bucket-count adds commute and associate — so the sharded
// and work-stealing paths must produce answers BIT-IDENTICAL to the
// sequential path, for all three sketch kinds, no matter how the scheduler
// scattered the records.

void register_sketch_suite(StreamApproxConfig& c) {
  sketch::SketchSpec hot;
  hot.kind = sketch::SketchSpec::Kind::kCountMin;
  hot.key = sketch::SketchSpec::KeySource::kStratum;
  hot.top_k = 5;
  c.queries.sketch("hot strata", hot);
  sketch::SketchSpec distinct;
  distinct.kind = sketch::SketchSpec::Kind::kHyperLogLog;
  distinct.key = sketch::SketchSpec::KeySource::kValueInt;
  distinct.epsilon = 0.02;
  c.queries.sketch("distinct values", distinct);
  sketch::SketchSpec quant;
  quant.kind = sketch::SketchSpec::Kind::kQuantile;
  quant.epsilon = 0.02;
  c.queries.sketch("value quantiles", quant, {0.5, 0.9, 0.99});
}

void expect_identical_sketch_answers(
    const std::vector<WindowOutput>& sequential,
    const std::vector<WindowOutput>& sharded) {
  ASSERT_EQ(sequential.size(), sharded.size());
  std::size_t payloads = 0;
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(sequential[i].records_seen, sharded[i].records_seen)
        << "window " << i;
    ASSERT_EQ(sequential[i].queries.size(), sharded[i].queries.size());
    for (std::size_t q = 0; q < sequential[i].queries.size(); ++q) {
      const auto& a = sequential[i].queries[q];
      const auto& b = sharded[i].queries[q];
      ASSERT_EQ(a.name, b.name);
      ASSERT_EQ(a.sketch.has_value(), b.sketch.has_value())
          << "window " << i << " query " << a.name;
      if (!a.sketch.has_value()) continue;
      ++payloads;
      // Bit-identity: the full answer — counts, ranked heavy hitters,
      // distinct estimate and every quantile probe — compares EXACTLY
      // (SketchAnswer::operator== is defaulted member-wise equality,
      // including the doubles).
      EXPECT_TRUE(*a.sketch == *b.sketch)
          << "window " << i << " query " << a.name
          << ": sharded sketch answer diverged from sequential";
    }
  }
  // All three sketches must actually have produced payloads to compare.
  EXPECT_GE(payloads, 3u * (sequential.size() - 1));
}

TEST(SketchEquivalence, ExchangeShardedBitIdenticalToSequential) {
  const auto records = make_hot_stream(3.0, 12000.0, 31);
  const auto sequential = run_mode(records, 1, 2, register_sketch_suite);
  const auto sharded = run_mode(records, 8, 2, register_sketch_suite);
  ASSERT_GT(sequential.size(), 2u);
  expect_identical_sketch_answers(sequential, sharded);
}

TEST(SketchEquivalence, ForcedStealsBitIdenticalToSequential) {
  // Acceptance: tiny deques + a hot stratum + per-record ingest cost force
  // records through the thief path, scrambling which worker digests what.
  // Per-worker sketch state merges exactly at slide close, so even that
  // schedule must reproduce the sequential answers bit for bit.
  const auto records = make_hot_stream(3.0, 12000.0, 32);
  const auto sequential = run_mode(records, 1, 2, register_sketch_suite);
  const auto sharded =
      run_mode_with_stats(records, 8, 2, [](StreamApproxConfig& c) {
        register_sketch_suite(c);
        c.steal_deque_capacity = 2;
        c.ingest_cost = {500};
      });
  EXPECT_GT(sharded.stats.steals + sharded.stats.injector_pushes, 0u)
      << "the scheduler never redistributed work — the test lost its point";
  ASSERT_GT(sequential.size(), 2u);
  expect_identical_sketch_answers(sequential, sharded.outputs);
}

TEST(SketchEquivalence, TwoExchangesBitIdenticalToSequential) {
  // Acceptance: exchanges=2 splits the route/scatter work across two
  // exchange shards; per-worker sketches still merge to the same state.
  const auto records = make_hot_stream(3.0, 12000.0, 33);
  const auto sequential = run_mode(records, 1, 4, register_sketch_suite);
  const auto sharded =
      run_mode_with_stats(records, 4, 4, [](StreamApproxConfig& c) {
        register_sketch_suite(c);
        c.exchanges = 2;
      });
  EXPECT_EQ(sharded.stats.exchanges, 2u);
  ASSERT_GT(sequential.size(), 2u);
  expect_identical_sketch_answers(sequential, sharded.outputs);
}

TEST(SketchEquivalence, GroupModeBitIdenticalToSequential) {
  // The partition-split path (exchange off) absorbs whole partition batches
  // per worker — a completely different record→worker assignment, same
  // merged sketch state.
  const auto records = make_hot_stream(3.0, 12000.0, 34);
  const auto sequential = run_mode(records, 1, 3, register_sketch_suite);
  const auto sharded = run_mode(records, 4, 3, [](StreamApproxConfig& c) {
    register_sketch_suite(c);
    c.use_exchange = false;
  });
  ASSERT_GT(sequential.size(), 2u);
  expect_identical_sketch_answers(sequential, sharded);
}

TEST(ParallelEquivalence, ShardedAdaptiveBudgetStillGrows) {
  const auto records = make_stream(5.0, 30000.0, 11);
  ingest::Broker broker;
  broker.create_topic("input", 4);
  ingest::ReplayTool replay(broker, "input", records, {});
  auto config = base_config(4);
  config.budget = estimation::QueryBudget::relative_error(0.001);
  StreamApprox system(broker, config);
  std::vector<std::size_t> budgets;
  system.run([&](const WindowOutput& output) {
    budgets.push_back(output.budget_in_force);
  });
  replay.wait();
  ASSERT_GE(budgets.size(), 3u);
  EXPECT_GT(budgets.back(), budgets.front());
}

}  // namespace
}  // namespace streamapprox::core
