// Statistical acceptance tests for the sketch data structures: ε/δ sizing,
// fixed-seed error bounds on Zipf and uniform key streams, and merge
// property tests (associativity / commutativity / partition-exactness) over
// randomized splits — the properties the sharded runtime's bit-identity
// guarantee rests on.
#include "sketch/sketches.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <functional>
#include <numeric>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace streamapprox::sketch {
namespace {

std::vector<std::uint64_t> zipf_keys(std::size_t n, std::uint64_t universe,
                                     double s, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint64_t> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) keys.push_back(rng.zipf(universe, s));
  return keys;
}

std::vector<std::uint64_t> uniform_keys(std::size_t n, std::uint64_t universe,
                                        std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint64_t> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) keys.push_back(rng.uniform_int(universe));
  return keys;
}

// ---------------------------------------------------------------- Count-Min

TEST(CountMin, SizingFollowsErrorTargets) {
  // width = ⌈e/ε⌉, depth = ⌈ln(1/δ)⌉ — the classic guarantee-driven sizing.
  EXPECT_EQ(CountMinSketch::width_for(0.01), 272u);
  EXPECT_EQ(CountMinSketch::width_for(0.001), 2719u);
  EXPECT_EQ(CountMinSketch::depth_for(0.01), 5u);
  EXPECT_EQ(CountMinSketch::depth_for(0.1), 3u);
  EXPECT_THROW(CountMinSketch::width_for(0.0), std::invalid_argument);
  EXPECT_THROW(CountMinSketch::depth_for(1.0), std::invalid_argument);

  const auto cm = CountMinSketch::for_error(0.01, 0.01, 7);
  EXPECT_EQ(cm.width(), 272u);
  EXPECT_EQ(cm.depth(), 5u);
}

TEST(CountMin, NeverUndercounts) {
  CountMinSketch cm(64, 3, 42);  // deliberately narrow: collisions certain
  std::map<std::uint64_t, std::uint64_t> exact;
  Rng rng(11);
  for (int i = 0; i < 20'000; ++i) {
    const std::uint64_t key = rng.zipf(500, 1.2);
    cm.update(key);
    ++exact[key];
  }
  for (const auto& [key, count] : exact) {
    EXPECT_GE(cm.estimate(key), count);
  }
}

// Fixed-seed acceptance: the measured per-key error stays within the
// configured ε·N bound for at least a 1−δ fraction of probes (the guarantee
// is per-key probabilistic), on both skewed and uniform key streams.
void expect_count_min_error_bound(const std::vector<std::uint64_t>& keys,
                                  double epsilon, double delta,
                                  std::uint64_t seed) {
  auto cm = CountMinSketch::for_error(epsilon, delta, seed);
  std::map<std::uint64_t, std::uint64_t> exact;
  for (const std::uint64_t key : keys) {
    cm.update(key);
    ++exact[key];
  }
  ASSERT_EQ(cm.total(), keys.size());
  const double bound =
      epsilon * static_cast<double>(keys.size());
  std::size_t probes = 0;
  std::size_t within = 0;
  for (const auto& [key, count] : exact) {
    const std::uint64_t estimate = cm.estimate(key);
    ASSERT_GE(estimate, count);
    const double overcount = static_cast<double>(estimate - count);
    ++probes;
    if (overcount <= bound) ++within;
    // Even δ-tail failures stay within a small multiple of the bound at
    // these sizes — a hard backstop against gross hashing defects.
    EXPECT_LE(overcount, 5.0 * bound + 1.0);
  }
  EXPECT_GE(static_cast<double>(within),
            (1.0 - delta) * static_cast<double>(probes));
}

TEST(CountMin, ErrorWithinBoundOnZipfStream) {
  expect_count_min_error_bound(zipf_keys(200'000, 10'000, 1.2, 101),
                               /*epsilon=*/0.005, /*delta=*/0.01, 1);
}

TEST(CountMin, ErrorWithinBoundOnUniformStream) {
  expect_count_min_error_bound(uniform_keys(200'000, 5'000, 202),
                               /*epsilon=*/0.005, /*delta=*/0.01, 2);
}

// -------------------------------------------------------------- HyperLogLog

TEST(HyperLogLog, SizingFollowsErrorTarget) {
  // 1.04/√(2^p) ≤ ε, clamped to [4, 18].
  EXPECT_EQ(HyperLogLog::precision_for(0.3), 4);
  EXPECT_EQ(HyperLogLog::precision_for(0.02), 12);
  EXPECT_EQ(HyperLogLog::precision_for(1e-9), 18);
  EXPECT_THROW(HyperLogLog::precision_for(0.0), std::invalid_argument);

  const HyperLogLog hll(12, 7);
  EXPECT_EQ(hll.register_count(), 4096u);
  EXPECT_NEAR(hll.standard_error(), 1.04 / 64.0, 1e-12);
}

void expect_hll_error_bound(const std::vector<std::uint64_t>& keys,
                            double epsilon, std::uint64_t seed) {
  auto hll = HyperLogLog::for_error(epsilon, seed);
  std::set<std::uint64_t> exact;
  for (const std::uint64_t key : keys) {
    hll.add(key);
    exact.insert(key);
  }
  const double truth = static_cast<double>(exact.size());
  // 4σ acceptance on a fixed seed: σ = 1.04/√m ≤ ε by construction.
  EXPECT_NEAR(hll.estimate(), truth, 4.0 * epsilon * truth + 2.0)
      << "true distinct " << truth;
}

TEST(HyperLogLog, ErrorWithinBoundOnZipfStream) {
  // Zipf visits a heavy head plus a long sampled tail: the distinct set is
  // well below the universe and the estimate must still track it.
  expect_hll_error_bound(zipf_keys(300'000, 50'000, 1.1, 303), 0.02, 3);
}

TEST(HyperLogLog, ErrorWithinBoundOnUniformStream) {
  expect_hll_error_bound(uniform_keys(300'000, 40'000, 404), 0.02, 4);
}

TEST(HyperLogLog, SmallRangeUsesLinearCounting) {
  HyperLogLog hll(12, 9);
  for (std::uint64_t k = 0; k < 100; ++k) hll.add(k);
  EXPECT_NEAR(hll.estimate(), 100.0, 3.0);
}

// ---------------------------------------------------------------- Quantiles

TEST(Quantile, DeterministicRelativeErrorBound) {
  // The log-bucket guarantee is deterministic: EVERY reported quantile of a
  // nonzero-valued stream is within α of the exact quantile value.
  const double alpha = 0.01;
  for (const std::uint64_t seed : {55u, 56u}) {
    QuantileSketch sketch(alpha);
    Rng rng(seed);
    std::vector<double> values;
    for (int i = 0; i < 50'000; ++i) {
      // Mixed-sign heavy-tailed values exercise both bucket stores.
      const double v = rng.lognormal(2.0, 1.5) * (rng.uniform() < 0.25 ? -1 : 1);
      values.push_back(v);
      sketch.update(v);
    }
    std::sort(values.begin(), values.end());
    for (const double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
      const double exact = values[static_cast<std::size_t>(
          q * static_cast<double>(values.size() - 1))];
      const double approx = sketch.quantile(q);
      EXPECT_NEAR(approx, exact, alpha * std::abs(exact) + 1e-9)
          << "q=" << q << " seed=" << seed;
    }
  }
}

TEST(Quantile, HandlesZerosAndEmpty) {
  QuantileSketch sketch(0.05);
  EXPECT_EQ(sketch.quantile(0.5), 0.0);
  sketch.update(0.0);
  sketch.update(0.0);
  sketch.update(10.0);
  EXPECT_EQ(sketch.quantile(0.25), 0.0);
  EXPECT_NEAR(sketch.quantile(1.0), 10.0, 0.5);
}

// ---------------------------------------------- Merge property tests
//
// For each sketch: build one sketch over the whole stream, then split the
// stream into random parts, build one sketch per part, merge them in a
// random order/association, and require EXACT equality with the whole-stream
// sketch. Randomized splits + shuffled merge order cover commutativity and
// associativity in one property; equality (operator== over the full state,
// plus the digest) is the bit-identity the sharded runtime relies on.

template <typename Sketch, typename UpdateFn>
void expect_merge_partition_exact(const std::vector<std::uint64_t>& keys,
                                  const Sketch& reference,
                                  const UpdateFn& update,
                                  const std::function<Sketch()>& fresh) {
  Rng rng(0xF00D);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t parts = 2 + rng.uniform_int(6);
    std::vector<Sketch> partial;
    for (std::size_t p = 0; p < parts; ++p) partial.push_back(fresh());
    // Random assignment of records to parts (workers), preserving nothing
    // about order or balance.
    for (const std::uint64_t key : keys) {
      update(partial[rng.uniform_int(parts)], key);
    }
    // Merge in random association: repeatedly fold a random sketch into
    // another random one until one remains.
    std::vector<std::size_t> alive(parts);
    std::iota(alive.begin(), alive.end(), 0u);
    while (alive.size() > 1) {
      const std::size_t a = rng.uniform_int(alive.size());
      std::size_t b = rng.uniform_int(alive.size() - 1);
      if (b >= a) ++b;
      partial[alive[a]].merge(partial[alive[b]]);
      alive.erase(alive.begin() + static_cast<std::ptrdiff_t>(b));
    }
    const Sketch& merged = partial[alive.front()];
    EXPECT_EQ(merged, reference) << "trial " << trial;
    EXPECT_EQ(merged.digest(), reference.digest()) << "trial " << trial;
  }
}

TEST(SketchMerge, CountMinPartitionExact) {
  const auto keys = zipf_keys(30'000, 2'000, 1.1, 77);
  auto reference = CountMinSketch::for_error(0.01, 0.05, 5);
  for (const std::uint64_t key : keys) reference.update(key);
  expect_merge_partition_exact<CountMinSketch>(
      keys, reference,
      [](CountMinSketch& cm, std::uint64_t key) { cm.update(key); },
      [] { return CountMinSketch::for_error(0.01, 0.05, 5); });
}

TEST(SketchMerge, HyperLogLogPartitionExact) {
  const auto keys = uniform_keys(30'000, 10'000, 88);
  auto reference = HyperLogLog::for_error(0.03, 6);
  for (const std::uint64_t key : keys) reference.add(key);
  expect_merge_partition_exact<HyperLogLog>(
      keys, reference,
      [](HyperLogLog& hll, std::uint64_t key) { hll.add(key); },
      [] { return HyperLogLog::for_error(0.03, 6); });
}

TEST(SketchMerge, QuantilePartitionExact) {
  const auto keys = zipf_keys(30'000, 5'000, 1.0, 99);
  QuantileSketch reference(0.02);
  const auto update = [](QuantileSketch& s, std::uint64_t key) {
    // Signed value derived from the key so both stores participate.
    const double v = (key % 3 == 0 ? -1.0 : 1.0) *
                     (static_cast<double>(key) + 0.5);
    s.update(v);
  };
  for (const std::uint64_t key : keys) update(reference, key);
  expect_merge_partition_exact<QuantileSketch>(
      keys, reference, update, [] { return QuantileSketch(0.02); });
}

TEST(SketchMerge, IncompatibleShapesThrow) {
  auto a = CountMinSketch(64, 3, 1);
  auto b = CountMinSketch(64, 4, 1);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
  HyperLogLog h1(8, 1), h2(9, 1);
  EXPECT_THROW(h1.merge(h2), std::invalid_argument);
  QuantileSketch q1(0.01), q2(0.02);
  EXPECT_THROW(q1.merge(q2), std::invalid_argument);
}

}  // namespace
}  // namespace streamapprox::sketch
