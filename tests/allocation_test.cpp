// Tests for the per-stratum budget allocation policies.
#include "sampling/allocation.h"

#include <gtest/gtest.h>

#include <numeric>

namespace streamapprox::sampling {
namespace {

std::size_t total(const std::vector<std::size_t>& caps) {
  return std::accumulate(caps.begin(), caps.end(), std::size_t{0});
}

TEST(Allocation, EqualSplitsEvenly) {
  const auto caps = allocate_capacities(30, 3, AllocationPolicy::kEqual);
  EXPECT_EQ(caps, (std::vector<std::size_t>{10, 10, 10}));
}

TEST(Allocation, EqualDistributesRemainder) {
  const auto caps = allocate_capacities(10, 3, AllocationPolicy::kEqual);
  EXPECT_EQ(total(caps), 10u);
  for (std::size_t c : caps) {
    EXPECT_GE(c, 3u);
    EXPECT_LE(c, 4u);
  }
}

TEST(Allocation, ZeroBudget) {
  const auto caps = allocate_capacities(0, 3, AllocationPolicy::kEqual);
  EXPECT_EQ(caps, (std::vector<std::size_t>{0, 0, 0}));
}

TEST(Allocation, ZeroStrata) {
  EXPECT_TRUE(allocate_capacities(10, 0, AllocationPolicy::kEqual).empty());
}

TEST(Allocation, ProportionalTracksCounts) {
  const auto caps = allocate_capacities(
      100, 3, AllocationPolicy::kProportional, {8000, 1500, 500});
  EXPECT_EQ(total(caps), 100u);
  EXPECT_GT(caps[0], caps[1]);
  EXPECT_GT(caps[1], caps[2]);
  EXPECT_NEAR(static_cast<double>(caps[0]), 80.0, 2.0);
}

TEST(Allocation, ProportionalGuaranteesLiveStrataASlot) {
  const auto caps = allocate_capacities(
      100, 3, AllocationPolicy::kProportional, {99999, 99999, 1});
  EXPECT_GE(caps[2], 1u);
  EXPECT_EQ(total(caps), 100u);
}

TEST(Allocation, ProportionalWithoutHistoryFallsBackToEqual) {
  const auto caps =
      allocate_capacities(30, 3, AllocationPolicy::kProportional, {});
  EXPECT_EQ(caps, (std::vector<std::size_t>{10, 10, 10}));
  const auto zeros = allocate_capacities(
      30, 3, AllocationPolicy::kProportional, {0, 0, 0});
  EXPECT_EQ(zeros, (std::vector<std::size_t>{10, 10, 10}));
}

TEST(Allocation, BudgetSmallerThanStrata) {
  const auto caps = allocate_capacities(2, 5, AllocationPolicy::kEqual);
  EXPECT_EQ(total(caps), 2u);
}

}  // namespace
}  // namespace streamapprox::sampling
