// Sink-level acceptance for sketch-backed queries riding the driver's slide
// lifecycle: heavy hitters / distinct counts / quantiles evaluated per
// assembled window next to aggregate queries, completeness gating for
// dynamically attached sketches, and the cells-only path contract.
#include "sketch/sketch_sink.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/pipeline_driver.h"

namespace streamapprox::core {
namespace {

using engine::Record;
using sketch::SketchSpec;

constexpr std::int64_t kWindowUs = 1'000'000;
constexpr std::int64_t kSlideUs = 500'000;

PipelineDriverConfig sketch_driver_config() {
  PipelineDriverConfig config;
  config.window = {kWindowUs, kSlideUs};  // 2 slides per window
  config.queries.aggregate("mean", QuerySpec{Aggregation::kMean, false});
  SketchSpec hot;
  hot.kind = SketchSpec::Kind::kCountMin;
  hot.key = SketchSpec::KeySource::kStratum;
  hot.epsilon = 0.01;
  hot.delta = 0.01;
  hot.top_k = 5;
  config.queries.sketch("hot strata", hot);
  SketchSpec distinct;
  distinct.kind = SketchSpec::Kind::kHyperLogLog;
  distinct.key = SketchSpec::KeySource::kValueInt;
  distinct.epsilon = 0.02;
  config.queries.sketch("distinct sizes", distinct);
  SketchSpec latency;
  latency.kind = SketchSpec::Kind::kQuantile;
  latency.epsilon = 0.02;  // α: deterministic relative value bound
  config.queries.sketch("size quantiles", latency, {0.5, 0.9, 0.99});
  return config;
}

/// Zipf-hot strata, lognormal values, evenly spaced timestamps (4000/s).
std::vector<Record> skewed_stream(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Record> records;
  records.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    records.push_back(Record{
        static_cast<sampling::StratumId>(rng.zipf(16, 1.2)),
        rng.lognormal(3.0, 1.0), static_cast<std::int64_t>(i) * 250});
  }
  return records;
}

std::vector<const Record*> window_records(const std::vector<Record>& records,
                                          const WindowEstimate& window) {
  std::vector<const Record*> in_window;
  for (const Record& r : records) {
    if (r.event_time_us >= window.window_start_us &&
        r.event_time_us < window.window_end_us) {
      in_window.push_back(&r);
    }
  }
  return in_window;
}

const QueryOutput* find_query(const WindowOutput& output,
                              const std::string& name) {
  for (const auto& q : output.queries) {
    if (q.name == name) return &q;
  }
  return nullptr;
}

TEST(SketchQuery, AnswersMatchExactWindowTruthWithinBounds) {
  const auto records = skewed_stream(16'000, 42);  // [0, 4 s)
  std::vector<WindowOutput> outputs;
  PipelineDriver driver(sketch_driver_config(),
                        [&](const WindowOutput& o) { outputs.push_back(o); });
  driver.offer_batch(records);
  driver.finish();
  ASSERT_GE(outputs.size(), 5u);

  for (const auto& output : outputs) {
    ASSERT_EQ(output.queries.size(), 4u);
    const auto exact = window_records(records, output.estimate);

    // Count-Min heavy hitters: never undercount, overcount within ε·N, and
    // the dominant stratum of the Zipf stream leads the ranking.
    const QueryOutput* hot = find_query(output, "hot strata");
    ASSERT_NE(hot, nullptr);
    ASSERT_TRUE(hot->sketch.has_value());
    EXPECT_EQ(hot->sketch->stream_count, exact.size());
    std::map<std::uint64_t, std::uint64_t> counts;
    for (const Record* r : exact) ++counts[r->stratum];
    ASSERT_FALSE(hot->sketch->heavy_hitters.empty());
    EXPECT_EQ(hot->sketch->heavy_hitters.front().first, 0u);  // Zipf head
    for (const auto& [key, estimate] : hot->sketch->heavy_hitters) {
      const std::uint64_t truth = counts[key];
      EXPECT_GE(estimate, truth);
      EXPECT_LE(static_cast<double>(estimate - truth),
                0.01 * static_cast<double>(exact.size()) + 1.0);
    }

    // HyperLogLog distinct sizes: 4σ of the ε = 2% target.
    const QueryOutput* distinct = find_query(output, "distinct sizes");
    ASSERT_NE(distinct, nullptr);
    ASSERT_TRUE(distinct->sketch.has_value());
    std::set<long long> sizes;
    for (const Record* r : exact) sizes.insert(std::llround(r->value));
    const double truth = static_cast<double>(sizes.size());
    EXPECT_NEAR(distinct->sketch->distinct, truth, 4.0 * 0.02 * truth + 2.0);

    // Quantiles: the log-bucket bound is deterministic — within α of the
    // exact window quantile, every window, every probe.
    const QueryOutput* quantiles = find_query(output, "size quantiles");
    ASSERT_NE(quantiles, nullptr);
    ASSERT_TRUE(quantiles->sketch.has_value());
    std::vector<double> values;
    for (const Record* r : exact) values.push_back(r->value);
    std::sort(values.begin(), values.end());
    ASSERT_EQ(quantiles->sketch->quantiles.size(), 3u);
    for (const auto& [q, answer] : quantiles->sketch->quantiles) {
      const double exact_q = values[static_cast<std::size_t>(
          q * static_cast<double>(values.size() - 1))];
      EXPECT_NEAR(answer, exact_q, 0.02 * exact_q + 1e-9) << "q=" << q;
    }

    // The aggregate rides the same stream untouched.
    const QueryOutput* mean = find_query(output, "mean");
    ASSERT_NE(mean, nullptr);
    EXPECT_FALSE(mean->sketch.has_value());
  }
}

TEST(SketchQuery, SketchSinksDoNotPerturbSampleBackedQueries) {
  // Sketches digest the stream beside the sampler without consuming RNG or
  // budget: the aggregate's outputs must be BIT-identical with and without
  // sketch sinks registered.
  const auto records = skewed_stream(12'000, 43);
  const auto run = [&](bool with_sketches) {
    PipelineDriverConfig config;
    config.window = {kWindowUs, kSlideUs};
    config.queries.aggregate("mean", QuerySpec{Aggregation::kMean, false});
    if (with_sketches) {
      SketchSpec spec;
      spec.kind = SketchSpec::Kind::kCountMin;
      config.queries.sketch("extra", spec);
    }
    std::vector<WindowOutput> outputs;
    PipelineDriver driver(config, [&](const WindowOutput& o) {
      outputs.push_back(o);
    });
    driver.offer_batch(records);
    driver.finish();
    return outputs;
  };
  const auto bare = run(false);
  const auto sketched = run(true);
  ASSERT_EQ(bare.size(), sketched.size());
  for (std::size_t i = 0; i < bare.size(); ++i) {
    EXPECT_EQ(bare[i].records_seen, sketched[i].records_seen);
    EXPECT_EQ(bare[i].records_sampled, sketched[i].records_sampled);
    EXPECT_DOUBLE_EQ(bare[i].queries[0].estimate.overall.estimate,
                     sketched[i].queries[0].estimate.overall.estimate);
    EXPECT_DOUBLE_EQ(bare[i].queries[0].estimate.overall.variance,
                     sketched[i].queries[0].estimate.overall.variance);
  }
}

TEST(SketchQuery, DynamicAttachWithholdsPayloadUntilFullyObservedWindow) {
  const auto records = skewed_stream(16'000, 44);  // [0, 4 s)
  PipelineDriverConfig config;
  config.window = {kWindowUs, kSlideUs};
  config.queries.aggregate("mean", QuerySpec{Aggregation::kMean, false});
  std::vector<WindowOutput> outputs;
  PipelineDriver driver(config,
                        [&](const WindowOutput& o) { outputs.push_back(o); });

  // [0, 2 s): slides 0..3 close, windows end at slides 1..3.
  driver.offer_batch(records.data(), 8'000);
  driver.advance(2'000'000);
  ASSERT_EQ(outputs.size(), 3u);

  SketchSpec spec;
  spec.kind = SketchSpec::Kind::kCountMin;
  spec.top_k = 4;
  auto subscription = driver.attach_query(
      std::make_unique<sketch::SketchSink>("late hitters", spec),
      /*subscription_capacity=*/8);
  ASSERT_NE(subscription, nullptr);

  // [2, 3 s) opens slides 4 and 5 BEFORE the attach boundary publishes the
  // new sketch plan, so their states miss the spec; the attach itself
  // applies at slide 4's close. Slides 6 and 7 ([3, 4 s)) are opened after
  // the boundary and digest the spec fully — the sink's first
  // payload-bearing window is the first one made solely of such slides.
  driver.offer_batch(records.data() + 8'000, 4'000);
  driver.advance(3'000'000);  // closes slides 4, 5; attach applies at 4
  driver.offer_batch(records.data() + 12'000, 4'000);
  driver.finish();

  ASSERT_GE(outputs.size(), 7u);
  // Window ending at slide 4 predates the sink's first whole window.
  EXPECT_EQ(find_query(outputs[3], "late hitters"), nullptr);
  // Windows ending at slides 5 and 6 contain under-observed slides: the
  // query appears but withholds its sketch payload.
  for (std::size_t i : {std::size_t{4}, std::size_t{5}}) {
    const QueryOutput* late = find_query(outputs[i], "late hitters");
    ASSERT_NE(late, nullptr) << "window " << i;
    EXPECT_FALSE(late->sketch.has_value()) << "window " << i;
  }
  // Window ending at slide 7 is made of fully-digested slides 6 and 7.
  const QueryOutput* ready = find_query(outputs[6], "late hitters");
  ASSERT_NE(ready, nullptr);
  ASSERT_TRUE(ready->sketch.has_value());
  const auto exact = window_records(records, outputs[6].estimate);
  EXPECT_EQ(ready->sketch->stream_count, exact.size());
  EXPECT_FALSE(ready->sketch->heavy_hitters.empty());

  // The subscription channel carries the same gated payloads.
  std::size_t with_payload = 0;
  std::size_t without_payload = 0;
  while (auto output = subscription->poll()) {
    ASSERT_EQ(output->queries.size(), 1u);
    if (output->queries[0].sketch.has_value()) {
      ++with_payload;
    } else {
      ++without_payload;
    }
  }
  EXPECT_EQ(without_payload, 2u);
  EXPECT_GT(with_payload, 0u);

  // Detach retires it like any other sink.
  EXPECT_TRUE(driver.detach_query("late hitters"));
}

TEST(SketchQuery, CellsOnlyPathWithholdsPayloadButStaysAligned) {
  // Slides closed through close_slide_cells carry no record stream: a
  // non-empty cells-only slide must suppress the sketch payload (never a
  // partial answer), while genuinely empty slides count as fully observed.
  PipelineDriverConfig config;
  config.window = {kWindowUs, kSlideUs};
  SketchSpec spec;
  spec.kind = SketchSpec::Kind::kHyperLogLog;
  config.queries.sketch("distinct", spec);
  std::vector<WindowOutput> outputs;
  PipelineDriver driver(config,
                        [&](const WindowOutput& o) { outputs.push_back(o); });

  estimation::StratumSummary cell;
  cell.stratum = 1;
  cell.seen = 100;
  cell.sampled = 10;
  cell.sum = 55.0;
  cell.sum_sq = 400.0;
  driver.close_slide_cells(0, {cell});
  driver.close_slide_cells(1, {cell});
  driver.close_slide_cells(2, {});  // empty: complete by definition
  driver.close_slide_cells(3, {});
  ASSERT_EQ(outputs.size(), 3u);
  ASSERT_EQ(outputs[0].queries.size(), 1u);
  EXPECT_FALSE(outputs[0].queries[0].sketch.has_value());
  EXPECT_FALSE(outputs[1].queries[0].sketch.has_value());
  // Window of the two EMPTY slides: complete, payload present, zero counts.
  ASSERT_TRUE(outputs[2].queries[0].sketch.has_value());
  EXPECT_EQ(outputs[2].queries[0].sketch->stream_count, 0u);
  EXPECT_EQ(outputs[2].queries[0].sketch->distinct, 0.0);
}

TEST(SketchQuery, ExternalSampleWithSketchesMatchesSequential) {
  // close_slide_sample's sketch-carrying overload (the merger's path) must
  // produce the same sink behaviour as the driver-internal sequential path.
  const auto records = skewed_stream(8'000, 45);  // [0, 2 s)
  auto config = sketch_driver_config();

  std::vector<WindowOutput> sequential;
  {
    PipelineDriver driver(config, [&](const WindowOutput& o) {
      sequential.push_back(o);
    });
    driver.offer_batch(records);
    driver.finish();
  }

  std::vector<WindowOutput> external;
  {
    PipelineDriver driver(config, [&](const WindowOutput& o) {
      external.push_back(o);
    });
    // Reproduce the sequential per-slide state by hand: shard 0 of 1
    // samplers plus a SlideSketches fed the slide's records, closed through
    // the external overload.
    std::map<std::int64_t, std::vector<Record>> slides;
    for (const Record& r : records) {
      slides[r.event_time_us / kSlideUs].push_back(r);
    }
    for (const auto& [slide, slide_records] : slides) {
      PipelineDriver::Sampler sampler(driver.slide_sampler_config(slide),
                                      engine::RecordStratum{});
      sketch::SlideSketches sketches(*driver.sketch_plan());
      sampler.offer_batch(slide_records.data(), slide_records.size());
      sketches.absorb(slide_records.data(), slide_records.size());
      driver.close_slide_sample(slide, sampler.take(), std::move(sketches));
    }
  }

  ASSERT_EQ(sequential.size(), external.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    ASSERT_EQ(sequential[i].queries.size(), external[i].queries.size());
    for (std::size_t q = 0; q < sequential[i].queries.size(); ++q) {
      const auto& a = sequential[i].queries[q];
      const auto& b = external[i].queries[q];
      ASSERT_EQ(a.sketch.has_value(), b.sketch.has_value());
      if (a.sketch) {
        EXPECT_TRUE(*a.sketch == *b.sketch)
            << "window " << i << " query " << a.name;
      }
    }
  }
}

}  // namespace
}  // namespace streamapprox::core
