// Robustness under pressure: tiny channels (heavy backpressure), extreme
// parallelism, all query-budget kinds through the live facade, and facade
// behaviour on pathological topics.
#include <gtest/gtest.h>

#include "core/stream_approx.h"
#include "core/systems.h"
#include "engine/pipelined/aggregators.h"
#include "ingest/replay.h"
#include "workload/synthetic.h"

namespace streamapprox::core {
namespace {

using engine::Record;

std::vector<Record> make_stream(double seconds, double rate,
                                std::uint64_t seed) {
  workload::SyntheticStream stream(workload::gaussian_substreams(rate), seed);
  return stream.generate(seconds);
}

TEST(Robustness, PipelineSurvivesTinyChannels) {
  // Channel capacity 1 forces constant backpressure; correctness must not
  // depend on buffering.
  const auto records = make_stream(2.0, 50000.0, 1);
  engine::pipelined::PipelineConfig config;
  config.parallelism = 4;
  config.channel_capacity = 1;
  config.window = {500'000, 250'000};
  auto result = engine::pipelined::run_pipeline(
      records, config, [](std::size_t) {
        return std::make_unique<engine::pipelined::ExactSlideAggregator>();
      });
  EXPECT_EQ(result.records_processed, records.size());
  std::uint64_t seen = 0;
  for (const auto& window : result.windows) {
    for (const auto& cell : window.cells) seen += cell.seen;
  }
  EXPECT_GT(seen, 0u);
}

TEST(Robustness, PipelineMoreWorkersThanRecords) {
  std::vector<Record> records;
  for (int i = 0; i < 5; ++i) {
    records.push_back({0, 1.0, static_cast<std::int64_t>(i) * 100'000});
  }
  engine::pipelined::PipelineConfig config;
  config.parallelism = 16;
  config.window = {500'000, 500'000};
  auto result = engine::pipelined::run_pipeline(
      records, config, [](std::size_t) {
        return std::make_unique<engine::pipelined::ExactSlideAggregator>();
      });
  EXPECT_EQ(result.records_processed, 5u);
  ASSERT_EQ(result.windows.size(), 1u);
  std::uint64_t seen = 0;
  for (const auto& cell : result.windows[0].cells) seen += cell.seen;
  EXPECT_EQ(seen, 5u);
}

TEST(Robustness, BatchedSinglePartitionSingleWorker) {
  const auto records = make_stream(2.0, 20000.0, 2);
  SystemConfig config;
  config.sampling_fraction = 0.5;
  config.workers = 1;
  config.partitions = 1;
  config.batch_interval_us = 250'000;
  config.window = {500'000, 250'000};
  config.query_cost = engine::QueryCost{0};
  config.stage_overhead = std::chrono::microseconds(0);
  for (SystemKind kind : kAllSystems) {
    const auto result = run_system(kind, records, config);
    EXPECT_EQ(result.records_processed, records.size())
        << system_name(kind);
  }
}

class FacadeBudgetKinds
    : public ::testing::TestWithParam<estimation::QueryBudget> {};

TEST_P(FacadeBudgetKinds, RunsToCompletionWithSaneOutputs) {
  ingest::Broker broker;
  broker.create_topic("budget", 3);
  const auto records = make_stream(3.0, 20000.0, 3);
  ingest::ReplayTool replay(broker, "budget", records, {});

  StreamApproxConfig config;
  config.topic = "budget";
  config.query = {Aggregation::kMean, false};
  config.budget = GetParam();
  config.window = {1'000'000, 500'000};
  StreamApprox system(broker, config);
  std::size_t windows = 0;
  system.run([&](const WindowOutput& output) {
    ++windows;
    EXPECT_GT(output.records_seen, 0u);
    EXPECT_GT(output.records_sampled, 0u);
    EXPECT_GT(output.budget_in_force, 0u);
    EXPECT_TRUE(std::isfinite(output.estimate.overall.estimate));
  });
  replay.wait();
  EXPECT_GE(windows, 3u);
}

INSTANTIATE_TEST_SUITE_P(
    Budgets, FacadeBudgetKinds,
    ::testing::Values(estimation::QueryBudget::fraction(0.3),
                      estimation::QueryBudget::latency_ms(5.0),
                      estimation::QueryBudget::tokens(5000.0),
                      estimation::QueryBudget::relative_error(0.01)),
    [](const ::testing::TestParamInfo<estimation::QueryBudget>& info) {
      switch (info.param.kind) {
        case estimation::BudgetKind::kSampleFraction:
          return std::string("fraction");
        case estimation::BudgetKind::kLatencyMs:
          return std::string("latency");
        case estimation::BudgetKind::kResourceTokens:
          return std::string("tokens");
        case estimation::BudgetKind::kRelativeError:
          return std::string("accuracy");
      }
      return std::string("unknown");
    });

TEST(Robustness, FacadeEmptyTopic) {
  ingest::Broker broker;
  auto& topic = broker.create_topic("empty", 2);
  topic.seal();
  StreamApproxConfig config;
  config.topic = "empty";
  config.window = {1'000'000, 500'000};
  StreamApprox system(broker, config);
  std::size_t windows = 0;
  system.run([&](const WindowOutput&) { ++windows; });
  EXPECT_EQ(windows, 0u);  // nothing arrived, nothing emitted
}

TEST(Robustness, FacadeSingleRecord) {
  ingest::Broker broker;
  broker.create_topic("single", 1);
  {
    ingest::Producer producer(broker, "single");
    producer.send({0, 42.0, 100});
    producer.finish();
  }
  StreamApproxConfig config;
  config.topic = "single";
  config.window = {1'000'000, 1'000'000};  // tumbling
  config.query = {Aggregation::kSum, false};
  StreamApprox system(broker, config);
  std::size_t windows = 0;
  system.run([&](const WindowOutput& output) {
    ++windows;
    EXPECT_DOUBLE_EQ(output.estimate.overall.estimate, 42.0);
    EXPECT_DOUBLE_EQ(output.estimate.overall.variance, 0.0);
  });
  EXPECT_EQ(windows, 1u);
}

}  // namespace
}  // namespace streamapprox::core
