// Tests for the synthetic workload generators (§5.1 micro-benchmarks).
#include "workload/synthetic.h"

#include <gtest/gtest.h>

#include <unordered_map>

#include "common/stats.h"

namespace streamapprox::workload {
namespace {

TEST(Distribution, SampleMeansMatchAnalytic) {
  streamapprox::Rng rng(1);
  const std::vector<Distribution> dists = {
      Gaussian{10.0, 5.0}, Poisson{1000.0}, Uniform{2.0, 8.0},
      LogNormal{1.0, 0.5}, Gamma{3.0, 2.0}};
  for (const auto& dist : dists) {
    streamapprox::RunningStats stats;
    for (int i = 0; i < 100000; ++i) stats.add(sample_value(dist, rng));
    const double expected = distribution_mean(dist);
    EXPECT_NEAR(stats.mean(), expected,
                std::max(0.05 * std::abs(expected), 0.05));
    const double expected_var = distribution_variance(dist);
    EXPECT_NEAR(stats.variance(), expected_var, 0.1 * expected_var + 0.1);
  }
}

TEST(SyntheticStream, RejectsBadSpecs) {
  EXPECT_THROW(SyntheticStream({}, 1), std::invalid_argument);
  EXPECT_THROW(
      SyntheticStream({{0, Gaussian{}, 0.0}, {1, Gaussian{}, 0.0}}, 1),
      std::invalid_argument);
}

TEST(SyntheticStream, GeneratesSortedTimes) {
  SyntheticStream stream(gaussian_substreams(9000.0), 7);
  const auto records = stream.generate(2.0);
  for (std::size_t i = 1; i < records.size(); ++i) {
    ASSERT_LE(records[i - 1].event_time_us, records[i].event_time_us);
  }
  // ~9000/s * 2s.
  EXPECT_NEAR(static_cast<double>(records.size()), 18000.0, 10.0);
  // All event times inside [0, 2s).
  EXPECT_GE(records.front().event_time_us, 0);
  EXPECT_LT(records.back().event_time_us, 2'000'000);
}

TEST(SyntheticStream, RatesAreRespectedPerStratum) {
  SyntheticStream stream(gaussian_substreams_rates(8000, 2000, 100), 9);
  const auto records = stream.generate(5.0);
  std::unordered_map<sampling::StratumId, std::size_t> counts;
  for (const auto& record : records) ++counts[record.stratum];
  EXPECT_NEAR(static_cast<double>(counts[0]), 40000.0, 5.0);
  EXPECT_NEAR(static_cast<double>(counts[1]), 10000.0, 5.0);
  EXPECT_NEAR(static_cast<double>(counts[2]), 500.0, 5.0);
}

TEST(SyntheticStream, PerIntervalCountsAreStable) {
  // Jittered spacing keeps every 1-second interval near its nominal rate —
  // what the arrival-rate experiments (§5.4) depend on.
  SyntheticStream stream(gaussian_substreams(6000.0), 11);
  const auto records = stream.generate(5.0);
  std::vector<std::size_t> per_second(5, 0);
  for (const auto& record : records) {
    ++per_second[static_cast<std::size_t>(record.event_time_us / 1'000'000)];
  }
  for (auto count : per_second) {
    EXPECT_NEAR(static_cast<double>(count), 6000.0, 60.0);
  }
}

TEST(SyntheticStream, DeterministicBySeed) {
  SyntheticStream a(gaussian_substreams(1000.0), 42);
  SyntheticStream b(gaussian_substreams(1000.0), 42);
  const auto ra = a.generate(1.0);
  const auto rb = b.generate(1.0);
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    ASSERT_EQ(ra[i].stratum, rb[i].stratum);
    ASSERT_EQ(ra[i].value, rb[i].value);
    ASSERT_EQ(ra[i].event_time_us, rb[i].event_time_us);
  }
  SyntheticStream c(gaussian_substreams(1000.0), 43);
  const auto rc = c.generate(1.0);
  bool any_diff = false;
  for (std::size_t i = 0; i < std::min(ra.size(), rc.size()); ++i) {
    if (ra[i].value != rc[i].value) {
      any_diff = true;
      break;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(SyntheticStream, GenerateCountApproximatesTarget) {
  SyntheticStream stream(gaussian_substreams(9000.0), 5);
  const auto records = stream.generate_count(50000);
  EXPECT_NEAR(static_cast<double>(records.size()), 50000.0, 50.0);
}

TEST(SyntheticStream, ValuesFollowStratumDistribution) {
  SyntheticStream stream(gaussian_substreams(30000.0), 3);
  const auto records = stream.generate(3.0);
  std::unordered_map<sampling::StratumId, streamapprox::RunningStats> stats;
  for (const auto& record : records) stats[record.stratum].add(record.value);
  EXPECT_NEAR(stats[0].mean(), 10.0, 0.5);
  EXPECT_NEAR(stats[1].mean(), 1000.0, 5.0);
  EXPECT_NEAR(stats[2].mean(), 10000.0, 50.0);
}

TEST(CannedWorkloads, SkewSharesMatchPaper) {
  const auto gaussian = skewed_gaussian_substreams(10000.0);
  ASSERT_EQ(gaussian.size(), 3u);
  EXPECT_DOUBLE_EQ(gaussian[0].rate_per_sec, 8000.0);
  EXPECT_DOUBLE_EQ(gaussian[1].rate_per_sec, 1900.0);
  EXPECT_DOUBLE_EQ(gaussian[2].rate_per_sec, 100.0);

  const auto poisson = skewed_poisson_substreams(10000.0);
  EXPECT_DOUBLE_EQ(poisson[0].rate_per_sec, 8000.0);
  EXPECT_DOUBLE_EQ(poisson[1].rate_per_sec, 1999.0);
  EXPECT_DOUBLE_EQ(poisson[2].rate_per_sec, 1.0);
}

TEST(CannedWorkloads, PoissonParamsMatchPaper) {
  const auto specs = poisson_substreams(9000.0);
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_DOUBLE_EQ(std::get<Poisson>(specs[0].dist).lambda, 10.0);
  EXPECT_DOUBLE_EQ(std::get<Poisson>(specs[1].dist).lambda, 1000.0);
  EXPECT_DOUBLE_EQ(std::get<Poisson>(specs[2].dist).lambda, 1e8);
}

}  // namespace
}  // namespace streamapprox::workload
