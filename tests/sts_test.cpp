// Tests for the Spark STS baseline: grouping, per-stratum proportional
// sampling, exact vs non-exact variants, weights.
#include "sampling/sts.h"

#include <gtest/gtest.h>

#include "common/stats.h"
#include "engine/record.h"

namespace streamapprox::sampling {
namespace {

using streamapprox::engine::Record;
using streamapprox::engine::RecordStratum;

std::vector<Record> mixed_batch(const std::vector<std::size_t>& counts,
                                std::uint64_t seed) {
  streamapprox::Rng rng(seed);
  std::vector<Record> batch;
  for (StratumId s = 0; s < counts.size(); ++s) {
    for (std::size_t i = 0; i < counts[s]; ++i) {
      batch.push_back(Record{s, rng.gaussian(100.0 * (s + 1), 5.0), 0});
    }
  }
  // Shuffle so grouping actually has to work.
  for (std::size_t i = batch.size(); i > 1; --i) {
    std::swap(batch[i - 1], batch[rng.uniform_int(i)]);
  }
  return batch;
}

TEST(GroupByStratum, PartitionsExactly) {
  const auto batch = mixed_batch({100, 200, 50}, 1);
  const auto groups = group_by_stratum(batch, RecordStratum{});
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups.at(0).size(), 100u);
  EXPECT_EQ(groups.at(1).size(), 200u);
  EXPECT_EQ(groups.at(2).size(), 50u);
  for (const auto& [stratum, items] : groups) {
    for (const auto& record : items) EXPECT_EQ(record.stratum, stratum);
  }
}

TEST(GroupByStratum, EmptyBatch) {
  const std::vector<Record> batch;
  EXPECT_TRUE(group_by_stratum(batch, RecordStratum{}).empty());
}

TEST(StsSample, ProportionalAllocation) {
  // Unlike OASRS's equal budgets, STS samples each stratum at the same
  // fraction — sample sizes track stratum sizes (§4.1).
  const auto batch = mixed_batch({10000, 1000, 100}, 2);
  streamapprox::Rng rng(2);
  const auto sample =
      sts_sample_local(batch, RecordStratum{}, 0.2, rng, /*exact=*/true);
  ASSERT_EQ(sample.strata.size(), 3u);
  for (const auto& stratum : sample.strata) {
    const double expected = 0.2 * static_cast<double>(stratum.seen);
    EXPECT_NEAR(static_cast<double>(stratum.items.size()), expected,
                expected * 0.05 + 2.0)
        << "stratum " << stratum.stratum;
  }
}

TEST(StsSample, ExactVariantHitsExactSizes) {
  const auto batch = mixed_batch({5000, 5000}, 3);
  streamapprox::Rng rng(3);
  const auto sample =
      sts_sample_local(batch, RecordStratum{}, 0.3, rng, /*exact=*/true);
  for (const auto& stratum : sample.strata) {
    EXPECT_EQ(stratum.items.size(), 1500u);
  }
}

TEST(StsSample, NonExactVariantApproximateSizes) {
  const auto batch = mixed_batch({20000}, 4);
  streamapprox::Rng rng(4);
  const auto sample =
      sts_sample_local(batch, RecordStratum{}, 0.3, rng, /*exact=*/false);
  ASSERT_EQ(sample.strata.size(), 1u);
  EXPECT_NEAR(static_cast<double>(sample.strata[0].items.size()), 6000.0,
              300.0);
}

TEST(StsSample, WeightsAreInverseFraction) {
  const auto batch = mixed_batch({10000, 2000}, 5);
  streamapprox::Rng rng(5);
  const auto sample =
      sts_sample_local(batch, RecordStratum{}, 0.25, rng, /*exact=*/true);
  for (const auto& stratum : sample.strata) {
    EXPECT_NEAR(stratum.weight, 4.0, 0.05);
    EXPECT_EQ(stratum.seen, stratum.stratum == 0 ? 10000u : 2000u);
  }
}

TEST(StsSample, NoStratumOverlooked) {
  const auto batch = mixed_batch({100000, 10}, 6);
  streamapprox::Rng rng(6);
  const auto sample =
      sts_sample_local(batch, RecordStratum{}, 0.5, rng, /*exact=*/true);
  ASSERT_EQ(sample.strata.size(), 2u);
  // Even the 10-item stratum contributes: STS samples it at the fraction.
  bool found_small = false;
  for (const auto& stratum : sample.strata) {
    if (stratum.seen == 10) {
      found_small = true;
      EXPECT_GE(stratum.items.size(), 1u);
    }
  }
  EXPECT_TRUE(found_small);
}

TEST(StsSample, WeightedSumUnbiasedPerStratum) {
  const auto batch = mixed_batch({50000, 50000}, 7);
  double exact0 = 0.0;
  for (const auto& record : batch) {
    if (record.stratum == 0) exact0 += record.value;
  }
  streamapprox::Rng rng(7);
  streamapprox::RunningStats errors;
  for (int t = 0; t < 15; ++t) {
    const auto sample =
        sts_sample_local(batch, RecordStratum{}, 0.2, rng, /*exact=*/true);
    for (const auto& stratum : sample.strata) {
      if (stratum.stratum != 0) continue;
      double approx = 0.0;
      for (const auto& record : stratum.items) approx += record.value;
      approx *= stratum.weight;
      errors.add((approx - exact0) / exact0);
    }
  }
  EXPECT_LT(std::abs(errors.mean()), 0.005);
}

}  // namespace
}  // namespace streamapprox::sampling
