// Tests for Algorithm R (paper Algorithm 1) and Algorithm L reservoirs:
// size bounds, counters, Eq. 1 weights, selection uniformity (chi-square),
// distributed merge.
#include "sampling/reservoir.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/stats.h"

namespace streamapprox::sampling {
namespace {

TEST(Reservoir, FillsUpToCapacity) {
  ReservoirSampler<int> reservoir(10, 1);
  for (int i = 0; i < 5; ++i) reservoir.offer(i);
  EXPECT_EQ(reservoir.items().size(), 5u);
  EXPECT_EQ(reservoir.seen(), 5u);
  // Under-filled: every item kept in arrival order.
  EXPECT_EQ(reservoir.items(), (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Reservoir, NeverExceedsCapacity) {
  ReservoirSampler<int> reservoir(10, 2);
  for (int i = 0; i < 10000; ++i) {
    reservoir.offer(i);
    ASSERT_LE(reservoir.items().size(), 10u);
  }
  EXPECT_EQ(reservoir.items().size(), 10u);
  EXPECT_EQ(reservoir.seen(), 10000u);
}

TEST(Reservoir, WeightFollowsEquationOne) {
  ReservoirSampler<int> reservoir(10, 3);
  for (int i = 0; i < 5; ++i) reservoir.offer(i);
  EXPECT_DOUBLE_EQ(reservoir.weight(), 1.0);  // C_i <= N_i
  for (int i = 5; i < 40; ++i) reservoir.offer(i);
  EXPECT_DOUBLE_EQ(reservoir.weight(), 4.0);  // C_i/N_i = 40/10
}

TEST(Reservoir, ZeroCapacityKeepsNothing) {
  ReservoirSampler<int> reservoir(0, 4);
  for (int i = 0; i < 100; ++i) reservoir.offer(i);
  EXPECT_TRUE(reservoir.items().empty());
  EXPECT_EQ(reservoir.seen(), 100u);
}

TEST(Reservoir, ResetClearsAndRetunes) {
  ReservoirSampler<int> reservoir(5, 5);
  for (int i = 0; i < 20; ++i) reservoir.offer(i);
  reservoir.reset(8);
  EXPECT_EQ(reservoir.seen(), 0u);
  EXPECT_TRUE(reservoir.items().empty());
  EXPECT_EQ(reservoir.capacity(), 8u);
  for (int i = 0; i < 8; ++i) reservoir.offer(i);
  EXPECT_EQ(reservoir.items().size(), 8u);
}

// Selection uniformity: over many trials, every stream position should land
// in the reservoir with probability N/n. Chi-square over 100 positions with
// 99 dof: critical value at alpha=0.001 is ~148.2.
TEST(Reservoir, SelectionIsUniform) {
  constexpr int kStream = 100;
  constexpr int kCapacity = 10;
  constexpr int kTrials = 20000;
  std::vector<double> hits(kStream, 0.0);
  for (int t = 0; t < kTrials; ++t) {
    ReservoirSampler<int> reservoir(kCapacity, 1000 + t);
    for (int i = 0; i < kStream; ++i) reservoir.offer(i);
    for (int item : reservoir.items()) hits[item] += 1.0;
  }
  const std::vector<double> expected(
      kStream, kTrials * static_cast<double>(kCapacity) / kStream);
  EXPECT_LT(streamapprox::chi_square(hits, expected), 148.2);
}

TEST(Reservoir, SampleMeanTracksStreamMean) {
  ReservoirSampler<double> reservoir(500, 7);
  streamapprox::RunningStats stream;
  streamapprox::Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.gaussian(50.0, 10.0);
    stream.add(x);
    reservoir.offer(x);
  }
  streamapprox::RunningStats sample;
  for (double x : reservoir.items()) sample.add(x);
  EXPECT_NEAR(sample.mean(), stream.mean(), 2.0);  // ~4 sigma of SE
}

TEST(Reservoir, TakeItemsMovesOut) {
  ReservoirSampler<int> reservoir(4, 8);
  for (int i = 0; i < 4; ++i) reservoir.offer(i);
  auto items = reservoir.take_items();
  EXPECT_EQ(items.size(), 4u);
  EXPECT_TRUE(reservoir.items().empty());
  EXPECT_EQ(reservoir.seen(), 4u);  // counter unaffected
}

TEST(ReservoirMerge, CountsAccumulate) {
  ReservoirSampler<int> a(10, 9);
  ReservoirSampler<int> b(10, 10);
  for (int i = 0; i < 100; ++i) a.offer(i);
  for (int i = 100; i < 150; ++i) b.offer(i);
  a.merge(b);
  EXPECT_EQ(a.seen(), 150u);
  EXPECT_EQ(a.items().size(), 10u);
}

TEST(ReservoirMerge, EmptySidesAreNoOps) {
  ReservoirSampler<int> a(10, 11);
  ReservoirSampler<int> b(10, 12);
  for (int i = 0; i < 20; ++i) a.offer(i);
  const auto before = a.items();
  a.merge(b);  // empty rhs
  EXPECT_EQ(a.items(), before);
  EXPECT_EQ(a.seen(), 20u);

  ReservoirSampler<int> c(10, 13);
  c.merge(a);  // empty lhs adopts rhs sample
  EXPECT_EQ(c.seen(), 20u);
  EXPECT_EQ(c.items().size(), 10u);
}

TEST(ReservoirMerge, ProportionalRepresentation) {
  // Merge a reservoir that saw 9000 items with one that saw 1000: about 90%
  // of merged slots should come from the first stream.
  constexpr int kTrials = 2000;
  double from_big = 0.0;
  for (int t = 0; t < kTrials; ++t) {
    ReservoirSampler<int> big(20, 2000 + t);
    ReservoirSampler<int> small(20, 7000 + t);
    for (int i = 0; i < 9000; ++i) big.offer(1);
    for (int i = 0; i < 1000; ++i) small.offer(2);
    big.merge(small);
    for (int item : big.items()) {
      if (item == 1) from_big += 1.0;
    }
  }
  const double share = from_big / (kTrials * 20.0);
  EXPECT_NEAR(share, 0.9, 0.02);
}

// Distributed execution (§3.2): merging w workers' local reservoirs must
// still select every stream position uniformly. Chi-square over positions,
// 99 dof, alpha=0.001 critical ~148.2.
TEST(ReservoirMerge, MergedSelectionIsUniform) {
  constexpr int kStream = 100;
  constexpr int kCapacity = 10;
  constexpr int kWorkers = 4;
  constexpr int kTrials = 20000;
  std::vector<double> hits(kStream, 0.0);
  for (int t = 0; t < kTrials; ++t) {
    std::vector<ReservoirSampler<int>> workers;
    for (int w = 0; w < kWorkers; ++w) {
      workers.emplace_back(kCapacity, 50000 + t * kWorkers + w);
    }
    // Round-robin distribution, as the engines do.
    for (int i = 0; i < kStream; ++i) workers[i % kWorkers].offer(i);
    ReservoirSampler<int> merged = std::move(workers[0]);
    for (int w = 1; w < kWorkers; ++w) merged.merge(workers[w]);
    EXPECT_EQ(merged.seen(), static_cast<std::uint64_t>(kStream));
    EXPECT_LE(merged.items().size(), static_cast<std::size_t>(kCapacity));
    for (int item : merged.items()) hits[item] += 1.0;
  }
  const std::vector<double> expected(
      kStream, kTrials * static_cast<double>(kCapacity) / kStream);
  EXPECT_LT(streamapprox::chi_square(hits, expected), 148.2);
}

TEST(FastReservoir, SizeAndCounter) {
  FastReservoirSampler<int> reservoir(16, 14);
  for (int i = 0; i < 5000; ++i) reservoir.offer(i);
  EXPECT_EQ(reservoir.items().size(), 16u);
  EXPECT_EQ(reservoir.seen(), 5000u);
  EXPECT_DOUBLE_EQ(reservoir.weight(), 5000.0 / 16.0);
}

TEST(FastReservoir, UnderFilledKeepsAll) {
  FastReservoirSampler<int> reservoir(100, 15);
  for (int i = 0; i < 30; ++i) reservoir.offer(i);
  EXPECT_EQ(reservoir.items().size(), 30u);
  EXPECT_DOUBLE_EQ(reservoir.weight(), 1.0);
}

TEST(FastReservoir, SelectionIsUniform) {
  constexpr int kStream = 100;
  constexpr int kCapacity = 10;
  constexpr int kTrials = 20000;
  std::vector<double> hits(kStream, 0.0);
  for (int t = 0; t < kTrials; ++t) {
    FastReservoirSampler<int> reservoir(kCapacity, 4000 + t);
    for (int i = 0; i < kStream; ++i) reservoir.offer(i);
    for (int item : reservoir.items()) hits[item] += 1.0;
  }
  const std::vector<double> expected(
      kStream, kTrials * static_cast<double>(kCapacity) / kStream);
  EXPECT_LT(streamapprox::chi_square(hits, expected), 148.2);
}

TEST(FastReservoir, ResetRestartsCleanly) {
  FastReservoirSampler<int> reservoir(8, 16);
  for (int i = 0; i < 100; ++i) reservoir.offer(i);
  reservoir.reset();
  EXPECT_EQ(reservoir.seen(), 0u);
  for (int i = 0; i < 8; ++i) reservoir.offer(i);
  EXPECT_EQ(reservoir.items().size(), 8u);
  EXPECT_DOUBLE_EQ(reservoir.weight(), 1.0);
}

// Algorithm R and Algorithm L draw statistically identical samples: compare
// their selection frequencies on the same stream with the two-sample
// chi-square statistic sum (O_l - O_r)^2 / (O_l + O_r), which is chi-square
// with dof = positions - 1 when both samplers share one distribution.
TEST(FastReservoir, MatchesAlgorithmRDistribution) {
  constexpr int kStream = 60;
  constexpr int kCapacity = 6;
  constexpr int kTrials = 30000;
  std::vector<double> hits_r(kStream, 0.0);
  std::vector<double> hits_l(kStream, 0.0);
  for (int t = 0; t < kTrials; ++t) {
    ReservoirSampler<int> r(kCapacity, 5000 + t);
    FastReservoirSampler<int> l(kCapacity, 90000 + t);
    for (int i = 0; i < kStream; ++i) {
      r.offer(i);
      l.offer(i);
    }
    for (int item : r.items()) hits_r[item] += 1.0;
    for (int item : l.items()) hits_l[item] += 1.0;
  }
  double two_sample = 0.0;
  for (int i = 0; i < kStream; ++i) {
    const double total = hits_l[i] + hits_r[i];
    if (total <= 0.0) continue;
    const double diff = hits_l[i] - hits_r[i];
    two_sample += diff * diff / total;
  }
  // 59 dof, alpha=0.001 critical ~98.3.
  EXPECT_LT(two_sample, 98.3);
}

}  // namespace
}  // namespace streamapprox::sampling
