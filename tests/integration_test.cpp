// Integration tests across modules: full pipelines over every workload, the
// paper's qualitative orderings, and failure injection.
#include <gtest/gtest.h>

#include "core/query.h"
#include "core/systems.h"
#include "workload/netflow.h"
#include "workload/synthetic.h"
#include "workload/taxi.h"

namespace streamapprox::core {
namespace {

SystemConfig fast_config(double fraction = 0.4) {
  SystemConfig config;
  config.sampling_fraction = fraction;
  config.workers = 2;
  config.batch_interval_us = 250'000;
  config.window = {1'000'000, 500'000};
  config.query_cost = engine::QueryCost{0};
  config.stage_overhead = std::chrono::microseconds(0);
  return config;
}

double run_loss(SystemKind kind, const std::vector<engine::Record>& records,
                const SystemConfig& config, const QuerySpec& query) {
  const auto result = run_system(kind, records, config);
  const auto exact = exact_window_results(records, config.window);
  return mean_accuracy_loss(evaluate_windows(result.windows, query),
                            evaluate_windows(exact, query), query);
}

TEST(Integration, NetworkCaseStudyPerProtocolSums) {
  workload::NetFlowConfig netflow;
  netflow.flows_per_sec = 40000.0;
  const auto records = workload::generate_netflow(netflow, 160000, 31);
  const auto config = fast_config(0.6);
  QuerySpec query{Aggregation::kSum, true};
  for (SystemKind kind : {SystemKind::kFlinkApprox, SystemKind::kSparkApprox,
                          SystemKind::kSparkSTS}) {
    const double loss = run_loss(kind, records, config, query);
    EXPECT_LT(loss, 0.12) << system_name(kind);
  }
}

TEST(Integration, TaxiCaseStudyPerBoroughMeans) {
  workload::TaxiConfig taxi;
  taxi.rides_per_sec = 40000.0;
  const auto records = workload::generate_taxi_rides(taxi, 160000, 37);
  const auto config = fast_config(0.6);
  QuerySpec query{Aggregation::kMean, true};
  for (SystemKind kind : {SystemKind::kFlinkApprox, SystemKind::kSparkApprox,
                          SystemKind::kSparkSTS}) {
    const double loss = run_loss(kind, records, config, query);
    EXPECT_LT(loss, 0.08) << system_name(kind);
  }
}

TEST(Integration, StratifiedBeatsSrsOnSkewedPoisson) {
  // The §5.7-II long-tail result: stratified systems (OASRS, STS) must beat
  // SRS on the skewed Poisson mix where the 0.01% sub-stream dominates.
  workload::SyntheticStream stream(
      workload::skewed_poisson_substreams(40000.0), 41);
  const auto records = stream.generate(4.0);
  const auto config = fast_config(0.2);
  QuerySpec query{Aggregation::kMean, false};
  const double srs = run_loss(SystemKind::kSparkSRS, records, config, query);
  const double oasrs_flink =
      run_loss(SystemKind::kFlinkApprox, records, config, query);
  const double oasrs_spark =
      run_loss(SystemKind::kSparkApprox, records, config, query);
  EXPECT_LT(oasrs_flink, srs);
  EXPECT_LT(oasrs_spark, srs);
  EXPECT_LT(oasrs_flink, 0.05);
}

TEST(Integration, AccuracyImprovesWithFraction) {
  workload::SyntheticStream stream(
      workload::skewed_gaussian_substreams(40000.0), 43);
  const auto records = stream.generate(4.0);
  QuerySpec query{Aggregation::kMean, false};
  auto config = fast_config();
  std::vector<double> losses;
  for (double fraction : {0.1, 0.4, 0.8}) {
    config.sampling_fraction = fraction;
    losses.push_back(
        run_loss(SystemKind::kSparkApprox, records, config, query));
  }
  // Not necessarily strictly monotone per-seed, but the 0.8 run must beat
  // the 0.1 run clearly.
  EXPECT_LT(losses[2], losses[0] + 1e-9);
}

TEST(Integration, ErrorBoundsCoverTruthAcrossWindows) {
  workload::SyntheticStream stream(workload::gaussian_substreams(40000.0),
                                   47);
  const auto records = stream.generate(4.0);
  const auto config = fast_config(0.3);
  QuerySpec query{Aggregation::kSum, false};
  const auto result = run_system(SystemKind::kFlinkApprox, records, config);
  const auto exact = exact_window_results(records, config.window);
  const auto approx_estimates = evaluate_windows(result.windows, query);
  const auto exact_estimates = evaluate_windows(exact, query);

  std::unordered_map<std::int64_t, double> truth;
  for (const auto& w : exact_estimates) {
    truth[w.window_end_us] = w.overall.estimate;
  }
  int covered = 0;
  int total = 0;
  for (const auto& w : approx_estimates) {
    auto it = truth.find(w.window_end_us);
    if (it == truth.end()) continue;
    ++total;
    if (w.overall.interval(3.0).contains(it->second)) ++covered;
  }
  ASSERT_GT(total, 0);
  EXPECT_GE(static_cast<double>(covered) / total, 0.9);
}

// ------------------------------- failure injection / degenerate inputs ----

TEST(Integration, SingleStratumStream) {
  workload::SyntheticStream stream(
      {{0, workload::Gaussian{50.0, 5.0}, 20000.0}}, 53);
  const auto records = stream.generate(3.0);
  const auto config = fast_config(0.3);
  QuerySpec query{Aggregation::kMean, false};
  for (SystemKind kind : kAllSystems) {
    const double loss = run_loss(kind, records, config, query);
    EXPECT_LT(loss, 0.05) << system_name(kind);
  }
}

TEST(Integration, ZeroVarianceStratum) {
  // Constant values: estimates must be exact and variance zero.
  workload::SyntheticStream stream(
      {{0, workload::Uniform{5.0, 5.0 + 1e-12}, 20000.0}}, 59);
  const auto records = stream.generate(2.0);
  const auto config = fast_config(0.3);
  const auto result = run_system(SystemKind::kFlinkApprox, records, config);
  QuerySpec query{Aggregation::kMean, false};
  const auto estimates = evaluate_windows(result.windows, query);
  for (const auto& w : estimates) {
    EXPECT_NEAR(w.overall.estimate, 5.0, 1e-6);
    // Tiny catastrophic-cancellation residue in sum_sq is tolerated.
    EXPECT_NEAR(w.overall.stddev(), 0.0, 1e-6);
  }
}

TEST(Integration, TinyFraction) {
  workload::SyntheticStream stream(workload::gaussian_substreams(40000.0),
                                   61);
  const auto records = stream.generate(2.0);
  const auto config = fast_config(0.01);
  for (SystemKind kind :
       {SystemKind::kSparkApprox, SystemKind::kFlinkApprox,
        SystemKind::kSparkSRS, SystemKind::kSparkSTS}) {
    const auto result = run_system(kind, records, config);
    EXPECT_EQ(result.records_processed, records.size())
        << system_name(kind);
    EXPECT_FALSE(result.windows.empty()) << system_name(kind);
  }
}

TEST(Integration, FractionOneMatchesNative) {
  workload::SyntheticStream stream(workload::gaussian_substreams(30000.0),
                                   67);
  const auto records = stream.generate(2.0);
  const auto config = fast_config(1.0);
  QuerySpec query{Aggregation::kSum, false};
  // At fraction 1.0 STS keeps everything: estimates equal to exact.
  const double sts = run_loss(SystemKind::kSparkSTS, records, config, query);
  EXPECT_NEAR(sts, 0.0, 1e-9);
}

TEST(Integration, BurstyStreamWithQuietPeriods) {
  // Records only in seconds [0,1) and [3,4): slides in between are empty.
  workload::SyntheticStream stream(workload::gaussian_substreams(30000.0),
                                   71);
  auto records = stream.generate(1.0);
  auto late = stream.generate(1.0);
  for (auto& record : late) record.event_time_us += 3'000'000;
  records.insert(records.end(), late.begin(), late.end());
  const auto config = fast_config(0.4);
  for (SystemKind kind : {SystemKind::kSparkApprox,
                          SystemKind::kFlinkApprox}) {
    const auto result = run_system(kind, records, config);
    EXPECT_EQ(result.records_processed, records.size())
        << system_name(kind);
  }
}

}  // namespace
}  // namespace streamapprox::core
