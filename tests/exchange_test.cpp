// The repartitioning exchange: stratum-affine routing, exactly-once
// delivery with workers decoupled from partitions, watermark preservation
// across the repartition hop, and lossless backpressure.
#include "ingest/exchange.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "core/watermark.h"
#include "ingest/broker.h"

namespace streamapprox::ingest {
namespace {

std::vector<engine::Record> ordered_records(std::size_t count,
                                            std::size_t strata) {
  std::vector<engine::Record> records;
  records.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    engine::Record record;
    record.stratum = static_cast<sampling::StratumId>(i % strata);
    record.value = static_cast<double>(i);
    record.event_time_us = static_cast<std::int64_t>(i) * 100;
    records.push_back(record);
  }
  return records;
}

struct Drained {
  /// All records per channel, in arrival order.
  std::vector<std::vector<engine::Record>> records;
  /// The watermark in force when each record arrived on its channel.
  std::vector<std::vector<std::int64_t>> watermark_at_arrival;
  /// Last watermark observed per channel.
  std::vector<std::int64_t> final_watermark;
};

/// Runs the exchange over a prepared topic and drains every channel from one
/// consumer thread (SPSC holds: one consumer per ring).
Drained run_and_drain(Broker& broker, const std::string& topic,
                      ExchangeConfig config,
                      std::int64_t consumer_delay_us = 0) {
  Exchange exchange(broker, topic, config);
  std::thread runner([&] { exchange.run(); });

  Drained out;
  out.records.resize(config.workers);
  out.watermark_at_arrival.resize(config.workers);
  out.final_watermark.assign(config.workers, engine::kNoWatermark);
  for (;;) {
    bool all_drained = true;
    bool any = false;
    for (std::size_t w = 0; w < config.workers; ++w) {
      while (auto batch = exchange.pop(w)) {
        any = true;
        for (const auto& record : batch->records) {
          out.records[w].push_back(record);
          out.watermark_at_arrival[w].push_back(out.final_watermark[w]);
        }
        out.final_watermark[w] = batch->watermark_us;
        exchange.recycle(std::move(batch));
        if (consumer_delay_us > 0) {
          std::this_thread::sleep_for(
              std::chrono::microseconds(consumer_delay_us));
        }
      }
      all_drained = all_drained && exchange.drained(w);
    }
    if (all_drained) break;
    if (!any) std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  runner.join();
  return out;
}

TEST(Exchange, StratumAffineExactlyOnceDelivery) {
  Broker broker;
  broker.create_topic("t", 2);
  const auto records = ordered_records(10'000, 16);
  Producer producer(broker, "t");
  producer.send_batch(records);
  producer.finish();

  ExchangeConfig config;
  config.workers = 4;
  config.batch_size = 256;
  const auto drained = run_and_drain(broker, "t", config);

  std::size_t delivered = 0;
  for (std::size_t w = 0; w < config.workers; ++w) {
    delivered += drained.records[w].size();
    for (const auto& record : drained.records[w]) {
      // Every record lands on the channel its stratum hashes to.
      EXPECT_EQ(Exchange::route(record.stratum, config.workers), w);
    }
  }
  EXPECT_EQ(delivered, records.size());

  // Per stratum, value multiset must survive the repartition intact.
  std::map<sampling::StratumId, std::size_t> counts;
  for (std::size_t w = 0; w < config.workers; ++w) {
    for (const auto& record : drained.records[w]) ++counts[record.stratum];
  }
  for (sampling::StratumId s = 0; s < 16; ++s) {
    EXPECT_EQ(counts[s], records.size() / 16) << "stratum " << s;
  }
}

TEST(Exchange, WorkersExceedPartitionCount) {
  // The decoupling the exchange exists for: 2 partitions feeding 8 channels.
  Broker broker;
  broker.create_topic("t", 2);
  const auto records = ordered_records(8'000, 32);
  Producer producer(broker, "t");
  producer.send_batch(records);
  producer.finish();

  ExchangeConfig config;
  config.workers = 8;
  const auto drained = run_and_drain(broker, "t", config);

  std::size_t delivered = 0;
  std::size_t busy_channels = 0;
  for (std::size_t w = 0; w < config.workers; ++w) {
    delivered += drained.records[w].size();
    if (!drained.records[w].empty()) ++busy_channels;
  }
  EXPECT_EQ(delivered, records.size());
  // 32 strata over 8 channels: the hash must spread work beyond 2 channels.
  EXPECT_GT(busy_channels, 2u);
}

TEST(Exchange, WatermarkPreservedAcrossRepartition) {
  Broker broker;
  broker.create_topic("t", 3);
  const auto records = ordered_records(30'000, 9);
  Producer producer(broker, "t");
  producer.send_batch(records);
  producer.finish();

  ExchangeConfig config;
  config.workers = 4;
  config.batch_size = 128;
  const auto drained = run_and_drain(broker, "t", config);

  for (std::size_t w = 0; w < config.workers; ++w) {
    // The low-watermark guarantee after re-keying: once a channel has seen
    // watermark W, no later record on that channel may lie below W (the
    // input is in order, so nothing is late at the source).
    for (std::size_t i = 0; i < drained.records[w].size(); ++i) {
      const std::int64_t promised = drained.watermark_at_arrival[w][i];
      if (promised == engine::kNoWatermark ||
          promised == engine::kWatermarkFlush) {
        continue;
      }
      EXPECT_GE(drained.records[w][i].event_time_us, promised)
          << "channel " << w << " record " << i
          << " arrived below an already-forwarded watermark";
    }
    // End of stream: every channel ends on the flush sentinel.
    EXPECT_EQ(drained.final_watermark[w], engine::kWatermarkFlush);
  }
}

TEST(Exchange, BackpressureLosesNothing) {
  // Tiny rings + a slow consumer: the exchange must block, not drop.
  Broker broker;
  broker.create_topic("t", 2);
  const auto records = ordered_records(4'000, 8);
  Producer producer(broker, "t");
  producer.send_batch(records);
  producer.finish();

  ExchangeConfig config;
  config.workers = 2;
  config.batch_size = 64;
  config.ring_capacity = 2;
  const auto drained =
      run_and_drain(broker, "t", config, /*consumer_delay_us=*/200);

  std::size_t delivered = 0;
  for (const auto& channel : drained.records) delivered += channel.size();
  EXPECT_EQ(delivered, records.size());
}

TEST(Exchange, ShardedExchangesSplitPartitionsAndStampIdentity) {
  // Two exchange shards over a 4-partition topic: shard e owns partitions p
  // with p % 2 == e, and the stratum -> partition hash (s % 4) decides which
  // shard ever sees a stratum. Together the shards must deliver every record
  // exactly once, and every batch (heartbeats included) must carry its
  // global channel id and a gapless per-channel sequence — the completion
  // tracker's contract under work stealing.
  Broker broker;
  broker.create_topic("t", 4);
  const auto records = ordered_records(12'000, 16);
  Producer producer(broker, "t");
  producer.send_batch(records);
  producer.finish();

  constexpr std::size_t kShards = 2;
  constexpr std::size_t kWorkers = 3;
  std::vector<std::unique_ptr<Exchange>> shards;
  for (std::size_t e = 0; e < kShards; ++e) {
    ExchangeConfig config;
    config.workers = kWorkers;
    config.batch_size = 128;
    config.exchange_index = e;
    config.exchange_count = kShards;
    shards.push_back(std::make_unique<Exchange>(broker, "t", config));
  }
  std::vector<std::thread> runners;
  runners.reserve(kShards);
  for (auto& shard : shards) {
    runners.emplace_back([&shard] { shard->run(); });
  }

  struct Channel {
    std::vector<std::uint64_t> seqs;
    std::size_t records = 0;
    std::int64_t last_watermark = engine::kNoWatermark;
  };
  std::vector<Channel> channels(kShards * kWorkers);
  std::map<sampling::StratumId, std::size_t> per_stratum;

  for (;;) {
    bool all_drained = true;
    for (std::size_t e = 0; e < kShards; ++e) {
      for (std::size_t w = 0; w < kWorkers; ++w) {
        while (auto batch = shards[e]->pop(w)) {
          EXPECT_EQ(batch->channel, e * kWorkers + w);
          auto& channel = channels[e * kWorkers + w];
          channel.seqs.push_back(batch->seq);
          if (batch->heartbeat) {
            EXPECT_TRUE(batch->records.empty());
          }
          channel.records += batch->size();
          channel.last_watermark = batch->watermark_us;
          for (const auto& record : batch->records) {
            ++per_stratum[record.stratum];
            EXPECT_EQ((record.stratum % 4) % kShards, e)
                << "stratum " << record.stratum
                << " delivered by the wrong shard";
          }
          shards[e]->recycle(std::move(batch));
        }
        all_drained = all_drained && shards[e]->drained(w);
      }
    }
    if (all_drained) break;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  for (auto& runner : runners) runner.join();

  std::size_t delivered = 0;
  for (const auto& channel : channels) delivered += channel.records;
  EXPECT_EQ(delivered, records.size());
  for (sampling::StratumId s = 0; s < 16; ++s) {
    EXPECT_EQ(per_stratum[s], records.size() / 16) << "stratum " << s;
  }
  for (std::size_t c = 0; c < channels.size(); ++c) {
    for (std::size_t i = 0; i < channels[c].seqs.size(); ++i) {
      ASSERT_EQ(channels[c].seqs[i], i)
          << "channel " << c << " has a sequence gap";
    }
    // End of stream reaches every channel — on the last data batch or, for a
    // channel with nothing in flight, on a heartbeat.
    EXPECT_EQ(channels[c].last_watermark, engine::kWatermarkFlush)
        << "channel " << c;
  }
}

TEST(Exchange, HeartbeatsRecycleThroughZeroReservePool) {
  // Heartbeats are empty watermark carriers; routing them through the data
  // pool would pin batch_size-record capacity per idle channel. The
  // dedicated pool must absorb them instead, and its high-water mark stays
  // at the in-flight peak rather than growing with heartbeat count.
  Broker broker;
  broker.create_topic("t", 1);
  const auto records = ordered_records(2'000, 1);  // one stratum: one busy channel
  Producer producer(broker, "t");
  producer.send_batch(records);
  producer.finish();

  ExchangeConfig config;
  config.workers = 4;
  Exchange exchange(broker, "t", config);
  std::thread runner([&] { exchange.run(); });

  std::size_t delivered = 0;
  std::size_t heartbeats = 0;
  for (;;) {
    bool all_drained = true;
    for (std::size_t w = 0; w < config.workers; ++w) {
      while (auto batch = exchange.pop(w)) {
        if (batch->heartbeat) ++heartbeats;
        delivered += batch->size();
        exchange.recycle(std::move(batch));
      }
      all_drained = all_drained && exchange.drained(w);
    }
    if (all_drained) break;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  runner.join();

  EXPECT_EQ(delivered, records.size());
  // Three idle channels got heartbeats only — at least a flush sentinel each.
  EXPECT_GE(heartbeats, config.workers - 1);
  EXPECT_EQ(exchange.heartbeats_emitted(), heartbeats);
  // Prompt recycling keeps the high-water mark at the in-flight peak, far
  // below the emitted count; a pool that leaked one allocation per heartbeat
  // would match heartbeats instead.
  EXPECT_GE(exchange.heartbeats_allocated(), 1u);
  EXPECT_LE(exchange.heartbeats_allocated(),
            config.workers * config.ring_capacity);
}

TEST(Exchange, IdleGraceWindowRestartsOnDataRounds) {
  // Regression: the grace stopwatch used to start once at run() entry and
  // never restart, so once the first idle_partition_timeout_ms of wall time
  // had passed, a never-delivered partition stopped gating the watermark
  // forever — even while data kept flowing on the other partitions. The
  // fix restarts grace on every round that routes data: as long as
  // partition 0 keeps delivering with gaps far below the timeout, silent
  // partition 1 must hold the watermark at kNoWatermark, however much wall
  // time accumulates.
  Broker broker;
  broker.create_topic("t", 2);
  Producer producer(broker, "t");

  ExchangeConfig config;
  config.workers = 1;
  config.idle_partition_timeout_ms = 800;
  Exchange exchange(broker, "t", config);
  std::thread runner([&] { exchange.run(); });

  struct Observed {
    std::int64_t watermark_us;
    bool has_stratum1;
  };
  std::vector<Observed> observed;
  std::size_t delivered = 0;
  std::thread drainer([&] {
    while (!exchange.drained(0)) {
      while (auto batch = exchange.pop(0)) {
        bool has_stratum1 = false;
        for (const auto& record : batch->records) {
          if (record.stratum == 1) has_stratum1 = true;
        }
        delivered += batch->size();
        observed.push_back({batch->watermark_us, has_stratum1});
        exchange.recycle(std::move(batch));
      }
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  });

  // Stratum s maps to partition s % 2: stratum 0 feeds partition 0 for
  // 1.2 s of wall time (> timeout) in 200 ms steps (each gap well under
  // the timeout), while partition 1 stays silent.
  for (int i = 0; i < 6; ++i) {
    engine::Record record;
    record.stratum = 0;
    record.value = static_cast<double>(i);
    record.event_time_us = 1'000'000 * (i + 1);
    producer.send(record);
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  // Partition 1 wakes up, then the stream ends.
  engine::Record late;
  late.stratum = 1;
  late.value = 42.0;
  late.event_time_us = 500'000;
  producer.send(late);
  producer.finish();

  runner.join();
  drainer.join();

  EXPECT_EQ(delivered, 7u);
  // Until partition 1's record arrived, it had never delivered — so it must
  // still be inside a (continually refreshed) grace window and the resolved
  // watermark must be kNoWatermark. The buggy once-started stopwatch stamped
  // a real watermark on every batch after the first 800 ms.
  bool woke = false;
  for (const auto& batch : observed) {
    if (batch.has_stratum1) woke = true;
    if (!woke) {
      EXPECT_EQ(batch.watermark_us, engine::kNoWatermark)
          << "silent partition was grace-expired while data kept flowing";
    }
  }
  ASSERT_TRUE(woke);
  ASSERT_FALSE(observed.empty());
  EXPECT_EQ(observed.back().watermark_us, engine::kWatermarkFlush);
}

TEST(Exchange, RouteIsDeterministicAndInRange) {
  for (std::size_t workers : {1u, 3u, 8u}) {
    for (sampling::StratumId s = 0; s < 1000; ++s) {
      const std::size_t w = Exchange::route(s, workers);
      EXPECT_LT(w, workers);
      EXPECT_EQ(w, Exchange::route(s, workers));
    }
  }
}

}  // namespace
}  // namespace streamapprox::ingest
