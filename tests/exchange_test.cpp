// The repartitioning exchange: stratum-affine routing, exactly-once
// delivery with workers decoupled from partitions, watermark preservation
// across the repartition hop, and lossless backpressure.
#include "ingest/exchange.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include "core/watermark.h"
#include "ingest/broker.h"

namespace streamapprox::ingest {
namespace {

std::vector<engine::Record> ordered_records(std::size_t count,
                                            std::size_t strata) {
  std::vector<engine::Record> records;
  records.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    engine::Record record;
    record.stratum = static_cast<sampling::StratumId>(i % strata);
    record.value = static_cast<double>(i);
    record.event_time_us = static_cast<std::int64_t>(i) * 100;
    records.push_back(record);
  }
  return records;
}

struct Drained {
  /// All records per channel, in arrival order.
  std::vector<std::vector<engine::Record>> records;
  /// The watermark in force when each record arrived on its channel.
  std::vector<std::vector<std::int64_t>> watermark_at_arrival;
  /// Last watermark observed per channel.
  std::vector<std::int64_t> final_watermark;
};

/// Runs the exchange over a prepared topic and drains every channel from one
/// consumer thread (SPSC holds: one consumer per ring).
Drained run_and_drain(Broker& broker, const std::string& topic,
                      ExchangeConfig config,
                      std::int64_t consumer_delay_us = 0) {
  Exchange exchange(broker, topic, config);
  std::thread runner([&] { exchange.run(); });

  Drained out;
  out.records.resize(config.workers);
  out.watermark_at_arrival.resize(config.workers);
  out.final_watermark.assign(config.workers, engine::kNoWatermark);
  for (;;) {
    bool all_drained = true;
    bool any = false;
    for (std::size_t w = 0; w < config.workers; ++w) {
      while (auto batch = exchange.pop(w)) {
        any = true;
        for (const auto& record : batch->records) {
          out.records[w].push_back(record);
          out.watermark_at_arrival[w].push_back(out.final_watermark[w]);
        }
        out.final_watermark[w] = batch->watermark_us;
        exchange.recycle(std::move(batch));
        if (consumer_delay_us > 0) {
          std::this_thread::sleep_for(
              std::chrono::microseconds(consumer_delay_us));
        }
      }
      all_drained = all_drained && exchange.drained(w);
    }
    if (all_drained) break;
    if (!any) std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  runner.join();
  return out;
}

TEST(Exchange, StratumAffineExactlyOnceDelivery) {
  Broker broker;
  broker.create_topic("t", 2);
  const auto records = ordered_records(10'000, 16);
  Producer producer(broker, "t");
  producer.send_batch(records);
  producer.finish();

  ExchangeConfig config;
  config.workers = 4;
  config.batch_size = 256;
  const auto drained = run_and_drain(broker, "t", config);

  std::size_t delivered = 0;
  for (std::size_t w = 0; w < config.workers; ++w) {
    delivered += drained.records[w].size();
    for (const auto& record : drained.records[w]) {
      // Every record lands on the channel its stratum hashes to.
      EXPECT_EQ(Exchange::route(record.stratum, config.workers), w);
    }
  }
  EXPECT_EQ(delivered, records.size());

  // Per stratum, value multiset must survive the repartition intact.
  std::map<sampling::StratumId, std::size_t> counts;
  for (std::size_t w = 0; w < config.workers; ++w) {
    for (const auto& record : drained.records[w]) ++counts[record.stratum];
  }
  for (sampling::StratumId s = 0; s < 16; ++s) {
    EXPECT_EQ(counts[s], records.size() / 16) << "stratum " << s;
  }
}

TEST(Exchange, WorkersExceedPartitionCount) {
  // The decoupling the exchange exists for: 2 partitions feeding 8 channels.
  Broker broker;
  broker.create_topic("t", 2);
  const auto records = ordered_records(8'000, 32);
  Producer producer(broker, "t");
  producer.send_batch(records);
  producer.finish();

  ExchangeConfig config;
  config.workers = 8;
  const auto drained = run_and_drain(broker, "t", config);

  std::size_t delivered = 0;
  std::size_t busy_channels = 0;
  for (std::size_t w = 0; w < config.workers; ++w) {
    delivered += drained.records[w].size();
    if (!drained.records[w].empty()) ++busy_channels;
  }
  EXPECT_EQ(delivered, records.size());
  // 32 strata over 8 channels: the hash must spread work beyond 2 channels.
  EXPECT_GT(busy_channels, 2u);
}

TEST(Exchange, WatermarkPreservedAcrossRepartition) {
  Broker broker;
  broker.create_topic("t", 3);
  const auto records = ordered_records(30'000, 9);
  Producer producer(broker, "t");
  producer.send_batch(records);
  producer.finish();

  ExchangeConfig config;
  config.workers = 4;
  config.batch_size = 128;
  const auto drained = run_and_drain(broker, "t", config);

  for (std::size_t w = 0; w < config.workers; ++w) {
    // The low-watermark guarantee after re-keying: once a channel has seen
    // watermark W, no later record on that channel may lie below W (the
    // input is in order, so nothing is late at the source).
    for (std::size_t i = 0; i < drained.records[w].size(); ++i) {
      const std::int64_t promised = drained.watermark_at_arrival[w][i];
      if (promised == engine::kNoWatermark ||
          promised == engine::kWatermarkFlush) {
        continue;
      }
      EXPECT_GE(drained.records[w][i].event_time_us, promised)
          << "channel " << w << " record " << i
          << " arrived below an already-forwarded watermark";
    }
    // End of stream: every channel ends on the flush sentinel.
    EXPECT_EQ(drained.final_watermark[w], engine::kWatermarkFlush);
  }
}

TEST(Exchange, BackpressureLosesNothing) {
  // Tiny rings + a slow consumer: the exchange must block, not drop.
  Broker broker;
  broker.create_topic("t", 2);
  const auto records = ordered_records(4'000, 8);
  Producer producer(broker, "t");
  producer.send_batch(records);
  producer.finish();

  ExchangeConfig config;
  config.workers = 2;
  config.batch_size = 64;
  config.ring_capacity = 2;
  const auto drained =
      run_and_drain(broker, "t", config, /*consumer_delay_us=*/200);

  std::size_t delivered = 0;
  for (const auto& channel : drained.records) delivered += channel.size();
  EXPECT_EQ(delivered, records.size());
}

TEST(Exchange, RouteIsDeterministicAndInRange) {
  for (std::size_t workers : {1u, 3u, 8u}) {
    for (sampling::StratumId s = 0; s < 1000; ++s) {
      const std::size_t w = Exchange::route(s, workers);
      EXPECT_LT(w, workers);
      EXPECT_EQ(w, Exchange::route(s, workers));
    }
  }
}

}  // namespace
}  // namespace streamapprox::ingest
