// Tests for timing utilities: stopwatch, rate meter, token bucket.
#include "common/clock.h"

#include <gtest/gtest.h>

#include <thread>

namespace streamapprox {
namespace {

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(watch.millis(), 18.0);
  EXPECT_LT(watch.seconds(), 2.0);
}

TEST(Stopwatch, RestartResets) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  watch.restart();
  EXPECT_LT(watch.millis(), 15.0);
}

TEST(Stopwatch, UnitsAreConsistent) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double s = watch.seconds();
  const double ms = watch.millis();
  const double us = watch.micros();
  EXPECT_NEAR(ms, s * 1e3, s * 1e3 * 0.5);
  EXPECT_NEAR(us, s * 1e6, s * 1e6 * 0.5);
}

TEST(RateMeter, CountsAndRates) {
  RateMeter meter;
  meter.add(500);
  meter.add(500);
  EXPECT_EQ(meter.count(), 1000u);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GT(meter.rate(), 0.0);
  // Rate is bounded above by count / elapsed-so-far.
  EXPECT_LE(meter.rate(), 1000.0 / meter.seconds() + 1.0);
}

TEST(TokenBucket, PacesToApproximateRate) {
  // 1000 tokens/s with a 10-token burst: draining 50 tokens must take at
  // least ~40 ms (first 10 free).
  TokenBucket bucket(1000.0, 10.0);
  Stopwatch watch;
  for (int i = 0; i < 50; ++i) bucket.acquire();
  EXPECT_GE(watch.millis(), 30.0);
  EXPECT_LT(watch.millis(), 500.0);
}

TEST(TokenBucket, BurstPassesImmediately) {
  TokenBucket bucket(10.0, 100.0);
  Stopwatch watch;
  for (int i = 0; i < 100; ++i) bucket.acquire();
  EXPECT_LT(watch.millis(), 50.0);
}

TEST(TokenBucket, TryAcquireRefillsOverTime) {
  TokenBucket bucket(1000.0, 5.0);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(bucket.try_acquire());
  EXPECT_FALSE(bucket.try_acquire());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(bucket.try_acquire());  // ~20 tokens refilled
}

TEST(TokenBucket, FractionalAcquire) {
  TokenBucket bucket(1000.0, 1.0);
  EXPECT_TRUE(bucket.try_acquire(0.5));
  EXPECT_TRUE(bucket.try_acquire(0.5));
  EXPECT_FALSE(bucket.try_acquire(0.5));
}

}  // namespace
}  // namespace streamapprox
