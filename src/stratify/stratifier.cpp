#include "stratify/stratifier.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace streamapprox::stratify {

// ----------------------------------------------------- QuantileStratifier

QuantileStratifier::QuantileStratifier(std::size_t strata,
                                       std::size_t bootstrap_size)
    : strata_(std::max<std::size_t>(1, strata)),
      bootstrap_size_(std::max<std::size_t>(strata_, bootstrap_size)) {
  bootstrap_.reserve(bootstrap_size_);
}

sampling::StratumId QuantileStratifier::assign(double value) {
  if (!bootstrapped_) {
    bootstrap_.push_back(value);
    if (bootstrap_.size() >= bootstrap_size_) {
      std::sort(bootstrap_.begin(), bootstrap_.end());
      boundaries_.clear();
      boundaries_.reserve(strata_ - 1);
      for (std::size_t k = 1; k < strata_; ++k) {
        const auto idx = std::min(
            bootstrap_.size() - 1,
            k * bootstrap_.size() / strata_);
        boundaries_.push_back(bootstrap_[idx]);
      }
      bootstrap_.clear();
      bootstrap_.shrink_to_fit();
      bootstrapped_ = true;
    }
    return 0;
  }
  const auto it =
      std::upper_bound(boundaries_.begin(), boundaries_.end(), value);
  return static_cast<sampling::StratumId>(it - boundaries_.begin());
}

// ------------------------------------------------------- KMeansStratifier

KMeansStratifier::KMeansStratifier(std::size_t strata)
    : strata_(std::max<std::size_t>(1, strata)) {
  centroids_.reserve(strata_);
  counts_.reserve(strata_);
}

sampling::StratumId KMeansStratifier::assign(double value) {
  // Seeding: the first k DISTINCT values become centroids (duplicate seeds
  // would create dead centroids).
  if (centroids_.size() < strata_) {
    bool duplicate = false;
    for (double c : centroids_) {
      if (c == value) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) {
      centroids_.push_back(value);
      counts_.push_back(1);
      return static_cast<sampling::StratumId>(centroids_.size() - 1);
    }
  }
  // Nearest-centroid assignment + MacQueen update.
  std::size_t best = 0;
  double best_distance = std::numeric_limits<double>::max();
  for (std::size_t k = 0; k < centroids_.size(); ++k) {
    const double distance = std::abs(value - centroids_[k]);
    if (distance < best_distance) {
      best_distance = distance;
      best = k;
    }
  }
  ++counts_[best];
  centroids_[best] +=
      (value - centroids_[best]) / static_cast<double>(counts_[best]);
  return static_cast<sampling::StratumId>(best);
}

std::vector<double> KMeansStratifier::centroids() const { return centroids_; }

// --------------------------------------------------------------- adapter

engine::Record restratify(const engine::Record& record,
                          Stratifier& stratifier) {
  engine::Record out = record;
  out.stratum = stratifier.assign(record.value);
  return out;
}

}  // namespace streamapprox::stratify
