// Stratification of UNLABELED streams — the paper's §7-II extension.
//
// OASRS assumes the input is already stratified by source. When it is not
// ("more complex cases where we cannot classify strata based on the
// sources, we need a pre-processing step to stratify the input data
// stream"), the paper sketches two proposals: a bootstrap-based estimator
// and a semi-supervised classifier. This module implements working
// single-pass equivalents of both:
//
//  * QuantileStratifier — the bootstrap approach: buffer the first B values
//    ("bootstrap sample"), cut the value range at the k-quantiles, then
//    assign each arriving value to its quantile bin. Bins hold items of
//    similar magnitude, which is exactly what keeps per-stratum variance
//    (and thus Eq. 6/9 error bounds) small.
//
//  * KMeansStratifier — the classifier approach: k centroids over the value
//    space, nearest-centroid assignment, online centroid updates (a
//    streaming 1-D k-means). Unlike quantile cuts it adapts to drifting
//    mixtures and recovers natural clusters even when their populations are
//    very unbalanced.
//
// Both are deliberately one-dimensional (they stratify on the query value)
// because that is the quantity whose variance the estimator cares about.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "engine/record.h"
#include "sampling/sample.h"

namespace streamapprox::stratify {

/// Assigns strata to unlabeled values, learning online.
class Stratifier {
 public:
  virtual ~Stratifier() = default;

  /// Assigns (and learns from) one value. Returned ids are stable and lie
  /// in [0, stratum_count()).
  virtual sampling::StratumId assign(double value) = 0;

  /// Number of strata this stratifier produces.
  virtual std::size_t stratum_count() const = 0;
};

/// Bootstrap-quantile stratifier (§7's bootstrap proposal).
class QuantileStratifier final : public Stratifier {
 public:
  /// Creates a stratifier producing `strata` bins; the first
  /// `bootstrap_size` values form the bootstrap sample from which the bin
  /// boundaries (the k-quantiles) are computed. Until the bootstrap
  /// completes, values are assigned to stratum 0.
  QuantileStratifier(std::size_t strata, std::size_t bootstrap_size = 1024);

  sampling::StratumId assign(double value) override;
  std::size_t stratum_count() const override { return strata_; }

  /// True once boundaries have been learned.
  bool bootstrapped() const noexcept { return bootstrapped_; }

  /// The learned bin boundaries (strata-1 ascending cut points).
  const std::vector<double>& boundaries() const noexcept {
    return boundaries_;
  }

 private:
  std::size_t strata_;
  std::size_t bootstrap_size_;
  bool bootstrapped_ = false;
  std::vector<double> bootstrap_;
  std::vector<double> boundaries_;
};

/// Online 1-D k-means stratifier (§7's semi-supervised proposal).
class KMeansStratifier final : public Stratifier {
 public:
  /// Creates a stratifier with `strata` centroids. The first `strata`
  /// distinct values seed the centroids; afterwards each assignment moves
  /// the chosen centroid toward the value with a per-centroid learning rate
  /// of 1/count (the standard online k-means / MacQueen update).
  explicit KMeansStratifier(std::size_t strata);

  sampling::StratumId assign(double value) override;
  std::size_t stratum_count() const override { return strata_; }

  /// Current centroid positions (ascending id order = seeding order).
  std::vector<double> centroids() const;

 private:
  std::size_t strata_;
  std::vector<double> centroids_;
  std::vector<std::uint64_t> counts_;
};

/// Re-tags a record stream with learned strata: the pre-processing operator
/// one places in front of OASRS when sources are unusable as strata. The
/// record's value is untouched; only `stratum` is replaced.
engine::Record restratify(const engine::Record& record,
                          Stratifier& stratifier);

}  // namespace streamapprox::stratify
