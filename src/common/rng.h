// Deterministic, fast pseudo-random number generation for the whole project.
//
// Every stochastic component (samplers, workload generators, replay jitter)
// draws from an explicitly seeded Rng so that experiments and tests are
// reproducible bit-for-bit across runs. The core generator is xoshiro256**
// (Blackman & Vigna), seeded through splitmix64; both are tiny, extremely
// fast, and pass BigCrush — well suited for sampling workloads where the RNG
// is on the per-item hot path.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

namespace streamapprox {

/// splitmix64: used to expand a single 64-bit seed into xoshiro state and to
/// derive independent child seeds (see Rng::fork).
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** pseudo-random generator with convenience distributions.
///
/// Not thread-safe: each thread/worker owns its own Rng (use fork() to derive
/// statistically independent child generators deterministically).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator. Two Rng constructed with the same seed produce the
  /// same sequence.
  explicit Rng(std::uint64_t seed = 0x5eed5a11ULL) noexcept { reseed(seed); }

  /// Re-initialises the state from a 64-bit seed via splitmix64 expansion.
  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Derives an independent child generator; deterministic in (parent seed,
  /// sequence of fork calls). Useful for giving each sub-stream / worker its
  /// own stream of randomness.
  Rng fork() noexcept { return Rng{next()}; }

  /// Raw 64 random bits.
  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // UniformRandomBitGenerator interface (usable with <random> distributions).
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }
  result_type operator()() noexcept { return next(); }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Uses Lemire's multiply-shift rejection-free
  /// mapping (bias is negligible for n << 2^64, which always holds here).
  std::uint64_t uniform_int(std::uint64_t n) noexcept {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * n) >> 64);
  }

  /// Bernoulli trial: true with probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Standard normal via Box–Muller (cached second variate).
  double gaussian() noexcept {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = 0.0;
    do {
      u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  /// Normal with the given mean and standard deviation.
  double gaussian(double mean, double stddev) noexcept {
    return mean + stddev * gaussian();
  }

  /// Poisson-distributed count. Knuth's method for small lambda, normal
  /// approximation (rounded, clamped at 0) for large lambda — the same regime
  /// split production libraries use; for the paper's lambda=1e8 sub-stream the
  /// approximation is indistinguishable statistically.
  std::uint64_t poisson(double lambda) noexcept {
    if (lambda <= 0.0) return 0;
    if (lambda < 64.0) {
      const double limit = std::exp(-lambda);
      double product = uniform();
      std::uint64_t count = 0;
      while (product > limit) {
        ++count;
        product *= uniform();
      }
      return count;
    }
    const double value = gaussian(lambda, std::sqrt(lambda));
    return value <= 0.0 ? 0 : static_cast<std::uint64_t>(value + 0.5);
  }

  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate) noexcept {
    double u = 0.0;
    do {
      u = uniform();
    } while (u <= 0.0);
    return -std::log(u) / rate;
  }

  /// Log-normal: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma) noexcept {
    return std::exp(gaussian(mu, sigma));
  }

  /// Gamma(shape k, scale theta) via Marsaglia–Tsang; k < 1 handled by the
  /// standard boosting trick.
  double gamma(double shape, double scale) noexcept {
    if (shape < 1.0) {
      const double u = uniform();
      return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
    }
    const double d = shape - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    for (;;) {
      double x = 0.0;
      double v = 0.0;
      do {
        x = gaussian();
        v = 1.0 + c * x;
      } while (v <= 0.0);
      v = v * v * v;
      const double u = uniform();
      if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
      if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
        return d * v * scale;
      }
    }
  }

  /// Zipf-distributed integer in [0, n) with exponent s (s=0 → uniform).
  /// Uses inverse-CDF over precomputed-free rejection (Jain's approximation);
  /// fine for workload skew modelling.
  std::uint64_t zipf(std::uint64_t n, double s) noexcept {
    if (n <= 1) return 0;
    if (s <= 0.0) return uniform_int(n);
    const double nd = static_cast<double>(n);
    if (std::abs(1.0 - s) < 1e-6) {
      // s = 1 is a singularity of the general inversion below (1/(1-s)
      // blows up; x degenerates to 1 and every draw collapsed to stratum
      // 0). The s → 1 limit of the same inversion is k = ⌊(n+1)^u⌋, i.e.
      // P(k) = ln((k+1)/k)/ln(n+1) ∝ 1/k — the harmonic Zipf law — and it
      // is continuous with the neighbouring exponents.
      for (;;) {
        const double u = uniform();
        const double k = std::floor(std::pow(nd + 1.0, u));
        if (k >= 1.0 && k <= nd) return static_cast<std::uint64_t>(k) - 1;
      }
    }
    // Rejection-inversion (Hormann & Derflinger) simplified: acceptable for
    // workload generation (not on estimation-critical paths).
    for (;;) {
      const double u = uniform();
      const double x = std::pow(nd + 1.0, 1.0 - s) * u + (1.0 - u);
      const double k = std::floor(std::pow(x, 1.0 / (1.0 - s)));
      if (k >= 1.0 && k <= nd) return static_cast<std::uint64_t>(k) - 1;
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace streamapprox
