#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace streamapprox {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_write_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

bool log_enabled(LogLevel level) noexcept {
  return static_cast<int>(level) >= g_level.load(std::memory_order_relaxed);
}

void log_message(LogLevel level, std::string_view component,
                 std::string_view message) {
  if (!log_enabled(level)) return;
  std::lock_guard lock(g_write_mutex);
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", level_name(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace streamapprox
