// Inter-thread queues used by the engines and the ingest layer.
//
//  * BoundedQueue<T>  — mutex/condvar MPMC queue with blocking and
//    non-blocking operations plus close() semantics; the broker and the
//    batched engine use it.
//  * SpscRing<T>      — single-producer single-consumer lock-free ring used
//    for operator-to-operator channels in the pipelined engine, where the
//    per-record hot path must not take a lock.
//  * StealDeque<T>    — bounded Chase-Lev-style work-stealing deque: one
//    owner pushes/pops LIFO at the bottom, any number of thieves steal FIFO
//    from the top. The morsel scheduler's per-worker run queue.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

// TSan does not model standalone atomic fences (gcc's -Wtsan); under TSan
// the Dekker barrier below uses a seq_cst RMW instead — same StoreLoad
// ordering, visible to the race detector.
#if defined(__SANITIZE_THREAD__)
#define STREAMAPPROX_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define STREAMAPPROX_TSAN 1
#endif
#endif

namespace streamapprox {
namespace detail {

/// The StoreLoad barrier of the lock-free handshakes below. TSan does not
/// model standalone fences, so sanitized builds substitute a seq_cst RMW on
/// a per-structure word — the same ordering, visible to the race detector.
class StoreLoadBarrier {
 public:
  void operator()() noexcept {
#ifdef STREAMAPPROX_TSAN
    word_.fetch_add(1, std::memory_order_seq_cst);
#else
    std::atomic_thread_fence(std::memory_order_seq_cst);
#endif
  }

 private:
#ifdef STREAMAPPROX_TSAN
  std::atomic<unsigned> word_{0};
#endif
};

}  // namespace detail

/// Blocking bounded multi-producer multi-consumer queue.
///
/// push blocks while full; pop blocks while empty. close() wakes all waiters:
/// subsequent push calls return false, and pop drains the remaining elements
/// then returns std::nullopt.
template <typename T>
class BoundedQueue {
 public:
  /// Creates a queue holding at most `capacity` elements (>= 1).
  explicit BoundedQueue(std::size_t capacity = 1024)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocking push; returns false if the queue was closed.
  bool push(T value) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false when full or closed.
  bool try_push(T value) {
    {
      std::lock_guard lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking pop; std::nullopt once closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::unique_lock lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Closes the queue and wakes all blocked producers/consumers.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  /// True once close() has been called.
  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  /// Current number of queued elements.
  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

/// Lock-free single-producer single-consumer ring buffer.
///
/// Capacity is rounded up to a power of two. One slot is kept empty to
/// distinguish full from empty, so the usable capacity is capacity-1.
/// Producer calls try_push/push/close, consumer calls try_pop/drained; no
/// other thread may touch either end.
///
/// Backpressure: push() blocks on a condition variable while the ring is
/// full, so a producer ahead of its consumer parks instead of spinning. The
/// mutex/condvar are touched ONLY on the full-ring slow path; the pop fast
/// path stays lock-free but pays one seq_cst fence plus a relaxed flag load
/// per successful pop (a full barrier on x86 — cheap at this ring's
/// batch-per-element granularity). The fences form the classic Dekker
/// handshake: either the producer's post-flag retry sees the freed slot, or
/// the consumer's post-pop check sees the waiting flag and notifies — a
/// wakeup cannot be lost.
template <typename T>
class SpscRing {
 public:
  /// Creates a ring able to buffer at least `min_capacity` elements.
  explicit SpscRing(std::size_t min_capacity = 1024)
      : buffer_(round_up(min_capacity + 1)), mask_(buffer_.size() - 1) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side: enqueues unless the ring is full. Returns false when
  /// full — and, being pass-by-value, destroys the element with it. Callers
  /// that retry on a full ring must use try_push_keep.
  bool try_push(T value) { return try_push_keep(value); }

  /// Retry-friendly producer side: moves `value` into the ring only on
  /// success; when the ring is full, returns false with `value` untouched so
  /// the caller can back off and retry without losing it.
  bool try_push_keep(T& value) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t next = (head + 1) & mask_;
    if (next == tail_.load(std::memory_order_acquire)) return false;
    buffer_[head] = std::move(value);
    head_.store(next, std::memory_order_release);
    return true;
  }

  /// Blocking producer side: parks on a condition variable while the ring
  /// is full (no spinning), moving `value` in once a slot frees. Returns
  /// false — with `value` intact — only if the ring was closed while
  /// waiting (an aborting peer may close to release a blocked producer).
  bool push(T& value) {
    if (try_push_keep(value)) return true;
    std::unique_lock lock(wait_mutex_);
    for (;;) {
      producer_waiting_.store(true, std::memory_order_relaxed);
      // Barrier A of the Dekker pair: orders the flag store before the
      // retry's tail load against the consumer's tail store / flag load
      // (barrier B).
      barrier_();
      const bool pushed = try_push_keep(value);
      if (pushed || closed_.load(std::memory_order_acquire)) {
        producer_waiting_.store(false, std::memory_order_relaxed);
        return pushed;
      }
      not_full_.wait(lock);
    }
  }

  /// Convenience blocking push by value; the element is lost only when the
  /// ring was closed (return false).
  bool push(T&& value) {
    T moved = std::move(value);
    return push(moved);
  }

  /// Consumer side: dequeues if an element is available.
  std::optional<T> try_pop() {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_.load(std::memory_order_acquire)) return std::nullopt;
    T value = std::move(buffer_[tail]);
    tail_.store((tail + 1) & mask_, std::memory_order_release);
    notify_producer_after_pop();
    return value;
  }

  /// Batch-drain consumer side: appends up to `max` buffered elements to
  /// `out` (which keeps its existing contents) under ONE synchronisation —
  /// one tail publish, one barrier, at most one wakeup — instead of paying
  /// them per element. Returns the number of elements moved. This is the
  /// consumer-side mirror of the batch-out fill pattern on Consumer::poll.
  std::size_t pop_n(std::vector<T>& out, std::size_t max) {
    if (max == 0) return 0;
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t available = (head - tail) & mask_;
    const std::size_t take = std::min(available, max);
    if (take == 0) return 0;
    for (std::size_t i = 0; i < take; ++i) {
      out.push_back(std::move(buffer_[(tail + i) & mask_]));
    }
    tail_.store((tail + take) & mask_, std::memory_order_release);
    notify_producer_after_pop();
    return take;
  }

  /// Producer signals end-of-stream. Any peer may also close to release a
  /// producer blocked in push().
  void close() {
    closed_.store(true, std::memory_order_release);
    { std::lock_guard lock(wait_mutex_); }
    not_full_.notify_all();
  }

  /// True when the producer closed the ring AND all elements were consumed.
  bool drained() const {
    return closed_.load(std::memory_order_acquire) &&
           tail_.load(std::memory_order_acquire) ==
               head_.load(std::memory_order_acquire);
  }

  /// True once close() has been called (elements may remain).
  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Number of buffered elements (approximate under concurrency).
  std::size_t size() const {
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    return (head - tail) & mask_;
  }

 private:
  static std::size_t round_up(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  /// Barrier B of the Dekker pair: the consumer's tail store is ordered
  /// before the flag check, so a producer that missed this pop must be seen
  /// waiting here (and then the empty lock section serialises with it being
  /// inside wait()) — a wakeup cannot be lost.
  void notify_producer_after_pop() {
    barrier_();
    if (producer_waiting_.load(std::memory_order_relaxed)) {
      { std::lock_guard lock(wait_mutex_); }
      not_full_.notify_one();
    }
  }

  std::vector<T> buffer_;
  std::size_t mask_;
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
  std::atomic<bool> closed_{false};
  /// Blocking-push slow path only; untouched while the ring has room.
  std::atomic<bool> producer_waiting_{false};
  detail::StoreLoadBarrier barrier_;
  std::mutex wait_mutex_;
  std::condition_variable not_full_;
};

/// Bounded Chase-Lev-style work-stealing deque (Lê et al., "Correct and
/// Efficient Work-Stealing for Weak Memory Models", PPoPP'13 — the bounded
/// array variant, without growth).
///
/// Roles: exactly ONE owner thread calls push_bottom()/pop_bottom(); any
/// number of thief threads call steal_top(). The owner works LIFO off the
/// bottom (cache-warm, most recently deposited morsel first); thieves take
/// FIFO off the top (the oldest morsel, the one the owner is furthest from
/// reaching). All slot accesses are relaxed atomics, so the element type T
/// must be trivially copyable and lock-free-atomic-sized — in practice a
/// raw pointer; ownership handoff lives outside the deque.
///
/// push_bottom returns false when full (the caller spills to an injector
/// queue or processes in place). pop_bottom/steal_top return std::nullopt
/// when empty — and steal_top also on losing a CAS race, so thieves simply
/// move to the next victim rather than spin.
template <typename T>
class StealDeque {
  static_assert(std::is_trivially_copyable_v<T>,
                "StealDeque slots are relaxed atomics; T must be trivially "
                "copyable (use a raw pointer and hand off ownership outside)");

 public:
  /// Creates a deque holding at least `min_capacity` elements.
  explicit StealDeque(std::size_t min_capacity = 64)
      : slots_(round_up(std::max<std::size_t>(1, min_capacity))),
        mask_(slots_.size() - 1) {}

  StealDeque(const StealDeque&) = delete;
  StealDeque& operator=(const StealDeque&) = delete;

  /// Owner only: deposits at the bottom. Returns false when full.
  bool push_bottom(T value) {
    const std::int64_t bottom = bottom_.load(std::memory_order_relaxed);
    const std::int64_t top = top_.load(std::memory_order_acquire);
    if (bottom - top >= static_cast<std::int64_t>(slots_.size())) return false;
    slots_[static_cast<std::size_t>(bottom) & mask_].store(
        value, std::memory_order_relaxed);
    bottom_.store(bottom + 1, std::memory_order_release);
    return true;
  }

  /// Owner only: takes the most recently pushed element (LIFO). The
  /// transient bottom decrement plus the StoreLoad barrier is what makes the
  /// race for the LAST element safe: either this owner or a thief wins the
  /// seq_cst CAS on top, never both.
  std::optional<T> pop_bottom() {
    const std::int64_t bottom = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(bottom, std::memory_order_relaxed);
    barrier_();
    std::int64_t top = top_.load(std::memory_order_relaxed);
    if (top <= bottom) {
      T value =
          slots_[static_cast<std::size_t>(bottom) & mask_].load(
              std::memory_order_relaxed);
      if (top == bottom) {
        // Exactly one element left: race the thieves for it.
        const bool won = top_.compare_exchange_strong(
            top, top + 1, std::memory_order_seq_cst,
            std::memory_order_relaxed);
        bottom_.store(bottom + 1, std::memory_order_relaxed);
        if (!won) return std::nullopt;  // a thief got there first
      }
      return value;
    }
    bottom_.store(bottom + 1, std::memory_order_relaxed);
    return std::nullopt;
  }

  /// Any thread: takes the OLDEST element (FIFO). std::nullopt when empty or
  /// on losing the race to another thief/the owner.
  std::optional<T> steal_top() {
    std::int64_t top = top_.load(std::memory_order_acquire);
    barrier_();
    const std::int64_t bottom = bottom_.load(std::memory_order_acquire);
    if (top >= bottom) return std::nullopt;
    T value = slots_[static_cast<std::size_t>(top) & mask_].load(
        std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(top, top + 1,
                                      std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return std::nullopt;
    }
    return value;
  }

  /// Buffered element count (approximate under concurrency; exact when
  /// called by the owner with no thieves active).
  std::size_t size() const {
    const std::int64_t bottom = bottom_.load(std::memory_order_acquire);
    const std::int64_t top = top_.load(std::memory_order_acquire);
    return bottom > top ? static_cast<std::size_t>(bottom - top) : 0;
  }

  /// True when no element is buffered (approximate under concurrency).
  bool empty() const { return size() == 0; }

  /// Slot capacity (power of two).
  std::size_t capacity() const noexcept { return slots_.size(); }

 private:
  static std::size_t round_up(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  std::vector<std::atomic<T>> slots_;
  std::size_t mask_;
  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
  mutable detail::StoreLoadBarrier barrier_;
};

}  // namespace streamapprox
