// Timing utilities: wall-clock stopwatch, throughput meter, and a token
// bucket used by the replay tool for rate-controlled stream injection.
#pragma once

#include <chrono>
#include <cstdint>
#include <thread>

namespace streamapprox {

/// Monotonic wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  /// Restarts the measurement.
  void restart() { start_ = std::chrono::steady_clock::now(); }

  /// Elapsed time in seconds since construction/restart.
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  /// Elapsed time in milliseconds.
  double millis() const { return seconds() * 1e3; }

  /// Elapsed time in microseconds.
  double micros() const { return seconds() * 1e6; }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Counts events against wall-clock time to report a rate (items/second).
class RateMeter {
 public:
  /// Records `n` processed items.
  void add(std::uint64_t n) noexcept { count_ += n; }

  /// Total items recorded.
  std::uint64_t count() const noexcept { return count_; }

  /// Items per second since construction.
  double rate() const {
    const double elapsed = watch_.seconds();
    return elapsed > 0.0 ? static_cast<double>(count_) / elapsed : 0.0;
  }

  /// Seconds since construction.
  double seconds() const { return watch_.seconds(); }

 private:
  Stopwatch watch_;
  std::uint64_t count_ = 0;
};

/// Token bucket pacing events to a target rate; rate == 0 disables pacing
/// (saturation mode, used for the throughput experiments where input is fed
/// "until the system is saturated", §5.2).
class TokenBucket {
 public:
  /// Creates a bucket refilling at `rate_per_sec` tokens/s with up to
  /// `burst` accumulated tokens (defaults to one refill-second worth).
  explicit TokenBucket(double rate_per_sec, double burst = 0.0)
      : rate_(rate_per_sec),
        burst_(burst > 0.0 ? burst : rate_per_sec),
        tokens_(burst_),
        last_(std::chrono::steady_clock::now()) {}

  /// Acquires `n` tokens, sleeping as needed. No-op when rate == 0.
  void acquire(double n = 1.0) {
    if (rate_ <= 0.0) return;
    refill();
    while (tokens_ < n) {
      const double deficit = n - tokens_;
      const auto wait = std::chrono::duration<double>(deficit / rate_);
      std::this_thread::sleep_for(
          std::chrono::duration_cast<std::chrono::nanoseconds>(wait));
      refill();
    }
    tokens_ -= n;
  }

  /// Non-blocking acquire; returns false when not enough tokens are banked.
  bool try_acquire(double n = 1.0) {
    if (rate_ <= 0.0) return true;
    refill();
    if (tokens_ < n) return false;
    tokens_ -= n;
    return true;
  }

 private:
  void refill() {
    const auto now = std::chrono::steady_clock::now();
    const double elapsed = std::chrono::duration<double>(now - last_).count();
    last_ = now;
    tokens_ = std::min(burst_, tokens_ + elapsed * rate_);
  }

  double rate_;
  double burst_;
  double tokens_;
  std::chrono::steady_clock::time_point last_;
};

}  // namespace streamapprox
