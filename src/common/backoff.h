// Bounded exponential idle backoff for polling loops: spin (cheapest, keeps
// the core's pipeline warm for an imminent wakeup), then yield (let a ready
// thread run), then sleep with a doubling, capped duration. A loop that
// pauses this way resumes in nanoseconds when work reappears immediately
// after a lull, yet converges to a bounded sleep — instead of either
// busy-burning a core or always paying a fixed worst-case doze (the
// exchange's old flat 200 µs sleep made every briefly-starved round as
// expensive as a deep idle one).
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>

namespace streamapprox {

/// Escalating pause for idle polling loops. Not thread-safe: one instance
/// per polling thread. Call pause() on every empty round, reset() whenever
/// the round found work.
class IdleBackoff {
 public:
  struct Config {
    /// Empty rounds spent spinning (cpu-relax hint) before yielding.
    std::uint32_t spins = 64;
    /// Empty rounds spent yielding before sleeping.
    std::uint32_t yields = 8;
    /// First sleep duration; doubles on each further sleeping pause.
    std::uint32_t min_sleep_us = 4;
    /// Sleep ceiling — the deepest-idle cost per pause.
    std::uint32_t max_sleep_us = 256;
  };

  IdleBackoff() : IdleBackoff(Config{}) {}
  explicit IdleBackoff(Config config) : config_(config) { reset(); }

  /// Back to the spinning stage; the next sleep restarts at the floor.
  void reset() noexcept {
    round_ = 0;
    sleep_us_ = std::max<std::uint32_t>(1, config_.min_sleep_us);
  }

  /// One escalation step: spin, then yield, then sleep (doubling, capped).
  void pause() {
    if (round_ < config_.spins) {
      ++round_;
      cpu_relax();
      return;
    }
    if (round_ < config_.spins + config_.yields) {
      ++round_;
      std::this_thread::yield();
      return;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(sleep_us_));
    sleep_us_ = std::min(config_.max_sleep_us, sleep_us_ * 2);
  }

  /// Duration the next sleeping pause() would take; 0 while the backoff is
  /// still in its spin/yield stages. Introspection for tests and tuning.
  std::uint32_t next_sleep_us() const noexcept {
    return round_ < config_.spins + config_.yields ? 0 : sleep_us_;
  }

 private:
  static void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
    asm volatile("yield" ::: "memory");
#endif
  }

  Config config_;
  std::uint32_t round_ = 0;
  std::uint32_t sleep_us_ = 0;
};

}  // namespace streamapprox
