#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace streamapprox {

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      buckets_(buckets, 0.0) {
  if (!(hi > lo) || buckets == 0) {
    throw std::invalid_argument("Histogram: need hi > lo and buckets >= 1");
  }
}

void Histogram::add(double x, double weight) noexcept {
  total_ += weight;
  if (x < lo_) {
    underflow_ += weight;
    return;
  }
  if (x >= hi_) {
    overflow_ += weight;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / width_);
  if (idx >= buckets_.size()) idx = buckets_.size() - 1;  // fp edge case
  buckets_[idx] += weight;
}

void Histogram::merge(const Histogram& other) {
  if (other.lo_ != lo_ || other.hi_ != hi_ ||
      other.buckets_.size() != buckets_.size()) {
    throw std::invalid_argument("Histogram::merge: shape mismatch");
  }
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
}

void Histogram::reset() noexcept {
  std::fill(buckets_.begin(), buckets_.end(), 0.0);
  underflow_ = overflow_ = total_ = 0.0;
}

double Histogram::bucket_lo(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i + 1);
}

double Histogram::quantile(double q) const noexcept {
  if (total_ <= 0.0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * total_;
  double cumulative = underflow_;
  if (target <= cumulative) return lo_;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (cumulative + buckets_[i] >= target) {
      const double inside =
          buckets_[i] > 0.0 ? (target - cumulative) / buckets_[i] : 0.0;
      return bucket_lo(i) + inside * width_;
    }
    cumulative += buckets_[i];
  }
  return hi_;
}

double Histogram::l1_distance(const Histogram& other) const {
  if (other.lo_ != lo_ || other.hi_ != hi_ ||
      other.buckets_.size() != buckets_.size()) {
    throw std::invalid_argument("Histogram::l1_distance: shape mismatch");
  }
  if (total_ <= 0.0 || other.total_ <= 0.0) return 2.0;
  double dist = std::abs(underflow_ / total_ - other.underflow_ / other.total_) +
                std::abs(overflow_ / total_ - other.overflow_ / other.total_);
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    dist += std::abs(buckets_[i] / total_ - other.buckets_[i] / other.total_);
  }
  return dist;
}

std::string Histogram::render(std::size_t width) const {
  std::ostringstream out;
  double peak = 0.0;
  for (double b : buckets_) peak = std::max(peak, b);
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const auto bar = peak > 0.0
                         ? static_cast<std::size_t>(
                               buckets_[i] / peak * static_cast<double>(width))
                         : 0;
    out << "[" << bucket_lo(i) << ", " << bucket_hi(i) << ") "
        << std::string(bar, '#') << " " << buckets_[i] << "\n";
  }
  return out.str();
}

}  // namespace streamapprox
