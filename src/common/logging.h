// Minimal leveled logger. Thread-safe, writes to stderr, level settable at
// runtime (tests silence it; benches run at Warn). No macros on the hot path:
// callers check enabled() before formatting expensive messages.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace streamapprox {

/// Log severities in increasing order of importance.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level: messages below it are dropped.
void set_log_level(LogLevel level) noexcept;

/// Current global minimum level.
LogLevel log_level() noexcept;

/// True when messages at `level` would be emitted.
bool log_enabled(LogLevel level) noexcept;

/// Emits one line ("[LEVEL] component: message") to stderr, thread-safely.
void log_message(LogLevel level, std::string_view component,
                 std::string_view message);

/// Stream-style log statement builder:
///   LogLine(LogLevel::kInfo, "broker") << "created topic " << name;
/// The message is emitted when the temporary is destroyed.
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component)
      : level_(level), component_(component), enabled_(log_enabled(level)) {}

  ~LogLine() {
    if (enabled_) log_message(level_, component_, stream_.str());
  }

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace streamapprox
