#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <string>

#if defined(__linux__)
#include <pthread.h>
#endif

namespace streamapprox {

void set_current_thread_name(const char* name) {
  if (name == nullptr || *name == '\0') return;
#if defined(__linux__)
  // The kernel caps thread names at 16 bytes including the terminator;
  // longer names make pthread_setname_np fail outright, so truncate.
  char buf[16];
  std::strncpy(buf, name, sizeof(buf) - 1);
  buf[sizeof(buf) - 1] = '\0';
  pthread_setname_np(pthread_self(), buf);
#endif
}

ThreadPool::ThreadPool(std::size_t threads, const char* name_prefix) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  const std::string prefix = name_prefix ? name_prefix : "";
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, prefix, i] {
      if (!prefix.empty()) {
        set_current_thread_name((prefix + "-" + std::to_string(i)).c_str());
      }
      worker_loop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(task));
  }
  wake_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      wake_.wait(lock, [&] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  parallel_slices(count, size(),
                  [&fn](std::size_t, std::size_t begin, std::size_t end) {
                    for (std::size_t i = begin; i < end; ++i) fn(i);
                  });
}

void ThreadPool::parallel_slices(
    std::size_t count, std::size_t slices,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (count == 0) return;
  slices = std::max<std::size_t>(1, std::min(slices, count));
  if (slices == 1) {
    fn(0, 0, count);
    return;
  }
  const std::size_t chunk = (count + slices - 1) / slices;
  std::atomic<std::size_t> pending{slices};
  std::promise<void> done;
  auto future = done.get_future();
  for (std::size_t s = 0; s < slices; ++s) {
    const std::size_t begin = s * chunk;
    const std::size_t end = std::min(count, begin + chunk);
    submit([&, s, begin, end] {
      fn(s, begin, end);
      if (pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        done.set_value();
      }
    });
  }
  future.wait();
}

}  // namespace streamapprox
