#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace streamapprox {

Table::Table(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int precision) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << value;
  return out.str();
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c >= widths.size()) widths.push_back(0);
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto emit_row = [&](const std::vector<std::string>& cells,
                            std::ostringstream& out) {
    out << "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      out << " " << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    out << "\n";
  };

  std::ostringstream out;
  out << "\n== " << title_ << " ==\n";
  emit_row(headers_, out);
  out << "|";
  for (std::size_t c = 0; c < widths.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << "|";
  }
  out << "\n";
  for (const auto& row : rows_) emit_row(row, out);
  return out.str();
}

void Table::print() const {
  const std::string text = render();
  std::fwrite(text.data(), 1, text.size(), stdout);
  std::fflush(stdout);
}

}  // namespace streamapprox
