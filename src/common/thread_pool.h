// Fixed-size worker pool used by the batched engine's stage scheduler.
//
// Semantics mirror what the micro-batch model needs: submit() enqueues an
// arbitrary task; parallel_for() slices an index range across the workers and
// BLOCKS until every slice completed — this barrier is precisely the per-stage
// synchronisation of a Spark job, and is what makes shuffle-heavy operations
// (Spark STS's groupBy) expensive in our reproduction, as in the paper.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace streamapprox {

/// Names the calling thread for debuggers, TSan reports, and `perf`
/// (pthread_setname_np where available, truncated to the kernel's 15-char
/// limit; a silent no-op elsewhere). Call first thing inside the thread.
void set_current_thread_name(const char* name);

/// A joinable fixed-size thread pool.
class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1; 0 means hardware_concurrency).
  /// Workers are named "<name_prefix>-<i>" when a prefix is given.
  explicit ThreadPool(std::size_t threads = 0,
                      const char* name_prefix = nullptr);

  /// Stops accepting work, drains the queue, joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void submit(std::function<void()> task);

  /// Runs fn(i) for every i in [0, count) across the pool and waits for all
  /// invocations to finish (stage barrier). Work is divided into contiguous
  /// slices, one per worker, to keep per-task overhead negligible.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

  /// Runs fn(slice_index, begin, end) for `slices` contiguous sub-ranges of
  /// [0, count) and waits for completion. Useful when the callee wants one
  /// context object per slice (e.g. per-partition samplers).
  void parallel_slices(
      std::size_t count, std::size_t slices,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

  /// Number of worker threads.
  std::size_t size() const noexcept { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;
};

}  // namespace streamapprox
