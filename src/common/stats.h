// Numerically stable running statistics (Welford) and small helpers used by
// the error-estimation module and by tests/benches to validate distributions.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace streamapprox {

/// Single-pass mean/variance accumulator (Welford's algorithm).
///
/// This is the workhorse behind the per-stratum sample statistics s_i^2 of
/// paper Eq. 7: each reservoir keeps one RunningStats over its *sampled*
/// items, and the estimators read count/mean/variance from it.
class RunningStats {
 public:
  /// Adds one observation.
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    sum_ += x;
    if (x < min_ || n_ == 1) min_ = x;
    if (x > max_ || n_ == 1) max_ = x;
  }

  /// Merges another accumulator (parallel Welford / Chan et al.).
  void merge(const RunningStats& other) noexcept;

  /// Removes all observations.
  void reset() noexcept { *this = RunningStats{}; }

  /// Number of observations.
  std::uint64_t count() const noexcept { return n_; }
  /// Sum of observations.
  double sum() const noexcept { return sum_; }
  /// Arithmetic mean (0 if empty).
  double mean() const noexcept { return n_ == 0 ? 0.0 : mean_; }
  /// Unbiased sample variance s^2 (0 when n < 2) — paper Eq. 7.
  double variance() const noexcept {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }
  /// Population variance (divides by n).
  double population_variance() const noexcept {
    return n_ == 0 ? 0.0 : m2_ / static_cast<double>(n_);
  }
  /// Sample standard deviation.
  double stddev() const noexcept { return std::sqrt(variance()); }
  /// Smallest observation (0 if empty).
  double min() const noexcept { return n_ == 0 ? 0.0 : min_; }
  /// Largest observation (0 if empty).
  double max() const noexcept { return n_ == 0 ? 0.0 : max_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Mean of a vector (0 for empty input).
double mean_of(const std::vector<double>& xs) noexcept;

/// Unbiased sample variance of a vector (0 when fewer than two elements).
double variance_of(const std::vector<double>& xs) noexcept;

/// Exact quantile by copy-and-nth_element; q in [0,1]. Returns 0 for empty
/// input.
double quantile_of(std::vector<double> xs, double q) noexcept;

/// Pearson chi-square statistic for observed vs expected counts; used by the
/// sampler uniformity property tests.
double chi_square(const std::vector<double>& observed,
                  const std::vector<double>& expected) noexcept;

/// Relative error |approx - exact| / |exact| — the paper's "accuracy loss"
/// metric (§6.1). Returns |approx| when exact == 0.
double relative_error(double approx, double exact) noexcept;

}  // namespace streamapprox
