// ASCII table renderer for the benchmark harness. Every figure-reproduction
// binary prints its result matrix through this so bench_output.txt reads like
// the paper's tables.
#pragma once

#include <string>
#include <vector>

namespace streamapprox {

/// Accumulates rows of string cells and renders them with aligned columns.
class Table {
 public:
  /// Creates a table titled `title` with the given column headers.
  Table(std::string title, std::vector<std::string> headers);

  /// Appends a row; missing cells render empty, extra cells are kept.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` decimals.
  static std::string num(double value, int precision = 2);

  /// Renders the full table (title, rule, header, rows).
  std::string render() const;

  /// Renders to stdout.
  void print() const;

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace streamapprox
