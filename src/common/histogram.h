// Fixed-width bucket histogram. Used (a) as an approximate linear query type
// (paper §3.2 lists "histogram" among supported aggregations) and (b) by the
// test suite to compare sampled vs. exact distributions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace streamapprox {

/// Histogram over [lo, hi) with `buckets` equal-width bins plus underflow and
/// overflow counters. Supports weighted increments so that stratified samples
/// can be "statistically recreated" into a full-population histogram by adding
/// each sampled item with its stratum weight W_i.
class Histogram {
 public:
  /// Creates a histogram over [lo, hi) with the given number of bins
  /// (at least 1). Throws std::invalid_argument on a degenerate range.
  Histogram(double lo, double hi, std::size_t buckets);

  /// Adds `weight` mass at value x (weight defaults to one observation).
  void add(double x, double weight = 1.0) noexcept;

  /// Merges compatible histograms (same range and bucket count). Throws
  /// std::invalid_argument on shape mismatch.
  void merge(const Histogram& other);

  /// Clears all mass.
  void reset() noexcept;

  /// Total mass including under/overflow.
  double total() const noexcept { return total_; }
  /// Mass below `lo`.
  double underflow() const noexcept { return underflow_; }
  /// Mass at or above `hi`.
  double overflow() const noexcept { return overflow_; }
  /// Mass of bucket i.
  double bucket(std::size_t i) const { return buckets_.at(i); }
  /// Number of buckets.
  std::size_t bucket_count() const noexcept { return buckets_.size(); }
  /// Inclusive lower edge of bucket i.
  double bucket_lo(std::size_t i) const noexcept;
  /// Exclusive upper edge of bucket i.
  double bucket_hi(std::size_t i) const noexcept;

  /// Approximate quantile by linear interpolation within the containing
  /// bucket; q in [0,1]. Returns lo for an empty histogram.
  double quantile(double q) const noexcept;

  /// L1 distance between normalised histograms (range/shape must match);
  /// 0 = identical distributions, 2 = disjoint. Throws on shape mismatch.
  double l1_distance(const Histogram& other) const;

  /// Multi-line ASCII rendering for examples/bench output.
  std::string render(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<double> buckets_;
  double underflow_ = 0.0;
  double overflow_ = 0.0;
  double total_ = 0.0;
};

}  // namespace streamapprox
