#include "common/stats.h"

#include <algorithm>
#include <cstddef>

namespace streamapprox {

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(n_ + other.n_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / total;
  mean_ += delta * static_cast<double>(other.n_) / total;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double mean_of(const std::vector<double>& xs) noexcept {
  if (xs.empty()) return 0.0;
  double total = 0.0;
  for (double x : xs) total += x;
  return total / static_cast<double>(xs.size());
}

double variance_of(const std::vector<double>& xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean_of(xs);
  double m2 = 0.0;
  for (double x : xs) m2 += (x - m) * (x - m);
  return m2 / static_cast<double>(xs.size() - 1);
}

double quantile_of(std::vector<double> xs, double q) noexcept {
  if (xs.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(xs.size() - 1) + 0.5);
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(idx),
                   xs.end());
  return xs[idx];
}

double chi_square(const std::vector<double>& observed,
                  const std::vector<double>& expected) noexcept {
  double stat = 0.0;
  const std::size_t n = std::min(observed.size(), expected.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (expected[i] <= 0.0) continue;
    const double diff = observed[i] - expected[i];
    stat += diff * diff / expected[i];
  }
  return stat;
}

double relative_error(double approx, double exact) noexcept {
  if (exact == 0.0) return std::abs(approx);
  return std::abs(approx - exact) / std::abs(exact);
}

}  // namespace streamapprox
