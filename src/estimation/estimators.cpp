#include "estimation/estimators.h"

#include <sstream>
#include <unordered_map>

namespace streamapprox::estimation {

void StratumSummary::merge(const StratumSummary& other) noexcept {
  seen += other.seen;
  sampled += other.sampled;
  sum += other.sum;
  sum_sq += other.sum_sq;
  // Recompute the Eq. 1 weight from the merged counters.
  weight = (sampled > 0 && seen > sampled)
               ? static_cast<double>(seen) / static_cast<double>(sampled)
               : 1.0;
}

std::string ApproxResult::to_string(double z) const {
  std::ostringstream out;
  out << estimate << " +/- " << error_bound(z);
  return out.str();
}

ApproxResult estimate_sum(const std::vector<StratumSummary>& strata) {
  ApproxResult result;
  for (const auto& s : strata) {
    result.population += s.seen;
    result.sample_size += s.sampled;
    // Eq. 2: SUM_i = (Σ_j I_ij) × W_i.
    result.estimate += s.sum * s.weight;
    // Eq. 6: Var(SUM) = Σ_i C_i (C_i − Y_i) s_i² / Y_i.
    if (s.sampled > 0 && s.seen > s.sampled) {
      const double ci = static_cast<double>(s.seen);
      const double yi = static_cast<double>(s.sampled);
      result.variance += ci * (ci - yi) * s.sample_variance() / yi;
    }
  }
  return result;
}

ApproxResult estimate_mean(const std::vector<StratumSummary>& strata) {
  ApproxResult result;
  std::uint64_t total_seen = 0;
  for (const auto& s : strata) total_seen += s.seen;
  if (total_seen == 0) return result;
  const double total = static_cast<double>(total_seen);

  for (const auto& s : strata) {
    result.population += s.seen;
    result.sample_size += s.sampled;
    const double omega = static_cast<double>(s.seen) / total;
    // Eq. 8: MEAN = Σ ω_i × MEAN_i.
    result.estimate += omega * s.mean();
    // Eq. 9: Var(MEAN) = Σ ω_i² × s_i²/Y_i × (C_i − Y_i)/C_i.
    if (s.sampled > 0 && s.seen > s.sampled) {
      const double ci = static_cast<double>(s.seen);
      const double yi = static_cast<double>(s.sampled);
      result.variance +=
          omega * omega * (s.sample_variance() / yi) * ((ci - yi) / ci);
    }
  }
  return result;
}

ApproxResult estimate_count(const std::vector<StratumSummary>& strata) {
  ApproxResult result;
  for (const auto& s : strata) {
    result.population += s.seen;
    result.sample_size += s.sampled;
    result.estimate += static_cast<double>(s.sampled) * s.weight;
    // A count is a SUM over the constant 1; within a stratum the sampled
    // "values" have zero variance, so Eq. 6 contributes nothing. The count
    // estimate is exact whenever weights follow Eq. 1.
  }
  return result;
}

ApproxResult estimate_stratum_sum(const StratumSummary& s) {
  ApproxResult result;
  result.population = s.seen;
  result.sample_size = s.sampled;
  result.estimate = s.sum * s.weight;
  if (s.sampled > 0 && s.seen > s.sampled) {
    const double ci = static_cast<double>(s.seen);
    const double yi = static_cast<double>(s.sampled);
    result.variance = ci * (ci - yi) * s.sample_variance() / yi;
  }
  return result;
}

ApproxResult estimate_stratum_mean(const StratumSummary& s) {
  ApproxResult result;
  result.population = s.seen;
  result.sample_size = s.sampled;
  result.estimate = s.mean();
  if (s.sampled > 0 && s.seen > s.sampled) {
    const double ci = static_cast<double>(s.seen);
    const double yi = static_cast<double>(s.sampled);
    result.variance = (s.sample_variance() / yi) * ((ci - yi) / ci);
  }
  return result;
}

std::vector<StratumSummary> merge_summaries(
    const std::vector<std::vector<StratumSummary>>& parts) {
  std::vector<StratumSummary> merged;
  std::unordered_map<sampling::StratumId, std::size_t> index;
  for (const auto& part : parts) {
    for (const auto& summary : part) {
      auto [it, inserted] = index.emplace(summary.stratum, merged.size());
      if (inserted) {
        merged.push_back(summary);
      } else {
        merged[it->second].merge(summary);
      }
    }
  }
  return merged;
}

}  // namespace streamapprox::estimation
