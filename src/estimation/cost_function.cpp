#include "estimation/cost_function.h"

#include <algorithm>
#include <cmath>

#include "estimation/confidence.h"

namespace streamapprox::estimation {
namespace {

// Accuracy budget: choose the equal per-stratum sample size Y so that the
// 95%-confidence relative error of the SUM estimate stays below `target`,
// using the previous interval's per-stratum statistics. From Eq. 6 with
// C_i >> Y:  Var ≈ Σ C_i² s_i² / Y, so
//   Y >= z² · Σ C_i² s_i²  /  (target · SUM)².
std::size_t size_for_accuracy(double target,
                              const std::vector<StratumSummary>& last,
                              std::uint64_t expected_items) {
  if (last.empty() || target <= 0.0) {
    // No history yet: start from a conservative 10% fraction.
    return static_cast<std::size_t>(
        std::max(1.0, 0.1 * static_cast<double>(expected_items)));
  }
  double weighted_var = 0.0;
  double sum_estimate = 0.0;
  for (const auto& s : last) {
    const double ci = static_cast<double>(s.seen);
    weighted_var += ci * ci * s.sample_variance();
    sum_estimate += s.sum * s.weight;
  }
  if (sum_estimate == 0.0 || weighted_var == 0.0) {
    return static_cast<std::size_t>(
        std::max(1.0, 0.1 * static_cast<double>(expected_items)));
  }
  const double z = kZ95;
  const double denom = target * std::abs(sum_estimate);
  const double per_stratum = z * z * weighted_var / (denom * denom);
  const double total =
      per_stratum * static_cast<double>(last.size());
  const double capped =
      std::min(total, static_cast<double>(expected_items));
  return static_cast<std::size_t>(std::max(1.0, std::ceil(capped)));
}

}  // namespace

std::size_t CostFunction::sample_size(
    const QueryBudget& budget, std::uint64_t expected_items,
    const std::vector<StratumSummary>& last_interval) const {
  const double expected = static_cast<double>(expected_items);
  switch (budget.kind) {
    case BudgetKind::kSampleFraction: {
      const double f = std::clamp(budget.value, 0.0, 1.0);
      return static_cast<std::size_t>(std::ceil(f * expected));
    }
    case BudgetKind::kLatencyMs: {
      const double capacity = budget.value * model_.items_per_ms_per_worker *
                              static_cast<double>(model_.workers);
      return static_cast<std::size_t>(
          std::max(1.0, std::min(expected, capacity)));
    }
    case BudgetKind::kResourceTokens: {
      const double capacity =
          model_.tokens_per_item > 0.0
              ? budget.value / model_.tokens_per_item
              : expected;
      return static_cast<std::size_t>(
          std::max(1.0, std::min(expected, capacity)));
    }
    case BudgetKind::kRelativeError:
      return size_for_accuracy(budget.value, last_interval, expected_items);
  }
  return expected_items;
}

}  // namespace streamapprox::estimation
