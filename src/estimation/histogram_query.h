// Approximate HISTOGRAM queries (paper §3.2 lists histogram among the
// supported linear aggregations): each bucket's mass is a weighted COUNT, so
// adding every sampled item with its stratum weight W_i statistically
// recreates the population histogram. Unlike SUM/MEAN, histograms need the
// sampled values themselves, so estimation happens where the sample is
// still materialised: core::HistogramSink's slide hook receives the closed
// slide's stratified sample and keeps a window-aligned ring of per-slide
// histograms (register one via core::QuerySet::histogram, or the legacy
// StreamApproxConfig::histogram field).
#pragma once

#include <cstddef>

#include "common/histogram.h"
#include "sampling/sample.h"

namespace streamapprox::estimation {

/// Shape of a histogram query: `buckets` equal-width bins over [lo, hi).
struct HistogramSpec {
  double lo = 0.0;
  double hi = 1.0;
  std::size_t buckets = 20;
};

/// Builds the weighted (population-scale) histogram of a stratified sample:
/// every sampled item contributes W_i mass, so bucket totals estimate the
/// full-population counts and the histogram's total() estimates Σ C_i.
template <typename T, typename ValueFn>
Histogram weighted_histogram(const sampling::StratifiedSample<T>& sample,
                             ValueFn value, const HistogramSpec& spec) {
  Histogram histogram(spec.lo, spec.hi, spec.buckets);
  for (const auto& stratum : sample.strata) {
    for (const auto& item : stratum.items) {
      histogram.add(static_cast<double>(value(item)), stratum.weight);
    }
  }
  return histogram;
}

}  // namespace streamapprox::estimation
