// Sample-backed estimators for the query classes the sketch family answers —
// heavy hitters, distinct counts, quantiles — computed from a stratified
// OASRS sample instead of a full-stream sketch. These exist for the
// sketch-vs-sample ablation (bench/micro_sketches.cpp): frequency-style
// answers scale each sampled record by its stratum weight W_i, but a sample
// structurally undercounts DISTINCT keys (it cannot see keys it dropped) and
// its tail quantiles degrade with the sampling fraction — exactly the gap
// the sketch sinks close.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "engine/record.h"
#include "sampling/sample.h"

namespace streamapprox::estimation {

/// Extracts the grouping key a sample-backed frequency estimator counts by.
using SampleKeyFn = std::function<std::uint64_t(const engine::Record&)>;

/// Population-scale key frequencies estimated from the sample: every sampled
/// record contributes its stratum weight W_i to its key's count. Returns the
/// top_k keys ordered by estimated count desc, key asc (the sketch sink's
/// deterministic ordering, so ablation rows compare like for like).
std::vector<std::pair<std::uint64_t, double>> sample_heavy_hitters(
    const sampling::StratifiedSample<engine::Record>& sample,
    const SampleKeyFn& key, std::size_t top_k);

/// Distinct keys OBSERVED in the sample. A sample cannot estimate past its
/// kept records, so this undercounts the stream's true cardinality whenever
/// the sampling fraction drops below 1 — the structural sample-vs-sketch gap
/// the ablation measures.
std::uint64_t sample_distinct(
    const sampling::StratifiedSample<engine::Record>& sample,
    const SampleKeyFn& key);

/// Weight-expanded sample quantile: the value at rank q of the sampled
/// records, each counted with its stratum weight W_i. Returns 0 when the
/// sample is empty.
double sample_quantile(
    const sampling::StratifiedSample<engine::Record>& sample, double q);

}  // namespace streamapprox::estimation
