#include "estimation/feedback.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace streamapprox::estimation {

FeedbackController::FeedbackController(FeedbackConfig config,
                                       std::size_t initial_budget)
    : config_(config),
      budget_(std::clamp(initial_budget, config.min_budget,
                         config.max_budget)) {}

std::size_t FeedbackController::update(double observed_relative_bound) {
  const double target = config_.target_relative_error;
  double scale = 0.0;
  if (observed_relative_bound <= 0.0) {
    // Interval was exact (e.g. every stratum fully observed): we can afford
    // to shrink gently and reclaim resources.
    scale = 0.5;
  } else {
    // Relative bound scales ~ 1/sqrt(budget): to move the bound from
    // `observed` to `target`, scale the budget by (observed/target)².
    const double ratio = observed_relative_bound / target;
    scale = ratio * ratio;
  }
  scale = std::clamp(scale, 1.0 / config_.max_step, config_.max_step);
  const double damped =
      std::pow(scale, config_.smoothing);  // EWMA in log space
  const double next = static_cast<double>(budget_) * damped;
  budget_ = std::clamp(static_cast<std::size_t>(std::llround(next)),
                       config_.min_budget, config_.max_budget);
  return budget_;
}

FeedbackBank::FeedbackBank(FeedbackConfig base, std::size_t initial_budget)
    : base_(base), initial_budget_(initial_budget) {}

std::size_t FeedbackBank::add_target(double target_relative_error) {
  return add_target(target_relative_error, initial_budget_);
}

std::size_t FeedbackBank::add_target(double target_relative_error,
                                     std::size_t seed_budget) {
  FeedbackConfig config = base_;
  config.target_relative_error = target_relative_error;
  const std::size_t id = next_id_++;
  controllers_.push_back(Slot{id, FeedbackController(config, seed_budget)});
  return id;
}

bool FeedbackBank::remove_target(std::size_t id) {
  for (auto it = controllers_.begin(); it != controllers_.end(); ++it) {
    if (it->id == id) {
      controllers_.erase(it);
      return true;
    }
  }
  return false;
}

std::size_t FeedbackBank::update_targets(
    const std::vector<std::pair<std::size_t, double>>& observed_by_id) {
  for (const auto& [id, bound] : observed_by_id) {
    bool found = false;
    for (auto& slot : controllers_) {
      if (slot.id == id) {
        slot.controller.update(bound);
        found = true;
        break;
      }
    }
    if (!found) {
      throw std::invalid_argument(
          "FeedbackBank::update_targets: unknown controller id");
    }
  }
  return budget();
}

std::size_t FeedbackBank::budget() const noexcept {
  if (controllers_.empty()) return initial_budget_;
  std::size_t max_budget = 0;
  for (const auto& slot : controllers_) {
    max_budget = std::max(max_budget, slot.controller.budget());
  }
  return max_budget;
}

}  // namespace streamapprox::estimation
