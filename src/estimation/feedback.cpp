#include "estimation/feedback.h"

#include <algorithm>
#include <cmath>

namespace streamapprox::estimation {

FeedbackController::FeedbackController(FeedbackConfig config,
                                       std::size_t initial_budget)
    : config_(config),
      budget_(std::clamp(initial_budget, config.min_budget,
                         config.max_budget)) {}

std::size_t FeedbackController::update(double observed_relative_bound) {
  const double target = config_.target_relative_error;
  double scale = 0.0;
  if (observed_relative_bound <= 0.0) {
    // Interval was exact (e.g. every stratum fully observed): we can afford
    // to shrink gently and reclaim resources.
    scale = 0.5;
  } else {
    // Relative bound scales ~ 1/sqrt(budget): to move the bound from
    // `observed` to `target`, scale the budget by (observed/target)².
    const double ratio = observed_relative_bound / target;
    scale = ratio * ratio;
  }
  scale = std::clamp(scale, 1.0 / config_.max_step, config_.max_step);
  const double damped =
      std::pow(scale, config_.smoothing);  // EWMA in log space
  const double next = static_cast<double>(budget_) * damped;
  budget_ = std::clamp(static_cast<std::size_t>(std::llround(next)),
                       config_.min_budget, config_.max_budget);
  return budget_;
}

}  // namespace streamapprox::estimation
