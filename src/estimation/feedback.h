// Adaptive feedback between the error-estimation module and the sampling
// module (paper §4.2: "In cases where the error bound is larger than the
// specified target, an adaptive feedback mechanism is activated to increase
// the sample size"). A damped multiplicative controller exploiting the
// 1/sqrt(Y) error law: doubling accuracy needs 4x the sample.
#pragma once

#include <cstddef>
#include <vector>

namespace streamapprox::estimation {

/// Controller configuration.
struct FeedbackConfig {
  double target_relative_error = 0.01;  ///< desired 95% relative bound
  double smoothing = 0.5;   ///< EWMA factor on budget updates (0..1]
  double max_step = 4.0;    ///< max multiplicative change per interval
  std::size_t min_budget = 16;
  std::size_t max_budget = 1 << 26;
};

/// Re-tunes the per-interval sample budget from observed error bounds.
class FeedbackController {
 public:
  /// Creates a controller starting at `initial_budget` samples/interval.
  FeedbackController(FeedbackConfig config, std::size_t initial_budget);

  /// Reports the observed relative error bound of the last interval and
  /// returns the budget to use for the next interval. Error bound <= 0 (an
  /// exact interval) shrinks the budget toward min_budget.
  std::size_t update(double observed_relative_bound);

  /// Budget currently in force.
  std::size_t budget() const noexcept { return budget_; }

  /// The configured target.
  double target() const noexcept { return config_.target_relative_error; }

 private:
  FeedbackConfig config_;
  std::size_t budget_;
};

/// Multi-query feedback: one FeedbackController per accuracy-targeted query,
/// resolved into a single per-interval budget as the MAX across controllers
/// — the strictest registered query drives the sample size, because the
/// stream is sampled once no matter how many queries consume it.
///
/// Controllers may be added and removed while the bank is live (the dynamic
/// query lifecycle attaches/detaches targeted queries on a running
/// pipeline); every controller is addressed by the STABLE id returned from
/// add_target, which never shifts when another controller is removed. The
/// bank itself is not thread-safe — the slide-lifecycle thread owns it, and
/// membership changes reach it only at slide-close boundaries.
class FeedbackBank {
 public:
  /// `base` supplies the controller tuning (smoothing, step, clamps); each
  /// registered target overrides base.target_relative_error.
  FeedbackBank(FeedbackConfig base, std::size_t initial_budget);

  /// Registers a controller for one query's relative-error target, seeded at
  /// the bank's initial budget; returns its stable id (pass it to
  /// update_targets / remove_target).
  std::size_t add_target(double target_relative_error);

  /// Registers a controller seeded at `seed_budget` instead of the initial
  /// budget — budget continuity for a query attached mid-stream (its
  /// controller starts from the budget currently in force, not from the
  /// cold-start value).
  std::size_t add_target(double target_relative_error,
                         std::size_t seed_budget);

  /// Retires the controller with stable id `id` (a detached query takes its
  /// accuracy demand with it; the max over the remaining controllers is the
  /// rebuilt budget). Returns false when no such controller exists.
  bool remove_target(std::size_t id);

  /// True when no query registered an accuracy target.
  bool empty() const noexcept { return controllers_.empty(); }

  /// Number of registered controllers.
  std::size_t size() const noexcept { return controllers_.size(); }

  /// Update by stable id: feeds each (id, observed bound) pair to its
  /// controller — controllers not named keep their budget (a freshly
  /// attached query whose first whole window has not assembled yet has no
  /// bound to report) — and returns the rebuilt max budget. Throws
  /// std::invalid_argument on an unknown id; an id can never silently feed
  /// the wrong controller, however membership shifted.
  std::size_t update_targets(
      const std::vector<std::pair<std::size_t, double>>& observed_by_id);

  /// The budget currently in force: max across controllers, or the initial
  /// budget when the bank is empty.
  std::size_t budget() const noexcept;

 private:
  /// A live controller plus the stable id it was registered under.
  struct Slot {
    std::size_t id;
    FeedbackController controller;
  };

  FeedbackConfig base_;
  std::size_t initial_budget_;
  std::size_t next_id_ = 0;
  std::vector<Slot> controllers_;  ///< registration order, ids stable
};

}  // namespace streamapprox::estimation
