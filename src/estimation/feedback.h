// Adaptive feedback between the error-estimation module and the sampling
// module (paper §4.2: "In cases where the error bound is larger than the
// specified target, an adaptive feedback mechanism is activated to increase
// the sample size"). A damped multiplicative controller exploiting the
// 1/sqrt(Y) error law: doubling accuracy needs 4x the sample.
#pragma once

#include <cstddef>
#include <vector>

namespace streamapprox::estimation {

/// Controller configuration.
struct FeedbackConfig {
  double target_relative_error = 0.01;  ///< desired 95% relative bound
  double smoothing = 0.5;   ///< EWMA factor on budget updates (0..1]
  double max_step = 4.0;    ///< max multiplicative change per interval
  std::size_t min_budget = 16;
  std::size_t max_budget = 1 << 26;
};

/// Re-tunes the per-interval sample budget from observed error bounds.
class FeedbackController {
 public:
  /// Creates a controller starting at `initial_budget` samples/interval.
  FeedbackController(FeedbackConfig config, std::size_t initial_budget);

  /// Reports the observed relative error bound of the last interval and
  /// returns the budget to use for the next interval. Error bound <= 0 (an
  /// exact interval) shrinks the budget toward min_budget.
  std::size_t update(double observed_relative_bound);

  /// Budget currently in force.
  std::size_t budget() const noexcept { return budget_; }

  /// The configured target.
  double target() const noexcept { return config_.target_relative_error; }

 private:
  FeedbackConfig config_;
  std::size_t budget_;
};

/// Multi-query feedback: one FeedbackController per accuracy-targeted query,
/// resolved into a single per-interval budget as the MAX across controllers
/// — the strictest registered query drives the sample size, because the
/// stream is sampled once no matter how many queries consume it.
class FeedbackBank {
 public:
  /// `base` supplies the controller tuning (smoothing, step, clamps); each
  /// registered target overrides base.target_relative_error.
  FeedbackBank(FeedbackConfig base, std::size_t initial_budget);

  /// Registers a controller for one query's relative-error target; returns
  /// its index (the order observed bounds must be reported in).
  std::size_t add_target(double target_relative_error);

  /// True when no query registered an accuracy target.
  bool empty() const noexcept { return controllers_.empty(); }

  /// Number of registered controllers.
  std::size_t size() const noexcept { return controllers_.size(); }

  /// Reports every controller's observed relative bound for the last
  /// interval (`observed_bounds[i]` feeds controller i; sizes must match)
  /// and returns the max re-tuned budget.
  std::size_t update(const std::vector<double>& observed_bounds);

  /// The budget currently in force: max across controllers, or the initial
  /// budget when the bank is empty.
  std::size_t budget() const noexcept;

 private:
  FeedbackConfig base_;
  std::size_t initial_budget_;
  std::vector<FeedbackController> controllers_;
};

}  // namespace streamapprox::estimation
