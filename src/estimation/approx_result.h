// The `output ± error bound` type every StreamApprox query produces
// (paper §3.1 last step and §3.3).
#pragma once

#include <cmath>
#include <cstdint>
#include <string>

namespace streamapprox::estimation {

/// Closed interval [lo, hi].
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  /// True when x lies within the interval.
  bool contains(double x) const noexcept { return x >= lo && x <= hi; }
  /// Interval width.
  double width() const noexcept { return hi - lo; }
};

/// An approximate query output with its estimated variance, reported as
/// `estimate ± z·stddev` for the chosen confidence (68-95-99.7 rule, §3.3).
struct ApproxResult {
  double estimate = 0.0;      ///< point estimate (e.g. Eq. 3 SUM)
  double variance = 0.0;      ///< estimated Var of the estimate (Eq. 6 / 9)
  std::uint64_t population = 0;  ///< Σ C_i items the estimate speaks for
  std::uint64_t sample_size = 0; ///< Σ Y_i items actually aggregated

  /// Standard deviation of the estimate.
  double stddev() const noexcept { return std::sqrt(variance); }

  /// Half-width of the confidence interval at z standard deviations
  /// (z = 1, 2, 3 → 68 %, 95 %, 99.7 %).
  double error_bound(double z = 2.0) const noexcept { return z * stddev(); }

  /// Error bound as a fraction of the estimate (0 when the estimate is 0).
  double relative_bound(double z = 2.0) const noexcept {
    return estimate != 0.0 ? std::abs(error_bound(z) / estimate) : 0.0;
  }

  /// The confidence interval at z standard deviations.
  Interval interval(double z = 2.0) const noexcept {
    const double bound = error_bound(z);
    return {estimate - bound, estimate + bound};
  }

  /// "value ± bound" rendering used by examples and benches.
  std::string to_string(double z = 2.0) const;
};

}  // namespace streamapprox::estimation
