#include "estimation/sample_queries.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace streamapprox::estimation {

std::vector<std::pair<std::uint64_t, double>> sample_heavy_hitters(
    const sampling::StratifiedSample<engine::Record>& sample,
    const SampleKeyFn& key, std::size_t top_k) {
  std::unordered_map<std::uint64_t, double> estimated;
  for (const auto& stratum : sample.strata) {
    for (const auto& record : stratum.items) {
      estimated[key(record)] += stratum.weight;
    }
  }
  std::vector<std::pair<std::uint64_t, double>> ranked(estimated.begin(),
                                                       estimated.end());
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  if (ranked.size() > top_k) ranked.resize(top_k);
  return ranked;
}

std::uint64_t sample_distinct(
    const sampling::StratifiedSample<engine::Record>& sample,
    const SampleKeyFn& key) {
  std::unordered_set<std::uint64_t> keys;
  for (const auto& stratum : sample.strata) {
    for (const auto& record : stratum.items) {
      keys.insert(key(record));
    }
  }
  return keys.size();
}

double sample_quantile(
    const sampling::StratifiedSample<engine::Record>& sample, double q) {
  std::vector<std::pair<double, double>> weighted;  // (value, weight)
  double total_weight = 0.0;
  for (const auto& stratum : sample.strata) {
    for (const auto& record : stratum.items) {
      weighted.emplace_back(record.value, stratum.weight);
      total_weight += stratum.weight;
    }
  }
  if (weighted.empty() || total_weight <= 0.0) return 0.0;
  std::sort(weighted.begin(), weighted.end());
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * total_weight;
  double cumulative = 0.0;
  for (const auto& [value, weight] : weighted) {
    cumulative += weight;
    if (cumulative >= target) return value;
  }
  return weighted.back().first;
}

}  // namespace streamapprox::estimation
