// Stratified estimators for approximate linear queries — the paper's §3.2
// (Eq. 2-4) point estimates with the §3.3 (Eq. 5-9) variance estimates.
//
// Estimators consume per-stratum summaries (C_i, Y_i, Σx, Σx²) so they are
// independent of the record type: any sampler output can be summarised with
// `summarize()` and fed through here. All computation is O(#strata).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "estimation/approx_result.h"
#include "sampling/sample.h"

namespace streamapprox::estimation {

/// Sufficient statistics of one stratum's sample for linear-query estimation.
struct StratumSummary {
  sampling::StratumId stratum = 0;
  std::uint64_t seen = 0;      ///< C_i: items received in the interval
  std::uint64_t sampled = 0;   ///< Y_i: items selected
  double sum = 0.0;            ///< Σ_j I_ij over sampled items
  double sum_sq = 0.0;         ///< Σ_j I_ij² over sampled items
  double weight = 1.0;         ///< W_i per Eq. 1

  /// Sample mean Ī_i (0 when empty).
  double mean() const noexcept {
    return sampled == 0 ? 0.0 : sum / static_cast<double>(sampled);
  }

  /// Unbiased sample variance s_i² (Eq. 7); 0 when fewer than two samples.
  double sample_variance() const noexcept {
    if (sampled < 2) return 0.0;
    const double n = static_cast<double>(sampled);
    const double centered = sum_sq - sum * sum / n;
    return centered > 0.0 ? centered / (n - 1.0) : 0.0;
  }

  /// Merges another summary of the SAME stratum (distributed workers).
  void merge(const StratumSummary& other) noexcept;
};

/// Builds summaries from a stratified sample, extracting each item's numeric
/// value with `value`.
template <typename T, typename ValueFn>
std::vector<StratumSummary> summarize(
    const sampling::StratifiedSample<T>& sample, ValueFn value) {
  std::vector<StratumSummary> out;
  out.reserve(sample.strata.size());
  for (const auto& stratum : sample.strata) {
    StratumSummary s;
    s.stratum = stratum.stratum;
    s.seen = stratum.seen;
    s.sampled = stratum.items.size();
    s.weight = stratum.weight;
    for (const auto& item : stratum.items) {
      const double x = static_cast<double>(value(item));
      s.sum += x;
      s.sum_sq += x * x;
    }
    out.push_back(s);
  }
  return out;
}

/// Approximate SUM over all strata: Eq. 2-3 point estimate with Eq. 6
/// variance. Strata with C_i <= Y_i (fully observed) contribute zero
/// variance, as the theory requires.
ApproxResult estimate_sum(const std::vector<StratumSummary>& strata);

/// Approximate MEAN over all strata: Eq. 4/8 point estimate with Eq. 9
/// variance.
ApproxResult estimate_mean(const std::vector<StratumSummary>& strata);

/// Approximate COUNT of all items (Σ Y_i·W_i with the per-stratum weights;
/// equals Σ C_i exactly when weights follow Eq. 1 — kept as a consistency
/// check and for samplers whose counters are themselves estimates).
ApproxResult estimate_count(const std::vector<StratumSummary>& strata);

/// SUM restricted to one stratum (a per-group aggregate such as "bytes of
/// TCP traffic"): Eq. 2 with the single-stratum term of Eq. 6.
ApproxResult estimate_stratum_sum(const StratumSummary& stratum);

/// MEAN restricted to one stratum (e.g. "average trip distance in
/// Manhattan").
ApproxResult estimate_stratum_mean(const StratumSummary& stratum);

/// Merges summaries of the same stratum coming from distributed workers,
/// preserving first-seen order of strata.
std::vector<StratumSummary> merge_summaries(
    const std::vector<std::vector<StratumSummary>>& parts);

}  // namespace streamapprox::estimation
