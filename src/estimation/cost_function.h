// The "virtual cost function" of paper §2.3/§7: translates a user-specified
// query budget into a per-interval sample size. The paper assumes such a
// function exists; we implement the concrete mechanisms §7 sketches —
// a plain sampling fraction, a latency budget over a calibrated throughput
// model, a Pulsar-style resource-token budget, and an accuracy budget that
// inverts the Eq. 6/9 variance formulas using the previous interval's
// statistics.
#pragma once

#include <cstdint>
#include <vector>

#include "estimation/estimators.h"

namespace streamapprox::estimation {

/// What the user constrains; mirrors §2.1 "latency/throughput guarantees,
/// available computing resources, or the accuracy level of query results".
enum class BudgetKind {
  kSampleFraction,   ///< directly: keep `value` in (0,1] of the stream
  kLatencyMs,        ///< finish each interval's job within `value` ms
  kResourceTokens,   ///< spend at most `value` processing tokens per interval
  kRelativeError,    ///< 95%-confidence relative error of SUM <= `value`
};

/// A query budget: a kind plus its magnitude.
struct QueryBudget {
  BudgetKind kind = BudgetKind::kSampleFraction;
  double value = 1.0;

  /// Convenience constructors.
  static QueryBudget fraction(double f) {
    return {BudgetKind::kSampleFraction, f};
  }
  static QueryBudget latency_ms(double ms) {
    return {BudgetKind::kLatencyMs, ms};
  }
  static QueryBudget tokens(double t) {
    return {BudgetKind::kResourceTokens, t};
  }
  static QueryBudget relative_error(double e) {
    return {BudgetKind::kRelativeError, e};
  }
};

/// Calibration of the execution substrate, used by the latency and token
/// budgets. Defaults are deliberately conservative; systems measure and
/// update them at runtime (see core::StreamApprox).
struct CostModel {
  double items_per_ms_per_worker = 1000.0;  ///< measured processing rate
  double tokens_per_item = 1.0;             ///< resource cost of one item
  std::size_t workers = 1;                  ///< parallel workers available
};

/// Translates budgets into per-interval total sample sizes.
class CostFunction {
 public:
  CostFunction() = default;
  explicit CostFunction(CostModel model) : model_(model) {}

  /// Computes the sample size for the next interval.
  ///
  /// `expected_items` is the anticipated number of arrivals in the interval
  /// (typically the previous interval's count); `last_interval` carries the
  /// previous interval's per-stratum statistics for the accuracy budget (may
  /// be empty, in which case a fraction of 10% of expected_items is used as
  /// a safe starting point).
  std::size_t sample_size(
      const QueryBudget& budget, std::uint64_t expected_items,
      const std::vector<StratumSummary>& last_interval = {}) const;

  /// Updates the measured substrate throughput (items/ms/worker).
  void calibrate_throughput(double items_per_ms_per_worker) {
    if (items_per_ms_per_worker > 0.0) {
      model_.items_per_ms_per_worker = items_per_ms_per_worker;
    }
  }

  /// The current cost model.
  const CostModel& model() const noexcept { return model_; }

 private:
  CostModel model_{};
};

}  // namespace streamapprox::estimation
