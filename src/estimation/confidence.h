// Normal/Student-t critical values for turning variances into confidence
// intervals. The paper uses the 68-95-99.7 rule (z = 1, 2, 3); we additionally
// support arbitrary confidence levels through an inverse-normal-CDF
// approximation, and a t correction for very small samples.
#pragma once

#include <cstdint>

namespace streamapprox::estimation {

/// z such that P(|N(0,1)| <= z) == confidence, for confidence in (0, 1).
/// Uses Acklam's rational approximation of the normal quantile (|error| <
/// 1.15e-9, far below sampling noise). confidence outside (0,1) is clamped.
double z_value(double confidence);

/// Standard normal CDF Φ(x).
double normal_cdf(double x);

/// Student-t critical value for a two-sided interval at `confidence` with
/// `dof` degrees of freedom. Uses the Cornish–Fisher expansion around the
/// normal quantile — within ~1 % of table values for dof >= 3 and converging
/// to z as dof grows; adequate for widening small-sample intervals.
double t_value(double confidence, std::uint64_t dof);

/// The paper's three canonical z values.
inline constexpr double kZ68 = 1.0;
inline constexpr double kZ95 = 2.0;
inline constexpr double kZ997 = 3.0;

}  // namespace streamapprox::estimation
