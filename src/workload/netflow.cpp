#include "workload/netflow.h"

namespace streamapprox::workload {

std::string protocol_name(Protocol protocol) {
  switch (protocol) {
    case Protocol::kTcp:
      return "TCP";
    case Protocol::kUdp:
      return "UDP";
    case Protocol::kIcmp:
      return "ICMP";
  }
  return "UNKNOWN";
}

std::vector<SubStreamSpec> netflow_substreams(const NetFlowConfig& config) {
  return {
      {static_cast<sampling::StratumId>(Protocol::kTcp), config.tcp_bytes,
       config.tcp_share * config.flows_per_sec},
      {static_cast<sampling::StratumId>(Protocol::kUdp), config.udp_bytes,
       config.udp_share * config.flows_per_sec},
      {static_cast<sampling::StratumId>(Protocol::kIcmp), config.icmp_bytes,
       config.icmp_share * config.flows_per_sec},
  };
}

std::vector<engine::Record> generate_netflow(const NetFlowConfig& config,
                                             std::size_t count,
                                             std::uint64_t seed) {
  SyntheticStream stream(netflow_substreams(config), seed);
  return stream.generate_count(count);
}

}  // namespace streamapprox::workload
