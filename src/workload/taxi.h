// NYC-taxi-like workload for the taxi-ride case study (§6.3).
//
// SUBSTITUTION (see DESIGN.md): the paper replays the DEBS 2015 Grand
// Challenge dataset (all 2013 NYC taxi rides) with trip start coordinates
// mapped to the six NYC boroughs. We synthesise rides whose start-borough
// shares follow the real Manhattan-dominated skew and whose trip distances
// are per-borough gamma distributions (airport/outer-borough trips longer).
// The evaluated query — average trip distance per start borough per sliding
// window — is the paper's query verbatim.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workload/synthetic.h"

namespace streamapprox::workload {

/// NYC borough of a ride's start coordinate; doubles as the stratum id.
enum class Borough : sampling::StratumId {
  kManhattan = 0,
  kBrooklyn = 1,
  kQueens = 2,
  kBronx = 3,
  kStatenIsland = 4,
  kNewark = 5,  // EWR airport zone, as in the TLC zone map
};

/// Number of boroughs modelled.
inline constexpr std::size_t kBoroughCount = 6;

/// Human-readable borough name.
std::string borough_name(Borough borough);

/// Generator configuration: ride shares and trip-distance distributions
/// (miles) per start borough. Defaults reflect the strongly skewed real
/// distribution (Manhattan ~87 % of yellow-cab pickups in 2013) softened to
/// keep all strata active at bench scales, with realistic mean distances.
struct TaxiConfig {
  std::vector<double> shares{0.70, 0.14, 0.10, 0.04, 0.01, 0.01};
  std::vector<Gamma> distance_miles{
      Gamma{2.2, 0.9},   // Manhattan: short hops, ~2 mi
      Gamma{2.5, 1.3},   // Brooklyn
      Gamma{2.8, 2.0},   // Queens (JFK/LGA traffic), ~5.6 mi
      Gamma{2.3, 1.4},   // Bronx
      Gamma{3.0, 2.4},   // Staten Island, ~7 mi
      Gamma{6.0, 2.8},   // Newark airport, ~17 mi
  };
  /// Aggregate ride arrival rate (rides/second of event time).
  double rides_per_sec = 50000.0;
};

/// Builds the sub-stream specs for a taxi stream.
std::vector<SubStreamSpec> taxi_substreams(const TaxiConfig& config);

/// Generates `count` ride records sorted by event time; Record.stratum is
/// the start Borough, Record.value the trip distance in miles.
std::vector<engine::Record> generate_taxi_rides(const TaxiConfig& config,
                                                std::size_t count,
                                                std::uint64_t seed);

}  // namespace streamapprox::workload
