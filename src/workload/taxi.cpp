#include "workload/taxi.h"

#include <stdexcept>

namespace streamapprox::workload {

std::string borough_name(Borough borough) {
  switch (borough) {
    case Borough::kManhattan:
      return "Manhattan";
    case Borough::kBrooklyn:
      return "Brooklyn";
    case Borough::kQueens:
      return "Queens";
    case Borough::kBronx:
      return "Bronx";
    case Borough::kStatenIsland:
      return "Staten Island";
    case Borough::kNewark:
      return "Newark (EWR)";
  }
  return "UNKNOWN";
}

std::vector<SubStreamSpec> taxi_substreams(const TaxiConfig& config) {
  if (config.shares.size() != kBoroughCount ||
      config.distance_miles.size() != kBoroughCount) {
    throw std::invalid_argument(
        "TaxiConfig: need exactly one share and one distance distribution "
        "per borough");
  }
  std::vector<SubStreamSpec> specs;
  specs.reserve(kBoroughCount);
  for (std::size_t b = 0; b < kBoroughCount; ++b) {
    specs.push_back({static_cast<sampling::StratumId>(b),
                     config.distance_miles[b],
                     config.shares[b] * config.rides_per_sec});
  }
  return specs;
}

std::vector<engine::Record> generate_taxi_rides(const TaxiConfig& config,
                                                std::size_t count,
                                                std::uint64_t seed) {
  SyntheticStream stream(taxi_substreams(config), seed);
  return stream.generate_count(count);
}

}  // namespace streamapprox::workload
