// Synthetic input data streams (paper §5.1): multiple sub-streams with
// configurable value distributions and arrival rates, merged into one
// event-time-sorted stream. All the micro-benchmark workloads (Gaussian,
// Poisson, the §5.4 arrival-rate mixes and the §5.7 skews) are factory
// functions over this module.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/rng.h"
#include "engine/record.h"

namespace streamapprox::workload {

/// Value distributions available to sub-streams.
struct Gaussian {
  double mu = 0.0;
  double sigma = 1.0;
};
struct Poisson {
  double lambda = 1.0;
};
struct Uniform {
  double lo = 0.0;
  double hi = 1.0;
};
struct LogNormal {
  double mu = 0.0;
  double sigma = 1.0;
};
struct Gamma {
  double shape = 1.0;
  double scale = 1.0;
};

/// A sub-stream's value distribution.
using Distribution =
    std::variant<Gaussian, Poisson, Uniform, LogNormal, Gamma>;

/// Draws one value from `dist`.
double sample_value(const Distribution& dist, streamapprox::Rng& rng);

/// Analytic mean of `dist` (used by distribution sanity tests).
double distribution_mean(const Distribution& dist);

/// Analytic variance of `dist`.
double distribution_variance(const Distribution& dist);

/// One sub-stream: a stratum with its own distribution and arrival rate.
struct SubStreamSpec {
  sampling::StratumId id = 0;
  Distribution dist = Gaussian{};
  double rate_per_sec = 1000.0;  ///< average arrivals per second
};

/// Generates the merged stream of all sub-streams.
class SyntheticStream {
 public:
  /// Creates a generator; `seed` fixes all randomness (value draws and
  /// arrival jitter). Throws std::invalid_argument on empty specs or
  /// non-positive total rate.
  SyntheticStream(std::vector<SubStreamSpec> specs, std::uint64_t seed);

  /// Generates every arrival within [0, duration_s), sorted by event time.
  /// Each sub-stream i contributes ~rate_i * duration records at jittered
  /// uniform spacing.
  std::vector<engine::Record> generate(double duration_s) const;

  /// Generates approximately `count` records by choosing the duration
  /// implied by the total rate (count / Σ rate_i seconds).
  std::vector<engine::Record> generate_count(std::size_t count) const;

  /// The configured sub-streams.
  const std::vector<SubStreamSpec>& specs() const noexcept { return specs_; }

  /// Total arrival rate Σ rate_i.
  double total_rate() const noexcept { return total_rate_; }

 private:
  std::vector<SubStreamSpec> specs_;
  double total_rate_ = 0.0;
  std::uint64_t seed_;
};

// ---- Canned workloads from the paper -------------------------------------

/// §5.1 Gaussian micro-benchmark: A(10,5), B(1000,50), C(10000,500), equal
/// rates summing to `total_rate`.
std::vector<SubStreamSpec> gaussian_substreams(double total_rate = 9000.0);

/// §5.4 Gaussian sub-streams with explicit arrival rates A:B:C.
std::vector<SubStreamSpec> gaussian_substreams_rates(double rate_a,
                                                     double rate_b,
                                                     double rate_c);

/// §5.1 Poisson micro-benchmark: lambda = 10, 1000, 1e8, equal rates.
std::vector<SubStreamSpec> poisson_substreams(double total_rate = 9000.0);

/// §5.7-I skewed Gaussian: A(100,10) 80 %, B(1000,100) 19 %, C(10000,1000)
/// 1 % of `total_rate`.
std::vector<SubStreamSpec> skewed_gaussian_substreams(
    double total_rate = 10000.0);

/// §5.7-II skewed Poisson: A 80 %, B 19.99 %, C 0.01 % with lambda
/// 10 / 1000 / 1e8 — the long-tail stress test.
std::vector<SubStreamSpec> skewed_poisson_substreams(
    double total_rate = 10000.0);

}  // namespace streamapprox::workload
