#include "workload/synthetic.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace streamapprox::workload {

double sample_value(const Distribution& dist, streamapprox::Rng& rng) {
  return std::visit(
      [&rng](const auto& d) -> double {
        using D = std::decay_t<decltype(d)>;
        if constexpr (std::is_same_v<D, Gaussian>) {
          return rng.gaussian(d.mu, d.sigma);
        } else if constexpr (std::is_same_v<D, Poisson>) {
          return static_cast<double>(rng.poisson(d.lambda));
        } else if constexpr (std::is_same_v<D, Uniform>) {
          return rng.uniform(d.lo, d.hi);
        } else if constexpr (std::is_same_v<D, LogNormal>) {
          return rng.lognormal(d.mu, d.sigma);
        } else {
          return rng.gamma(d.shape, d.scale);
        }
      },
      dist);
}

double distribution_mean(const Distribution& dist) {
  return std::visit(
      [](const auto& d) -> double {
        using D = std::decay_t<decltype(d)>;
        if constexpr (std::is_same_v<D, Gaussian>) {
          return d.mu;
        } else if constexpr (std::is_same_v<D, Poisson>) {
          return d.lambda;
        } else if constexpr (std::is_same_v<D, Uniform>) {
          return (d.lo + d.hi) / 2.0;
        } else if constexpr (std::is_same_v<D, LogNormal>) {
          return std::exp(d.mu + d.sigma * d.sigma / 2.0);
        } else {
          return d.shape * d.scale;
        }
      },
      dist);
}

double distribution_variance(const Distribution& dist) {
  return std::visit(
      [](const auto& d) -> double {
        using D = std::decay_t<decltype(d)>;
        if constexpr (std::is_same_v<D, Gaussian>) {
          return d.sigma * d.sigma;
        } else if constexpr (std::is_same_v<D, Poisson>) {
          return d.lambda;
        } else if constexpr (std::is_same_v<D, Uniform>) {
          const double w = d.hi - d.lo;
          return w * w / 12.0;
        } else if constexpr (std::is_same_v<D, LogNormal>) {
          const double s2 = d.sigma * d.sigma;
          return (std::exp(s2) - 1.0) * std::exp(2.0 * d.mu + s2);
        } else {
          return d.shape * d.scale * d.scale;
        }
      },
      dist);
}

SyntheticStream::SyntheticStream(std::vector<SubStreamSpec> specs,
                                 std::uint64_t seed)
    : specs_(std::move(specs)), seed_(seed) {
  if (specs_.empty()) {
    throw std::invalid_argument("SyntheticStream: no sub-streams");
  }
  for (const auto& spec : specs_) total_rate_ += spec.rate_per_sec;
  if (total_rate_ <= 0.0) {
    throw std::invalid_argument("SyntheticStream: total rate must be > 0");
  }
}

std::vector<engine::Record> SyntheticStream::generate(
    double duration_s) const {
  std::vector<engine::Record> records;
  records.reserve(
      static_cast<std::size_t>(total_rate_ * duration_s * 1.01) + 16);
  streamapprox::Rng root(seed_);
  for (const auto& spec : specs_) {
    streamapprox::Rng rng = root.fork();
    if (spec.rate_per_sec <= 0.0) continue;
    const auto n = static_cast<std::size_t>(spec.rate_per_sec * duration_s);
    const double spacing_us = 1e6 / spec.rate_per_sec;
    for (std::size_t j = 0; j < n; ++j) {
      engine::Record record;
      record.stratum = spec.id;
      record.value = sample_value(spec.dist, rng);
      // Jittered uniform spacing: arrival j lands inside its nominal slot,
      // so per-interval counts stay close to rate * interval while the
      // merged stream still interleaves realistically.
      record.event_time_us = static_cast<std::int64_t>(
          (static_cast<double>(j) + rng.uniform()) * spacing_us);
      records.push_back(record);
    }
  }
  std::sort(records.begin(), records.end(),
            [](const engine::Record& a, const engine::Record& b) {
              return a.event_time_us < b.event_time_us;
            });
  return records;
}

std::vector<engine::Record> SyntheticStream::generate_count(
    std::size_t count) const {
  const double duration_s = static_cast<double>(count) / total_rate_;
  return generate(duration_s);
}

std::vector<SubStreamSpec> gaussian_substreams(double total_rate) {
  const double rate = total_rate / 3.0;
  return {
      {0, Gaussian{10.0, 5.0}, rate},
      {1, Gaussian{1000.0, 50.0}, rate},
      {2, Gaussian{10000.0, 500.0}, rate},
  };
}

std::vector<SubStreamSpec> gaussian_substreams_rates(double rate_a,
                                                     double rate_b,
                                                     double rate_c) {
  return {
      {0, Gaussian{10.0, 5.0}, rate_a},
      {1, Gaussian{1000.0, 50.0}, rate_b},
      {2, Gaussian{10000.0, 500.0}, rate_c},
  };
}

std::vector<SubStreamSpec> poisson_substreams(double total_rate) {
  const double rate = total_rate / 3.0;
  return {
      {0, Poisson{10.0}, rate},
      {1, Poisson{1000.0}, rate},
      {2, Poisson{1e8}, rate},
  };
}

std::vector<SubStreamSpec> skewed_gaussian_substreams(double total_rate) {
  return {
      {0, Gaussian{100.0, 10.0}, 0.80 * total_rate},
      {1, Gaussian{1000.0, 100.0}, 0.19 * total_rate},
      {2, Gaussian{10000.0, 1000.0}, 0.01 * total_rate},
  };
}

std::vector<SubStreamSpec> skewed_poisson_substreams(double total_rate) {
  return {
      {0, Poisson{10.0}, 0.80 * total_rate},
      {1, Poisson{1000.0}, 0.1999 * total_rate},
      {2, Poisson{1e8}, 0.0001 * total_rate},
  };
}

}  // namespace streamapprox::workload
