// CAIDA-like NetFlow workload for the network-traffic case study (§6.2).
//
// SUBSTITUTION (see DESIGN.md): the paper replays 670 GB of CAIDA Chicago
// backbone traces converted to NetFlow. Those traces are not redistributable,
// so we synthesise flow records whose protocol mix matches the paper's
// reported dataset exactly (115,472,322 TCP / 67,098,852 UDP / 2,801,002
// ICMP flows => 62.3 % / 36.2 % / 1.5 %) and whose per-flow byte counts are
// heavy-tailed log-normals with per-protocol parameters in line with
// published backbone-traffic characterisations. The evaluated query — total
// traffic size per protocol per sliding window — is the paper's query and
// exercises the identical code path (stratify by protocol, weighted SUM).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workload/synthetic.h"

namespace streamapprox::workload {

/// IP protocol of a flow record; doubles as the stratum id.
enum class Protocol : sampling::StratumId { kTcp = 0, kUdp = 1, kIcmp = 2 };

/// Human-readable protocol name ("TCP"/"UDP"/"ICMP").
std::string protocol_name(Protocol protocol);

/// Generator configuration.
struct NetFlowConfig {
  /// Flow-count shares, defaulting to the paper's dataset ratios.
  double tcp_share = 0.6229;
  double udp_share = 0.3620;
  double icmp_share = 0.0151;
  /// Flow size (bytes) distributions: heavy-tailed log-normals. Defaults:
  /// TCP median ~8 KB with long tail, UDP median ~300 B, ICMP ~90 B.
  LogNormal tcp_bytes{9.0, 1.8};
  LogNormal udp_bytes{5.7, 1.2};
  LogNormal icmp_bytes{4.5, 0.5};
  /// Aggregate flow arrival rate (flows/second of event time).
  double flows_per_sec = 100000.0;
};

/// Builds the sub-stream specs for a NetFlow stream (one stratum per
/// protocol with rate = share * flows_per_sec).
std::vector<SubStreamSpec> netflow_substreams(const NetFlowConfig& config);

/// Generates `count` flow records sorted by event time; Record.stratum is
/// the Protocol, Record.value the flow's byte count.
std::vector<engine::Record> generate_netflow(const NetFlowConfig& config,
                                             std::size_t count,
                                             std::uint64_t seed);

}  // namespace streamapprox::workload
