// In-process stream aggregator modelled on Apache Kafka (paper Fig. 1:
// "stream aggregator (e.g. Kafka) combines the incoming data items from
// disjoint sub-streams").
//
// Faithful subset: named topics divided into partitions; each partition is
// an append-only log addressed by offset; producers append (optionally
// keyed, so one sub-stream maps deterministically onto one partition);
// consumers poll from their tracked offsets and never remove data, so
// several consumers/groups can read the same stream independently. Out of
// scope (documented in DESIGN.md): replication, persistence, consumer-group
// rebalancing protocol.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/record.h"
#include "engine/record_batch.h"

namespace streamapprox::ingest {

/// Position within a partition's log.
using Offset = std::uint64_t;

/// One append-only partition log. Thread-safe.
class PartitionLog {
 public:
  /// Appends a record, returning its offset.
  Offset append(const engine::Record& record);

  /// Copies up to `max_records` records starting at `from` into `out`;
  /// returns the next offset to read. Does not block.
  Offset read(Offset from, std::size_t max_records,
              std::vector<engine::Record>& out) const;

  /// Batch-out overload: appends into a caller-owned batch under one lock
  /// acquisition — the data plane's allocation-free fill path. Metadata
  /// (source_partition, watermark) is the caller's to stamp.
  Offset read(Offset from, std::size_t max_records,
              engine::RecordBatch& out) const {
    return read(from, max_records, out.records);
  }

  /// Blocks until data is available at `from`, the timeout elapses, or the
  /// log is sealed. Returns next offset (== from when nothing arrived).
  Offset read_blocking(Offset from, std::size_t max_records,
                       std::vector<engine::Record>& out,
                       std::int64_t timeout_ms) const;

  /// Batch-out overload of read_blocking.
  Offset read_blocking(Offset from, std::size_t max_records,
                       engine::RecordBatch& out,
                       std::int64_t timeout_ms) const {
    return read_blocking(from, max_records, out.records, timeout_ms);
  }

  /// End offset (== number of records appended).
  Offset end_offset() const;

  /// Seals the log: no further appends; blocked readers wake up.
  void seal();

  /// True once sealed.
  bool sealed() const;

 private:
  mutable std::mutex mutex_;
  mutable std::condition_variable data_;
  std::vector<engine::Record> log_;
  bool sealed_ = false;
};

/// A named stream of records split into partitions.
class Topic {
 public:
  /// Creates a topic with `partitions` >= 1 partition logs.
  explicit Topic(std::size_t partitions);

  /// Number of partitions.
  std::size_t partition_count() const noexcept { return logs_.size(); }

  /// Access to one partition.
  PartitionLog& partition(std::size_t index) { return *logs_.at(index); }
  const PartitionLog& partition(std::size_t index) const {
    return *logs_.at(index);
  }

  /// Routes a key to a partition (hash partitioning, Kafka's default for
  /// keyed messages — keeps each sub-stream in one partition, preserving
  /// per-source ordering).
  std::size_t partition_for_key(std::uint64_t key) const noexcept {
    return static_cast<std::size_t>(key % logs_.size());
  }

  /// Total records across partitions.
  std::uint64_t total_records() const;

  /// Seals every partition.
  void seal();

 private:
  std::vector<std::unique_ptr<PartitionLog>> logs_;
};

/// The broker: a registry of topics.
class Broker {
 public:
  /// Creates (or returns the existing) topic with `partitions` partitions.
  /// Throws std::invalid_argument if the topic exists with a different
  /// partition count.
  Topic& create_topic(const std::string& name, std::size_t partitions);

  /// Looks up a topic; throws std::out_of_range if absent.
  Topic& topic(const std::string& name);

  /// True when the topic exists.
  bool has_topic(const std::string& name) const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::unique_ptr<Topic>> topics_;
};

/// Appends records to a topic, routing by the record's stratum so that each
/// sub-stream lands in a single partition (paper Fig. 1 sub-streams).
class Producer {
 public:
  /// Binds the producer to a topic.
  Producer(Broker& broker, const std::string& topic);

  /// Sends one record (keyed by stratum).
  void send(const engine::Record& record);

  /// Sends a batch.
  void send_batch(const std::vector<engine::Record>& records);

  /// Marks the stream complete (seals the topic).
  void finish();

  /// Records sent so far.
  std::uint64_t sent() const noexcept { return sent_; }

 private:
  Topic& topic_;
  std::uint64_t sent_ = 0;
};

/// Reads an assigned subset of a topic's partitions from tracked offsets
/// (all partitions unless an explicit assignment is given — Kafka's
/// assign() model, which is how consumer-group sharding reaches the ingest
/// layer without re-scanning).
class Consumer {
 public:
  /// Binds the consumer to every partition of a topic, offset 0 everywhere.
  Consumer(Broker& broker, const std::string& topic);

  /// Binds the consumer to an explicit partition assignment. Throws
  /// std::out_of_range for partition indices beyond the topic, and
  /// std::invalid_argument for duplicate indices. An empty assignment is
  /// permitted (a group member left without partitions) and is immediately
  /// exhausted.
  Consumer(Broker& broker, const std::string& topic,
           std::vector<std::size_t> assignment);

  /// Polls up to `max_records` records across the assigned partitions,
  /// blocking up to `timeout_ms` for the first record. Returns the records
  /// fetched (empty when the assignment is exhausted and sealed, or the
  /// timeout expired). Allocates a fresh vector per call; the live paths use
  /// the reuse-buffer overload below.
  std::vector<engine::Record> poll(std::size_t max_records,
                                   std::int64_t timeout_ms = 100);

  /// Reuse-buffer overload: clears `out` (keeping its capacity) and fills it
  /// in place, so steady-state polling is allocation-free. Returns the
  /// number of records fetched.
  std::size_t poll(std::vector<engine::Record>& out, std::size_t max_records,
                   std::int64_t timeout_ms = 100);

  /// Batch-out overload: fills a caller-owned batch and stamps its
  /// source_partition (the partition index when the assignment has exactly
  /// one partition, RecordBatch::kMixedSources otherwise). The watermark is
  /// left for the transport layer to stamp. Returns the records fetched.
  std::size_t poll(engine::RecordBatch& out, std::size_t max_records,
                   std::int64_t timeout_ms = 100);

  /// True when every assigned partition is sealed and fully consumed.
  bool exhausted() const;

  /// The assigned partition indices, in assignment order.
  const std::vector<std::size_t>& assignment() const noexcept {
    return assignment_;
  }

  /// True when assignment slot `slot` (an index into assignment()) is
  /// sealed and fully consumed — per-partition progress for watermarking.
  bool partition_exhausted(std::size_t slot) const;

  /// Total records consumed.
  std::uint64_t consumed() const noexcept { return consumed_; }

 private:
  Topic& topic_;
  std::vector<std::size_t> assignment_;  ///< partition index per slot
  std::vector<Offset> offsets_;          ///< next offset per slot
  std::uint64_t consumed_ = 0;
  std::size_t next_slot_ = 0;
};

/// A consumer group: splits a topic's partitions across `members` consumers
/// round-robin (partition p -> member p % members), the static equivalent of
/// Kafka's group rebalancing. Each member is an independent Consumer over a
/// disjoint partition subset, so N threads can consume one topic with no
/// shared offset state.
class ConsumerGroup {
 public:
  /// Creates `members` >= 1 consumers over the topic's partitions.
  ConsumerGroup(Broker& broker, const std::string& topic, std::size_t members);

  /// Number of members.
  std::size_t size() const noexcept { return members_.size(); }

  /// Access to one member's consumer.
  Consumer& member(std::size_t index) { return members_.at(index); }

  /// The round-robin partition split: result[m] lists the partitions of
  /// member m. Exposed for callers that need the assignment shape without
  /// constructing consumers.
  static std::vector<std::vector<std::size_t>> assign(std::size_t partitions,
                                                      std::size_t members);

 private:
  std::vector<Consumer> members_;
};

}  // namespace streamapprox::ingest
