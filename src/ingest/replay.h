// The traffic replay tool of the paper's case-study methodology (§6.1:
// "We built a tool to efficiently replay the case-study dataset as the input
// data stream ... tuned the replay tool to first feed 2000 messages/second
// and continued to increase the throughput until the system was saturated").
//
// Replays a pre-generated record vector into a broker topic at a target
// message rate (each message carries `items_per_message` records, as in the
// paper's 200-item messages), or as fast as possible in saturation mode.
#pragma once

#include <cstdint>
#include <thread>
#include <vector>

#include "ingest/broker.h"

namespace streamapprox::ingest {

/// Replay configuration.
struct ReplayConfig {
  /// Target messages per second; 0 = saturation (no pacing).
  double messages_per_sec = 0.0;
  /// Records bundled into one message (paper: 200).
  std::size_t items_per_message = 200;
};

/// Asynchronously replays `records` into `topic`; finish() seals the topic.
class ReplayTool {
 public:
  /// Starts the replay thread immediately.
  ReplayTool(Broker& broker, const std::string& topic,
             std::vector<engine::Record> records, ReplayConfig config);

  /// Joins the replay thread (idempotent).
  ~ReplayTool();

  /// Blocks until every record has been produced and the topic sealed.
  void wait();

  /// Messages produced so far.
  std::uint64_t messages_sent() const noexcept { return messages_sent_; }

 private:
  void run();

  Broker& broker_;
  std::string topic_;
  std::vector<engine::Record> records_;
  ReplayConfig config_;
  std::uint64_t messages_sent_ = 0;
  std::thread thread_;
};

}  // namespace streamapprox::ingest
