#include "ingest/broker.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

namespace streamapprox::ingest {

// ---------------------------------------------------------------- Partition

Offset PartitionLog::append(const engine::Record& record) {
  Offset offset = 0;
  {
    std::lock_guard lock(mutex_);
    if (sealed_) throw std::logic_error("PartitionLog: append after seal");
    log_.push_back(record);
    offset = log_.size() - 1;
  }
  data_.notify_all();
  return offset;
}

Offset PartitionLog::read(Offset from, std::size_t max_records,
                          std::vector<engine::Record>& out) const {
  std::lock_guard lock(mutex_);
  const Offset end = std::min<Offset>(log_.size(), from + max_records);
  for (Offset i = from; i < end; ++i) out.push_back(log_[i]);
  return end > from ? end : from;
}

Offset PartitionLog::read_blocking(Offset from, std::size_t max_records,
                                   std::vector<engine::Record>& out,
                                   std::int64_t timeout_ms) const {
  std::unique_lock lock(mutex_);
  data_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                 [&] { return sealed_ || log_.size() > from; });
  const Offset end = std::min<Offset>(log_.size(), from + max_records);
  for (Offset i = from; i < end; ++i) out.push_back(log_[i]);
  return end > from ? end : from;
}

Offset PartitionLog::end_offset() const {
  std::lock_guard lock(mutex_);
  return log_.size();
}

void PartitionLog::seal() {
  {
    std::lock_guard lock(mutex_);
    sealed_ = true;
  }
  data_.notify_all();
}

bool PartitionLog::sealed() const {
  std::lock_guard lock(mutex_);
  return sealed_;
}

// -------------------------------------------------------------------- Topic

Topic::Topic(std::size_t partitions) {
  if (partitions == 0) partitions = 1;
  logs_.reserve(partitions);
  for (std::size_t i = 0; i < partitions; ++i) {
    logs_.push_back(std::make_unique<PartitionLog>());
  }
}

std::uint64_t Topic::total_records() const {
  std::uint64_t total = 0;
  for (const auto& log : logs_) total += log->end_offset();
  return total;
}

void Topic::seal() {
  for (auto& log : logs_) log->seal();
}

// ------------------------------------------------------------------- Broker

Topic& Broker::create_topic(const std::string& name, std::size_t partitions) {
  std::lock_guard lock(mutex_);
  auto it = topics_.find(name);
  if (it != topics_.end()) {
    if (it->second->partition_count() != std::max<std::size_t>(1, partitions)) {
      throw std::invalid_argument(
          "Broker: topic exists with different partition count: " + name);
    }
    return *it->second;
  }
  auto [inserted, ok] =
      topics_.emplace(name, std::make_unique<Topic>(partitions));
  return *inserted->second;
}

Topic& Broker::topic(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto it = topics_.find(name);
  if (it == topics_.end()) {
    throw std::out_of_range("Broker: unknown topic " + name);
  }
  return *it->second;
}

bool Broker::has_topic(const std::string& name) const {
  std::lock_guard lock(mutex_);
  return topics_.contains(name);
}

// ----------------------------------------------------------------- Producer

Producer::Producer(Broker& broker, const std::string& topic)
    : topic_(broker.topic(topic)) {}

void Producer::send(const engine::Record& record) {
  topic_.partition(topic_.partition_for_key(record.stratum)).append(record);
  ++sent_;
}

void Producer::send_batch(const std::vector<engine::Record>& records) {
  for (const auto& record : records) send(record);
}

void Producer::finish() { topic_.seal(); }

// ----------------------------------------------------------------- Consumer

namespace {

std::vector<std::size_t> all_partitions_of(const Topic& topic) {
  std::vector<std::size_t> all(topic.partition_count());
  for (std::size_t p = 0; p < all.size(); ++p) all[p] = p;
  return all;
}

}  // namespace

Consumer::Consumer(Broker& broker, const std::string& topic)
    : Consumer(broker, topic, all_partitions_of(broker.topic(topic))) {}

Consumer::Consumer(Broker& broker, const std::string& topic,
                   std::vector<std::size_t> assignment)
    : topic_(broker.topic(topic)), assignment_(std::move(assignment)) {
  for (const std::size_t p : assignment_) {
    if (p >= topic_.partition_count()) {
      throw std::out_of_range("Consumer: partition index out of range");
    }
  }
  std::vector<std::size_t> sorted = assignment_;
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
    throw std::invalid_argument("Consumer: duplicate partition in assignment");
  }
  offsets_.assign(assignment_.size(), 0);
}

std::vector<engine::Record> Consumer::poll(std::size_t max_records,
                                           std::int64_t timeout_ms) {
  std::vector<engine::Record> out;
  out.reserve(std::min<std::size_t>(max_records, 4096));
  poll(out, max_records, timeout_ms);
  return out;
}

std::size_t Consumer::poll(std::vector<engine::Record>& out,
                           std::size_t max_records, std::int64_t timeout_ms) {
  out.clear();
  const std::size_t slots = assignment_.size();
  if (slots == 0) return 0;

  // First try non-blocking round-robin over the assigned partitions.
  for (std::size_t i = 0; i < slots && out.size() < max_records; ++i) {
    const std::size_t s = (next_slot_ + i) % slots;
    offsets_[s] = topic_.partition(assignment_[s])
                      .read(offsets_[s], max_records - out.size(), out);
  }
  // Nothing anywhere: block on the next partition in line for fairness.
  if (out.empty() && timeout_ms > 0) {
    const std::size_t s = next_slot_;
    offsets_[s] = topic_.partition(assignment_[s])
                      .read_blocking(offsets_[s], max_records, out, timeout_ms);
  }
  next_slot_ = (next_slot_ + 1) % slots;
  consumed_ += out.size();
  return out.size();
}

std::size_t Consumer::poll(engine::RecordBatch& out, std::size_t max_records,
                           std::int64_t timeout_ms) {
  out.reset();
  out.source_partition = assignment_.size() == 1
                             ? assignment_.front()
                             : engine::RecordBatch::kMixedSources;
  return poll(out.records, max_records, timeout_ms);
}

bool Consumer::partition_exhausted(std::size_t slot) const {
  const auto& log = topic_.partition(assignment_.at(slot));
  return log.sealed() && offsets_.at(slot) >= log.end_offset();
}

bool Consumer::exhausted() const {
  for (std::size_t s = 0; s < assignment_.size(); ++s) {
    if (!partition_exhausted(s)) return false;
  }
  return true;
}

// ------------------------------------------------------------ ConsumerGroup

std::vector<std::vector<std::size_t>> ConsumerGroup::assign(
    std::size_t partitions, std::size_t members) {
  if (members == 0) members = 1;
  std::vector<std::vector<std::size_t>> out(members);
  for (std::size_t p = 0; p < partitions; ++p) {
    out[p % members].push_back(p);
  }
  return out;
}

ConsumerGroup::ConsumerGroup(Broker& broker, const std::string& topic,
                             std::size_t members) {
  const auto assignments =
      assign(broker.topic(topic).partition_count(), members);
  members_.reserve(assignments.size());
  for (const auto& assignment : assignments) {
    members_.emplace_back(broker, topic, assignment);
  }
}

}  // namespace streamapprox::ingest
