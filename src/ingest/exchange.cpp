#include "ingest/exchange.h"

#include <algorithm>
#include <unordered_set>

#include "common/backoff.h"
#include "common/clock.h"
#include "core/watermark.h"
#include "ingest/stratum_table.h"

namespace streamapprox::ingest {

Exchange::Exchange(Broker& broker, const std::string& topic,
                   ExchangeConfig config)
    : config_(config), pool_(std::max<std::size_t>(1, config.batch_size)) {
  if (config_.workers == 0) config_.workers = 1;
  if (config_.batch_size == 0) config_.batch_size = 1;
  if (config_.exchange_count == 0) config_.exchange_count = 1;
  config_.exchange_index %= config_.exchange_count;
  const std::size_t partitions = broker.topic(topic).partition_count();
  // Shard ownership: partition p belongs to exchange p % E. A shard past the
  // partition count owns nothing and resolves straight to flush — it never
  // gates the min-combined watermark.
  for (std::size_t p = config_.exchange_index; p < partitions;
       p += config_.exchange_count) {
    inputs_.emplace_back(broker, topic, std::vector<std::size_t>{p});
  }
  rings_.reserve(config_.workers);
  for (std::size_t w = 0; w < config_.workers; ++w) {
    rings_.push_back(std::make_unique<SpscRing<BatchPtr>>(
        std::max<std::size_t>(2, config_.ring_capacity)));
  }
  next_seq_.assign(config_.workers, 0);
}

void Exchange::push_channel(std::size_t w, BatchPtr batch) {
  // Ring full means the downstream worker is behind: backpressure by
  // parking on the ring's condvar until the consumer frees a slot — no
  // sleep-loop spinning while blocked. The ring is closed only by this
  // thread after run() ends, so a false return is unreachable here.
  rings_[w]->push(std::move(batch));
}

void Exchange::run() {
  const std::size_t partitions = inputs_.size();
  const std::size_t workers = config_.workers;
  const bool bulk = config_.bulk_routing;

  // Per-partition high-water clocks (exchange-thread local: the exchange is
  // the only gate keeper; receivers see only resolved watermarks).
  std::vector<std::int64_t> clocks(partitions, core::kNoClock);
  std::vector<std::int64_t> round_clock(partitions);
  std::vector<BatchPtr> out(workers);
  // Stratum-occupancy bookkeeping for the budget split: this thread sees
  // every record in deterministic order, so the counts stamped onto batches
  // are reproducible regardless of downstream thread timing. The bulk path
  // keeps occupancy in the flat StratumTable (one probe chain per run
  // boundary); the legacy path keeps the original per-record unordered_set.
  std::unordered_set<sampling::StratumId> strata_seen;
  StratumTable strata_table;
  std::vector<std::uint32_t> channel_strata(workers, 0);
  // The last watermark each channel was told, so heartbeats only go to
  // channels that would otherwise fall behind.
  std::vector<std::int64_t> last_sent(workers, engine::kNoWatermark);
  // One pooled batch reused as the input fill target: each poll is a single
  // lock acquisition into recycled storage.
  BatchPtr scratch = pool_.acquire();
  // Grace window for partitions that have never delivered: restarted on
  // every round that routes data, so a partition that goes quiet mid-stream
  // earns a fresh idle_partition_timeout_ms from its LAST data round, not
  // from exchange start-up (a once-started stopwatch would mark every
  // momentary lull grace-expired after the first timeout).
  Stopwatch grace;
  IdleBackoff backoff;

  // Bulk-kernel scratch, reused across rounds so the steady state allocates
  // nothing. A RouteRun is pass 1's product: a same-stratum run of the
  // polled batch plus the channel it routes to.
  struct RouteRun {
    std::uint32_t offset;
    std::uint32_t length;
    sampling::StratumId stratum;
    std::uint32_t channel;
  };
  std::vector<RouteRun> route_runs;
  std::vector<std::uint32_t> scatter_counts(workers, 0);

  // Two-pass routing kernel, called once per non-empty polled batch.
  //
  // Pass 1 (route / histogram) walks the batch run-at-a-time — strata
  // arrive in runs, and when they do not the inner while simply stops after
  // one record — computing the Fibonacci route once per run, probing the
  // stratum table once per run boundary, and accumulating the per-channel
  // record histogram. The partition clock is a separate tight max-reduction
  // over event times (no hash, no branch on route).
  //
  // Pass 2 (reserve / scatter) sizes each destination batch once from the
  // histogram, then copies records run-by-run with append_run — which also
  // maintains the StratumRun descriptors, merging with the destination's
  // trailing run exactly like the record-at-a-time compare. When the WHOLE
  // polled batch routes to one still-empty destination (the steady state on
  // sorted / strongly run-structured streams), the scatter collapses to a
  // vector swap: the records move wholesale, zero per-record work.
  //
  // Output-identical to the legacy loop: channels are filled in the same
  // per-round partition order, records keep their input order (pass 2
  // iterates runs in offset order per channel), and occupancy increments
  // happen at each stratum's first occurrence in record order, so the
  // stamps every receiver uses for the budget split are byte-identical.
  const auto route_bulk = [&](engine::RecordBatch& src,
                              std::int64_t& partition_clock) {
    const engine::Record* recs = src.records.data();
    const std::size_t n = src.records.size();
    route_runs.clear();
    std::fill(scatter_counts.begin(), scatter_counts.end(), 0);
    std::size_t i = 0;
    while (i < n) {
      const sampling::StratumId stratum = recs[i].stratum;
      std::size_t end = i + 1;
      while (end < n && recs[end].stratum == stratum) ++end;
      const auto w = static_cast<std::uint32_t>(route(stratum, workers));
      if (strata_table.insert(stratum)) ++channel_strata[w];
      route_runs.push_back({static_cast<std::uint32_t>(i),
                            static_cast<std::uint32_t>(end - i), stratum, w});
      scatter_counts[w] += static_cast<std::uint32_t>(end - i);
      i = end;
    }
    stats_.runs += route_runs.size();
    std::int64_t clock = partition_clock;
    for (std::size_t j = 0; j < n; ++j) {
      clock = std::max(clock, recs[j].event_time_us);
    }
    partition_clock = clock;
    // Morsel pass-through: every run routed to one channel whose batch is
    // still empty this round -> move the vector, emit the descriptors
    // as-is (offsets are unchanged; consecutive runs differ by
    // construction, so no trailing merge can apply on an empty batch).
    if (!route_runs.empty() &&
        scatter_counts[route_runs.front().channel] == n) {
      const std::uint32_t w = route_runs.front().channel;
      if (!out[w]) out[w] = pool_.acquire();
      if (out[w]->records.empty()) {
        out[w]->records.swap(src.records);
        for (const RouteRun& rr : route_runs) {
          out[w]->stratum_runs.push_back({rr.offset, rr.length, rr.stratum});
        }
        return;
      }
    }
    for (std::size_t w = 0; w < workers; ++w) {
      if (scatter_counts[w] == 0) continue;
      if (!out[w]) out[w] = pool_.acquire();
      out[w]->records.reserve(out[w]->records.size() + scatter_counts[w]);
      ++stats_.scatter_reserves;
    }
    // One ordered pass over the run array: each channel's batch end IS its
    // write cursor (runs arrive in offset order and every channel was sized
    // above), so the scatter is O(runs) dispatch + O(routed) copying.
    for (const RouteRun& rr : route_runs) {
      out[rr.channel]->append_run(recs + rr.offset, rr.length, rr.stratum);
    }
  };

  // The original record-at-a-time loop, kept verbatim behind
  // bulk_routing=false: the equivalence oracle for the tests and the
  // baseline of bench/micro_exchange.
  const auto route_per_record = [&](const engine::RecordBatch& src,
                                    std::int64_t& partition_clock) {
    for (const auto& record : src.records) {
      const std::size_t w = route(record.stratum, workers);
      if (strata_seen.insert(record.stratum).second) ++channel_strata[w];
      if (!out[w]) out[w] = pool_.acquire();
      out[w]->records.push_back(record);
      // Stratum run descriptors for the bulk sampling kernel: the routing
      // decision already read record.stratum, so extending (or opening) the
      // batch's trailing run costs one compare here and saves a key_ call
      // plus map probe per record downstream.
      auto& runs = out[w]->stratum_runs;
      if (runs.empty() || runs.back().stratum != record.stratum) {
        runs.push_back(
            {static_cast<std::uint32_t>(out[w]->records.size() - 1), 1,
             record.stratum});
      } else {
        ++runs.back().length;
      }
      partition_clock = std::max(partition_clock, record.event_time_us);
      if (record.event_time_us >
          max_routed_event_us_.load(std::memory_order_relaxed)) {
        max_routed_event_us_.store(record.event_time_us,
                                   std::memory_order_relaxed);
      }
    }
  };

  for (;;) {
    bool any_data = false;
    std::fill(round_clock.begin(), round_clock.end(), core::kNoClock);
    for (std::size_t p = 0; p < partitions; ++p) {
      if (inputs_[p].exhausted()) continue;
      inputs_[p].poll(*scratch, config_.batch_size, /*timeout_ms=*/0);
      if (scratch->empty()) continue;
      any_data = true;
      stats_.records += scratch->records.size();
      if (bulk) {
        route_bulk(*scratch, round_clock[p]);
      } else {
        route_per_record(*scratch, round_clock[p]);
      }
    }

    if (any_data) {
      ++stats_.rounds;
      grace.restart();
      backoff.reset();
      if (bulk) {
        // One relaxed store per data round (the legacy loop pays up to two
        // atomic ops per record): fold the round's clock maxes, publish if
        // they advanced the high-water mark. Monotonicity is preserved —
        // this thread is the only writer.
        std::int64_t round_max = engine::kNoWatermark;
        for (std::size_t p = 0; p < partitions; ++p) {
          round_max = std::max(round_max, round_clock[p]);
        }
        if (round_max >
            max_routed_event_us_.load(std::memory_order_relaxed)) {
          max_routed_event_us_.store(round_max, std::memory_order_relaxed);
        }
      }
    }

    bool all_drained = true;
    for (std::size_t p = 0; p < partitions; ++p) {
      if (round_clock[p] != core::kNoClock) {
        clocks[p] = std::max(clocks[p], round_clock[p]);
      }
      if (inputs_[p].exhausted()) {
        clocks[p] = core::kPartitionDrained;
      } else {
        all_drained = false;
      }
    }

    // Resolve the policy-complete watermark. The clocks only cover records
    // already routed into this round's output batches, and those batches are
    // handed to their FIFO channels below before any receiver can observe
    // the value — so absorbing a batch stamped W implies every record below
    // W bound for that channel has been absorbed or is in the same batch.
    const bool grace_over =
        grace.millis() >
        static_cast<double>(config_.idle_partition_timeout_ms);
    const auto view = core::evaluate_watermark(clocks, grace_over);
    // resolve_watermark's sentinels are numerically the engine's watermark
    // sentinels, so the policy-complete value is forwarded unchanged.
    const std::int64_t resolved = core::resolve_watermark(view);

    const auto total_strata = static_cast<std::uint32_t>(
        bulk ? strata_table.size() : strata_seen.size());
    for (std::size_t w = 0; w < workers; ++w) {
      if (out[w] && !out[w]->empty()) {
        out[w]->watermark_us = resolved;
        out[w]->route_strata = channel_strata[w];
        out[w]->total_strata = total_strata;
        stamp_identity(w, *out[w]);
        records_routed_.fetch_add(out[w]->size(), std::memory_order_relaxed);
        batches_emitted_.fetch_add(1, std::memory_order_relaxed);
        push_channel(w, std::move(out[w]));
        last_sent[w] = resolved;
      } else if (last_sent[w] != resolved) {
        // Watermark-only heartbeat: a channel with no data in flight must
        // still learn the watermark or its worker would gate the merger
        // forever (and the end-of-stream flush would never reach it).
        // Heartbeats recycle through their own zero-reserve pool — a stalled
        // topology ticks watermarks without pinning record capacity.
        auto heartbeat = heartbeat_pool_.acquire();
        heartbeat->watermark_us = resolved;
        heartbeat->route_strata = channel_strata[w];
        heartbeat->total_strata = total_strata;
        heartbeat->heartbeat = true;
        stamp_identity(w, *heartbeat);
        heartbeats_emitted_.fetch_add(1, std::memory_order_relaxed);
        push_channel(w, std::move(heartbeat));
        last_sent[w] = resolved;
      }
    }

    if (all_drained) break;
    if (!any_data) {
      // Nothing anywhere this round: escalate spin -> yield -> capped sleep
      // instead of always paying a fixed doze, so a briefly-starved exchange
      // resumes in microseconds while a deeply idle one still parks.
      backoff.pause();
    }
  }

  stats_.table_probes = strata_table.probes();
  pool_.release(std::move(scratch));
  for (auto& ring : rings_) ring->close();
}

}  // namespace streamapprox::ingest
