#include "ingest/exchange.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <unordered_set>

#include "common/clock.h"
#include "core/watermark.h"

namespace streamapprox::ingest {

Exchange::Exchange(Broker& broker, const std::string& topic,
                   ExchangeConfig config)
    : config_(config), pool_(std::max<std::size_t>(1, config.batch_size)) {
  if (config_.workers == 0) config_.workers = 1;
  if (config_.batch_size == 0) config_.batch_size = 1;
  if (config_.exchange_count == 0) config_.exchange_count = 1;
  config_.exchange_index %= config_.exchange_count;
  const std::size_t partitions = broker.topic(topic).partition_count();
  // Shard ownership: partition p belongs to exchange p % E. A shard past the
  // partition count owns nothing and resolves straight to flush — it never
  // gates the min-combined watermark.
  for (std::size_t p = config_.exchange_index; p < partitions;
       p += config_.exchange_count) {
    inputs_.emplace_back(broker, topic, std::vector<std::size_t>{p});
  }
  rings_.reserve(config_.workers);
  for (std::size_t w = 0; w < config_.workers; ++w) {
    rings_.push_back(std::make_unique<SpscRing<BatchPtr>>(
        std::max<std::size_t>(2, config_.ring_capacity)));
  }
  next_seq_.assign(config_.workers, 0);
}

void Exchange::push_channel(std::size_t w, BatchPtr batch) {
  // Ring full means the downstream worker is behind: backpressure by
  // parking on the ring's condvar until the consumer frees a slot — no
  // sleep-loop spinning while blocked. The ring is closed only by this
  // thread after run() ends, so a false return is unreachable here.
  rings_[w]->push(std::move(batch));
}

void Exchange::run() {
  const std::size_t partitions = inputs_.size();
  const std::size_t workers = config_.workers;

  // Per-partition high-water clocks (exchange-thread local: the exchange is
  // the only gate keeper; receivers see only resolved watermarks).
  std::vector<std::int64_t> clocks(partitions, core::kNoClock);
  std::vector<std::int64_t> round_clock(partitions);
  std::vector<BatchPtr> out(workers);
  // Stratum-occupancy bookkeeping for the budget split: this thread sees
  // every record in deterministic order, so the counts stamped onto batches
  // are reproducible regardless of downstream thread timing.
  std::unordered_set<sampling::StratumId> strata_seen;
  std::vector<std::uint32_t> channel_strata(workers, 0);
  // The last watermark each channel was told, so heartbeats only go to
  // channels that would otherwise fall behind.
  std::vector<std::int64_t> last_sent(workers, engine::kNoWatermark);
  // One pooled batch reused as the input fill target: each poll is a single
  // lock acquisition into recycled storage.
  BatchPtr scratch = pool_.acquire();
  Stopwatch grace;

  for (;;) {
    bool any_data = false;
    std::fill(round_clock.begin(), round_clock.end(), core::kNoClock);
    for (std::size_t p = 0; p < partitions; ++p) {
      if (inputs_[p].exhausted()) continue;
      inputs_[p].poll(*scratch, config_.batch_size, /*timeout_ms=*/0);
      if (scratch->empty()) continue;
      any_data = true;
      for (const auto& record : scratch->records) {
        const std::size_t w = route(record.stratum, workers);
        if (strata_seen.insert(record.stratum).second) ++channel_strata[w];
        if (!out[w]) out[w] = pool_.acquire();
        out[w]->records.push_back(record);
        // Stratum run descriptors for the bulk sampling kernel: the routing
        // decision already read record.stratum, so extending (or opening) the
        // batch's trailing run costs one compare here and saves a key_ call
        // plus map probe per record downstream.
        auto& runs = out[w]->stratum_runs;
        if (runs.empty() || runs.back().stratum != record.stratum) {
          runs.push_back(
              {static_cast<std::uint32_t>(out[w]->records.size() - 1), 1,
               record.stratum});
        } else {
          ++runs.back().length;
        }
        round_clock[p] = std::max(round_clock[p], record.event_time_us);
        if (record.event_time_us >
            max_routed_event_us_.load(std::memory_order_relaxed)) {
          max_routed_event_us_.store(record.event_time_us,
                                     std::memory_order_relaxed);
        }
      }
    }

    bool all_drained = true;
    for (std::size_t p = 0; p < partitions; ++p) {
      if (round_clock[p] != core::kNoClock) {
        clocks[p] = std::max(clocks[p], round_clock[p]);
      }
      if (inputs_[p].exhausted()) {
        clocks[p] = core::kPartitionDrained;
      } else {
        all_drained = false;
      }
    }

    // Resolve the policy-complete watermark. The clocks only cover records
    // already routed into this round's output batches, and those batches are
    // handed to their FIFO channels below before any receiver can observe
    // the value — so absorbing a batch stamped W implies every record below
    // W bound for that channel has been absorbed or is in the same batch.
    const bool grace_over =
        grace.millis() >
        static_cast<double>(config_.idle_partition_timeout_ms);
    const auto view = core::evaluate_watermark(clocks, grace_over);
    // resolve_watermark's sentinels are numerically the engine's watermark
    // sentinels, so the policy-complete value is forwarded unchanged.
    const std::int64_t resolved = core::resolve_watermark(view);

    const auto total_strata =
        static_cast<std::uint32_t>(strata_seen.size());
    for (std::size_t w = 0; w < workers; ++w) {
      if (out[w] && !out[w]->empty()) {
        out[w]->watermark_us = resolved;
        out[w]->route_strata = channel_strata[w];
        out[w]->total_strata = total_strata;
        stamp_identity(w, *out[w]);
        records_routed_.fetch_add(out[w]->size(), std::memory_order_relaxed);
        batches_emitted_.fetch_add(1, std::memory_order_relaxed);
        push_channel(w, std::move(out[w]));
        last_sent[w] = resolved;
      } else if (last_sent[w] != resolved) {
        // Watermark-only heartbeat: a channel with no data in flight must
        // still learn the watermark or its worker would gate the merger
        // forever (and the end-of-stream flush would never reach it).
        // Heartbeats recycle through their own zero-reserve pool — a stalled
        // topology ticks watermarks without pinning record capacity.
        auto heartbeat = heartbeat_pool_.acquire();
        heartbeat->watermark_us = resolved;
        heartbeat->route_strata = channel_strata[w];
        heartbeat->total_strata = total_strata;
        heartbeat->heartbeat = true;
        stamp_identity(w, *heartbeat);
        heartbeats_emitted_.fetch_add(1, std::memory_order_relaxed);
        push_channel(w, std::move(heartbeat));
        last_sent[w] = resolved;
      }
    }

    if (all_drained) break;
    if (!any_data) {
      // Nothing anywhere this round: doze briefly instead of spinning over
      // the partition mutexes.
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }

  pool_.release(std::move(scratch));
  for (auto& ring : rings_) ring->close();
}

}  // namespace streamapprox::ingest
