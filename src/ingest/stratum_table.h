// Flat open-addressing set of stratum ids for the exchange's routing hot
// loop. The per-record path paid one std::unordered_set probe per ARRIVING
// record (pointer-chasing buckets, a hash, an allocation per new stratum);
// the bulk routing kernel probes once per RUN BOUNDARY instead, and this
// table makes that probe a couple of cache lines: power-of-two linear
// probing over a contiguous slot array, the same Fibonacci mix the channel
// route uses, no per-insert allocation (growth rehashes in one shot).
//
// Single-threaded by design — the exchange thread is the only routing
// thread, which is exactly what makes the occupancy stamps deterministic.
// The cumulative probe counter feeds ExchangeStats::table_probes, so the
// O(runs) claim of the bulk kernel is observable, not asserted.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sampling/sample.h"

namespace streamapprox::ingest {

/// Open-addressing hash set of StratumIds with linear probing and
/// power-of-two capacity. Grows at 70 % load; never shrinks.
class StratumTable {
 public:
  /// Creates a table with at least `min_slots` slots (rounded up to a power
  /// of two, minimum 8).
  explicit StratumTable(std::size_t min_slots = 64) {
    std::size_t slots = 8;
    while (slots < min_slots) slots <<= 1;
    slots_.assign(slots, kEmpty);
  }

  /// Inserts `stratum`; returns true when it was not already present.
  bool insert(sampling::StratumId stratum) {
    // 70 % load ceiling keeps expected probe chains short (< 2 slots).
    if ((size_ + 1) * 10 > slots_.size() * 7) grow();
    return insert_no_grow(stratum);
  }

  /// True when `stratum` has been inserted. Does not count probes (insert is
  /// the hot path the stats are about).
  bool contains(sampling::StratumId stratum) const noexcept {
    const auto value = static_cast<std::uint64_t>(stratum);
    std::size_t slot = preferred_slot(stratum, slots_.size());
    for (;;) {
      if (slots_[slot] == kEmpty) return false;
      if (slots_[slot] == value) return true;
      slot = (slot + 1) & (slots_.size() - 1);
    }
  }

  /// Distinct strata inserted.
  std::size_t size() const noexcept { return size_; }

  /// Current slot-array capacity (power of two).
  std::size_t slot_count() const noexcept { return slots_.size(); }

  /// Cumulative slot inspections across every insert, growth rehashes
  /// included — the bulk kernel's per-run probe cost, observable.
  std::uint64_t probes() const noexcept { return probes_; }

  /// The slot `stratum` hashes to at `slot_count` capacity (the head of its
  /// probe chain). Exposed so tests can construct colliding ids.
  static std::size_t preferred_slot(sampling::StratumId stratum,
                                    std::size_t slot_count) noexcept {
    std::uint64_t h = static_cast<std::uint64_t>(stratum) + 1;
    h *= 0x9e3779b97f4a7c15ULL;
    h ^= h >> 32;
    return static_cast<std::size_t>(h & (slot_count - 1));
  }

 private:
  /// Empty-slot sentinel: StratumId is 32-bit, so no valid id collides.
  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};

  bool insert_no_grow(sampling::StratumId stratum) {
    const auto value = static_cast<std::uint64_t>(stratum);
    std::size_t slot = preferred_slot(stratum, slots_.size());
    for (;;) {
      ++probes_;
      if (slots_[slot] == kEmpty) {
        slots_[slot] = value;
        ++size_;
        return true;
      }
      if (slots_[slot] == value) return false;
      slot = (slot + 1) & (slots_.size() - 1);
    }
  }

  void grow() {
    std::vector<std::uint64_t> old = std::move(slots_);
    slots_.assign(old.size() * 2, kEmpty);
    size_ = 0;
    for (const std::uint64_t value : old) {
      if (value != kEmpty) {
        insert_no_grow(static_cast<sampling::StratumId>(value));
      }
    }
  }

  std::vector<std::uint64_t> slots_;
  std::size_t size_ = 0;
  std::uint64_t probes_ = 0;
};

}  // namespace streamapprox::ingest
