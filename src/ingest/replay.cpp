#include "ingest/replay.h"

#include "common/clock.h"

namespace streamapprox::ingest {

ReplayTool::ReplayTool(Broker& broker, const std::string& topic,
                       std::vector<engine::Record> records,
                       ReplayConfig config)
    : broker_(broker),
      topic_(topic),
      records_(std::move(records)),
      config_(config) {
  if (config_.items_per_message == 0) config_.items_per_message = 1;
  thread_ = std::thread([this] { run(); });
}

ReplayTool::~ReplayTool() {
  if (thread_.joinable()) thread_.join();
}

void ReplayTool::wait() {
  if (thread_.joinable()) thread_.join();
}

void ReplayTool::run() {
  Producer producer(broker_, topic_);
  TokenBucket bucket(config_.messages_per_sec);
  std::size_t i = 0;
  while (i < records_.size()) {
    bucket.acquire(1.0);
    const std::size_t end =
        std::min(records_.size(), i + config_.items_per_message);
    for (; i < end; ++i) producer.send(records_[i]);
    ++messages_sent_;
  }
  producer.finish();
}

}  // namespace streamapprox::ingest
