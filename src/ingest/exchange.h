// The repartitioning exchange stage of the batched data plane: an operator
// that consumes record batches from a subset of a topic's partitions and
// re-keys them by stratum hash onto M single-producer/single-consumer
// channels, so the number of downstream workers is decoupled from the
// topic's partition count (a 2-partition topic can feed 8 workers). This is
// the exchange operator of morsel-driven engines (Leis et al., SIGMOD'14)
// applied to the paper's Kafka deployment: batches, not records, cross
// thread boundaries. The exchange itself shards: E instances (exchange_index
// / exchange_count in the config) each own the partitions p with p % E ==
// index, run on their own threads, and feed disjoint channel sets whose
// per-shard watermarks min-combine downstream.
//
// Watermark transport. The exchange owns the per-partition high-water clocks
// and the idle-partition grace policy of core/watermark.h, min-combines them
// into one resolved low-watermark per round, and forwards it downstream
// embedded in every batch (plus watermark-only heartbeat batches when it
// changes with no data in flight). Clocks advance only AFTER the records
// they cover have been handed to the channels, and channels are FIFO, so a
// receiver that has absorbed a batch stamped with watermark W has absorbed
// every record below W that will ever reach it — the low-watermark guarantee
// survives repartitioning. Because the resolved value is policy-complete
// (kNoWatermark while a silent partition is within grace, kWatermarkFlush
// when nothing gates), receivers apply no grace logic of their own.
//
// Stratum affinity. route() is deterministic in the stratum, so every record
// of one sub-stream reaches the same channel — per-stratum reservoirs stay
// local to one worker and OasrsSampler::merge() remains pure concatenation,
// preserving the paper's no-synchronisation sampling claim (§3.2).
//
// Occupancy stamps. The exchange thread also counts, in deterministic
// record order, how many distinct strata have routed to each channel
// (RecordBatch::route_strata) out of the total seen (::total_strata), and
// stamps both onto every batch and heartbeat. Receivers use the stamp to
// split the per-slide sample budget proportionally to the strata they
// actually own — without it, a flat budget/workers split undershoots the
// effective sampling fraction whenever strata spread unevenly over workers.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/queue.h"
#include "engine/record_batch.h"
#include "ingest/broker.h"

namespace streamapprox::ingest {

/// Exchange tuning knobs.
struct ExchangeConfig {
  /// Number of output channels (downstream workers). >= 1.
  std::size_t workers = 1;
  /// Records per emitted batch (the morsel size) and per input poll.
  std::size_t batch_size = 1024;
  /// Batches buffered per output channel before the exchange backpressures.
  std::size_t ring_capacity = 64;
  /// Grace period for partitions that never delivered (core/watermark.h).
  std::int64_t idle_partition_timeout_ms = 1000;
  /// Sharded-exchange identity: this instance owns the topic partitions p
  /// with p % exchange_count == exchange_index and runs on its own thread.
  /// Each shard resolves the watermark over ITS partitions only; downstream
  /// min-combines the per-shard values (core::resolve_watermark explains why
  /// that composes). Defaults describe the classic single-exchange layout.
  std::size_t exchange_index = 0;
  std::size_t exchange_count = 1;
  /// Route with the two-pass bulk kernel (O(runs) bookkeeping + one reserve
  /// per destination per round) instead of the record-at-a-time loop. The
  /// two paths are output-identical — this flag exists as an escape hatch
  /// and as the ablation axis of bench/micro_exchange.
  bool bulk_routing = true;
};

/// Routing-loop accounting, written by the exchange thread while run() is
/// live and safe to read after it returns. `runs` / `table_probes` /
/// `scatter_reserves` are the bulk kernel's O(runs + routed) cost made
/// observable; they stay 0 on the per-record path (which has no such
/// aggregate steps to count).
struct ExchangeStats {
  /// Polling rounds that routed at least one record.
  std::uint64_t rounds = 0;
  /// Records routed (same total as records_routed(), counted at poll time).
  std::uint64_t records = 0;
  /// Same-stratum runs walked by the bulk kernel's pass 1.
  std::uint64_t runs = 0;
  /// StratumTable slot inspections (one probe chain per run boundary).
  std::uint64_t table_probes = 0;
  /// Destination-batch reserve calls made by pass 2 (one per channel that
  /// received data from a polled batch).
  std::uint64_t scatter_reserves = 0;
};

/// Repartitions a topic's partition batches onto worker channels by stratum
/// hash, forwarding the min-combined low-watermark. run() is driven by ONE
/// thread; each output channel is consumed by exactly one worker thread
/// (SPSC discipline at both ends of every ring).
class Exchange {
 public:
  using BatchPtr = std::unique_ptr<engine::RecordBatch>;

  Exchange(Broker& broker, const std::string& topic, ExchangeConfig config);

  /// The repartition loop: polls every partition, routes, forwards
  /// watermarks, and returns once every partition is exhausted (sealed and
  /// fully read) and every channel is closed. Call from a dedicated thread.
  void run();

  /// Pops the next batch of channel `w` (null when none is ready). The
  /// caller owns the batch until it hands it back via recycle().
  BatchPtr pop(std::size_t w) {
    auto batch = rings_[w]->try_pop();
    return batch ? std::move(*batch) : nullptr;
  }

  /// Drains up to `max` batches of channel `w` into `out` (appending) in one
  /// ring synchronisation; returns the number taken. The batch-out mirror of
  /// Consumer::poll: the morsel scheduler refills its whole deque per call.
  std::size_t pop_n(std::size_t w, std::vector<BatchPtr>& out,
                    std::size_t max) {
    return rings_[w]->pop_n(out, max);
  }

  /// True when channel `w` is closed and fully consumed (end of stream).
  bool drained(std::size_t w) const { return rings_[w]->drained(); }

  /// Returns a consumed batch to the pool it came from (heartbeats recycle
  /// through a dedicated zero-reserve pool so they never pin record
  /// capacity).
  void recycle(BatchPtr batch) {
    if (!batch) return;
    if (batch->heartbeat) {
      heartbeat_pool_.release(std::move(batch));
    } else {
      pool_.release(std::move(batch));
    }
  }

  /// Number of output channels.
  std::size_t worker_count() const noexcept { return config_.workers; }

  /// The stratum -> channel map (Fibonacci-mixed hash, deterministic): every
  /// record of one sub-stream lands on one channel.
  static std::size_t route(sampling::StratumId stratum, std::size_t workers) {
    std::uint64_t h = static_cast<std::uint64_t>(stratum) + 1;
    h *= 0x9e3779b97f4a7c15ULL;
    h ^= h >> 32;
    return static_cast<std::size_t>(h % workers);
  }

  // ---- Introspection (valid after run() returns; atomic during) ----------

  /// Data batches emitted across all channels.
  std::uint64_t batches_emitted() const noexcept {
    return batches_emitted_.load(std::memory_order_relaxed);
  }
  /// Watermark-only heartbeat batches emitted across all channels.
  std::uint64_t heartbeats_emitted() const noexcept {
    return heartbeats_emitted_.load(std::memory_order_relaxed);
  }
  /// Records routed downstream.
  std::uint64_t records_routed() const noexcept {
    return records_routed_.load(std::memory_order_relaxed);
  }
  /// Batch-pool allocation high-water mark (steady state stops growing).
  std::size_t batches_allocated() const { return pool_.allocated(); }
  /// Heartbeat-pool allocation high-water mark.
  std::size_t heartbeats_allocated() const {
    return heartbeat_pool_.allocated();
  }
  /// Highest event time routed downstream so far (kNoWatermark before any).
  /// The merger subtracts a slide's end from this at close time to measure
  /// watermark lag — how far ingest had run ahead when the slide sealed.
  std::int64_t max_routed_event_us() const noexcept {
    return max_routed_event_us_.load(std::memory_order_relaxed);
  }
  /// Routing-loop accounting. Plain (non-atomic) counters written by the
  /// exchange thread: read only after run() returns (a thread join orders
  /// the accesses).
  const ExchangeStats& stats() const noexcept { return stats_; }

 private:
  /// Blocks until channel `w` accepts `batch` (condvar-backed backpressure:
  /// the exchange thread parks while the worker is behind).
  void push_channel(std::size_t w, BatchPtr batch);

  /// Stamps morsel identity: global channel index plus the channel's gapless
  /// sequence number (the completion tracker's contiguous-prefix input).
  void stamp_identity(std::size_t w, engine::RecordBatch& batch) {
    batch.channel =
        static_cast<std::uint32_t>(config_.exchange_index * config_.workers +
                                   w);
    batch.seq = next_seq_[w]++;
  }

  ExchangeConfig config_;
  std::vector<Consumer> inputs_;  ///< one consumer per OWNED partition
  std::vector<std::unique_ptr<SpscRing<BatchPtr>>> rings_;
  engine::BatchPool pool_;
  /// Watermark-only heartbeats: zero capacity reserve, recycled separately.
  engine::BatchPool heartbeat_pool_{0};
  std::vector<std::uint64_t> next_seq_;  ///< per-channel, exchange thread only

  std::atomic<std::uint64_t> batches_emitted_{0};
  std::atomic<std::uint64_t> heartbeats_emitted_{0};
  std::atomic<std::uint64_t> records_routed_{0};
  std::atomic<std::int64_t> max_routed_event_us_{engine::kNoWatermark};
  ExchangeStats stats_;  ///< exchange thread only; read after run() joins
};

}  // namespace streamapprox::ingest
