// The stream data item flowing through every engine, sampler and workload in
// this repository. Equivalent to one Kafka message payload in the paper's
// deployment (Fig. 1): a numeric measurement tagged with its sub-stream
// (stratum) and event time.
#pragma once

#include <cstdint>

#include "sampling/sample.h"

namespace streamapprox::engine {

/// One stream data item.
struct Record {
  /// Sub-stream / stratum id (data source, protocol, borough, ...).
  sampling::StratumId stratum = 0;
  /// The measured value the queries aggregate (flow bytes, trip miles, ...).
  double value = 0.0;
  /// Event timestamp in microseconds since stream start.
  std::int64_t event_time_us = 0;

  friend bool operator==(const Record&, const Record&) = default;
};

/// Extracts a record's stratum — the KeyFn used across samplers.
struct RecordStratum {
  sampling::StratumId operator()(const Record& r) const noexcept {
    return r.stratum;
  }
};

/// Extracts a record's value — the ValueFn used by estimators.
struct RecordValue {
  double operator()(const Record& r) const noexcept { return r.value; }
};

}  // namespace streamapprox::engine
