// The morsel of the batched data plane: a reusable vector of records plus
// the transport metadata the repartitioning exchange forwards alongside the
// data (source partition, low-watermark). Batches are recycled through a
// BatchPool so steady-state polling and exchange hops allocate nothing
// (morsel-driven execution, Leis et al. SIGMOD'14 — batch-at-a-time transfer
// between operators instead of one virtual call per record).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <vector>

#include "engine/record.h"

namespace streamapprox::engine {

/// Watermark sentinel: no watermark has been established yet. Numerically
/// identical to core::kNoClock so the two layers compose without mapping.
inline constexpr std::int64_t kNoWatermark =
    std::numeric_limits<std::int64_t>::min();
/// Watermark sentinel: every upstream source is drained or idle past grace —
/// the receiver may flush everything it buffers. Numerically identical to
/// core::kPartitionDrained.
inline constexpr std::int64_t kWatermarkFlush =
    std::numeric_limits<std::int64_t>::max();

/// Descriptor of a contiguous same-stratum run inside a RecordBatch:
/// records [offset, offset + length) all carry `stratum`. The repartitioning
/// exchange stamps these at routing time — it already reads every record's
/// stratum to route it — so downstream samplers can feed whole runs to the
/// skip-ahead bulk kernel without re-deriving the key per record.
struct StratumRun {
  std::uint32_t offset = 0;
  std::uint32_t length = 0;
  sampling::StratumId stratum = 0;
};

/// One batch of records moving between data-plane stages.
struct RecordBatch {
  /// Sentinel for `source_partition`: records from several partitions.
  static constexpr std::size_t kMixedSources =
      std::numeric_limits<std::size_t>::max();

  std::vector<Record> records;
  /// The partition every record came from, when the batch was filled from
  /// exactly one partition; kMixedSources otherwise.
  std::size_t source_partition = kMixedSources;
  /// Low-watermark travelling with the batch (min-combined over the source
  /// partitions by the exchange): every record at or below it that will ever
  /// be forwarded to this receiver has already been forwarded. kNoWatermark
  /// until a producer stamps it; kWatermarkFlush when no source gates.
  std::int64_t watermark_us = kNoWatermark;
  /// Stratum-occupancy stamp (repartitioning exchange only): how many
  /// distinct strata have been routed to THIS batch's channel so far, out of
  /// `total_strata` seen across all channels. The exchange thread counts
  /// both deterministically in record order, so receivers can split the
  /// per-slide sample budget by occupancy (budget · route/total) without a
  /// racy shared registry — 0/0 when the producer does not track occupancy.
  std::uint32_t route_strata = 0;
  std::uint32_t total_strata = 0;

  /// Sentinel for `channel`: the producer did not stamp channel identity.
  static constexpr std::uint32_t kNoChannel =
      std::numeric_limits<std::uint32_t>::max();

  /// Morsel identity for the work-stealing scheduler. `channel` is the
  /// global channel index (exchange_index * workers + worker) the batch was
  /// routed to, and `seq` counts batches per channel from 0 with no gaps.
  /// A thief that absorbs a stolen morsel reports (channel, seq) done; the
  /// completion tracker only advances a channel's watermark clock over the
  /// contiguous prefix of completed sequence numbers, preserving the PR 2
  /// invariant that a stamped watermark covers only already-absorbed data
  /// even when morsels complete out of order.
  std::uint32_t channel = kNoChannel;
  std::uint64_t seq = 0;
  /// True for watermark-only heartbeats (no records). They recycle through
  /// a dedicated zero-reserve pool so idle channels never pin full-capacity
  /// record buffers.
  bool heartbeat = false;
  /// Same-stratum run descriptors covering `records` exactly, in order, when
  /// the producer stamps them (the repartitioning exchange does); empty when
  /// it does not. Consumers must treat an empty list on a non-empty batch as
  /// "not stamped", not "zero runs".
  std::vector<StratumRun> stratum_runs;

  std::size_t size() const noexcept { return records.size(); }
  bool empty() const noexcept { return records.empty(); }

  /// Appends a same-stratum run of `count` records and maintains the
  /// `stratum_runs` descriptor list: extends the trailing descriptor when it
  /// carries the same stratum (runs merge across producer-side batch
  /// boundaries, exactly like the record-at-a-time trailing-run update),
  /// opens a new one otherwise. The scatter pass of the exchange's bulk
  /// routing kernel is one call per routed run instead of one compare per
  /// record.
  void append_run(const Record* run, std::size_t count,
                  sampling::StratumId stratum) {
    const auto offset = static_cast<std::uint32_t>(records.size());
    if (count == 1) {
      // Length-1 runs are the common case on shuffled streams; push_back
      // skips the range-insert machinery for them.
      records.push_back(*run);
    } else {
      records.insert(records.end(), run, run + count);
    }
    if (!stratum_runs.empty() && stratum_runs.back().stratum == stratum) {
      stratum_runs.back().length += static_cast<std::uint32_t>(count);
    } else {
      stratum_runs.push_back(
          {offset, static_cast<std::uint32_t>(count), stratum});
    }
  }

  /// Clears data and metadata, keeping the records' capacity — the whole
  /// point of pooling.
  void reset() noexcept {
    records.clear();
    source_partition = kMixedSources;
    watermark_us = kNoWatermark;
    route_strata = 0;
    total_strata = 0;
    channel = kNoChannel;
    seq = 0;
    heartbeat = false;
    stratum_runs.clear();
  }
};

/// Calls `fn(slide, run, count)` for every run of consecutive records in
/// [records, records + count) mapping to the same slide index
/// (event_time_us / slide_us). This is the ONE run segmentation every
/// batched ingest hot path uses — the sequential driver and the sharded
/// workers apply their late-drop rules to identical runs, which the
/// parallel-equivalence guarantee depends on.
template <typename Fn>
void for_each_slide_run(const Record* records, std::size_t count,
                        std::int64_t slide_us, Fn&& fn) {
  std::size_t i = 0;
  while (i < count) {
    const std::int64_t slide = records[i].event_time_us / slide_us;
    std::size_t end = i + 1;
    while (end < count && records[end].event_time_us / slide_us == slide) {
      ++end;
    }
    fn(slide, records + i, end - i);
    i = end;
  }
}

/// Thread-safe free list of RecordBatches. acquire() pops a recycled batch
/// (or allocates one on a cold start); release() resets and returns it. The
/// pool must outlive every batch it handed out.
class BatchPool {
 public:
  /// `reserve_records` is the capacity hint newly allocated batches reserve,
  /// so the first fill of a fresh batch does not reallocate either.
  explicit BatchPool(std::size_t reserve_records = 1024)
      : reserve_records_(reserve_records) {}

  BatchPool(const BatchPool&) = delete;
  BatchPool& operator=(const BatchPool&) = delete;

  /// Returns an empty batch, recycled when possible.
  std::unique_ptr<RecordBatch> acquire() {
    {
      std::lock_guard lock(mutex_);
      if (!free_.empty()) {
        auto batch = std::move(free_.back());
        free_.pop_back();
        return batch;
      }
      ++allocated_;
    }
    auto batch = std::make_unique<RecordBatch>();
    batch->records.reserve(reserve_records_);
    return batch;
  }

  /// Resets `batch` and returns it to the free list. Null is ignored.
  void release(std::unique_ptr<RecordBatch> batch) {
    if (!batch) return;
    batch->reset();
    std::lock_guard lock(mutex_);
    free_.push_back(std::move(batch));
  }

  /// Batches allocated over the pool's lifetime (== the high-water mark of
  /// batches simultaneously outside the pool; steady state stops growing).
  std::size_t allocated() const {
    std::lock_guard lock(mutex_);
    return allocated_;
  }

  /// Batches currently parked in the free list.
  std::size_t pooled() const {
    std::lock_guard lock(mutex_);
    return free_.size();
  }

 private:
  const std::size_t reserve_records_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<RecordBatch>> free_;
  std::size_t allocated_ = 0;
};

}  // namespace streamapprox::engine
