// RDD-like partitioned dataset for the batched engine.
//
// A Dataset<T> is an immutable collection split into partitions; every
// transformation is executed eagerly as one scheduler stage (task per
// partition, barrier at the end). Narrow transformations (map / filter /
// map_partitions) touch each partition independently; the wide ones
// (shuffle.h) exchange data between partitions — the expensive path Spark
// STS takes. Compared to Spark, laziness and lineage-based fault tolerance
// are out of scope (documented in DESIGN.md): what matters for the paper's
// measurements is the stage/barrier execution structure, which is faithful.
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "engine/batched/scheduler.h"

namespace streamapprox::engine::batched {

/// Immutable partitioned dataset (the engine's RDD).
template <typename T>
class Dataset {
 public:
  Dataset() = default;

  /// Creates a dataset by slicing `items` into `partitions` contiguous
  /// parts (one stage; models the batch-generator step of Spark Streaming,
  /// Fig. 3 "Batched RDDs" — the data copy into the RDD is real and paid by
  /// every batched system except StreamApprox, which samples first).
  static Dataset from(std::span<const T> items, std::size_t partitions,
                      Scheduler& scheduler) {
    partitions = partitions == 0 ? 1 : partitions;
    Dataset dataset;
    dataset.partitions_.resize(partitions);
    const std::size_t n = items.size();
    const std::size_t chunk = (n + partitions - 1) / partitions;
    scheduler.run_stage(partitions, [&](std::size_t p) {
      const std::size_t begin = std::min(n, p * chunk);
      const std::size_t end = std::min(n, begin + chunk);
      dataset.partitions_[p].assign(items.begin() + begin,
                                    items.begin() + end);
    });
    return dataset;
  }

  /// Wraps already-partitioned data without copying.
  static Dataset from_partitions(std::vector<std::vector<T>> partitions) {
    Dataset dataset;
    dataset.partitions_ = std::move(partitions);
    if (dataset.partitions_.empty()) dataset.partitions_.emplace_back();
    return dataset;
  }

  /// Number of partitions.
  std::size_t partition_count() const noexcept { return partitions_.size(); }

  /// Total number of elements.
  std::size_t size() const noexcept {
    std::size_t n = 0;
    for (const auto& p : partitions_) n += p.size();
    return n;
  }

  /// Read access to the raw partitions.
  const std::vector<std::vector<T>>& partitions() const noexcept {
    return partitions_;
  }

  /// Narrow transformation: one output element per input element.
  template <typename U, typename Fn>
  Dataset<U> map(Fn fn, Scheduler& scheduler) const {
    Dataset<U> out;
    out.partitions_.resize(partitions_.size());
    scheduler.run_stage(partitions_.size(), [&](std::size_t p) {
      out.partitions_[p].reserve(partitions_[p].size());
      for (const T& item : partitions_[p]) {
        out.partitions_[p].push_back(fn(item));
      }
    });
    return out;
  }

  /// Narrow transformation: keeps elements satisfying the predicate.
  template <typename Fn>
  Dataset<T> filter(Fn fn, Scheduler& scheduler) const {
    Dataset out;
    out.partitions_.resize(partitions_.size());
    scheduler.run_stage(partitions_.size(), [&](std::size_t p) {
      for (const T& item : partitions_[p]) {
        if (fn(item)) out.partitions_[p].push_back(item);
      }
    });
    return out;
  }

  /// Runs fn over each whole partition, producing one U per partition
  /// (the workhorse for per-partition sampling and aggregation).
  template <typename U, typename Fn>
  std::vector<U> map_partitions(Fn fn, Scheduler& scheduler) const {
    std::vector<U> results(partitions_.size());
    scheduler.run_stage(partitions_.size(), [&](std::size_t p) {
      results[p] = fn(p, partitions_[p]);
    });
    return results;
  }

  /// Gathers every element to the driver.
  std::vector<T> collect() const {
    std::vector<T> out;
    out.reserve(size());
    for (const auto& p : partitions_) {
      out.insert(out.end(), p.begin(), p.end());
    }
    return out;
  }

  template <typename U>
  friend class Dataset;

 private:
  std::vector<std::vector<T>> partitions_;
};

}  // namespace streamapprox::engine::batched
