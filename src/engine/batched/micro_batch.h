// Micro-batch stream runtime (the Spark-Streaming workflow of Fig. 3):
// the event-time-sorted input stream is cut into batches of one batch
// interval each; a user-supplied job turns every batch into sample cells;
// cells are assembled into sliding windows. Wall-clock time across the whole
// loop gives the system's throughput — the paper's measurement methodology
// (§6.1) of feeding input until saturation and counting processed items.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "engine/record.h"
#include "engine/window.h"

namespace streamapprox::engine::batched {

/// A micro-batch job: receives the batch index and the batch's records,
/// returns the per-stratum sample cells the batch contributes to its window.
/// The job is where each evaluated system differs (native / SRS / STS /
/// StreamApprox); see core/systems.h.
using BatchJob = std::function<std::vector<estimation::StratumSummary>(
    std::size_t, std::span<const Record>)>;

/// Runner configuration.
struct MicroBatchConfig {
  /// Batch interval (paper §5.3 sweeps 250/500/1000 ms). The window slide
  /// must be a positive multiple of this.
  std::int64_t batch_interval_us = 500'000;
  /// Sliding-window geometry.
  WindowConfig window{};
};

/// Outcome of one streaming run (shared with the pipelined runtime).
struct StreamRunResult {
  std::vector<WindowResult> windows;   ///< completed windows, in order
  std::uint64_t records_processed = 0; ///< total input records consumed
  double wall_seconds = 0.0;           ///< wall-clock processing time
  /// Records consumed per wall-clock second.
  double throughput() const noexcept {
    return wall_seconds > 0.0
               ? static_cast<double>(records_processed) / wall_seconds
               : 0.0;
  }
};

/// Executes `job` over every micro-batch of `records` (which must be sorted
/// by event time) and assembles sliding windows from the produced cells.
/// Throws std::invalid_argument if the window slide is not a multiple of the
/// batch interval.
StreamRunResult run_micro_batches(const std::vector<Record>& records,
                                  const MicroBatchConfig& config,
                                  const BatchJob& job);

/// Consumes the cells of one completed slide (strictly increasing slide
/// indices; a trailing partial slide is flushed as the final index).
using SlideSink = std::function<void(std::size_t slide_index,
                                     std::vector<estimation::StratumSummary>)>;

/// Same micro-batch loop, but every completed slide's cells go to `sink`
/// instead of the built-in window assembler (the returned result carries no
/// windows). This is how core/systems.cpp routes the batched engine onto
/// the shared slide-lifecycle driver.
StreamRunResult run_micro_batches(const std::vector<Record>& records,
                                  const MicroBatchConfig& config,
                                  const BatchJob& job, const SlideSink& sink);

}  // namespace streamapprox::engine::batched
