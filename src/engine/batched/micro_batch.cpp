#include "engine/batched/micro_batch.h"

#include <stdexcept>

#include "common/clock.h"

namespace streamapprox::engine::batched {

StreamRunResult run_micro_batches(const std::vector<Record>& records,
                                  const MicroBatchConfig& config,
                                  const BatchJob& job) {
  if (config.batch_interval_us <= 0 ||
      config.window.slide_us % config.batch_interval_us != 0) {
    throw std::invalid_argument(
        "run_micro_batches: window slide must be a positive multiple of the "
        "batch interval");
  }
  const auto batches_per_slide = static_cast<std::size_t>(
      config.window.slide_us / config.batch_interval_us);

  StreamRunResult result;
  SlidingWindowAssembler assembler(config.window);
  std::vector<estimation::StratumSummary> slide_cells;

  streamapprox::Stopwatch watch;
  const auto ranges = split_by_interval(records, config.batch_interval_us);
  for (std::size_t b = 0; b < ranges.size(); ++b) {
    const auto [begin, end] = ranges[b];
    const std::span<const Record> batch(records.data() + begin, end - begin);
    auto cells = job(b, batch);
    result.records_processed += batch.size();
    slide_cells.insert(slide_cells.end(),
                       std::make_move_iterator(cells.begin()),
                       std::make_move_iterator(cells.end()));
    if ((b + 1) % batches_per_slide == 0) {
      if (auto window = assembler.push_slide(std::move(slide_cells))) {
        result.windows.push_back(std::move(*window));
      }
      slide_cells.clear();
    }
  }
  // Flush a trailing partial slide so short streams still produce output.
  if (!slide_cells.empty()) {
    if (auto window = assembler.push_slide(std::move(slide_cells))) {
      result.windows.push_back(std::move(*window));
    }
  }
  result.wall_seconds = watch.seconds();
  return result;
}

}  // namespace streamapprox::engine::batched
