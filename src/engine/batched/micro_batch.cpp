#include "engine/batched/micro_batch.h"

#include <stdexcept>

#include "common/clock.h"

namespace streamapprox::engine::batched {

StreamRunResult run_micro_batches(const std::vector<Record>& records,
                                  const MicroBatchConfig& config,
                                  const BatchJob& job) {
  // Default sink: assemble sliding windows locally.
  SlidingWindowAssembler assembler(config.window);
  std::vector<WindowResult> windows;
  auto result = run_micro_batches(
      records, config, job,
      [&](std::size_t, std::vector<estimation::StratumSummary> cells) {
        if (auto window = assembler.push_slide(std::move(cells))) {
          windows.push_back(std::move(*window));
        }
      });
  result.windows = std::move(windows);
  return result;
}

StreamRunResult run_micro_batches(const std::vector<Record>& records,
                                  const MicroBatchConfig& config,
                                  const BatchJob& job, const SlideSink& sink) {
  if (config.batch_interval_us <= 0 ||
      config.window.slide_us % config.batch_interval_us != 0) {
    throw std::invalid_argument(
        "run_micro_batches: window slide must be a positive multiple of the "
        "batch interval");
  }
  const auto batches_per_slide = static_cast<std::size_t>(
      config.window.slide_us / config.batch_interval_us);

  StreamRunResult result;
  std::vector<estimation::StratumSummary> slide_cells;
  std::size_t slide_index = 0;

  streamapprox::Stopwatch watch;
  const auto ranges = split_by_interval(records, config.batch_interval_us);
  for (std::size_t b = 0; b < ranges.size(); ++b) {
    const auto [begin, end] = ranges[b];
    const std::span<const Record> batch(records.data() + begin, end - begin);
    auto cells = job(b, batch);
    result.records_processed += batch.size();
    slide_cells.insert(slide_cells.end(),
                       std::make_move_iterator(cells.begin()),
                       std::make_move_iterator(cells.end()));
    if ((b + 1) % batches_per_slide == 0) {
      sink(slide_index++, std::move(slide_cells));
      slide_cells.clear();
    }
  }
  // Flush a trailing partial slide so short streams still produce output.
  if (!slide_cells.empty()) {
    sink(slide_index, std::move(slide_cells));
  }
  result.wall_seconds = watch.seconds();
  return result;
}

}  // namespace streamapprox::engine::batched
