// Stage scheduler of the batched (Spark-Streaming-like) engine.
//
// A micro-batch job is a sequence of STAGES; each stage runs one task per
// partition across a worker pool and ends with a synchronisation barrier —
// exactly the execution model whose per-batch costs the paper measures
// (§5.3: "significantly reduces costs in scheduling and processing the RDDs,
// especially when the batch interval is small"). A configurable per-stage
// dispatch overhead models the driver-side work (task serialisation,
// scheduling decisions) that a real Spark driver pays and that dominates at
// small batch intervals; it is implemented as real elapsed time so that
// throughput measurements feel it exactly like the real system would.
#pragma once

#include <chrono>
#include <cstddef>
#include <functional>
#include <memory>

#include "common/thread_pool.h"

namespace streamapprox::engine::batched {

/// Scheduler configuration.
struct SchedulerConfig {
  /// Worker threads executing tasks ("executor cores").
  std::size_t workers = 4;
  /// Fixed driver-side dispatch cost charged once per stage.
  std::chrono::microseconds stage_overhead{500};
};

/// Runs stages of per-partition tasks with a barrier after each stage.
class Scheduler {
 public:
  explicit Scheduler(SchedulerConfig config);

  /// Runs fn(task_index) for every task in [0, tasks), blocking until all
  /// complete (the stage barrier). Charges the per-stage dispatch overhead.
  void run_stage(std::size_t tasks,
                 const std::function<void(std::size_t)>& fn);

  /// Runs fn(slice, begin, end) over [0, count) split into `slices`
  /// contiguous ranges with a closing barrier; used for ingest-path
  /// operations (e.g. parallel OASRS) that are not Spark stages and thus
  /// charge NO stage overhead.
  void run_slices(
      std::size_t count, std::size_t slices,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

  /// Number of worker threads.
  std::size_t workers() const noexcept { return config_.workers; }

  /// Number of stages executed so far (for tests / overhead accounting).
  std::size_t stages_run() const noexcept { return stages_run_; }

  /// The configuration in force.
  const SchedulerConfig& config() const noexcept { return config_; }

 private:
  SchedulerConfig config_;
  streamapprox::ThreadPool pool_;
  std::size_t stages_run_ = 0;
};

}  // namespace streamapprox::engine::batched
