#include "engine/batched/scheduler.h"

#include <thread>

namespace streamapprox::engine::batched {

Scheduler::Scheduler(SchedulerConfig config)
    : config_(config), pool_(config.workers == 0 ? 1 : config.workers) {
  if (config_.workers == 0) config_.workers = 1;
}

void Scheduler::run_stage(std::size_t tasks,
                          const std::function<void(std::size_t)>& fn) {
  ++stages_run_;
  if (config_.stage_overhead.count() > 0) {
    std::this_thread::sleep_for(config_.stage_overhead);
  }
  if (tasks == 0) return;
  pool_.parallel_slices(tasks, tasks,
                        [&fn](std::size_t, std::size_t begin, std::size_t) {
                          fn(begin);
                        });
}

void Scheduler::run_slices(
    std::size_t count, std::size_t slices,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  pool_.parallel_slices(count, slices, fn);
}

}  // namespace streamapprox::engine::batched
