// The wide (shuffle) operation of the batched engine: groupBy(stratum).
//
// This is the heart of the Spark-STS baseline's cost (paper §4.1 / §5.2:
// "Spark-based stratified sampling scales poorly because of its
// synchronisation among Spark workers"). The shuffle is real: a map-side
// stage hash-partitions every record into per-reducer buckets, a barrier
// synchronises all workers, and a reduce-side stage concatenates and groups
// each reducer's buckets. Data volume moved equals the full batch.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "engine/batched/dataset.h"
#include "sampling/sample.h"

namespace streamapprox::engine::batched {

/// Result of a grouped shuffle: for each reducer partition, the groups
/// (stratum -> items) routed to it.
template <typename T>
using GroupedPartitions =
    std::vector<std::unordered_map<sampling::StratumId, std::vector<T>>>;

/// Result of reduce_by_key: per-reducer maps key -> reduced value.
template <typename V>
using ReducedPartitions =
    std::vector<std::unordered_map<sampling::StratumId, V>>;

/// groupBy over a dataset: returns per-reducer grouped data. KeyFn maps an
/// element to its StratumId; `reducers` defaults to the input partition
/// count. Two stages with a full barrier in between.
template <typename T, typename KeyFn>
GroupedPartitions<T> shuffle_group_by(const Dataset<T>& input, KeyFn key,
                                      Scheduler& scheduler,
                                      std::size_t reducers = 0) {
  const std::size_t maps = input.partition_count();
  if (reducers == 0) reducers = maps;

  // Map side: bucket every element by hash(key) % reducers.
  std::vector<std::vector<std::vector<T>>> buckets(
      maps, std::vector<std::vector<T>>(reducers));
  scheduler.run_stage(maps, [&](std::size_t p) {
    for (const T& item : input.partitions()[p]) {
      const auto k = static_cast<std::size_t>(key(item));
      buckets[p][k % reducers].push_back(item);
    }
  });
  // <- stage barrier: no reducer starts before every mapper finished.

  // Reduce side: concatenate this reducer's buckets from every mapper and
  // group by exact key.
  GroupedPartitions<T> grouped(reducers);
  scheduler.run_stage(reducers, [&](std::size_t r) {
    auto& groups = grouped[r];
    for (std::size_t p = 0; p < maps; ++p) {
      for (T& item : buckets[p][r]) {
        groups[key(item)].push_back(std::move(item));
      }
    }
  });
  return grouped;
}

/// reduceByKey with map-side combining (Spark's efficient wide aggregation):
/// each mapper pre-reduces its partition into (key, V) pairs, the shuffle
/// only moves combined values, and reducers merge. `init(item)` seeds the
/// accumulator from one element, `fold(acc, item)` adds an element, and
/// `merge(acc, acc)` combines accumulators. Two stages, like group-by, but
/// far less data movement — included so the engine's API matches what the
/// paper's query jobs would really use in Spark.
template <typename T, typename V, typename KeyFn, typename InitFn,
          typename FoldFn, typename MergeFn>
ReducedPartitions<V> shuffle_reduce_by_key(const Dataset<T>& input, KeyFn key,
                                           InitFn init, FoldFn fold,
                                           MergeFn merge, Scheduler& scheduler,
                                           std::size_t reducers = 0) {
  const std::size_t maps = input.partition_count();
  if (reducers == 0) reducers = maps;

  // Map side with combining: one (key -> V) map per mapper.
  std::vector<std::unordered_map<sampling::StratumId, V>> combined(maps);
  scheduler.run_stage(maps, [&](std::size_t p) {
    auto& local = combined[p];
    for (const T& item : input.partitions()[p]) {
      const auto k = key(item);
      auto it = local.find(k);
      if (it == local.end()) {
        local.emplace(k, init(item));
      } else {
        fold(it->second, item);
      }
    }
  });
  // <- stage barrier.

  // Reduce side: merge each reducer's share of the combined maps.
  ReducedPartitions<V> reduced(reducers);
  scheduler.run_stage(reducers, [&](std::size_t r) {
    auto& out = reduced[r];
    for (std::size_t p = 0; p < maps; ++p) {
      for (auto& [k, value] : combined[p]) {
        if (static_cast<std::size_t>(k) % reducers != r) continue;
        auto it = out.find(k);
        if (it == out.end()) {
          out.emplace(k, value);
        } else {
          merge(it->second, value);
        }
      }
    }
  });
  return reduced;
}

}  // namespace streamapprox::engine::batched
