// SlideAggregator implementations for the pipelined engine:
//  * OasrsSlideAggregator — the sampling operator the paper adds to Flink
//    (§4.2.2 "we created a sampling operator by implementing the algorithm
//    described in §3.2"): OASRS per slide, cells carry (C_i, Y_i, W_i).
//  * ExactSlideAggregator — the native (no-sampling) baseline: exact
//    per-stratum sums with zero variance.
//
// Both support an optional per-record "query work" loop so that the cost of
// the user query (parsing/feature extraction in the paper's case studies)
// scales with the number of records actually processed — the effect that
// lets sampling trade accuracy for throughput.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "engine/pipelined/dataflow.h"
#include "engine/query_cost.h"
#include "estimation/estimators.h"
#include "sampling/oasrs.h"

namespace streamapprox::engine::pipelined {

/// Exact per-stratum aggregation (native Flink baseline). Every record is
/// fully processed; emitted cells have seen == sampled and weight 1, so the
/// estimators return exact results with zero variance.
class ExactSlideAggregator final : public SlideAggregator {
 public:
  /// `work` is the per-record query cost (see engine/query_cost.h).
  explicit ExactSlideAggregator(QueryCost work = {}) : work_(work) {}

  void offer(const Record& record) override {
    const double value = work_.charge(record.value);
    auto& cell = cells_[record.stratum];
    cell.stratum = record.stratum;
    ++cell.seen;
    ++cell.sampled;
    cell.sum += value;
    cell.sum_sq += value * value;
  }

  std::vector<estimation::StratumSummary> take_slide() override {
    std::vector<estimation::StratumSummary> out;
    out.reserve(cells_.size());
    for (auto& [id, cell] : cells_) out.push_back(cell);
    cells_.clear();
    return out;
  }

 private:
  QueryCost work_;
  std::unordered_map<sampling::StratumId, estimation::StratumSummary> cells_;
};

/// OASRS sampling + aggregation operator (Flink-based StreamApprox). Records
/// are offered to a per-worker OASRS sampler; at the slide boundary the
/// sample is aggregated (the query runs over Y_i items only) and reported as
/// cells with the Eq. 1 weights.
class OasrsSlideAggregator final : public SlideAggregator {
 public:
  /// `config` controls the per-slide sampling budget; `work` is the
  /// per-record query cost applied to SAMPLED records only.
  OasrsSlideAggregator(sampling::OasrsConfig config, QueryCost work = {})
      : sampler_(sampling::make_oasrs<Record>(config)), work_(work) {}

  void offer(const Record& record) override { sampler_.offer(record); }

  std::vector<estimation::StratumSummary> take_slide() override {
    auto sample = sampler_.take();
    std::vector<estimation::StratumSummary> cells;
    cells.reserve(sample.strata.size());
    for (const auto& stratum : sample.strata) {
      estimation::StratumSummary cell;
      cell.stratum = stratum.stratum;
      cell.seen = stratum.seen;
      cell.sampled = stratum.items.size();
      cell.weight = stratum.weight;
      for (const Record& record : stratum.items) {
        const double value = work_.charge(record.value);
        cell.sum += value;
        cell.sum_sq += value * value;
      }
      cells.push_back(cell);
    }
    return cells;
  }

  /// Re-tunes the per-slide budget (adaptive feedback path).
  void set_total_budget(std::size_t budget) {
    sampler_.set_total_budget(budget);
  }

 private:
  decltype(sampling::make_oasrs<Record>({})) sampler_;
  QueryCost work_;
};

}  // namespace streamapprox::engine::pipelined
