#include "engine/pipelined/dataflow.h"

#include <atomic>
#include <map>
#include <thread>

#include "common/clock.h"
#include "common/queue.h"

namespace streamapprox::engine::pipelined {
namespace {

/// Message from an aggregation task to the window collector: one completed
/// slide's cells. Workers emit every slide index in order (empty cells for
/// quiet slides), so the collector can assemble windows deterministically.
struct SlideMsg {
  std::size_t slide_index = 0;
  std::vector<estimation::StratumSummary> cells;
};

void spin_push(streamapprox::SpscRing<Record>& ring, const Record& record) {
  while (!ring.try_push(record)) std::this_thread::yield();
}

void spin_push(streamapprox::SpscRing<SlideMsg>& ring, SlideMsg msg) {
  // try_push_keep: a failed push on a full ring must not consume the
  // message (try_push's by-value parameter would destroy the slide's cells
  // on the first failed attempt and retry with an empty message).
  while (!ring.try_push_keep(msg)) std::this_thread::yield();
}

}  // namespace

batched::StreamRunResult run_pipeline(const std::vector<Record>& records,
                                      const PipelineConfig& config,
                                      const AggregatorFactory& factory) {
  // Default sink: assemble sliding windows locally (collector-thread state,
  // joined before the result is read).
  SlidingWindowAssembler assembler(config.window);
  std::vector<WindowResult> windows;
  auto result = run_pipeline(
      records, config, factory,
      [&](std::size_t, std::vector<estimation::StratumSummary> cells) {
        if (auto window = assembler.push_slide(std::move(cells))) {
          windows.push_back(std::move(*window));
        }
      });
  result.windows = std::move(windows);
  return result;
}

batched::StreamRunResult run_pipeline(const std::vector<Record>& records,
                                      const PipelineConfig& config,
                                      const AggregatorFactory& factory,
                                      const SlideSink& sink) {
  const std::size_t parallelism =
      config.parallelism == 0 ? 1 : config.parallelism;
  const std::int64_t slide_us = config.window.slide_us;

  // The last slide every worker must flush up to, so that all workers emit
  // the same set of slide indices regardless of which records they saw.
  const std::size_t final_slide =
      records.empty()
          ? 0
          : static_cast<std::size_t>(records.back().event_time_us / slide_us);

  std::vector<std::unique_ptr<streamapprox::SpscRing<Record>>> in_rings;
  std::vector<std::unique_ptr<streamapprox::SpscRing<SlideMsg>>> out_rings;
  in_rings.reserve(parallelism);
  out_rings.reserve(parallelism);
  for (std::size_t w = 0; w < parallelism; ++w) {
    in_rings.push_back(std::make_unique<streamapprox::SpscRing<Record>>(
        config.channel_capacity));
    out_rings.push_back(
        std::make_unique<streamapprox::SpscRing<SlideMsg>>(256));
  }

  batched::StreamRunResult result;
  streamapprox::Stopwatch watch;

  // --- Aggregation tasks: record-at-a-time, flush cells on slide change.
  std::vector<std::thread> workers;
  workers.reserve(parallelism);
  for (std::size_t w = 0; w < parallelism; ++w) {
    workers.emplace_back([&, w] {
      auto aggregator = factory(w);
      auto& in = *in_rings[w];
      auto& out = *out_rings[w];
      std::size_t current_slide = 0;
      for (;;) {
        auto record = in.try_pop();
        if (!record) {
          if (in.drained()) break;
          std::this_thread::yield();
          continue;
        }
        const auto slide = static_cast<std::size_t>(
            record->event_time_us / slide_us);
        while (current_slide < slide) {
          spin_push(out, {current_slide, aggregator->take_slide()});
          ++current_slide;
        }
        aggregator->offer(*record);
      }
      while (current_slide <= final_slide) {
        spin_push(out, {current_slide, aggregator->take_slide()});
        ++current_slide;
      }
      out.close();
    });
  }

  // --- Window collector: joins per-worker slides in order and hands each
  // completed slide to the sink. Runs concurrently with the workers (true
  // pipelining).
  std::thread collector([&] {
    for (std::size_t slide = 0; slide <= final_slide; ++slide) {
      std::vector<estimation::StratumSummary> cells;
      for (std::size_t w = 0; w < parallelism; ++w) {
        auto& out = *out_rings[w];
        std::optional<SlideMsg> msg;
        while (!(msg = out.try_pop())) {
          if (out.drained()) break;
          std::this_thread::yield();
        }
        if (!msg) continue;  // worker ended early (no records at all)
        cells.insert(cells.end(),
                     std::make_move_iterator(msg->cells.begin()),
                     std::make_move_iterator(msg->cells.end()));
      }
      sink(slide, std::move(cells));
    }
  });

  // --- Source task: round-robin record distribution with backpressure.
  std::size_t next_worker = 0;
  for (const Record& record : records) {
    spin_push(*in_rings[next_worker], record);
    next_worker = (next_worker + 1) % parallelism;
  }
  for (auto& ring : in_rings) ring->close();

  for (auto& worker : workers) worker.join();
  collector.join();

  result.records_processed = records.size();
  result.wall_seconds = watch.seconds();
  return result;
}

}  // namespace streamapprox::engine::pipelined
