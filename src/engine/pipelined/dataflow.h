// Pipelined stream runtime (the Flink workflow of Fig. 3): records flow one
// at a time from a source task through parallel aggregation tasks into a
// window collector, connected by lock-free SPSC channels with backpressure.
// There is no batch formation and no stage barrier — an item is forwarded
// "as soon as the item is ready to be processed" (§2.2), which is where the
// Flink-based StreamApprox's throughput edge over the Spark-based one comes
// from in the paper's evaluation.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "engine/batched/micro_batch.h"  // StreamRunResult
#include "engine/record.h"
#include "engine/window.h"

namespace streamapprox::engine::pipelined {

/// Per-worker streaming aggregation operator: consumes records one at a
/// time and, at every window-slide boundary, surrenders the slide's sample
/// cells. Implementations: OASRS sampling operator (the operator the paper
/// adds to Flink, §4.2.2) and the exact pass-through used by the native
/// baseline — see aggregators.h.
class SlideAggregator {
 public:
  virtual ~SlideAggregator() = default;

  /// Consumes one record (record-at-a-time processing).
  virtual void offer(const Record& record) = 0;

  /// Ends the current slide: returns its cells and resets for the next one.
  virtual std::vector<estimation::StratumSummary> take_slide() = 0;
};

/// Creates one aggregator per parallel worker (worker index given).
using AggregatorFactory =
    std::function<std::unique_ptr<SlideAggregator>(std::size_t)>;

/// Dataflow configuration.
struct PipelineConfig {
  /// Parallel aggregation tasks (Flink operator parallelism).
  std::size_t parallelism = 4;
  /// Capacity of each inter-task channel (records); bounded => natural
  /// backpressure, as in Flink's credit-based flow control.
  std::size_t channel_capacity = 8192;
  /// Sliding-window geometry.
  WindowConfig window{};
};

/// Consumes the joined cells of one completed slide (called with strictly
/// increasing slide indices, empty slides included). Runs on the collector
/// thread; the callee owns any downstream state (e.g. a PipelineDriver).
/// Same contract as the batched engine's sink.
using SlideSink = batched::SlideSink;

/// Runs the pipelined dataflow over `records` (sorted by event time):
///   source -> p parallel aggregators -> window collector
/// Returns completed windows plus wall-clock throughput, measured across the
/// concurrently executing pipeline.
batched::StreamRunResult run_pipeline(const std::vector<Record>& records,
                                      const PipelineConfig& config,
                                      const AggregatorFactory& factory);

/// Same dataflow, but every completed slide's joined cells go to `sink`
/// instead of the built-in window assembler (the returned result carries no
/// windows). This is how core/systems.cpp routes the pipelined engine onto
/// the shared slide-lifecycle driver.
batched::StreamRunResult run_pipeline(const std::vector<Record>& records,
                                      const PipelineConfig& config,
                                      const AggregatorFactory& factory,
                                      const SlideSink& sink);

}  // namespace streamapprox::engine::pipelined
