// Models the per-record cost of the user query.
//
// In the paper's deployments each record passes through non-trivial
// user-level work (NetFlow field conversion, coordinate-to-borough mapping,
// serialisation into RDDs/operators). That per-record cost is exactly what
// approximate computing saves: the query runs over Y_i sampled items instead
// of C_i. We model it explicitly as a small, configurable amount of real CPU
// work (transcendental-function iterations) so that the benches' throughput
// reflects "records worth of query work avoided" honestly rather than
// through sleeps. rounds == 0 disables the model (pure framework overhead).
#pragma once

#include <cmath>
#include <cstdint>

namespace streamapprox::engine {

/// Per-record query work: `rounds` dependent floating-point operations.
struct QueryCost {
  std::uint32_t rounds = 0;

  /// Charges the work against `value` and returns it (dependency chain keeps
  /// the optimiser from deleting the loop; the returned value equals the
  /// input mathematically no-op-adjusted).
  double charge(double value) const noexcept {
    double x = value;
    for (std::uint32_t i = 0; i < rounds; ++i) {
      x += std::sin(static_cast<double>(i) + x) * 1e-12;
    }
    return x;
  }
};

}  // namespace streamapprox::engine
