#include "engine/window.h"

#include <stdexcept>

#include "engine/record.h"

namespace streamapprox::engine {

SlidingWindowAssembler::SlidingWindowAssembler(WindowConfig config)
    : config_(config), slides_per_window_(config.slides_per_window()) {
  if (config.slide_us <= 0 || config.size_us <= 0 ||
      config.size_us % config.slide_us != 0 ||
      config.slide_us > config.size_us) {
    throw std::invalid_argument(
        "SlidingWindowAssembler: need 0 < slide <= size, size % slide == 0");
  }
}

void SlidingWindowAssembler::set_base_slide(std::int64_t base_slide) {
  if (slide_index_ != 0) {
    throw std::logic_error(
        "SlidingWindowAssembler: set_base_slide after push_slide");
  }
  base_slide_ = base_slide;
}

std::optional<WindowResult> SlidingWindowAssembler::push_slide(
    std::vector<estimation::StratumSummary> cells) {
  recent_.push_back(std::move(cells));
  if (recent_.size() > slides_per_window_) recent_.pop_front();
  const std::size_t slide = slide_index_++;
  if (recent_.size() < slides_per_window_) return std::nullopt;

  WindowResult window;
  window.window_end_us =
      (base_slide_ + static_cast<std::int64_t>(slide) + 1) * config_.slide_us;
  window.window_start_us = window.window_end_us - config_.size_us;
  std::size_t total = 0;
  for (const auto& slide_cells : recent_) total += slide_cells.size();
  window.cells.reserve(total);
  for (const auto& slide_cells : recent_) {
    window.cells.insert(window.cells.end(), slide_cells.begin(),
                        slide_cells.end());
  }
  return window;
}

std::vector<std::pair<std::size_t, std::size_t>> split_by_interval(
    const std::vector<Record>& records, std::int64_t interval_us) {
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  if (interval_us <= 0) {
    ranges.emplace_back(0, records.size());
    return ranges;
  }
  std::size_t begin = 0;
  std::int64_t boundary = interval_us;
  for (std::size_t i = 0; i <= records.size(); ++i) {
    const bool at_end = i == records.size();
    while (!at_end && records[i].event_time_us >= boundary) {
      ranges.emplace_back(begin, i);
      begin = i;
      boundary += interval_us;
    }
    if (at_end) {
      ranges.emplace_back(begin, records.size());
      break;
    }
  }
  return ranges;
}

}  // namespace streamapprox::engine
