// Time-based sliding-window support shared by both stream processing models
// (paper §2.2: "both stream processing models support the time-based sliding
// window computation").
//
// Windows are aligned to multiples of the slide interval. The engines produce
// per-slide (or per-batch) *cells* — independent per-stratum sample summaries
// — and the SlidingWindowAssembler combines the last `size/slide` slides into
// a window result. Keeping cells separate (instead of merging same-stratum
// summaries across slides) keeps the Eq. 6/9 variance estimates exact even
// when sampling rates differ between slides.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "estimation/estimators.h"

namespace streamapprox::engine {

/// One emitted window: all sample cells whose slide fell inside the window.
struct WindowResult {
  std::int64_t window_start_us = 0;  ///< inclusive event-time start
  std::int64_t window_end_us = 0;    ///< exclusive event-time end
  /// Per-(slide × stratum × worker) sample summaries; estimators treat each
  /// as an independently sampled cell.
  std::vector<estimation::StratumSummary> cells;
};

/// Sliding-window configuration; the paper's defaults are size 10 s,
/// slide 5 s (§5.7, §6.1).
struct WindowConfig {
  std::int64_t size_us = 10'000'000;
  std::int64_t slide_us = 5'000'000;

  /// Number of slides per window (size must be a positive multiple of
  /// slide; enforced by the assembler).
  std::size_t slides_per_window() const noexcept {
    return slide_us > 0 ? static_cast<std::size_t>(size_us / slide_us) : 0;
  }
};

/// Builds full windows from consecutive slide cell-vectors.
class SlidingWindowAssembler {
 public:
  /// Creates an assembler; throws std::invalid_argument unless
  /// 0 < slide <= size and size % slide == 0.
  explicit SlidingWindowAssembler(WindowConfig config);

  /// Pushes the cells of the next slide (slide i covers event time
  /// [i*slide, (i+1)*slide)). Returns the completed window ending at this
  /// slide, or nullopt while the very first window is still filling.
  std::optional<WindowResult> push_slide(
      std::vector<estimation::StratumSummary> cells);

  /// Declares the global index of the first slide that will be pushed, so
  /// that window timestamps are absolute even for streams whose event times
  /// start far from zero (e.g. epoch-stamped taxi data). Must be called
  /// before the first push_slide; defaults to 0.
  void set_base_slide(std::int64_t base_slide);

  /// Number of slides pushed so far.
  std::size_t slides_pushed() const noexcept { return slide_index_; }

  /// The configuration in force.
  const WindowConfig& config() const noexcept { return config_; }

 private:
  WindowConfig config_;
  std::size_t slides_per_window_;
  std::int64_t base_slide_ = 0;
  std::size_t slide_index_ = 0;
  std::deque<std::vector<estimation::StratumSummary>> recent_;
};

/// Splits an event-time-sorted record span into consecutive interval ranges
/// of `interval_us` (used by the micro-batch runner to form batches and by
/// the pipelined runner to detect slide boundaries). Returned pairs are
/// [begin, end) indices into `records`; empty intervals produce empty ranges
/// so downstream indices stay aligned with wall-clock intervals.
std::vector<std::pair<std::size_t, std::size_t>> split_by_interval(
    const std::vector<struct Record>& records, std::int64_t interval_us);

}  // namespace streamapprox::engine
