#include "sketch/sketches.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace streamapprox::sketch {
namespace {

constexpr double kEulersNumber = 2.718281828459045;

// Folds (tag, value) into an order-insensitive digest accumulator: each cell
// is mixed independently and the results are summed, so the digest depends
// only on the multiset of cells, matching the merge semantics.
std::uint64_t fold(std::uint64_t acc, std::uint64_t tag,
                   std::uint64_t value) noexcept {
  return acc + mix64(tag * 0x9ddfea08eb382d69ULL + value);
}

}  // namespace

// ---------------------------------------------------------------------------
// CountMinSketch

std::size_t CountMinSketch::width_for(double epsilon) {
  if (!(epsilon > 0.0) || epsilon >= 1.0) {
    throw std::invalid_argument("count-min epsilon must be in (0, 1)");
  }
  return static_cast<std::size_t>(std::ceil(kEulersNumber / epsilon));
}

std::size_t CountMinSketch::depth_for(double delta) {
  if (!(delta > 0.0) || delta >= 1.0) {
    throw std::invalid_argument("count-min delta must be in (0, 1)");
  }
  return std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(std::log(1.0 / delta))));
}

CountMinSketch::CountMinSketch(std::size_t width, std::size_t depth,
                               std::uint64_t seed)
    : width_(width), depth_(depth), seed_(seed) {
  if (width_ == 0 || depth_ == 0) {
    throw std::invalid_argument("count-min width and depth must be positive");
  }
  counters_.assign(width_ * depth_, 0);
}

std::size_t CountMinSketch::index(std::size_t row,
                                  std::uint64_t key) const noexcept {
  const std::uint64_t h = mix64(key ^ mix64(seed_ + row));
  return row * width_ + static_cast<std::size_t>(h % width_);
}

void CountMinSketch::update(std::uint64_t key, std::uint64_t count) {
  for (std::size_t row = 0; row < depth_; ++row) {
    counters_[index(row, key)] += count;
  }
  total_ += count;
}

std::uint64_t CountMinSketch::estimate(std::uint64_t key) const {
  std::uint64_t best = counters_[index(0, key)];
  for (std::size_t row = 1; row < depth_; ++row) {
    best = std::min(best, counters_[index(row, key)]);
  }
  return best;
}

void CountMinSketch::merge(const CountMinSketch& other) {
  if (width_ != other.width_ || depth_ != other.depth_ ||
      seed_ != other.seed_) {
    throw std::invalid_argument("count-min merge: incompatible sketches");
  }
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += other.counters_[i];
  }
  total_ += other.total_;
}

std::uint64_t CountMinSketch::digest() const noexcept {
  std::uint64_t acc = mix64(seed_ ^ (width_ * 131 + depth_));
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    if (counters_[i] != 0) acc = fold(acc, i, counters_[i]);
  }
  return mix64(acc ^ total_);
}

// ---------------------------------------------------------------------------
// HyperLogLog

int HyperLogLog::precision_for(double epsilon) {
  if (!(epsilon > 0.0)) {
    throw std::invalid_argument("hyperloglog epsilon must be positive");
  }
  for (int p = 4; p <= 18; ++p) {
    const double error = 1.04 / std::sqrt(static_cast<double>(1u << p));
    if (error <= epsilon) return p;
  }
  return 18;
}

HyperLogLog::HyperLogLog(int precision, std::uint64_t seed)
    : precision_(precision), seed_(seed) {
  if (precision_ < 4 || precision_ > 18) {
    throw std::invalid_argument("hyperloglog precision must be in [4, 18]");
  }
  registers_.assign(std::size_t{1} << precision_, 0);
}

void HyperLogLog::add(std::uint64_t key) {
  const std::uint64_t h = mix64(key ^ mix64(seed_));
  const std::size_t idx = static_cast<std::size_t>(h >> (64 - precision_));
  const std::uint64_t rest = h << precision_;
  const std::uint8_t rank = static_cast<std::uint8_t>(
      rest == 0 ? 64 - precision_ + 1 : std::countl_zero(rest) + 1);
  registers_[idx] = std::max(registers_[idx], rank);
}

double HyperLogLog::standard_error() const noexcept {
  return 1.04 / std::sqrt(static_cast<double>(registers_.size()));
}

double HyperLogLog::estimate() const {
  const double m = static_cast<double>(registers_.size());
  double inverse_sum = 0.0;
  std::size_t zeros = 0;
  for (const std::uint8_t reg : registers_) {
    inverse_sum += std::ldexp(1.0, -static_cast<int>(reg));
    if (reg == 0) ++zeros;
  }
  double alpha = 0.7213 / (1.0 + 1.079 / m);
  if (registers_.size() == 16) alpha = 0.673;
  if (registers_.size() == 32) alpha = 0.697;
  if (registers_.size() == 64) alpha = 0.709;
  const double raw = alpha * m * m / inverse_sum;
  if (raw <= 2.5 * m && zeros > 0) {
    return m * std::log(m / static_cast<double>(zeros));
  }
  return raw;
}

void HyperLogLog::merge(const HyperLogLog& other) {
  if (precision_ != other.precision_ || seed_ != other.seed_) {
    throw std::invalid_argument("hyperloglog merge: incompatible sketches");
  }
  for (std::size_t i = 0; i < registers_.size(); ++i) {
    registers_[i] = std::max(registers_[i], other.registers_[i]);
  }
}

std::uint64_t HyperLogLog::digest() const noexcept {
  std::uint64_t acc = mix64(seed_ ^ static_cast<std::uint64_t>(precision_));
  for (std::size_t i = 0; i < registers_.size(); ++i) {
    if (registers_[i] != 0) acc = fold(acc, i, registers_[i]);
  }
  return mix64(acc);
}

// ---------------------------------------------------------------------------
// QuantileSketch

QuantileSketch::QuantileSketch(double alpha) : alpha_(alpha) {
  if (!(alpha > 0.0) || alpha >= 1.0) {
    throw std::invalid_argument("quantile alpha must be in (0, 1)");
  }
  gamma_ = (1.0 + alpha) / (1.0 - alpha);
  log_gamma_ = std::log(gamma_);
}

std::int32_t QuantileSketch::bucket_index(double magnitude) const {
  return static_cast<std::int32_t>(
      std::ceil(std::log(magnitude) / log_gamma_));
}

double QuantileSketch::representative(std::int32_t index) const {
  // Midpoint (harmonic) of bucket (γ^(i−1), γ^i]: 2γ^i / (γ+1) — within α
  // relative error of every value in the bucket.
  return 2.0 * std::pow(gamma_, static_cast<double>(index)) / (gamma_ + 1.0);
}

void QuantileSketch::update(double value) {
  ++count_;
  // Magnitudes below the smallest representable bucket boundary collapse to
  // the zero bucket (their absolute value is ≤ 1e-12; relative error on such
  // answers is meaningless at double precision anyway).
  const double magnitude = std::abs(value);
  if (magnitude <= 1e-12) {
    ++zero_count_;
  } else if (value > 0.0) {
    ++positive_[bucket_index(magnitude)];
  } else {
    ++negative_[bucket_index(magnitude)];
  }
}

double QuantileSketch::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target =
      q * static_cast<double>(count_ - 1);  // rank in [0, count)
  std::uint64_t cumulative = 0;
  // Ascending value order: most-negative first (descending |v| index), then
  // zeros, then positives ascending.
  for (auto it = negative_.rbegin(); it != negative_.rend(); ++it) {
    cumulative += it->second;
    if (static_cast<double>(cumulative) > target) {
      return -representative(it->first);
    }
  }
  cumulative += zero_count_;
  if (static_cast<double>(cumulative) > target) return 0.0;
  for (const auto& [index, bucket_count] : positive_) {
    cumulative += bucket_count;
    if (static_cast<double>(cumulative) > target) {
      return representative(index);
    }
  }
  // Numerically unreachable; return the largest representative for safety.
  return positive_.empty() ? 0.0 : representative(positive_.rbegin()->first);
}

void QuantileSketch::merge(const QuantileSketch& other) {
  if (alpha_ != other.alpha_) {
    throw std::invalid_argument("quantile merge: incompatible sketches");
  }
  count_ += other.count_;
  zero_count_ += other.zero_count_;
  for (const auto& [index, bucket_count] : other.positive_) {
    positive_[index] += bucket_count;
  }
  for (const auto& [index, bucket_count] : other.negative_) {
    negative_[index] += bucket_count;
  }
}

std::uint64_t QuantileSketch::digest() const noexcept {
  std::uint64_t acc = mix64(std::bit_cast<std::uint64_t>(alpha_));
  for (const auto& [index, bucket_count] : positive_) {
    acc = fold(acc, static_cast<std::uint64_t>(index) * 2 + 2, bucket_count);
  }
  for (const auto& [index, bucket_count] : negative_) {
    acc = fold(acc, static_cast<std::uint64_t>(index) * 2 + 3, bucket_count);
  }
  return mix64(acc ^ (count_ * 0x9e3779b97f4a7c15ULL) ^ zero_count_);
}

}  // namespace streamapprox::sketch
