#include "sketch/sketch_query.h"

#include <algorithm>
#include <cmath>

namespace streamapprox::sketch {

std::uint64_t sketch_key(const SketchSpec& spec,
                         const engine::Record& record) {
  switch (spec.key) {
    case SketchSpec::KeySource::kValueInt:
      return static_cast<std::uint64_t>(std::llround(record.value));
    case SketchSpec::KeySource::kStratum:
    default:
      return static_cast<std::uint64_t>(record.stratum);
  }
}

SlideSketchState SlideSketchState::make(const SketchSpec& spec) {
  SlideSketchState state;
  state.spec = spec;
  switch (spec.kind) {
    case SketchSpec::Kind::kCountMin:
      state.count_min =
          CountMinSketch::for_error(spec.epsilon, spec.delta, spec.seed);
      break;
    case SketchSpec::Kind::kHyperLogLog:
      state.hll = HyperLogLog::for_error(spec.epsilon, spec.seed);
      break;
    case SketchSpec::Kind::kQuantile:
      state.quantile = QuantileSketch(spec.epsilon);
      break;
  }
  return state;
}

void SlideSketchState::absorb(const engine::Record* records, std::size_t n) {
  seen += n;
  switch (spec.kind) {
    case SketchSpec::Kind::kCountMin:
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t key = sketch_key(spec, records[i]);
        count_min->update(key);
        candidates.insert(key);
      }
      break;
    case SketchSpec::Kind::kHyperLogLog:
      for (std::size_t i = 0; i < n; ++i) {
        hll->add(sketch_key(spec, records[i]));
      }
      break;
    case SketchSpec::Kind::kQuantile:
      for (std::size_t i = 0; i < n; ++i) {
        quantile->update(records[i].value);
      }
      break;
  }
}

void SlideSketchState::merge(const SlideSketchState& other) {
  seen += other.seen;
  if (count_min && other.count_min) {
    count_min->merge(*other.count_min);
    candidates.insert(other.candidates.begin(), other.candidates.end());
  }
  if (hll && other.hll) hll->merge(*other.hll);
  if (quantile && other.quantile) quantile->merge(*other.quantile);
}

SlideSketches::SlideSketches(const SketchPlan& plan) {
  states_.reserve(plan.specs.size());
  for (const SketchSpec& spec : plan.specs) {
    states_.push_back(SlideSketchState::make(spec));
  }
  std::sort(states_.begin(), states_.end(),
            [](const SlideSketchState& a, const SlideSketchState& b) {
              return a.spec.id < b.spec.id;
            });
}

void SlideSketches::absorb(const engine::Record* records, std::size_t n) {
  if (n == 0) return;
  seen_ += n;
  for (SlideSketchState& state : states_) {
    state.absorb(records, n);
  }
}

void SlideSketches::merge(const SlideSketches& other) {
  seen_ += other.seen_;
  for (const SlideSketchState& theirs : other.states_) {
    const auto it = std::lower_bound(
        states_.begin(), states_.end(), theirs.spec.id,
        [](const SlideSketchState& s, std::uint64_t id) {
          return s.spec.id < id;
        });
    if (it != states_.end() && it->spec.id == theirs.spec.id) {
      it->merge(theirs);
    } else {
      states_.insert(it, theirs);
    }
  }
}

const SlideSketchState* SlideSketches::find(std::uint64_t spec_id) const {
  const auto it = std::lower_bound(
      states_.begin(), states_.end(), spec_id,
      [](const SlideSketchState& s, std::uint64_t id) {
        return s.spec.id < id;
      });
  if (it != states_.end() && it->spec.id == spec_id) return &*it;
  return nullptr;
}

}  // namespace streamapprox::sketch
