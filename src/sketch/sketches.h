// Mergeable sketch data structures for the non-linear query classes the
// OASRS sample cannot answer: heavy hitters (Count-Min), distinct counts
// (HyperLogLog) and quantiles (log-boundary bucket sketch).
//
// Every sketch here is sized from a per-query error target (width/depth from
// ε/δ for Count-Min, register count from ε for HyperLogLog, relative bucket
// width α for quantiles) and merges EXACTLY: merge() is commutative and
// associative, and a sketch built from any partition / interleaving of a
// stream equals the sketch built from the whole stream. That property is
// load-bearing — worker-local sketches merge at slide close through the same
// path as OasrsSampler::merge(), and the sharded / work-stealing runtimes
// must reproduce the sequential answers bit-for-bit even though record →
// worker assignment is nondeterministic. For the same reason the quantile
// sketch uses deterministic log-spaced buckets (DDSketch-style) rather than
// KLL's randomized compaction, whose state depends on arrival order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace streamapprox::sketch {

/// SplitMix64 finalizer — the stateless 64-bit mixer used to derive the
/// per-row Count-Min hashes and the HyperLogLog hash from a key and a seed.
constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Count-Min sketch (Cormode & Muthukrishnan): depth rows of width counters;
/// update adds to one counter per row, estimate takes the row minimum. With
/// width = ceil(e/ε) and depth = ceil(ln(1/δ)), each point estimate
/// overcounts by at most ε·N with probability ≥ 1−δ (N = total updates) and
/// never undercounts. Merging is element-wise counter addition — exact.
class CountMinSketch {
 public:
  /// Smallest width whose additive error guarantee is ε·N.
  static std::size_t width_for(double epsilon);
  /// Smallest depth whose failure probability is at most δ.
  static std::size_t depth_for(double delta);

  CountMinSketch(std::size_t width, std::size_t depth, std::uint64_t seed);

  /// Convenience: sized directly from the (ε, δ) target.
  static CountMinSketch for_error(double epsilon, double delta,
                                  std::uint64_t seed) {
    return CountMinSketch(width_for(epsilon), depth_for(delta), seed);
  }

  void update(std::uint64_t key, std::uint64_t count = 1);

  /// Point estimate of key's frequency: true count ≤ estimate, and
  /// estimate ≤ true count + ε·total() with probability ≥ 1−δ.
  std::uint64_t estimate(std::uint64_t key) const;

  /// Total weight of all updates (N in the guarantee).
  std::uint64_t total() const noexcept { return total_; }

  std::size_t width() const noexcept { return width_; }
  std::size_t depth() const noexcept { return depth_; }

  /// Element-wise counter addition. Throws std::invalid_argument when the
  /// shapes or seeds differ (merging is only defined for sketches built
  /// from the same spec).
  void merge(const CountMinSketch& other);

  /// Order-insensitive structural digest (for property tests).
  std::uint64_t digest() const noexcept;

  friend bool operator==(const CountMinSketch&,
                         const CountMinSketch&) = default;

 private:
  std::size_t index(std::size_t row, std::uint64_t key) const noexcept;

  std::size_t width_ = 0;
  std::size_t depth_ = 0;
  std::uint64_t seed_ = 0;
  std::uint64_t total_ = 0;
  std::vector<std::uint64_t> counters_;  // depth_ rows of width_ counters
};

/// HyperLogLog (Flajolet et al.): 2^p registers each holding the maximum
/// leading-zero rank seen in its substream. Standard error ≈ 1.04/√(2^p);
/// the small-range regime uses linear counting. Merging is element-wise
/// register max — exact.
class HyperLogLog {
 public:
  /// Smallest precision p (register count 2^p) whose standard error
  /// 1.04/√(2^p) is at most ε. Clamped to [4, 18].
  static int precision_for(double epsilon);

  explicit HyperLogLog(int precision, std::uint64_t seed);

  static HyperLogLog for_error(double epsilon, std::uint64_t seed) {
    return HyperLogLog(precision_for(epsilon), seed);
  }

  void add(std::uint64_t key);

  /// Estimated number of distinct keys added.
  double estimate() const;

  int precision() const noexcept { return precision_; }
  std::size_t register_count() const noexcept { return registers_.size(); }

  /// Relative standard error of estimate() (1.04/√m).
  double standard_error() const noexcept;

  /// Element-wise register max. Throws std::invalid_argument on
  /// precision/seed mismatch.
  void merge(const HyperLogLog& other);

  std::uint64_t digest() const noexcept;

  friend bool operator==(const HyperLogLog&, const HyperLogLog&) = default;

 private:
  int precision_ = 0;
  std::uint64_t seed_ = 0;
  std::vector<std::uint8_t> registers_;
};

/// Quantile sketch over log-spaced buckets (DDSketch-style): bucket i covers
/// (γ^(i−1), γ^i] with γ = (1+α)/(1−α), so any reported quantile of the
/// positive (or negative, via a mirrored store) values has relative value
/// error at most α — deterministically, not just in expectation. Merging
/// adds bucket counts — exact. This fills the KLL slot of the query family;
/// KLL's randomized compaction was rejected because its state depends on
/// arrival order, which would break sharded ≡ sequential bit-identity.
class QuantileSketch {
 public:
  explicit QuantileSketch(double alpha);

  void update(double value);

  /// Value at quantile q ∈ [0, 1] (midpoint of the covering bucket, so the
  /// relative error vs. the exact quantile value is ≤ α for non-zero
  /// answers). Returns 0 when empty.
  double quantile(double q) const;

  std::uint64_t count() const noexcept { return count_; }
  double alpha() const noexcept { return alpha_; }

  /// Bucket-count addition. Throws std::invalid_argument on α mismatch.
  void merge(const QuantileSketch& other);

  std::uint64_t digest() const noexcept;

  friend bool operator==(const QuantileSketch&,
                         const QuantileSketch&) = default;

 private:
  std::int32_t bucket_index(double magnitude) const;
  double representative(std::int32_t index) const;

  double alpha_ = 0.0;
  double gamma_ = 0.0;
  double log_gamma_ = 0.0;
  std::uint64_t count_ = 0;
  std::uint64_t zero_count_ = 0;
  std::map<std::int32_t, std::uint64_t> positive_;
  std::map<std::int32_t, std::uint64_t> negative_;  // keyed by index of |v|
};

}  // namespace streamapprox::sketch
