#include "sketch/sketch_sink.h"

#include <algorithm>

namespace streamapprox::sketch {

SketchSink::SketchSink(std::string name, SketchSpec spec,
                       std::vector<double> quantiles)
    : core::QuerySink(std::move(name)),
      spec_(spec),
      quantiles_(std::move(quantiles)) {}

void SketchSink::bind(const engine::WindowConfig& window, double default_z) {
  core::QuerySink::bind(window, default_z);
  slides_per_window_ = window.slides_per_window();
  ring_.clear();
}

void SketchSink::on_slide(
    const std::vector<estimation::StratumSummary>& cells,
    const sampling::StratifiedSample<engine::Record>* sample,
    const SlideSketches* sketches) {
  (void)sample;
  SlideEntry entry;
  if (sketches != nullptr) {
    if (const SlideSketchState* state = sketches->find(spec_.id)) {
      // Complete only when this spec's state digested everything the slide
      // received — a spec attached after some workers already opened the
      // slide has seen < total and must not contribute a partial answer.
      entry.complete = state->seen == sketches->seen();
      entry.state = *state;
    } else {
      entry.complete = sketches->seen() == 0;
      entry.state = SlideSketchState::make(spec_);
    }
  } else {
    // Cells-only paths (external pre-summarised slides) carry no record
    // stream for the sketch to digest: the slide is complete only if it was
    // genuinely empty, e.g. watermark-padded gaps.
    std::uint64_t slide_seen = 0;
    for (const estimation::StratumSummary& cell : cells) {
      slide_seen += cell.seen;
    }
    entry.complete = slide_seen == 0;
    entry.state = SlideSketchState::make(spec_);
  }
  ring_.push_back(std::move(entry));
  if (ring_.size() > slides_per_window_) ring_.erase(ring_.begin());
}

core::QueryOutput SketchSink::evaluate(const engine::WindowResult& window) {
  core::QueryOutput output;
  output.name = name_;
  output.z = resolved_z_;
  output.estimate.window_start_us = window.window_start_us;
  output.estimate.window_end_us = window.window_end_us;

  bool complete = ring_.size() == slides_per_window_;
  for (const SlideEntry& entry : ring_) complete = complete && entry.complete;
  if (!complete) return output;  // no payload until fully observed

  SlideSketchState merged = SlideSketchState::make(spec_);
  for (const SlideEntry& entry : ring_) merged.merge(entry.state);

  SketchAnswer answer;
  answer.kind = spec_.kind;
  answer.epsilon = spec_.epsilon;
  answer.stream_count = merged.seen;
  double point = 0.0;
  switch (spec_.kind) {
    case SketchSpec::Kind::kCountMin: {
      answer.heavy_hitters.reserve(merged.candidates.size());
      for (const std::uint64_t key : merged.candidates) {
        answer.heavy_hitters.emplace_back(key, merged.count_min->estimate(key));
      }
      // Deterministic order: estimate desc, key asc — ties cannot depend on
      // the (unordered) candidate-set iteration order.
      std::sort(answer.heavy_hitters.begin(), answer.heavy_hitters.end(),
                [](const auto& a, const auto& b) {
                  if (a.second != b.second) return a.second > b.second;
                  return a.first < b.first;
                });
      if (answer.heavy_hitters.size() > spec_.top_k) {
        answer.heavy_hitters.resize(spec_.top_k);
      }
      point = static_cast<double>(merged.count_min->total());
      break;
    }
    case SketchSpec::Kind::kHyperLogLog:
      answer.distinct = merged.hll->estimate();
      point = answer.distinct;
      break;
    case SketchSpec::Kind::kQuantile:
      answer.quantiles.reserve(quantiles_.size());
      for (const double q : quantiles_) {
        answer.quantiles.emplace_back(q, merged.quantile->quantile(q));
      }
      point = merged.quantile->quantile(0.5);
      break;
  }
  // The sketch digests the full stream, so population == sample_size and the
  // sampling variance is zero; the sketch's own error is the ε carried in
  // the answer, not a confidence interval.
  output.estimate.overall.estimate = point;
  output.estimate.overall.population = merged.seen;
  output.estimate.overall.sample_size = merged.seen;
  output.sketch = std::move(answer);
  return output;
}

std::unique_ptr<core::QuerySink> SketchSink::clone() const {
  auto copy = std::make_unique<SketchSink>(name_, spec_, quantiles_);
  copy->z_ = z_;
  copy->target_ = target_;
  return copy;
}

}  // namespace streamapprox::sketch
