// Sketch query plumbing: the per-query collection spec, the per-slide
// worker-local sketch state that travels next to the OASRS sampler, and the
// answer payload a sketch sink reports per window.
//
// Data flow mirrors the sampler's exactly (see docs/architecture.md): every
// worker keeps one SlideSketches per open slide, absorbs the FULL record
// stream into it (sketches see every record — sampling happens beside them,
// not in front of them), and at slide close the per-worker states merge
// through the same path as OasrsSampler::merge(). Because every sketch
// merges exactly, the merged state — and hence every sketch answer — is
// bit-identical between the sequential, sharded and work-stealing runtimes.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_set>
#include <vector>

#include "engine/record.h"
#include "sketch/sketches.h"

namespace streamapprox::sketch {

/// What one sketch query collects. Built by the sink, completed by the
/// driver at registration (the driver assigns `id`, unique per driver, so
/// worker-local states and sink can find each other after merges).
struct SketchSpec {
  enum class Kind : std::uint8_t {
    kCountMin,     ///< top-K heavy hitters + frequency estimates
    kHyperLogLog,  ///< distinct-key count
    kQuantile,     ///< value quantiles
  };
  /// What the sketch keys on. Quantile sketches always digest the record
  /// value and ignore this field.
  enum class KeySource : std::uint8_t {
    kStratum,   ///< the record's stratum id (flow, protocol, borough)
    kValueInt,  ///< llround(record.value) — e.g. distinct observed sizes
  };

  Kind kind = Kind::kCountMin;
  KeySource key = KeySource::kStratum;
  /// Error target: Count-Min additive bound ε·N (width = ⌈e/ε⌉),
  /// HyperLogLog relative standard error, quantile relative value bound α.
  double epsilon = 0.01;
  /// Count-Min per-estimate failure probability (depth = ⌈ln(1/δ)⌉).
  double delta = 0.01;
  /// Heavy hitters reported per window (Count-Min only).
  std::size_t top_k = 10;
  /// Hash seed; rows/registers derive from it alone, so states built for
  /// the same spec anywhere in the run merge exactly.
  std::uint64_t seed = 2017;
  /// Driver-assigned identity (0 = unregistered).
  std::uint64_t id = 0;
};

/// Extracts the sketch key from a record per the spec's KeySource.
std::uint64_t sketch_key(const SketchSpec& spec, const engine::Record& record);

/// One window's evaluated sketch answer (the payload on QueryOutput).
/// Equality is exact — the sharded-equivalence tests compare these
/// bit-for-bit against the sequential run.
struct SketchAnswer {
  SketchSpec::Kind kind = SketchSpec::Kind::kCountMin;
  /// Records the sketch digested over the window (the N of the ε·N bound).
  std::uint64_t stream_count = 0;
  /// The configured error target the answer was sized for.
  double epsilon = 0.0;
  /// Count-Min: (key, estimated count), ordered by estimate desc, key asc.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> heavy_hitters;
  /// HyperLogLog: estimated distinct keys.
  double distinct = 0.0;
  /// Quantile: (q, value at q) for the probe grid.
  std::vector<std::pair<double, double>> quantiles;

  friend bool operator==(const SketchAnswer&, const SketchAnswer&) = default;
};

/// Worker-local per-slide state for ONE spec: the sketch plus the exact
/// candidate-key set Count-Min needs to enumerate heavy hitters (a Count-Min
/// alone can estimate any key but enumerate none). The candidate set is
/// exact and merged by union — any bounded worker-local pruning (space-
/// saving, local top-K heaps) would make the state depend on which worker
/// saw which record and break sharded ≡ sequential bit-identity; top-K
/// selection happens post-merge at the sink instead.
struct SlideSketchState {
  SketchSpec spec;
  /// Records this state absorbed (compared against the container total to
  /// detect specs attached after some workers already opened the slide).
  std::uint64_t seen = 0;
  std::optional<CountMinSketch> count_min;
  std::unordered_set<std::uint64_t> candidates;
  std::optional<HyperLogLog> hll;
  std::optional<QuantileSketch> quantile;

  /// Fresh empty state provisioned for the spec.
  static SlideSketchState make(const SketchSpec& spec);

  void absorb(const engine::Record* records, std::size_t n);
  void merge(const SlideSketchState& other);
};

/// The immutable set of sketch specs in force, rebuilt by the driver at
/// registration boundaries and snapshotted (shared_ptr) by workers when they
/// open a slide.
struct SketchPlan {
  std::vector<SketchSpec> specs;
};

/// All sketch state one worker keeps for one open slide — the sketch-side
/// sibling of the per-slide OasrsSampler. Default-constructed instances are
/// empty merge targets (the merger's accumulator).
class SlideSketches {
 public:
  SlideSketches() = default;
  explicit SlideSketches(const SketchPlan& plan);

  /// Digests a run of records into every state (and the container total).
  void absorb(const engine::Record* records, std::size_t n);

  /// Folds another slide's states in (union of specs; matching spec ids
  /// merge exactly). Commutative and associative.
  void merge(const SlideSketches& other);

  /// State for a spec id, or nullptr when no worker collected it.
  const SlideSketchState* find(std::uint64_t spec_id) const;

  /// Total records absorbed across all contributors. A spec's state is
  /// COMPLETE for the slide iff state->seen == seen(): anything less means
  /// the spec attached after part of the slide was already digested.
  std::uint64_t seen() const noexcept { return seen_; }

  bool empty() const noexcept { return states_.empty(); }

 private:
  std::vector<SlideSketchState> states_;  // ordered by spec id
  std::uint64_t seen_ = 0;
};

}  // namespace streamapprox::sketch
