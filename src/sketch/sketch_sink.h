// The QuerySink that answers sketch-backed query classes — heavy hitters,
// distinct counts, quantiles — over the same assembled windows as the
// aggregate/histogram sinks. Registered through QuerySet::sketch() or
// attached/detached live through StreamApprox::attach_query/detach_query
// like any other sink.
//
// Unlike sample-backed sinks the sketch digests EVERY record of the stream
// (the driver feeds worker-local per-slide SlideSketches on the ingest path
// and merges them at slide close), so its window answers are deterministic
// and bit-identical across the sequential, sharded and work-stealing
// runtimes. The sink keeps the merged slide states of the last window's
// worth of slides (the HistogramSink ring idiom) and merges them per window.
#pragma once

#include <vector>

#include "core/query.h"
#include "sketch/sketch_query.h"

namespace streamapprox::sketch {

class SketchSink : public core::QuerySink {
 public:
  /// `quantiles` is the probe grid reported by kQuantile specs (ignored by
  /// the other kinds).
  SketchSink(std::string name, SketchSpec spec,
             std::vector<double> quantiles = {0.5, 0.95, 0.99});

  const SketchSpec& spec() const noexcept { return spec_; }

  void bind(const engine::WindowConfig& window, double default_z) override;
  void on_slide(const std::vector<estimation::StratumSummary>& cells,
                const sampling::StratifiedSample<engine::Record>* sample,
                const SlideSketches* sketches) override;
  core::QueryOutput evaluate(const engine::WindowResult& window) override;

  /// Sketch error is structural (ε/δ sizing), not sample-driven — sketch
  /// sinks never register an adaptive-feedback controller.
  std::optional<double> accuracy_target(
      std::optional<double> fallback) const override {
    (void)fallback;
    return std::nullopt;
  }

  std::unique_ptr<core::QuerySink> clone() const override;

  SketchSpec* mutable_sketch_spec() override { return &spec_; }

 private:
  struct SlideEntry {
    /// True when the slide's sketch state digested every record of the
    /// slide. False for slides closed before this sink attached mid-slide
    /// and for cells-only harness paths; any incomplete slide in the ring
    /// withholds the window's sketch payload.
    bool complete = false;
    SlideSketchState state;
  };

  SketchSpec spec_;
  std::vector<double> quantiles_;
  std::size_t slides_per_window_ = 1;
  std::vector<SlideEntry> ring_;  // oldest first, at most slides_per_window_
};

}  // namespace streamapprox::sketch
