// Policies translating a *total* per-interval sample budget into per-stratum
// reservoir capacities N_i (paper Algorithm 3's getSampleSize(sampleSize, S)).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace streamapprox::sampling {

/// How a total sample budget is divided among the currently known strata.
enum class AllocationPolicy {
  /// Every stratum gets budget / #strata. This is OASRS's default: capacity
  /// is independent of stratum size, which is what protects small strata and
  /// removes any need to know arrival rates in advance.
  kEqual,
  /// Strata get capacity proportional to their observed arrival counts from
  /// the previous interval (what Spark STS effectively does). Needs history;
  /// kept for comparison/ablation.
  kProportional,
};

/// Computes per-stratum capacities. `previous_counts` supplies last-interval
/// C_i values for kProportional (may be empty, in which case allocation falls
/// back to equal). Every stratum receives at least 1 slot while budget >=
/// #strata; a zero budget yields all-zero capacities.
std::vector<std::size_t> allocate_capacities(
    std::size_t total_budget, std::size_t num_strata, AllocationPolicy policy,
    const std::vector<std::uint64_t>& previous_counts = {});

}  // namespace streamapprox::sampling
