// Reservoir sampling — paper Algorithm 1 (Vitter's Algorithm R) plus the
// skip-ahead optimisation (Li's Algorithm L) used as an ablation, and the
// distributed two-reservoir merge used by OASRS's synchronisation-free
// distributed execution (paper §3.2, "Distributed execution").
#pragma once

#include <cassert>
#include <cstdint>
#include <cmath>
#include <utility>
#include <vector>

#include "common/rng.h"

namespace streamapprox::sampling {

/// Uniform fixed-capacity reservoir over an unbounded stream (Algorithm R,
/// exactly the paper's Algorithm 1): the first N items fill the reservoir;
/// afterwards item i is accepted with probability N/i and replaces a uniform
/// random slot. Every stream prefix's items end up in the reservoir with
/// equal probability N/i.
template <typename T>
class ReservoirSampler {
 public:
  /// Creates a reservoir holding at most `capacity` items, drawing randomness
  /// from `seed`.
  explicit ReservoirSampler(std::size_t capacity, std::uint64_t seed = 1)
      : capacity_(capacity), rng_(seed) {
    items_.reserve(capacity_);
  }

  /// Offers one stream item to the sampler.
  void offer(const T& item) {
    ++seen_;
    if (items_.size() < capacity_) {
      items_.push_back(item);
      return;
    }
    if (capacity_ == 0) return;
    // Accept with probability N/i, then displace a uniform random slot.
    const std::uint64_t j = rng_.uniform_int(seen_);
    if (j < capacity_) items_[j] = item;
  }

  /// Number of items offered so far (the paper's per-interval counter C_i).
  std::uint64_t seen() const noexcept { return seen_; }

  /// The current sample (Y_i = items().size() <= capacity).
  const std::vector<T>& items() const noexcept { return items_; }

  /// Reservoir capacity N_i.
  std::size_t capacity() const noexcept { return capacity_; }

  /// Expansion weight per paper Eq. 1: C_i/N_i when the stratum over-filled,
  /// else 1 (every received item is in the sample and represents itself).
  double weight() const noexcept {
    if (items_.empty()) return 1.0;
    return seen_ > items_.size()
               ? static_cast<double>(seen_) /
                     static_cast<double>(items_.size())
               : 1.0;
  }

  /// Clears sample and counter for the next time interval. The capacity may
  /// be changed at the same time (adaptive feedback re-tunes it, §4.2).
  void reset(std::size_t new_capacity) {
    capacity_ = new_capacity;
    items_.clear();
    items_.reserve(capacity_);
    seen_ = 0;
  }

  /// Clears sample and counter, keeping the capacity.
  void reset() { reset(capacity_); }

  /// Shrinks the capacity mid-stream, discarding uniformly random items if
  /// the sample currently exceeds it. Statistically sound: a uniform random
  /// subsample of a uniform random sample is itself uniform, and Algorithm R
  /// keeps uniformity when continuing with the smaller N. Used by OASRS when
  /// a newly discovered stratum dilutes the shared budget (Algorithm 3's
  /// getSampleSize over a growing stratum set). Growing mid-stream is NOT
  /// offered — it would bias toward recent items; growth applies at reset.
  void shrink_capacity(std::size_t new_capacity) {
    if (new_capacity >= capacity_) return;
    capacity_ = new_capacity;
    while (items_.size() > capacity_) {
      const std::uint64_t idx = rng_.uniform_int(items_.size());
      items_[idx] = std::move(items_.back());
      items_.pop_back();
    }
  }

  /// Moves the sample out (leaving the reservoir empty but counters intact).
  std::vector<T> take_items() noexcept { return std::move(items_); }

  /// Merges `other` into this reservoir without re-scanning either stream:
  /// the result approximates a uniform sample of the union population of
  /// size min(capacity, combined sample size). Each output slot chooses its
  /// source with probability proportional to the source's STREAM count
  /// (binomial allocation of slots — the standard distributed reservoir
  /// merge, unbiased in expectation), then takes a uniformly random
  /// not-yet-taken item from that source.
  void merge(const ReservoirSampler& other) {
    if (other.seen_ == 0) return;
    if (seen_ == 0) {
      items_ = other.items_;
      seen_ = other.seen_;
      return;
    }
    std::vector<T> mine = std::move(items_);
    std::vector<T> theirs = other.items_;
    const double share_mine =
        static_cast<double>(seen_) /
        static_cast<double>(seen_ + other.seen_);
    std::vector<T> merged;
    const std::size_t target =
        std::min(capacity_, mine.size() + theirs.size());
    merged.reserve(target);
    while (merged.size() < target && (!mine.empty() || !theirs.empty())) {
      const bool pick_mine =
          !mine.empty() && (theirs.empty() || rng_.uniform() < share_mine);
      auto& source = pick_mine ? mine : theirs;
      const std::uint64_t idx = rng_.uniform_int(source.size());
      merged.push_back(std::move(source[idx]));
      source[idx] = std::move(source.back());
      source.pop_back();
    }
    items_ = std::move(merged);
    seen_ += other.seen_;
  }

 private:
  std::size_t capacity_;
  std::vector<T> items_;
  std::uint64_t seen_ = 0;
  streamapprox::Rng rng_;
};

/// Algorithm L reservoir: statistically identical output to Algorithm R but
/// skips ahead geometrically instead of drawing one random number per item,
/// so the per-item cost after warm-up is O(1) amortised with a tiny constant.
/// Provided as the paper's natural "optimisation" ablation (bench
/// micro_samplers measures the gap).
template <typename T>
class FastReservoirSampler {
 public:
  /// See ReservoirSampler.
  explicit FastReservoirSampler(std::size_t capacity, std::uint64_t seed = 1)
      : capacity_(capacity), rng_(seed) {
    items_.reserve(capacity_);
  }

  /// Offers one stream item.
  void offer(const T& item) {
    ++seen_;
    if (items_.size() < capacity_) {
      items_.push_back(item);
      if (items_.size() == capacity_) prime();
      return;
    }
    if (capacity_ == 0) return;
    if (seen_ <= next_accept_) {
      if (seen_ == next_accept_) {
        items_[rng_.uniform_int(capacity_)] = item;
        advance();
      }
      return;
    }
    // next_accept_ fell behind (can only happen after reset); re-prime.
    prime();
  }

  /// Items offered so far.
  std::uint64_t seen() const noexcept { return seen_; }
  /// Current sample.
  const std::vector<T>& items() const noexcept { return items_; }
  /// Capacity N.
  std::size_t capacity() const noexcept { return capacity_; }
  /// Weight per Eq. 1.
  double weight() const noexcept {
    if (items_.empty()) return 1.0;
    return seen_ > items_.size()
               ? static_cast<double>(seen_) /
                     static_cast<double>(items_.size())
               : 1.0;
  }

  /// Clears state for the next interval.
  void reset() {
    items_.clear();
    items_.reserve(capacity_);
    seen_ = 0;
    w_ = 1.0;
    next_accept_ = 0;
  }

 private:
  void prime() {
    w_ = 1.0;
    next_accept_ = seen_;
    advance();
  }

  void advance() {
    // w *= U^(1/k); skip Geometric(log U / log(1-w)) items.
    w_ *= std::exp(std::log(positive_uniform()) /
                   static_cast<double>(capacity_));
    const double skip =
        std::floor(std::log(positive_uniform()) / std::log(1.0 - w_));
    next_accept_ += static_cast<std::uint64_t>(skip) + 1;
  }

  double positive_uniform() {
    double u = 0.0;
    do {
      u = rng_.uniform();
    } while (u <= 0.0);
    return u;
  }

  std::size_t capacity_;
  std::vector<T> items_;
  std::uint64_t seen_ = 0;
  double w_ = 1.0;
  std::uint64_t next_accept_ = 0;
  streamapprox::Rng rng_;
};

}  // namespace streamapprox::sampling
