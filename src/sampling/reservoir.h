// Reservoir sampling — paper Algorithm 1 (Vitter's Algorithm R) and the
// skip-ahead production kernel (Li's Algorithm L extended with a bulk-offer
// path), plus the distributed two-reservoir merge used by OASRS's
// synchronisation-free distributed execution (paper §3.2, "Distributed
// execution"). The two classes expose the same surface so OasrsSampler can
// swap them behind a runtime flag (OasrsConfig::skip_ahead).
#pragma once

#include <cassert>
#include <cstdint>
#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "common/rng.h"

namespace streamapprox::sampling {

/// Uniform fixed-capacity reservoir over an unbounded stream (Algorithm R,
/// exactly the paper's Algorithm 1): the first N items fill the reservoir;
/// afterwards item i is accepted with probability N/i and replaces a uniform
/// random slot. Every stream prefix's items end up in the reservoir with
/// equal probability N/i. One RNG draw per arriving item — the bit-exact
/// reference path FastReservoirSampler is measured (and tested) against.
template <typename T>
class ReservoirSampler {
 public:
  /// Creates a reservoir holding at most `capacity` items, drawing randomness
  /// from `seed`.
  explicit ReservoirSampler(std::size_t capacity, std::uint64_t seed = 1)
      : capacity_(capacity), rng_(seed) {
    items_.reserve(capacity_);
  }

  /// Offers one stream item to the sampler.
  void offer(const T& item) {
    ++seen_;
    if (items_.size() < capacity_) {
      items_.push_back(item);
      return;
    }
    if (capacity_ == 0) return;
    // Accept with probability N/i, then displace a uniform random slot.
    const std::uint64_t j = rng_.uniform_int(seen_);
    if (j < capacity_) items_[j] = item;
  }

  /// Offers a contiguous run of items. Bit-exact with calling offer() on
  /// each item in order (Algorithm R draws per item either way); returns the
  /// number of items written into the reservoir so callers can keep
  /// accept/skip counters without re-deriving them.
  std::size_t offer_run(const T* run, std::size_t n) {
    std::size_t accepted = 0;
    for (std::size_t i = 0; i < n; ++i) {
      ++seen_;
      if (items_.size() < capacity_) {
        items_.push_back(run[i]);
        ++accepted;
        continue;
      }
      if (capacity_ == 0) continue;
      const std::uint64_t j = rng_.uniform_int(seen_);
      if (j < capacity_) {
        items_[j] = run[i];
        ++accepted;
      }
    }
    return accepted;
  }

  /// Number of items offered so far (the paper's per-interval counter C_i).
  std::uint64_t seen() const noexcept { return seen_; }

  /// The current sample (Y_i = items().size() <= capacity).
  const std::vector<T>& items() const noexcept { return items_; }

  /// Reservoir capacity N_i.
  std::size_t capacity() const noexcept { return capacity_; }

  /// Expansion weight per paper Eq. 1: C_i/N_i when the stratum over-filled,
  /// else 1 (every received item is in the sample and represents itself).
  double weight() const noexcept {
    if (items_.empty()) return 1.0;
    return seen_ > items_.size()
               ? static_cast<double>(seen_) /
                     static_cast<double>(items_.size())
               : 1.0;
  }

  /// Clears sample and counter for the next time interval. The capacity may
  /// be changed at the same time (adaptive feedback re-tunes it, §4.2).
  void reset(std::size_t new_capacity) {
    capacity_ = new_capacity;
    items_.clear();
    items_.reserve(capacity_);
    seen_ = 0;
  }

  /// Clears sample and counter, keeping the capacity.
  void reset() { reset(capacity_); }

  /// Shrinks the capacity mid-stream, discarding uniformly random items if
  /// the sample currently exceeds it. Statistically sound: a uniform random
  /// subsample of a uniform random sample is itself uniform, and Algorithm R
  /// keeps uniformity when continuing with the smaller N. Used by OASRS when
  /// a newly discovered stratum dilutes the shared budget (Algorithm 3's
  /// getSampleSize over a growing stratum set). Growing mid-stream is NOT
  /// offered — it would bias toward recent items; growth applies at reset.
  void shrink_capacity(std::size_t new_capacity) {
    if (new_capacity >= capacity_) return;
    capacity_ = new_capacity;
    while (items_.size() > capacity_) {
      const std::uint64_t idx = rng_.uniform_int(items_.size());
      items_[idx] = std::move(items_.back());
      items_.pop_back();
    }
  }

  /// Moves the sample out (leaving the reservoir empty but counters intact).
  std::vector<T> take_items() noexcept { return std::move(items_); }

  /// Merges another reservoir's (sample, stream count) into this one without
  /// re-scanning either stream: the result approximates a uniform sample of
  /// the union population of size min(capacity, combined sample size). Each
  /// output slot chooses its source with probability proportional to the
  /// source's STREAM count (binomial allocation of slots — the standard
  /// distributed reservoir merge, unbiased in expectation), then takes a
  /// uniformly random not-yet-taken item from that source. Public so
  /// OasrsSampler can merge across reservoir implementations.
  void merge_from(std::vector<T> theirs, std::uint64_t their_seen) {
    if (their_seen == 0) return;
    if (seen_ == 0) {
      items_ = std::move(theirs);
      seen_ = their_seen;
      return;
    }
    std::vector<T> mine = std::move(items_);
    const double share_mine =
        static_cast<double>(seen_) /
        static_cast<double>(seen_ + their_seen);
    std::vector<T> merged;
    const std::size_t target =
        std::min(capacity_, mine.size() + theirs.size());
    merged.reserve(target);
    while (merged.size() < target && (!mine.empty() || !theirs.empty())) {
      const bool pick_mine =
          !mine.empty() && (theirs.empty() || rng_.uniform() < share_mine);
      auto& source = pick_mine ? mine : theirs;
      const std::uint64_t idx = rng_.uniform_int(source.size());
      merged.push_back(std::move(source[idx]));
      source[idx] = std::move(source.back());
      source.pop_back();
    }
    items_ = std::move(merged);
    seen_ += their_seen;
  }

  /// Merge preserving `other` (copies its sample).
  void merge(const ReservoirSampler& other) {
    if (other.seen_ == 0) return;
    merge_from(other.items_, other.seen_);
  }

  /// Consuming merge: when the caller owns `other` (the sharded merger's
  /// slide-close path does), its sample moves instead of copying. Draws the
  /// same randomness as the copying overload.
  void merge(ReservoirSampler&& other) {
    if (other.seen_ == 0) return;
    merge_from(std::move(other.items_), other.seen_);
  }

 private:
  std::size_t capacity_;
  std::vector<T> items_;
  std::uint64_t seen_ = 0;
  streamapprox::Rng rng_;
};

/// Skip-ahead reservoir (Li's Algorithm L): statistically identical output
/// distribution to Algorithm R, but instead of one RNG draw per item it
/// maintains the acceptance-probability state w and jumps a geometric number
/// of guaranteed-rejected positions between acceptances — O(1) amortised per
/// item with a tiny constant, and O(accepted) rather than O(arrived) via
/// offer_run, which never even reads the skipped records of a run.
///
/// Full ReservoirSampler parity (reset / shrink_capacity / take_items /
/// merge) with one extra invariant: any operation that invalidates the skip
/// state (shrink, merge, take) clears `primed_`, and the next saturated
/// offer re-primes it EXACTLY — the acceptance probability W after s items
/// at capacity k is Beta(k, s-k+1)-distributed (1 minus the k-th largest of
/// s uniforms), which prime() samples directly. Beta(k, 1) is U^(1/k), so
/// the fill-time prime is the same formula Algorithm L uses.
template <typename T>
class FastReservoirSampler {
 public:
  /// See ReservoirSampler.
  explicit FastReservoirSampler(std::size_t capacity, std::uint64_t seed = 1)
      : capacity_(capacity),
        inv_capacity_(capacity > 0 ? 1.0 / static_cast<double>(capacity)
                                   : 0.0),
        rng_(seed) {
    items_.reserve(capacity_);
  }

  /// Offers one stream item. Bit-exact with offer_run over the same items:
  /// both walk the identical (prime, accept-slot, advance) draw sequence.
  void offer(const T& item) {
    if (items_.size() < capacity_) {
      ++seen_;
      items_.push_back(item);
      if (items_.size() == capacity_) prime();
      return;
    }
    if (capacity_ == 0) {
      ++seen_;
      return;
    }
    if (!primed_) prime();
    ++seen_;
    if (seen_ == next_accept_) {
      items_[rng_.uniform_int(capacity_)] = item;
      advance();
    }
  }

  /// The bulk-offer kernel: offers a contiguous run of n items occupying
  /// stream positions [seen+1, seen+n]. A saturated reservoir walks its
  /// geometric acceptance positions inside that range and touches ONLY those
  /// records — the skipped ones are never read — then advances `seen_` by n
  /// in one step, so C_i / W_i bookkeeping is exactly what n offer() calls
  /// would have produced. Returns the number of items written.
  std::size_t offer_run(const T* run, std::size_t n) {
    std::size_t accepted = 0;
    std::size_t i = 0;
    while (i < n && items_.size() < capacity_) {
      ++seen_;
      items_.push_back(run[i]);
      if (items_.size() == capacity_) prime();
      ++i;
      ++accepted;
    }
    if (i == n) return accepted;
    if (capacity_ == 0) {
      seen_ += static_cast<std::uint64_t>(n - i);
      return accepted;
    }
    if (!primed_) prime();
    const std::uint64_t base = seen_;
    const std::uint64_t end = base + static_cast<std::uint64_t>(n - i);
    // The acceptance loop keeps the skip state in locals: writes into
    // items_ may alias the members under TBAA, so without the hoist every
    // iteration reloads and spills w_/next_accept_.
    std::uint64_t next = next_accept_;
    double w = w_;
    T* const slots = items_.data();
    while (next <= end) {
      slots[rng_.uniform_int(capacity_)] =
          run[i + static_cast<std::size_t>(next - base - 1)];
      ++accepted;
      advance_local(rng_, inv_capacity_, w, next);
    }
    next_accept_ = next;
    w_ = w;
    seen_ = end;
    return accepted;
  }

  /// Items offered so far.
  std::uint64_t seen() const noexcept { return seen_; }
  /// Current sample.
  const std::vector<T>& items() const noexcept { return items_; }
  /// Capacity N.
  std::size_t capacity() const noexcept { return capacity_; }
  /// Weight per Eq. 1.
  double weight() const noexcept {
    if (items_.empty()) return 1.0;
    return seen_ > items_.size()
               ? static_cast<double>(seen_) /
                     static_cast<double>(items_.size())
               : 1.0;
  }

  /// Clears sample, counter and skip state for the next interval; the
  /// capacity may change at the same time (adaptive feedback, §4.2).
  void reset(std::size_t new_capacity) {
    capacity_ = new_capacity;
    inv_capacity_ = capacity_ > 0 ? 1.0 / static_cast<double>(capacity_) : 0.0;
    items_.clear();
    items_.reserve(capacity_);
    seen_ = 0;
    w_ = 1.0;
    next_accept_ = 0;
    primed_ = false;
  }

  /// Clears state, keeping the capacity.
  void reset() { reset(capacity_); }

  /// Shrinks the capacity mid-stream, discarding uniformly random items
  /// (see ReservoirSampler::shrink_capacity for why this stays uniform).
  /// The skip state was tuned to the old capacity, so it is invalidated and
  /// re-primed from the Beta(k, s-k+1) law at the next saturated offer.
  void shrink_capacity(std::size_t new_capacity) {
    if (new_capacity >= capacity_) return;
    capacity_ = new_capacity;
    inv_capacity_ = capacity_ > 0 ? 1.0 / static_cast<double>(capacity_) : 0.0;
    while (items_.size() > capacity_) {
      const std::uint64_t idx = rng_.uniform_int(items_.size());
      items_[idx] = std::move(items_.back());
      items_.pop_back();
    }
    primed_ = false;
  }

  /// Moves the sample out (counters intact). The skip state dies with the
  /// sample; refilling re-primes.
  std::vector<T> take_items() noexcept {
    primed_ = false;
    return std::move(items_);
  }

  /// Distributed merge — same binomial slot allocation as
  /// ReservoirSampler::merge_from, plus skip-state invalidation.
  void merge_from(std::vector<T> theirs, std::uint64_t their_seen) {
    if (their_seen == 0) return;
    primed_ = false;
    if (seen_ == 0) {
      items_ = std::move(theirs);
      seen_ = their_seen;
      return;
    }
    std::vector<T> mine = std::move(items_);
    const double share_mine =
        static_cast<double>(seen_) /
        static_cast<double>(seen_ + their_seen);
    std::vector<T> merged;
    const std::size_t target =
        std::min(capacity_, mine.size() + theirs.size());
    merged.reserve(target);
    while (merged.size() < target && (!mine.empty() || !theirs.empty())) {
      const bool pick_mine =
          !mine.empty() && (theirs.empty() || rng_.uniform() < share_mine);
      auto& source = pick_mine ? mine : theirs;
      const std::uint64_t idx = rng_.uniform_int(source.size());
      merged.push_back(std::move(source[idx]));
      source[idx] = std::move(source.back());
      source.pop_back();
    }
    items_ = std::move(merged);
    seen_ += their_seen;
  }

  /// Merge preserving `other`.
  void merge(const FastReservoirSampler& other) {
    if (other.seen_ == 0) return;
    merge_from(other.items_, other.seen_);
  }

  /// Consuming merge (the slide-close path).
  void merge(FastReservoirSampler&& other) {
    if (other.seen_ == 0) return;
    merge_from(std::move(other.items_), other.seen_);
  }

 private:
  static double draw_positive(streamapprox::Rng& rng) {
    double u = 0.0;
    do {
      u = rng.uniform();
    } while (u <= 0.0);
    return u;
  }

  /// next += Geometric(log U / log(1-w)) + 1, guarding the double extremes:
  /// w rounded up to 1 accepts the very next item; w rounded down to 0 (or
  /// an astronomically long skip) parks the reservoir — correct to within
  /// probabilities far below double resolution. Static over caller-held
  /// state so the bulk kernel can keep (w, next) in registers.
  static void schedule_local(streamapprox::Rng& rng, double w,
                             std::uint64_t& next) {
    if (w >= 1.0) {
      ++next;
      return;
    }
    if (w <= 0.0) {
      next = std::numeric_limits<std::uint64_t>::max();
      return;
    }
    const double skip = std::floor(std::log(draw_positive(rng)) /
                                   std::log1p(-w));
    if (!(skip < 1e18)) {
      next = std::numeric_limits<std::uint64_t>::max();
      return;
    }
    next += static_cast<std::uint64_t>(skip) + 1;
  }

  /// One Algorithm L step after an acceptance: w *= U^(1/k), then skip a
  /// Geometric(w) run of guaranteed rejections.
  static void advance_local(streamapprox::Rng& rng, double inv_capacity,
                            double& w, std::uint64_t& next) {
    w *= std::exp(std::log(draw_positive(rng)) * inv_capacity);
    schedule_local(rng, w, next);
  }

  /// (Re)establishes the skip state for the current (seen_, capacity_).
  /// At fill time (seen_ == k) this draws W ~ Beta(k, 1) = U^(1/k) — the
  /// classic Algorithm L prime. After a shrink / merge / take it draws the
  /// exact conditional law W ~ Beta(k, s-k+1): the acceptance probability of
  /// Algorithm L after s items is distributed as 1 minus the k-th largest of
  /// s uniforms, so re-priming from it leaves every future stream position's
  /// acceptance probability at exactly N/i — no bias from the restart.
  void prime() {
    if (seen_ <= capacity_) {
      w_ = std::exp(std::log(draw_positive(rng_)) * inv_capacity_);
    } else {
      const double g1 = rng_.gamma(static_cast<double>(capacity_), 1.0);
      const double g2 = rng_.gamma(
          static_cast<double>(seen_ - capacity_ + 1), 1.0);
      w_ = g1 / (g1 + g2);
    }
    next_accept_ = seen_;
    schedule_local(rng_, w_, next_accept_);
    primed_ = true;
  }

  /// Per-record twin of the bulk loop's advance_local call.
  void advance() { advance_local(rng_, inv_capacity_, w_, next_accept_); }

  std::size_t capacity_;
  double inv_capacity_;
  std::vector<T> items_;
  std::uint64_t seen_ = 0;
  double w_ = 1.0;
  std::uint64_t next_accept_ = 0;
  /// False whenever (w_, next_accept_) does not describe the current
  /// (seen_, capacity_) — after construction, reset, shrink, merge, take.
  bool primed_ = false;
  streamapprox::Rng rng_;
};

}  // namespace streamapprox::sampling
