// STS — Spark's stratified sampling baseline (`sampleByKey` /
// `sampleByKeyExact`, §4.1): group the batch by stratum, then run SRS within
// each group with the same per-stratum fraction, so each stratum contributes
// proportionally to its size. In the full system the groupBy is executed as a
// real shuffle through the batched engine (synchronisation + data movement);
// this header provides the per-group sampling stage that runs after it.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "sampling/sample.h"
#include "sampling/scasrs.h"

namespace streamapprox::sampling {

/// Groups `batch` by stratum key — the data arrangement `groupBy(strata)`
/// produces. KeyFn maps item -> StratumId.
template <typename T, typename KeyFn>
std::unordered_map<StratumId, std::vector<T>> group_by_stratum(
    const std::vector<T>& batch, KeyFn key) {
  std::unordered_map<StratumId, std::vector<T>> groups;
  for (const T& item : batch) groups[key(item)].push_back(item);
  return groups;
}

/// Samples each stratum of pre-grouped data with the same fraction.
///
/// `exact == true` models sampleByKeyExact (ScaSRS per stratum: exact sample
/// sizes, requires the waitlist sort); `exact == false` models sampleByKey
/// (per-stratum Bernoulli: sizes exact only in expectation). Weights are
/// C_i / Y_i per stratum, so downstream estimation is identical to OASRS.
template <typename T>
StratifiedSample<T> sts_sample(
    const std::unordered_map<StratumId, std::vector<T>>& groups,
    double fraction, streamapprox::Rng& rng, bool exact = true) {
  StratifiedSample<T> result;
  result.strata.reserve(groups.size());
  for (const auto& [stratum, items] : groups) {
    SrsResult<T> srs = exact ? scasrs_sample(items, fraction, rng)
                             : bernoulli_sample(items, fraction, rng);
    StratumSample<T> s;
    s.stratum = stratum;
    s.seen = items.size();
    s.weight = srs.weight;
    s.items = std::move(srs.items);
    result.strata.push_back(std::move(s));
  }
  return result;
}

/// One-call convenience that performs the grouping and the per-stratum
/// sampling locally (no engine shuffle) — used by unit tests and by the
/// sampler microbenchmarks to isolate algorithmic cost from shuffle cost.
template <typename T, typename KeyFn>
StratifiedSample<T> sts_sample_local(const std::vector<T>& batch, KeyFn key,
                                     double fraction, streamapprox::Rng& rng,
                                     bool exact = true) {
  return sts_sample(group_by_stratum(batch, key), fraction, rng, exact);
}

}  // namespace streamapprox::sampling
