// ScaSRS — "Scalable Simple Random Sampling" (Meng, ICML'13), the algorithm
// behind Apache Spark's RDD `sample`. This is the paper's Spark-based SRS
// baseline (§4.1): every item gets a U(0,1) key; keys below a low threshold p
// are accepted outright, keys above a high threshold q are rejected outright,
// and the "waitlist" in between is SORTED to top the sample up to exactly k
// items. The waitlist sort is the cost the paper identifies as SRS's
// bottleneck, so we keep it as a real std::sort.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "sampling/sample.h"

namespace streamapprox::sampling {

/// Result of a batch simple-random-sample: uniformly selected items plus the
/// single expansion weight n/k shared by all of them.
template <typename T>
struct SrsResult {
  std::vector<T> items;
  std::uint64_t population = 0;  ///< n: batch size sampled from
  double weight = 1.0;           ///< n / |items|
};

/// ScaSRS threshold pair (accept-below p, reject-above q) for drawing k of n
/// with failure probability delta (failure = needing a second pass).
struct ScaSrsThresholds {
  double p = 0.0;
  double q = 1.0;
};

/// Computes the ScaSRS thresholds for sampling probability `fraction` over a
/// batch of `n` items (Meng'13, Theorems 1-3; delta defaults to 1e-4 as in
/// the Spark implementation).
inline ScaSrsThresholds scasrs_thresholds(double fraction, std::uint64_t n,
                                          double delta = 1e-4) {
  ScaSrsThresholds t;
  if (n == 0 || fraction <= 0.0) return {0.0, 0.0};
  if (fraction >= 1.0) return {1.0, 1.0};
  const double nd = static_cast<double>(n);
  const double gamma1 = -std::log(delta) / nd;
  const double gamma2 = -2.0 * std::log(delta) / (3.0 * nd);
  t.p = std::max(0.0, fraction + gamma2 -
                          std::sqrt(gamma2 * gamma2 +
                                    3.0 * gamma2 * fraction));
  t.q = std::min(1.0, fraction + gamma1 +
                          std::sqrt(gamma1 * gamma1 +
                                    2.0 * gamma1 * fraction));
  return t;
}

/// Draws floor(fraction*n) items uniformly at random from `batch` using the
/// ScaSRS two-threshold scheme. Deterministic given `rng` state.
template <typename T>
SrsResult<T> scasrs_sample(const std::vector<T>& batch, double fraction,
                           streamapprox::Rng& rng) {
  SrsResult<T> result;
  result.population = batch.size();
  if (batch.empty() || fraction <= 0.0) return result;
  if (fraction >= 1.0) {
    result.items = batch;
    result.weight = 1.0;
    return result;
  }

  const auto k = static_cast<std::size_t>(
      std::max<double>(1.0, std::floor(fraction *
                                       static_cast<double>(batch.size()))));
  const auto thresholds = scasrs_thresholds(fraction, batch.size());

  std::vector<T> accepted;
  accepted.reserve(k + k / 8 + 8);
  std::vector<std::pair<double, T>> waitlist;
  for (const T& item : batch) {
    const double u = rng.uniform();
    if (u < thresholds.p) {
      accepted.push_back(item);
    } else if (u < thresholds.q) {
      waitlist.emplace_back(u, item);
    }
  }

  if (accepted.size() < k) {
    // The expensive step Spark pays on every micro-batch: order the waitlist
    // by key and take the smallest keys until the sample is full.
    std::sort(waitlist.begin(), waitlist.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (auto& [u, item] : waitlist) {
      if (accepted.size() >= k) break;
      accepted.push_back(std::move(item));
    }
  } else if (accepted.size() > k) {
    accepted.resize(k);  // overshoot beyond delta bound; trim
  }

  result.weight = accepted.empty()
                      ? 1.0
                      : static_cast<double>(batch.size()) /
                            static_cast<double>(accepted.size());
  result.items = std::move(accepted);
  return result;
}

/// Plain Bernoulli sampling (Spark's non-exact `sample(false, f)` fallback):
/// each item kept independently with probability `fraction`. Cheaper than
/// ScaSRS (no sort) but the sample size is only k in expectation.
template <typename T>
SrsResult<T> bernoulli_sample(const std::vector<T>& batch, double fraction,
                              streamapprox::Rng& rng) {
  SrsResult<T> result;
  result.population = batch.size();
  if (batch.empty() || fraction <= 0.0) return result;
  if (fraction >= 1.0) {
    result.items = batch;
    return result;
  }
  for (const T& item : batch) {
    if (rng.bernoulli(fraction)) result.items.push_back(item);
  }
  result.weight = result.items.empty()
                      ? 1.0
                      : static_cast<double>(batch.size()) /
                            static_cast<double>(result.items.size());
  return result;
}

}  // namespace streamapprox::sampling
