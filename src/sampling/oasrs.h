// Online Adaptive Stratified Reservoir Sampling — the paper's primary
// contribution (Algorithm 3). One reservoir per stratum, strata discovered on
// the fly, per-interval counters C_i, weights W_i per Eq. 1, no knowledge of
// sub-stream statistics required and no synchronisation between workers.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "sampling/allocation.h"
#include "sampling/reservoir.h"
#include "sampling/sample.h"

namespace streamapprox::sampling {

/// Configuration for an OasrsSampler.
struct OasrsConfig {
  /// Total per-interval sample budget (split across strata by `policy`).
  /// When 0, `per_stratum_capacity` is used directly for every stratum.
  std::size_t total_budget = 0;
  /// Fixed reservoir capacity per stratum (used when total_budget == 0, the
  /// paper's "fixed-size reservoir per stratum" presentation in Fig. 2).
  std::size_t per_stratum_capacity = 64;
  /// Budget-splitting policy when total_budget > 0.
  AllocationPolicy policy = AllocationPolicy::kEqual;
  /// RNG seed; each stratum forks its own generator deterministically.
  std::uint64_t seed = 0x0a5125ULL;
};

/// OASRS sampler over items of type T.
///
/// `KeyFn` maps an item to its StratumId (the sub-stream / source). A new
/// stratum encountered mid-interval immediately receives its own reservoir —
/// OASRS "does not overlook any sub-streams regardless of their popularity"
/// (§3.2). Call take() at the end of every time interval (batch or window
/// slide) to obtain the (sample, W) pair of Algorithm 3 and reset counters
/// for the next interval.
template <typename T, typename KeyFn = std::function<StratumId(const T&)>>
class OasrsSampler {
 public:
  /// Creates a sampler. `key` extracts an item's stratum.
  OasrsSampler(OasrsConfig config, KeyFn key)
      : config_(config), key_(std::move(key)), rng_(config.seed) {}

  /// Offers one arriving item (paper Algorithm 3 inner loop): updates the
  /// stratum counter C_i and the stratum reservoir.
  void offer(const T& item) { reservoir_for(key_(item)).offer(item); }

  /// Offers a contiguous run of items, caching the reservoir lookup across
  /// consecutive same-stratum items — the batched data plane's hot path
  /// (partition batches arrive grouped by sub-stream, so runs are long).
  /// Pointers into the reservoir map are stable across rehashes, so the
  /// cache survives mid-batch stratum discovery.
  void offer_batch(const T* items, std::size_t count) {
    ReservoirSampler<T>* cached = nullptr;
    StratumId cached_id{};
    for (std::size_t i = 0; i < count; ++i) {
      const StratumId id = key_(items[i]);
      if (cached == nullptr || id != cached_id) {
        cached = &reservoir_for(id);
        cached_id = id;
      }
      cached->offer(items[i]);
    }
  }

  /// Convenience overload over a whole vector.
  void offer_batch(const std::vector<T>& items) {
    offer_batch(items.data(), items.size());
  }

  /// Ends the current interval: returns every stratum's (items, C_i, W_i)
  /// and resets all reservoirs and counters. Strata are reported in first-
  /// seen order for deterministic output. Under the kProportional policy,
  /// next-interval capacities follow this interval's observed arrival counts
  /// (the STS-style allocation, kept for ablation); the default kEqual split
  /// keeps every stratum's capacity identical, which is what makes OASRS
  /// robust to arrival-rate fluctuation.
  StratifiedSample<T> take() {
    StratifiedSample<T> result;
    result.strata.reserve(order_.size());
    std::vector<std::uint64_t> counts;
    counts.reserve(order_.size());
    for (const StratumId id : order_) {
      auto& reservoir = reservoirs_.at(id);
      counts.push_back(reservoir.seen());
      StratumSample<T> s;
      s.stratum = id;
      s.seen = reservoir.seen();
      s.weight = reservoir.weight();
      s.items = reservoir.take_items();
      if (s.seen > 0) result.strata.push_back(std::move(s));
    }
    const auto capacities =
        config_.total_budget > 0
            ? allocate_capacities(config_.total_budget, order_.size(),
                                  config_.policy, counts)
            : std::vector<std::size_t>(order_.size(),
                                       config_.per_stratum_capacity);
    max_capacity_ = 0;
    for (std::size_t i = 0; i < order_.size(); ++i) {
      reservoirs_.at(order_[i]).reset(capacities[i]);
      max_capacity_ = std::max(max_capacity_, capacities[i]);
    }
    return result;
  }

  /// Per-stratum view without consuming (copies items).
  StratifiedSample<T> snapshot() const {
    StratifiedSample<T> result;
    result.strata.reserve(order_.size());
    for (const StratumId id : order_) {
      const auto& reservoir = reservoirs_.at(id);
      if (reservoir.seen() == 0) continue;
      StratumSample<T> s;
      s.stratum = id;
      s.seen = reservoir.seen();
      s.weight = reservoir.weight();
      s.items = reservoir.items();
      result.strata.push_back(std::move(s));
    }
    return result;
  }

  /// Adjusts the total budget (adaptive feedback, §4.2: "increase the sample
  /// size ... in the subsequent epochs"). Empty reservoirs re-tune at once;
  /// reservoirs already filling this interval shrink immediately if the
  /// budget fell, and pick up a larger budget at the next reset — growing a
  /// live reservoir would bias it toward recent items.
  void set_total_budget(std::size_t budget) {
    config_.total_budget = budget;
    if (budget == 0) return;
    const std::size_t capacity = capacity_for(order_.size());
    for (auto& [id, reservoir] : reservoirs_) {
      if (reservoir.seen() == 0) {
        reservoir.reset(capacity);
      } else {
        reservoir.shrink_capacity(capacity);
      }
    }
    if (!reservoirs_.empty()) max_capacity_ = capacity;
  }

  /// Adjusts the fixed per-stratum capacity for subsequent intervals.
  void set_per_stratum_capacity(std::size_t capacity) {
    config_.per_stratum_capacity = capacity;
    if (config_.total_budget == 0) {
      // Applied on next reset (take()); reservoirs currently filling keep
      // their capacity so mid-interval statistics stay coherent.
    }
  }

  /// Number of strata discovered so far.
  std::size_t stratum_count() const noexcept { return reservoirs_.size(); }

  /// Total items offered in the current interval.
  std::uint64_t interval_seen() const noexcept {
    std::uint64_t total = 0;
    for (const auto& [id, reservoir] : reservoirs_) total += reservoir.seen();
    return total;
  }

  /// Merges the per-stratum reservoirs of `other` into this sampler —
  /// the distributed execution path (§3.2): each of w workers runs a local
  /// OASRS over its share of the stream; merging concatenates the statistics
  /// without any synchronisation during sampling itself.
  void merge(OasrsSampler& other) {
    for (StratumId id : other.order_) {
      auto& theirs = other.reservoirs_.at(id);
      auto it = reservoirs_.find(id);
      if (it == reservoirs_.end()) {
        const std::size_t capacity = stratum_capacity();
        it = reservoirs_
                 .emplace(id,
                          ReservoirSampler<T>(capacity, rng_.fork().next()))
                 .first;
        order_.push_back(id);
        max_capacity_ = std::max(max_capacity_, capacity);
      }
      it->second.merge(theirs);
    }
  }

 private:
  /// Looks up (or discovers) the reservoir of stratum `id`.
  ReservoirSampler<T>& reservoir_for(const StratumId id) {
    auto it = reservoirs_.find(id);
    if (it == reservoirs_.end()) {
      // New stratum discovered mid-interval: the shared budget is re-split
      // over the larger stratum set, shrinking existing reservoirs (a
      // uniform subsample stays uniform) so the total never exceeds the
      // budget. The pass is skipped when no existing reservoir exceeds the
      // new share (every shrink_capacity call would be a no-op), tracked via
      // the high-water capacity — so S-stratum discovery costs O(S)
      // reservoir visits overall once the integer share budget/S stops
      // changing, instead of O(S²) always.
      order_.push_back(id);
      const std::size_t capacity = capacity_for(order_.size());
      if (config_.total_budget > 0 && capacity < max_capacity_) {
        for (auto& [existing_id, reservoir] : reservoirs_) {
          reservoir.shrink_capacity(capacity);
        }
      }
      // Whether the pass ran (everything shrunk to `capacity`) or was
      // skipped (everything already at or below it), `capacity` is now the
      // high water. Assigning — not max-combining — is what lets it tighten
      // as shares shrink; a monotone high water would stop the skip firing.
      max_capacity_ = capacity;
      it = reservoirs_
               .emplace(id, ReservoirSampler<T>(capacity, rng_.fork().next()))
               .first;
    }
    return it->second;
  }

  /// Per-stratum capacity when `strata` strata share the budget.
  std::size_t capacity_for(std::size_t strata) const {
    if (config_.total_budget == 0) return config_.per_stratum_capacity;
    if (strata == 0) strata = 1;
    return std::max<std::size_t>(config_.total_budget / strata,
                                 config_.total_budget > 0 ? 1 : 0);
  }

  std::size_t stratum_capacity() const { return capacity_for(order_.size()); }

  OasrsConfig config_;
  KeyFn key_;
  streamapprox::Rng rng_;
  std::unordered_map<StratumId, ReservoirSampler<T>> reservoirs_;
  std::vector<StratumId> order_;
  /// High-water reservoir capacity: when a new stratum's share is not below
  /// it, no reservoir can need shrinking and the re-split pass is skipped.
  std::size_t max_capacity_ = 0;
};

/// Deduces a convenient OASRS type for items that expose `.stratum`.
template <typename T>
auto make_oasrs(OasrsConfig config) {
  auto key = [](const T& item) { return static_cast<StratumId>(item.stratum); };
  return OasrsSampler<T, decltype(key)>(config, key);
}

}  // namespace streamapprox::sampling
