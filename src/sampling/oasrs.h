// Online Adaptive Stratified Reservoir Sampling — the paper's primary
// contribution (Algorithm 3). One reservoir per stratum, strata discovered on
// the fly, per-interval counters C_i, weights W_i per Eq. 1, no knowledge of
// sub-stream statistics required and no synchronisation between workers.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <utility>
#include <variant>
#include <vector>

#include "common/rng.h"
#include "sampling/allocation.h"
#include "sampling/reservoir.h"
#include "sampling/sample.h"

namespace streamapprox::sampling {

/// Configuration for an OasrsSampler.
struct OasrsConfig {
  /// Total per-interval sample budget (split across strata by `policy`).
  /// When 0, `per_stratum_capacity` is used directly for every stratum.
  std::size_t total_budget = 0;
  /// Fixed reservoir capacity per stratum (used when total_budget == 0, the
  /// paper's "fixed-size reservoir per stratum" presentation in Fig. 2).
  std::size_t per_stratum_capacity = 64;
  /// Budget-splitting policy when total_budget > 0.
  AllocationPolicy policy = AllocationPolicy::kEqual;
  /// RNG seed; each stratum forks its own generator deterministically.
  std::uint64_t seed = 0x0a5125ULL;
  /// Use the skip-ahead sampling kernel (FastReservoirSampler, Algorithm L)
  /// per stratum: distribution-identical to Algorithm R but O(accepted)
  /// instead of O(arrived) on saturated reservoirs. Off restores the
  /// bit-exact per-record Algorithm R path.
  bool skip_ahead = true;
};

/// Counters from the skip-ahead bulk kernel, accumulated across offer_run
/// calls (and carried along by merge). `skipped` records were never read.
struct OasrsKernelStats {
  std::uint64_t bulk_runs = 0;
  std::uint64_t accepted = 0;
  std::uint64_t skipped = 0;
};

/// OASRS sampler over items of type T.
///
/// `KeyFn` maps an item to its StratumId (the sub-stream / source). A new
/// stratum encountered mid-interval immediately receives its own reservoir —
/// OASRS "does not overlook any sub-streams regardless of their popularity"
/// (§3.2). Call take() at the end of every time interval (batch or window
/// slide) to obtain the (sample, W) pair of Algorithm 3 and reset counters
/// for the next interval.
template <typename T, typename KeyFn = std::function<StratumId(const T&)>>
class OasrsSampler {
 public:
  /// Creates a sampler. `key` extracts an item's stratum.
  OasrsSampler(OasrsConfig config, KeyFn key)
      : config_(config), key_(std::move(key)), rng_(config.seed) {}

  /// Offers one arriving item (paper Algorithm 3 inner loop): updates the
  /// stratum counter C_i and the stratum reservoir.
  void offer(const T& item) {
    ++interval_seen_;
    std::visit([&](auto& r) { r.offer(item); }, reservoir_for(key_(item)));
  }

  /// Offers a contiguous same-stratum run of items whose stratum the caller
  /// already knows (the exchange stamps run descriptors at routing time) —
  /// the production hot path. With skip-ahead enabled, a saturated reservoir
  /// reads only its accepted positions inside the run; the skipped records
  /// are never touched. Returns the number of items written to the sample.
  std::size_t offer_run(const StratumId id, const T* items, std::size_t n) {
    if (n == 0) return 0;
    interval_seen_ += n;
    const std::size_t accepted = std::visit(
        [&](auto& r) { return r.offer_run(items, n); }, reservoir_for(id));
    ++stats_.bulk_runs;
    stats_.accepted += accepted;
    stats_.skipped += n - accepted;
    return accepted;
  }

  /// Offers a contiguous run of mixed-stratum items, segmenting it into
  /// same-stratum runs (one key_ call per item, like the old cached-lookup
  /// path) and feeding each to offer_run.
  void offer_batch(const T* items, std::size_t count) {
    std::size_t i = 0;
    while (i < count) {
      const StratumId id = key_(items[i]);
      std::size_t end = i + 1;
      while (end < count && key_(items[end]) == id) ++end;
      offer_run(id, items + i, end - i);
      i = end;
    }
  }

  /// Convenience overload over a whole vector.
  void offer_batch(const std::vector<T>& items) {
    offer_batch(items.data(), items.size());
  }

  /// Ends the current interval: returns every stratum's (items, C_i, W_i)
  /// and resets all reservoirs and counters. Strata are reported in first-
  /// seen order for deterministic output. Under the kProportional policy,
  /// next-interval capacities follow this interval's observed arrival counts
  /// (the STS-style allocation, kept for ablation); the default kEqual split
  /// keeps every stratum's capacity identical, which is what makes OASRS
  /// robust to arrival-rate fluctuation.
  StratifiedSample<T> take() {
    StratifiedSample<T> result;
    result.strata.reserve(order_.size());
    std::vector<std::uint64_t> counts;
    counts.reserve(order_.size());
    for (const StratumId id : order_) {
      std::visit(
          [&](auto& reservoir) {
            counts.push_back(reservoir.seen());
            StratumSample<T> s;
            s.stratum = id;
            s.seen = reservoir.seen();
            s.weight = reservoir.weight();
            s.items = reservoir.take_items();
            if (s.seen > 0) result.strata.push_back(std::move(s));
          },
          reservoirs_.at(id));
    }
    const auto capacities =
        config_.total_budget > 0
            ? allocate_capacities(config_.total_budget, order_.size(),
                                  config_.policy, counts)
            : std::vector<std::size_t>(order_.size(),
                                       config_.per_stratum_capacity);
    max_capacity_ = 0;
    for (std::size_t i = 0; i < order_.size(); ++i) {
      std::visit([&](auto& r) { r.reset(capacities[i]); },
                 reservoirs_.at(order_[i]));
      max_capacity_ = std::max(max_capacity_, capacities[i]);
    }
    interval_seen_ = 0;
    return result;
  }

  /// Per-stratum view without consuming (copies items).
  StratifiedSample<T> snapshot() const {
    StratifiedSample<T> result;
    result.strata.reserve(order_.size());
    for (const StratumId id : order_) {
      std::visit(
          [&](const auto& reservoir) {
            if (reservoir.seen() == 0) return;
            StratumSample<T> s;
            s.stratum = id;
            s.seen = reservoir.seen();
            s.weight = reservoir.weight();
            s.items = reservoir.items();
            result.strata.push_back(std::move(s));
          },
          reservoirs_.at(id));
    }
    return result;
  }

  /// Adjusts the total budget (adaptive feedback, §4.2: "increase the sample
  /// size ... in the subsequent epochs"). Empty reservoirs re-tune at once;
  /// reservoirs already filling this interval shrink immediately if the
  /// budget fell, and pick up a larger budget at the next reset — growing a
  /// live reservoir would bias it toward recent items.
  void set_total_budget(std::size_t budget) {
    config_.total_budget = budget;
    if (budget == 0) return;
    const std::size_t capacity = capacity_for(order_.size());
    for (auto& [id, reservoir] : reservoirs_) {
      std::visit(
          [&](auto& r) {
            if (r.seen() == 0) {
              r.reset(capacity);
            } else {
              r.shrink_capacity(capacity);
            }
          },
          reservoir);
    }
    if (!reservoirs_.empty()) max_capacity_ = capacity;
  }

  /// Adjusts the fixed per-stratum capacity for subsequent intervals.
  void set_per_stratum_capacity(std::size_t capacity) {
    config_.per_stratum_capacity = capacity;
    if (config_.total_budget == 0) {
      // Applied on next reset (take()); reservoirs currently filling keep
      // their capacity so mid-interval statistics stay coherent.
    }
  }

  /// Number of strata discovered so far.
  std::size_t stratum_count() const noexcept { return reservoirs_.size(); }

  /// Total items offered in the current interval — a running counter, not a
  /// map walk; merge and take keep it in sync with the per-stratum C_i sums.
  std::uint64_t interval_seen() const noexcept { return interval_seen_; }

  /// Bulk-kernel counters accumulated so far (survive take(); a window's
  /// worth is read by the merger at slide close).
  const OasrsKernelStats& kernel_stats() const noexcept { return stats_; }

  /// Merges the per-stratum reservoirs of `other` into this sampler —
  /// the distributed execution path (§3.2): each of w workers runs a local
  /// OASRS over its share of the stream; merging concatenates the statistics
  /// without any synchronisation during sampling itself. Consumes the other
  /// sampler's items (it is owned by the caller on the slide-close path).
  void merge(OasrsSampler& other) {
    interval_seen_ += other.interval_seen_;
    stats_.bulk_runs += other.stats_.bulk_runs;
    stats_.accepted += other.stats_.accepted;
    stats_.skipped += other.stats_.skipped;
    for (StratumId id : other.order_) {
      auto& theirs = other.reservoirs_.at(id);
      auto it = reservoirs_.find(id);
      if (it == reservoirs_.end()) {
        const std::size_t capacity = stratum_capacity();
        it = reservoirs_.emplace(id, make_reservoir(capacity)).first;
        order_.push_back(id);
        max_capacity_ = std::max(max_capacity_, capacity);
      }
      // Cross-implementation merge: move the other side's items out and run
      // this side's binomial slot allocation, whichever variant each holds.
      std::visit(
          [&](auto& mine) {
            std::visit(
                [&](auto& t) { mine.merge_from(t.take_items(), t.seen()); },
                theirs);
          },
          it->second);
    }
  }

 private:
  /// Either reservoir implementation; which one is decided per config at
  /// stratum discovery (all strata of one sampler use the same kind).
  using Reservoir = std::variant<ReservoirSampler<T>, FastReservoirSampler<T>>;

  /// Builds a reservoir of the configured kind. Forks the stratum seed the
  /// same way in both modes so the Algorithm R path draws a bit-identical
  /// seed sequence whether or not other samplers in the process skip ahead.
  Reservoir make_reservoir(std::size_t capacity) {
    const std::uint64_t seed = rng_.fork().next();
    if (config_.skip_ahead) {
      return Reservoir{std::in_place_type<FastReservoirSampler<T>>, capacity,
                       seed};
    }
    return Reservoir{std::in_place_type<ReservoirSampler<T>>, capacity, seed};
  }

  /// Looks up (or discovers) the reservoir of stratum `id`.
  Reservoir& reservoir_for(const StratumId id) {
    auto it = reservoirs_.find(id);
    if (it == reservoirs_.end()) {
      // New stratum discovered mid-interval: the shared budget is re-split
      // over the larger stratum set, shrinking existing reservoirs (a
      // uniform subsample stays uniform) so the total never exceeds the
      // budget. The pass is skipped when no existing reservoir exceeds the
      // new share (every shrink_capacity call would be a no-op), tracked via
      // the high-water capacity — so S-stratum discovery costs O(S)
      // reservoir visits overall once the integer share budget/S stops
      // changing, instead of O(S²) always.
      order_.push_back(id);
      const std::size_t capacity = capacity_for(order_.size());
      if (config_.total_budget > 0 && capacity < max_capacity_) {
        for (auto& [existing_id, reservoir] : reservoirs_) {
          std::visit([&](auto& r) { r.shrink_capacity(capacity); }, reservoir);
        }
      }
      // Whether the pass ran (everything shrunk to `capacity`) or was
      // skipped (everything already at or below it), `capacity` is now the
      // high water. Assigning — not max-combining — is what lets it tighten
      // as shares shrink; a monotone high water would stop the skip firing.
      max_capacity_ = capacity;
      it = reservoirs_.emplace(id, make_reservoir(capacity)).first;
    }
    return it->second;
  }

  /// Per-stratum capacity when `strata` strata share the budget.
  std::size_t capacity_for(std::size_t strata) const {
    if (config_.total_budget == 0) return config_.per_stratum_capacity;
    if (strata == 0) strata = 1;
    return std::max<std::size_t>(config_.total_budget / strata,
                                 config_.total_budget > 0 ? 1 : 0);
  }

  std::size_t stratum_capacity() const { return capacity_for(order_.size()); }

  OasrsConfig config_;
  KeyFn key_;
  streamapprox::Rng rng_;
  std::unordered_map<StratumId, Reservoir> reservoirs_;
  std::vector<StratumId> order_;
  /// High-water reservoir capacity: when a new stratum's share is not below
  /// it, no reservoir can need shrinking and the re-split pass is skipped.
  std::size_t max_capacity_ = 0;
  /// Running interval counter (sum of every stratum's C_i since the last
  /// take()), so interval_seen() is O(1) instead of an O(strata) map walk.
  std::uint64_t interval_seen_ = 0;
  OasrsKernelStats stats_;
};

/// Deduces a convenient OASRS type for items that expose `.stratum`.
template <typename T>
auto make_oasrs(OasrsConfig config) {
  auto key = [](const T& item) { return static_cast<StratumId>(item.stratum); };
  return OasrsSampler<T, decltype(key)>(config, key);
}

}  // namespace streamapprox::sampling
