// Value types shared by all samplers: per-stratum samples with the paper's
// (C_i, Y_i, W_i) bookkeeping, and the stratified sample that estimators and
// query operators consume.
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

namespace streamapprox::sampling {

/// Identifier of a sub-stream (stratum). The paper stratifies by data source
/// (§2.3); workloads map their natural key (sub-stream id, protocol, borough)
/// onto this type.
using StratumId = std::uint32_t;

/// Sample drawn from one stratum within one time interval.
///
/// Invariants (paper §3.2): items.size() == Y_i <= N_i; seen == C_i >= Y_i;
/// weight == C_i/N_i if C_i > N_i else 1 (Eq. 1), except merged distributed
/// samples where weight == C_i/Y_i when the stratum over-filled.
template <typename T>
struct StratumSample {
  StratumId stratum = 0;
  std::vector<T> items;      ///< the Y_i selected items
  std::uint64_t seen = 0;    ///< C_i: items received from this stratum
  double weight = 1.0;       ///< W_i: expansion factor per Eq. 1

  /// Number of sampled items (Y_i).
  std::size_t sampled() const noexcept { return items.size(); }
};

/// Union of the per-stratum samples for one interval — the `sample, W` pair
/// returned by paper Algorithm 3.
template <typename T>
struct StratifiedSample {
  std::vector<StratumSample<T>> strata;

  /// Total number of sampled items across strata (Σ Y_i).
  std::size_t total_sampled() const noexcept {
    std::size_t n = 0;
    for (const auto& s : strata) n += s.items.size();
    return n;
  }

  /// Total number of received items across strata (Σ C_i).
  std::uint64_t total_seen() const noexcept {
    std::uint64_t n = 0;
    for (const auto& s : strata) n += s.seen;
    return n;
  }

  /// True when no stratum produced any item.
  bool empty() const noexcept { return total_sampled() == 0; }

  /// Appends the strata of `other` (no merging of equal ids; used when
  /// concatenating disjoint interval samples).
  void append(StratifiedSample other) {
    strata.insert(strata.end(), std::make_move_iterator(other.strata.begin()),
                  std::make_move_iterator(other.strata.end()));
  }
};

}  // namespace streamapprox::sampling
