#include "sampling/allocation.h"

#include <algorithm>
#include <numeric>

namespace streamapprox::sampling {

std::vector<std::size_t> allocate_capacities(
    std::size_t total_budget, std::size_t num_strata, AllocationPolicy policy,
    const std::vector<std::uint64_t>& previous_counts) {
  if (num_strata == 0) return {};
  std::vector<std::size_t> capacities(num_strata, 0);
  if (total_budget == 0) return capacities;

  const bool have_history =
      policy == AllocationPolicy::kProportional &&
      previous_counts.size() == num_strata &&
      std::accumulate(previous_counts.begin(), previous_counts.end(),
                      std::uint64_t{0}) > 0;

  if (!have_history) {
    // Equal split; distribute the remainder to the first strata so the full
    // budget is always used.
    const std::size_t base = total_budget / num_strata;
    std::size_t remainder = total_budget % num_strata;
    for (auto& c : capacities) {
      c = base + (remainder > 0 ? 1 : 0);
      if (remainder > 0) --remainder;
    }
    return capacities;
  }

  const double total_count = static_cast<double>(std::accumulate(
      previous_counts.begin(), previous_counts.end(), std::uint64_t{0}));
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < num_strata; ++i) {
    const double share =
        static_cast<double>(previous_counts[i]) / total_count;
    capacities[i] = static_cast<std::size_t>(
        share * static_cast<double>(total_budget));
    assigned += capacities[i];
  }
  // Guarantee a slot for every live stratum while budget allows, then hand
  // out any remaining budget round-robin.
  for (std::size_t i = 0; i < num_strata && assigned < total_budget; ++i) {
    if (capacities[i] == 0 && previous_counts[i] > 0) {
      capacities[i] = 1;
      ++assigned;
    }
  }
  for (std::size_t i = 0; assigned < total_budget; i = (i + 1) % num_strata) {
    ++capacities[i];
    ++assigned;
  }
  return capacities;
}

}  // namespace streamapprox::sampling
