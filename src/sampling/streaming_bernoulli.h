// Streaming Bernoulli sampler: the simplest possible online sampler, used as
// a lower-bound baseline in ablations and by tests as a sanity reference.
// Unlike OASRS it has no per-stratum fairness and its sample size is
// unbounded in expectation (fraction * stream length).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace streamapprox::sampling {

/// Keeps each offered item independently with probability `fraction`.
template <typename T>
class StreamingBernoulliSampler {
 public:
  /// Creates a sampler keeping items with probability `fraction` in [0,1].
  StreamingBernoulliSampler(double fraction, std::uint64_t seed = 1)
      : fraction_(fraction < 0.0 ? 0.0 : (fraction > 1.0 ? 1.0 : fraction)),
        rng_(seed) {}

  /// Offers one item.
  void offer(const T& item) {
    ++seen_;
    if (rng_.bernoulli(fraction_)) items_.push_back(item);
  }

  /// Items kept so far.
  const std::vector<T>& items() const noexcept { return items_; }
  /// Items offered so far.
  std::uint64_t seen() const noexcept { return seen_; }
  /// Horvitz–Thompson weight 1/fraction (1 when fraction == 0 to stay finite).
  double weight() const noexcept {
    return fraction_ > 0.0 ? 1.0 / fraction_ : 1.0;
  }

  /// Clears sample and counter for the next interval.
  void reset() {
    items_.clear();
    seen_ = 0;
  }

 private:
  double fraction_;
  streamapprox::Rng rng_;
  std::vector<T> items_;
  std::uint64_t seen_ = 0;
};

}  // namespace streamapprox::sampling
