#include "core/query.h"

#include <map>
#include <unordered_map>

#include "common/stats.h"
#include "estimation/estimators.h"

namespace streamapprox::core {
namespace {

using estimation::ApproxResult;
using estimation::StratumSummary;

ApproxResult aggregate(const std::vector<StratumSummary>& cells,
                       Aggregation aggregation) {
  switch (aggregation) {
    case Aggregation::kSum:
      return estimation::estimate_sum(cells);
    case Aggregation::kMean:
      return estimation::estimate_mean(cells);
    case Aggregation::kCount:
      return estimation::estimate_count(cells);
  }
  return {};
}

}  // namespace

std::vector<WindowEstimate> evaluate_windows(
    const std::vector<engine::WindowResult>& windows,
    const QuerySpec& query) {
  std::vector<WindowEstimate> estimates;
  estimates.reserve(windows.size());
  for (const auto& window : windows) {
    WindowEstimate estimate;
    estimate.window_start_us = window.window_start_us;
    estimate.window_end_us = window.window_end_us;
    estimate.overall = aggregate(window.cells, query.aggregation);
    if (query.per_stratum) {
      // Partition the cells by stratum, keeping deterministic (sorted) group
      // order, then estimate each group independently.
      std::map<sampling::StratumId, std::vector<StratumSummary>> by_stratum;
      for (const auto& cell : window.cells) {
        by_stratum[cell.stratum].push_back(cell);
      }
      estimate.groups.reserve(by_stratum.size());
      for (const auto& [stratum, cells] : by_stratum) {
        estimate.groups.emplace_back(stratum,
                                     aggregate(cells, query.aggregation));
      }
    }
    estimates.push_back(std::move(estimate));
  }
  return estimates;
}

std::vector<engine::WindowResult> exact_window_results(
    const std::vector<engine::Record>& records,
    const engine::WindowConfig& window) {
  engine::SlidingWindowAssembler assembler(window);
  std::vector<engine::WindowResult> windows;

  const auto ranges = engine::split_by_interval(records, window.slide_us);
  for (const auto& [begin, end] : ranges) {
    std::unordered_map<sampling::StratumId, StratumSummary> cells;
    for (std::size_t i = begin; i < end; ++i) {
      const auto& record = records[i];
      auto& cell = cells[record.stratum];
      cell.stratum = record.stratum;
      ++cell.seen;
      ++cell.sampled;
      cell.sum += record.value;
      cell.sum_sq += record.value * record.value;
    }
    std::vector<StratumSummary> slide_cells;
    slide_cells.reserve(cells.size());
    for (auto& [id, cell] : cells) slide_cells.push_back(cell);
    if (auto result = assembler.push_slide(std::move(slide_cells))) {
      windows.push_back(std::move(*result));
    }
  }
  return windows;
}

double mean_accuracy_loss(const std::vector<WindowEstimate>& approx,
                          const std::vector<WindowEstimate>& exact,
                          const QuerySpec& query) {
  std::unordered_map<std::int64_t, const WindowEstimate*> exact_by_end;
  exact_by_end.reserve(exact.size());
  for (const auto& w : exact) exact_by_end[w.window_end_us] = &w;

  double total_loss = 0.0;
  std::size_t terms = 0;
  for (const auto& w : approx) {
    auto it = exact_by_end.find(w.window_end_us);
    if (it == exact_by_end.end()) continue;
    const WindowEstimate& truth = *it->second;
    if (query.per_stratum) {
      std::unordered_map<sampling::StratumId, double> exact_groups;
      for (const auto& [stratum, result] : truth.groups) {
        exact_groups[stratum] = result.estimate;
      }
      std::unordered_map<sampling::StratumId, double> approx_groups;
      for (const auto& [stratum, result] : w.groups) {
        approx_groups[stratum] = result.estimate;
      }
      // Every group present in the ground truth counts; a group the sampled
      // system missed entirely contributes its full relative error of 1.
      for (const auto& [stratum, exact_value] : exact_groups) {
        if (exact_value == 0.0) continue;
        const auto found = approx_groups.find(stratum);
        const double approx_value =
            found == approx_groups.end() ? 0.0 : found->second;
        total_loss += relative_error(approx_value, exact_value);
        ++terms;
      }
    } else {
      if (truth.overall.estimate == 0.0) continue;
      total_loss += relative_error(w.overall.estimate, truth.overall.estimate);
      ++terms;
    }
  }
  return terms == 0 ? 0.0 : total_loss / static_cast<double>(terms);
}

std::string aggregation_name(Aggregation aggregation) {
  switch (aggregation) {
    case Aggregation::kSum:
      return "SUM";
    case Aggregation::kMean:
      return "MEAN";
    case Aggregation::kCount:
      return "COUNT";
  }
  return "?";
}

}  // namespace streamapprox::core
