#include "core/query.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <utility>

#include "common/stats.h"
#include "estimation/estimators.h"
#include "sketch/sketch_sink.h"

namespace streamapprox::core {
namespace {

using estimation::ApproxResult;
using estimation::StratumSummary;

ApproxResult aggregate(const std::vector<StratumSummary>& cells,
                       Aggregation aggregation) {
  switch (aggregation) {
    case Aggregation::kSum:
      return estimation::estimate_sum(cells);
    case Aggregation::kMean:
      return estimation::estimate_mean(cells);
    case Aggregation::kCount:
      return estimation::estimate_count(cells);
  }
  return {};
}

}  // namespace

// ------------------------------------------------------------ AggregateSink

QueryOutput AggregateSink::evaluate(const engine::WindowResult& window) {
  QueryOutput output;
  output.name = name_;
  output.z = resolved_z_;
  output.estimate = evaluate_window(window, spec_);
  output.observed_relative_bound =
      output.estimate.overall.relative_bound(resolved_z_);
  return output;
}

std::unique_ptr<QuerySink> AggregateSink::clone() const {
  auto sink = std::make_unique<AggregateSink>(name_, spec_);
  sink->z_ = z_;
  sink->target_ = target_;
  return sink;
}

// ------------------------------------------------------------ HistogramSink

void HistogramSink::bind(const engine::WindowConfig& window,
                         double default_z) {
  QuerySink::bind(window, default_z);
  slides_per_window_ = std::max<std::size_t>(1, window.slides_per_window());
  ring_.clear();
}

void HistogramSink::on_slide(
    const std::vector<estimation::StratumSummary>& cells,
    const sampling::StratifiedSample<engine::Record>* sample,
    const sketch::SlideSketches* sketches) {
  (void)cells;
  (void)sketches;
  // Per-slide weighted histograms; the window histogram is the merge of its
  // slides'. Cells-only paths carry no values, so they contribute an empty
  // slide histogram (the ring must still advance to stay window-aligned).
  if (sample != nullptr) {
    ring_.push_back(estimation::weighted_histogram(
        *sample, engine::RecordValue{}, spec_));
  } else {
    ring_.emplace_back(spec_.lo, spec_.hi, spec_.buckets);
  }
  if (ring_.size() > slides_per_window_) ring_.erase(ring_.begin());
}

QueryOutput HistogramSink::evaluate(const engine::WindowResult& window) {
  QueryOutput output;
  output.name = name_;
  output.z = resolved_z_;
  output.estimate.window_start_us = window.window_start_us;
  output.estimate.window_end_us = window.window_end_us;
  // The histogram's mass estimates full-population counts; the matching
  // point estimate is the weighted COUNT the mass speaks for. COUNT's
  // variance is identically zero under Eq.-1 weights, so the feedback term
  // uses the SUM bound instead — the accuracy budget is defined as the
  // relative error of SUM (estimation::BudgetKind::kRelativeError), and it
  // actually responds to the sample size.
  output.estimate.overall = estimation::estimate_count(window.cells);
  output.observed_relative_bound =
      estimation::estimate_sum(window.cells).relative_bound(resolved_z_);
  Histogram merged(spec_.lo, spec_.hi, spec_.buckets);
  for (const auto& slide : ring_) merged.merge(slide);
  output.histogram = std::move(merged);
  return output;
}

std::unique_ptr<QuerySink> HistogramSink::clone() const {
  auto sink = std::make_unique<HistogramSink>(name_, spec_);
  sink->z_ = z_;
  sink->target_ = target_;
  return sink;
}

// ----------------------------------------------------------------- QuerySet

QuerySet& QuerySet::operator=(const QuerySet& other) {
  if (this != &other) sinks_ = other.clone_sinks();
  return *this;
}

QuerySet& QuerySet::add(std::unique_ptr<QuerySink> sink) {
  sinks_.push_back(std::move(sink));
  return *this;
}

QuerySet& QuerySet::aggregate(std::string name, QuerySpec spec,
                              std::optional<double> z,
                              std::optional<double> accuracy_target) {
  auto sink = std::make_unique<AggregateSink>(std::move(name), spec);
  if (z) sink->set_z(*z);
  if (accuracy_target) sink->set_accuracy_target(*accuracy_target);
  return add(std::move(sink));
}

QuerySet& QuerySet::histogram(std::string name,
                              estimation::HistogramSpec spec,
                              std::optional<double> z) {
  auto sink = std::make_unique<HistogramSink>(std::move(name), spec);
  if (z) sink->set_z(*z);
  return add(std::move(sink));
}

QuerySet& QuerySet::sketch(std::string name, sketch::SketchSpec spec,
                           std::vector<double> quantiles) {
  return add(std::make_unique<sketch::SketchSink>(std::move(name), spec,
                                                  std::move(quantiles)));
}

std::vector<std::unique_ptr<QuerySink>> QuerySet::clone_sinks() const {
  std::vector<std::unique_ptr<QuerySink>> clones;
  clones.reserve(sinks_.size());
  for (const auto& sink : sinks_) clones.push_back(sink->clone());
  return clones;
}

// --------------------------------------------------------------- evaluation

WindowEstimate evaluate_window(const engine::WindowResult& window,
                               const QuerySpec& query) {
  WindowEstimate estimate;
  estimate.window_start_us = window.window_start_us;
  estimate.window_end_us = window.window_end_us;
  estimate.overall = aggregate(window.cells, query.aggregation);
  if (query.per_stratum) {
    // Partition the cells by stratum, keeping deterministic (sorted) group
    // order, then estimate each group independently.
    std::map<sampling::StratumId, std::vector<StratumSummary>> by_stratum;
    for (const auto& cell : window.cells) {
      by_stratum[cell.stratum].push_back(cell);
    }
    estimate.groups.reserve(by_stratum.size());
    for (const auto& [stratum, cells] : by_stratum) {
      estimate.groups.emplace_back(stratum,
                                   aggregate(cells, query.aggregation));
    }
  }
  return estimate;
}

std::vector<WindowEstimate> evaluate_windows(
    const std::vector<engine::WindowResult>& windows,
    const QuerySpec& query) {
  std::vector<WindowEstimate> estimates;
  estimates.reserve(windows.size());
  for (const auto& window : windows) {
    estimates.push_back(evaluate_window(window, query));
  }
  return estimates;
}

std::vector<engine::WindowResult> exact_window_results(
    const std::vector<engine::Record>& records,
    const engine::WindowConfig& window) {
  engine::SlidingWindowAssembler assembler(window);
  std::vector<engine::WindowResult> windows;

  const auto ranges = engine::split_by_interval(records, window.slide_us);
  for (const auto& [begin, end] : ranges) {
    std::unordered_map<sampling::StratumId, StratumSummary> cells;
    for (std::size_t i = begin; i < end; ++i) {
      const auto& record = records[i];
      auto& cell = cells[record.stratum];
      cell.stratum = record.stratum;
      ++cell.seen;
      ++cell.sampled;
      cell.sum += record.value;
      cell.sum_sq += record.value * record.value;
    }
    std::vector<StratumSummary> slide_cells;
    slide_cells.reserve(cells.size());
    for (auto& [id, cell] : cells) slide_cells.push_back(cell);
    if (auto result = assembler.push_slide(std::move(slide_cells))) {
      windows.push_back(std::move(*result));
    }
  }
  return windows;
}

double mean_accuracy_loss(const std::vector<WindowEstimate>& approx,
                          const std::vector<WindowEstimate>& exact,
                          const QuerySpec& query) {
  std::unordered_map<std::int64_t, const WindowEstimate*> exact_by_end;
  exact_by_end.reserve(exact.size());
  for (const auto& w : exact) exact_by_end[w.window_end_us] = &w;

  double total_loss = 0.0;
  std::size_t terms = 0;
  for (const auto& w : approx) {
    auto it = exact_by_end.find(w.window_end_us);
    if (it == exact_by_end.end()) continue;
    const WindowEstimate& truth = *it->second;
    if (query.per_stratum) {
      std::unordered_map<sampling::StratumId, double> exact_groups;
      for (const auto& [stratum, result] : truth.groups) {
        exact_groups[stratum] = result.estimate;
      }
      std::unordered_map<sampling::StratumId, double> approx_groups;
      for (const auto& [stratum, result] : w.groups) {
        approx_groups[stratum] = result.estimate;
      }
      // Every group present in the ground truth counts; a group the sampled
      // system missed entirely contributes its full relative error of 1.
      for (const auto& [stratum, exact_value] : exact_groups) {
        if (exact_value == 0.0) continue;
        const auto found = approx_groups.find(stratum);
        const double approx_value =
            found == approx_groups.end() ? 0.0 : found->second;
        total_loss += relative_error(approx_value, exact_value);
        ++terms;
      }
    } else {
      if (truth.overall.estimate == 0.0) continue;
      total_loss += relative_error(w.overall.estimate, truth.overall.estimate);
      ++terms;
    }
  }
  return terms == 0 ? 0.0 : total_loss / static_cast<double>(terms);
}

std::string aggregation_name(Aggregation aggregation) {
  switch (aggregation) {
    case Aggregation::kSum:
      return "SUM";
    case Aggregation::kMean:
      return "MEAN";
    case Aggregation::kCount:
      return "COUNT";
  }
  return "?";
}

}  // namespace streamapprox::core
