// The approximate linear-query model (paper §3.2: "our OASRS sampling
// algorithm supports any types of approximate linear queries ... sum,
// average, count, histogram") and the query registry that executes MANY such
// queries over one sampled stream.
//
// A query turns a window's sample cells into an overall estimate and,
// optionally, per-stratum group estimates (the case studies group by
// protocol / borough). The registry side generalises this from "one query
// per run" to N concurrent queries: the stream is ingested, exchanged,
// sampled and windowed ONCE, and every registered QuerySink evaluates the
// same assembled windows — the sample-once / answer-many economics that is
// the approximate-analytics value proposition.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "engine/record.h"
#include "engine/window.h"
#include "estimation/approx_result.h"
#include "estimation/histogram_query.h"
#include "sketch/sketch_query.h"

namespace streamapprox::core {

/// Supported aggregations.
enum class Aggregation { kSum, kMean, kCount };

/// A streaming query: an aggregation, optionally grouped by stratum.
struct QuerySpec {
  Aggregation aggregation = Aggregation::kMean;
  /// When true, per-stratum results are produced as well (e.g. "total bytes
  /// per protocol", "average distance per borough").
  bool per_stratum = false;
};

/// The evaluated result of one window.
struct WindowEstimate {
  std::int64_t window_start_us = 0;
  std::int64_t window_end_us = 0;
  estimation::ApproxResult overall;
  /// Per-stratum estimates (present when QuerySpec::per_stratum).
  std::vector<std::pair<sampling::StratumId, estimation::ApproxResult>>
      groups;
};

/// One registered query's evaluated output for one window.
struct QueryOutput {
  /// The name the query was registered under.
  std::string name;
  WindowEstimate estimate;
  /// Population-scale value histogram (HISTOGRAM queries only).
  std::optional<Histogram> histogram;
  /// Confidence (standard deviations) this query's bounds were computed at.
  double z = 2.0;
  /// The observed relative error bound at `z` — this query's term in the
  /// adaptive feedback loop.
  double observed_relative_bound = 0.0;
  /// Sketch answer (sketch-backed sinks only). Present only when every slide
  /// of the window was fully digested by the sink's sketch — a dynamically
  /// attached sketch withholds its payload until a complete window's worth
  /// of fully-observed slides has accumulated.
  std::optional<sketch::SketchAnswer> sketch;
};

/// A registered query: evaluates each assembled window's cells into a
/// QueryOutput, owning its own confidence and (optionally) its own accuracy
/// target. Sinks may be stateful across slides (the HISTOGRAM slide ring),
/// so they are cloneable: a QuerySet stored in a config seeds any number of
/// independent runs, each starting from fresh sink state.
///
/// Thread safety: configuration (set_z / set_accuracy_target) happens
/// before the sink is handed to a registry or to attach_query; afterwards
/// the sink is owned by ONE lifecycle thread, which calls bind() once and
/// then on_slide()/evaluate() strictly in slide order. A dynamically
/// attached sink (StreamApprox::attach_query) is bound at its slide-close
/// boundary and observes only slides from that boundary on — evaluate() is
/// never called for a window containing slides the sink did not observe.
class QuerySink {
 public:
  explicit QuerySink(std::string name) : name_(std::move(name)) {}
  virtual ~QuerySink() = default;

  /// The registration name — immutable, and the key detach_query addresses
  /// (keep names unique per run; detach retires the first match).
  const std::string& name() const noexcept { return name_; }

  /// Per-query confidence (standard deviations): bounds and the feedback
  /// term of THIS query use it, so a 95 %-confidence SUM can coexist with a
  /// 99 %-confidence MEAN. Unset inherits the config-level default.
  void set_z(double z) { z_ = z; }

  /// Per-query relative-error target: when set, this query drives its own
  /// feedback controller, and the strictest registered target wins (the
  /// budget in force is the max across controllers).
  void set_accuracy_target(double target) { target_ = target; }

  /// Resolved confidence (valid after bind()).
  double z() const noexcept { return resolved_z_; }

  /// Called once by the driver before any slide: window geometry plus the
  /// config-level confidence default.
  virtual void bind(const engine::WindowConfig& window, double default_z) {
    (void)window;
    resolved_z_ = z_.value_or(default_z);
  }

  /// Called for EVERY closed slide in order (empty padded slides included),
  /// before window assembly — the hook for sinks that need slide-granular
  /// state. `sample` is the materialised stratified sample when one exists
  /// (live OASRS paths) and null on pre-summarised cells paths; `sketches`
  /// is the merged worker-local sketch state for the slide when the driver
  /// ingested the records itself (null on cells-only harness paths).
  virtual void on_slide(
      const std::vector<estimation::StratumSummary>& cells,
      const sampling::StratifiedSample<engine::Record>* sample,
      const sketch::SlideSketches* sketches) {
    (void)cells;
    (void)sample;
    (void)sketches;
  }

  /// Evaluates one assembled window.
  virtual QueryOutput evaluate(const engine::WindowResult& window) = 0;

  /// The relative-error target this query contributes to the feedback loop.
  /// `fallback` carries the config-level accuracy budget (nullopt when the
  /// run's budget is not accuracy-kind). Default: explicit target, else the
  /// fallback.
  virtual std::optional<double> accuracy_target(
      std::optional<double> fallback) const {
    return target_ ? target_ : fallback;
  }

  /// Produces an UNBOUND sink with the same configuration (fresh runtime
  /// state); the driver clones the registered set at construction.
  virtual std::unique_ptr<QuerySink> clone() const = 0;

  /// Sketch-backed sinks expose their collection spec here so the driver
  /// can assign it a unique id at registration and provision worker-local
  /// per-slide sketch state for it. Sample-backed sinks return nullptr.
  virtual sketch::SketchSpec* mutable_sketch_spec() { return nullptr; }

 protected:
  std::string name_;
  std::optional<double> z_;
  std::optional<double> target_;
  double resolved_z_ = 2.0;
};

/// SUM / MEAN / COUNT over all strata or per stratum — stateless across
/// slides; the legacy single-`QuerySpec` path maps onto one of these.
class AggregateSink : public QuerySink {
 public:
  AggregateSink(std::string name, QuerySpec spec)
      : QuerySink(std::move(name)), spec_(spec) {}

  const QuerySpec& spec() const noexcept { return spec_; }

  QueryOutput evaluate(const engine::WindowResult& window) override;
  std::unique_ptr<QuerySink> clone() const override;

 private:
  QuerySpec spec_;
};

/// Approximate HISTOGRAM query (§3.2): keeps the per-slide weighted
/// histograms of the last window's worth of slides and merges them per
/// window. Its point estimate is the weighted COUNT the histogram mass
/// speaks for. Needs the materialised sample, so slides closed through the
/// cells-only path contribute empty histograms.
class HistogramSink : public QuerySink {
 public:
  HistogramSink(std::string name, estimation::HistogramSpec spec)
      : QuerySink(std::move(name)), spec_(spec) {}

  const estimation::HistogramSpec& spec() const noexcept { return spec_; }

  void bind(const engine::WindowConfig& window, double default_z) override;
  void on_slide(
      const std::vector<estimation::StratumSummary>& cells,
      const sampling::StratifiedSample<engine::Record>* sample,
      const sketch::SlideSketches* sketches) override;
  QueryOutput evaluate(const engine::WindowResult& window) override;

  /// Histograms never inherit the config-level accuracy budget — only an
  /// explicit per-query target registers a feedback controller (the legacy
  /// mapping must keep exactly one controller: the aggregate query's).
  std::optional<double> accuracy_target(
      std::optional<double> fallback) const override {
    (void)fallback;
    return target_;
  }

  std::unique_ptr<QuerySink> clone() const override;

 private:
  estimation::HistogramSpec spec_;
  std::size_t slides_per_window_ = 1;
  std::vector<Histogram> ring_;  // oldest first, at most slides_per_window_
};

/// The set of queries registered for one run — the STATIC seed of the
/// registry. Copyable (copies deep-clone the sinks) so it can live in a
/// by-value config; the driver clones it once more at construction so
/// concurrent runs never share sink state. Not thread-safe: build it before
/// handing the config to a run. Queries join or leave a RUNNING pipeline
/// through StreamApprox::attach_query / detach_query instead, which feed
/// the driver's live registry at slide-close boundaries.
class QuerySet {
 public:
  QuerySet() = default;
  QuerySet(const QuerySet& other) { *this = other; }
  QuerySet& operator=(const QuerySet& other);
  QuerySet(QuerySet&&) noexcept = default;
  QuerySet& operator=(QuerySet&&) noexcept = default;

  /// Registers a sink; returns *this for chaining.
  QuerySet& add(std::unique_ptr<QuerySink> sink);

  /// Convenience: registers an AggregateSink. `z` overrides the config-level
  /// confidence for this query; `accuracy_target` gives it its own feedback
  /// controller.
  QuerySet& aggregate(std::string name, QuerySpec spec,
                      std::optional<double> z = std::nullopt,
                      std::optional<double> accuracy_target = std::nullopt);

  /// Convenience: registers a HistogramSink.
  QuerySet& histogram(std::string name, estimation::HistogramSpec spec,
                      std::optional<double> z = std::nullopt);

  /// Convenience: registers a SketchSink for the given collection spec
  /// (Count-Min heavy hitters, HyperLogLog distinct count, or quantiles —
  /// see sketch::SketchSpec). `quantiles` is the probe grid for quantile
  /// sketches (ignored by the other kinds).
  QuerySet& sketch(std::string name, sketch::SketchSpec spec,
                   std::vector<double> quantiles = {0.5, 0.95, 0.99});

  bool empty() const noexcept { return sinks_.empty(); }
  std::size_t size() const noexcept { return sinks_.size(); }
  const std::vector<std::unique_ptr<QuerySink>>& sinks() const noexcept {
    return sinks_;
  }

  /// Fresh unbound clones of every registered sink, in registration order.
  std::vector<std::unique_ptr<QuerySink>> clone_sinks() const;

 private:
  std::vector<std::unique_ptr<QuerySink>> sinks_;
};

/// Evaluates the query over one completed window.
WindowEstimate evaluate_window(const engine::WindowResult& window,
                               const QuerySpec& query);

/// Evaluates the query over every completed window of a run.
std::vector<WindowEstimate> evaluate_windows(
    const std::vector<engine::WindowResult>& windows, const QuerySpec& query);

/// Computes the EXACT window results for the same stream — the ground truth
/// used for the paper's accuracy-loss metric (§6.1). Direct single pass over
/// the records (no engine, no sampling); the produced cells have
/// seen == sampled and weight 1.
std::vector<engine::WindowResult> exact_window_results(
    const std::vector<engine::Record>& records,
    const engine::WindowConfig& window);

/// Accuracy loss |approx - exact| / exact (paper §6.1), averaged over all
/// windows matched by end time and — for per-stratum queries — over all
/// groups. Windows missing from either side are skipped; returns 0 when
/// nothing matches.
double mean_accuracy_loss(const std::vector<WindowEstimate>& approx,
                          const std::vector<WindowEstimate>& exact,
                          const QuerySpec& query);

/// Name of an aggregation ("SUM", "MEAN", "COUNT").
std::string aggregation_name(Aggregation aggregation);

}  // namespace streamapprox::core
