// The approximate linear-query model (paper §3.2: "our OASRS sampling
// algorithm supports any types of approximate linear queries ... sum,
// average, count, histogram"). A query turns a window's sample cells into
// an overall estimate and, optionally, per-stratum group estimates (the
// case studies group by protocol / borough).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "engine/record.h"
#include "engine/window.h"
#include "estimation/approx_result.h"

namespace streamapprox::core {

/// Supported aggregations.
enum class Aggregation { kSum, kMean, kCount };

/// A streaming query: an aggregation, optionally grouped by stratum.
struct QuerySpec {
  Aggregation aggregation = Aggregation::kMean;
  /// When true, per-stratum results are produced as well (e.g. "total bytes
  /// per protocol", "average distance per borough").
  bool per_stratum = false;
};

/// The evaluated result of one window.
struct WindowEstimate {
  std::int64_t window_start_us = 0;
  std::int64_t window_end_us = 0;
  estimation::ApproxResult overall;
  /// Per-stratum estimates (present when QuerySpec::per_stratum).
  std::vector<std::pair<sampling::StratumId, estimation::ApproxResult>>
      groups;
};

/// Evaluates the query over every completed window of a run.
std::vector<WindowEstimate> evaluate_windows(
    const std::vector<engine::WindowResult>& windows, const QuerySpec& query);

/// Computes the EXACT window results for the same stream — the ground truth
/// used for the paper's accuracy-loss metric (§6.1). Direct single pass over
/// the records (no engine, no sampling); the produced cells have
/// seen == sampled and weight 1.
std::vector<engine::WindowResult> exact_window_results(
    const std::vector<engine::Record>& records,
    const engine::WindowConfig& window);

/// Accuracy loss |approx - exact| / exact (paper §6.1), averaged over all
/// windows matched by end time and — for per-stratum queries — over all
/// groups. Windows missing from either side are skipped; returns 0 when
/// nothing matches.
double mean_accuracy_loss(const std::vector<WindowEstimate>& approx,
                          const std::vector<WindowEstimate>& exact,
                          const QuerySpec& query);

/// Name of an aggregation ("SUM", "MEAN", "COUNT").
std::string aggregation_name(Aggregation aggregation);

}  // namespace streamapprox::core
