// Sharded execution of the StreamApprox facade — the paper's central
// "no synchronisation between workers" claim (§3.2, Algorithm 3) realised
// over a batched morsel data plane. Two ingest front-ends share one
// watermark-gated merger:
//
//   exchange mode    (default) one exchange stage polls every partition in
//                    batches and re-keys them by stratum hash onto M
//                    SPSC channels (ingest/exchange.h), so the worker count
//                    is independent of the topic's partition count; each
//                    batch carries the min-combined low-watermark, which
//                    workers republish AFTER absorbing the batch;
//   group mode       (use_exchange = false) a consumer group splits the
//                    partitions across N workers, each polling its subset
//                    directly; per-partition clocks drive the watermark.
//
// In both modes every worker samples with LOCAL per-slide OASRS samplers —
// no lock is shared between two workers on the sampling hot path (each
// worker's mutex exists only to hand closed slides to the merger) — and all
// ingest is batch-at-a-time: one mutex acquisition and one slide-map lookup
// per run of same-slide records, never a per-record offer() loop.
//
//   merger           once the low-watermark passes a slide's end, extracts
//                    that slide's sampler from every worker, concatenates
//                    them with OasrsSampler::merge(), and closes the slide
//                    through the shared PipelineDriver — estimator inputs
//                    identical to the sequential path modulo stratum order,
//                    because routing (broker partitioning or exchange
//                    stratum hash) sends each stratum to exactly one worker.
//
// The adaptive feedback loop still works: the merger re-tunes the driver's
// budget as windows complete (max across every registered query's accuracy
// target — see core/query.h), and workers read the atomic budget when they
// open samplers for new slides. The per-slide budget is split across
// workers by STRATUM OCCUPANCY (budget · my_strata/total_strata, stamped on
// exchange batches or discovered locally in group mode), not by the flat
// budget/workers share that undershoots when strata spread unevenly. Query
// evaluation itself lives entirely behind the driver's query registry, so
// the sharded data plane is byte-for-byte the same whether one query or N
// are registered — and queries may attach/detach mid-run: the merger
// applies registry changes at slide-close boundaries, workers never notice.
#include <atomic>
#include <chrono>
#include <functional>
#include <limits>
#include <map>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/clock.h"
#include "common/thread_pool.h"
#include "core/stream_approx.h"
#include "core/watermark.h"
#include "engine/record_batch.h"
#include "ingest/broker.h"
#include "ingest/exchange.h"

namespace streamapprox::core {
namespace {

constexpr std::int64_t kNoSlide = std::numeric_limits<std::int64_t>::max();

/// Worker-local state the merger reaches into: the per-slide samplers of one
/// shard, guarded by a mutex the owning worker holds only while applying a
/// polled batch (never across polls, never against another worker).
struct Shard {
  std::mutex mutex;
  std::map<std::int64_t, PipelineDriver::Sampler> slides;
  /// The stratum-occupancy share last applied to this shard's samplers:
  /// `occupancy_my` of `occupancy_total` strata route here, so new slide
  /// samplers get budget · my/total instead of the flat budget/workers
  /// split (which undershoots whenever strata spread unevenly — the
  /// quickstart's 3 strata over 4 workers sampled ~half the budget).
  std::size_t occupancy_my = 0;
  std::size_t occupancy_total = 0;
  /// Group mode only: the strata this worker has discovered in its own
  /// partition subset (owner-thread access only).
  std::unordered_set<sampling::StratumId> local_strata;
};

void atomic_min(std::atomic<std::int64_t>& target, std::int64_t value) {
  std::int64_t current = target.load(std::memory_order_relaxed);
  while (value < current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_release,
                                       std::memory_order_relaxed)) {
  }
}

/// Everything the ingest front-ends and the merger share.
struct ShardedPlan {
  PipelineDriver& driver;
  std::vector<Shard>& shards;
  std::size_t workers;
  std::int64_t slide_us;
  /// The earliest slide observed anywhere (the cold-start base slide).
  std::atomic<std::int64_t> first_slide{kNoSlide};
  /// Slides below this are closed; workers drop records for them as late.
  std::atomic<std::int64_t> closed_through{
      std::numeric_limits<std::int64_t>::min()};
  std::atomic<std::size_t> workers_done{0};
  /// Group mode only: total strata discovered across all workers (exchange
  /// mode carries the deterministic equivalent on every batch stamp).
  std::atomic<std::size_t> total_strata{0};

  ShardedPlan(PipelineDriver& driver, std::vector<Shard>& shards,
              std::size_t workers, std::int64_t slide_us)
      : driver(driver), shards(shards), workers(workers), slide_us(slide_us) {}
};

/// Applies an occupancy stamp to worker `w`'s shard. When the stamp changed,
/// every open sampler's budget is re-tuned to the new occupancy share —
/// shrinks apply to live reservoirs immediately (a uniform subsample stays
/// uniform), growth applies at the sampler's next reset. Caller holds the
/// shard mutex.
void apply_occupancy_locked(ShardedPlan& plan, std::size_t w, Shard& shard,
                            std::size_t my_strata, std::size_t total_strata) {
  if (my_strata == shard.occupancy_my &&
      total_strata == shard.occupancy_total) {
    return;
  }
  shard.occupancy_my = my_strata;
  shard.occupancy_total = total_strata;
  for (auto& [slide, sampler] : shard.slides) {
    sampler.set_total_budget(
        plan.driver
            .slide_sampler_config(slide, w, plan.workers, my_strata,
                                  total_strata)
            .total_budget);
  }
}

/// Routes one batch into worker `w`'s local per-slide samplers: one mutex
/// acquisition per batch, one slide-map lookup per run of consecutive
/// same-slide records, one OASRS offer_batch per run. `my_strata` /
/// `total_strata` is the stratum-occupancy stamp in force for this batch
/// (exchange mode: carried on the batch; group mode: worker-local
/// discovery), driving the occupancy-aware budget split.
void absorb_batch(ShardedPlan& plan, std::size_t w,
                  const engine::Record* records, std::size_t count,
                  std::size_t my_strata, std::size_t total_strata) {
  Shard& shard = plan.shards[w];
  std::lock_guard lock(shard.mutex);
  apply_occupancy_locked(plan, w, shard, my_strata, total_strata);
  const std::int64_t frozen =
      plan.closed_through.load(std::memory_order_acquire);
  engine::for_each_slide_run(
      records, count, plan.slide_us,
      [&](std::int64_t slide, const engine::Record* run, std::size_t n) {
        if (slide < frozen) return;  // late beyond merged watermark
        auto it = shard.slides.find(slide);
        if (it == shard.slides.end()) {
          it = shard.slides
                   .try_emplace(slide,
                                plan.driver.slide_sampler_config(
                                    slide, w, plan.workers,
                                    shard.occupancy_my,
                                    shard.occupancy_total),
                                engine::RecordStratum{})
                   .first;
          atomic_min(plan.first_slide, slide);
        }
        it->second.offer_batch(run, n);
      });
}

/// The merger: watermark-gated slide closing, run in the calling thread
/// until every worker finished. `clocks` are per-partition high-water clocks
/// in group mode and per-worker republished watermarks in exchange mode;
/// `apply_idle_grace` is false in exchange mode because the exchange already
/// resolved the idleness policy into the values it forwarded.
void merge_until_done(ShardedPlan& plan,
                      std::vector<std::atomic<std::int64_t>>& clocks,
                      bool apply_idle_grace, std::int64_t idle_timeout_ms,
                      const std::function<void()>& after_close) {
  const auto close_one = [&](std::int64_t slide) {
    // Freeze the slide first: a racing worker either got its records in
    // before extraction (they are merged) or sees the fence and drops them
    // as late — exactly the sequential path's late-record rule.
    plan.closed_through.store(slide + 1, std::memory_order_release);
    PipelineDriver::Sampler merged(plan.driver.slide_sampler_config(slide),
                                   engine::RecordStratum{});
    for (auto& shard : plan.shards) {
      std::map<std::int64_t, PipelineDriver::Sampler>::node_type node;
      {
        std::lock_guard lock(shard.mutex);
        // Stranded entries below the closing slide are late beyond the
        // watermark (e.g. an idle-excluded partition woke with old data
        // after slides passed it): discard them, matching the sequential
        // path, which drops such records at offer time.
        while (!shard.slides.empty() &&
               shard.slides.begin()->first < slide) {
          shard.slides.erase(shard.slides.begin());
        }
        node = shard.slides.extract(slide);
      }
      if (node) merged.merge(node.mapped());
    }
    plan.driver.close_slide_sample(slide, merged.take());
    after_close();
  };

  std::optional<std::int64_t> next;
  bool any_closed = false;
  Stopwatch idle_watch;
  std::vector<std::int64_t> clock_snapshot(clocks.size());
  for (;;) {
    const bool all_done =
        plan.workers_done.load(std::memory_order_acquire) == plan.workers;
    const bool grace_over =
        apply_idle_grace &&
        idle_watch.millis() > static_cast<double>(idle_timeout_ms);
    for (std::size_t c = 0; c < clocks.size(); ++c) {
      clock_snapshot[c] = clocks[c].load(std::memory_order_acquire);
    }
    const auto view = evaluate_watermark(clock_snapshot, grace_over);
    const std::int64_t lo = plan.first_slide.load(std::memory_order_acquire);
    bool progressed = false;
    if (lo != kNoSlide && !view.blocked) {
      if (!next) {
        next = lo;
      } else if (!any_closed) {
        // Nothing closed yet: a slow partition may have delivered an even
        // earlier slide since the pin — include it rather than strand it.
        *next = std::min(*next, lo);
      }
      for (;;) {
        bool ripe = false;
        if (view.flush_all()) {
          // No source gates (drained and/or idle past grace): flush through
          // the last open slide so output is never stranded.
          std::int64_t hi = std::numeric_limits<std::int64_t>::min();
          for (auto& shard : plan.shards) {
            std::lock_guard lock(shard.mutex);
            if (!shard.slides.empty()) {
              hi = std::max(hi, shard.slides.rbegin()->first);
            }
          }
          ripe = hi != std::numeric_limits<std::int64_t>::min() && *next <= hi;
        } else {
          ripe = (*next + 1) * plan.slide_us <= view.watermark;
        }
        if (!ripe) break;
        close_one(*next);
        ++*next;
        any_closed = true;
        progressed = true;
      }
    }
    if (all_done) break;
    if (!progressed) {
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  }
}

}  // namespace

void StreamApprox::run_sharded(
    const std::function<void(const WindowOutput&)>& on_window) {
  auto& topic = broker_.topic(config_.topic);
  const std::size_t partitions = topic.partition_count();
  const bool use_exchange = config_.use_exchange;
  // Without the exchange, parallelism is capped by the partition split.
  const std::size_t workers =
      use_exchange ? config_.workers : std::min(config_.workers, partitions);
  const std::int64_t slide_us = config_.window.slide_us;

  PipelineDriver driver(driver_config(), on_window);
  const DriverInstallation installation(*this, driver);
  slide_budget_ = driver.current_budget();

  std::vector<Shard> shards(workers);
  ShardedPlan plan(driver, shards, workers, slide_us);
  const auto after_close = [&] { slide_budget_ = driver.current_budget(); };

  if (use_exchange) {
    // ---- Exchange mode: repartitioned batches, forwarded watermarks.
    ingest::ExchangeConfig exchange_config;
    exchange_config.workers = workers;
    exchange_config.batch_size = config_.exchange_batch_size;
    exchange_config.ring_capacity = config_.exchange_ring_capacity;
    exchange_config.idle_partition_timeout_ms =
        config_.idle_partition_timeout_ms;
    ingest::Exchange exchange(broker_, config_.topic, exchange_config);

    // Per-worker republished watermarks: a worker stores the watermark of a
    // batch only after absorbing it, so the merger's min over workers can
    // never run ahead of the samples.
    std::vector<std::atomic<std::int64_t>> clocks(workers);
    for (auto& clock : clocks) {
      clock.store(kNoClock, std::memory_order_relaxed);
    }

    ThreadPool pool(workers + 1);
    pool.submit([&] { exchange.run(); });
    for (std::size_t w = 0; w < workers; ++w) {
      pool.submit([&, w] {
        // Volatile-sunk at exit so the parse-work model survives
        // optimisation.
        double ingest_acc = 0.0;
        for (;;) {
          auto batch = exchange.pop(w);
          if (!batch) {
            if (exchange.drained(w)) break;
            std::this_thread::sleep_for(std::chrono::microseconds(100));
            continue;
          }
          for (const auto& record : batch->records) {
            ingest_acc += config_.ingest_cost.charge(record.value);
          }
          if (!batch->empty()) {
            absorb_batch(plan, w, batch->records.data(), batch->size(),
                         batch->route_strata, batch->total_strata);
          } else if (batch->total_strata > 0) {
            // A heartbeat can still carry a fresher occupancy stamp (another
            // channel discovered a stratum): shrink this worker's open
            // samplers to the smaller share without waiting for data.
            Shard& shard = plan.shards[w];
            std::lock_guard lock(shard.mutex);
            apply_occupancy_locked(plan, w, shard, batch->route_strata,
                                   batch->total_strata);
          }
          // Publish the batch's watermark after the samplers absorbed it.
          clocks[w].store(batch->watermark_us, std::memory_order_release);
          exchange.recycle(std::move(batch));
        }
        volatile double ingest_sink = ingest_acc;
        (void)ingest_sink;
        plan.workers_done.fetch_add(1, std::memory_order_release);
      });
    }
    // The exchange resolved the idleness policy already; the merger applies
    // the forwarded values verbatim.
    merge_until_done(plan, clocks, /*apply_idle_grace=*/false,
                     config_.idle_partition_timeout_ms, after_close);
  } else {
    // ---- Group mode: the consumer group owns the partition split; each
    // worker thread drives exactly one member (no offset state is shared
    // between threads).
    ingest::ConsumerGroup group(broker_, config_.topic, workers);
    // Per-partition high-water event-time clocks: kNoClock until the
    // partition's first record, kPartitionDrained once sealed and drained
    // (the shared low-watermark policy of core/watermark.h).
    std::vector<std::atomic<std::int64_t>> clocks(partitions);
    for (auto& clock : clocks) {
      clock.store(kNoClock, std::memory_order_relaxed);
    }

    ThreadPool pool(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.submit([&, w] {
        ingest::Consumer& consumer = group.member(w);
        const auto& assignment = consumer.assignment();
        std::vector<std::int64_t> batch_clock(partitions, kNoClock);
        // Reused poll buffer: steady-state polling is allocation-free.
        std::vector<engine::Record> records;
        records.reserve(config_.poll_batch);
        double ingest_acc = 0.0;
        for (;;) {
          consumer.poll(records, config_.poll_batch, /*timeout_ms=*/50);
          if (!records.empty()) {
            for (const std::size_t p : assignment) batch_clock[p] = kNoClock;
            Shard& own = plan.shards[w];
            for (const auto& record : records) {
              ingest_acc += config_.ingest_cost.charge(record.value);
              const std::size_t p = topic.partition_for_key(record.stratum);
              batch_clock[p] = std::max(batch_clock[p], record.event_time_us);
              // Occupancy discovery (no exchange to stamp it): this worker's
              // stratum set is owner-local, only the total is shared.
              if (own.local_strata.insert(record.stratum).second) {
                plan.total_strata.fetch_add(1, std::memory_order_acq_rel);
              }
            }
            absorb_batch(plan, w, records.data(), records.size(),
                         own.local_strata.size(),
                         plan.total_strata.load(std::memory_order_acquire));
            // Publish clocks after the samplers absorbed the batch, so the
            // merger can never observe a watermark ahead of the samples.
            for (const std::size_t p : assignment) {
              if (batch_clock[p] == kNoClock) continue;
              const std::int64_t previous =
                  clocks[p].load(std::memory_order_relaxed);
              if (batch_clock[p] > previous) {
                clocks[p].store(batch_clock[p], std::memory_order_release);
              }
            }
          }
          // Partitions drained to a sealed end stop gating the watermark,
          // so an idle partition cannot stall every window behind it.
          for (std::size_t slot = 0; slot < assignment.size(); ++slot) {
            if (consumer.partition_exhausted(slot)) {
              clocks[assignment[slot]].store(kPartitionDrained,
                                             std::memory_order_release);
            }
          }
          if (records.empty() && consumer.exhausted()) break;
        }
        volatile double ingest_sink = ingest_acc;
        (void)ingest_sink;
        plan.workers_done.fetch_add(1, std::memory_order_release);
      });
    }
    merge_until_done(plan, clocks, /*apply_idle_grace=*/true,
                     config_.idle_partition_timeout_ms, after_close);
  }

  driver.finish();  // no-op safeguard: external mode leaves nothing open
  slide_budget_ = driver.current_budget();
}

}  // namespace streamapprox::core
