// Sharded execution of the StreamApprox facade — the paper's central
// "no synchronisation between workers" claim (§3.2, Algorithm 3) realised:
//
//   consumer group   partitions split round-robin across N workers
//   N workers        each samples its sub-streams with LOCAL per-slide
//                    OASRS samplers; no lock is shared between two workers
//                    on the sampling hot path (each worker's mutex exists
//                    only to hand closed slides to the merger)
//   merger           once the global low-watermark (the slowest partition's
//                    high-water timestamp) passes a slide's end, extracts
//                    that slide's sampler from every worker, concatenates
//                    them with OasrsSampler::merge(), and closes the slide
//                    through the shared PipelineDriver — estimator inputs
//                    identical to the sequential path modulo stratum order,
//                    because the broker routes each stratum to exactly one
//                    partition and therefore to exactly one worker.
//
// The adaptive feedback loop still works: the merger re-tunes the driver's
// budget as windows complete, and workers read the atomic budget when they
// open samplers for new slides.
#include <atomic>
#include <chrono>
#include <limits>
#include <map>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/thread_pool.h"
#include "core/stream_approx.h"
#include "core/watermark.h"
#include "ingest/broker.h"

namespace streamapprox::core {
namespace {

constexpr std::int64_t kNoSlide = std::numeric_limits<std::int64_t>::max();

/// Worker-local state the merger reaches into: the per-slide samplers of one
/// shard, guarded by a mutex the owning worker holds only while applying a
/// polled batch (never across polls, never against another worker).
struct Shard {
  std::mutex mutex;
  std::map<std::int64_t, PipelineDriver::Sampler> slides;
};

void atomic_min(std::atomic<std::int64_t>& target, std::int64_t value) {
  std::int64_t current = target.load(std::memory_order_relaxed);
  while (value < current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_release,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

void StreamApprox::run_sharded(
    const std::function<void(const WindowOutput&)>& on_window) {
  auto& topic = broker_.topic(config_.topic);
  const std::size_t partitions = topic.partition_count();
  const std::size_t workers = std::min(config_.workers, partitions);
  const std::int64_t slide_us = config_.window.slide_us;

  PipelineDriver driver(driver_config(), on_window);
  slide_budget_ = driver.current_budget();

  // The consumer group owns the partition split; each worker thread drives
  // exactly one member (no offset state is shared between threads).
  ingest::ConsumerGroup group(broker_, config_.topic, workers);

  std::vector<Shard> shards(workers);
  // Per-partition high-water event-time clocks: kNoClock until the
  // partition's first record, kPartitionDrained once sealed and drained
  // (the shared low-watermark policy of core/watermark.h).
  std::vector<std::atomic<std::int64_t>> clocks(partitions);
  for (auto& clock : clocks) clock.store(kNoClock, std::memory_order_relaxed);
  // The earliest slide observed anywhere (the cold-start base slide).
  std::atomic<std::int64_t> first_slide{kNoSlide};
  // Slides below this are closed; workers drop records for them as late.
  std::atomic<std::int64_t> closed_through{
      std::numeric_limits<std::int64_t>::min()};
  std::atomic<std::size_t> workers_done{0};

  ThreadPool pool(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.submit([&, w] {
      ingest::Consumer& consumer = group.member(w);
      const auto& assignment = consumer.assignment();
      auto& shard = shards[w];
      std::vector<std::int64_t> batch_clock(partitions, kNoClock);
      // Volatile-sunk at exit so the parse-work model survives optimisation.
      double ingest_acc = 0.0;
      for (;;) {
        auto records = consumer.poll(config_.poll_batch, /*timeout_ms=*/50);
        if (!records.empty()) {
          for (const std::size_t p : assignment) batch_clock[p] = kNoClock;
          {
            std::lock_guard lock(shard.mutex);
            const std::int64_t frozen =
                closed_through.load(std::memory_order_acquire);
            for (const auto& record : records) {
              ingest_acc += config_.ingest_cost.charge(record.value);
              const std::int64_t slide = record.event_time_us / slide_us;
              if (slide < frozen) continue;  // late beyond merged watermark
              auto it = shard.slides.find(slide);
              if (it == shard.slides.end()) {
                it = shard.slides
                         .try_emplace(slide,
                                      driver.slide_sampler_config(slide, w,
                                                                  workers),
                                      engine::RecordStratum{})
                         .first;
                atomic_min(first_slide, slide);
              }
              it->second.offer(record);
              const std::size_t p = topic.partition_for_key(record.stratum);
              batch_clock[p] = std::max(batch_clock[p], record.event_time_us);
            }
          }
          // Publish clocks after the samplers absorbed the batch, so the
          // merger can never observe a watermark ahead of the samples.
          for (const std::size_t p : assignment) {
            if (batch_clock[p] == kNoClock) continue;
            const std::int64_t previous =
                clocks[p].load(std::memory_order_relaxed);
            if (batch_clock[p] > previous) {
              clocks[p].store(batch_clock[p], std::memory_order_release);
            }
          }
        }
        // Partitions drained to a sealed end stop gating the watermark, so
        // an idle partition cannot stall every window behind it.
        for (std::size_t slot = 0; slot < assignment.size(); ++slot) {
          if (consumer.partition_exhausted(slot)) {
            clocks[assignment[slot]].store(kPartitionDrained,
                                           std::memory_order_release);
          }
        }
        if (records.empty() && consumer.exhausted()) break;
      }
      volatile double ingest_sink = ingest_acc;
      (void)ingest_sink;
      workers_done.fetch_add(1, std::memory_order_release);
    });
  }

  // ---- Merger: watermark-gated slide closing in the calling thread.
  const auto close_one = [&](std::int64_t slide) {
    // Freeze the slide first: a racing worker either got its records in
    // before extraction (they are merged) or sees the fence and drops them
    // as late — exactly the sequential path's late-record rule.
    closed_through.store(slide + 1, std::memory_order_release);
    PipelineDriver::Sampler merged(driver.slide_sampler_config(slide),
                                   engine::RecordStratum{});
    for (auto& shard : shards) {
      std::map<std::int64_t, PipelineDriver::Sampler>::node_type node;
      {
        std::lock_guard lock(shard.mutex);
        // Stranded entries below the closing slide are late beyond the
        // watermark (e.g. an idle-excluded partition woke with old data
        // after slides passed it): discard them, matching the sequential
        // path, which drops such records at offer time.
        while (!shard.slides.empty() &&
               shard.slides.begin()->first < slide) {
          shard.slides.erase(shard.slides.begin());
        }
        node = shard.slides.extract(slide);
      }
      if (node) merged.merge(node.mapped());
    }
    driver.close_slide_sample(slide, merged.take());
    slide_budget_ = driver.current_budget();
  };

  std::optional<std::int64_t> next;
  bool any_closed = false;
  Stopwatch idle_watch;
  std::vector<std::int64_t> clock_snapshot(partitions);
  for (;;) {
    const bool all_done =
        workers_done.load(std::memory_order_acquire) == workers;
    const bool grace_over =
        idle_watch.millis() > static_cast<double>(
                                  config_.idle_partition_timeout_ms);
    for (std::size_t p = 0; p < partitions; ++p) {
      clock_snapshot[p] = clocks[p].load(std::memory_order_acquire);
    }
    const auto view = evaluate_watermark(clock_snapshot, grace_over);
    const std::int64_t lo = first_slide.load(std::memory_order_acquire);
    bool progressed = false;
    if (lo != kNoSlide && !view.blocked) {
      if (!next) {
        next = lo;
      } else if (!any_closed) {
        // Nothing closed yet: a slow partition may have delivered an even
        // earlier slide since the pin — include it rather than strand it.
        *next = std::min(*next, lo);
      }
      for (;;) {
        bool ripe = false;
        if (view.flush_all()) {
          // No partition gates (drained and/or idle past grace): flush
          // through the last open slide so output is never stranded.
          std::int64_t hi = std::numeric_limits<std::int64_t>::min();
          for (auto& shard : shards) {
            std::lock_guard lock(shard.mutex);
            if (!shard.slides.empty()) {
              hi = std::max(hi, shard.slides.rbegin()->first);
            }
          }
          ripe = hi != std::numeric_limits<std::int64_t>::min() && *next <= hi;
        } else {
          ripe = (*next + 1) * slide_us <= view.watermark;
        }
        if (!ripe) break;
        close_one(*next);
        ++*next;
        any_closed = true;
        progressed = true;
      }
    }
    if (all_done) break;
    if (!progressed) {
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  }

  driver.finish();  // no-op safeguard: external mode leaves nothing open
  slide_budget_ = driver.current_budget();
}

}  // namespace streamapprox::core
