// Sharded execution of the StreamApprox facade — the paper's central
// "no synchronisation between workers" claim (§3.2, Algorithm 3) realised
// over a batched morsel data plane. Two ingest front-ends share one
// watermark-gated merger:
//
//   exchange mode    (default) E exchange shards each poll their partition
//                    subset in batches and re-key them by stratum hash onto
//                    per-worker SPSC channels (ingest/exchange.h), so the
//                    worker count is independent of the topic's partition
//                    count; each batch carries that shard's resolved
//                    low-watermark, and workers report absorption through a
//                    per-channel completion tracker so the merger's
//                    min-combined watermark never runs ahead of the samples;
//   group mode       (use_exchange = false) a consumer group splits the
//                    partitions across N workers, each polling its subset
//                    directly; per-partition clocks drive the watermark.
//
// Work-stealing morsel scheduler (exchange mode, config.work_stealing).
// Workers are no longer statically bound to their channels: each worker
// drains its own inboxes into a per-worker StealDeque (common/queue.h) and
// works LIFO off the bottom; when its own work runs out it pops the shared
// overflow injector, then steals the OLDEST morsel off another worker's
// deque. A stolen morsel is absorbed into the THIEF's local per-slide
// samplers — safe because OASRS samplers merge associatively at slide close
// (the merger concatenates whatever shard holds each stratum's reservoir),
// so per-window records_seen is schedule-independent. Deque overflow spills
// to the injector; when both are full the owner absorbs in place, so the
// exchange can never deadlock against a full topology. Out-of-order
// completion is reconciled by ChannelProgress below.
//
// In both modes every worker samples with LOCAL per-slide OASRS samplers —
// no lock is shared between two workers on the sampling hot path (each
// worker's mutex exists only to hand closed slides to the merger) — and all
// ingest is batch-at-a-time: one mutex acquisition and one slide-map lookup
// per run of same-slide records, never a per-record offer() loop.
//
//   merger           once the low-watermark passes a slide's end, extracts
//                    that slide's sampler from every worker, concatenates
//                    them with OasrsSampler::merge(), and closes the slide
//                    through the shared PipelineDriver — estimator inputs
//                    identical to the sequential path modulo stratum order,
//                    because routing (broker partitioning or exchange
//                    stratum hash) sends each stratum to exactly one worker.
//
// The adaptive feedback loop still works: the merger re-tunes the driver's
// budget as windows complete (max across every registered query's accuracy
// target — see core/query.h), and workers read the atomic budget when they
// open samplers for new slides. The per-slide budget is split across
// workers by STRATUM OCCUPANCY (budget · my_strata/total_strata, stamped on
// exchange batches or discovered locally in group mode), not by the flat
// budget/workers share that undershoots when strata spread unevenly. Query
// evaluation itself lives entirely behind the driver's query registry, so
// the sharded data plane is byte-for-byte the same whether one query or N
// are registered — and queries may attach/detach mid-run: the merger
// applies registry changes at slide-close boundaries, workers never notice.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/clock.h"
#include "common/queue.h"
#include "common/thread_pool.h"
#include "core/stream_approx.h"
#include "core/watermark.h"
#include "engine/record_batch.h"
#include "ingest/broker.h"
#include "ingest/exchange.h"

namespace streamapprox::core {
namespace {

constexpr std::int64_t kNoSlide = std::numeric_limits<std::int64_t>::max();

/// One worker's state for one open slide: the OASRS sampler plus the sketch
/// states collecting beside it over the full (unsampled) record stream. Both
/// merge at slide close — the sampler distribution-identically, the sketches
/// exactly, which is what makes sharded sketch answers bit-identical to the
/// sequential path's.
struct WorkerSlide {
  PipelineDriver::Sampler sampler;
  sketch::SlideSketches sketches;

  WorkerSlide(sampling::OasrsConfig config,
              std::shared_ptr<const sketch::SketchPlan> plan)
      : sampler(std::move(config), engine::RecordStratum{}),
        sketches(*plan) {}
};

/// Worker-local state the merger reaches into: the per-slide samplers of one
/// shard, guarded by a mutex the owning worker holds only while applying a
/// polled batch (never across polls, never against another worker).
struct Shard {
  std::mutex mutex;
  std::map<std::int64_t, WorkerSlide> slides;
  /// The stratum-occupancy share last applied to this shard's samplers:
  /// `occupancy_my` of `occupancy_total` strata route here, so new slide
  /// samplers get budget · my/total instead of the flat budget/workers
  /// split (which undershoots whenever strata spread unevenly — the
  /// quickstart's 3 strata over 4 workers sampled ~half the budget).
  std::size_t occupancy_my = 0;
  std::size_t occupancy_total = 0;
  /// Group mode only: the strata this worker has discovered in its own
  /// partition subset (owner-thread access only).
  std::unordered_set<sampling::StratumId> local_strata;
};

void atomic_min(std::atomic<std::int64_t>& target, std::int64_t value) {
  std::int64_t current = target.load(std::memory_order_relaxed);
  while (value < current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_release,
                                       std::memory_order_relaxed)) {
  }
}

/// Morsel-completion tracker for the work-stealing scheduler. Stolen morsels
/// are absorbed out of channel order, but a channel's watermark clock may
/// only cover records already in samplers — so each channel's clock advances
/// over the CONTIGUOUS PREFIX of completed sequence numbers, publishing the
/// watermark of the last batch in the prefix. The exchange stamps seqs
/// gaplessly per channel (heartbeats included), so the prefix always catches
/// up; per-shard watermarks are monotone, so the published clock is too.
class ChannelProgress {
 public:
  ChannelProgress(std::size_t channels,
                  std::vector<std::atomic<std::int64_t>>& clocks)
      : states_(channels), clocks_(clocks) {}

  /// Reports batch (channel, seq) absorbed with watermark `watermark_us`.
  void complete(std::uint32_t channel, std::uint64_t seq,
                std::int64_t watermark_us) {
    State& state = states_[channel];
    std::lock_guard lock(state.mutex);
    state.pending.emplace(seq, watermark_us);
    std::int64_t publish = kNoClock;
    bool advanced = false;
    while (!state.pending.empty() &&
           state.pending.begin()->first == state.next) {
      publish = state.pending.begin()->second;
      state.pending.erase(state.pending.begin());
      ++state.next;
      advanced = true;
    }
    // Publish under the lock: two thieves finishing prefixes back-to-back
    // must store in prefix order or the clock could transiently regress.
    if (advanced) clocks_[channel].store(publish, std::memory_order_release);
  }

 private:
  struct State {
    std::mutex mutex;
    std::uint64_t next = 0;  ///< first sequence number not yet completed
    std::map<std::uint64_t, std::int64_t> pending;  ///< completed, gapped
  };
  std::vector<State> states_;
  std::vector<std::atomic<std::int64_t>>& clocks_;
};

/// Cross-worker totals of the morsel scheduler, flushed once per worker at
/// exit (the hot loop counts into locals).
struct SchedulerCounters {
  std::atomic<std::uint64_t> owner_pops{0};
  std::atomic<std::uint64_t> steals{0};
  std::atomic<std::uint64_t> injector_pushes{0};
  std::atomic<std::uint64_t> injector_pops{0};
  std::atomic<std::uint64_t> batches{0};
  std::atomic<std::uint64_t> heartbeats{0};
  std::atomic<std::uint64_t> records{0};
};

/// Everything the ingest front-ends and the merger share.
struct ShardedPlan {
  PipelineDriver& driver;
  std::vector<Shard>& shards;
  std::size_t workers;
  std::int64_t slide_us;
  /// The earliest slide observed anywhere (the cold-start base slide).
  std::atomic<std::int64_t> first_slide{kNoSlide};
  /// Slides below this are closed; workers drop records for them as late.
  std::atomic<std::int64_t> closed_through{
      std::numeric_limits<std::int64_t>::min()};
  std::atomic<std::size_t> workers_done{0};
  /// Group mode only: total strata discovered across all workers (exchange
  /// mode carries the deterministic equivalent on every batch stamp).
  std::atomic<std::size_t> total_strata{0};
  /// Skip-ahead kernel totals, accumulated by the merger at each slide close
  /// (worker sampler stats ride along through OasrsSampler::merge).
  std::atomic<std::uint64_t> sampler_bulk_runs{0};
  std::atomic<std::uint64_t> sampler_accepts{0};
  std::atomic<std::uint64_t> sampler_skipped{0};

  ShardedPlan(PipelineDriver& driver, std::vector<Shard>& shards,
              std::size_t workers, std::int64_t slide_us)
      : driver(driver), shards(shards), workers(workers), slide_us(slide_us) {}
};

/// Applies an occupancy stamp to worker `w`'s shard. When the stamp changed,
/// every open sampler's budget is re-tuned to the new occupancy share —
/// shrinks apply to live reservoirs immediately (a uniform subsample stays
/// uniform), growth applies at the sampler's next reset. Caller holds the
/// shard mutex.
void apply_occupancy_locked(ShardedPlan& plan, std::size_t w, Shard& shard,
                            std::size_t my_strata, std::size_t total_strata) {
  if (my_strata == shard.occupancy_my &&
      total_strata == shard.occupancy_total) {
    return;
  }
  shard.occupancy_my = my_strata;
  shard.occupancy_total = total_strata;
  for (auto& [slide, open] : shard.slides) {
    open.sampler.set_total_budget(
        plan.driver
            .slide_sampler_config(slide, w, plan.workers, my_strata,
                                  total_strata)
            .total_budget);
  }
}

/// Routes one batch into worker `w`'s local per-slide samplers: one mutex
/// acquisition per batch, one slide-map lookup per run of consecutive
/// same-slide records, one OASRS bulk offer per run. `runs`/`run_count` are
/// the batch's stratum run descriptors when the producer stamped them
/// (exchange mode) — each slide run is intersected with them and fed to the
/// sampler's offer_run fast path, which skips key extraction per record and
/// (with skip-ahead on) never reads the records a saturated reservoir
/// rejects; nullptr/0 falls back to per-record keying. `my_strata` /
/// `total_strata` is the stratum-occupancy stamp in force for this batch
/// (exchange mode: carried on the batch; group mode: worker-local
/// discovery), driving the occupancy-aware budget split. `apply_stamp` is
/// false when a thief absorbs a STOLEN morsel: the victim channel's stamp
/// describes the victim's stratum set, not the thief's, so the thief keeps
/// its own occupancy share (records_seen is unaffected either way).
void absorb_batch(ShardedPlan& plan, std::size_t w,
                  const engine::Record* records, std::size_t count,
                  const engine::StratumRun* runs, std::size_t run_count,
                  std::size_t my_strata, std::size_t total_strata,
                  bool apply_stamp = true) {
  Shard& shard = plan.shards[w];
  std::lock_guard lock(shard.mutex);
  if (apply_stamp) {
    apply_occupancy_locked(plan, w, shard, my_strata, total_strata);
  }
  const std::int64_t frozen =
      plan.closed_through.load(std::memory_order_acquire);
  // Cursor into the stratum run descriptors, shared across slide runs: both
  // segmentations walk the batch left to right, so one forward pass covers
  // every intersection even when a stratum run straddles a slide boundary
  // (or a late-dropped slide consumed part of it).
  std::size_t ri = 0;
  engine::for_each_slide_run(
      records, count, plan.slide_us,
      [&](std::int64_t slide, const engine::Record* run, std::size_t n) {
        if (slide < frozen) return;  // late beyond merged watermark
        auto it = shard.slides.find(slide);
        if (it == shard.slides.end()) {
          it = shard.slides
                   .try_emplace(slide,
                                plan.driver.slide_sampler_config(
                                    slide, w, plan.workers,
                                    shard.occupancy_my,
                                    shard.occupancy_total),
                                plan.driver.sketch_plan())
                   .first;
          atomic_min(plan.first_slide, slide);
        }
        // Sketches digest the FULL stream (sampling happens beside them),
        // whichever worker the run landed on — merge exactness makes the
        // final per-slide state independent of that placement.
        it->second.sketches.absorb(run, n);
        if (run_count == 0) {
          it->second.sampler.offer_batch(run, n);
          return;
        }
        const std::size_t begin = static_cast<std::size_t>(run - records);
        const std::size_t slide_end = begin + n;
        while (ri < run_count &&
               runs[ri].offset + runs[ri].length <= begin) {
          ++ri;
        }
        std::size_t pos = begin;
        while (pos < slide_end) {
          const engine::StratumRun& sr = runs[ri];
          const std::size_t sr_end = sr.offset + sr.length;
          const std::size_t take =
              std::min<std::size_t>(sr_end, slide_end) - pos;
          it->second.sampler.offer_run(sr.stratum, records + pos, take);
          pos += take;
          if (sr_end <= pos) ++ri;
        }
      });
}

/// The merger: watermark-gated slide closing, run in the calling thread
/// until every worker finished. `clocks` are per-partition high-water clocks
/// in group mode and per-worker republished watermarks in exchange mode;
/// `apply_idle_grace` is false in exchange mode because the exchange already
/// resolved the idleness policy into the values it forwarded.
void merge_until_done(ShardedPlan& plan,
                      std::vector<std::atomic<std::int64_t>>& clocks,
                      bool apply_idle_grace, std::int64_t idle_timeout_ms,
                      const std::function<void(std::int64_t)>& after_close) {
  const auto close_one = [&](std::int64_t slide) {
    // Freeze the slide first: a racing worker either got its records in
    // before extraction (they are merged) or sees the fence and drops them
    // as late — exactly the sequential path's late-record rule.
    plan.closed_through.store(slide + 1, std::memory_order_release);
    PipelineDriver::Sampler merged(plan.driver.slide_sampler_config(slide),
                                   engine::RecordStratum{});
    sketch::SlideSketches merged_sketches;
    for (auto& shard : plan.shards) {
      std::map<std::int64_t, WorkerSlide>::node_type node;
      {
        std::lock_guard lock(shard.mutex);
        // Stranded entries below the closing slide are late beyond the
        // watermark (e.g. an idle-excluded partition woke with old data
        // after slides passed it): discard them, matching the sequential
        // path, which drops such records at offer time.
        while (!shard.slides.empty() &&
               shard.slides.begin()->first < slide) {
          shard.slides.erase(shard.slides.begin());
        }
        node = shard.slides.extract(slide);
      }
      if (node) {
        merged.merge(node.mapped().sampler);
        merged_sketches.merge(node.mapped().sketches);
      }
    }
    // Kernel counters rode along through merge(); the extracted per-slide
    // samplers are destroyed below, so this is the one place to bank them.
    const auto& ks = merged.kernel_stats();
    plan.sampler_bulk_runs.fetch_add(ks.bulk_runs, std::memory_order_relaxed);
    plan.sampler_accepts.fetch_add(ks.accepted, std::memory_order_relaxed);
    plan.sampler_skipped.fetch_add(ks.skipped, std::memory_order_relaxed);
    plan.driver.close_slide_sample(slide, merged.take(),
                                   std::move(merged_sketches));
    after_close(slide);
  };

  std::optional<std::int64_t> next;
  bool any_closed = false;
  Stopwatch idle_watch;
  std::vector<std::int64_t> clock_snapshot(clocks.size());
  for (;;) {
    const bool all_done =
        plan.workers_done.load(std::memory_order_acquire) == plan.workers;
    const bool grace_over =
        apply_idle_grace &&
        idle_watch.millis() > static_cast<double>(idle_timeout_ms);
    for (std::size_t c = 0; c < clocks.size(); ++c) {
      clock_snapshot[c] = clocks[c].load(std::memory_order_acquire);
    }
    const auto view = evaluate_watermark(clock_snapshot, grace_over);
    const std::int64_t lo = plan.first_slide.load(std::memory_order_acquire);
    bool progressed = false;
    if (lo != kNoSlide && !view.blocked) {
      if (!next) {
        next = lo;
      } else if (!any_closed) {
        // Nothing closed yet: a slow partition may have delivered an even
        // earlier slide since the pin — include it rather than strand it.
        *next = std::min(*next, lo);
      }
      for (;;) {
        bool ripe = false;
        if (view.flush_all()) {
          // No source gates (drained and/or idle past grace): flush through
          // the last open slide so output is never stranded.
          std::int64_t hi = std::numeric_limits<std::int64_t>::min();
          for (auto& shard : plan.shards) {
            std::lock_guard lock(shard.mutex);
            if (!shard.slides.empty()) {
              hi = std::max(hi, shard.slides.rbegin()->first);
            }
          }
          ripe = hi != std::numeric_limits<std::int64_t>::min() && *next <= hi;
        } else {
          ripe = (*next + 1) * plan.slide_us <= view.watermark;
        }
        if (!ripe) break;
        close_one(*next);
        ++*next;
        any_closed = true;
        progressed = true;
      }
    }
    if (all_done) break;
    if (!progressed) {
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  }
}

}  // namespace

void StreamApprox::run_sharded(
    const std::function<void(const WindowOutput&)>& on_window) {
  auto& topic = broker_.topic(config_.topic);
  const std::size_t partitions = topic.partition_count();
  const bool use_exchange = config_.use_exchange;
  // Without the exchange, parallelism is capped by the partition split.
  const std::size_t workers =
      use_exchange ? config_.workers : std::min(config_.workers, partitions);
  const std::int64_t slide_us = config_.window.slide_us;

  PipelineDriver driver(driver_config(), on_window);
  const DriverInstallation installation(*this, driver);
  slide_budget_ = driver.current_budget();

  std::vector<Shard> shards(workers);
  ShardedPlan plan(driver, shards, workers, slide_us);

  if (use_exchange) {
    // ---- Exchange mode: E exchange shards repartition their partition
    // subsets onto per-worker channels; workers run the morsel scheduler.
    const std::size_t exchange_count =
        std::max<std::size_t>(1, config_.exchanges);
    const bool stealing = config_.work_stealing;
    const std::size_t deque_capacity =
        std::max<std::size_t>(2, config_.steal_deque_capacity);
    run_stats_.exchanges = exchange_count;
    run_stats_.workers = workers;
    run_stats_.per_worker_records.assign(workers, 0);

    std::vector<std::unique_ptr<ingest::Exchange>> exchanges;
    exchanges.reserve(exchange_count);
    for (std::size_t e = 0; e < exchange_count; ++e) {
      ingest::ExchangeConfig exchange_config;
      exchange_config.workers = workers;
      exchange_config.batch_size = config_.exchange_batch_size;
      exchange_config.ring_capacity = config_.exchange_ring_capacity;
      exchange_config.idle_partition_timeout_ms =
          config_.idle_partition_timeout_ms;
      exchange_config.exchange_index = e;
      exchange_config.exchange_count = exchange_count;
      exchange_config.bulk_routing = config_.bulk_exchange_routing;
      exchanges.push_back(std::make_unique<ingest::Exchange>(
          broker_, config_.topic, exchange_config));
    }

    // One watermark clock per CHANNEL (= exchange e × worker w, index
    // e·W + w), advanced only by the completion tracker — so a clock covers
    // exactly the contiguously absorbed prefix of its channel, and the
    // merger's min over all E·W clocks min-combines the per-shard
    // watermarks (core::resolve_watermark explains why that composes).
    const std::size_t channels = exchange_count * workers;
    std::vector<std::atomic<std::int64_t>> clocks(channels);
    for (auto& clock : clocks) {
      clock.store(kNoClock, std::memory_order_relaxed);
    }
    ChannelProgress progress(channels, clocks);

    // The scheduler's queues: one steal deque per worker plus the shared
    // overflow injector (deque full → injector; both full → absorb in
    // place, so backpressure can never deadlock the topology).
    std::vector<std::unique_ptr<StealDeque<engine::RecordBatch*>>> deques;
    deques.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      deques.push_back(std::make_unique<StealDeque<engine::RecordBatch*>>(
          deque_capacity));
    }
    BoundedQueue<engine::RecordBatch*> injector(
        std::max<std::size_t>(64, workers * deque_capacity));
    SchedulerCounters counters;

    const auto after_close = [&](std::int64_t slide) {
      slide_budget_ = driver.current_budget();
      // Watermark lag: how far ingest had run ahead of this close.
      std::int64_t max_event = engine::kNoWatermark;
      for (const auto& exchange : exchanges) {
        max_event = std::max(max_event, exchange->max_routed_event_us());
      }
      if (max_event != engine::kNoWatermark) {
        run_stats_.watermark_lag_us.push_back(max_event -
                                              (slide + 1) * slide_us);
      }
    };

    {
      ThreadPool pool(workers + exchange_count);
      for (std::size_t e = 0; e < exchange_count; ++e) {
        pool.submit([&, e] {
          set_current_thread_name(("sa-exch-" + std::to_string(e)).c_str());
          exchanges[e]->run();
        });
      }
      for (std::size_t w = 0; w < workers; ++w) {
        pool.submit([&, w] {
          set_current_thread_name(("sa-work-" + std::to_string(w)).c_str());
          // Volatile-sunk at exit so the parse-work model survives
          // optimisation.
          double ingest_acc = 0.0;
          // This worker's occupancy stamps, one per OWN channel. Strata are
          // disjoint across exchange shards (each stratum lives on exactly
          // one partition), so the summed stamps are the worker's true
          // occupancy share across the sharded exchange.
          std::vector<std::uint32_t> stamp_my(exchange_count, 0);
          std::vector<std::uint32_t> stamp_total(exchange_count, 0);
          std::uint64_t n_owner = 0, n_steal = 0, n_inj_push = 0,
                        n_inj_pop = 0, n_batches = 0, n_heartbeats = 0,
                        n_records = 0;

          const auto summed_occupancy = [&](std::size_t& my,
                                            std::size_t& total) {
            my = 0;
            total = 0;
            for (std::size_t e = 0; e < exchange_count; ++e) {
              my += stamp_my[e];
              total += stamp_total[e];
            }
          };

          // Absorbs one data morsel into THIS worker's local samplers.
          // Owner morsels refresh the occupancy stamp; stolen ones keep the
          // thief's share (absorb_batch comment). Completion is reported
          // after the samplers hold the records — the watermark invariant.
          const auto absorb = [&](engine::RecordBatch* raw) {
            ingest::Exchange::BatchPtr batch(raw);
            const std::size_t e = batch->channel / workers;
            const bool own = batch->channel % workers == w;
            for (const auto& record : batch->records) {
              ingest_acc += config_.ingest_cost.charge(record.value);
            }
            if (own) {
              stamp_my[e] = batch->route_strata;
              stamp_total[e] = batch->total_strata;
            }
            std::size_t my = 0, total = 0;
            summed_occupancy(my, total);
            absorb_batch(plan, w, batch->records.data(), batch->size(),
                         batch->stratum_runs.data(),
                         batch->stratum_runs.size(), my, total,
                         /*apply_stamp=*/own);
            ++n_batches;
            n_records += batch->size();
            progress.complete(batch->channel, batch->seq,
                              batch->watermark_us);
            exchanges[e]->recycle(std::move(batch));
          };

          // Heartbeats never enter the deques (no records to steal): the
          // owner applies the occupancy stamp and completes them inline. A
          // heartbeat can shrink open samplers when another channel
          // discovered a stratum.
          const auto handle_heartbeat =
              [&](ingest::Exchange::BatchPtr batch) {
                const std::size_t e = batch->channel / workers;
                stamp_my[e] = batch->route_strata;
                stamp_total[e] = batch->total_strata;
                std::size_t my = 0, total = 0;
                summed_occupancy(my, total);
                if (total > 0) {
                  Shard& shard = plan.shards[w];
                  std::lock_guard lock(shard.mutex);
                  apply_occupancy_locked(plan, w, shard, my, total);
                }
                ++n_heartbeats;
                progress.complete(batch->channel, batch->seq,
                                  batch->watermark_us);
                exchanges[e]->recycle(std::move(batch));
              };

          StealDeque<engine::RecordBatch*>& deque = *deques[w];
          std::vector<ingest::Exchange::BatchPtr> inbox;
          inbox.reserve(deque_capacity);

          // Drains this worker's own inboxes (one ring per exchange shard)
          // into its deque, spilling overflow to the injector.
          const auto refill = [&]() -> bool {
            bool any = false;
            for (std::size_t e = 0; e < exchange_count; ++e) {
              inbox.clear();
              exchanges[e]->pop_n(w, inbox, deque_capacity);
              for (auto& polled : inbox) {
                any = true;
                if (polled->heartbeat) {
                  handle_heartbeat(std::move(polled));
                  continue;
                }
                engine::RecordBatch* raw = polled.release();
                if (!deque.push_bottom(raw)) {
                  if (injector.try_push(raw)) {
                    ++n_inj_push;
                  } else {
                    // Deque and injector both full: absorb in place so the
                    // exchange's backpressure can always drain.
                    absorb(raw);
                    ++n_owner;
                  }
                }
              }
            }
            return any;
          };

          if (stealing) {
            for (;;) {
              // 1. Own deque, newest first (cache-warm LIFO).
              if (auto raw = deque.pop_bottom()) {
                absorb(*raw);
                ++n_owner;
                continue;
              }
              // 2. Refill from own inboxes (also exposes backlog to
              // thieves).
              if (refill()) continue;
              // 3. Shared injector overflow.
              if (auto raw = injector.try_pop()) {
                absorb(*raw);
                ++n_inj_pop;
                continue;
              }
              // 4. Steal the oldest morsel off another worker's deque.
              bool stole = false;
              for (std::size_t offset = 1; offset < workers && !stole;
                   ++offset) {
                if (auto raw = deques[(w + offset) % workers]->steal_top()) {
                  absorb(*raw);
                  ++n_steal;
                  stole = true;
                }
              }
              if (stole) continue;
              // 5. Exit only with own inboxes drained and both queues this
              // worker could still be responsible for empty. A worker that
              // spilled to the injector always reaches this check again, so
              // injector morsels can never be orphaned.
              bool inputs_done = true;
              for (std::size_t e = 0; e < exchange_count; ++e) {
                inputs_done = inputs_done && exchanges[e]->drained(w);
              }
              if (inputs_done && deque.empty() && injector.size() == 0) {
                break;
              }
              std::this_thread::sleep_for(std::chrono::microseconds(50));
            }
          } else {
            // Static binding (the steal-skew benchmark's baseline, and the
            // PR 2 behaviour): each worker consumes exactly its own
            // channels.
            for (;;) {
              bool any = false;
              for (std::size_t e = 0; e < exchange_count; ++e) {
                while (auto batch = exchanges[e]->pop(w)) {
                  any = true;
                  if (batch->heartbeat) {
                    handle_heartbeat(std::move(batch));
                  } else {
                    absorb(batch.release());
                    ++n_owner;
                  }
                }
              }
              if (!any) {
                bool inputs_done = true;
                for (std::size_t e = 0; e < exchange_count; ++e) {
                  inputs_done = inputs_done && exchanges[e]->drained(w);
                }
                if (inputs_done) break;
                std::this_thread::sleep_for(std::chrono::microseconds(100));
              }
            }
          }

          volatile double ingest_sink = ingest_acc;
          (void)ingest_sink;
          counters.owner_pops.fetch_add(n_owner, std::memory_order_relaxed);
          counters.steals.fetch_add(n_steal, std::memory_order_relaxed);
          counters.injector_pushes.fetch_add(n_inj_push,
                                             std::memory_order_relaxed);
          counters.injector_pops.fetch_add(n_inj_pop,
                                           std::memory_order_relaxed);
          counters.batches.fetch_add(n_batches, std::memory_order_relaxed);
          counters.heartbeats.fetch_add(n_heartbeats,
                                        std::memory_order_relaxed);
          counters.records.fetch_add(n_records, std::memory_order_relaxed);
          run_stats_.per_worker_records[w] = n_records;
          plan.workers_done.fetch_add(1, std::memory_order_release);
        });
      }
      // The exchanges resolved the idleness policy already; the merger
      // applies the forwarded values verbatim.
      merge_until_done(plan, clocks, /*apply_idle_grace=*/false,
                       config_.idle_partition_timeout_ms, after_close);
    }  // joins the pool: counters and per-worker records are final below

    run_stats_.owner_pops = counters.owner_pops.load();
    run_stats_.steals = counters.steals.load();
    run_stats_.injector_pushes = counters.injector_pushes.load();
    run_stats_.injector_pops = counters.injector_pops.load();
    run_stats_.batches_absorbed = counters.batches.load();
    run_stats_.heartbeats_absorbed = counters.heartbeats.load();
    run_stats_.records_absorbed = counters.records.load();
    // Routing-loop accounting: plain counters per exchange thread, summed
    // here after the join made them final.
    for (const auto& exchange : exchanges) {
      const auto& stats = exchange->stats();
      run_stats_.exchange_rounds += stats.rounds;
      run_stats_.exchange_records_routed += stats.records;
      run_stats_.exchange_runs_walked += stats.runs;
      run_stats_.exchange_table_probes += stats.table_probes;
      run_stats_.exchange_scatter_reserves += stats.scatter_reserves;
    }
  } else {
    // ---- Group mode: the consumer group owns the partition split; each
    // worker thread drives exactly one member (no offset state is shared
    // between threads).
    run_stats_.workers = workers;
    const auto after_close = [&](std::int64_t) {
      slide_budget_ = driver.current_budget();
    };
    ingest::ConsumerGroup group(broker_, config_.topic, workers);
    // Per-partition high-water event-time clocks: kNoClock until the
    // partition's first record, kPartitionDrained once sealed and drained
    // (the shared low-watermark policy of core/watermark.h).
    std::vector<std::atomic<std::int64_t>> clocks(partitions);
    for (auto& clock : clocks) {
      clock.store(kNoClock, std::memory_order_relaxed);
    }

    ThreadPool pool(workers, "sa-group");
    for (std::size_t w = 0; w < workers; ++w) {
      pool.submit([&, w] {
        ingest::Consumer& consumer = group.member(w);
        const auto& assignment = consumer.assignment();
        std::vector<std::int64_t> batch_clock(partitions, kNoClock);
        // Reused poll buffer: steady-state polling is allocation-free.
        std::vector<engine::Record> records;
        records.reserve(config_.poll_batch);
        double ingest_acc = 0.0;
        for (;;) {
          consumer.poll(records, config_.poll_batch, /*timeout_ms=*/50);
          if (!records.empty()) {
            for (const std::size_t p : assignment) batch_clock[p] = kNoClock;
            Shard& own = plan.shards[w];
            for (const auto& record : records) {
              ingest_acc += config_.ingest_cost.charge(record.value);
              const std::size_t p = topic.partition_for_key(record.stratum);
              batch_clock[p] = std::max(batch_clock[p], record.event_time_us);
              // Occupancy discovery (no exchange to stamp it): this worker's
              // stratum set is owner-local, only the total is shared.
              if (own.local_strata.insert(record.stratum).second) {
                plan.total_strata.fetch_add(1, std::memory_order_acq_rel);
              }
            }
            absorb_batch(plan, w, records.data(), records.size(),
                         /*runs=*/nullptr, /*run_count=*/0,
                         own.local_strata.size(),
                         plan.total_strata.load(std::memory_order_acquire));
            // Publish clocks after the samplers absorbed the batch, so the
            // merger can never observe a watermark ahead of the samples.
            for (const std::size_t p : assignment) {
              if (batch_clock[p] == kNoClock) continue;
              const std::int64_t previous =
                  clocks[p].load(std::memory_order_relaxed);
              if (batch_clock[p] > previous) {
                clocks[p].store(batch_clock[p], std::memory_order_release);
              }
            }
          }
          // Partitions drained to a sealed end stop gating the watermark,
          // so an idle partition cannot stall every window behind it.
          for (std::size_t slot = 0; slot < assignment.size(); ++slot) {
            if (consumer.partition_exhausted(slot)) {
              clocks[assignment[slot]].store(kPartitionDrained,
                                             std::memory_order_release);
            }
          }
          if (records.empty() && consumer.exhausted()) break;
        }
        volatile double ingest_sink = ingest_acc;
        (void)ingest_sink;
        plan.workers_done.fetch_add(1, std::memory_order_release);
      });
    }
    merge_until_done(plan, clocks, /*apply_idle_grace=*/true,
                     config_.idle_partition_timeout_ms, after_close);
  }

  run_stats_.sampler_bulk_runs = plan.sampler_bulk_runs.load();
  run_stats_.sampler_accepts = plan.sampler_accepts.load();
  run_stats_.sampler_skipped = plan.sampler_skipped.load();

  driver.finish();  // no-op safeguard: external mode leaves nothing open
  slide_budget_ = driver.current_budget();
}

}  // namespace streamapprox::core
