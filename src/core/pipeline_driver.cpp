#include "core/pipeline_driver.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "engine/record_batch.h"
#include "estimation/estimators.h"

namespace streamapprox::core {
namespace {

/// Turns a stratified sample into per-stratum cells, charging the per-record
/// query cost against every SAMPLED item — the work the system actually
/// performs, and exactly what approximation saves on the skipped items.
std::vector<estimation::StratumSummary> summarize_with_cost(
    const sampling::StratifiedSample<engine::Record>& sample,
    engine::QueryCost work) {
  std::vector<estimation::StratumSummary> cells;
  cells.reserve(sample.strata.size());
  for (const auto& stratum : sample.strata) {
    estimation::StratumSummary cell;
    cell.stratum = stratum.stratum;
    cell.seen = stratum.seen;
    cell.sampled = stratum.items.size();
    cell.weight = stratum.weight;
    for (const auto& record : stratum.items) {
      const double value = work.charge(record.value);
      cell.sum += value;
      cell.sum_sq += value * value;
    }
    cells.push_back(cell);
  }
  return cells;
}

estimation::FeedbackConfig feedback_base_config() {
  // Controller tuning shared by every registered target; each target
  // overrides target_relative_error when it registers with the bank.
  return estimation::FeedbackConfig{};
}

}  // namespace

PipelineDriver::PipelineDriver(PipelineDriverConfig config, OutputFn on_output,
                               WindowFn on_window)
    : config_(std::move(config)),
      on_output_(std::move(on_output)),
      on_window_(std::move(on_window)),
      assembler_(config_.window),
      feedback_(feedback_base_config(), config_.initial_budget),
      slide_budget_(config_.initial_budget) {
  sketch_plan_ = std::make_shared<const sketch::SketchPlan>();
  if (!config_.evaluate) return;
  // Seed the query registry: the configured set, or — for backward
  // compatibility — a set synthesised from the legacy single-query fields.
  auto seeds = config_.queries.clone_sinks();
  if (seeds.empty()) {
    QuerySet legacy;
    legacy.aggregate("query", config_.query);
    if (config_.histogram) legacy.histogram("histogram", *config_.histogram);
    seeds = legacy.clone_sinks();
  }
  for (auto& sink : seeds) {
    register_sink(std::move(sink), nullptr, /*attach_slide=*/0,
                  config_.initial_budget);
  }
  if (feedback_.empty() && fallback_target() && !queries_.empty()) {
    // Histogram-only registry with an accuracy budget: no sink inherited the
    // fallback target, but the user still asked for accuracy-driven
    // adaptation — drive one controller from the first query's observed
    // bound rather than silently pinning the budget at its initial value.
    queries_.front().controller = feedback_.add_target(*fallback_target());
  }
  for (const auto& q : queries_) live_names_.push_back(q.sink->name());
  live_query_count_.store(queries_.size(), std::memory_order_release);
  publish_sketch_plan();
}

PipelineDriver::~PipelineDriver() {
  // Release every subscription consumer: a detached-by-teardown channel
  // drains its buffered outputs, then reports finished().
  for (auto& q : queries_) {
    if (q.subscription) q.subscription->close();
  }
  std::lock_guard lock(control_mutex_);
  for (auto& op : pending_) {
    if (op.subscription) op.subscription->close();
  }
}

std::optional<double> PipelineDriver::fallback_target() const {
  // An accuracy budget is the default target for queries without their own;
  // every targeted query gets a controller and the strictest drives the
  // budget (max across controllers).
  return config_.budget.kind == estimation::BudgetKind::kRelativeError
             ? std::optional<double>(config_.budget.value)
             : std::nullopt;
}

void PipelineDriver::register_sink(
    std::unique_ptr<QuerySink> sink,
    std::shared_ptr<QuerySubscription> subscription,
    std::uint64_t attach_slide, std::size_t seed_budget) {
  RegisteredQuery q;
  if (sketch::SketchSpec* spec = sink->mutable_sketch_spec()) {
    // Unique per driver: worker-local slide states and the sink find each
    // other by this id after merges.
    spec->id = next_sketch_id_++;
  }
  sink->bind(config_.window, config_.z);
  if (const auto target = sink->accuracy_target(fallback_target())) {
    q.controller = feedback_.add_target(*target, seed_budget);
  }
  const std::size_t slides_per_window =
      std::max<std::size_t>(1, config_.window.slides_per_window());
  // The earliest window made ENTIRELY of slides the sink observed ends at
  // attach_slide + W - 1; anything earlier would hand the sink a window it
  // saw only part of.
  q.first_window_slide =
      attach_slide + static_cast<std::uint64_t>(slides_per_window) - 1;
  q.sink = std::move(sink);
  q.subscription = std::move(subscription);
  queries_.push_back(std::move(q));
}

std::shared_ptr<QuerySubscription> PipelineDriver::attach_query(
    std::unique_ptr<QuerySink> sink, std::size_t subscription_capacity) {
  std::shared_ptr<QuerySubscription> subscription;
  if (subscription_capacity > 0) {
    subscription = std::make_shared<QuerySubscription>(subscription_capacity);
  }
  attach_query(std::move(sink), subscription);
  return subscription;
}

void PipelineDriver::attach_query(
    std::unique_ptr<QuerySink> sink,
    std::shared_ptr<QuerySubscription> subscription) {
  if (!sink) return;
  std::lock_guard lock(control_mutex_);
  PendingOp op;
  op.sink = std::move(sink);
  op.subscription = std::move(subscription);
  pending_.push_back(std::move(op));
  control_generation_.fetch_add(1, std::memory_order_release);
}

bool PipelineDriver::detach_query(const std::string& name) {
  std::lock_guard lock(control_mutex_);
  // A still-pending attach is simply cancelled — it never took effect.
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (it->sink && it->sink->name() == name) {
      if (it->subscription) it->subscription->close();
      pending_.erase(it);
      control_generation_.fetch_add(1, std::memory_order_release);
      return true;
    }
  }
  if (std::find(live_names_.begin(), live_names_.end(), name) ==
      live_names_.end()) {
    return false;
  }
  PendingOp op;
  op.detach_name = name;
  pending_.push_back(std::move(op));
  control_generation_.fetch_add(1, std::memory_order_release);
  return true;
}

void PipelineDriver::apply_pending_ops() {
  // The boundary fast path: one relaxed-ish atomic read per closed slide;
  // the mutex is touched only when a control operation is actually queued.
  if (control_generation_.load(std::memory_order_acquire) ==
      applied_generation_) {
    return;
  }
  std::lock_guard lock(control_mutex_);
  applied_generation_ = control_generation_.load(std::memory_order_relaxed);
  if (pending_.empty()) return;  // e.g. a detach cancelled a pending attach
  const std::uint64_t attach_slide = assembler_.slides_pushed();
  for (auto& op : pending_) {
    if (op.sink) {
      // Budget continuity: a mid-stream controller starts from the budget
      // currently in force, not from the cold-start value.
      register_sink(std::move(op.sink), std::move(op.subscription),
                    attach_slide,
                    slide_budget_.load(std::memory_order_relaxed));
    } else {
      for (auto it = queries_.begin(); it != queries_.end(); ++it) {
        if (it->sink->name() == op.detach_name) {
          if (it->controller) feedback_.remove_target(*it->controller);
          if (it->subscription) it->subscription->close();
          queries_.erase(it);
          break;
        }
      }
    }
  }
  pending_.clear();
  if (feedback_.empty() && fallback_target() && !queries_.empty()) {
    // The last targeted query detached under an accuracy budget: keep
    // adaptation alive exactly as the constructor would (first query's
    // observed bound drives one controller).
    queries_.front().controller = feedback_.add_target(
        *fallback_target(), slide_budget_.load(std::memory_order_relaxed));
  }
  if (!feedback_.empty()) {
    // Membership changed: the strictest-target budget is rebuilt from the
    // surviving (and newly seeded) controllers. An emptied bank instead
    // falls back to the config budget via the cost function at this very
    // slide's close (the feedback_.empty() path in complete_slide).
    slide_budget_.store(feedback_.budget(), std::memory_order_relaxed);
  }
  live_names_.clear();
  for (const auto& q : queries_) live_names_.push_back(q.sink->name());
  live_query_count_.store(queries_.size(), std::memory_order_release);
  registry_generation_.fetch_add(1, std::memory_order_release);
  // Membership changed: workers provisioning NEWLY opened slides must see
  // the new spec set. Slides already open keep their old states; a spec
  // they miss surfaces as an incomplete slide and the sink withholds that
  // window's sketch payload (never a partial answer).
  publish_sketch_plan();
}

void PipelineDriver::publish_sketch_plan() {
  auto plan = std::make_shared<sketch::SketchPlan>();
  for (auto& q : queries_) {
    if (const sketch::SketchSpec* spec = q.sink->mutable_sketch_spec()) {
      plan->specs.push_back(*spec);
    }
  }
  std::lock_guard lock(sketch_plan_mutex_);
  sketch_plan_ = std::move(plan);
}

std::shared_ptr<const sketch::SketchPlan> PipelineDriver::sketch_plan() const {
  std::lock_guard lock(sketch_plan_mutex_);
  return sketch_plan_;
}

sampling::OasrsConfig PipelineDriver::slide_sampler_config(
    std::int64_t slide, std::size_t shard, std::size_t shards,
    std::size_t shard_strata, std::size_t total_strata) const {
  sampling::OasrsConfig oasrs;
  oasrs.skip_ahead = config_.skip_ahead_sampling;
  oasrs.seed = config_.seed +
               static_cast<std::uint64_t>(slide) * 1099511628211ULL +
               static_cast<std::uint64_t>(shard) * 0x9e3779b97f4a7c15ULL;
  const std::size_t budget = slide_budget_.load(std::memory_order_relaxed);
  if (shards <= 1) {
    oasrs.total_budget = budget;
  } else if (shard_strata > 0 && total_strata > 0) {
    // Occupancy-aware split: this shard holds shard_strata of the
    // total_strata sub-streams, so it deserves the same fraction of the
    // budget — Σ over shards recovers the whole budget, where the flat
    // split strands the shares of stratum-less workers.
    const std::size_t mine = std::min(shard_strata, total_strata);
    oasrs.total_budget = std::max<std::size_t>(1, budget * mine / total_strata);
  } else {
    oasrs.total_budget = std::max<std::size_t>(1, budget / shards);
  }
  return oasrs;
}

PipelineDriver::OpenSlide& PipelineDriver::slide_for(std::int64_t slide) {
  auto it = open_slides_.find(slide);
  if (it == open_slides_.end()) {
    it = open_slides_
             .try_emplace(
                 slide,
                 OpenSlide{Sampler(slide_sampler_config(slide),
                                   engine::RecordStratum{}),
                           sketch::SlideSketches(*sketch_plan())})
             .first;
  }
  return it->second;
}

bool PipelineDriver::offer(const engine::Record& record) {
  const std::int64_t slide =
      record.event_time_us / config_.window.slide_us;
  if (closed_any_) {
    if (next_to_close_ && slide < *next_to_close_) return false;  // late
  } else {
    // Cold start: the first slide to close is the earliest slide observed,
    // not slide 0 — a stream starting at a large event time (epoch-stamped
    // taxi data) must not sweep through millions of empty slides.
    next_to_close_ = next_to_close_ ? std::min(*next_to_close_, slide) : slide;
  }
  OpenSlide& open = slide_for(slide);
  open.sampler.offer(record);
  open.sketches.absorb(&record, 1);
  return true;
}

std::size_t PipelineDriver::offer_batch(const engine::Record* records,
                                        std::size_t count) {
  std::size_t accepted = 0;
  engine::for_each_slide_run(
      records, count, config_.window.slide_us,
      [&](std::int64_t slide, const engine::Record* run, std::size_t n) {
        if (closed_any_) {
          if (next_to_close_ && slide < *next_to_close_) return;  // late run
        } else {
          next_to_close_ =
              next_to_close_ ? std::min(*next_to_close_, slide) : slide;
        }
        OpenSlide& open = slide_for(slide);
        open.sampler.offer_batch(run, n);
        open.sketches.absorb(run, n);
        accepted += n;
      });
  return accepted;
}

std::size_t PipelineDriver::advance(std::int64_t watermark) {
  if (!next_to_close_) return 0;
  std::size_t closed = 0;
  while ((*next_to_close_ + 1) * config_.window.slide_us <= watermark) {
    close_internal(*next_to_close_);
    ++*next_to_close_;
    ++closed;
  }
  return closed;
}

void PipelineDriver::finish() {
  while (!open_slides_.empty()) {
    const std::int64_t slide = open_slides_.begin()->first;
    while (next_to_close_ && *next_to_close_ < slide) {
      close_internal(*next_to_close_);  // empty slides advance the assembler
      ++*next_to_close_;
    }
    close_internal(slide);
    next_to_close_ = slide + 1;
  }
}

void PipelineDriver::close_internal(std::int64_t slide) {
  if (!closed_any_) assembler_.set_base_slide(slide);
  auto it = open_slides_.find(slide);
  if (it == open_slides_.end()) {
    complete_slide({}, nullptr, nullptr);
    return;
  }
  auto sample = it->second.sampler.take();
  sketch::SlideSketches sketches = std::move(it->second.sketches);
  open_slides_.erase(it);
  complete_slide(summarize_with_cost(sample, config_.query_cost), &sample,
                 &sketches);
}

void PipelineDriver::pad_until(std::int64_t slide) {
  if (next_to_close_ && slide < *next_to_close_) {
    throw std::logic_error(
        "PipelineDriver: slides must be closed in increasing order");
  }
  if (!next_to_close_) next_to_close_ = slide;
  if (!closed_any_) assembler_.set_base_slide(*next_to_close_);
  while (*next_to_close_ < slide) {
    complete_slide({}, nullptr, nullptr);
    ++*next_to_close_;
  }
}

void PipelineDriver::close_slide_sample(
    std::int64_t slide, sampling::StratifiedSample<engine::Record> sample) {
  pad_until(slide);
  complete_slide(summarize_with_cost(sample, config_.query_cost), &sample,
                 nullptr);
  ++*next_to_close_;
}

void PipelineDriver::close_slide_sample(
    std::int64_t slide, sampling::StratifiedSample<engine::Record> sample,
    sketch::SlideSketches sketches) {
  pad_until(slide);
  complete_slide(summarize_with_cost(sample, config_.query_cost), &sample,
                 &sketches);
  ++*next_to_close_;
}

void PipelineDriver::close_slide_cells(
    std::int64_t slide, std::vector<estimation::StratumSummary> cells) {
  pad_until(slide);
  complete_slide(std::move(cells), nullptr, nullptr);
  ++*next_to_close_;
}

void PipelineDriver::complete_slide(
    std::vector<estimation::StratumSummary> cells,
    const sampling::StratifiedSample<engine::Record>* sample,
    const sketch::SlideSketches* sketches) {
  closed_any_ = true;

  // The dynamic-lifecycle boundary: queued attach/detach operations take
  // effect here, BEFORE this slide's sink hooks — an attached sink observes
  // this slide, a detached one does not.
  if (config_.evaluate) apply_pending_ops();

  // The assembler-relative index of the slide being closed: the window this
  // push may emit ends at exactly this index.
  const std::uint64_t slide_index = assembler_.slides_pushed();

  // Budget bookkeeping only matters when someone consumes the budget; in
  // raw-window harness mode (evaluate == false) no sampler reads it, so the
  // cells copy, the sink hooks and the cost-function call all stay out of
  // the timed loop.
  if (config_.evaluate) {
    // Arrival statistics always stay fresh: a detach can empty the bank at
    // any boundary, and the cost-function fallback then resumes from the
    // LAST slide's count, not a stale snapshot.
    std::uint64_t slide_seen = 0;
    for (const auto& cell : cells) slide_seen += cell.seen;
    last_slide_seen_ = slide_seen;
    if (feedback_.empty()) last_cells_ = cells;
    // Slide-granular fan-out: sinks that keep per-slide state (the HISTOGRAM
    // ring) see every closed slide, empty padded ones included.
    for (auto& q : queries_) q.sink->on_slide(cells, sample, sketches);
  }

  bool fed_back = false;
  if (auto window = assembler_.push_slide(std::move(cells))) {
    ++windows_emitted_;
    if (!config_.evaluate) {
      if (on_window_) on_window_(std::move(*window));
    } else {
      WindowOutput output;
      // Sampling effort is a property of the WINDOW, counted once however
      // many queries consume it — the sample-once/answer-many invariant.
      for (const auto& cell : window->cells) {
        output.records_seen += cell.seen;
        output.records_sampled += cell.sampled;
      }
      output.budget_in_force = slide_budget_.load(std::memory_order_relaxed);
      // The legacy mirror always carries the window's bounds, even when no
      // query is eligible for it (e.g. every query detached, or a freshly
      // attached one still waiting for its first whole window) — consumers
      // identify outputs by estimate.window_end_us.
      output.estimate.window_start_us = window->window_start_us;
      output.estimate.window_end_us = window->window_end_us;
      // Window fan-out: every registered query evaluates the same window —
      // except queries attached mid-window, which wait until the first
      // window made entirely of slides they observed.
      output.queries.reserve(queries_.size());
      std::vector<std::pair<std::size_t, double>> bounds;
      for (auto& q : queries_) {
        if (slide_index < q.first_window_slide) continue;
        output.queries.push_back(q.sink->evaluate(*window));
        const QueryOutput& mine = output.queries.back();
        if (q.controller) {
          bounds.emplace_back(*q.controller, mine.observed_relative_bound);
        }
        if (q.subscription) {
          // The per-query channel gets a self-contained WindowOutput: this
          // query's result plus the window-level sampling counters.
          WindowOutput own;
          own.estimate = mine.estimate;
          own.records_seen = output.records_seen;
          own.records_sampled = output.records_sampled;
          own.budget_in_force = output.budget_in_force;
          own.histogram = mine.histogram;
          own.queries.push_back(mine);
          q.subscription->publish(std::move(own));
        }
      }
      // Legacy mirrors: the first query is THE query of a single-query
      // config, and the first histogram its optional histogram.
      if (!output.queries.empty()) {
        output.estimate = output.queries.front().estimate;
      }
      for (const auto& query : output.queries) {
        if (query.histogram) {
          output.histogram = query.histogram;
          break;
        }
      }
      if (on_output_) on_output_(output);
      if (on_window_) on_window_(std::move(*window));

      // Adaptive feedback (§4.2), generalised to N queries: each targeted
      // query's controller sees its own observed bound, and the strictest
      // requirement (max budget) drives the sample size. Controllers whose
      // query had no whole window yet keep their seed budget.
      if (!bounds.empty()) {
        slide_budget_.store(feedback_.update_targets(bounds),
                            std::memory_order_relaxed);
        fed_back = true;
      }
    }
  }
  if (!fed_back && config_.evaluate && feedback_.empty() &&
      config_.budget.kind != estimation::BudgetKind::kRelativeError) {
    // No accuracy target anywhere: re-derive the sample size from the cost
    // function using the freshest arrival statistics.
    slide_budget_.store(
        std::max<std::size_t>(
            1, cost_function_.sample_size(config_.budget, last_slide_seen_,
                                          last_cells_)),
        std::memory_order_relaxed);
  }
}

}  // namespace streamapprox::core
