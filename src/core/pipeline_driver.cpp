#include "core/pipeline_driver.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "engine/record_batch.h"
#include "estimation/estimators.h"

namespace streamapprox::core {
namespace {

/// Turns a stratified sample into per-stratum cells, charging the per-record
/// query cost against every SAMPLED item — the work the system actually
/// performs, and exactly what approximation saves on the skipped items.
std::vector<estimation::StratumSummary> summarize_with_cost(
    const sampling::StratifiedSample<engine::Record>& sample,
    engine::QueryCost work) {
  std::vector<estimation::StratumSummary> cells;
  cells.reserve(sample.strata.size());
  for (const auto& stratum : sample.strata) {
    estimation::StratumSummary cell;
    cell.stratum = stratum.stratum;
    cell.seen = stratum.seen;
    cell.sampled = stratum.items.size();
    cell.weight = stratum.weight;
    for (const auto& record : stratum.items) {
      const double value = work.charge(record.value);
      cell.sum += value;
      cell.sum_sq += value * value;
    }
    cells.push_back(cell);
  }
  return cells;
}

estimation::FeedbackConfig feedback_config_for(
    const PipelineDriverConfig& config) {
  estimation::FeedbackConfig feedback;
  feedback.target_relative_error =
      config.budget.kind == estimation::BudgetKind::kRelativeError
          ? config.budget.value
          : 0.01;
  return feedback;
}

}  // namespace

PipelineDriver::PipelineDriver(PipelineDriverConfig config, OutputFn on_output,
                               WindowFn on_window)
    : config_(std::move(config)),
      on_output_(std::move(on_output)),
      on_window_(std::move(on_window)),
      assembler_(config_.window),
      feedback_(feedback_config_for(config_), config_.initial_budget),
      slide_budget_(config_.initial_budget) {}

sampling::OasrsConfig PipelineDriver::slide_sampler_config(
    std::int64_t slide, std::size_t shard, std::size_t shards) const {
  sampling::OasrsConfig oasrs;
  oasrs.seed = config_.seed +
               static_cast<std::uint64_t>(slide) * 1099511628211ULL +
               static_cast<std::uint64_t>(shard) * 0x9e3779b97f4a7c15ULL;
  const std::size_t budget = slide_budget_.load(std::memory_order_relaxed);
  oasrs.total_budget =
      shards <= 1 ? budget : std::max<std::size_t>(1, budget / shards);
  return oasrs;
}

PipelineDriver::Sampler& PipelineDriver::sampler_for(std::int64_t slide) {
  auto it = open_slides_.find(slide);
  if (it == open_slides_.end()) {
    it = open_slides_
             .try_emplace(slide, slide_sampler_config(slide),
                          engine::RecordStratum{})
             .first;
  }
  return it->second;
}

bool PipelineDriver::offer(const engine::Record& record) {
  const std::int64_t slide =
      record.event_time_us / config_.window.slide_us;
  if (closed_any_) {
    if (next_to_close_ && slide < *next_to_close_) return false;  // late
  } else {
    // Cold start: the first slide to close is the earliest slide observed,
    // not slide 0 — a stream starting at a large event time (epoch-stamped
    // taxi data) must not sweep through millions of empty slides.
    next_to_close_ = next_to_close_ ? std::min(*next_to_close_, slide) : slide;
  }
  sampler_for(slide).offer(record);
  return true;
}

std::size_t PipelineDriver::offer_batch(const engine::Record* records,
                                        std::size_t count) {
  std::size_t accepted = 0;
  engine::for_each_slide_run(
      records, count, config_.window.slide_us,
      [&](std::int64_t slide, const engine::Record* run, std::size_t n) {
        if (closed_any_) {
          if (next_to_close_ && slide < *next_to_close_) return;  // late run
        } else {
          next_to_close_ =
              next_to_close_ ? std::min(*next_to_close_, slide) : slide;
        }
        sampler_for(slide).offer_batch(run, n);
        accepted += n;
      });
  return accepted;
}

std::size_t PipelineDriver::advance(std::int64_t watermark) {
  if (!next_to_close_) return 0;
  std::size_t closed = 0;
  while ((*next_to_close_ + 1) * config_.window.slide_us <= watermark) {
    close_internal(*next_to_close_);
    ++*next_to_close_;
    ++closed;
  }
  return closed;
}

void PipelineDriver::finish() {
  while (!open_slides_.empty()) {
    const std::int64_t slide = open_slides_.begin()->first;
    while (next_to_close_ && *next_to_close_ < slide) {
      close_internal(*next_to_close_);  // empty slides advance the assembler
      ++*next_to_close_;
    }
    close_internal(slide);
    next_to_close_ = slide + 1;
  }
}

void PipelineDriver::close_internal(std::int64_t slide) {
  if (!closed_any_) assembler_.set_base_slide(slide);
  auto it = open_slides_.find(slide);
  if (it == open_slides_.end()) {
    complete_slide({}, nullptr);
    return;
  }
  auto sample = it->second.take();
  open_slides_.erase(it);
  complete_slide(summarize_with_cost(sample, config_.query_cost), &sample);
}

void PipelineDriver::pad_until(std::int64_t slide) {
  if (next_to_close_ && slide < *next_to_close_) {
    throw std::logic_error(
        "PipelineDriver: slides must be closed in increasing order");
  }
  if (!next_to_close_) next_to_close_ = slide;
  if (!closed_any_) assembler_.set_base_slide(*next_to_close_);
  while (*next_to_close_ < slide) {
    complete_slide({}, nullptr);
    ++*next_to_close_;
  }
}

void PipelineDriver::close_slide_sample(
    std::int64_t slide, sampling::StratifiedSample<engine::Record> sample) {
  pad_until(slide);
  complete_slide(summarize_with_cost(sample, config_.query_cost), &sample);
  ++*next_to_close_;
}

void PipelineDriver::close_slide_cells(
    std::int64_t slide, std::vector<estimation::StratumSummary> cells) {
  pad_until(slide);
  complete_slide(std::move(cells), nullptr);
  ++*next_to_close_;
}

void PipelineDriver::complete_slide(
    std::vector<estimation::StratumSummary> cells,
    const sampling::StratifiedSample<engine::Record>* sample_for_histogram) {
  closed_any_ = true;

  // Per-slide weighted histograms for the optional HISTOGRAM query; the
  // window histogram is the merge of its slides' histograms.
  const std::size_t slides_per_window = config_.window.slides_per_window();
  if (config_.histogram) {
    if (sample_for_histogram != nullptr) {
      slide_histograms_.push_back(estimation::weighted_histogram(
          *sample_for_histogram, engine::RecordValue{}, *config_.histogram));
    } else {
      slide_histograms_.emplace_back(config_.histogram->lo,
                                     config_.histogram->hi,
                                     config_.histogram->buckets);
    }
    if (slide_histograms_.size() > slides_per_window) {
      slide_histograms_.pop_front();
    }
  }

  // Budget bookkeeping only matters when someone consumes the budget; in
  // raw-window harness mode (evaluate == false) no sampler reads it, so the
  // cells copy and the cost-function call stay out of the timed loop.
  if (config_.evaluate) {
    std::uint64_t slide_seen = 0;
    for (const auto& cell : cells) slide_seen += cell.seen;
    last_slide_seen_ = slide_seen;
    last_cells_ = cells;
  }

  bool fed_back = false;
  if (auto window = assembler_.push_slide(std::move(cells))) {
    ++windows_emitted_;
    if (!config_.evaluate) {
      if (on_window_) on_window_(std::move(*window));
    } else {
      WindowOutput output;
      for (const auto& cell : window->cells) {
        output.records_seen += cell.seen;
        output.records_sampled += cell.sampled;
      }
      auto estimates = evaluate_windows({*window}, config_.query);
      output.estimate = std::move(estimates.front());
      output.budget_in_force = slide_budget_.load(std::memory_order_relaxed);
      if (config_.histogram) {
        Histogram merged(config_.histogram->lo, config_.histogram->hi,
                         config_.histogram->buckets);
        for (const auto& histogram : slide_histograms_) {
          merged.merge(histogram);
        }
        output.histogram = std::move(merged);
      }
      if (on_output_) on_output_(output);
      if (on_window_) on_window_(std::move(*window));

      // Adaptive feedback (§4.2): with an accuracy budget, grow/shrink the
      // sample size from the observed error bound.
      if (config_.budget.kind == estimation::BudgetKind::kRelativeError) {
        const double bound = output.estimate.overall.relative_bound(config_.z);
        slide_budget_.store(feedback_.update(bound),
                            std::memory_order_relaxed);
        fed_back = true;
      }
    }
  }
  if (!fed_back && config_.evaluate &&
      config_.budget.kind != estimation::BudgetKind::kRelativeError) {
    // Non-accuracy budgets: re-derive the sample size from the cost
    // function using the freshest arrival statistics.
    slide_budget_.store(
        std::max<std::size_t>(
            1, cost_function_.sample_size(config_.budget, last_slide_seen_,
                                          last_cells_)),
        std::memory_order_relaxed);
  }
}

}  // namespace streamapprox::core
