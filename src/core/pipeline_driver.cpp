#include "core/pipeline_driver.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "engine/record_batch.h"
#include "estimation/estimators.h"

namespace streamapprox::core {
namespace {

/// Turns a stratified sample into per-stratum cells, charging the per-record
/// query cost against every SAMPLED item — the work the system actually
/// performs, and exactly what approximation saves on the skipped items.
std::vector<estimation::StratumSummary> summarize_with_cost(
    const sampling::StratifiedSample<engine::Record>& sample,
    engine::QueryCost work) {
  std::vector<estimation::StratumSummary> cells;
  cells.reserve(sample.strata.size());
  for (const auto& stratum : sample.strata) {
    estimation::StratumSummary cell;
    cell.stratum = stratum.stratum;
    cell.seen = stratum.seen;
    cell.sampled = stratum.items.size();
    cell.weight = stratum.weight;
    for (const auto& record : stratum.items) {
      const double value = work.charge(record.value);
      cell.sum += value;
      cell.sum_sq += value * value;
    }
    cells.push_back(cell);
  }
  return cells;
}

estimation::FeedbackConfig feedback_base_config() {
  // Controller tuning shared by every registered target; each target
  // overrides target_relative_error when it registers with the bank.
  return estimation::FeedbackConfig{};
}

}  // namespace

PipelineDriver::PipelineDriver(PipelineDriverConfig config, OutputFn on_output,
                               WindowFn on_window)
    : config_(std::move(config)),
      on_output_(std::move(on_output)),
      on_window_(std::move(on_window)),
      assembler_(config_.window),
      feedback_(feedback_base_config(), config_.initial_budget),
      slide_budget_(config_.initial_budget) {
  if (!config_.evaluate) return;
  // Build the query registry: the configured set, or — for backward
  // compatibility — a set synthesised from the legacy single-query fields.
  sinks_ = config_.queries.clone_sinks();
  if (sinks_.empty()) {
    QuerySet legacy;
    legacy.aggregate("query", config_.query);
    if (config_.histogram) legacy.histogram("histogram", *config_.histogram);
    sinks_ = legacy.clone_sinks();
  }
  // An accuracy budget is the default target for queries without their own;
  // every targeted query gets a controller and the strictest drives the
  // budget (max across controllers).
  const std::optional<double> fallback_target =
      config_.budget.kind == estimation::BudgetKind::kRelativeError
          ? std::optional<double>(config_.budget.value)
          : std::nullopt;
  for (std::size_t i = 0; i < sinks_.size(); ++i) {
    sinks_[i]->bind(config_.window, config_.z);
    if (const auto target = sinks_[i]->accuracy_target(fallback_target)) {
      feedback_.add_target(*target);
      feedback_sinks_.push_back(i);
    }
  }
  if (feedback_.empty() && fallback_target && !sinks_.empty()) {
    // Histogram-only registry with an accuracy budget: no sink inherited the
    // fallback target, but the user still asked for accuracy-driven
    // adaptation — drive one controller from the first query's observed
    // bound rather than silently pinning the budget at its initial value.
    feedback_.add_target(*fallback_target);
    feedback_sinks_.push_back(0);
  }
}

sampling::OasrsConfig PipelineDriver::slide_sampler_config(
    std::int64_t slide, std::size_t shard, std::size_t shards) const {
  sampling::OasrsConfig oasrs;
  oasrs.seed = config_.seed +
               static_cast<std::uint64_t>(slide) * 1099511628211ULL +
               static_cast<std::uint64_t>(shard) * 0x9e3779b97f4a7c15ULL;
  const std::size_t budget = slide_budget_.load(std::memory_order_relaxed);
  oasrs.total_budget =
      shards <= 1 ? budget : std::max<std::size_t>(1, budget / shards);
  return oasrs;
}

PipelineDriver::Sampler& PipelineDriver::sampler_for(std::int64_t slide) {
  auto it = open_slides_.find(slide);
  if (it == open_slides_.end()) {
    it = open_slides_
             .try_emplace(slide, slide_sampler_config(slide),
                          engine::RecordStratum{})
             .first;
  }
  return it->second;
}

bool PipelineDriver::offer(const engine::Record& record) {
  const std::int64_t slide =
      record.event_time_us / config_.window.slide_us;
  if (closed_any_) {
    if (next_to_close_ && slide < *next_to_close_) return false;  // late
  } else {
    // Cold start: the first slide to close is the earliest slide observed,
    // not slide 0 — a stream starting at a large event time (epoch-stamped
    // taxi data) must not sweep through millions of empty slides.
    next_to_close_ = next_to_close_ ? std::min(*next_to_close_, slide) : slide;
  }
  sampler_for(slide).offer(record);
  return true;
}

std::size_t PipelineDriver::offer_batch(const engine::Record* records,
                                        std::size_t count) {
  std::size_t accepted = 0;
  engine::for_each_slide_run(
      records, count, config_.window.slide_us,
      [&](std::int64_t slide, const engine::Record* run, std::size_t n) {
        if (closed_any_) {
          if (next_to_close_ && slide < *next_to_close_) return;  // late run
        } else {
          next_to_close_ =
              next_to_close_ ? std::min(*next_to_close_, slide) : slide;
        }
        sampler_for(slide).offer_batch(run, n);
        accepted += n;
      });
  return accepted;
}

std::size_t PipelineDriver::advance(std::int64_t watermark) {
  if (!next_to_close_) return 0;
  std::size_t closed = 0;
  while ((*next_to_close_ + 1) * config_.window.slide_us <= watermark) {
    close_internal(*next_to_close_);
    ++*next_to_close_;
    ++closed;
  }
  return closed;
}

void PipelineDriver::finish() {
  while (!open_slides_.empty()) {
    const std::int64_t slide = open_slides_.begin()->first;
    while (next_to_close_ && *next_to_close_ < slide) {
      close_internal(*next_to_close_);  // empty slides advance the assembler
      ++*next_to_close_;
    }
    close_internal(slide);
    next_to_close_ = slide + 1;
  }
}

void PipelineDriver::close_internal(std::int64_t slide) {
  if (!closed_any_) assembler_.set_base_slide(slide);
  auto it = open_slides_.find(slide);
  if (it == open_slides_.end()) {
    complete_slide({}, nullptr);
    return;
  }
  auto sample = it->second.take();
  open_slides_.erase(it);
  complete_slide(summarize_with_cost(sample, config_.query_cost), &sample);
}

void PipelineDriver::pad_until(std::int64_t slide) {
  if (next_to_close_ && slide < *next_to_close_) {
    throw std::logic_error(
        "PipelineDriver: slides must be closed in increasing order");
  }
  if (!next_to_close_) next_to_close_ = slide;
  if (!closed_any_) assembler_.set_base_slide(*next_to_close_);
  while (*next_to_close_ < slide) {
    complete_slide({}, nullptr);
    ++*next_to_close_;
  }
}

void PipelineDriver::close_slide_sample(
    std::int64_t slide, sampling::StratifiedSample<engine::Record> sample) {
  pad_until(slide);
  complete_slide(summarize_with_cost(sample, config_.query_cost), &sample);
  ++*next_to_close_;
}

void PipelineDriver::close_slide_cells(
    std::int64_t slide, std::vector<estimation::StratumSummary> cells) {
  pad_until(slide);
  complete_slide(std::move(cells), nullptr);
  ++*next_to_close_;
}

void PipelineDriver::complete_slide(
    std::vector<estimation::StratumSummary> cells,
    const sampling::StratifiedSample<engine::Record>* sample) {
  closed_any_ = true;

  // Budget bookkeeping only matters when someone consumes the budget; in
  // raw-window harness mode (evaluate == false) no sampler reads it, so the
  // cells copy, the sink hooks and the cost-function call all stay out of
  // the timed loop.
  if (config_.evaluate) {
    if (feedback_.empty()) {
      // Arrival statistics feed only the cost-function fallback, which is
      // unreachable once accuracy controllers drive the budget — skip the
      // per-slide cells copy in that mode.
      std::uint64_t slide_seen = 0;
      for (const auto& cell : cells) slide_seen += cell.seen;
      last_slide_seen_ = slide_seen;
      last_cells_ = cells;
    }
    // Slide-granular fan-out: sinks that keep per-slide state (the HISTOGRAM
    // ring) see every closed slide, empty padded ones included.
    for (auto& sink : sinks_) sink->on_slide(cells, sample);
  }

  bool fed_back = false;
  if (auto window = assembler_.push_slide(std::move(cells))) {
    ++windows_emitted_;
    if (!config_.evaluate) {
      if (on_window_) on_window_(std::move(*window));
    } else {
      WindowOutput output;
      // Sampling effort is a property of the WINDOW, counted once however
      // many queries consume it — the sample-once/answer-many invariant.
      for (const auto& cell : window->cells) {
        output.records_seen += cell.seen;
        output.records_sampled += cell.sampled;
      }
      output.budget_in_force = slide_budget_.load(std::memory_order_relaxed);
      // Window fan-out: every registered query evaluates the same window.
      output.queries.reserve(sinks_.size());
      for (auto& sink : sinks_) {
        output.queries.push_back(sink->evaluate(*window));
      }
      // Legacy mirrors: the first query is THE query of a single-query
      // config, and the first histogram its optional histogram.
      if (!output.queries.empty()) {
        output.estimate = output.queries.front().estimate;
      }
      for (const auto& query : output.queries) {
        if (query.histogram) {
          output.histogram = query.histogram;
          break;
        }
      }
      if (on_output_) on_output_(output);
      if (on_window_) on_window_(std::move(*window));

      // Adaptive feedback (§4.2), generalised to N queries: each targeted
      // query's controller sees its own observed bound, and the strictest
      // requirement (max budget) drives the sample size.
      if (!feedback_.empty()) {
        std::vector<double> bounds;
        bounds.reserve(feedback_sinks_.size());
        for (const std::size_t sink : feedback_sinks_) {
          bounds.push_back(output.queries[sink].observed_relative_bound);
        }
        slide_budget_.store(feedback_.update(bounds),
                            std::memory_order_relaxed);
        fed_back = true;
      }
    }
  }
  if (!fed_back && config_.evaluate && feedback_.empty() &&
      config_.budget.kind != estimation::BudgetKind::kRelativeError) {
    // No accuracy target anywhere: re-derive the sample size from the cost
    // function using the freshest arrival statistics.
    slide_budget_.store(
        std::max<std::size_t>(
            1, cost_function_.sample_size(config_.budget, last_slide_seen_,
                                          last_cells_)),
        std::memory_order_relaxed);
  }
}

}  // namespace streamapprox::core
